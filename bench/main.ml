(* Benchmark harness reproducing every table and figure of the paper's
   evaluation (Section V), plus the ablations called out in DESIGN.md.

   Usage:
     dune exec bench/main.exe                  -- everything, default scale
     dune exec bench/main.exe -- table1 table3 -- selected sections
     dune exec bench/main.exe -- --quick       -- reduced simulated times

   Simulated durations are scaled down from the paper's (100 ms / 10 s /
   100 ms) so the whole suite runs in minutes; the scale multiplies all
   rows of a table equally, so the orderings and ratios the paper
   reports are preserved. Paper values are printed next to measured
   ones; EXPERIMENTS.md records the comparison. *)

module Circuits = Amsvp_netlist.Circuits
module Engine = Amsvp_mna.Engine
module Flow = Amsvp_core.Flow
module Assemble = Amsvp_core.Assemble
module Acquisition = Amsvp_core.Acquisition
module Enrich = Amsvp_core.Enrich
module Solve = Amsvp_core.Solve
module Eqmap = Amsvp_core.Eqmap
module Sfprogram = Amsvp_sf.Sfprogram
module Wrap = Amsvp_sysc.Wrap
module De = Amsvp_sysc.De
module Codegen = Amsvp_codegen.Codegen
module Platform = Amsvp_vp.Platform
module Trace = Amsvp_util.Trace
module Metrics = Amsvp_util.Metrics
module Sources = Amsvp_vams.Sources
module Elaborate = Amsvp_vams.Elaborate
module Obs = Amsvp_obs.Obs
module Journal = Amsvp_obs.Journal
module Probe = Amsvp_probe.Probe

let dt = 50e-9 (* the paper's time step (Section V-A) *)

(* Machine-readable results, one row per (table, component, target):
   written to BENCH_results.json so the perf trajectory can be compared
   across commits without scraping the human-readable tables. *)
type bench_row = {
  row_table : string;
  row_comp : string;
  row_target : string;
  row_method : string;
  row_time_s : float;
  row_nrmse : float option;
}

let bench_rows : bench_row list ref = ref []

let record ~table ~comp ~target ?(meth = "") ?nrmse time_s =
  bench_rows :=
    {
      row_table = table;
      row_comp = comp;
      row_target = target;
      row_method = meth;
      row_time_s = time_s;
      row_nrmse = nrmse;
    }
    :: !bench_rows

(* One row per circuit of the "engines" section: both per-step costs,
   the compile cost they bought, and the worst ulp distance observed
   between the two engines' traces (the identical-output evidence). *)
type engine_row = {
  e_circuit : string;
  e_assignments : int;
  e_instrs : int;
  e_regs : int;
  e_compile_s : float;
  e_tree_step_ns : float;
  e_byte_step_ns : float;
  e_max_ulp : int64;
}

let engine_rows : engine_row list ref = ref []

(* The "convergence" block: journal overhead on the RC20 SPICE-like
   run (off vs on) and the Newton telemetry of the journaled run. *)
type convergence_block = {
  cb_comp : string;
  cb_off_s : float;
  cb_on_s : float;
  cb_overhead_pct : float;
  cb_steps : int;
  cb_total_iters : int;
  cb_wasted_iters : int;
  cb_max_residual : float;
  cb_pivot_ratio : float;
  cb_stressed_substeps : int;
}

let convergence_block : convergence_block option ref = ref None

(* The "serve" block: what keeping a prepared sweep warm across
   requests buys — one request executed cold (prepare + run) vs warm
   (run only, against the cached context), as the daemon does. *)
type serve_block = {
  sv_spec : string;
  sv_points : int;
  sv_prepare_s : float;
  sv_cold_s : float;
  sv_warm_s : float;
}

let serve_block : serve_block option ref = ref None

(* The "obs_serve" block: what the cross-process telemetry pipeline
   costs per point — the same forked-pool sweep run with the journal
   (and therefore worker event/span shipping and parent ingestion) off
   vs on. The budget is 5%: past that the always-on service telemetry
   would not be free enough to leave on. *)
type obs_serve_block = {
  ob_points : int;
  ob_off_s : float;
  ob_on_s : float;
  ob_overhead_pct : float;
}

let obs_serve_block : obs_serve_block option ref = ref None

(* The "absint" block: the static-pruning economics on a poisoned
   sweep -- a grid whose high-resistance corner provably breaches the
   amplitude budget, run in full vs with the MUST-proof pruner. The
   per-circuit analysis wall lands in the rows ("absint" table). *)
type absint_block = {
  ai_spec : string;
  ai_points : int;
  ai_pruned : int;
  ai_plain_s : float;
  ai_pruned_s : float;
}

let absint_block : absint_block option ref = ref None

(* The "mna_fast" block: what the fast-fidelity conservative engine
   buys over the paper cost model on the hardest SPICE-like runs —
   sparse symbolic reuse, numeric-factor caching, Newton early-exit
   and adaptive substepping — with the NRMSE between the two traces
   as the accuracy evidence. The gate mirrors the issue's acceptance
   bar: >= 5x on each row with NRMSE inside the health budget. *)
type mna_fast_row = {
  mf_comp : string;
  mf_paper_s : float;
  mf_fast_s : float;
  mf_speedup : float;
  mf_nrmse : float;
  mf_paper_factors : int;
  mf_fast_factors : int;
}

let mna_fast_rows : mna_fast_row list ref = ref []

(* Per-section span accounting, written as "sections" in
   BENCH_results.json. The recorder runs for the whole harness; each
   section remembers the [Obs.span_count] interval it produced. Self
   time is a span's duration minus the total duration of its direct
   children, computed over the completion-ordered span list with a
   per-(domain, depth) pending table -- a child always completes
   before its parent, and depth only nests within one domain. *)
let section_spans : (string * int * int) list ref = ref []

let self_times (spans : Obs.span array) =
  let pending : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let get k = Option.value ~default:0 (Hashtbl.find_opt pending k) in
  Array.map
    (fun (s : Obs.span) ->
      let child = (s.Obs.dom, s.Obs.depth + 1) in
      let self = s.Obs.dur_ns - get child in
      Hashtbl.remove pending child;
      let mine = (s.Obs.dom, s.Obs.depth) in
      Hashtbl.replace pending mine (get mine + s.Obs.dur_ns);
      self)
    spans

let sections_json b =
  let spans = Array.of_list (Obs.spans ()) in
  let selfs = self_times spans in
  Buffer.add_string b ",\n  \"sections\": [";
  List.iteri
    (fun i (name, lo, hi) ->
      if i > 0 then Buffer.add_char b ',';
      let agg : (string, int * int * int) Hashtbl.t = Hashtbl.create 16 in
      let order = ref [] in
      for j = lo to min hi (Array.length spans) - 1 do
        let s = spans.(j) in
        if s.Obs.dur_ns > 0 then begin
          let calls, tot, slf =
            Option.value ~default:(0, 0, 0) (Hashtbl.find_opt agg s.Obs.name)
          in
          if calls = 0 then order := s.Obs.name :: !order;
          Hashtbl.replace agg s.Obs.name
            (calls + 1, tot + s.Obs.dur_ns, slf + selfs.(j))
        end
      done;
      Printf.bprintf b "\n    {\"section\": %S, \"spans\": [" name;
      List.iteri
        (fun k n ->
          let calls, tot, slf = Hashtbl.find agg n in
          if k > 0 then Buffer.add_char b ',';
          Printf.bprintf b
            "\n      {\"name\": %S, \"calls\": %d, \"total_s\": %.9g, \
             \"self_s\": %.9g}"
            n calls
            (float_of_int tot *. 1e-9)
            (float_of_int slf *. 1e-9))
        (List.rev !order);
      Buffer.add_string b "\n    ]}")
    (List.rev !section_spans);
  Buffer.add_string b "\n  ]"

let results_json ~quick ~total_wall_s =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n  \"bench\": \"amsvp\",\n  \"quick\": %b,\n  \"dt\": %g,\n  \
     \"total_wall_s\": %.6f,\n  \"rows\": [" quick dt total_wall_s;
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "\n    {\"table\": %S, \"comp\": %S, \"target\": %S, \"method\": %S, \
         \"time_s\": %.9g"
        r.row_table r.row_comp r.row_target r.row_method r.row_time_s;
      (match r.row_nrmse with
      | Some e when Float.is_finite e -> Printf.bprintf b ", \"nrmse\": %.9g" e
      | Some _ | None -> ());
      Buffer.add_char b '}')
    (List.rev !bench_rows);
  Buffer.add_string b "\n  ]";
  if !engine_rows <> [] then begin
    Buffer.add_string b ",\n  \"engines\": [";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b
          "\n    {\"circuit\": %S, \"assignments\": %d, \"instrs\": %d, \
           \"regs\": %d, \"compile_s\": %.9g, \"tree_step_ns\": %.9g, \
           \"bytecode_step_ns\": %.9g, \"speedup\": %.4g, \"max_ulp\": %Ld}"
          r.e_circuit r.e_assignments r.e_instrs r.e_regs r.e_compile_s
          r.e_tree_step_ns r.e_byte_step_ns
          (r.e_tree_step_ns /. r.e_byte_step_ns)
          r.e_max_ulp)
      (List.rev !engine_rows);
    Buffer.add_string b "\n  ]"
  end;
  (match !convergence_block with
  | Some c ->
      Printf.bprintf b
        ",\n  \"convergence\": {\"comp\": %S, \"journal_off_s\": %.9g, \
         \"journal_on_s\": %.9g, \"overhead_pct\": %.4g, \"steps\": %d, \
         \"total_iters\": %d, \"wasted_iters\": %d, \"max_residual\": %.9g, \
         \"pivot_ratio\": %.9g, \"stressed_substeps\": %d}"
        c.cb_comp c.cb_off_s c.cb_on_s c.cb_overhead_pct c.cb_steps
        c.cb_total_iters c.cb_wasted_iters c.cb_max_residual c.cb_pivot_ratio
        c.cb_stressed_substeps
  | None -> ());
  if !mna_fast_rows <> [] then begin
    Buffer.add_string b ",\n  \"mna_fast\": [";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b
          "\n    {\"comp\": %S, \"paper_s\": %.9g, \"fast_s\": %.9g, \
           \"speedup\": %.4g, \"nrmse\": %.9g, \"paper_factorizations\": %d, \
           \"fast_factorizations\": %d}"
          r.mf_comp r.mf_paper_s r.mf_fast_s r.mf_speedup r.mf_nrmse
          r.mf_paper_factors r.mf_fast_factors)
      (List.rev !mna_fast_rows);
    Buffer.add_string b "\n  ]"
  end;
  (match !serve_block with
  | Some s ->
      let per t = t /. float_of_int (max 1 s.sv_points) *. 1e3 in
      Printf.bprintf b
        ",\n  \"serve\": {\"spec\": %S, \"points\": %d, \"prepare_s\": %.9g, \
         \"cold_s\": %.9g, \"warm_s\": %.9g, \"cold_point_ms\": %.6g, \
         \"warm_point_ms\": %.6g, \"warm_speedup\": %.4g}"
        s.sv_spec s.sv_points s.sv_prepare_s s.sv_cold_s s.sv_warm_s
        (per s.sv_cold_s) (per s.sv_warm_s)
        (s.sv_cold_s /. s.sv_warm_s)
  | None -> ());
  (match !obs_serve_block with
  | Some o ->
      let per t = t /. float_of_int (max 1 o.ob_points) *. 1e3 in
      Printf.bprintf b
        ",\n  \"obs_serve\": {\"points\": %d, \"telemetry_off_s\": %.9g, \
         \"telemetry_on_s\": %.9g, \"off_point_ms\": %.6g, \"on_point_ms\": \
         %.6g, \"overhead_pct\": %.4g}"
        o.ob_points o.ob_off_s o.ob_on_s (per o.ob_off_s) (per o.ob_on_s)
        o.ob_overhead_pct
  | None -> ());
  (match !absint_block with
  | Some a ->
      Printf.bprintf b
        ",\n  \"absint\": {\"spec\": %S, \"points\": %d, \"pruned\": %d, \
         \"prune_ratio\": %.4g, \"plain_s\": %.9g, \"pruned_s\": %.9g, \
         \"speedup\": %.4g}"
        a.ai_spec a.ai_points a.ai_pruned
        (float_of_int a.ai_pruned /. float_of_int (max 1 a.ai_points))
        a.ai_plain_s a.ai_pruned_s
        (a.ai_plain_s /. a.ai_pruned_s)
  | None -> ());
  sections_json b;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let wall f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

let line () = print_endline (String.make 100 '-')

let header title =
  print_newline ();
  line ();
  print_endline title;
  line ()

let nrmse_against ~reference trace ~t_stop =
  let n = 999 in
  let grid = t_stop /. float_of_int (n + 1) in
  Metrics.nrmse_traces ~reference trace ~t0:0.0 ~dt:grid ~n

(* Paper values. Table I: (time_s, nrmse); Table II: time_s;
   Table III: times in row order. *)
let paper_table1 =
  [
    ("2IN", [ ("Verilog-AMS", (525.76, 0.0)); ("SC-AMS/ELN", (3.15, 2.19e-8));
              ("SC-AMS/TDF", (2.40, 2.41e-8)); ("SC-DE", (1.84, 2.41e-8));
              ("C++", (0.04, 2.41e-8)) ]);
    ("RC1", [ ("Verilog-AMS", (505.95, 0.0)); ("SC-AMS/ELN", (2.16, 2.10e-9));
              ("SC-AMS/TDF", (1.60, 4.61e-7)); ("SC-DE", (1.55, 4.61e-7));
              ("C++", (0.04, 4.61e-7)) ]);
    ("RC20", [ ("Verilog-AMS", (596.44, 0.0)); ("SC-AMS/ELN", (5.88, 4.93e-7));
               ("SC-AMS/TDF", (4.16, 1.06e-5)); ("SC-DE", (4.21, 1.01e-5));
               ("C++", (0.14, 1.01e-5)) ]);
    ("OA", [ ("Verilog-AMS", (543.23, 0.0)); ("SC-AMS/ELN", (2.57, 2.44e-7));
             ("SC-AMS/TDF", (1.87, 1.04e-5)); ("SC-DE", (1.72, 1.04e-5));
             ("C++", (0.05, 1.04e-5)) ]);
  ]

let paper_table2 =
  [
    ("2IN", [ ("SC-AMS/ELN", 31.11); ("SC-AMS/TDF", 25.02); ("SC-DE", 19.00);
              ("C++", 0.54) ]);
    ("RC1", [ ("SC-AMS/ELN", 21.35); ("SC-AMS/TDF", 16.27); ("SC-DE", 15.70);
              ("C++", 0.44) ]);
    ("RC20", [ ("SC-AMS/ELN", 60.15); ("SC-AMS/TDF", 42.99); ("SC-DE", 42.02);
               ("C++", 1.33) ]);
    ("OA", [ ("SC-AMS/ELN", 25.84); ("SC-AMS/TDF", 19.34); ("SC-DE", 18.51);
             ("C++", 0.49) ]);
  ]

let paper_table3 =
  [
    ("2IN", [ 1067.33; 729.01; 57.76; 54.40; 49.19; 24.62 ]);
    ("RC1", [ 1082.35; 734.16; 56.43; 53.25; 48.85; 26.96 ]);
    ("RC20", [ 1242.29; 818.94; 65.91; 54.22; 51.44; 28.08 ]);
    ("OA", [ 1165.52; 743.54; 57.23; 51.96; 50.86; 27.72 ]);
  ]

type row = {
  lang : string;
  method_ : string;
  time_s : float;
  nrmse : float option;
}

let measure_rows (tc : Circuits.testcase) ~t_stop ~with_vams =
  let rep = Flow.abstract_testcase tc ~dt in
  let p = rep.Flow.program in
  let vams =
    if with_vams then begin
      let r, t = wall (fun () -> Engine.run_testcase_spice tc ~dt ~t_stop) in
      Some (r.Engine.trace, t)
    end
    else None
  in
  let eln, t_eln =
    wall (fun () ->
        Wrap.run_eln tc.Circuits.circuit ~inputs:tc.Circuits.stimuli
          ~output:tc.Circuits.output ~dt ~t_stop)
  in
  let tdf, t_tdf =
    wall (fun () -> Wrap.run_tdf p ~stimuli:tc.Circuits.stimuli ~t_stop)
  in
  let de, t_de =
    wall (fun () -> Wrap.run_de p ~stimuli:tc.Circuits.stimuli ~t_stop)
  in
  let cpp, t_cpp =
    wall (fun () -> Wrap.run_cpp p ~stimuli:tc.Circuits.stimuli ~t_stop)
  in
  let reference =
    match vams with Some (tr, _) -> tr | None -> eln.Wrap.trace
  in
  let err trace = Some (nrmse_against ~reference trace ~t_stop) in
  (match vams with
  | Some (_, t) ->
      [ { lang = "Verilog-AMS"; method_ = "manual"; time_s = t; nrmse = Some 0.0 } ]
  | None -> [])
  @ [
      { lang = "SC-AMS/ELN"; method_ = "manual"; time_s = t_eln;
        nrmse = err eln.Wrap.trace };
      { lang = "SC-AMS/TDF"; method_ = "algo"; time_s = t_tdf;
        nrmse = err tdf.Wrap.trace };
      { lang = "SC-DE"; method_ = "algo"; time_s = t_de;
        nrmse = err de.Wrap.trace };
      { lang = "C++"; method_ = "algo"; time_s = t_cpp;
        nrmse = err cpp.Wrap.trace };
    ]

let table1 ~t_stop () =
  header
    (Printf.sprintf
       "TABLE I -- performance and accuracy, models in isolation (simulated \
        %g ms; paper: 100 ms; dt = 50 ns; 1 ms square wave)"
       (t_stop *. 1e3));
  Printf.printf "%-6s %-12s %-7s %10s %9s %11s | %10s %10s %12s\n" "Comp."
    "Target" "Method" "Time(s)" "Speedup" "NRMSE" "Paper(s)" "PaperSpd"
    "PaperNRMSE";
  List.iter
    (fun (tc : Circuits.testcase) ->
      let rows = measure_rows tc ~t_stop ~with_vams:true in
      List.iter
        (fun r ->
          record ~table:"table1" ~comp:tc.Circuits.label ~target:r.lang
            ~meth:r.method_ ?nrmse:r.nrmse r.time_s)
        rows;
      let base = (List.hd rows).time_s in
      let paper_rows =
        Option.value ~default:[] (List.assoc_opt tc.Circuits.label paper_table1)
      in
      let paper_base =
        match List.assoc_opt "Verilog-AMS" paper_rows with
        | Some (t, _) -> t
        | None -> nan
      in
      List.iter
        (fun r ->
          let speedup =
            if r.lang = "Verilog-AMS" then "0x"
            else Printf.sprintf "%.0fx" (base /. r.time_s)
          in
          let paper_t, paper_spd, paper_err =
            match List.assoc_opt r.lang paper_rows with
            | Some (t, e) ->
                ( Printf.sprintf "%.2f" t,
                  (if r.lang = "Verilog-AMS" then "0x"
                   else Printf.sprintf "%.0fx" (paper_base /. t)),
                  Printf.sprintf "%.2e" e )
            | None -> ("-", "-", "-")
          in
          Printf.printf "%-6s %-12s %-7s %10.3f %9s %11s | %10s %10s %12s\n"
            tc.Circuits.label r.lang r.method_ r.time_s speedup
            (match r.nrmse with
            | Some e -> Printf.sprintf "%.2e" e
            | None -> "-")
            paper_t paper_spd paper_err)
        rows;
      print_newline ())
    (Circuits.all_paper_cases ())

let table2 ~t_stop () =
  header
    (Printf.sprintf
       "TABLE II -- abstracted models vs SystemC-AMS/ELN, longer run \
        (simulated %g ms; paper: 10 s)"
       (t_stop *. 1e3));
  Printf.printf "%-6s %-12s %-7s %10s %9s | %10s %10s\n" "Comp." "Target"
    "Method" "Time(s)" "Speedup" "Paper(s)" "PaperSpd";
  List.iter
    (fun (tc : Circuits.testcase) ->
      let rows = measure_rows tc ~t_stop ~with_vams:false in
      List.iter
        (fun r ->
          record ~table:"table2" ~comp:tc.Circuits.label ~target:r.lang
            ~meth:r.method_ ?nrmse:r.nrmse r.time_s)
        rows;
      let base = (List.hd rows).time_s in
      let paper_rows =
        Option.value ~default:[] (List.assoc_opt tc.Circuits.label paper_table2)
      in
      let paper_base =
        Option.value ~default:nan (List.assoc_opt "SC-AMS/ELN" paper_rows)
      in
      List.iter
        (fun r ->
          let speedup =
            if r.lang = "SC-AMS/ELN" then "0x"
            else Printf.sprintf "%.2fx" (base /. r.time_s)
          in
          let paper_t, paper_spd =
            match List.assoc_opt r.lang paper_rows with
            | Some t ->
                ( Printf.sprintf "%.2f" t,
                  if r.lang = "SC-AMS/ELN" then "0x"
                  else Printf.sprintf "%.2fx" (paper_base /. t) )
            | None -> ("-", "-")
          in
          Printf.printf "%-6s %-12s %-7s %10.3f %9s | %10s %10s\n"
            tc.Circuits.label r.lang r.method_ r.time_s speedup paper_t
            paper_spd)
        rows;
      print_newline ())
    (Circuits.all_paper_cases ());
  let tc = Circuits.rc_ladder 20 in
  let rep, t = wall (fun () -> Flow.abstract_testcase tc ~dt) in
  record ~table:"table2" ~comp:tc.Circuits.label ~target:"abstraction-tool" t;
  Printf.printf
    "Abstraction tool on RC20 (%d nodes, %d branches): %.4f s wall (paper: \
     7.67 s on the authors' machine)\n"
    rep.Flow.nodes rep.Flow.branches t

let table3 ~t_stop () =
  header
    (Printf.sprintf
       "TABLE III -- analog models integrated in the virtual platform \
        (simulated %g ms; paper: 100 ms; MIPS @ 200 MHz polling the ADC over \
        the APB bus, UART logging)"
       (t_stop *. 1e3));
  Printf.printf "%-6s %-36s %10s %9s | %10s %10s\n" "Comp."
    "Component model / VP binding" "Time(s)" "Speedup" "Paper(s)" "PaperSpd";
  let bindings =
    [
      Platform.Cosim { rtl_grain = true; substeps = 8; iterations = 3; fidelity = `Paper };
      Platform.Cosim { rtl_grain = false; substeps = 8; iterations = 3; fidelity = `Paper };
      Platform.Eln;
      Platform.Tdf;
      Platform.De_model;
      Platform.Cpp;
    ]
  in
  List.iter
    (fun (tc : Circuits.testcase) ->
      let rep = Flow.abstract_testcase tc ~dt in
      let program = Some rep.Flow.program in
      let paper_rows =
        Option.value ~default:[] (List.assoc_opt tc.Circuits.label paper_table3)
      in
      let paper_base = match paper_rows with [] -> nan | t :: _ -> t in
      let times =
        List.map
          (fun binding ->
            let r, t =
              wall (fun () ->
                  Platform.run ~cpu_hz:2e8 ~testcase:tc ~program ~binding ~dt
                    ~t_stop ())
            in
            ignore r.Platform.uart_output;
            record ~table:"table3" ~comp:tc.Circuits.label
              ~target:(Platform.binding_label binding) t;
            (binding, t))
          bindings
      in
      let base = snd (List.hd times) in
      List.iteri
        (fun i (binding, t) ->
          let paper_t = List.nth_opt paper_rows i in
          Printf.printf "%-6s %-36s %10.3f %8.2fx | %10s %10s\n"
            tc.Circuits.label
            (Platform.binding_label binding)
            t (base /. t)
            (match paper_t with Some v -> Printf.sprintf "%.2f" v | None -> "-")
            (match paper_t with
            | Some v -> Printf.sprintf "%.2fx" (paper_base /. v)
            | None -> "-"))
        times;
      print_newline ())
    (Circuits.all_paper_cases ())

let tool_time () =
  header
    "TOOL PROCESSING TIME -- abstraction flow cost vs circuit size (paper \
     Section V-B: 7.67 s for RC20 on the authors' machine)";
  Printf.printf "%-6s %6s %8s %8s %6s %11s %11s %12s %10s\n" "Comp." "nodes"
    "branches" "classes" "defs" "acquire(ms)" "enrich(ms)" "assemble(ms)"
    "solve(ms)";
  List.iter
    (fun n ->
      let tc = Circuits.rc_ladder n in
      let rep = Flow.abstract_testcase tc ~dt in
      record ~table:"tooltime" ~comp:tc.Circuits.label
        ~target:"abstraction-flow" (Flow.total_seconds rep);
      Printf.printf "%-6s %6d %8d %8d %6d %11.3f %11.3f %12.3f %10.3f\n"
        tc.Circuits.label rep.Flow.nodes rep.Flow.branches rep.Flow.classes
        rep.Flow.definitions
        (rep.Flow.acquisition_s *. 1e3)
        (rep.Flow.enrichment_s *. 1e3)
        (rep.Flow.assemble_s *. 1e3)
        (rep.Flow.solve_s *. 1e3))
    [ 1; 2; 4; 8; 16; 20; 32; 48; 64 ]

let ablation ~t_stop () =
  header
    "ABLATION 1 -- solve mode: exact elimination vs relaxed state \
     decoupling (RCn sweep)";
  Printf.printf "%-6s %6s | %11s %12s | %11s %12s | %13s\n" "Comp." "defs"
    "exact(ms)" "run(ns/step)" "relax(ms)" "run(ns/step)" "NRMSE(rel-ex)";
  List.iter
    (fun n ->
      let tc = Circuits.rc_ladder n in
      let acq = Acquisition.of_circuit tc.Circuits.circuit in
      let map, _ = Enrich.enrich acq in
      let asm =
        Assemble.assemble map ~inputs:[ "in" ] ~outputs:[ tc.Circuits.output ]
      in
      let solve mode = wall (fun () -> Solve.solve ~mode ~name:"a" ~dt asm) in
      let p_exact, t_exact = solve `Exact in
      let p_relax, t_relax = solve `Relaxed in
      let run p =
        let r, t =
          wall (fun () -> Wrap.run_cpp p ~stimuli:tc.Circuits.stimuli ~t_stop)
        in
        (r.Wrap.trace, t /. (t_stop /. dt) *. 1e9)
      in
      let tr_e, ns_e = run p_exact in
      let tr_r, ns_r = run p_relax in
      let err = nrmse_against ~reference:tr_e tr_r ~t_stop in
      Printf.printf "%-6s %6d | %11.2f %12.1f | %11.2f %12.1f | %13.2e\n"
        tc.Circuits.label
        (List.length asm.Assemble.defs)
        (t_exact *. 1e3) ns_e (t_relax *. 1e3) ns_r err)
    [ 1; 4; 8; 16; 24; 32 ];
  header
    "ABLATION 2 -- SPICE-engine cost model: device re-evaluation and \
     re-factorisation per solver pass (RC20)";
  Printf.printf "%-10s %-10s %12s %10s\n" "substeps" "iterations" "time(s)"
    "vs (1,1)";
  let tc = Circuits.rc_ladder 20 in
  let short = t_stop /. 4.0 in
  let base = ref nan in
  List.iter
    (fun (substeps, iterations) ->
      let _, t =
        wall (fun () ->
            Engine.run_testcase_spice ~substeps ~iterations tc ~dt
              ~t_stop:short)
      in
      if Float.is_nan !base then base := t;
      Printf.printf "%-10d %-10d %12.3f %9.1fx\n" substeps iterations t
        (t /. !base))
    [ (1, 1); (2, 1); (4, 1); (8, 1); (8, 3); (16, 3) ];
  header
    "ABLATION 3 -- kernel machinery per model step (same abstracted RC1 \
     model under each MoC)";
  Printf.printf "%-10s %12s %14s %14s %14s\n" "MoC" "ns/step" "activations"
    "delta cycles" "sig updates";
  let tc = Circuits.rc_ladder 1 in
  let p = (Flow.abstract_testcase tc ~dt).Flow.program in
  let steps = t_stop /. dt in
  let report name (r : Wrap.result) t =
    let st = r.Wrap.de_stats in
    Printf.printf "%-10s %12.1f %14s %14s %14s\n" name
      (t /. steps *. 1e9)
      (match st with Some s -> string_of_int s.De.activations | None -> "-")
      (match st with Some s -> string_of_int s.De.delta_cycles | None -> "-")
      (match st with Some s -> string_of_int s.De.signal_updates | None -> "-")
  in
  let r, t = wall (fun () -> Wrap.run_cpp p ~stimuli:tc.Circuits.stimuli ~t_stop) in
  report "C++" r t;
  let r, t = wall (fun () -> Wrap.run_de p ~stimuli:tc.Circuits.stimuli ~t_stop) in
  report "SC-DE" r t;
  let r, t = wall (fun () -> Wrap.run_tdf p ~stimuli:tc.Circuits.stimuli ~t_stop) in
  report "SC-AMS/TDF" r t;
  let r, t =
    wall (fun () ->
        Wrap.run_eln tc.Circuits.circuit ~inputs:tc.Circuits.stimuli
          ~output:tc.Circuits.output ~dt ~t_stop)
  in
  report "SC-AMS/ELN" r t

let ablation_integration ~t_stop () =
  header
    "ABLATION 4 -- integration rule of the generated model (coarse step, \
     smooth stimulus, error vs fine conservative reference)";
  Printf.printf "%-6s %10s | %14s %14s | %8s\n" "Comp." "dt" "BE NRMSE"
    "Trap NRMSE" "gain";
  let sine = Amsvp_util.Stimulus.sine ~freq:1e3 ~amplitude:1.0 () in
  List.iter
    (fun (label, coarse) ->
      let tc = Option.get (Circuits.by_name label) in
      let reference =
        Engine.spice_like ~substeps:64 ~iterations:1 tc.Circuits.circuit
          ~inputs:(List.map (fun (n, _) -> (n, sine)) tc.Circuits.stimuli)
          ~output:tc.Circuits.output ~dt:coarse ~t_stop
      in
      let err integration =
        let rep =
          Flow.abstract_testcase ~mode:`Exact ~integration tc ~dt:coarse
        in
        let runner = Sfprogram.Runner.create rep.Flow.program in
        let stimuli =
          Array.make (List.length tc.Circuits.stimuli) sine
        in
        let tr = Sfprogram.Runner.run runner ~stimuli ~t_stop () in
        nrmse_against ~reference:reference.Engine.trace tr ~t_stop
      in
      let be = err `Backward_euler and trap = err `Trapezoidal in
      Printf.printf "%-6s %10.2e | %14.3e %14.3e | %7.1fx\n" label coarse be
        trap (be /. trap))
    [ ("RC1", 5e-6); ("RC1", 1e-6); ("OA", 1e-6); ("RC4", 2e-6) ]

let ablation_sparse () =
  header
    "ABLATION 5 -- dense vs sparse LU on the network matrix (the \
     sparse-solver bottleneck of Section III-B): factor once, then per-step \
     substitution cost";
  Printf.printf "%-7s %6s | %11s %11s | %12s %12s | %8s\n" "Comp." "n"
    "dense f(us)" "sparse f(us)" "dense s(ns)" "sparse s(ns)" "nnz";
  List.iter
    (fun n ->
      let tc = Circuits.rc_ladder n in
      let sys = Amsvp_mna.System.build tc.Circuits.circuit in
      let size = Amsvp_mna.System.size sys in
      let m = Amsvp_mna.System.stamp_matrix sys ~h:dt in
      let trips = Amsvp_mna.System.stamp_triplets sys ~h:dt in
      let reps = 50 in
      let dense_lu = ref None in
      let _, tdf =
        wall (fun () ->
            for _ = 1 to reps do
              dense_lu := Some (Amsvp_mna.Matrix.lu_factor m)
            done)
      in
      let sparse_lu = ref None in
      let _, tsf =
        wall (fun () ->
            for _ = 1 to reps do
              sparse_lu := Some (Amsvp_mna.Sparse.lu_factor ~n:size trips)
            done)
      in
      let dense_lu = Option.get !dense_lu and sparse_lu = Option.get !sparse_lu in
      let b = Array.init size (fun i -> float_of_int (i mod 5)) in
      let x = Array.make size 0.0 in
      let solve_reps = 2000 in
      let _, tds =
        wall (fun () ->
            for _ = 1 to solve_reps do
              Amsvp_mna.Matrix.lu_solve_into dense_lu ~b ~x
            done)
      in
      let _, tss =
        wall (fun () ->
            for _ = 1 to solve_reps do
              Amsvp_mna.Sparse.lu_solve_into sparse_lu ~b ~x
            done)
      in
      Printf.printf "%-7s %6d | %11.1f %11.1f | %12.1f %12.1f | %8d\n"
        tc.Circuits.label size
        (tdf /. float_of_int reps *. 1e6)
        (tsf /. float_of_int reps *. 1e6)
        (tds /. float_of_int solve_reps *. 1e9)
        (tss /. float_of_int solve_reps *. 1e9)
        (Amsvp_mna.Sparse.nnz sparse_lu))
    [ 5; 10; 20; 40; 80; 160 ]

let figures () =
  header "FIGURE 2 -- Verilog-AMS description with the three block kinds";
  let design = Amsvp_vams.Parser.parse Sources.active_filter in
  let flat = Elaborate.flatten design ~top:"active_filter" in
  Printf.printf
    "parsed %d modules; active_filter flattens to %d branch contributions \
     over %d nets; classification: %s\n"
    (List.length design)
    (List.length flat.Elaborate.contributions)
    (List.length flat.Elaborate.nets)
    (match Elaborate.classify flat with
    | `Conservative -> "conservative (Equation 2)"
    | `Signal_flow -> "signal flow (Equation 1)");
  let tc = Circuits.rc_ladder 1 in
  let acq = Acquisition.of_circuit tc.Circuits.circuit in
  let map, _ = Enrich.enrich acq in
  header "FIGURE 5 -- enriched equation multimap with dependency classes (RC1)";
  Format.printf "%a@." Eqmap.pp map;
  let asm =
    Assemble.assemble map ~inputs:[ "in" ] ~outputs:[ tc.Circuits.output ]
  in
  header
    "FIGURE 6 -- assembled equation tree for V(out,gnd) (note the \
     occurrences of the output on the right-hand side)";
  let tree = Assemble.inline_tree asm tc.Circuits.output in
  Format.printf "V(out,gnd) =@.%a@." Expr.pp_tree tree;
  header "FIGURE 7 -- solved update rules and generated C++";
  List.iter
    (fun (v, e) ->
      Format.printf "%s := %s@." (Expr.var_name v) (Expr.to_string e))
    (Solve.solved_assignments ~dt asm);
  print_newline ();
  let p = Solve.solve ~name:"RC1" ~dt asm in
  print_string (Codegen.emit Codegen.Cpp p)

module Spec = Amsvp_sweep.Spec
module Sweep_runner = Amsvp_sweep.Runner
module Procpool = Amsvp_serve.Procpool
module Sweep_stats = Amsvp_sweep.Stats

let sweep_bench ~t_stop ~seed ~jobs () =
  let max_jobs =
    match jobs with
    | Some j -> j
    | None -> min 4 (Domain.recommended_domain_count ())
  in
  header
    (Printf.sprintf
       "SWEEP -- 64-point Monte Carlo tolerance sweep of the rectifier \
        (seed %d): domain-pool scaling, 1 vs %d workers, plan-replay \
        abstraction cache"
       seed max_jobs);
  let spec =
    {
      Spec.default with
      Spec.name = "rect_mc";
      circuit = Some "RECT";
      t_stop = Some t_stop;
      samples = 64;
      seed;
      axes =
        [
          { Spec.param = "d1.g_on";
            range = Spec.Uniform { lo = 5e-3; hi = 2e-2 } };
          { Spec.param = "r1.r"; range = Spec.Normal { mean = 1e3; sigma = 50.0 } };
        ];
    }
  in
  let tc = Option.get (Circuits.by_name "RECT") in
  let run jobs = Sweep_runner.run ~jobs spec tc in
  Printf.printf "%-8s %10s %12s %14s %12s\n" "jobs" "time(s)" "points/s"
    "cache hit/miss" "NRMSE mean";
  let report (s : Sweep_runner.summary) =
    record ~table:"sweep" ~comp:"RECT"
      ~target:(Printf.sprintf "jobs%d" s.Sweep_runner.jobs)
      ?nrmse:
        (Option.map
           (fun (st : Sweep_stats.t) -> st.Sweep_stats.mean)
           s.Sweep_runner.nrmse_stats)
      s.Sweep_runner.total_s;
    Printf.printf "%-8d %10.3f %12.1f %8d/%-5d %12s\n" s.Sweep_runner.jobs
      s.Sweep_runner.total_s
      (float_of_int (Array.length s.Sweep_runner.points)
      /. s.Sweep_runner.total_s)
      s.Sweep_runner.cache_hits s.Sweep_runner.cache_misses
      (match s.Sweep_runner.nrmse_stats with
      | Some st -> Printf.sprintf "%.3e" st.Sweep_stats.mean
      | None -> "-")
  in
  let s1 = run 1 in
  report s1;
  let sn = if max_jobs > 1 then run max_jobs else s1 in
  if max_jobs > 1 then report sn;
  (* Value results must not depend on the worker count. *)
  let values (s : Sweep_runner.summary) =
    Array.map
      (fun (r : Sweep_runner.point_result) ->
        (r.Sweep_runner.point.Amsvp_sweep.Sampler.overrides,
         r.Sweep_runner.out_final, r.Sweep_runner.out_rms,
         r.Sweep_runner.nrmse))
      s.Sweep_runner.points
  in
  Printf.printf "determinism (jobs=1 vs jobs=%d): %s\n" sn.Sweep_runner.jobs
    (if values s1 = values sn then "byte-identical point results"
     else "MISMATCH")

(* ---- Service mode: cold vs warm prepared-sweep request latency ---- *)

let serve_bench ~t_stop ~seed () =
  header
    (Printf.sprintf
       "SERVE -- request latency of the sweep service (simulated %g ms per \
        point): a cold submit pays prepare (probe + gate + plan + compile + \
        expand) before the first point; a warm resubmit replays the cached \
        prepared sweep"
       (t_stop *. 1e3));
  (* RC20: the one circuit whose preparation (the full abstraction
     flow) is expensive enough to matter per request. Reference off —
     the serve block measures request overhead, not MNA cost. *)
  let spec =
    {
      Spec.default with
      Spec.name = "serve_mc";
      circuit = Some "RC20";
      t_stop = Some t_stop;
      samples = 8;
      seed;
      reference = false;
      axes =
        [
          { Spec.param = "r1.r";
            range = Spec.Uniform { lo = 900.0; hi = 1100.0 } };
        ];
    }
  in
  let tc = Option.get (Circuits.by_name "RC20") in
  let best n f =
    let t = ref infinity in
    for _ = 1 to n do
      let (), ti = wall f in
      if ti < !t then t := ti
    done;
    !t
  in
  let run_all ctx =
    Array.iter
      (fun p -> ignore (Sweep_runner.run_point ctx p))
      (Sweep_runner.ctx_points ctx)
  in
  (* Cold request: prepare + execute, as the daemon's first submit of a
     spec does. Best-of-2 so one allocator hiccup does not decide it. *)
  let cold_s = best 2 (fun () -> run_all (Sweep_runner.prepare spec tc)) in
  let ctx, prepare_s = wall (fun () -> Sweep_runner.prepare spec tc) in
  let points = Array.length (Sweep_runner.ctx_points ctx) in
  (* Warm request: same points against the kept context. *)
  run_all ctx;
  let warm_s = best 2 (fun () -> run_all ctx) in
  record ~table:"serve" ~comp:"RC20" ~target:"request" ~meth:"cold" cold_s;
  record ~table:"serve" ~comp:"RC20" ~target:"request" ~meth:"warm" warm_s;
  record ~table:"serve" ~comp:"RC20" ~target:"prepare" prepare_s;
  serve_block :=
    Some
      {
        sv_spec = spec.Spec.name;
        sv_points = points;
        sv_prepare_s = prepare_s;
        sv_cold_s = cold_s;
        sv_warm_s = warm_s;
      };
  let per t = t /. float_of_int (max 1 points) *. 1e3 in
  Printf.printf
    "%-8s %3d points   prepare: %.4f s\n\
     cold submit: %.4f s (%.3f ms/point)   warm resubmit: %.4f s (%.3f \
     ms/point)   warm speedup: %.2fx\n"
    "RC20" points prepare_s cold_s (per cold_s) warm_s (per warm_s)
    (cold_s /. warm_s)

(* Per-point cost of the cross-process telemetry pipeline: the same
   forked-pool sweep with the journal off (workers ship nothing) vs on
   (every worker drains its events/spans over the result pipe and the
   parent ingests them). Fork/dispatch cost is identical in both runs,
   so the delta isolates the telemetry. *)
let obs_serve_bench ~t_stop ~seed () =
  header
    "OBS_SERVE -- telemetry shipping overhead (forked pool, journal off vs \
     on; budget 5%)";
  let spec =
    {
      Spec.default with
      Spec.name = "obs_serve_mc";
      circuit = Some "RC20";
      t_stop = Some t_stop;
      samples = 48;
      seed;
      reference = false;
      axes =
        [
          { Spec.param = "r1.r";
            range = Spec.Uniform { lo = 900.0; hi = 1100.0 } };
        ];
    }
  in
  let tc = Option.get (Circuits.by_name "RC20") in
  let ctx = Sweep_runner.prepare spec tc in
  let points = Sweep_runner.ctx_points ctx in
  let n_points = Array.length points in
  let run_pool () =
    ignore
      (Procpool.run ~workers:2
         (fun ~retry:_ p -> Sweep_runner.run_point ctx p)
         points)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let journal_was = Journal.enabled () in
  Journal.disable ();
  run_pool () (* warm-up: page in the pool machinery once *);
  (* Paired rounds, alternating which side goes first each round: a
     pool run is ~0.2 s, and fork cost grows with the parent heap, so
     any fixed ordering would charge whichever side consistently ran
     later for GC drift. Each round times off and on back-to-back in
     the same window, so ambient load shifts both sides of a pair
     together; the median per-round ratio then discards rounds where a
     burst landed between the two samples — unlike min-of-each-side,
     which compares floors from two different windows. *)
  let rounds = 7 in
  let sample enabled =
    Journal.set_enabled enabled;
    time run_pool
  in
  let pairs =
    Array.init rounds (fun round ->
        if round land 1 = 0 then
          let o = sample false in
          let n = sample true in
          (o, n)
        else
          let n = sample true in
          let o = sample false in
          (o, n))
  in
  Journal.set_enabled journal_was;
  let ranked =
    Array.to_list pairs
    |> List.map (fun (o, n) -> ((n -. o) /. o, o, n))
    |> List.sort compare
  in
  let ratio, off_s, on_s = List.nth ranked (rounds / 2) in
  let overhead_pct = ratio *. 100.0 in
  record ~table:"obs_serve" ~comp:"RC20" ~target:"pool" ~meth:"telemetry_off"
    off_s;
  record ~table:"obs_serve" ~comp:"RC20" ~target:"pool" ~meth:"telemetry_on"
    on_s;
  obs_serve_block :=
    Some { ob_points = n_points; ob_off_s = off_s; ob_on_s = on_s;
           ob_overhead_pct = overhead_pct };
  let per t = t /. float_of_int (max 1 n_points) *. 1e3 in
  Printf.printf
    "%-8s %3d points   telemetry off: %.4f s (%.3f ms/point)   on: %.4f s \
     (%.3f ms/point)   overhead: %+.2f%% %s\n"
    "RC20" n_points off_s (per off_s) on_s (per on_s) overhead_pct
    (if overhead_pct <= 5.0 then "(within budget)" else "(OVER 5% BUDGET)")

module Absint = Amsvp_analysis.Absint
module Lint = Amsvp_analysis.Lint

(* The "absint" section: what the value-range engine costs and what it
   buys. Costs: the MAY fixpoint per circuit (the pass every lint run
   and daemon screen pays) and a full source-to-findings lint of the
   shipped Verilog-AMS example. Buys: a poisoned RC1 grid -- the
   high-resistance decades provably breach a 0.5 amplitude budget on a
   unit sine -- run in full vs with static pruning, same spec. *)
let absint_bench ~t_stop () =
  header "ABSINT -- value-range analysis wall and static-prune economics";
  let best n f =
    let t = ref infinity in
    for _ = 1 to n do
      let (), ti = wall f in
      if ti < !t then t := ti
    done;
    !t
  in
  List.iter
    (fun label ->
      let tc = Option.get (Circuits.by_name label) in
      let p = (Flow.abstract_testcase tc ~dt).Flow.program in
      let analyze_s = best 3 (fun () -> ignore (Absint.analyze p)) in
      let a = Absint.analyze p in
      record ~table:"absint" ~comp:label ~target:"analyze" analyze_s;
      Printf.printf
        "%-8s analyze: %8.4f ms   abstract steps: %2d%s   constant facts: %d\n"
        label (analyze_s *. 1e3) a.Absint.a_steps
        (if a.Absint.a_widened then " (widened)" else "")
        (List.length (Absint.constant_facts a)))
    [ "2IN"; "RC1"; "RC20"; "OA" ];
  (* Full front-end wall (parse + elaborate + every pass) on the
     shipped example, when run from the repo root where it lives. *)
  let example = "examples/rc_lowpass.vams" in
  if Sys.file_exists example then begin
    let src = In_channel.with_open_text example In_channel.input_all in
    let lint_s = best 3 (fun () -> ignore (Lint.lint ~file:example src)) in
    record ~table:"absint" ~comp:"rc_lowpass" ~target:"lint" lint_s;
    Printf.printf "%-8s full lint: %8.4f ms\n" "rc_low" (lint_s *. 1e3)
  end
  else Printf.printf "(%s not found -- lint row skipped)\n" example;
  (* RC1 is a 5 kOhm / 25 nF lowpass (f_c ~ 1.27 kHz). On a 2 kHz unit
     sine, grid points below ~5.5 kOhm provably exceed a 0.5 amplitude
     budget -- half this grid. Reference on: a pruned point skips the
     MNA reference too, which is where a sweep's wall clock actually
     goes. *)
  let spec =
    {
      Spec.default with
      Spec.name = "rc_poison";
      circuit = Some "RC1";
      stimulus = Some (Spec.Sine { freq = 2e3; amplitude = 1.0 });
      t_stop = Some t_stop;
      reference = true;
      amplitude_limit = Some 0.5;
      axes =
        [
          { Spec.param = "r1.r";
            range = Spec.Grid { lo = 1e3; hi = 1e4; n = 10 } };
        ];
    }
  in
  let tc = Option.get (Circuits.by_name "RC1") in
  let plain, plain_s = wall (fun () -> Sweep_runner.run ~jobs:1 spec tc) in
  let pruned, pruned_s =
    wall (fun () -> Sweep_runner.run ~jobs:1 ~prune:true spec tc)
  in
  let points = Array.length plain.Sweep_runner.points in
  let n_pruned = pruned.Sweep_runner.pruned in
  record ~table:"absint" ~comp:"RC1" ~target:"poisoned-sweep" ~meth:"plain"
    plain_s;
  record ~table:"absint" ~comp:"RC1" ~target:"poisoned-sweep" ~meth:"pruned"
    pruned_s;
  absint_block :=
    Some
      {
        ai_spec = spec.Spec.name;
        ai_points = points;
        ai_pruned = n_pruned;
        ai_plain_s = plain_s;
        ai_pruned_s = pruned_s;
      };
  Printf.printf
    "%-8s %2d points   plain: %.4f s   with --prune-static: %.4f s   (%d/%d \
     points proven unhealthy, %.2fx)\n"
    "RC1" points plain_s pruned_s n_pruned points (plain_s /. pruned_s)

let micro () =
  header "MICRO -- Bechamel per-step benchmarks (one group per table)";
  let tc = Circuits.rc_ladder 1 in
  let p = (Flow.abstract_testcase tc ~dt).Flow.program in
  let runner = Sfprogram.Runner.create p in
  let inputs = [| 1.0 |] in
  let eln_stepper =
    Engine.Eln_stepper.create tc.Circuits.circuit ~inputs:[ "in" ]
      ~output:tc.Circuits.output ~dt
  in
  let spice_stepper =
    Engine.Spice_stepper.create tc.Circuits.circuit ~inputs:[ "in" ]
      ~output:tc.Circuits.output ~dt
  in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"paper"
      [
        Test.make ~name:"table1/cpp_model_step"
          (Staged.stage (fun () -> Sfprogram.Runner.step runner ~inputs));
        Test.make ~name:"table1/eln_solver_step"
          (Staged.stage (fun () ->
               ignore (Engine.Eln_stepper.step eln_stepper ~input_values:inputs)));
        Test.make ~name:"table1/vams_solver_step"
          (Staged.stage (fun () ->
               ignore
                 (Engine.Spice_stepper.step spice_stepper ~input_values:inputs)));
        Test.make ~name:"table2/abstraction_flow_rc4"
          (Staged.stage (fun () ->
               ignore (Flow.abstract_testcase (Circuits.rc_ladder 4) ~dt)));
        Test.make ~name:"table3/platform_slice_cpp"
          (Staged.stage (fun () ->
               ignore
                 (Platform.run ~cpu_hz:2e8 ~testcase:tc ~program:(Some p)
                    ~binding:Platform.Cpp ~dt ~t_stop:(dt *. 200.0) ())));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name r acc ->
        match Analyze.OLS.estimates r with
        | Some (e :: _) -> (name, e) :: acc
        | Some [] | None -> acc)
      results []
  in
  List.iter
    (fun (name, e) -> Printf.printf "%-40s %14.1f ns/iter\n" name e)
    (List.sort compare rows)

let probe_overhead ~t_stop () =
  header
    (Printf.sprintf
       "PROBE OVERHEAD -- abstracted RC1 hot loop (Table II row, simulated \
        %g ms): observe hook absent vs a tap + health monitor attached"
       (t_stop *. 1e3));
  let tc = Circuits.rc_ladder 1 in
  let p = (Flow.abstract_testcase tc ~dt).Flow.program in
  let run ?observe () =
    ignore (Wrap.run_cpp ?observe p ~stimuli:tc.Circuits.stimuli ~t_stop)
  in
  run ();
  (* Best-of-5 so a stray scheduler hiccup does not decide the verdict. *)
  let best f =
    let t = ref infinity in
    for _ = 1 to 5 do
      let _, ti = wall f in
      if ti < !t then t := ti
    done;
    !t
  in
  let t_off = best (fun () -> run ()) in
  let t_on =
    best (fun () ->
        let probes = Probe.create ~capacity:4096 () in
        ignore (Probe.tap probes tc.Circuits.output);
        ignore (Probe.watch probes tc.Circuits.output);
        run ~observe:(Probe.observer probes) ())
  in
  record ~table:"probes" ~comp:tc.Circuits.label ~target:"probes-off" t_off;
  record ~table:"probes" ~comp:tc.Circuits.label ~target:"probes-on" t_on;
  Printf.printf
    "%-6s probes off: %.4f s   probes on (1 tap + 1 monitor): %.4f s   \
     attached cost: %+.2f%%\n"
    tc.Circuits.label t_off t_on
    ((t_on /. t_off -. 1.0) *. 100.0)

(* ---- Convergence telemetry: journal overhead + Newton stats ---- *)

let convergence ~t_stop () =
  header
    (Printf.sprintf
       "CONVERGENCE -- solver telemetry on the RC20 SPICE-like run \
        (simulated %g ms): journal off vs on, Newton residual/waste stats \
        from the journaled run (budget: <= 5%% overhead)"
       (t_stop *. 1e3));
  let tc = Circuits.rc_ladder 20 in
  let was_enabled = Journal.enabled () in
  let run () = Engine.run_testcase_spice tc ~dt ~t_stop in
  ignore (run ());
  (* Interleaved off/on pairs, overhead = median of the per-pair time
     ratios: sequential best-of-N batches fold clock drift (thermal,
     frequency scaling, heap growth) into whichever side runs second —
     an off-vs-off control showed that bias alone can exceed the
     budget — and pairing plus the median also discards the stray
     scheduler hiccup a shared machine throws in. *)
  let pairs = 11 in
  let ratios = Array.make pairs 0.0 in
  let t_off = ref infinity and t_on = ref infinity in
  let last = ref None in
  for i = 0 to pairs - 1 do
    Journal.disable ();
    let _, toff = wall (fun () -> ignore (run ())) in
    if toff < !t_off then t_off := toff;
    Journal.enable ();
    let _, ton = wall (fun () -> last := Some (run ())) in
    if ton < !t_on then t_on := ton;
    ratios.(i) <- ton /. toff
  done;
  let t_off = !t_off and t_on = !t_on in
  if not was_enabled then Journal.disable ();
  Array.sort compare ratios;
  let overhead = (ratios.(pairs / 2) -. 1.0) *. 100.0 in
  record ~table:"convergence" ~comp:tc.Circuits.label ~target:"journal-off"
    t_off;
  record ~table:"convergence" ~comp:tc.Circuits.label ~target:"journal-on"
    t_on;
  Printf.printf
    "%-6s journal off: %.4f s   journal on: %.4f s   overhead: %+.2f%% \
     (budget 5%%: %s)\n"
    tc.Circuits.label t_off t_on overhead
    (if overhead <= 5.0 then "PASS" else "OVER");
  match !last with
  | Some { Engine.stats; newton = Some nw; _ } ->
      let pivot_ratio =
        if nw.Engine.pivot_min > 0.0 then
          nw.Engine.pivot_max /. nw.Engine.pivot_min
        else infinity
      in
      Printf.printf
        "%-6s steps: %d   newton passes: %d   wasted: %d (%.1f%%)   max \
         residual: %.2e   pivot ratio: %.2e   stressed substeps: %d\n"
        tc.Circuits.label stats.Engine.steps nw.Engine.total_iters
        nw.Engine.wasted_iters
        (100.0
        *. float_of_int nw.Engine.wasted_iters
        /. float_of_int (max 1 nw.Engine.total_iters))
        nw.Engine.max_residual pivot_ratio nw.Engine.stressed_substeps;
      convergence_block :=
        Some
          {
            cb_comp = tc.Circuits.label;
            cb_off_s = t_off;
            cb_on_s = t_on;
            cb_overhead_pct = overhead;
            cb_steps = stats.Engine.steps;
            cb_total_iters = nw.Engine.total_iters;
            cb_wasted_iters = nw.Engine.wasted_iters;
            cb_max_residual = nw.Engine.max_residual;
            cb_pivot_ratio = pivot_ratio;
            cb_stressed_substeps = nw.Engine.stressed_substeps;
          }
  | Some _ | None ->
      print_endline "convergence: no Newton telemetry captured (unexpected)"

(* ---- Fast-fidelity conservative engine vs the paper cost model ---- *)

let mna_fast ~t_stop () =
  header
    (Printf.sprintf
       "MNA_FAST -- fast-fidelity SPICE-like engine (simulated %g ms at the \
        paper's dt): sparse symbolic reuse + factor caching + Newton \
        early-exit + adaptive substepping vs the paper cost model (gate: >= \
        5x per row, NRMSE <= 5e-3)"
       (t_stop *. 1e3));
  let cases =
    [ Circuits.rc_ladder 20; Circuits.opamp (); Circuits.rectifier () ]
  in
  List.iter
    (fun (tc : Circuits.testcase) ->
      let run fidelity =
        Engine.run_testcase_spice ~fidelity tc ~dt ~t_stop
      in
      (* warm-up, and the traces for the accuracy evidence *)
      let paper = run `Paper in
      let fast = run `Fast in
      let nrmse = nrmse_against ~reference:paper.Engine.trace fast.Engine.trace ~t_stop in
      (* Interleaved pairs, best-of: same drift-folding rationale as
         the convergence section. *)
      let pairs = 3 in
      let t_paper = ref infinity and t_fast = ref infinity in
      for _ = 1 to pairs do
        let _, tp = wall (fun () -> ignore (run `Paper)) in
        if tp < !t_paper then t_paper := tp;
        let _, tf = wall (fun () -> ignore (run `Fast)) in
        if tf < !t_fast then t_fast := tf
      done;
      let speedup = !t_paper /. !t_fast in
      record ~table:"mna_fast" ~comp:tc.Circuits.label ~target:"paper"
        !t_paper;
      record ~table:"mna_fast" ~comp:tc.Circuits.label ~target:"fast" ~nrmse
        !t_fast;
      Printf.printf
        "%-6s paper: %.4f s (%d factorizations)   fast: %.4f s (%d)   \
         speedup: %.1fx   nrmse: %.2e   gate: %s\n"
        tc.Circuits.label !t_paper paper.Engine.stats.factorizations !t_fast
        fast.Engine.stats.factorizations speedup nrmse
        (if speedup >= 5.0 && nrmse <= 5e-3 then "PASS" else "FAIL");
      mna_fast_rows :=
        {
          mf_comp = tc.Circuits.label;
          mf_paper_s = !t_paper;
          mf_fast_s = !t_fast;
          mf_speedup = speedup;
          mf_nrmse = nrmse;
          mf_paper_factors = paper.Engine.stats.factorizations;
          mf_fast_factors = fast.Engine.stats.factorizations;
        }
        :: !mna_fast_rows)
    cases

(* ---- Execution engines: tree interpreter vs register bytecode ---- *)

let engines ~t_stop () =
  header
    (Printf.sprintf
       "ENGINES -- per-step cost of the abstracted models (simulated %g ms): \
        tree interpreter vs register bytecode, identical outputs required"
       (t_stop *. 1e3));
  Printf.printf "%-6s %7s %7s %6s %12s %14s %14s %9s %8s\n" "" "assign"
    "instrs" "regs" "compile(us)" "tree(ns/step)" "byte(ns/step)" "speedup"
    "max-ulp";
  List.iter
    (fun label ->
      let tc = Option.get (Circuits.by_name label) in
      let p = (Flow.abstract_testcase tc ~dt).Flow.program in
      let compiled, compile_s = wall (fun () -> Sfprogram.compile p) in
      (* Identical outputs first: the speed comparison is meaningless
         if the engines disagree anywhere along the trace. *)
      let stimuli = Wrap.stimuli_for p tc.Circuits.stimuli in
      let run runner = Sfprogram.Runner.run runner ~stimuli ~t_stop () in
      let tr_tree = run (Sfprogram.Runner.create ~engine:`Tree p) in
      let tr_byte = run (Sfprogram.Runner.create ~compiled p) in
      let max_ulp = ref 0L in
      for i = 0 to Trace.length tr_tree - 1 do
        let d =
          Metrics.ulp_distance (Trace.value tr_tree i) (Trace.value tr_byte i)
        in
        if Int64.compare d !max_ulp > 0 then max_ulp := d
      done;
      if Int64.compare !max_ulp 1L > 0 then
        failwith
          (Printf.sprintf "engines disagree on %s: max ulp distance %Ld" label
             !max_ulp);
      (* Per-step cost: the bare hot loop, stimulus sampling excluded,
         input values toggled so piecewise-linear models exercise both
         branches. Best-of-5 runs of the whole loop. *)
      let steps = max 1000 (int_of_float (t_stop /. dt)) in
      let n_inputs = List.length p.Sfprogram.inputs in
      let time_engine runner =
        let inputs = Array.make (max 1 n_inputs) 0.0 in
        let pass () =
          Sfprogram.Runner.reset runner;
          for i = 1 to steps do
            Array.fill inputs 0 (Array.length inputs)
              (if i land 31 < 16 then 0.0 else 1.0);
            Sfprogram.Runner.step runner ~inputs
          done
        in
        let best = ref infinity in
        for _ = 1 to 5 do
          let (), d = wall pass in
          if d < !best then best := d
        done;
        !best /. float_of_int steps
      in
      let tree_s = time_engine (Sfprogram.Runner.create ~engine:`Tree p) in
      let byte_s = time_engine (Sfprogram.Runner.create ~compiled p) in
      record ~table:"engines" ~comp:label ~target:"step" ~meth:"tree" tree_s;
      record ~table:"engines" ~comp:label ~target:"step" ~meth:"bytecode"
        byte_s;
      record ~table:"engines" ~comp:label ~target:"compile" compile_s;
      engine_rows :=
        {
          e_circuit = label;
          e_assignments = List.length p.Sfprogram.assignments;
          e_instrs = Amsvp_sf.Compile.n_instrs compiled;
          e_regs = Amsvp_sf.Compile.n_regs compiled;
          e_compile_s = compile_s;
          e_tree_step_ns = tree_s *. 1e9;
          e_byte_step_ns = byte_s *. 1e9;
          e_max_ulp = !max_ulp;
        }
        :: !engine_rows;
      Printf.printf "%-6s %7d %7d %6d %12.2f %14.1f %14.1f %8.2fx %8Ld\n"
        label
        (List.length p.Sfprogram.assignments)
        (Amsvp_sf.Compile.n_instrs compiled)
        (Amsvp_sf.Compile.n_regs compiled)
        (compile_s *. 1e6) (tree_s *. 1e9) (byte_s *. 1e9) (tree_s /. byte_s)
        !max_ulp)
    [ "2IN"; "RC1"; "RC20"; "OA"; "RECT" ]

type cli = {
  quick : bool;
  obs : bool;
  trace_out : string option;
  metrics_out : string option;
  journal_out : string option;
  results_out : string option;
  seed : int;
  jobs : int option;
  sections : string list;
}

let all_sections =
  [ "table1"; "table2"; "table3"; "tooltime"; "ablation"; "sweep"; "probes";
    "convergence"; "mna_fast"; "engines"; "serve"; "obs_serve"; "absint";
    "figures"; "micro" ]

let parse_cli argv =
  let usage () =
    prerr_endline
      "usage: bench [--quick] [--obs] [--trace-out FILE] [--metrics-out \
       FILE]\n\
      \             [--journal-out FILE] [--results-out FILE | --no-results]\n\
      \             [--seed N] [--jobs N] [SECTION...]\n\
       sections: table1 table2 table3 tooltime ablation sweep probes \
       convergence mna_fast engines serve obs_serve absint figures micro";
    exit 2
  in
  let int_arg name v rest k =
    match int_of_string_opt v with
    | Some n -> k n rest
    | None ->
        Printf.eprintf "bench: %s requires an integer argument\n" name;
        usage ()
  in
  let rec go acc = function
    | [] -> acc
    | "--quick" :: rest -> go { acc with quick = true } rest
    | "--obs" :: rest -> go { acc with obs = true } rest
    | "--trace-out" :: f :: rest -> go { acc with trace_out = Some f } rest
    | "--metrics-out" :: f :: rest -> go { acc with metrics_out = Some f } rest
    | "--journal-out" :: f :: rest -> go { acc with journal_out = Some f } rest
    | "--results-out" :: f :: rest -> go { acc with results_out = Some f } rest
    | "--seed" :: v :: rest ->
        int_arg "--seed" v rest (fun n rest -> go { acc with seed = n } rest)
    | "--jobs" :: v :: rest ->
        int_arg "--jobs" v rest (fun n rest ->
            go { acc with jobs = Some n } rest)
    | [ (("--trace-out" | "--metrics-out" | "--journal-out" | "--results-out"
         | "--seed" | "--jobs") as a) ] ->
        Printf.eprintf "bench: %s requires an argument\n" a;
        usage ()
    | "--no-results" :: rest -> go { acc with results_out = None } rest
    | ("--help" | "-h") :: _ -> usage ()
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
        Printf.eprintf "bench: unknown option %s\n" a;
        usage ()
    | a :: rest when List.mem a all_sections ->
        go { acc with sections = acc.sections @ [ a ] } rest
    | a :: _ ->
        Printf.eprintf "bench: unknown section %s\n" a;
        usage ()
  in
  go
    {
      quick = false;
      obs = false;
      trace_out = None;
      metrics_out = None;
      journal_out = None;
      results_out = Some "BENCH_results.json";
      seed = 0;
      jobs = None;
      sections = [];
    }
    (Array.to_list argv |> List.tl)

let () =
  let cli = parse_cli Sys.argv in
  let quick = cli.quick in
  (* Always on: the "sections" block of BENCH_results.json is built
     from recorded spans. Library spans are per run, not per step, so
     the recorder does not perturb the hot loops being measured. *)
  Obs.enable ();
  (* The journal is opt-in: per-run solver events would be noise for a
     plain bench run, but with --journal-out they become the raw input
     of `amsvp report`. Enabled before any section so every run lands
     in the ring (bounded: oldest events drop past the capacity). *)
  if cli.journal_out <> None then Journal.enable ();
  let want s = cli.sections = [] || List.mem s cli.sections in
  let section name f =
    if want name then begin
      let before = Obs.span_count () in
      Obs.with_span ~cat:"bench" ("bench." ^ name) f;
      section_spans := (name, before, Obs.span_count ()) :: !section_spans
    end
  in
  let scale x = if quick then x /. 10.0 else x in
  let t1 = scale 10e-3 and t2 = scale 50e-3 and t3 = scale 1e-3 in
  let wall_start = Unix.gettimeofday () in
  Printf.printf "amsvp benchmark harness -- Fraccaroli et al., DATE 2016\n";
  section "table1" (fun () -> table1 ~t_stop:t1 ());
  section "table2" (fun () -> table2 ~t_stop:t2 ());
  section "table3" (fun () -> table3 ~t_stop:t3 ());
  section "tooltime" (fun () -> tool_time ());
  section "ablation" (fun () ->
      ablation ~t_stop:(scale 5e-3) ();
      ablation_integration ~t_stop:2e-3 ();
      ablation_sparse ());
  section "sweep" (fun () ->
      sweep_bench ~t_stop:(scale 2e-3) ~seed:cli.seed ~jobs:cli.jobs ());
  section "probes" (fun () -> probe_overhead ~t_stop:(scale 50e-3) ());
  section "convergence" (fun () -> convergence ~t_stop:(scale 1e-3) ());
  (* Fixed simulated time: the NRMSE evidence normalises by the
     reference trace's value range, and the RC20 output needs the full
     window to move — scaling t_stop down shrinks the range, not the
     error, and turns the accuracy gate into noise. *)
  section "mna_fast" (fun () -> mna_fast ~t_stop:1e-3 ());
  section "engines" (fun () -> engines ~t_stop:t1 ());
  (* Fixed simulated time: the serve block measures per-request
     overhead (prepare vs replay), which scaling t_stop would only
     dilute. *)
  section "serve" (fun () -> serve_bench ~t_stop:1e-4 ~seed:cli.seed ());
  (* Fixed simulated time, like "serve": the telemetry cost per task
     is fixed (a few frames), so the budget is judged against a
     realistically sized point (the sweep section's t_stop), not
     against fork overhead on a toy point. *)
  section "obs_serve" (fun () ->
      obs_serve_bench ~t_stop:2e-3 ~seed:cli.seed ());
  (* Fixed simulated time: the prune economics depend on where the
     breach lands in the horizon, so scaling t_stop would change the
     story, not just its magnitude. *)
  section "absint" (fun () -> absint_bench ~t_stop:2e-3 ());
  section "figures" (fun () -> figures ());
  section "micro" (fun () -> micro ());
  let total_wall_s = Unix.gettimeofday () -. wall_start in
  (match cli.results_out with
  | Some path ->
      Obs.write_file path (results_json ~quick ~total_wall_s);
      Printf.printf "bench results written to %s\n" path
  | None -> ());
  (match cli.trace_out with
  | Some path ->
      Obs.write_file path (Obs.chrome_trace ());
      Printf.printf "chrome trace written to %s\n" path
  | None -> ());
  (match cli.metrics_out with
  | Some path ->
      Obs.write_file path (Obs.prometheus ());
      Printf.printf "metrics written to %s\n" path
  | None -> ());
  (match cli.journal_out with
  | Some path ->
      Journal.write_jsonl path;
      Printf.printf "journal written to %s (%d event(s), %d dropped)\n" path
        (Journal.count ()) (Journal.dropped ())
  | None -> ());
  if cli.obs then prerr_string (Obs.summary ());
  print_newline ();
  line ();
  print_endline "benchmark harness done.";
  line ()
