(* amsvp: the command-line front-end of the abstraction tool.

   Subcommands:
     abstract  -- Verilog-AMS -> C++/SystemC-DE/SystemC-AMS-TDF source
     simulate  -- run a model under a chosen MoC and dump samples
     report    -- abstraction statistics (Fig. 4 pipeline timings)
     lint      -- multi-pass static analysis with located diagnostics

   Examples:
     amsvp abstract model.vams --top rc1 --out 'V(out,gnd)' --target cpp
     amsvp simulate model.vams --top rc1 --out 'V(out,gnd)' \
           --moc eln --t-stop 2e-3 --square 1e-3,0,1 *)

open Cmdliner

module Velaborate = Amsvp_vhdlams.Velaborate
module Vparser = Amsvp_vhdlams.Vparser
module Ac = Amsvp_mna.Ac
module Elaborate = Amsvp_vams.Elaborate
module Parser = Amsvp_vams.Parser
module Lexer = Amsvp_vams.Lexer
module Codegen = Amsvp_codegen.Codegen
module Flow = Amsvp_core.Flow
module Explain = Amsvp_core.Explain
module Sfprogram = Amsvp_sf.Sfprogram
module Wrap = Amsvp_sysc.Wrap
module Engine = Amsvp_mna.Engine
module Probe = Amsvp_probe.Probe
module Stimulus = Amsvp_util.Stimulus
module Trace = Amsvp_util.Trace
module Obs = Amsvp_obs.Obs
module Journal = Amsvp_obs.Journal
module Json = Amsvp_util.Json
module Runreport = Amsvp_report.Runreport
module Diag = Amsvp_diag.Diag
module Lint = Amsvp_analysis.Lint

(* Observability flags, shared by the flow-running subcommands: --obs
   prints a summary to stderr on exit, --trace-out/--metrics-out write
   the Chrome trace / Prometheus dumps, --journal-out writes the
   structured run journal as JSONL (each implies recording its
   layer). *)
let obs_flags =
  let obs =
    Arg.(value & flag
         & info [ "obs" ]
             ~doc:"Record spans and metrics; print a summary to stderr on \
                   exit.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON (open in Perfetto or \
                   chrome://tracing) to $(docv). Implies recording.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write a Prometheus-style metrics dump to $(docv). Implies \
                   recording.")
  in
  let journal_out =
    Arg.(value & opt (some string) None
         & info [ "journal-out" ] ~docv:"FILE"
             ~doc:"Record the structured run journal (solver convergence, \
                   sweep dispatch, health events) and write it as JSONL to \
                   $(docv); render it with $(b,amsvp report --journal).")
  in
  Term.(const (fun obs trace_out metrics_out journal_out ->
            (obs, trace_out, metrics_out, journal_out))
        $ obs $ trace_out $ metrics_out $ journal_out)

let with_obs (obs, trace_out, metrics_out, journal_out) f =
  if obs || trace_out <> None || metrics_out <> None then Obs.enable ();
  if journal_out <> None then Journal.enable ();
  (* The sinks dump even when [f] fails, but a sink-write failure must
     not mask [f]'s outcome — report it cleanly and exit non-zero. *)
  let write_failed = ref false in
  let dump path contents =
    try Obs.write_file path contents
    with Sys_error msg ->
      Printf.eprintf "amsvp: cannot write %s: %s\n" path msg;
      write_failed := true
  in
  let dumped = ref false in
  let flush_sinks () =
    if not !dumped then begin
      dumped := true;
      (match trace_out with
      | Some path -> dump path (Obs.chrome_trace ())
      | None -> ());
      (match metrics_out with
      | Some path -> dump path (Obs.prometheus ())
      | None -> ());
      (match journal_out with
      | Some path -> dump path (Journal.to_jsonl ())
      | None -> ());
      if obs then prerr_string (Obs.summary ())
    end
  in
  (* [Stdlib.exit] does not unwind the stack, so a rejection rendered
     by [fatal_finding] mid-run would skip a [Fun.protect] finaliser
     and lose everything recorded up to the defect — the sinks flush
     from [at_exit] instead, which runs on every exit path; the
     [dumped] flag keeps the normal path from dumping twice. *)
  at_exit flush_sinks;
  let result = Fun.protect f ~finally:flush_sinks in
  if !write_failed then exit 1;
  result

(* "V(out,gnd)" / "V(out)" -> potential variable *)
let parse_output s =
  let s = String.trim s in
  let fail () = Error (`Msg (Printf.sprintf "cannot parse output %S" s)) in
  if String.length s > 3 && String.sub s 0 2 = "V(" && s.[String.length s - 1] = ')'
  then begin
    let body = String.sub s 2 (String.length s - 3) in
    match String.split_on_char ',' body with
    | [ a ] -> Ok (Expr.potential (String.trim a) "gnd")
    | [ a; b ] -> Ok (Expr.potential (String.trim a) (String.trim b))
    | _ -> fail ()
  end
  else fail ()

let output_conv =
  Arg.conv (parse_output, fun ppf v -> Format.pp_print_string ppf (Expr.var_name v))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"Verilog-AMS source file.")

let top_arg =
  Arg.(required & opt (some string) None & info [ "top" ] ~docv:"MODULE"
       ~doc:"Top module to elaborate.")

let out_arg =
  Arg.(value & opt output_conv (Expr.potential "out" "gnd")
       & info [ "out" ] ~docv:"ACCESS"
         ~doc:"Output signal of interest, e.g. 'V(out,gnd)'.")

let dt_arg =
  Arg.(value & opt float 50e-9 & info [ "dt" ] ~docv:"SECONDS"
       ~doc:"Discretisation time step (default 50 ns, as in the paper).")

let mode_arg =
  let modes = [ ("auto", `Auto); ("exact", `Exact); ("relaxed", `Relaxed) ] in
  Arg.(value & opt (enum modes) `Auto & info [ "mode" ]
       ~doc:"Solve mode: $(b,auto), $(b,exact) or $(b,relaxed).")

let integration_arg =
  let kinds =
    [ ("backward-euler", `Backward_euler); ("trapezoidal", `Trapezoidal) ]
  in
  Arg.(value & opt (enum kinds) `Backward_euler & info [ "integration" ]
       ~doc:"Integration rule: $(b,backward-euler) or $(b,trapezoidal).")

let fidelity_arg =
  let kinds = [ ("paper", `Paper); ("fast", `Fast) ] in
  Arg.(value & opt (enum kinds) `Paper & info [ "fidelity" ]
       ~doc:"Conservative solver cost model: $(b,paper) (faithful SPICE \
             structure, bit-identical to previous releases) or $(b,fast) \
             (reused sparse factors, Newton early-exit, adaptive \
             substepping; bounded error, much faster).")

let lang_arg =
  let langs = [ ("verilog-ams", `Verilog); ("vhdl-ams", `Vhdl) ] in
  Arg.(value & opt (enum langs) `Verilog & info [ "lang" ]
       ~doc:"Input language: $(b,verilog-ams) or $(b,vhdl-ams).")

let inputs_arg =
  Arg.(value & opt (list string) [] & info [ "inputs" ] ~docv:"PORTS"
       ~doc:"Externally driven ports of a VHDL-AMS top entity (VHDL \
             terminals carry no direction; ignored for Verilog-AMS).")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Front-end and flow exceptions all render as one located diagnostic
   line (the same [Diag] scheme `amsvp lint` reports through). *)
let fatal_finding f =
  prerr_endline (Diag.to_text f);
  exit 1

let with_frontend_errors ?file f =
  let span line col = Diag.span ?file line col in
  try f () with
  | Diag.Rejected finding -> fatal_finding finding
  | Lexer.Lex_error (msg, line, col) ->
      fatal_finding (Diag.error ~span:(span line col) "AMS001" msg)
  | Parser.Parse_error (msg, line, col) | Vparser.Parse_error (msg, line, col)
    ->
      fatal_finding (Diag.error ~span:(span line col) "AMS002" msg)
  | Elaborate.Elab_error (msg, sp) | Velaborate.Elab_error (msg, sp) ->
      fatal_finding (Diag.finding ?span:sp Diag.Error "AMS003" msg)
  | Amsvp_core.Assemble.No_definition v ->
      fatal_finding
        (Diag.error "AMS030"
           (Printf.sprintf "no equation defines %s" (Expr.var_name v)))
  | Amsvp_core.Solve.Nonlinear v ->
      fatal_finding
        (Diag.error "AMS042"
           (Printf.sprintf "nonlinear definition for %s (outside the linear \
                            scope)"
              (Expr.var_name v)))
  | Amsvp_core.Solve.Underdetermined msg ->
      fatal_finding
        (Diag.error "AMS030"
           (Printf.sprintf "underdetermined system (%s)" msg))
  | Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let flatten_any lang src ~file top inputs =
  match lang with
  | `Verilog -> Elaborate.flatten (Parser.parse ~file src) ~top
  | `Vhdl -> Velaborate.flatten (Vparser.parse ~file src) ~top ~inputs

let abstract_model file top output dt mode integration lang inputs =
  with_frontend_errors ~file (fun () ->
      let flat = flatten_any lang (read_file file) ~file top inputs in
      match Elaborate.classify flat with
      | `Conservative ->
          let circuit = Elaborate.to_circuit flat in
          Flow.abstract_circuit ~name:top ~mode ~integration circuit
            ~outputs:[ output ] ~dt
      | `Signal_flow ->
          let contributions = Elaborate.signal_flow_assignments flat in
          let program =
            Flow.convert_signal_flow ~name:top
              ~inputs:flat.Elaborate.input_ports ~outputs:[ output ]
              ~contributions ~dt
          in
          {
            Flow.program;
            nodes = List.length flat.Elaborate.nets;
            branches = List.length flat.Elaborate.contributions;
            classes = 0;
            fidelity = `Paper;
            variants = 0;
            definitions = List.length contributions;
            explain = Explain.of_signal_flow program;
            acquisition_s = 0.0;
            enrichment_s = 0.0;
            assemble_s = 0.0;
            solve_s = 0.0;
          })

(* abstract *)

let target_arg =
  let targets =
    [ ("cpp", `Codegen Codegen.Cpp); ("sc-de", `Codegen Codegen.Systemc_de);
      ("sc-tdf", `Codegen Codegen.Systemc_ams_tdf); ("program", `Program) ]
  in
  Arg.(value & opt (enum targets) (`Codegen Codegen.Cpp) & info [ "target" ]
       ~doc:"Output: $(b,cpp), $(b,sc-de), $(b,sc-tdf) source, or the \
             reloadable $(b,program) text format.")

let abstract_cmd =
  let run obscfg file top output dt mode integration lang inputs target =
    with_obs obscfg (fun () ->
        let report =
          abstract_model file top output dt mode integration lang inputs
        in
        match target with
        | `Codegen t -> print_string (Codegen.emit t report.Flow.program)
        | `Program ->
            print_string
              (Amsvp_sf.Serialize.program_to_string report.Flow.program))
  in
  Cmd.v
    (Cmd.info "abstract"
       ~doc:"Abstract a Verilog-AMS or VHDL-AMS model and emit C++/SystemC \
             source.")
    Term.(const run $ obs_flags $ file_arg $ top_arg $ out_arg $ dt_arg
          $ mode_arg $ integration_arg $ lang_arg $ inputs_arg $ target_arg)

(* simulate *)

let moc_arg =
  let mocs =
    [ ("cpp", `Cpp); ("de", `De); ("tdf", `Tdf); ("eln", `Eln); ("vams", `Vams) ]
  in
  Arg.(value & opt (enum mocs) `Cpp & info [ "moc" ]
       ~doc:"Model of computation: $(b,cpp), $(b,de), $(b,tdf), $(b,eln) or \
             $(b,vams).")

let engine_arg =
  let engines = [ ("bytecode", `Bytecode); ("tree", `Tree) ] in
  Arg.(value & opt (enum engines) `Bytecode & info [ "engine" ]
       ~doc:"Signal-flow execution engine for the abstracted model \
             ($(b,cpp)/$(b,de)/$(b,tdf) MoCs): $(b,bytecode) (compiled \
             register code, the default) or $(b,tree) (the reference \
             interpreter). Both produce bit-identical traces.")

let t_stop_arg =
  Arg.(value & opt float 2e-3 & info [ "t-stop" ] ~docv:"SECONDS"
       ~doc:"Simulated duration.")

let square_arg =
  Arg.(value & opt (t3 float float float) (1e-3, 0.0, 1.0)
       & info [ "square" ] ~docv:"PERIOD,LOW,HIGH"
         ~doc:"Square-wave stimulus applied to every input port.")

let samples_arg =
  Arg.(value & opt int 20 & info [ "samples" ]
       ~doc:"Number of equally spaced samples to print.")

let from_program_arg =
  Arg.(value & opt (some file) None & info [ "from-program" ] ~docv:"FILE"
       ~doc:"Skip the abstraction flow and load a serialised program \
             (written by $(b,abstract --target program)).")

let probe_args =
  let probe =
    Arg.(value & opt_all string []
         & info [ "probe" ] ~docv:"SIG"
             ~doc:"Tap a signal for waveform capture: $(b,V(a,b)), \
                   $(b,I(a,b)) or a bare quantity name. Repeatable. \
                   Defaults to the $(b,--out) signal when only \
                   $(b,--vcd-out)/$(b,--wave-out) is given.")
  in
  let vcd_out =
    Arg.(value & opt (some string) None
         & info [ "vcd-out" ] ~docv:"FILE"
             ~doc:"Write the tapped waveforms as a VCD file (GTKWave, \
                   Surfer).")
  in
  let wave_out =
    Arg.(value & opt (some string) None
         & info [ "wave-out" ] ~docv:"FILE"
             ~doc:"Write the tapped waveforms as long-format CSV \
                   (signal,time,value).")
  in
  let every =
    Arg.(value & opt int 1
         & info [ "probe-every" ] ~docv:"N"
             ~doc:"Retain one probe sample out of every $(docv) steps.")
  in
  Term.(const (fun probe vcd_out wave_out every ->
            (probe, vcd_out, wave_out, every))
        $ probe $ vcd_out $ wave_out $ every)

(* Build the probe set for [--probe]/[--vcd-out]/[--wave-out]: [None]
   when nothing was asked for, so the runners take their probe-free
   fast path. *)
let probe_set (sigs, vcd_out, wave_out, every) ~default =
  if sigs = [] && vcd_out = None && wave_out = None then None
  else begin
    let set = Probe.create ~every () in
    let sigs = if sigs = [] then [ default ] else sigs in
    List.iter
      (fun s ->
        match Amsvp_sweep.Runner.output_of_string s with
        | Ok v -> ignore (Probe.tap set v)
        | Error m ->
            Printf.eprintf "error: %s\n" m;
            exit 1)
      sigs;
    Some set
  end

let probe_export (_, vcd_out, wave_out, _) = function
  | None -> ()
  | Some set ->
      (match vcd_out with
      | Some path -> Probe.write_vcd set path
      | None -> ());
      (match wave_out with
      | Some path -> Probe.write_csv set path
      | None -> ())

let simulate_cmd =
  let run obscfg file top output dt mode integration fidelity lang inputs
      from_program moc engine t_stop (period, low, high) samples probecfg =
    with_obs obscfg @@ fun () ->
    with_frontend_errors ~file (fun () ->
        let p =
          match from_program with
          | Some path -> (
              try Amsvp_sf.Serialize.program_of_string (read_file path)
              with Amsvp_sf.Serialize.Parse_error (msg, line) ->
                Printf.eprintf "program parse error at line %d: %s\n" line msg;
                exit 1)
          | None ->
              (abstract_model file top output dt mode integration lang inputs)
                .Flow.program
        in
        let probes = probe_set probecfg ~default:(Expr.var_name output) in
        let observe = Option.map Probe.observer probes in
        let stim = Stimulus.square ~period ~low ~high in
        let stimuli = List.map (fun n -> (n, stim)) p.Sfprogram.inputs in
        let trace =
          match moc with
          | `Cpp -> (Wrap.run_cpp ~engine ?observe p ~stimuli ~t_stop).Wrap.trace
          | `De -> (Wrap.run_de ~engine ?observe p ~stimuli ~t_stop).Wrap.trace
          | `Tdf -> (Wrap.run_tdf ~engine ?observe p ~stimuli ~t_stop).Wrap.trace
          | `Eln | `Vams -> (
              let flat = flatten_any lang (read_file file) ~file top inputs in
              match Elaborate.classify flat with
              | `Signal_flow ->
                  Printf.eprintf
                    "error: %s is a signal-flow model; the conservative \
                     solvers need a network\n"
                    top;
                  exit 1
              | `Conservative -> (
                  let circuit = Elaborate.to_circuit flat in
                  let circuit = Flow.insert_probes circuit ~outputs:[ output ] in
                  let inputs =
                    List.map
                      (fun n -> (n, stim))
                      (Amsvp_netlist.Circuit.input_signals circuit)
                  in
                  match moc with
                  | `Eln ->
                      (Wrap.run_eln ?observe circuit ~inputs ~output ~dt
                         ~t_stop)
                        .Wrap.trace
                  | _ ->
                      (Engine.spice_like ~fidelity ?observe circuit ~inputs
                         ~output ~dt ~t_stop)
                        .Engine.trace))
        in
        probe_export probecfg probes;
        Printf.printf "# time(s)  %s\n" (Expr.var_name output);
        for i = 0 to samples - 1 do
          let t = t_stop *. float_of_int i /. float_of_int (samples - 1) in
          Printf.printf "%.9e  %.9e\n" t (Trace.sample_at trace t)
        done)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate a Verilog-AMS or VHDL-AMS model under a chosen MoC.")
    Term.(const run $ obs_flags $ file_arg $ top_arg $ out_arg $ dt_arg
          $ mode_arg $ integration_arg $ fidelity_arg $ lang_arg $ inputs_arg
          $ from_program_arg $ moc_arg $ engine_arg $ t_stop_arg $ square_arg
          $ samples_arg $ probe_args)

(* report *)

(* "--threshold 15%" or "--threshold 0.15" -> 0.15 *)
let parse_threshold s =
  let s = String.trim s in
  let pct = String.length s > 0 && s.[String.length s - 1] = '%' in
  let body = if pct then String.sub s 0 (String.length s - 1) else s in
  match float_of_string_opt body with
  | Some v when v >= 0.0 -> Ok (if pct then v /. 100.0 else v)
  | Some _ | None ->
      Error (`Msg (Printf.sprintf "cannot parse threshold %S" s))

let threshold_conv =
  Arg.conv
    (parse_threshold, fun ppf v -> Format.fprintf ppf "%g%%" (v *. 100.0))

let report_cmd =
  let parse_json path =
    try Json.parse (read_file path) with
    | Json.Parse_error (msg, off) ->
        Printf.eprintf "%s: JSON parse error at offset %d: %s\n" path off msg;
        exit 1
    | Sys_error msg ->
        Printf.eprintf "amsvp: %s\n" msg;
        exit 1
  in
  let parse_journal path =
    try Json.parse_lines (read_file path) with
    | Json.Parse_error (msg, off) ->
        Printf.eprintf "%s: journal parse error at offset %d: %s\n" path off
          msg;
        exit 1
    | Sys_error msg ->
        Printf.eprintf "amsvp: %s\n" msg;
        exit 1
  in
  let run obscfg file top output dt mode integration lang inputs journal_file
      bench_file compare_file threshold top_n json out_file =
    let run_report =
      journal_file <> None || bench_file <> None || compare_file <> None
    in
    match (run_report, compare_file, file) with
    | false, _, Some file ->
        (* Original form: the abstraction pipeline report of a model. *)
        let top =
          match top with
          | Some t -> t
          | None ->
              Printf.eprintf "amsvp report: the pipeline report needs --top\n";
              exit 2
        in
        with_obs obscfg (fun () ->
            let report =
              abstract_model file top output dt mode integration lang inputs
            in
            Format.printf "%a@." Flow.pp_report report)
    | false, _, None ->
        Printf.eprintf
          "amsvp report: give a model FILE for the pipeline report, or \
           --journal/--bench/--compare for a run report\n";
        exit 2
    | true, Some baseline_path, _ ->
        (* Regression gate: compare the current bench results against a
           committed baseline; non-zero exit when any per-section
           metric regressed past the threshold. *)
        let current =
          match bench_file with
          | Some p -> parse_json p
          | None ->
              Printf.eprintf
                "amsvp report --compare: needs --bench CURRENT.json\n";
              exit 2
        in
        let baseline = parse_json baseline_path in
        let regs = Runreport.compare_bench ~baseline ~current ~threshold in
        let compared = Runreport.compared_metrics ~baseline ~current in
        print_string (Runreport.regressions_to_text ~threshold ~compared regs);
        if regs <> [] then exit 1
    | true, None, _ ->
        let journal =
          match journal_file with
          | Some p -> parse_journal p
          | None -> []
        in
        let bench = Option.map parse_json bench_file in
        let r = Runreport.build ~top:top_n ~journal ?bench () in
        let contents = if json then Runreport.to_json r else Runreport.to_text r in
        (match out_file with
        | Some path -> Obs.write_file path contents
        | None -> print_string contents)
  in
  let report_file_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Verilog-AMS source file (pipeline-report form).")
  in
  let report_top_arg =
    Arg.(value & opt (some string) None & info [ "top" ] ~docv:"MODULE"
         ~doc:"Top module to elaborate (pipeline-report form).")
  in
  let journal_arg =
    Arg.(value & opt (some file) None & info [ "journal" ] ~docv:"FILE"
         ~doc:"Journal JSONL written by $(b,--journal-out): renders \
               convergence histograms, sweep cache hit rates and the health \
               rollup.")
  in
  let bench_arg =
    Arg.(value & opt (some file) None & info [ "bench" ] ~docv:"FILE"
         ~doc:"BENCH_results.json written by the bench harness: renders the \
               self-time profile; with $(b,--compare), the current side of \
               the regression check.")
  in
  let compare_arg =
    Arg.(value & opt (some file) None & info [ "compare" ] ~docv:"BASELINE"
         ~doc:"Compare $(b,--bench) against this baseline \
               BENCH_results.json; exit non-zero when any per-section metric \
               regressed past $(b,--threshold).")
  in
  let threshold_arg =
    Arg.(value & opt threshold_conv 0.15 & info [ "threshold" ] ~docv:"PCT"
         ~doc:"Regression threshold for $(b,--compare), e.g. $(b,15%) or \
               $(b,0.15) (default 15%).")
  in
  let top_arg_n =
    Arg.(value & opt int 15 & info [ "top-spans" ] ~docv:"N"
         ~doc:"Number of hot spans in the self-time profile (run-report \
               form).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the run report as JSON.")
  in
  let out_file_arg =
    Arg.(value & opt (some string) None & info [ "out-file" ] ~docv:"FILE"
         ~doc:"Write the run report to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Print the abstraction pipeline report of a model, render a \
             run's journal and bench results into a profile (run-report \
             form), or gate on per-section perf regressions with \
             $(b,--compare).")
    Term.(const run $ obs_flags $ report_file_arg $ report_top_arg $ out_arg
          $ dt_arg $ mode_arg $ integration_arg $ lang_arg $ inputs_arg
          $ journal_arg $ bench_arg $ compare_arg $ threshold_arg $ top_arg_n
          $ json_arg $ out_file_arg)

(* explain *)

let explain_cmd =
  let run obscfg file top output dt mode integration lang inputs json out =
    with_obs obscfg (fun () ->
        let report =
          abstract_model file top output dt mode integration lang inputs
        in
        let contents =
          if json then Explain.to_json report.Flow.explain ^ "\n"
          else Explain.to_text report.Flow.explain ^ "\n"
        in
        match out with
        | Some path ->
            let oc = open_out path in
            output_string oc contents;
            close_out oc
        | None -> print_string contents)
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the plan as JSON instead of pretty text.")
  in
  let out_file_arg =
    Arg.(value & opt (some string) None
         & info [ "out-file" ] ~docv:"FILE"
             ~doc:"Write the plan to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain the abstraction plan: the defining equation chosen \
             for each solved variable, the disabled members of its \
             equivalence class, discretisation and elimination decisions, \
             and the cone of influence.")
    Term.(const run $ obs_flags $ file_arg $ top_arg $ out_arg $ dt_arg
          $ mode_arg $ integration_arg $ lang_arg $ inputs_arg $ json_arg
          $ out_file_arg)

(* op / netlist *)

let conservative_circuit lang file top inputs output =
  let flat = flatten_any lang (read_file file) ~file top inputs in
  (match Elaborate.classify flat with
  | `Conservative -> ()
  | `Signal_flow ->
      Printf.eprintf "error: this analysis needs a conservative network\n";
      exit 1);
  let circuit = Elaborate.to_circuit flat in
  match output with
  | Some o -> Flow.insert_probes circuit ~outputs:[ o ]
  | None -> circuit

let op_cmd =
  let run file top lang inputs levels =
    with_frontend_errors ~file (fun () ->
        let circuit = conservative_circuit lang file top inputs None in
        let sol = Amsvp_mna.Dc.operating_point ~inputs:levels circuit in
        Format.printf "%a@." Amsvp_mna.Dc.pp sol)
  in
  let levels =
    Arg.(value & opt (list (pair ~sep:'=' string float)) []
         & info [ "set" ] ~docv:"IN=LEVEL"
           ~doc:"DC level of each external input, e.g. --set in=1.0.")
  in
  Cmd.v
    (Cmd.info "op" ~doc:"DC operating-point analysis (.op).")
    Term.(const run $ file_arg $ top_arg $ lang_arg $ inputs_arg $ levels)

let netlist_cmd =
  let run file top lang inputs =
    with_frontend_errors ~file (fun () ->
        let circuit = conservative_circuit lang file top inputs None in
        print_string (Amsvp_netlist.Export.to_spice ~title:top circuit))
  in
  Cmd.v
    (Cmd.info "netlist"
       ~doc:"Export the elaborated network as a SPICE deck.")
    Term.(const run $ file_arg $ top_arg $ lang_arg $ inputs_arg)

(* sweep *)

module Spec = Amsvp_sweep.Spec
module Sweep_runner = Amsvp_sweep.Runner
module Sweep_report = Amsvp_sweep.Report
module Sweep_checkpoint = Amsvp_sweep.Checkpoint
module Daemon = Amsvp_serve.Daemon
module Serve_client = Amsvp_serve.Client
module Serve_protocol = Amsvp_serve.Protocol

(* "dev.p:grid:1e3,2e3,5" | "dev.p:values:1,2,3" | "dev.p:uniform:1,2"
   | "dev.p:normal:1e3,50" *)
let parse_axis s =
  let fail () = Error (`Msg (Printf.sprintf "cannot parse axis %S" s)) in
  let float_or_fail t =
    match float_of_string_opt t with Some v -> v | None -> raise Exit
  in
  match String.split_on_char ':' s with
  | [ param; kind; args ] -> (
      try
        let args = List.map float_or_fail (String.split_on_char ',' args) in
        match (kind, args) with
        | "grid", [ lo; hi; n ] ->
            Ok { Spec.param; range = Spec.Grid { lo; hi; n = int_of_float n } }
        | "values", (_ :: _ as vs) -> Ok { Spec.param; range = Spec.Values vs }
        | "uniform", [ lo; hi ] ->
            Ok { Spec.param; range = Spec.Uniform { lo; hi } }
        | "normal", [ mean; sigma ] ->
            Ok { Spec.param; range = Spec.Normal { mean; sigma } }
        | _ -> fail ()
      with Exit -> fail ())
  | _ -> fail ()

let axis_conv =
  Arg.conv
    ( parse_axis,
      fun ppf (a : Spec.axis) -> Format.pp_print_string ppf a.Spec.param )

let fidelity_opt_arg =
  let kinds = [ ("paper", `Paper); ("fast", `Fast) ] in
  Arg.(value & opt (some (enum kinds)) None & info [ "fidelity" ]
       ~doc:"Reference-engine cost model: $(b,paper) (faithful) or $(b,fast) \
             (reused sparse factors, Newton early-exit; bounded error). \
             Overrides the spec's $(b,fidelity) directive; defaults to the \
             spec (and ultimately to paper).")

let sweep_cmd =
  let run obscfg spec_file circuit file top lang inputs out_str axes samples
      seed jobs t_stop dt square sine mode integration fidelity no_reference
      report_out checkpoint resume point_timeout prune_static amplitude_limit
      =
    with_obs obscfg @@ fun () ->
    with_frontend_errors @@ fun () ->
    let spec =
      match spec_file with
      | None -> Spec.default
      | Some path -> (
          match Spec.of_string (read_file path) with
          | Ok s -> s
          | Error msg ->
              Printf.eprintf "%s: %s\n" path msg;
              exit 1)
    in
    let opt_override v current = match v with Some _ -> v | None -> current in
    let stimulus =
      match (square, sine) with
      | Some (period, low, high), _ -> Some (Spec.Square { period; low; high })
      | None, Some (freq, amplitude) -> Some (Spec.Sine { freq; amplitude })
      | None, None -> spec.Spec.stimulus
    in
    let spec =
      {
        spec with
        Spec.circuit = opt_override circuit spec.Spec.circuit;
        output = opt_override out_str spec.Spec.output;
        stimulus;
        t_stop = opt_override t_stop spec.Spec.t_stop;
        dt = opt_override dt spec.Spec.dt;
        mode = (match mode with Some m -> m | None -> spec.Spec.mode);
        integration =
          (match integration with
          | Some i -> i
          | None -> spec.Spec.integration);
        samples =
          (match samples with Some n -> n | None -> spec.Spec.samples);
        seed = (match seed with Some n -> n | None -> spec.Spec.seed);
        jobs = opt_override jobs spec.Spec.jobs;
        reference = (if no_reference then false else spec.Spec.reference);
        fidelity = opt_override fidelity spec.Spec.fidelity;
        amplitude_limit =
          opt_override amplitude_limit spec.Spec.amplitude_limit;
        point_timeout = opt_override point_timeout spec.Spec.point_timeout;
        axes = spec.Spec.axes @ axes;
      }
    in
    if resume && checkpoint = None then begin
      Printf.eprintf "error: --resume needs --checkpoint\n";
      exit 1
    end;
    let tc =
      match file with
      | Some path ->
          let top =
            match top with
            | Some t -> t
            | None ->
                Printf.eprintf "error: --file needs --top\n";
                exit 1
          in
          let flat = flatten_any lang (read_file path) ~file:path top inputs in
          (match Elaborate.classify flat with
          | `Conservative -> ()
          | `Signal_flow ->
              Printf.eprintf "error: sweeps need a conservative network\n";
              exit 1);
          let circuit = Elaborate.to_circuit flat in
          let output =
            match spec.Spec.output with
            | Some s -> (
                match Sweep_runner.output_of_string s with
                | Ok v -> v
                | Error m ->
                    Printf.eprintf "error: %s\n" m;
                    exit 1)
            | None -> Expr.potential "out" "gnd"
          in
          let stim = Stimulus.square ~period:1e-3 ~low:0.0 ~high:1.0 in
          {
            Amsvp_netlist.Circuits.label = top;
            circuit;
            output;
            stimuli =
              List.map
                (fun n -> (n, stim))
                (Amsvp_netlist.Circuit.input_signals circuit);
          }
      | None -> (
          match Sweep_runner.resolve spec with
          | Ok tc -> tc
          | Error m ->
              Printf.eprintf "error: %s\n" m;
              exit 1)
    in
    let completed, writer =
      match checkpoint with
      | None -> ([], None)
      | Some path ->
          let circuit = tc.Amsvp_netlist.Circuits.label in
          let points = Spec.point_count spec in
          if resume then begin
            (* Refuse a foreign checkpoint explicitly instead of letting
               open_resume silently truncate it. *)
            match Sweep_checkpoint.load ~path spec ~circuit with
            | Error m ->
                Printf.eprintf "error: %s\n" m;
                exit 1
            | Ok _ ->
                let completed, w =
                  Sweep_checkpoint.open_resume ~path spec ~circuit ~points
                in
                (completed, Some w)
          end
          else ([], Some (Sweep_checkpoint.create ~path spec ~circuit ~points))
    in
    if completed <> [] then
      Printf.printf "resuming: %d point(s) recovered from the checkpoint\n"
        (List.length completed);
    let on_point =
      Option.map (fun w r -> Sweep_checkpoint.append w r) writer
    in
    let summary =
      Sweep_runner.run ~prune:prune_static ?on_point ~completed spec tc
    in
    Option.iter Sweep_checkpoint.close writer;
    (match report_out with
    | Some basename ->
        List.iter
          (fun p -> Printf.printf "report written to %s\n" p)
          (Sweep_report.write ~basename summary)
    | None -> ());
    Printf.printf
      "sweep %s over %s: %d points, jobs=%d, %.3fs (cache: %d replayed, %d \
       full)\n"
      spec.Spec.name summary.Sweep_runner.label
      (Array.length summary.Sweep_runner.points)
      summary.Sweep_runner.jobs summary.Sweep_runner.total_s
      summary.Sweep_runner.cache_hits summary.Sweep_runner.cache_misses;
    if summary.Sweep_runner.pruned > 0 then
      Printf.printf
        "  pruned: %d point(s) proven unhealthy statically and skipped\n"
        summary.Sweep_runner.pruned;
    if summary.Sweep_runner.unhealthy > 0 then
      Printf.printf "  UNHEALTHY: %d point(s) flagged by the watchdogs (see \
                     the report's health column)\n"
        summary.Sweep_runner.unhealthy;
    let show name = function
      | Some st -> Format.printf "  %-8s %a@." name Amsvp_sweep.Stats.pp st
      | None -> ()
    in
    show "nrmse" summary.Sweep_runner.nrmse_stats;
    show "out_rms" summary.Sweep_runner.rms_stats;
    show "wall_s" summary.Sweep_runner.wall_stats
  in
  let spec_file_arg =
    Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"FILE"
         ~doc:"Sweep specification file (see lib/sweep/spec.mli).")
  in
  let circuit_arg =
    Arg.(value & opt (some string) None & info [ "circuit" ] ~docv:"LABEL"
         ~doc:"Built-in test case: $(b,RECT), $(b,RC<n>), $(b,2IN), \
               $(b,OA), $(b,RLC).")
  in
  let sweep_file_arg =
    Arg.(value & opt (some file) None & info [ "file" ] ~docv:"FILE"
         ~doc:"Sweep an elaborated Verilog-AMS/VHDL-AMS model instead of a \
               built-in test case (needs $(b,--top)).")
  in
  let sweep_top_arg =
    Arg.(value & opt (some string) None & info [ "top" ] ~docv:"MODULE"
         ~doc:"Top module to elaborate (with $(b,--file)).")
  in
  let sweep_out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"ACCESS"
         ~doc:"Output of interest, e.g. 'V(out,gnd)'.")
  in
  let params_arg =
    Arg.(value & opt_all axis_conv [] & info [ "param" ] ~docv:"AXIS"
         ~doc:"Sweep axis: $(i,dev.p):$(b,grid):$(i,lo,hi,n), \
               $(b,values):$(i,v1,v2,...), $(b,uniform):$(i,lo,hi) or \
               $(b,normal):$(i,mean,sigma). Repeatable; grid axes combine \
               by cartesian product.")
  in
  let samples_arg =
    Arg.(value & opt (some int) None & info [ "samples" ] ~docv:"N"
         ~doc:"Monte Carlo draws per grid point.")
  in
  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
         ~doc:"RNG seed; results are byte-identical for a fixed seed, \
               independent of $(b,--jobs).")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains executing the points.")
  in
  let t_stop_opt =
    Arg.(value & opt (some float) None & info [ "t-stop" ] ~docv:"SECONDS"
         ~doc:"Simulated duration per point.")
  in
  let dt_opt =
    Arg.(value & opt (some float) None & info [ "dt" ] ~docv:"SECONDS"
         ~doc:"Discretisation step.")
  in
  let square_opt =
    Arg.(value & opt (some (t3 float float float)) None
         & info [ "square" ] ~docv:"PERIOD,LOW,HIGH"
           ~doc:"Square-wave stimulus applied to every input.")
  in
  let sine_opt =
    Arg.(value & opt (some (pair float float)) None
         & info [ "sine" ] ~docv:"FREQ,AMPLITUDE"
           ~doc:"Sine stimulus applied to every input.")
  in
  let mode_opt =
    let modes = [ ("auto", `Auto); ("exact", `Exact); ("relaxed", `Relaxed) ] in
    Arg.(value & opt (some (enum modes)) None & info [ "mode" ]
         ~doc:"Solve mode: $(b,auto), $(b,exact) or $(b,relaxed).")
  in
  let integration_opt =
    let kinds =
      [ ("backward-euler", `Backward_euler); ("trapezoidal", `Trapezoidal) ]
    in
    Arg.(value & opt (some (enum kinds)) None & info [ "integration" ]
         ~doc:"Integration rule.")
  in
  let no_reference_arg =
    Arg.(value & flag
         & info [ "no-reference" ]
             ~doc:"Skip the MNA reference simulation (no NRMSE).")
  in
  let report_out_arg =
    Arg.(value & opt (some string) None & info [ "report-out" ] ~docv:"BASE"
         ~doc:"Write $(docv).json and $(docv).csv reports.")
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Append each completed point to $(docv) (JSONL) as it \
               finishes, so a killed sweep can be picked up with \
               $(b,--resume).")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Recover completed points from $(b,--checkpoint) and run \
                   only the remainder; the merged report is identical to an \
                   uninterrupted run.")
  in
  let point_timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "point-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-point wall-clock budget: a point still running past \
                   it is aborted and flagged $(b,timeout) in the health \
                   column instead of stalling its worker.")
  in
  let prune_static_arg =
    Arg.(value & flag
         & info [ "prune-static" ]
             ~doc:"Pre-flight static pruning: the abstract interpreter \
                   proves parameter sub-regions unhealthy (non-finite \
                   output, or beyond $(b,--amplitude-limit)) and their \
                   points are skipped with a $(b,pruned) verdict instead \
                   of being simulated. Surviving points are untouched.")
  in
  let amplitude_limit_arg =
    Arg.(value & opt (some float) None
         & info [ "amplitude-limit" ] ~docv:"V"
             ~doc:"Amplitude watchdog: flag a point whose |output| exceeds \
                   $(docv); also the budget $(b,--prune-static) proves \
                   against.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run a parameter sweep (grid, Monte Carlo, corners) over a \
             circuit across worker domains.")
    Term.(const run $ obs_flags $ spec_file_arg $ circuit_arg $ sweep_file_arg
          $ sweep_top_arg $ lang_arg $ inputs_arg $ sweep_out_arg $ params_arg
          $ samples_arg $ seed_arg $ jobs_arg $ t_stop_opt $ dt_opt
          $ square_opt $ sine_opt $ mode_opt $ integration_opt
          $ fidelity_opt_arg $ no_reference_arg $ report_out_arg
          $ checkpoint_arg $ resume_arg $ point_timeout_arg $ prune_static_arg
          $ amplitude_limit_arg)

(* serve / submit *)

let serve_cmd =
  let run socket workers checkpoint_dir point_timeout retries journal_out
      journal_max_bytes journal_keep obs metrics_out metrics_every trace_out
      werror fidelity =
    if obs || metrics_out <> None || trace_out <> None then Obs.enable ();
    (match journal_out with
    | Some path ->
        Journal.enable ();
        (* The daemon never exits in the at_exit sense, and its ring
           buffers overwrite old events: attach the incremental,
           size-rotated sink instead of the one-shot dump. *)
        Journal.attach_sink ~max_bytes:journal_max_bytes ~keep:journal_keep
          path
    | None -> ());
    (match checkpoint_dir with
    | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
    | _ -> ());
    let cfg =
      {
        Daemon.socket_path = socket;
        workers;
        checkpoint_dir;
        point_timeout_s = point_timeout;
        retries;
        ctx_cache_max = 8;
        metrics_out;
        metrics_every_s = metrics_every;
        trace_out;
        werror;
        fidelity;
      }
    in
    Daemon.serve cfg;
    if journal_out <> None then Journal.detach_sink ();
    if obs then prerr_string (Obs.summary ())
  in
  let socket_arg =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket to listen on (created, unlinked on \
               shutdown).")
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
         ~doc:"Point-worker processes forked per sweep; each inherits the \
               warm abstraction cache.")
  in
  let checkpoint_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Checkpoint every sweep into $(docv) (created if missing); \
                 a daemon killed mid-sweep resumes on resubmit.")
  in
  let point_timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "point-timeout" ] ~docv:"SECONDS"
           ~doc:"Default per-point wall-clock budget for specs that set \
                 none.")
  in
  let retries_arg =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
         ~doc:"Re-dispatches per point whose worker crashed, before the \
               point is reported with a $(b,crashed) verdict.")
  in
  let journal_out_arg =
    Arg.(value & opt (some string) None
         & info [ "journal-out" ] ~docv:"FILE"
           ~doc:"Record the structured run journal and flush it to $(docv) \
                 incrementally (per request and every 32 points).")
  in
  let journal_max_bytes_arg =
    Arg.(value & opt int (8 * 1024 * 1024)
         & info [ "journal-max-bytes" ] ~docv:"BYTES"
           ~doc:"Rotate the journal once the live file passes $(docv).")
  in
  let journal_keep_arg =
    Arg.(value & opt int 3 & info [ "journal-keep" ] ~docv:"N"
         ~doc:"Rotated journal files kept ($(i,FILE.1) newest).")
  in
  let obs_arg =
    Arg.(value & flag
         & info [ "obs" ]
             ~doc:"Record spans/metrics; print a summary to stderr on \
                   shutdown.")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Rewrite a Prometheus textfile at $(docv) atomically every \
                 $(b,--metrics-every) seconds, after each request, and at \
                 startup/shutdown (node_exporter textfile-collector style). \
                 Implies span/metric recording.")
  in
  let metrics_every_arg =
    Arg.(value & opt float 2.0
         & info [ "metrics-every" ] ~docv:"SECONDS"
           ~doc:"Minimum interval between $(b,--metrics-out) rewrites.")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace to $(docv) on shutdown: daemon \
                 request spans plus worker solver spans shipped over the \
                 telemetry frames, one process track each. Implies \
                 recording.")
  in
  let serve_werror_arg =
    Arg.(value & flag
         & info [ "werror" ]
             ~doc:"Treat value-range screen warnings (AMS061/AMS063) as \
                   errors: submits whose screen then errors are answered \
                   with a structured $(b,rejected) reply instead of \
                   running.")
  in
  let serve_fidelity_arg =
    let kinds = [ ("paper", `Paper); ("fast", `Fast) ] in
    Arg.(value & opt (some (enum kinds)) None & info [ "fidelity" ]
         ~doc:"Default reference-engine cost model for submitted specs that \
               carry no $(b,fidelity) directive of their own (the directive \
               always wins): $(b,paper) or $(b,fast).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the sweep service: a daemon on a Unix-domain socket that \
             keeps abstraction plans and compiled bytecode warm across \
             requests, shards points over worker processes, checkpoints \
             progress and drains cleanly on SIGTERM.")
    Term.(const run $ socket_arg $ workers_arg $ checkpoint_dir_arg
          $ point_timeout_arg $ retries_arg $ journal_out_arg
          $ journal_max_bytes_arg $ journal_keep_arg $ obs_arg
          $ metrics_out_arg $ metrics_every_arg $ trace_out_arg
          $ serve_werror_arg $ serve_fidelity_arg)

let submit_cmd =
  (* One human-readable status line from a stats reply, for --watch. *)
  let status_line (s : Serve_protocol.stats) =
    Printf.sprintf
      "up %7.1fs | req %d | pts %d (%d in flight) | ctx %d/%d hit/miss | \
       workers %d (spawned %d, crashed %d, timeout %d, redisp %d) | \
       torn %d, jdrop %d | heap %.1f MB"
      s.Serve_protocol.st_uptime_s s.Serve_protocol.st_requests
      s.Serve_protocol.st_points s.Serve_protocol.st_in_flight
      s.Serve_protocol.st_ctx_hits s.Serve_protocol.st_ctx_misses
      s.Serve_protocol.st_workers s.Serve_protocol.st_spawned
      s.Serve_protocol.st_crashed s.Serve_protocol.st_timeouts
      s.Serve_protocol.st_redispatched s.Serve_protocol.st_telemetry_torn
      s.Serve_protocol.st_journal_dropped
      (float_of_int s.Serve_protocol.st_heap_words *. 8.0 /. 1048576.0)
  in
  let run socket spec_file jobs ping stats shutdown watch every quiet =
    let connect () =
      try Some (Serve_client.connect socket) with Unix.Unix_error _ -> None
    in
    let client =
      match connect () with
      | Some c -> c
      | None ->
          Printf.eprintf "error: cannot connect to %s\n" socket;
          exit 1
    in
    let show resp =
      if not quiet then
        print_endline (Serve_protocol.encode_response resp)
    in
    let rc = ref 0 in
    let simple req =
      Serve_client.send client req;
      match Serve_client.recv client with
      | Ok resp -> show resp
      | Error m ->
          Printf.eprintf "error: %s\n" m;
          rc := 1
    in
    if ping then simple Serve_protocol.Ping;
    if stats && watch && spec_file = None then begin
      (* Live status: one sample per refresh over a fresh connection —
         the daemon serves one client at a time, so holding the
         connection open between refreshes would starve real work. *)
      let sample c =
        Serve_client.send c Serve_protocol.Stats;
        match Serve_client.recv c with
        | Ok (Serve_protocol.Stats_reply s) ->
            print_endline (status_line s);
            true
        | Ok _ | Error _ -> false
      in
      let first = sample client in
      Serve_client.close client;
      if not first then begin
        Printf.eprintf "error: no stats reply from %s\n" socket;
        exit 1
      end;
      let rec loop () =
        Unix.sleepf every;
        match connect () with
        | None -> prerr_endline "watch: daemon gone"
        | Some c ->
            let ok = sample c in
            Serve_client.close c;
            if ok then loop () else prerr_endline "watch: daemon gone"
      in
      loop ();
      exit 0
    end;
    if stats then simple Serve_protocol.Stats;
    (match spec_file with
    | Some path -> (
        let spec_text = read_file path in
        (* --watch on a submit: a throttled progress line on stderr,
           fed from the same streamed frames that (unless --quiet) are
           still printed to stdout. *)
        let progress =
          if not watch then fun _ -> ()
          else begin
            let total = ref 0 and got = ref 0 and bad = ref 0 in
            let t0 = Unix.gettimeofday () in
            let last = ref 0.0 in
            fun resp ->
              (match resp with
              | Serve_protocol.Accepted { points; resumed; _ } ->
                  total := points;
                  got := resumed
              | Serve_protocol.Point { result; _ } ->
                  incr got;
                  if
                    not
                      result.Sweep_runner.health
                        .Amsvp_probe.Health.v_healthy
                  then incr bad
              | _ -> ());
              let now = Unix.gettimeofday () in
              let final =
                match resp with Serve_protocol.Done _ -> true | _ -> false
              in
              if final || now -. !last >= 0.5 then begin
                last := now;
                let dt = now -. t0 in
                Printf.eprintf "\r%d/%d points, %d unhealthy, %.1f pt/s%!"
                  !got !total !bad
                  (if dt > 0.0 then float_of_int !got /. dt else 0.0);
                if final then prerr_newline ()
              end
          end
        in
        let on_event resp =
          show resp;
          progress resp
        in
        match
          Serve_client.submit client ?jobs ~spec_text ~on_event ()
        with
        | Ok (Serve_protocol.Done { complete; points; unhealthy; _ }) ->
            if quiet then
              Printf.printf "done: %d point(s), %d unhealthy%s\n" points
                unhealthy
                (if complete then "" else " (INCOMPLETE: daemon drained)");
            if not complete then rc := 4
        | Ok (Serve_protocol.Rejected { message; findings }) ->
            Printf.eprintf "rejected: %s\n" message;
            List.iter
              (fun (f : Diag.finding) ->
                Printf.eprintf "  %s\n" (Diag.to_text f))
              findings;
            rc := 3
        | Ok _ -> ()
        | Error m ->
            Printf.eprintf "error: %s\n" m;
            rc := 2)
    | None -> ());
    if shutdown then simple Serve_protocol.Shutdown;
    Serve_client.close client;
    if ping || stats || spec_file <> None || shutdown then exit !rc
    else begin
      Printf.eprintf
        "error: nothing to do (want --spec, --ping, --stats or --shutdown)\n";
      exit 1
    end
  in
  let socket_arg =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Daemon socket to connect to.")
  in
  let spec_arg =
    Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"FILE"
         ~doc:"Sweep specification to submit; every streamed frame is \
               printed as one JSON line.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Override the spec's $(b,jobs) directive.")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Health-check the daemon.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print daemon statistics.")
  in
  let shutdown_arg =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"Ask the daemon to drain and exit (after any submit).")
  in
  let watch_arg =
    Arg.(value & flag
         & info [ "watch"; "w" ]
             ~doc:"With $(b,--stats): refresh the daemon status every \
                   $(b,--every) seconds (one line per sample, fresh \
                   connection each time) until the daemon goes away. With \
                   $(b,--spec): show a live progress line on stderr while \
                   the sweep streams.")
  in
  let every_arg =
    Arg.(value & opt float 2.0
         & info [ "every" ] ~docv:"SECONDS"
             ~doc:"Refresh interval for $(b,--watch).")
  in
  let quiet_arg =
    Arg.(value & flag
         & info [ "quiet"; "q" ]
             ~doc:"Suppress per-frame output; print a one-line summary.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a sweep to a running $(b,amsvp serve) daemon and stream \
             its per-point results.")
    Term.(const run $ socket_arg $ spec_arg $ jobs_arg $ ping_arg $ stats_arg
          $ shutdown_arg $ watch_arg $ every_arg $ quiet_arg)

(* lint *)

let lint_cmd =
  let run file top lang inputs dt format werror suppress amplitude_budget
      input_bound =
    let lang =
      match lang with `Verilog -> `Verilog_ams | `Vhdl -> `Vhdl_ams
    in
    let findings =
      Lint.lint ~lang ?top ~inputs ~dt ?amplitude_budget ?input_bound ~file
        (read_file file)
    in
    let config = { Diag.werror; suppress } in
    let findings = Diag.apply config findings in
    (match format with
    | `Text -> print_string (Diag.report_to_text findings)
    | `Json -> print_string (Diag.report_to_json ~file findings)
    | `Sarif -> print_string (Diag.report_to_sarif findings));
    if Diag.error_count findings > 0 then exit 1
  in
  let top_opt =
    Arg.(value & opt (some string) None & info [ "top" ] ~docv:"MODULE"
         ~doc:"Top module (entity) for the elaboration passes; defaults to \
               the last one in the file. AST passes always cover every \
               module.")
  in
  let format_arg =
    let formats = [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ] in
    Arg.(value & opt (enum formats) `Text & info [ "format" ]
         ~doc:"Report format: $(b,text) (compiler-style lines), \
               $(b,json), or $(b,sarif) (SARIF 2.1.0 for code-scanning \
               upload).")
  in
  let werror_arg =
    Arg.(value & flag
         & info [ "werror" ] ~doc:"Treat warnings as errors.")
  in
  let suppress_arg =
    Arg.(value & opt_all string []
         & info [ "suppress" ] ~docv:"CODE"
             ~doc:"Drop findings with this code (e.g. AMS011). Repeatable.")
  in
  let amplitude_budget_arg =
    Arg.(value & opt (some float) None
         & info [ "amplitude-budget" ] ~docv:"V"
             ~doc:"Declared |output| budget for the value-range pass: \
                   AMS063 fires when a proven output bound exceeds it.")
  in
  let input_bound_arg =
    Arg.(value & opt (some float) None
         & info [ "input-bound" ] ~docv:"V"
             ~doc:"Confine every input signal to [-V, V] for the \
                   value-range pass (default 1).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyse an AMS model: front-end, AST, topology, \
             structural-solvability, abstraction-safety and value-range \
             passes, reported as source-located diagnostics. Exits \
             non-zero when any error-severity finding remains.")
    Term.(const run $ file_arg $ top_opt $ lang_arg $ inputs_arg $ dt_arg
          $ format_arg $ werror_arg $ suppress_arg $ amplitude_budget_arg
          $ input_bound_arg)

(* ac *)

let ac_cmd =
  let run file top output lang inputs input fstart fstop points =
    with_frontend_errors ~file (fun () ->
        let flat = flatten_any lang (read_file file) ~file top inputs in
        (match Elaborate.classify flat with
        | `Conservative -> ()
        | `Signal_flow ->
            Printf.eprintf "error: AC analysis needs a conservative network\n";
            exit 1);
        let circuit = Elaborate.to_circuit flat in
        let circuit = Flow.insert_probes circuit ~outputs:[ output ] in
        let input =
          match input with
          | Some i -> i
          | None -> (
              match Amsvp_netlist.Circuit.input_signals circuit with
              | [ i ] -> i
              | _ ->
                  Printf.eprintf
                    "error: several inputs; choose one with --input\n";
                  exit 1)
        in
        let freqs =
          List.init points (fun i ->
              fstart
              *. ((fstop /. fstart)
                 ** (float_of_int i /. float_of_int (max 1 (points - 1)))))
        in
        let pts = Ac.analyze circuit ~input ~output ~freqs in
        Printf.printf "# freq(Hz)  |H|(dB)  phase(deg)\n";
        List.iter
          (fun p ->
            Printf.printf "%12.3f  %9.3f  %9.3f\n" p.Ac.freq_hz
              (Ac.magnitude_db p) (Ac.phase_deg p))
          pts)
  in
  let input_opt =
    Arg.(value & opt (some string) None & info [ "input" ]
         ~doc:"Input signal carrying the AC excitation.")
  in
  let fstart =
    Arg.(value & opt float 10.0 & info [ "fstart" ] ~doc:"Start frequency (Hz).")
  in
  let fstop =
    Arg.(value & opt float 1e6 & info [ "fstop" ] ~doc:"Stop frequency (Hz).")
  in
  let points =
    Arg.(value & opt int 25 & info [ "points" ] ~doc:"Points (log-spaced).")
  in
  Cmd.v
    (Cmd.info "ac"
       ~doc:"Small-signal AC analysis (Bode table) of a conservative model.")
    Term.(const run $ file_arg $ top_arg $ out_arg $ lang_arg $ inputs_arg
          $ input_opt $ fstart $ fstop $ points)

let () =
  let doc =
    "integration of mixed-signal components into virtual platforms \
     (Fraccaroli et al., DATE 2016)"
  in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "amsvp" ~version:"1.0.0" ~doc)
          [ abstract_cmd; simulate_cmd; report_cmd; explain_cmd; lint_cmd;
            sweep_cmd; serve_cmd; submit_cmd; ac_cmd; op_cmd; netlist_cmd ]))
