type mode = [ `Exact | `Relaxed | `Auto ]

type integration = [ `Backward_euler | `Trapezoidal ]

type fidelity = [ `Paper | `Fast ]

let fidelity_to_string = function `Paper -> "paper" | `Fast -> "fast"

let fidelity_of_string = function
  | "paper" -> Ok `Paper
  | "fast" -> Ok `Fast
  | s -> Error (Printf.sprintf "unknown fidelity %S (expected paper or fast)" s)

let auto_threshold = 16

exception Nonlinear of Expr.var
exception Underdetermined of string

(* The solver's decision record, kept for explainability: which
   concrete mode [`Auto] resolved to, which state variables the
   relaxation lagged, the Gauss-Jordan pivots of every eliminated
   component, how many PWL regions were enumerated and how many
   trapezoidal-differentiator auxiliaries were introduced. *)
type pivot = { pivot_var : Expr.var; pivot_mag : float }
type elimination = { members : Expr.var list; pivots : pivot list }

type plan = {
  effective_mode : [ `Exact | `Relaxed ];
  integration_used : integration;
  lagged : Expr.var list;
  eliminations : elimination list;
  regions : int;
  ddt_aux : int;
}

(* Substitute the reserved __dt parameter. *)
let bake_dt ~dt e =
  Expr.subst
    (fun v ->
      if Expr.equal_var v Expr.dt_param then Some (Expr.const dt) else None)
    e

(* Tarjan's strongly connected components; returns the components in
   reverse topological order of the condensation. *)
let tarjan n succ =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succ v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (* Tarjan emits each SCC before its successors' SCCs are closed...
     in fact it emits them in reverse topological order, so reversing
     the accumulator (which already re-reversed by consing) yields the
     dependency order. *)
  !sccs

(* Solve the subsystem formed by one strongly connected component by
   Gaussian elimination: members' definitions are affine in the member
   variables; every other symbol is a known. *)
let eliminate_component vars exprs members =
  let m = List.length members in
  let member_index v =
    let rec go i = function
      | [] -> None
      | j :: rest -> if Expr.equal_var vars.(j) v then Some i else go (i + 1) rest
    in
    go 0 members
  in
  (* Collect known symbols across the component. *)
  let knowns = ref [] in
  let known_index = Hashtbl.create 16 in
  let note v =
    let key = Expr.var_name v in
    if not (Hashtbl.mem known_index key) then begin
      Hashtbl.add known_index key (List.length !knowns);
      knowns := v :: !knowns
    end
  in
  List.iter
    (fun j ->
      Expr.Var_set.iter
        (fun v -> if member_index v = None then note v)
        (Expr.vars exprs.(j)))
    members;
  let knowns = Array.of_list (List.rev !knowns) in
  let nk = Array.length knowns in
  let a = Array.make_matrix m m 0.0 in
  let rhs = Array.make_matrix m (nk + 1) 0.0 in
  List.iteri
    (fun row j ->
      a.(row).(row) <- 1.0;
      match Expr.linear_form exprs.(j) with
      | None -> raise (Nonlinear vars.(j))
      | Some (items, k) ->
          rhs.(row).(nk) <- rhs.(row).(nk) +. k;
          List.iter
            (fun (v, c) ->
              match member_index v with
              | Some col -> a.(row).(col) <- a.(row).(col) -. c
              | None ->
                  let col = Hashtbl.find known_index (Expr.var_name v) in
                  rhs.(row).(col) <- rhs.(row).(col) +. c)
            items)
    members;
  (* Gauss-Jordan with partial pivoting. *)
  let pivots = ref [] in
  for col = 0 to m - 1 do
    let piv = ref col in
    for i = col + 1 to m - 1 do
      if abs_float a.(i).(col) > abs_float a.(!piv).(col) then piv := i
    done;
    if abs_float a.(!piv).(col) < 1e-300 then
      raise
        (Underdetermined
           (Printf.sprintf "no pivot for %s"
              (Expr.var_name vars.(List.nth members col))));
    pivots :=
      {
        pivot_var = vars.(List.nth members col);
        pivot_mag = abs_float a.(!piv).(col);
      }
      :: !pivots;
    if !piv <> col then begin
      let t = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- t;
      let t = rhs.(col) in
      rhs.(col) <- rhs.(!piv);
      rhs.(!piv) <- t
    end;
    let p = a.(col).(col) in
    for j = 0 to m - 1 do
      a.(col).(j) <- a.(col).(j) /. p
    done;
    for j = 0 to nk do
      rhs.(col).(j) <- rhs.(col).(j) /. p
    done;
    for i = 0 to m - 1 do
      if i <> col && a.(i).(col) <> 0.0 then begin
        let f = a.(i).(col) in
        for j = 0 to m - 1 do
          a.(i).(j) <- a.(i).(j) -. (f *. a.(col).(j))
        done;
        for j = 0 to nk do
          rhs.(i).(j) <- rhs.(i).(j) -. (f *. rhs.(col).(j))
        done
      end
    done
  done;
  List.iteri
    (fun row j ->
      let r = rhs.(row) in
      let scale = Array.fold_left (fun acc v -> max acc (abs_float v)) 1.0 r in
      (* A non-finite coefficient means a poisoned parameter; keep it so it
         surfaces in the trace instead of being zeroed as "insignificant". *)
      let significant v = not (abs_float v <= 1e-12 *. scale) in
      let items = ref [] in
      for c = nk - 1 downto 0 do
        if significant r.(c) then items := (knowns.(c), r.(c)) :: !items
      done;
      let const = if significant r.(nk) then r.(nk) else 0.0 in
      exprs.(j) <- Expr.simplify (Expr.of_linear_form (!items, const)))
    members;
  { members = List.map (fun j -> vars.(j)) members; pivots = List.rev !pivots }

(* Piecewise-linear support: regions are the truth assignments of the
   distinct conditions occurring in the definitions. *)
let max_region_conditions = 4

let map_condition_exprs f c =
  let rec go = function
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, f a, f b)
    | Expr.And (c1, c2) -> Expr.And (go c1, go c2)
    | Expr.Or (c1, c2) -> Expr.Or (go c1, go c2)
    | Expr.Not c -> Expr.Not (go c)
  in
  go c

let collect_conditions exprs =
  let acc = ref [] in
  let note c =
    if not (List.exists (fun c' -> compare c' c = 0) !acc) then acc := c :: !acc
  in
  let rec go e =
    match e with
    | Expr.Const _ | Expr.Var _ -> ()
    | Expr.Neg a | Expr.App (_, a) | Expr.Ddt a | Expr.Idt a -> go a
    | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b) ->
        go a;
        go b
    | Expr.Cond (c, a, b) ->
        note c;
        go_cond c;
        go a;
        go b
  and go_cond = function
    | Expr.Cmp (_, a, b) ->
        go a;
        go b
    | Expr.And (c1, c2) | Expr.Or (c1, c2) ->
        go_cond c1;
        go_cond c2
    | Expr.Not c -> go_cond c
  in
  Array.iter go exprs;
  List.rev !acc

let rec specialize_conditions choice e =
  match e with
  | Expr.Const _ | Expr.Var _ -> e
  | Expr.Neg a -> Expr.neg (specialize_conditions choice a)
  | Expr.Add (a, b) ->
      Expr.( + ) (specialize_conditions choice a) (specialize_conditions choice b)
  | Expr.Sub (a, b) ->
      Expr.( - ) (specialize_conditions choice a) (specialize_conditions choice b)
  | Expr.Mul (a, b) ->
      Expr.( * ) (specialize_conditions choice a) (specialize_conditions choice b)
  | Expr.Div (a, b) ->
      Expr.( / ) (specialize_conditions choice a) (specialize_conditions choice b)
  | Expr.Ddt a -> Expr.Ddt (specialize_conditions choice a)
  | Expr.Idt a -> Expr.Idt (specialize_conditions choice a)
  | Expr.App (f, a) -> Expr.App (f, specialize_conditions choice a)
  | Expr.Cond (c, a, b) -> (
      match List.find_opt (fun (c', _) -> compare c' c = 0) choice with
      | Some (_, true) -> specialize_conditions choice a
      | Some (_, false) -> specialize_conditions choice b
      | None ->
          Expr.Cond
            (c, specialize_conditions choice a, specialize_conditions choice b))

(* Trapezoidal support: replace every [ddt(arg)] node with a fresh
   auxiliary quantity [s] whose companion update is the trapezoidal
   differentiator [s = (2/dt)(arg - arg@-1) - s@-1]. *)
let extract_ddts ~dt ~fresh e =
  let aux = ref [] in
  let rec go e =
    match e with
    | Expr.Const _ | Expr.Var _ -> e
    | Expr.Neg a -> Expr.neg (go a)
    | Expr.Add (a, b) -> Expr.( + ) (go a) (go b)
    | Expr.Sub (a, b) -> Expr.( - ) (go a) (go b)
    | Expr.Mul (a, b) -> Expr.( * ) (go a) (go b)
    | Expr.Div (a, b) -> Expr.( / ) (go a) (go b)
    | Expr.Idt _ -> failwith "Solve: idt must be removed with extract_idt"
    | Expr.App (f, a) -> Expr.App (f, go a)
    | Expr.Cond (c, a, b) -> Expr.Cond (go_cond c, go a, go b)
    | Expr.Ddt a ->
        let a' = go a in
        let s = Expr.signal (fresh ()) in
        let update =
          Expr.(
            scale (2.0 /. dt) (a' - Expr.delay_expr 1 a')
            - var (Expr.delayed s 1))
        in
        aux := (s, update) :: !aux;
        Expr.var s
  and go_cond = function
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, go a, go b)
    | Expr.And (c1, c2) -> Expr.And (go_cond c1, go_cond c2)
    | Expr.Or (c1, c2) -> Expr.Or (go_cond c1, go_cond c2)
    | Expr.Not c -> Expr.Not (go_cond c)
  in
  let e' = go e in
  (e', List.rev !aux)

let solved_assignments_plan ?(mode = `Auto) ?(integration = `Backward_euler)
    ~dt (r : Assemble.result) =
  (* Expand the assembled definitions according to the integration
     rule: backward Euler keeps them as-is; trapezoidal rewrites
     integrations to x = x@-1 + dt/2 (f_t + f_{t-1}) and turns every
     remaining ddt node into a trapezoidal-differentiator auxiliary. *)
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "__ddt%d" !counter
  in
  let expanded =
    List.concat_map
      (fun (d : Assemble.definition) ->
        match (integration, d.Assemble.deriv) with
        | `Backward_euler, _ ->
            [ (d.Assemble.var, Expr.discretize ~dt (bake_dt ~dt d.Assemble.raw),
               d.Assemble.integrates) ]
        | `Trapezoidal, Some rhs ->
            let rhs0 = bake_dt ~dt rhs in
            let rhs1, aux = extract_ddts ~dt ~fresh rhs0 in
            let x = d.Assemble.var in
            let update =
              Expr.(
                var (Expr.delayed x 1)
                + scale (dt /. 2.0) (rhs1 + Expr.delay_expr 1 rhs1))
            in
            List.map (fun (s, e) -> (s, e, false)) aux
            @ [ (x, update, true) ]
        | `Trapezoidal, None ->
            let e0 = bake_dt ~dt d.Assemble.raw in
            let e1, aux = extract_ddts ~dt ~fresh e0 in
            List.map (fun (s, e) -> (s, e, false)) aux
            @ [ (d.Assemble.var, e1, d.Assemble.integrates) ])
      r.Assemble.defs
  in
  let n = List.length expanded in
  let vars = Array.of_list (List.map (fun (v, _, _) -> v) expanded) in
  let integrates = Array.of_list (List.map (fun (_, _, i) -> i) expanded) in
  let mode =
    match mode with
    | (`Exact | `Relaxed) as m -> m
    | `Auto -> if n > auto_threshold then `Relaxed else `Exact
  in
  let pos_of = Hashtbl.create 32 in
  Array.iteri (fun i v -> Hashtbl.replace pos_of (Expr.var_name v) i) vars;
  let def_index v =
    if v.Expr.delay <> 0 then None
    else Hashtbl.find_opt pos_of (Expr.var_name v)
  in
  let lagged_tbl = Hashtbl.create 8 in
  let note_lagged v =
    let v0 = { v with Expr.delay = 0 } in
    Hashtbl.replace lagged_tbl (Expr.var_name v0) v0
  in
  let exprs =
    Array.of_list
      (List.mapi
         (fun i (_, e0, _) ->
        let e = e0 in
        let e =
          match mode with
          | `Exact -> e
          | `Relaxed ->
              (* Relaxation: a forward reference to a state update
                 (integration) reads the previous step's value — the
                 semantics a sequential C++ body gives for free. State
                 updates are contractions (x = x@-1 + O(dt)·algebra),
                 so the one-step lag is stable and costs O(dt)
                 accuracy; algebraic quantities are never lagged, so
                 high-gain feedback loops are still solved exactly. *)
              Expr.subst
                (fun v ->
                  match def_index { v with Expr.delay = 0 } with
                  | Some j when j > i && integrates.(j) ->
                      note_lagged v;
                      Some (Expr.var (Expr.delayed v 1))
                  | Some _ | None -> None)
                e
        in
        Expr.simplify e)
         expanded)
  in
  let lagged =
    Hashtbl.fold (fun _ v acc -> v :: acc) lagged_tbl []
    |> List.sort (fun a b -> compare (Expr.var_name a) (Expr.var_name b))
  in
  let eliminations = ref [] in
  let finish assignments ~regions =
    ( assignments,
      {
        effective_mode = mode;
        integration_used = integration;
        lagged;
        eliminations = List.rev !eliminations;
        regions;
        ddt_aux = !counter;
      } )
  in
  let conditions = collect_conditions exprs in
  if conditions = [] then begin
    (* Current-time reference graph and its strongly connected
       components. *)
    let succ i =
      Expr.Var_set.fold
        (fun v acc -> match def_index v with Some j -> j :: acc | None -> acc)
        (Expr.vars exprs.(i))
        []
    in
    let sccs = tarjan n succ in
    (* Tarjan completes a component only after every component it can
       reach, so the accumulator's head is the last-completed (most
       upstream-referencing) one; reversing yields producers first. *)
    let sccs = List.rev sccs in
    List.iter
      (fun members ->
        match members with
        | [ j ] when not (List.exists (fun k -> k = j) (succ j)) ->
            (* No self-reference: already explicit. *)
            ()
        | members ->
            eliminations := eliminate_component vars exprs members :: !eliminations)
      sccs;
    (* Emission order: components in dependency order, members in their
       original assembly order within each. *)
    let assignments =
      List.concat_map (fun members -> List.sort compare members) sccs
      |> List.map (fun j -> (vars.(j), exprs.(j)))
    in
    finish assignments ~regions:1
  end
  else begin
    (* Piecewise-linear extension (paper Section III-C, via [7]): the
       definitions carry conditionals, so the model is linear only
       per region. Regions are selected on the previous step's values
       (conditions over current unknowns are lagged one step), the
       linear system of every region combination is solved exactly,
       and the update rules select the solved region at run time. *)
    let k = List.length conditions in
    if k > max_region_conditions then
      raise
        (Nonlinear (if n = 0 then Expr.signal "?" else vars.(0)));
    let lag_unknowns_in_condition c =
      map_condition_exprs
        (Expr.subst (fun v ->
             match def_index { v with Expr.delay = 0 } with
             | Some _ -> Some (Expr.var (Expr.delayed v 1))
             | None -> None))
        c
    in
    let lagged = List.map lag_unknowns_in_condition conditions in
    let all = Array.to_list (Array.init n (fun i -> i)) in
    (* Pivot bookkeeping would be 2^k near-copies; keep the first
       solved region's (all conditions true) as the representative. *)
    let solve_region choice =
      let specialized = Array.map (specialize_conditions choice) exprs in
      let elim = eliminate_component vars specialized all in
      if !eliminations = [] then eliminations := [ elim ];
      specialized
    in
    let rec regions chosen = function
      | [] -> `Leaf (solve_region (List.rev chosen))
      | c :: rest ->
          `Node
            ( c,
              regions ((c, true) :: chosen) rest,
              regions ((c, false) :: chosen) rest )
    in
    let tree = regions [] conditions in
    let rec merge i lags tree =
      match (tree, lags) with
      | `Leaf specialized, [] -> specialized.(i)
      | `Node (_, yes, no), lc :: rest ->
          Expr.Cond (lc, merge i rest yes, merge i rest no)
      | `Leaf _, _ :: _ | `Node _, [] -> assert false
    in
    let assignments =
      List.map (fun i -> (vars.(i), Expr.simplify (merge i lagged tree))) all
    in
    finish assignments ~regions:(1 lsl k)
  end

let solved_assignments ?mode ?integration ~dt r =
  fst (solved_assignments_plan ?mode ?integration ~dt r)

let solve_with_plan ?mode ?integration ~name ~dt (r : Assemble.result) =
  let solved, plan = solved_assignments_plan ?mode ?integration ~dt r in
  let assignments =
    List.map
      (fun (var, e) -> { Amsvp_sf.Sfprogram.target = var; expr = e })
      solved
  in
  ( Amsvp_sf.Sfprogram.make ~name ~inputs:r.Assemble.inputs
      ~outputs:r.Assemble.outputs ~assignments ~dt,
    plan )

let solve ?mode ?integration ~name ~dt r =
  fst (solve_with_plan ?mode ?integration ~name ~dt r)
