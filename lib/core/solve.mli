(** Solution of the linear equations (paper §IV-C, Fig. 7).

    The assembled definitions still mention current-time quantities on
    their right-hand sides — in particular the defined quantity itself,
    introduced by discretised derivatives. Interpreting [=] as an
    assignment would add a spurious one-step delay, so those
    occurrences must be eliminated (§IV-C).

    The definitions are first discretised (backward Euler), then the
    graph of current-time references is decomposed into strongly
    connected components. Each component is solved exactly: a single
    self-referencing definition by the scalar rearrangement of Fig. 7,
    a larger algebraic component (e.g. an op-amp feedback loop) by
    Gaussian elimination over its members. Components are emitted in
    dependency order, so the resulting program is a valid sequence of
    assignments.

    In [`Relaxed] mode, a derivative whose argument involves the
    quantity being defined or a not-yet-computed one is discretised one
    step behind ([ddt x ~ (x@-1 - x@-2)/dt]): this breaks the
    state-to-state coupling, keeping the generated code's cost linear
    in circuit size instead of quadratic, at a small accuracy cost —
    the NRMSE degradation the paper reports for its generated models
    against the conservative reference. Algebraic (derivative-free)
    loops are always solved exactly, so high-gain feedback stays
    stable. [`Auto] (the default) picks [`Exact] for small cones and
    [`Relaxed] beyond {!auto_threshold} definitions. *)

type mode = [ `Exact | `Relaxed | `Auto ]

val auto_threshold : int
(** Cone size above which [`Auto] switches to [`Relaxed] (16). *)

val max_region_conditions : int
(** Piecewise-linear models (paper §III-C, [7]): when the definitions
    carry conditionals, the solver enumerates the truth assignments of
    the distinct conditions (regions are selected on the previous
    step's values), solves the linear system of every region exactly
    and emits update rules that pick the solved region at run time. At
    most this many distinct conditions (2^k regions) are supported;
    beyond it, {!Nonlinear} is raised. *)

exception Nonlinear of Expr.var
(** A definition is not affine in the unknowns (outside the linear
    scope of the methodology). *)

exception Underdetermined of string
(** The assembled system is numerically singular. *)

type fidelity = [ `Paper | `Fast ]
(** Cost model of the conservative reference engine downstream stages
    simulate against (the structural vocabulary shared by the flow
    report, sweep specs, the daemon and the CLI): [`Paper] reproduces
    the SPICE cost structure of the source paper bit-identically;
    [`Fast] solves the same equations with reused sparse factors,
    Newton early-exit and adaptive substepping — bounded-error, much
    faster (see {!Amsvp_mna.Engine.spice_like}). *)

val fidelity_to_string : fidelity -> string
(** ["paper"] / ["fast"] — the sweep-spec and CLI spelling. *)

val fidelity_of_string : string -> (fidelity, string) result

type integration = [ `Backward_euler | `Trapezoidal ]
(** Integration rule used when discretising (default backward Euler).
    Trapezoidal integration gives second-order accuracy: state updates
    become [x = x@-1 + dt/2 (f_t + f_{t-1})] and remaining derivatives
    are computed by the trapezoidal differentiator
    [s = (2/dt)(arg - arg@-1) - s@-1] through auxiliary quantities. *)

(** {1 Solver plan}

    Every solve also produces a record of the decisions taken, consumed
    by {!Explain} / [amsvp explain]: nothing here affects the generated
    program, it only makes the solution auditable. *)

type pivot = { pivot_var : Expr.var; pivot_mag : float }
(** One Gauss-Jordan pivot: the member variable the column solves for
    and the magnitude of the chosen pivot element (after partial
    pivoting) — small magnitudes flag near-singular components. *)

type elimination = { members : Expr.var list; pivots : pivot list }
(** One eliminated strongly-connected component. *)

type plan = {
  effective_mode : [ `Exact | `Relaxed ];
      (** what [`Auto] resolved to (or the explicit request) *)
  integration_used : integration;
  lagged : Expr.var list;
      (** state variables whose forward references the relaxation
          turned into previous-step reads, sorted by name *)
  eliminations : elimination list;
      (** in solve order; for a piecewise-linear model, the
          all-conditions-true region stands in for all regions *)
  regions : int;  (** 1 for linear models, 2^k for PWL *)
  ddt_aux : int;
      (** trapezoidal-differentiator auxiliaries introduced *)
}

val solve :
  ?mode:mode ->
  ?integration:integration ->
  name:string ->
  dt:float ->
  Assemble.result ->
  Amsvp_sf.Sfprogram.t

val solve_with_plan :
  ?mode:mode ->
  ?integration:integration ->
  name:string ->
  dt:float ->
  Assemble.result ->
  Amsvp_sf.Sfprogram.t * plan
(** [solve] plus the decision record. *)

val solved_assignments :
  ?mode:mode ->
  ?integration:integration ->
  dt:float ->
  Assemble.result ->
  (Expr.var * Expr.t) list
(** The explicit update rules without program packaging (used by the
    Fig. 7 walkthrough and by tests). *)

val solved_assignments_plan :
  ?mode:mode ->
  ?integration:integration ->
  dt:float ->
  Assemble.result ->
  (Expr.var * Expr.t) list * plan
