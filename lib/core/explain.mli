(** Abstraction explainability: a structured account of what the flow
    decided, exportable as pretty text or JSON ([amsvp explain]).

    For every quantity in the cone of influence the explanation names
    the {e one} defining equation the assembler chose — the pseudo-
    variable it was fetched for, the originating device/topology
    equation and the other members of the consumed equivalence class
    (all disabled by that choice, §IV-B) — together with the solver
    plan: [`Auto] resolution, [ddt]/[idt] discretisation decisions,
    relaxation-lagged state variables, Gauss-Jordan elimination pivots
    and the PWL region count. Building it is cheap (structure sharing
    with the flow's own data); rendering is on demand. *)

type provenance =
  | From_class of {
      class_id : int;
      origin : Eqn.t;  (** the class's original equation *)
      defines : Eqn.pseudo;  (** the pseudo-variable fetched *)
      disabled : Eqmap.variant list;
          (** the other variants of the consumed class *)
    }
  | Direct
      (** the equation came verbatim from a signal-flow source; there
          was no choice to make *)

type choice = {
  target : Expr.var;
  rhs : Expr.t;
      (** the chosen defining expression ([ddt(target) = rhs] for an
          integration, [target = rhs] otherwise) *)
  integrates : bool;
  provenance : provenance;
}

type t = {
  model : string;
  dt : float;
  requested_mode : Solve.mode;
  plan : Solve.plan;
  inputs : string list;
  outputs : Expr.var list;
  classes_total : int;  (** equation classes in the enriched map *)
  choices : choice list;
      (** exactly one per solved variable, dependencies first *)
}

val of_abstraction :
  name:string ->
  dt:float ->
  mode:Solve.mode ->
  Eqmap.t ->
  Assemble.result ->
  Solve.plan ->
  t
(** Assemble the explanation from the flow's intermediate products
    (call after {!Assemble.assemble}, with the map still carrying its
    post-assembly disabled classes). *)

val of_signal_flow : Amsvp_sf.Sfprogram.t -> t
(** Trivial explanation for a model that was already signal-flow: one
    [Direct] choice per assignment. *)

val cone : t -> int
(** [List.length choices] — the cone-of-influence size. *)

val to_json : t -> string
val pp : Format.formatter -> t -> unit
val to_text : t -> string
