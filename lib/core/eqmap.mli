(** The enriched equation multimap (paper, Fig. 5).

    Equations are stored in equivalence classes: an original equation
    together with every rearranged variant obtained by solving it for
    each of its terms (Algorithm 1, lines 4–11). All members of a class
    are linearly dependent, so using any one of them consumes the whole
    class — "allowing to disable an entire set of equations if needed"
    (§IV-B). Lookup is by the pseudo-variable a variant defines. *)

type variant = {
  class_id : int;
  defines : Eqn.pseudo;
  rhs : Expr.t;  (** the defining expression: [defines = rhs] *)
}

type t

val create : unit -> t

val add_equation : t -> Eqn.t -> unit
(** Insert an equation: creates a new class containing the original and
    one solved variant per unknown of the equation. Nonlinear equations
    are stored without variants (they can still be reported). *)

val class_count : t -> int
val variant_count : t -> int

val fetch : t -> Eqn.pseudo -> variant option
(** First enabled variant defining the pseudo-variable, scanning
    classes in insertion order (the [fetchEquation] of Algorithm 2). *)

val fetch_all : t -> Eqn.pseudo -> variant list
(** Every enabled variant defining the pseudo-variable, in insertion
    order — used by the backtracking assembler. *)

val is_enabled : t -> int -> bool

val disable_class : t -> int -> unit
(** Mark a class as consumed (Algorithm 2, line 11). *)

val enable_class : t -> int -> unit
(** Undo a [disable_class] (used when the assembler backtracks). *)

val reset : t -> unit
(** Re-enable every class. *)

val origins : t -> Eqn.t list
(** The original equation of every class, in insertion order (enabled
    or not) — the full system a structural-solvability pass matches
    against its unknowns. *)

val origin_of_class : t -> int -> Eqn.t
(** The original equation of a class.
    @raise Invalid_argument on an unknown id. *)

val variants_of_class : t -> int -> variant list
(** All solved variants of a class (enabled or not), in insertion
    order — the full equivalence set consumed when any one member is
    used.
    @raise Invalid_argument on an unknown id. *)

val pp : Format.formatter -> t -> unit
(** Dump in the style of Fig. 5: one line per class with its original
    equation and the chained solved variants. *)
