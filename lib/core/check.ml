module Diag = Amsvp_diag.Diag

(* The unknown quantities of an equation, merged over pseudo-variables:
   [x] and [ddt(x)] collapse into the single unknown [x] (they stop
   being independent at discretisation). Nonlinear equations have no
   pseudo-linear view, so they participate with the Potential/Flow
   variables of their residual. *)
let is_quantity (v : Expr.var) =
  v.Expr.delay = 0
  &&
  match v.Expr.base with
  | Expr.Potential _ | Expr.Flow _ -> true
  | Expr.Signal _ | Expr.Param _ -> false

let eq_unknowns eq =
  match Eqn.unknowns eq with
  | [] ->
      Expr.Var_set.elements (Expr.vars (Eqn.residual eq))
      |> List.filter is_quantity
  | ps ->
      List.map (function Eqn.Cur v | Eqn.Der v -> v) ps
      |> List.filter is_quantity
      |> List.sort_uniq Expr.compare_var

let solvability ?(span_of = fun _ -> None) map ~outputs =
  let eqs = Eqmap.origins map in
  let eq_vars = List.map eq_unknowns eqs in
  (* Intern the unknowns, first-appearance order. *)
  let index = Hashtbl.create 32 in
  let unknowns = ref [] in
  let intern v =
    if not (Hashtbl.mem index v) then begin
      Hashtbl.add index v (Hashtbl.length index);
      unknowns := v :: !unknowns
    end
  in
  List.iter (List.iter intern) eq_vars;
  List.iter (fun o -> if is_quantity o then intern o) outputs;
  let unknowns = Array.of_list (List.rev !unknowns) in
  let n_unknowns = Array.length unknowns in
  let n_eqs = List.length eqs in
  (* unknown -> indices of the equations that mention it *)
  let adj = Array.make n_unknowns [] in
  List.iteri
    (fun ei vars ->
      List.iter
        (fun v ->
          let ui = Hashtbl.find index v in
          adj.(ui) <- ei :: adj.(ui))
        vars)
    eq_vars;
  (* Kuhn's augmenting paths: match every unknown to a distinct
     equation mentioning it. An unmatched unknown witnesses structural
     under-determination (Dulmage–Mendelsohn: it lies in the
     underdetermined block). *)
  let eq_match = Array.make (max n_eqs 1) (-1) in
  let rec augment visited u =
    List.exists
      (fun e ->
        if visited.(e) then false
        else begin
          visited.(e) <- true;
          if eq_match.(e) < 0 || augment visited eq_match.(e) then begin
            eq_match.(e) <- u;
            true
          end
          else false
        end)
      adj.(u)
  in
  let unmatched = ref [] in
  Array.iteri
    (fun u _ ->
      if not (augment (Array.make (max n_eqs 1) false) u) then
        unmatched := u :: !unmatched)
    unknowns;
  let under =
    List.rev_map
      (fun u ->
        let name = Expr.var_name unknowns.(u) in
        Diag.error ?span:(span_of unknowns.(u)) ~subject:name "AMS030"
          (Printf.sprintf
             "structurally under-determined: no equation left to define %s"
             name))
      !unmatched
  in
  let over =
    if n_eqs > n_unknowns then
      [ Diag.warning "AMS031"
          (Printf.sprintf
             "structurally over-determined: %d independent equations for %d \
              unknowns"
             n_eqs n_unknowns)
      ]
    else []
  in
  under @ over

(* Variables read algebraically — i.e. outside any ddt/idt node. A
   dependency through a derivative is state-like (the discretised form
   reads mostly history), so it does not constitute a zero-delay
   algebraic coupling; without this distinction every RC network would
   report a loop through its capacitor currents. *)
let rec algebraic_vars acc (e : Expr.t) =
  match e with
  | Expr.Const _ -> acc
  | Expr.Var v -> Expr.Var_set.add v acc
  | Expr.Neg a -> algebraic_vars acc a
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b) ->
      algebraic_vars (algebraic_vars acc a) b
  | Expr.Ddt _ | Expr.Idt _ -> acc
  | Expr.App (_, a) -> algebraic_vars acc a
  | Expr.Cond (c, a, b) ->
      algebraic_vars (algebraic_vars (algebraic_cond_vars acc c) a) b

and algebraic_cond_vars acc = function
  | Expr.Cmp (_, a, b) -> algebraic_vars (algebraic_vars acc a) b
  | Expr.And (a, b) | Expr.Or (a, b) ->
      algebraic_cond_vars (algebraic_cond_vars acc a) b
  | Expr.Not c -> algebraic_cond_vars acc c

(* Zero-delay algebraic loops: cycles in the reads-at-current-step
   relation between definitions the solver cannot eliminate. Linear
   definitions are excluded — a cycle of linear equations (every
   resistive divider forms one through its KCL/KVL identities) is
   dissolved by substitution during [Solve]. Integrating definitions
   are excluded too: they read their own past through the discretised
   derivative. What remains — a cycle of nonlinear, non-integrating
   definitions — must be iterated within the time step, and the relaxed
   solver may lag or diverge on it. *)
let algebraic_loops ~span_of (asm : Assemble.result) =
  let defs =
    List.filter
      (fun (d : Assemble.definition) ->
        (not d.Assemble.integrates)
        && Expr.linear_form d.Assemble.raw = None)
      asm.Assemble.defs
  in
  let by_var = Hashtbl.create 16 in
  List.iter
    (fun (d : Assemble.definition) -> Hashtbl.replace by_var d.Assemble.var d)
    defs;
  let deps (d : Assemble.definition) =
    Expr.Var_set.elements (algebraic_vars Expr.Var_set.empty d.Assemble.raw)
    |> List.filter (fun v -> v.Expr.delay = 0 && Hashtbl.mem by_var v)
  in
  (* DFS with colouring; report each cycle once, by its entry variable. *)
  let state = Hashtbl.create 16 in
  (* 1 = on stack, 2 = done *)
  let findings = ref [] in
  let rec visit path v =
    match Hashtbl.find_opt state v with
    | Some 2 -> ()
    | Some _ ->
        let rec from_entry = function
          | [] -> [ v ]
          | w :: _ as l when Expr.equal_var w v -> l
          | _ :: tl -> from_entry tl
        in
        let cycle = from_entry (List.rev path) in
        let names = List.map Expr.var_name cycle in
        findings :=
          Diag.warning ?span:(span_of v)
            ~subject:(Expr.var_name v)
            "AMS040"
            (Printf.sprintf "zero-delay algebraic loop: %s"
               (String.concat " -> " (names @ [ List.hd names ])))
          :: !findings
    | None ->
        Hashtbl.replace state v 1;
        let d = Hashtbl.find by_var v in
        List.iter (visit (v :: path)) (deps d);
        Hashtbl.replace state v 2
  in
  List.iter
    (fun (d : Assemble.definition) -> visit [] d.Assemble.var)
    defs;
  List.rev !findings

(* Discretisation-stability estimate: a state update [ddt x = f(...)]
   with linear [f] has its own time constant [tau = 1/|df/dx|]; the
   backward-Euler step stays stable but loses accuracy once [dt]
   overtakes the fastest [tau]. The derivative is usually phrased
   through intermediate currents ([ddt v = k * I(br)]), so the
   non-integrating definitions are expanded into it first — only then
   does the state's own coefficient appear. *)
let stability ~span_of ~dt (asm : Assemble.result) =
  let algebraic = Hashtbl.create 16 in
  List.iter
    (fun (d : Assemble.definition) ->
      if not d.Assemble.integrates then
        Hashtbl.replace algebraic d.Assemble.var d.Assemble.raw)
    asm.Assemble.defs;
  let expand e =
    (* bounded fixpoint; cycles cannot loop past the definition count *)
    let rec go k e =
      if k = 0 then e
      else
        let e' = Expr.subst (fun v -> Hashtbl.find_opt algebraic v) e in
        if e' = e then e else go (k - 1) e'
    in
    Expr.simplify (go (List.length asm.Assemble.defs + 1) e)
  in
  List.filter_map
    (fun (d : Assemble.definition) ->
      match d.Assemble.deriv with
      | Some e when d.Assemble.integrates -> (
          match Expr.linear_form (expand e) with
          | None -> None
          | Some (items, _) -> (
              match
                List.find_opt
                  (fun (v, _) -> Expr.equal_var v d.Assemble.var)
                  items
              with
              | Some (_, a) when a <> 0.0 && dt > 1.0 /. abs_float a ->
                  let name = Expr.var_name d.Assemble.var in
                  Some
                    (Diag.warning
                       ?span:(span_of d.Assemble.var)
                       ~subject:name "AMS041"
                       (Printf.sprintf
                          "time step %g exceeds the estimated time constant \
                           %g of %s; the discretised model will be heavily \
                           damped"
                          dt
                          (1.0 /. abs_float a)
                          name))
              | _ -> None))
      | _ -> None)
    asm.Assemble.defs

let abstraction_safety ?(span_of = fun _ -> None) ~dt asm =
  algebraic_loops ~span_of asm @ stability ~span_of ~dt asm

let gate findings =
  match
    List.find_opt (fun f -> f.Diag.severity = Diag.Error) findings
  with
  | Some f -> raise (Diag.Rejected f)
  | None -> ()
