module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component
module Graph = Amsvp_netlist.Graph
module Circuits = Amsvp_netlist.Circuits
module Sfprogram = Amsvp_sf.Sfprogram
module Obs = Amsvp_obs.Obs
module Diag = Amsvp_diag.Diag

let c_abstractions =
  Obs.Counter.make ~help:"abstraction flow runs" "amsvp_flow_abstractions_total"

type report = {
  program : Sfprogram.t;
  nodes : int;
  branches : int;
  classes : int;
  variants : int;
  definitions : int;
  fidelity : Solve.fidelity;
  explain : Explain.t;
  acquisition_s : float;
  enrichment_s : float;
  assemble_s : float;
  solve_s : float;
}

let total_seconds r =
  r.acquisition_s +. r.enrichment_s +. r.assemble_s +. r.solve_s

(* Stage timings come from the span recorder's monotonic clock; the
   duration is returned even with the recorder off so [report] is always
   populated, and the span event is recorded when it is on. *)
let timed name f = Obs.timed ~cat:"flow" name f

(* A potential that must be observable — an output of interest, or the
   sensing pair of a controlled source — but is not the branch
   potential of any device is observed through an ideal voltmeter: a
   zero-current source between the two nodes, which adds the variable
   to the equation system without disturbing the network. *)
let with_probes circuit outputs =
  let devices = Circuit.devices circuit in
  let node_exists n = List.mem n (Circuit.nodes circuit) in
  let present (a, b) =
    List.exists (fun (d : Component.t) -> d.pos = a && d.neg = b) devices
  in
  let required_outputs =
    List.filter_map
      (fun (o : Expr.var) ->
        match o.Expr.base with
        | Expr.Potential (a, b) ->
            if node_exists a && node_exists b then Some (a, b)
            else
              invalid_arg
                (Printf.sprintf "Flow: output %s refers to unknown nodes"
                   (Expr.var_name o))
        | Expr.Flow _ | Expr.Signal _ | Expr.Param _ -> None)
      outputs
  in
  let required_controls =
    List.filter_map
      (fun (d : Component.t) ->
        match d.kind with
        | Component.Vcvs { ctrl_pos; ctrl_neg; _ }
        | Component.Vccs { ctrl_pos; ctrl_neg; _ } ->
            Some (ctrl_pos, ctrl_neg)
        | Component.Resistor _ | Component.Capacitor _ | Component.Inductor _
        | Component.Vsource _ | Component.Isource _
        | Component.Pwl_conductance _ ->
            None)
      devices
  in
  let missing =
    List.filter (fun pair -> not (present pair))
      (required_outputs @ required_controls)
    |> List.sort_uniq compare
  in
  if missing = [] then circuit
  else begin
    let c = Circuit.create ~ground:(Circuit.ground circuit) () in
    List.iter (Circuit.add c) devices;
    List.iteri
      (fun i (a, b) ->
        Circuit.add_isource c
          ~name:(Printf.sprintf "__probe%d" i)
          ~pos:a ~neg:b (Component.Dc 0.0))
      missing;
    c
  end

let insert_probes circuit ~outputs = with_probes circuit outputs

let abstract_circuit ?(name = "abstracted") ?(mode = `Auto)
    ?(integration = `Backward_euler) ?(fidelity = `Paper) circuit ~outputs ~dt
    =
  if outputs = [] then invalid_arg "Flow: no outputs of interest";
  Obs.with_span ~cat:"flow" ~args:[ ("model", name) ] "flow.abstract"
  @@ fun () ->
  Obs.Counter.incr c_abstractions;
  let circuit = with_probes circuit outputs in
  (* Pre-flight gates: reject a malformed topology or a structurally
     singular system with a located Diag finding instead of letting a
     deep solver exception surface. *)
  Check.gate (Circuit.diagnose circuit);
  let inputs = Circuit.input_signals circuit in
  let acq, acquisition_s =
    timed "flow.acquisition" (fun () -> Acquisition.of_circuit circuit)
  in
  let (map, stats), enrichment_s =
    timed "flow.enrich" (fun () -> Enrich.enrich acq)
  in
  Check.gate (Check.solvability map ~outputs);
  (* Structural matching is necessary but not sufficient: a degenerate
     topology can pass the gates and still leave Assemble or Solve
     without a usable pivot. Those late failures become located Diag
     rejections too, so every way abstraction can fail speaks the same
     language. *)
  let asm, assemble_s =
    timed "flow.assemble" (fun () ->
        try Assemble.assemble map ~inputs ~outputs
        with Assemble.No_definition v ->
          raise
            (Diag.Rejected
               (Diag.error ~subject:(Expr.var_name v) "AMS030"
                  (Printf.sprintf "no consistent set of equations defines %s"
                     (Expr.var_name v)))))
  in
  let (program, plan), solve_s =
    timed "flow.solve" (fun () ->
        try Solve.solve_with_plan ~mode ~integration ~name ~dt asm with
        | Solve.Underdetermined msg ->
            raise
              (Diag.Rejected
                 (Diag.error "AMS030"
                    (Printf.sprintf "underdetermined system (%s)" msg)))
        | Solve.Nonlinear v ->
            raise
              (Diag.Rejected
                 (Diag.error ~subject:(Expr.var_name v) "AMS042"
                    (Printf.sprintf
                       "nonlinear definition for %s (outside the linear \
                        scope)"
                       (Expr.var_name v)))))
  in
  let explain = Explain.of_abstraction ~name ~dt ~mode map asm plan in
  {
    program;
    nodes = Graph.node_count acq.Acquisition.graph;
    branches = Graph.branch_count acq.Acquisition.graph;
    classes = Eqmap.class_count map;
    variants = stats.Enrich.variants;
    definitions = List.length asm.Assemble.defs;
    fidelity;
    explain;
    acquisition_s;
    enrichment_s;
    assemble_s;
    solve_s;
  }

let abstract_testcase ?(mode = `Auto) ?(integration = `Backward_euler)
    ?fidelity (tc : Circuits.testcase) ~dt =
  abstract_circuit ~name:tc.Circuits.label ~mode ~integration ?fidelity
    tc.Circuits.circuit ~outputs:[ tc.Circuits.output ] ~dt

(* A discretised contribution may mention its own target at the current
   time (e.g. [V(out) <+ V(in) - tau*ddt(V(out))]): interpreting [=] as
   an assignment would be wrong, so the scalar linear equation is
   solved for the target exactly as in Fig. 7. *)
let solve_self_reference target expr =
  if not (Expr.contains_var target expr) then expr
  else
    match Expr.linear_form expr with
    | None -> raise (Solve.Nonlinear target)
    | Some (items, k) ->
        let a =
          match List.find_opt (fun (v, _) -> Expr.equal_var v target) items with
          | Some (_, c) -> c
          | None -> 0.0
        in
        let denom = 1.0 -. a in
        if abs_float denom < 1e-300 then
          raise
            (Solve.Underdetermined
               ("self-reference with unit coefficient on "
              ^ Expr.var_name target));
        let rest =
          List.filter (fun (v, _) -> not (Expr.equal_var v target)) items
        in
        Expr.simplify
          (Expr.of_linear_form
             (List.map (fun (v, c) -> (v, c /. denom)) rest, k /. denom))

let convert_signal_flow ~name ~inputs ~outputs ~contributions ~dt =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "__idt%d" !counter
  in
  let assignments =
    List.concat_map
      (fun (target, e) ->
        let e, accumulators = Expr.extract_idt ~fresh e in
        let finish tgt expr =
          let expr =
            Expr.subst
              (fun v ->
                if Expr.equal_var v Expr.dt_param then Some (Expr.const dt)
                else None)
              expr
          in
          solve_self_reference tgt (Expr.simplify (Expr.discretize ~dt expr))
        in
        List.map
          (fun (s, update) -> { Sfprogram.target = s; expr = finish s update })
          accumulators
        @ [ { Sfprogram.target; expr = finish target e } ])
      contributions
  in
  Sfprogram.make ~name ~inputs ~outputs ~assignments ~dt

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>abstraction report: %d nodes, %d branches, %d classes, %d \
     variants, %d definitions, %s reference@,timings: acquisition %.3fms, \
     enrichment %.3fms, assemble %.3fms, solve %.3fms@,%a@]"
    r.nodes r.branches r.classes r.variants r.definitions
    (Solve.fidelity_to_string r.fidelity)
    (r.acquisition_s *. 1e3) (r.enrichment_s *. 1e3) (r.assemble_s *. 1e3)
    (r.solve_s *. 1e3) Sfprogram.pp r.program
