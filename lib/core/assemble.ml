type definition = {
  var : Expr.var;
  raw : Expr.t;
  via : int;
  integrates : bool;
  deriv : Expr.t option;
}

type result = {
  defs : definition list;
  outputs : Expr.var list;
  inputs : string list;
}

exception No_definition of Expr.var

type status = Not_visited | In_progress | Defined

(* Undo journal for backtracking. *)
type action =
  | Status_set of Expr.var * status
  | Class_disabled of int
  | Def_pushed

type state = {
  map : Eqmap.t;
  inputs : string list;
  status : (Expr.var, status) Hashtbl.t;
  mutable defs : definition list;  (* reverse completion order *)
  mutable journal : action list;
}

let status_of st v =
  match Hashtbl.find_opt st.status v with Some s -> s | None -> Not_visited

let set_status st v s =
  st.journal <- Status_set (v, status_of st v) :: st.journal;
  Hashtbl.replace st.status v s

let c_class_disables =
  Amsvp_obs.Obs.Counter.make
    ~help:"equation classes disabled while assembling (incl. backtracked)"
    "amsvp_flow_class_disables_total"

let disable st id =
  Amsvp_obs.Obs.Counter.incr c_class_disables;
  Eqmap.disable_class st.map id;
  st.journal <- Class_disabled id :: st.journal

let push_def st d =
  st.defs <- d :: st.defs;
  st.journal <- Def_pushed :: st.journal

let rollback st checkpoint =
  let rec go () =
    if st.journal != checkpoint then begin
      (match st.journal with
      | [] -> assert false
      | a :: rest ->
          st.journal <- rest;
          (match a with
          | Status_set (v, prev) -> Hashtbl.replace st.status v prev
          | Class_disabled id -> Eqmap.enable_class st.map id
          | Def_pushed -> (
              match st.defs with
              | [] -> assert false
              | _ :: tl -> st.defs <- tl)));
      go ()
    end
  in
  go ()

let is_known st (v : Expr.var) =
  match v.Expr.base with
  | Expr.Signal s -> List.mem s st.inputs
  | Expr.Param _ -> true
  | Expr.Potential _ | Expr.Flow _ -> false

(* Ensure every quantity read by [e] (at any delay) has a definition,
   recursively. Returns false when some quantity cannot be defined with
   the remaining equation classes. *)
let rec cover st e =
  Expr.Var_set.for_all
    (fun v ->
      let cur = { v with Expr.delay = 0 } in
      define st cur)
    (Expr.vars e)

and define st x =
  if is_known st x then true
  else
    match status_of st x with
    | Defined | In_progress -> true
    | Not_visited ->
        set_status st x In_progress;
        (* Prefer defining a state-bearing quantity through its
           derivative (one-step integration): the resulting update has
           the contraction structure that keeps the relaxed solving
           mode stable, and in exact mode the choice is immaterial
           (same linear system). *)
        let candidates =
          List.map (fun v -> (`Der, v)) (Eqmap.fetch_all st.map (Eqn.Der x))
          @ List.map (fun v -> (`Cur, v)) (Eqmap.fetch_all st.map (Eqn.Cur x))
        in
        let rec try_candidates = function
          | [] ->
              (* No equation class can define x here: undo the
                 In_progress mark and report failure upwards. *)
              (match st.journal with
              | Status_set (v, prev) :: rest when Expr.equal_var v x ->
                  Hashtbl.replace st.status x prev;
                  st.journal <- rest
              | _ -> Hashtbl.replace st.status x Not_visited);
              false
          | (kind, (variant : Eqmap.variant)) :: rest ->
              let checkpoint = st.journal in
              disable st variant.class_id;
              if cover st variant.rhs then begin
                let raw, integrates, deriv =
                  match kind with
                  | `Cur -> (variant.rhs, false, None)
                  | `Der ->
                      (* x is defined through ddt(x) = rhs: integrate
                         one step, x = x@-1 + __dt * rhs. *)
                      ( Expr.(
                          var (Expr.delayed x 1)
                          + (var Expr.dt_param * variant.rhs)),
                        true,
                        Some variant.rhs )
                in
                push_def st
                  { var = x; raw; via = variant.class_id; integrates; deriv };
                set_status st x Defined;
                true
              end
              else begin
                rollback st checkpoint;
                try_candidates rest
              end
        in
        try_candidates candidates

let assemble map ~inputs ~outputs =
  let st =
    { map; inputs; status = Hashtbl.create 64; defs = []; journal = [] }
  in
  List.iter
    (fun out ->
      if out.Expr.delay <> 0 then
        invalid_arg "Assemble: outputs must be current-time quantities";
      if not (define st out) then raise (No_definition out))
    outputs;
  { defs = List.rev st.defs; outputs; inputs }

let inline_tree (r : result) out =
  let defs = r.defs in
  let find v =
    List.find_opt (fun d -> Expr.equal_var d.var v) defs
  in
  let rec expand path e =
    Expr.subst
      (fun v ->
        if v.Expr.delay > 0 then None
        else if List.exists (Expr.equal_var v) path then None
          (* recursion: leave the reference, as in Fig. 6 *)
        else
          match find v with
          | Some d -> Some (expand (v :: path) d.raw)
          | None -> None)
      e
  in
  match find out with
  | Some d -> expand [ out ] d.raw
  | None -> raise Not_found

let pp_definition ppf d =
  Format.fprintf ppf "%s := %a  [class %d]" (Expr.var_name d.var) Expr.pp d.raw
    d.via
