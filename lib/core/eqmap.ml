type variant = { class_id : int; defines : Eqn.pseudo; rhs : Expr.t }

type clazz = {
  id : int;
  origin : Eqn.t;
  variants : variant list;
  mutable enabled : bool;
}

module Pmap = Map.Make (struct
  type t = Eqn.pseudo

  let compare = Eqn.compare_pseudo
end)

type t = {
  mutable classes : clazz list;  (* reverse insertion order *)
  mutable by_id : clazz array;  (* lazily rebuilt index *)
  mutable index_dirty : bool;
  mutable by_pseudo : variant list Pmap.t;  (* values in insertion order *)
  mutable nclasses : int;
  mutable nvariants : int;
}

let create () =
  {
    classes = [];
    by_id = [||];
    index_dirty = false;
    by_pseudo = Pmap.empty;
    nclasses = 0;
    nvariants = 0;
  }

let add_equation m eqn =
  let id = m.nclasses in
  let variants =
    Eqn.unknowns eqn
    |> List.filter_map (fun p ->
           match Eqn.solve_for p eqn with
           | Some rhs -> Some { class_id = id; defines = p; rhs }
           | None -> None)
  in
  let variants =
    (* A nonlinear (e.g. piecewise-linear) equation whose left side is
       a bare quantity still provides a direct definition for it; the
       region handling happens in the Solve step. *)
    match (variants, eqn.Eqn.lhs) with
    | [], Expr.Var v when v.Expr.delay = 0 ->
        [ { class_id = id; defines = Eqn.Cur v; rhs = eqn.Eqn.rhs } ]
    | _ -> variants
  in
  let c = { id; origin = eqn; variants; enabled = true } in
  m.classes <- c :: m.classes;
  m.index_dirty <- true;
  m.nclasses <- m.nclasses + 1;
  m.nvariants <- m.nvariants + List.length variants;
  List.iter
    (fun v ->
      let existing =
        match Pmap.find_opt v.defines m.by_pseudo with
        | Some l -> l
        | None -> []
      in
      m.by_pseudo <- Pmap.add v.defines (existing @ [ v ]) m.by_pseudo)
    variants

let class_count m = m.nclasses
let variant_count m = m.nvariants

let index m =
  if m.index_dirty && m.nclasses > 0 then begin
    let arr = Array.make m.nclasses (List.hd m.classes) in
    List.iter (fun c -> arr.(c.id) <- c) m.classes;
    m.by_id <- arr;
    m.index_dirty <- false
  end;
  m.by_id

let clazz m id =
  let arr = index m in
  if id < 0 || id >= Array.length arr then
    invalid_arg "Eqmap: unknown class id";
  arr.(id)

let is_enabled m id = (clazz m id).enabled
let disable_class m id = (clazz m id).enabled <- false
let enable_class m id = (clazz m id).enabled <- true
let reset m = List.iter (fun c -> c.enabled <- true) m.classes

let fetch_all m p =
  match Pmap.find_opt p m.by_pseudo with
  | None -> []
  | Some l -> List.filter (fun v -> is_enabled m v.class_id) l

let fetch m p = match fetch_all m p with [] -> None | v :: _ -> Some v

let origins m = List.rev_map (fun c -> c.origin) m.classes
let origin_of_class m id = (clazz m id).origin
let variants_of_class m id = (clazz m id).variants

let pp ppf m =
  Format.fprintf ppf "@[<v>equation map: %d classes, %d solved variants@,"
    m.nclasses m.nvariants;
  List.iter
    (fun c ->
      Format.fprintf ppf "[%d]%s %a@," c.id
        (if c.enabled then "" else " (disabled)")
        Eqn.pp c.origin;
      List.iter
        (fun v ->
          Format.fprintf ppf "      -> %s = %a@," (Eqn.pseudo_name v.defines)
            Expr.pp v.rhs)
        c.variants)
    (List.rev m.classes);
  Format.fprintf ppf "@]"
