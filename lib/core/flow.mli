(** The complete abstraction flow of Fig. 4: acquisition → enrichment →
    assemble → solve → signal-flow program, plus the direct conversion
    path for models that are already in signal-flow form (contribution 1
    of the paper). *)

type report = {
  program : Amsvp_sf.Sfprogram.t;
  nodes : int;
  branches : int;
  classes : int;  (** equation classes after enrichment *)
  variants : int;  (** solved variants in the multimap *)
  definitions : int;  (** quantities in the cone of influence *)
  fidelity : Solve.fidelity;
      (** reference-engine cost model the abstraction is meant to be
          validated against downstream (default [`Paper]) *)
  explain : Explain.t;
      (** the structured plan account ([amsvp explain]) *)
  acquisition_s : float;
  enrichment_s : float;
  assemble_s : float;
  solve_s : float;
}

val total_seconds : report -> float

val insert_probes :
  Amsvp_netlist.Circuit.t -> outputs:Expr.var list -> Amsvp_netlist.Circuit.t
(** The probe-insertion step {!abstract_circuit} performs internally:
    every output potential and every controlled-source sensing pair
    that is not a branch potential of the circuit gets a zero-current
    probe (an ideal voltmeter), making it observable by the equation
    system. Returns the original circuit unchanged when nothing is
    missing. *)

val abstract_circuit :
  ?name:string ->
  ?mode:Solve.mode ->
  ?integration:Solve.integration ->
  ?fidelity:Solve.fidelity ->
  Amsvp_netlist.Circuit.t ->
  outputs:Expr.var list ->
  dt:float ->
  report
(** Run the whole flow on a conservative model. If an output potential
    [V(a,b)] is not the branch potential of any device, a zero-current
    probe (an ideal voltmeter) is inserted between [a] and [b] first.
    @raise Invalid_argument on invalid circuits or outputs over unknown
    nodes
    @raise Assemble.No_definition, Solve.Nonlinear,
    Solve.Underdetermined as the respective steps do. *)

val abstract_testcase :
  ?mode:Solve.mode ->
  ?integration:Solve.integration ->
  ?fidelity:Solve.fidelity ->
  Amsvp_netlist.Circuits.testcase ->
  dt:float ->
  report
(** Abstraction of a paper test case (single output of interest). *)

val convert_signal_flow :
  name:string ->
  inputs:string list ->
  outputs:Expr.var list ->
  contributions:(Expr.var * Expr.t) list ->
  dt:float ->
  Amsvp_sf.Sfprogram.t
(** Direct conversion of an explicit signal-flow description: each
    contribution [target <+ expr] is discretised ([ddt] → backward
    difference, [idt] → accumulator signal) and written out in the same
    order as in the source (§III-C). *)

val pp_report : Format.formatter -> report -> unit
