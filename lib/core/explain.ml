module Sfprogram = Amsvp_sf.Sfprogram

type provenance =
  | From_class of {
      class_id : int;
      origin : Eqn.t;
      defines : Eqn.pseudo;
      disabled : Eqmap.variant list;
    }
  | Direct

type choice = {
  target : Expr.var;
  rhs : Expr.t;
  integrates : bool;
  provenance : provenance;
}

type t = {
  model : string;
  dt : float;
  requested_mode : Solve.mode;
  plan : Solve.plan;
  inputs : string list;
  outputs : Expr.var list;
  classes_total : int;
  choices : choice list;
}

let of_abstraction ~name ~dt ~mode map (asm : Assemble.result)
    (plan : Solve.plan) =
  let choices =
    List.map
      (fun (d : Assemble.definition) ->
        let defines =
          if d.Assemble.integrates then Eqn.Der d.Assemble.var
          else Eqn.Cur d.Assemble.var
        in
        let disabled =
          List.filter
            (fun (v : Eqmap.variant) ->
              Eqn.compare_pseudo v.Eqmap.defines defines <> 0)
            (Eqmap.variants_of_class map d.Assemble.via)
        in
        {
          target = d.Assemble.var;
          rhs =
            (match d.Assemble.deriv with
            | Some rhs when d.Assemble.integrates -> rhs
            | _ -> d.Assemble.raw);
          integrates = d.Assemble.integrates;
          provenance =
            From_class
              {
                class_id = d.Assemble.via;
                origin = Eqmap.origin_of_class map d.Assemble.via;
                defines;
                disabled;
              };
        })
      asm.Assemble.defs
  in
  {
    model = name;
    dt;
    requested_mode = mode;
    plan;
    inputs = asm.Assemble.inputs;
    outputs = asm.Assemble.outputs;
    classes_total = Eqmap.class_count map;
    choices;
  }

let of_signal_flow (p : Sfprogram.t) =
  {
    model = p.Sfprogram.name;
    dt = p.Sfprogram.dt;
    requested_mode = `Exact;
    plan =
      {
        Solve.effective_mode = `Exact;
        integration_used = `Backward_euler;
        lagged = [];
        eliminations = [];
        regions = 1;
        ddt_aux = 0;
      };
    inputs = p.Sfprogram.inputs;
    outputs = p.Sfprogram.outputs;
    classes_total = 0;
    choices =
      List.map
        (fun (a : Sfprogram.assignment) ->
          {
            target = a.Sfprogram.target;
            rhs = a.Sfprogram.expr;
            integrates = false;
            provenance = Direct;
          })
        p.Sfprogram.assignments;
  }

let cone e = List.length e.choices

let mode_label : Solve.mode -> string = function
  | `Auto -> "auto"
  | `Exact -> "exact"
  | `Relaxed -> "relaxed"

let integration_label : Solve.integration -> string = function
  | `Backward_euler -> "backward-euler"
  | `Trapezoidal -> "trapezoidal"

let origin_label (o : Eqn.origin) =
  match o with
  | Eqn.Dipole d -> "dipole " ^ d
  | Eqn.Kcl n -> "kcl " ^ n
  | Eqn.Kvl i -> Printf.sprintf "kvl %d" i
  | Eqn.Derived -> "derived"
  | Eqn.Explicit -> "explicit"

(* ---- JSON ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)

let jlist items = "[" ^ String.concat "," items ^ "]"

let to_json e =
  let b = Buffer.create 4096 in
  let plan = e.plan in
  Printf.bprintf b
    "{\"model\":%s,\"dt\":%.17g,\"mode\":%s,\"effective_mode\":%s,\
     \"integration\":%s,\"regions\":%d,\"ddt_aux\":%d,\"classes\":%d,\
     \"cone\":%d,"
    (jstr e.model) e.dt
    (jstr (mode_label e.requested_mode))
    (jstr (mode_label (plan.Solve.effective_mode :> Solve.mode)))
    (jstr (integration_label plan.Solve.integration_used))
    plan.Solve.regions plan.Solve.ddt_aux e.classes_total (cone e);
  Printf.bprintf b "\"inputs\":%s,"
    (jlist (List.map jstr e.inputs));
  Printf.bprintf b "\"outputs\":%s,"
    (jlist (List.map (fun v -> jstr (Expr.var_name v)) e.outputs));
  Printf.bprintf b "\"lagged\":%s,"
    (jlist (List.map (fun v -> jstr (Expr.var_name v)) plan.Solve.lagged));
  Printf.bprintf b "\"eliminations\":%s,"
    (jlist
       (List.map
          (fun (el : Solve.elimination) ->
            Printf.sprintf "{\"members\":%s,\"pivots\":%s}"
              (jlist
                 (List.map
                    (fun v -> jstr (Expr.var_name v))
                    el.Solve.members))
              (jlist
                 (List.map
                    (fun (p : Solve.pivot) ->
                      Printf.sprintf "{\"var\":%s,\"magnitude\":%.9g}"
                        (jstr (Expr.var_name p.Solve.pivot_var))
                        p.Solve.pivot_mag)
                    el.Solve.pivots)))
          plan.Solve.eliminations));
  Printf.bprintf b "\"variables\":%s}"
    (jlist
       (List.map
          (fun c ->
            let common =
              Printf.sprintf
                "\"var\":%s,\"integrates\":%b,\"equation\":%s"
                (jstr (Expr.var_name c.target))
                c.integrates
                (jstr
                   (Printf.sprintf "%s = %s"
                      (if c.integrates then
                         "ddt(" ^ Expr.var_name c.target ^ ")"
                       else Expr.var_name c.target)
                      (Expr.to_string c.rhs)))
            in
            match c.provenance with
            | Direct -> Printf.sprintf "{%s,\"source\":\"direct\"}" common
            | From_class { class_id; origin; defines; disabled } ->
                Printf.sprintf
                  "{%s,\"source\":\"class\",\"class\":%d,\"origin\":%s,\
                   \"defines\":%s,\"disabled\":%s}"
                  common class_id
                  (jstr (origin_label origin.Eqn.origin))
                  (jstr (Eqn.pseudo_name defines))
                  (jlist
                     (List.map
                        (fun (v : Eqmap.variant) ->
                          Printf.sprintf "{\"defines\":%s,\"rhs\":%s}"
                            (jstr (Eqn.pseudo_name v.Eqmap.defines))
                            (jstr (Expr.to_string v.Eqmap.rhs)))
                        disabled)))
          e.choices));
  Buffer.contents b

(* ---- pretty text ---- *)

let pp ppf e =
  let plan = e.plan in
  Format.fprintf ppf "@[<v>abstraction plan for %s (dt=%g)@," e.model e.dt;
  Format.fprintf ppf
    "mode: %s (effective %s), integration: %s, regions: %d%s@,"
    (mode_label e.requested_mode)
    (mode_label (plan.Solve.effective_mode :> Solve.mode))
    (integration_label plan.Solve.integration_used)
    plan.Solve.regions
    (if plan.Solve.ddt_aux > 0 then
       Printf.sprintf ", ddt auxiliaries: %d" plan.Solve.ddt_aux
     else "");
  Format.fprintf ppf "cone of influence: %d of %d equation classes@," (cone e)
    e.classes_total;
  Format.fprintf ppf "inputs: %s@," (String.concat ", " e.inputs);
  Format.fprintf ppf "outputs: %s@,"
    (String.concat ", " (List.map Expr.var_name e.outputs));
  if plan.Solve.lagged <> [] then
    Format.fprintf ppf "relaxation lagged: %s@,"
      (String.concat ", " (List.map Expr.var_name plan.Solve.lagged));
  List.iter
    (fun (el : Solve.elimination) ->
      Format.fprintf ppf "eliminated component {%s} pivots [%s]@,"
        (String.concat ", " (List.map Expr.var_name el.Solve.members))
        (String.concat ", "
           (List.map
              (fun (p : Solve.pivot) ->
                Printf.sprintf "%s:%.3g"
                  (Expr.var_name p.Solve.pivot_var)
                  p.Solve.pivot_mag)
              el.Solve.pivots)))
    plan.Solve.eliminations;
  List.iter
    (fun c ->
      let lhs =
        if c.integrates then "ddt(" ^ Expr.var_name c.target ^ ")"
        else Expr.var_name c.target
      in
      (match c.provenance with
      | Direct ->
          Format.fprintf ppf "@,%s = %a@,  (explicit signal-flow)" lhs
            Expr.pp c.rhs
      | From_class { class_id; origin; defines; disabled } ->
          Format.fprintf ppf "@,%s = %a@,  chosen for %s from class %d (%s)"
            lhs Expr.pp c.rhs
            (Eqn.pseudo_name defines)
            class_id
            (origin_label origin.Eqn.origin);
          if disabled <> [] then
            Format.fprintf ppf "@,  disables: %s"
              (String.concat "; "
                 (List.map
                    (fun (v : Eqmap.variant) ->
                      Printf.sprintf "%s = %s"
                        (Eqn.pseudo_name v.Eqmap.defines)
                        (Expr.to_string v.Eqmap.rhs))
                    disabled))))
    e.choices;
  Format.fprintf ppf "@]"

let to_text e = Format.asprintf "%a" pp e
