(** Pre-flight checks over the abstraction pipeline.

    Two families of findings, both reported through {!Amsvp_diag.Diag}:

    - {!solvability} runs on the enriched equation map, {e before}
      {!Assemble}, and decides structural solvability by maximum
      bipartite matching of equation classes against unknown quantities
      (a Dulmage–Mendelsohn-style argument: a perfect matching of the
      unknowns is necessary for the system to determine them). It names
      the unmatched variables — turning a later [No_definition] or
      singular-solve crash into a located diagnostic.

    - {!abstraction_safety} runs on the assembled definitions and warns
      about properties that survive abstraction but degrade the
      discrete-time model: zero-delay algebraic loops between
      non-integrating definitions, and a time step larger than the
      smallest estimated time constant of the system. *)

val solvability :
  ?span_of:(Expr.var -> Amsvp_diag.Diag.span option) ->
  Eqmap.t ->
  outputs:Expr.var list ->
  Amsvp_diag.Diag.finding list
(** Codes:
    - [AMS030] (error) — an unknown quantity (or requested output) that
      no distinct equation can define; [subject] is the variable name.
    - [AMS031] (warning) — strictly more equation classes than unknown
      quantities (structurally over-determined).

    A quantity and its time derivative count as one unknown (they
    collapse at discretisation); nonlinear equations participate with
    the quantities of their residual. *)

val abstraction_safety :
  ?span_of:(Expr.var -> Amsvp_diag.Diag.span option) ->
  dt:float ->
  Assemble.result ->
  Amsvp_diag.Diag.finding list
(** Codes:
    - [AMS040] (warning) — a zero-delay algebraic loop: a cycle of
      nonlinear, non-integrating definitions each referencing the next
      at the current time step (linear cycles dissolve by substitution
      during solving and are not reported); [subject] is a variable on
      the cycle.
    - [AMS041] (warning) — [dt] exceeds the smallest time constant
      estimated from the state-update definitions
      ([tau = 1/|d(ddt x)/dx|]); [subject] is the state variable. *)

val gate : Amsvp_diag.Diag.finding list -> unit
(** Raise {!Amsvp_diag.Diag.Rejected} on the first error finding of the
    list, in report order; warnings pass. *)
