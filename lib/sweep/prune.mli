(** Pre-flight static pruning of provably-unhealthy sweep points.

    Before any point is simulated, the abstract interpreter
    ({!Amsvp_analysis.Absint}) runs the sweep's own compiled bytecode
    template over interval boxes of parameter space: the constant pool
    of the re-targeted template is the entire value-dependence of a
    point, so the interval hull over the pools of a set of points
    covers every concrete execution in the set.  When the exact
    (no-join) abstract step sequence proves the output definitely trips
    a health watchdog — non-finite, or beyond the spec's
    [amplitude_limit] — at some step, every member of the box would
    fail the same way and is skipped with a [Pruned] verdict.

    The proof is a MUST analysis: stimuli are sampled exactly (one
    singleton per step), so pruning never skips a point whose run
    would have been healthy.  Boxes that cannot be proven are bisected
    along the widest parameter axis down to single points; points that
    do not rebind onto the recorded plan are never pruned (they run
    normally). *)

type decision = {
  d_point : Sampler.point;
  d_bad : Amsvp_analysis.Absint.bad;
      (** why: first provably-unhealthy step of the {e box} the point
          was proven in (members may individually fail earlier) *)
}

val plan :
  cache:Abscache.t ->
  probed:Amsvp_netlist.Circuit.t ->
  stimuli:(string * Amsvp_util.Stimulus.t) list ->
  t_stop:float ->
  ?amplitude:float ->
  ?max_steps:int ->
  Sampler.point array ->
  decision list
(** [plan ~cache ~probed ~stimuli ~t_stop points] returns the points
    proven unhealthy, in no particular order.  [amplitude] is the
    watchdog budget ([AMS063]-style proofs need it; non-finite proofs
    do not); [max_steps] bounds the abstract step sequence (default:
    the sweep's own step count, to which it is always clamped). *)
