module Circuit = Amsvp_netlist.Circuit
module Sfprogram = Amsvp_sf.Sfprogram
module Compile = Amsvp_sf.Compile
module Absint = Amsvp_analysis.Absint
module Stimulus = Amsvp_util.Stimulus
module Obs = Amsvp_obs.Obs
module Journal = Amsvp_obs.Journal

type decision = { d_point : Sampler.point; d_bad : Absint.bad }

(* A point that rebinds onto the recorded plan, with the constant pool
   of the shared bytecode template re-targeted at its parameter values.
   Only such points participate in box proofs: the pool is the entire
   value-dependence of the artifact, so an interval hull over member
   pools covers every member's concrete execution. *)
type cand = {
  c_point : Sampler.point;
  c_program : Sfprogram.t;
  c_compiled : Compile.t;
  c_pool : float array;
}

let hull (pools : float array list) =
  match pools with
  | [] -> [||]
  | first :: rest ->
      let h = Array.map Absint.const first in
      List.iter
        (Array.iteri (fun i v -> h.(i) <- Absint.join h.(i) (Absint.const v)))
        rest;
      h

(* Widest-spread override axis among the members, for bisection. *)
let split_axis (members : cand list) =
  let spreads = Hashtbl.create 8 in
  List.iter
    (fun c ->
      List.iter
        (fun (k, v) ->
          let lo, hi =
            match Hashtbl.find_opt spreads k with
            | Some (lo, hi) -> (min lo v, max hi v)
            | None -> (v, v)
          in
          Hashtbl.replace spreads k (lo, hi))
        c.c_point.Sampler.overrides)
    members;
  Hashtbl.fold
    (fun k (lo, hi) best ->
      let w = hi -. lo in
      match best with
      | Some (_, bw) when bw >= w -> best
      | _ -> if w > 0.0 then Some (k, w) else best)
    spreads None
  |> Option.map fst

let bisect axis members =
  let value c =
    match List.assoc_opt axis c.c_point.Sampler.overrides with
    | Some v -> v
    | None -> 0.0
  in
  let sorted =
    List.stable_sort (fun a b -> Float.compare (value a) (value b)) members
  in
  let n = List.length sorted in
  let rec take k = function
    | x :: rest when k > 0 ->
        let l, r = take (k - 1) rest in
        (x :: l, r)
    | rest -> ([], rest)
  in
  take (n / 2) sorted

let plan ~cache ~probed ~stimuli ~t_stop ?amplitude ?max_steps
    (points : Sampler.point array) =
  Obs.with_span ~cat:"sweep" "sweep.prune" @@ fun () ->
  let cands =
    Array.to_list points
    |> List.filter_map (fun (p : Sampler.point) ->
           let circuit = Circuit.override probed p.Sampler.overrides in
           match Abscache.rebind cache circuit with
           | None -> None
           | Some program -> (
               match Abscache.compiled_for cache program with
               | None -> None
               | Some compiled ->
                   Some
                     {
                       c_point = p;
                       c_program = program;
                       c_compiled = compiled;
                       c_pool = Compile.const_pool compiled;
                     }))
  in
  match cands with
  | [] -> []
  | witness :: _ ->
      let program = witness.c_program in
      let dt = program.Sfprogram.dt in
      let nsteps = int_of_float (Float.round (t_stop /. dt)) in
      (* Default to the sweep's own horizon: a proof stops at its first
         bad step, so the full bound only costs when nothing is
         provable — and an abstract step is within a small factor of a
         concrete one. *)
      let max_steps = min (Option.value max_steps ~default:nsteps) nsteps in
      let stims =
        Array.of_list
          (List.map
             (fun n -> List.assoc n stimuli)
             program.Sfprogram.inputs)
      in
      (* Step k of the runner samples every stimulus at t = k*dt — an
         exact singleton per input, so the only abstraction left in a
         proof is the pool hull (and outward rounding). *)
      let inputs k =
        let t = float_of_int k *. dt in
        Array.map (fun stim -> Absint.const (stim t)) stims
      in
      let prove pool =
        Absint.prove_unhealthy_compiled ~max_steps ?amplitude
          ~pool ~inputs program witness.c_compiled
      in
      (* Recursive box bisection: prove the hull of the member pools in
         one abstract run; on failure split along the widest override
         axis until singleton boxes (whose hull is the member's exact
         pool — the per-point proof). *)
      let rec prune members =
        match members with
        | [] -> []
        | _ -> (
            match prove (hull (List.map (fun c -> c.c_pool) members)) with
            | Some bad ->
                List.map (fun c -> { d_point = c.c_point; d_bad = bad }) members
            | None -> (
                match members with
                | [] | [ _ ] -> []
                | _ -> (
                    match split_axis members with
                    | None -> []
                    | Some axis ->
                        let l, r = bisect axis members in
                        if l = [] || r = [] then []
                        else prune l @ prune r)))
      in
      let decisions = prune cands in
      if Journal.enabled () then
        Journal.emit ~cat:"sweep" "prune.plan"
          [
            ("candidates", Journal.I (List.length cands));
            ("pruned", Journal.I (List.length decisions));
            ("max_steps", Journal.I max_steps);
          ];
      decisions
