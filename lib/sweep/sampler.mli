(** Expansion of a {!Spec.t} into concrete scenario points.

    All points are materialised upfront on the calling domain, with
    Monte Carlo draws taken from per-point substreams of the spec seed
    ({!Amsvp_util.Rng.derive}).  The expansion is therefore a pure
    function of the spec: identical specs give byte-identical points no
    matter how many worker domains later execute them, or in which
    order. *)

type point = {
  index : int;  (** 0-based position in the expansion *)
  label : string;  (** ["p0042"] or the corner name *)
  overrides : (string * float) list;
      (** ["device.param"] bindings, in axis order *)
}

val points : Spec.t -> point list
(** Grid/values axes combine by cartesian product (first axis slowest);
    each grid point is drawn [samples] times when the spec has Monte
    Carlo axes; corners follow as one point each.  Length equals
    {!Spec.point_count}. *)

val pp_point : Format.formatter -> point -> unit
