(** Summary statistics over sweep results.

    The reporting layer condenses each per-point series (NRMSE, wall
    time, output RMS, ...) into the summary the paper-style tolerance
    analysis needs: extremes, first two moments and the 50th/95th
    percentiles. *)

type t = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;  (** population standard deviation (divide by [n]) *)
  p50 : float;
  p95 : float;
}

val of_array : float array -> t option
(** [None] on an empty array; NaNs propagate into the summary (filter
    first if the series may contain failed points). *)

val quantile : float array -> float -> float
(** [quantile sorted q] with [q] in [0,1]: linear interpolation between
    the closest ranks ([h = (n-1) q]), over an ascending-sorted array.
    @raise Invalid_argument on an empty array or [q] outside [0,1]. *)

val pp : Format.formatter -> t -> unit
