let chunk = 4

let run ~jobs f items =
  if jobs < 1 then invalid_arg "Pool.run: jobs < 1";
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failed : exn option Atomic.t = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo >= n then continue := false
        else
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            if Atomic.get failed = None then
              match f items.(i) with
              | v -> results.(i) <- Some v
              | exception e ->
                  (* Keep only the first failure; losing the race means
                     another worker already recorded one. *)
                  ignore (Atomic.compare_and_set failed None (Some e))
          done
      done
    in
    let domains =
      List.init (jobs - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get failed with Some e -> raise e | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.run: missing result slot")
      results
  end
