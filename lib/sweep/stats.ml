type t = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  p50 : float;
  p95 : float;
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Stats.quantile: q outside [0,1]";
  (* Linear interpolation between closest ranks: h = (n-1) q, the value
     is x_lo + (h - lo) (x_hi - x_lo). *)
  let h = float_of_int (n - 1) *. q in
  let lo = int_of_float (Float.floor h) in
  let hi = min (n - 1) (lo + 1) in
  sorted.(lo) +. ((h -. float_of_int lo) *. (sorted.(hi) -. sorted.(lo)))

let of_array xs =
  let n = Array.length xs in
  if n = 0 then None
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let mean = sum /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs
      /. float_of_int n
    in
    Some
      {
        n;
        min = sorted.(0);
        max = sorted.(n - 1);
        mean;
        stddev = sqrt var;
        p50 = quantile sorted 0.5;
        p95 = quantile sorted 0.95;
      }
  end

let pp ppf s =
  Format.fprintf ppf
    "n=%d min=%.6g max=%.6g mean=%.6g stddev=%.6g p50=%.6g p95=%.6g" s.n s.min
    s.max s.mean s.stddev s.p50 s.p95
