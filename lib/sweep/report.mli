(** Report sinks for sweep summaries.

    Self-contained emitters in the style of the {!Amsvp_obs.Obs} sinks:
    a JSON document with the spec echo, aggregate statistics and every
    per-point result, and a flat CSV table (one row per point, one
    column per overridden parameter) for spreadsheet-side analysis.
    Non-finite numbers are emitted as [null] in JSON and as empty cells
    in CSV.

    [timings] (default [true]) controls the volatile wall-clock fields
    ([total_s], per-point [wall_s] and the [wall_s] stats block): with
    [~timings:false] they are scrubbed (zeroed / omitted), making the
    report a pure function of the point values — two runs of the same
    spec, including a checkpoint-resumed one, compare byte-for-byte. *)

val json_escape : string -> string
(** JSON string-body escaping (quotes, backslash, control characters) —
    shared with the checkpoint and service-protocol writers. *)

val json : ?timings:bool -> Runner.summary -> string
val csv : ?timings:bool -> Runner.summary -> string

val write : ?timings:bool -> basename:string -> Runner.summary -> string list
(** [write ~basename summary] writes [basename ^ ".json"] and
    [basename ^ ".csv"]; returns the paths written. *)
