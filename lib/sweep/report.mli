(** Report sinks for sweep summaries.

    Self-contained emitters in the style of the {!Amsvp_obs.Obs} sinks:
    a JSON document with the spec echo, aggregate statistics and every
    per-point result, and a flat CSV table (one row per point, one
    column per overridden parameter) for spreadsheet-side analysis.
    Non-finite numbers are emitted as [null] in JSON and as empty cells
    in CSV. *)

val json : Runner.summary -> string
val csv : Runner.summary -> string

val write : basename:string -> Runner.summary -> string list
(** [write ~basename summary] writes [basename ^ ".json"] and
    [basename ^ ".csv"]; returns the paths written. *)
