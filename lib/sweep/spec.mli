(** Declarative scenario specifications for parameter sweeps.

    A spec names a circuit (or is paired with one programmatically) and
    describes a set of scenario points over its component parameters
    (see {!Amsvp_netlist.Circuit.params} for the ["device.param"] key
    space):

    - {e grid} / {e values} axes combine by cartesian product;
    - {e uniform} / {e normal} axes are Monte Carlo tolerances, drawn
      [samples] times per grid point from a seeded deterministic RNG;
    - {e corners} are named explicit bindings, appended as one point
      each.

    Specs have a line-oriented text form ([key value...] lines, [#]
    comments) that round-trips through {!to_string} / {!of_string}. *)

type range =
  | Grid of { lo : float; hi : float; n : int }
      (** [n] linearly spaced values, endpoints included. *)
  | Values of float list  (** explicit list *)
  | Uniform of { lo : float; hi : float }  (** Monte Carlo, uniform *)
  | Normal of { mean : float; sigma : float }  (** Monte Carlo, Gaussian *)

type axis = { param : string; range : range }

type corner = { corner_name : string; binds : (string * float) list }

type stimulus =
  | Square of { period : float; low : float; high : float }
  | Sine of { freq : float; amplitude : float }

type t = {
  name : string;
  circuit : string option;  (** built-in test-case label, e.g. ["RECT"] *)
  output : string option;  (** e.g. ["V(out,gnd)"]; test-case default *)
  stimulus : stimulus option;  (** applied to every input when given *)
  t_stop : float option;
  dt : float option;
  mode : [ `Auto | `Exact | `Relaxed ];
  integration : [ `Backward_euler | `Trapezoidal ];
  samples : int;  (** Monte Carlo draws per grid point *)
  seed : int;
  jobs : int option;  (** worker domains; CLI/runner may override *)
  reference : bool;  (** run the MNA reference and report NRMSE *)
  fidelity : Amsvp_core.Solve.fidelity option;
      (** reference-engine cost model ([fidelity paper|fast]): [`Fast]
          runs the reference with reused sparse factors and Newton
          early-exit — bounded-error, much faster on big sweeps.
          [None] (the default) means [`Paper] and is omitted from the
          text form, keeping existing spec texts, daemon context keys
          and checkpoint digests unchanged *)
  nrmse_budget : float option;
      (** accuracy watchdog: a point whose streaming NRMSE against the
          reference exceeds this budget is flagged unhealthy in the
          report (needs [reference]) *)
  amplitude_limit : float option;
      (** amplitude watchdog: a point whose output exceeds this |value|
          is flagged unhealthy; it is also the budget the pre-flight
          static pruner proves against ([--prune-static]) *)
  point_timeout : float option;
      (** per-point wall-clock budget in seconds: a point still running
          past it is aborted and flagged with a [Timeout] verdict
          instead of stalling its worker (CLI pool and serve shards) *)
  axes : axis list;
  corners : corner list;
}

val default : t
(** Empty spec: name ["sweep"], 1 sample, seed 0, [`Auto] mode,
    backward Euler, reference on, no axes or corners. *)

val diagnose : t -> Amsvp_diag.Diag.finding list
(** Structural checks, one finding per defect. Codes:
    - [AMS050] (error) — no axes and no corners;
    - [AMS051] (error) — malformed axis, corner or count (grid with
      [n < 1] or [lo > hi], empty values, negative sigma, cornerless
      bindings, non-positive samples / budget); [subject] names the
      axis parameter or corner where applicable;
    - [AMS052] (error) — duplicate axis parameter. *)

val validate : t -> (unit, string) result
(** [Error] with the first {!diagnose} finding's message, [Ok] when
    none. *)

val is_random : t -> bool
(** True when some axis is Monte Carlo ([Uniform]/[Normal]). *)

val point_count : t -> int
(** Number of scenario points the spec expands to (grid product x
    samples-if-random + corners). *)

val of_string : string -> (t, string) result
(** Parse the text form; the error message carries the line number. *)

val to_string : t -> string
(** Canonical text form; floats are printed with enough digits to
    round-trip, so [of_string (to_string s) = Ok s] for valid specs. *)

val pp : Format.formatter -> t -> unit
