(** Durable per-point progress for sweeps, and the point-result wire
    codec.

    A checkpoint is a JSONL file: a header line binding the file to one
    spec + circuit (via an MD5 of the spec's canonical text form), then
    one self-contained JSON object per {e completed} point, appended and
    flushed as points finish.  Killing the process — SIGKILL included —
    loses at most the line being written; {!load} recovers every intact
    result and a resumed run ({!Runner.run}'s [completed] argument)
    reruns only the missing points.

    Floats round-trip byte-exactly (%.17g; non-finite values use the
    journal's ["NaN"]/["Infinity"] string encoding), so a resumed
    sweep's report equals the uninterrupted one's.

    The per-result codec ({!result_to_json} / {!result_of_json}) is also
    the payload format the {e serve} protocol streams to clients. *)

val digest : Spec.t -> circuit:string -> string
(** Hex MD5 of the spec's canonical text form plus the circuit label —
    the identity a checkpoint header records. *)

(** {1 Point-result codec} *)

val jnum : float -> string
(** A float as JSON, exact round-trip: [%.17g] when finite, the strings
    ["NaN"] / ["Infinity"] / ["-Infinity"] otherwise (read back by
    [Amsvp_util.Json.to_float]). *)

val jstr : string -> string
(** A quoted, escaped JSON string literal. *)

val result_to_json : Runner.point_result -> string
(** One-line JSON object (no trailing newline). *)

val result_of_json : Amsvp_util.Json.t -> (Runner.point_result, string) result

val result_of_line : string -> (Runner.point_result, string) result
(** Parse + decode one line; total. *)

(** {1 Checkpoint files} *)

type writer

val create :
  path:string -> Spec.t -> circuit:string -> points:int -> writer
(** Truncate [path] and write the header line. *)

val append : writer -> Runner.point_result -> unit
(** Append one result line and flush. Serialised internally — safe to
    call from {!Runner.run}'s [on_point] on any worker domain. *)

val close : writer -> unit

val load :
  path:string ->
  Spec.t ->
  circuit:string ->
  (Runner.point_result list, string) result
(** Recovered results, in file order. [Ok []] when the file is missing
    or empty; [Error] when it exists but its header does not match this
    spec + circuit. A torn final line (kill mid-write) is silently
    dropped. *)

val open_resume :
  path:string ->
  Spec.t ->
  circuit:string ->
  points:int ->
  Runner.point_result list * writer
(** [load] then reopen for appending: recovered results plus a writer
    positioned after them. A missing, empty or {e mismatched} file is
    truncated to a fresh checkpoint (callers wanting to refuse a
    mismatch should {!load} first and check). *)
