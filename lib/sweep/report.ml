module Health = Amsvp_probe.Health

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""

let jfloat v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let jstats (s : Stats.t) =
  Printf.sprintf
    "{\"n\":%d,\"min\":%s,\"max\":%s,\"mean\":%s,\"stddev\":%s,\"p50\":%s,\"p95\":%s}"
    s.n (jfloat s.min) (jfloat s.max) (jfloat s.mean) (jfloat s.stddev)
    (jfloat s.p50) (jfloat s.p95)

let json ?(timings = true) (s : Runner.summary) =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"sweep\": %s,\n" (jstr s.spec.Spec.name);
  add "  \"circuit\": %s,\n" (jstr s.label);
  add "  \"seed\": %d,\n" s.spec.Spec.seed;
  add "  \"jobs\": %d,\n" s.jobs;
  add "  \"points\": %d,\n" (Array.length s.points);
  add "  \"unhealthy\": %d,\n" s.unhealthy;
  add "  \"pruned\": %d,\n" s.pruned;
  add "  \"cache_hits\": %d,\n" s.cache_hits;
  add "  \"cache_misses\": %d,\n" s.cache_misses;
  add "  \"total_s\": %s,\n" (if timings then jfloat s.total_s else "0");
  add "  \"stats\": {";
  let stats =
    List.filter_map
      (fun (k, v) -> Option.map (fun st -> (k, st)) v)
      [
        ("nrmse", s.nrmse_stats);
        ("wall_s", if timings then s.wall_stats else None);
        ("out_rms", s.rms_stats);
      ]
  in
  add "%s"
    (String.concat ","
       (List.map
          (fun (k, st) -> Printf.sprintf "\n    %s: %s" (jstr k) (jstats st))
          stats));
  if stats <> [] then add "\n  ";
  add "},\n";
  add "  \"results\": [";
  Array.iteri
    (fun i (r : Runner.point_result) ->
      if i > 0 then add ",";
      add "\n    {\"index\":%d,\"label\":%s,\"overrides\":{%s}"
        r.point.Sampler.index (jstr r.point.Sampler.label)
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s:%s" (jstr k) (jfloat v))
              r.point.Sampler.overrides));
      add ",\"out_final\":%s,\"out_rms\":%s" (jfloat r.out_final)
        (jfloat r.out_rms);
      (match r.nrmse with
      | Some e -> add ",\"nrmse\":%s" (jfloat e)
      | None -> ());
      (let v = r.health in
       if v.Health.v_healthy then add ",\"health\":\"ok\""
       else
         add ",\"health\":{\"signal\":%s,\"issues\":[%s]}"
           (jstr v.Health.v_signal)
           (String.concat ","
              (List.map
                 (fun (i : Health.issue) ->
                   Printf.sprintf
                     "{\"kind\":%s,\"time\":%s,\"value\":%s}"
                     (jstr (Health.kind_label i.Health.kind))
                     (jfloat i.Health.time) (jfloat i.Health.value))
                 v.Health.v_issues)));
      add ",\"cached\":%b,\"wall_s\":%s}" r.cached
        (if timings then jfloat r.wall_s else "0"))
    s.points;
  add "\n  ]\n}\n";
  Buffer.contents b

(* Override keys in first-appearance order across all points (corners
   may bind a subset of the axis parameters). *)
let override_columns (s : Runner.summary) =
  let seen = Hashtbl.create 8 in
  let cols = ref [] in
  Array.iter
    (fun (r : Runner.point_result) ->
      List.iter
        (fun (k, _) ->
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k ();
            cols := k :: !cols
          end)
        r.point.Sampler.overrides)
    s.points;
  List.rev !cols

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv ?(timings = true) (s : Runner.summary) =
  let b = Buffer.create 4096 in
  let cols = override_columns s in
  let cell v = if Float.is_finite v then Printf.sprintf "%.17g" v else "" in
  Buffer.add_string b
    (String.concat ","
       ([ "index"; "label" ]
       @ List.map csv_escape cols
       @ [ "out_final"; "out_rms"; "nrmse"; "health"; "cached"; "wall_s" ]));
  Buffer.add_char b '\n';
  Array.iter
    (fun (r : Runner.point_result) ->
      let over k =
        match List.assoc_opt k r.point.Sampler.overrides with
        | Some v -> cell v
        | None -> ""
      in
      Buffer.add_string b
        (String.concat ","
           ([
              string_of_int r.point.Sampler.index;
              csv_escape r.point.Sampler.label;
            ]
           @ List.map over cols
           @ [
               cell r.out_final;
               cell r.out_rms;
               (match r.nrmse with Some e -> cell e | None -> "");
               (if r.health.Health.v_healthy then "ok"
                else
                  csv_escape
                    (String.concat ";"
                       (List.map
                          (fun (i : Health.issue) ->
                            Printf.sprintf "%s@%.9g"
                              (Health.kind_label i.Health.kind)
                              i.Health.time)
                          r.health.Health.v_issues)));
               string_of_bool r.cached;
               (if timings then cell r.wall_s else "");
             ]));
      Buffer.add_char b '\n')
    s.points;
  Buffer.contents b

let write ?timings ~basename s =
  let out path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  [
    out (basename ^ ".json") (json ?timings s);
    out (basename ^ ".csv") (csv ?timings s);
  ]
