module Circuit = Amsvp_netlist.Circuit
module Acquisition = Amsvp_core.Acquisition
module Enrich = Amsvp_core.Enrich
module Eqmap = Amsvp_core.Eqmap
module Assemble = Amsvp_core.Assemble
module Solve = Amsvp_core.Solve
module Check = Amsvp_core.Check
module Sfprogram = Amsvp_sf.Sfprogram
module Compile = Amsvp_sf.Compile

type entry = { var : Expr.var; via : int; kind : [ `Cur | `Der ] }

type t = {
  key : string;
  name : string;
  dt : float;
  mode : Solve.mode;
  integration : Solve.integration;
  inputs : string list;
  outputs : Expr.var list;
  n_dipoles : int;
  topo : Eqn.t array;  (** KCL/KVL origins; index is [class_id - n_dipoles] *)
  entries : entry list;  (** dependencies first, like [Assemble.defs] *)
  template : Compile.t option;
      (** bytecode compiled once from the representative's solved
          program in [`Template] mode; {!compiled_for} re-targets it at
          each rebound point so plan replay also skips compilation *)
}

let record_plan ?(mode = `Auto) ?(integration = `Backward_euler) ~name ~dt
    circuit ~outputs =
  let inputs = Circuit.input_signals circuit in
  let acq = Acquisition.of_circuit circuit in
  let map, _stats = Enrich.enrich acq in
  (* Same pre-flight gate as [Flow.abstract_circuit]: a structurally
     unsolvable sweep model is rejected here, once, with a located
     finding — before any scenario point is expanded. *)
  Check.gate (Check.solvability map ~outputs);
  let asm = Assemble.assemble map ~inputs ~outputs in
  let n_dipoles = List.length acq.Acquisition.dipoles in
  let topo =
    Array.init
      (Eqmap.class_count map - n_dipoles)
      (fun i -> Eqmap.origin_of_class map (n_dipoles + i))
  in
  let entries =
    List.map
      (fun (d : Assemble.definition) ->
        {
          var = d.var;
          via = d.via;
          kind = (if d.integrates then `Der else `Cur);
        })
      asm.Assemble.defs
  in
  {
    key = Circuit.structure_key circuit;
    name;
    dt;
    mode;
    integration;
    inputs;
    outputs;
    n_dipoles;
    topo;
    entries;
    template = None;
  }

let key t = t.key
let definitions t = List.length t.entries

exception Replay_failed

let rebind t circuit =
  if not (String.equal (Circuit.structure_key circuit) t.key) then None
  else begin
    let dipoles = Array.of_list (Circuit.dipole_equations circuit) in
    let origin via =
      if via < t.n_dipoles then dipoles.(via) else t.topo.(via - t.n_dipoles)
    in
    let define e =
      let eqn = origin e.via in
      let pseudo =
        match e.kind with `Cur -> Eqn.Cur e.var | `Der -> Eqn.Der e.var
      in
      let rhs =
        match Eqn.solve_for pseudo eqn with
        | Some rhs -> rhs
        | None -> (
            (* Mirror of the Eqmap.add_equation special case: a
               piecewise-linear equation with a bare quantity on the
               left defines it directly. *)
            match (e.kind, eqn.Eqn.lhs) with
            | `Cur, Expr.Var v
              when v.Expr.delay = 0 && Expr.equal_var v e.var ->
                eqn.Eqn.rhs
            | _ -> raise Replay_failed)
      in
      match e.kind with
      | `Cur ->
          {
            Assemble.var = e.var;
            raw = rhs;
            via = e.via;
            integrates = false;
            deriv = None;
          }
      | `Der ->
          {
            Assemble.var = e.var;
            raw =
              Expr.(
                var (Expr.delayed e.var 1) + (var Expr.dt_param * rhs));
            via = e.via;
            integrates = true;
            deriv = Some rhs;
          }
    in
    match
      let defs = List.map define t.entries in
      let asm =
        { Assemble.defs; outputs = t.outputs; inputs = t.inputs }
      in
      Solve.solve ~mode:t.mode ~integration:t.integration ~name:t.name
        ~dt:t.dt asm
    with
    | program -> Some program
    | exception (Replay_failed | Solve.Nonlinear _ | Solve.Underdetermined _)
      ->
        None
  end

let build ?mode ?integration ~name ~dt circuit ~outputs =
  let t = record_plan ?mode ?integration ~name ~dt circuit ~outputs in
  (* Solve the representative once so the plan also carries a compiled
     template: rebound points share its schedule and registers and only
     patch the constant pool. Computed here, before any worker domain
     starts, so the cache stays immutable afterwards. *)
  let template =
    match rebind t circuit with
    | Some p -> Some (Sfprogram.compile ~mode:`Template p)
    | None -> None
  in
  { t with template }

let compiled_for t program =
  match t.template with
  | None -> None
  | Some tpl -> Sfprogram.rebind_compiled tpl program
