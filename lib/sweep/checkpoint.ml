module Json = Amsvp_util.Json
module Health = Amsvp_probe.Health

let version = 1
let kind = "amsvp-sweep-checkpoint"

(* Floats must survive the trip byte-exactly — a resumed sweep's report
   has to equal the uninterrupted one's.  %.17g round-trips every finite
   double; non-finite values use the journal's string encoding, which
   [Json.to_float] reads back. *)
let jnum v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if Float.is_nan v then "\"NaN\""
  else if v > 0.0 then "\"Infinity\""
  else "\"-Infinity\""

let jstr s = "\"" ^ Report.json_escape s ^ "\""

let digest (spec : Spec.t) ~circuit =
  Digest.to_hex (Digest.string (Spec.to_string spec ^ "\ncircuit " ^ circuit))

(* ---- point-result codec (one JSON object per line) ---- *)

let result_to_json (r : Runner.point_result) =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"index\":%d,\"label\":%s,\"overrides\":{%s}" r.point.Sampler.index
    (jstr r.point.Sampler.label)
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf "%s:%s" (jstr k) (jnum v))
          r.point.Sampler.overrides));
  add ",\"out_final\":%s,\"out_rms\":%s" (jnum r.out_final) (jnum r.out_rms);
  (match r.nrmse with Some e -> add ",\"nrmse\":%s" (jnum e) | None -> ());
  add ",\"signal\":%s,\"healthy\":%b"
    (jstr r.health.Health.v_signal)
    r.health.Health.v_healthy;
  add ",\"issues\":[%s]"
    (String.concat ","
       (List.map
          (fun (i : Health.issue) ->
            Printf.sprintf "{\"kind\":%s,\"time\":%s,\"value\":%s}"
              (jstr (Health.kind_label i.Health.kind))
              (jnum i.Health.time) (jnum i.Health.value))
          r.health.Health.v_issues));
  add ",\"cached\":%b,\"wall_s\":%s}" r.cached (jnum r.wall_s);
  Buffer.contents b

let result_of_json (j : Json.t) =
  let ( let* ) o f =
    match o with Some v -> f v | None -> Error "malformed point result"
  in
  let* index = Option.map int_of_float (Json.mem_float "index" j) in
  let* label = Json.mem_string "label" j in
  let* overrides =
    match Json.member "overrides" j with
    | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            match (acc, Json.to_float v) with
            | Some acc, Some f -> Some ((k, f) :: acc)
            | _ -> None)
          (Some []) fields
        |> Option.map List.rev
    | _ -> None
  in
  let* out_final = Json.mem_float "out_final" j in
  let* out_rms = Json.mem_float "out_rms" j in
  let nrmse = Json.mem_float "nrmse" j in
  let* signal = Json.mem_string "signal" j in
  let* healthy = Json.mem_bool "healthy" j in
  let* issues =
    List.fold_left
      (fun acc i ->
        match acc with
        | None -> None
        | Some acc -> (
            match
              ( Option.bind (Json.mem_string "kind" i) Health.kind_of_label,
                Json.mem_float "time" i,
                Json.mem_float "value" i )
            with
            | Some kind, Some time, Some value ->
                Some ({ Health.kind; time; value } :: acc)
            | _ -> None))
      (Some [])
      (Json.mem_list "issues" j)
    |> Option.map List.rev
  in
  let* cached = Json.mem_bool "cached" j in
  let* wall_s = Json.mem_float "wall_s" j in
  Ok
    {
      Runner.point = { Sampler.index; label; overrides };
      out_final;
      out_rms;
      nrmse;
      health = { Health.v_signal = signal; v_healthy = healthy; v_issues = issues };
      cached;
      wall_s;
    }

let result_of_line line =
  match Json.parse line with
  | j -> result_of_json j
  | exception Json.Parse_error (m, off) ->
      Error (Printf.sprintf "parse error at offset %d: %s" off m)

(* ---- checkpoint files ---- *)

let header_line spec ~circuit ~points =
  Printf.sprintf
    "{\"v\":%d,\"kind\":%s,\"sweep\":%s,\"circuit\":%s,\"spec_sha\":%s,\"points\":%d}"
    version (jstr kind)
    (jstr spec.Spec.name)
    (jstr circuit)
    (jstr (digest spec ~circuit))
    points

let header_matches spec ~circuit line =
  match Json.parse line with
  | j ->
      Json.mem_float "v" j = Some (float_of_int version)
      && Json.mem_string "kind" j = Some kind
      && Json.mem_string "spec_sha" j = Some (digest spec ~circuit)
  | exception Json.Parse_error _ -> false

type writer = { oc : out_channel; lock : Mutex.t }

let create ~path spec ~circuit ~points =
  let oc = open_out path in
  output_string oc (header_line spec ~circuit ~points);
  output_char oc '\n';
  flush oc;
  { oc; lock = Mutex.create () }

let append w r =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      output_string w.oc (result_to_json r);
      output_char w.oc '\n';
      (* One flush per point: a SIGKILL loses at most the line being
         written, and [load] discards a torn tail. *)
      flush w.oc)

let close w = close_out w.oc

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load ~path spec ~circuit =
  if not (Sys.file_exists path) then Ok []
  else
    match read_lines path with
    | [] -> Ok []
    | header :: rest ->
        if not (header_matches spec ~circuit header) then
          Error
            (Printf.sprintf
               "checkpoint %s does not match this sweep (stale or foreign \
                file); delete it or pick another path"
               path)
        else
          (* A kill can tear the final line mid-write: results are
             recovered up to the first malformed line, the tail is
             dropped and those points simply rerun. *)
          let rec go acc = function
            | [] -> List.rev acc
            | line :: rest when String.trim line = "" -> go acc rest
            | line :: rest -> (
                match result_of_line line with
                | Ok r -> go (r :: acc) rest
                | Error _ -> List.rev acc)
          in
          Ok (go [] rest)

let open_resume ~path spec ~circuit ~points =
  match load ~path spec ~circuit with
  | Error _ | Ok [] ->
      (* Fresh (or foreign) checkpoint: truncate and start over. *)
      ([], create ~path spec ~circuit ~points)
  | Ok completed ->
      (* Reopen in append mode and rewrite nothing: the recovered
         results stay on disk and fresh points extend the log. *)
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
      in
      (completed, { oc; lock = Mutex.create () })
