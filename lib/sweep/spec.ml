type range =
  | Grid of { lo : float; hi : float; n : int }
  | Values of float list
  | Uniform of { lo : float; hi : float }
  | Normal of { mean : float; sigma : float }

type axis = { param : string; range : range }

type corner = { corner_name : string; binds : (string * float) list }

type stimulus =
  | Square of { period : float; low : float; high : float }
  | Sine of { freq : float; amplitude : float }

type t = {
  name : string;
  circuit : string option;
  output : string option;
  stimulus : stimulus option;
  t_stop : float option;
  dt : float option;
  mode : [ `Auto | `Exact | `Relaxed ];
  integration : [ `Backward_euler | `Trapezoidal ];
  samples : int;
  seed : int;
  jobs : int option;
  reference : bool;
  fidelity : Amsvp_core.Solve.fidelity option;
      (* reference-engine cost model; [None] keeps the paper default and
         is omitted from the text form, so existing spec texts (and the
         daemon context keys / checkpoint digests derived from them)
         are unchanged *)
  nrmse_budget : float option;
  amplitude_limit : float option;
  point_timeout : float option;
  axes : axis list;
  corners : corner list;
}

let default =
  {
    name = "sweep";
    circuit = None;
    output = None;
    stimulus = None;
    t_stop = None;
    dt = None;
    mode = `Auto;
    integration = `Backward_euler;
    samples = 1;
    seed = 0;
    jobs = None;
    reference = true;
    fidelity = None;
    nrmse_budget = None;
    amplitude_limit = None;
    point_timeout = None;
    axes = [];
    corners = [];
  }

let is_random s =
  List.exists
    (fun a -> match a.range with Uniform _ | Normal _ -> true | _ -> false)
    s.axes

let grid_size s =
  List.fold_left
    (fun acc a ->
      match a.range with
      | Grid { n; _ } -> acc * n
      | Values vs -> acc * List.length vs
      | Uniform _ | Normal _ -> acc)
    1 s.axes

let point_count s =
  let per_grid = if is_random s then s.samples else 1 in
  (grid_size s * per_grid) + List.length s.corners

(* Structural diagnosis, one finding per defect so a sweep file with
   several mistakes reports them all at once. [validate] keeps the
   first-error result shape for existing callers. *)
let diagnose s =
  let module Diag = Amsvp_diag.Diag in
  let err ?subject code fmt =
    Printf.ksprintf (fun m -> Some (Diag.error ?subject code m)) fmt
  in
  let empty =
    if s.axes = [] && s.corners = [] then
      err ~subject:s.name "AMS050" "sweep spec %s has no axes and no corners"
        s.name
    else None
  in
  let counts =
    [
      (if s.samples < 1 then err "AMS051" "samples must be >= 1" else None);
      (match s.nrmse_budget with
      | Some b when not (b > 0.0) ->
          err "AMS051" "nrmse_budget must be positive"
      | Some _ | None -> None);
      (match s.amplitude_limit with
      | Some l when not (l > 0.0) ->
          err "AMS051" "amplitude_limit must be positive"
      | Some _ | None -> None);
      (match s.point_timeout with
      | Some t when not (t > 0.0) ->
          err "AMS051" "point_timeout must be positive"
      | Some _ | None -> None);
    ]
  in
  let axes =
    List.map
      (fun a ->
        match a.range with
        | Grid { n; _ } when n < 1 ->
            err ~subject:a.param "AMS051" "grid axis %s: n < 1" a.param
        | Grid { lo; hi; _ } when lo > hi ->
            err ~subject:a.param "AMS051" "grid axis %s: lo > hi" a.param
        | Values [] ->
            err ~subject:a.param "AMS051" "values axis %s is empty" a.param
        | Uniform { lo; hi } when lo > hi ->
            err ~subject:a.param "AMS051" "uniform axis %s: lo > hi" a.param
        | Normal { sigma; _ } when sigma < 0.0 ->
            err ~subject:a.param "AMS051" "normal axis %s: negative sigma"
              a.param
        | Grid _ | Values _ | Uniform _ | Normal _ -> None)
      s.axes
  in
  let duplicates =
    let rec go seen = function
      | [] -> []
      | a :: rest ->
          if List.mem a.param seen then
            err ~subject:a.param "AMS052" "duplicate axis parameter %s" a.param
            :: go seen rest
          else go (a.param :: seen) rest
    in
    go [] s.axes
  in
  let corners =
    List.map
      (fun c ->
        if c.binds = [] then
          err ~subject:c.corner_name "AMS051" "corner %s of %s has no bindings"
            c.corner_name s.name
        else None)
      s.corners
  in
  List.filter_map
    (fun x -> x)
    ((empty :: counts) @ axes @ duplicates @ corners)

let validate s =
  match diagnose s with
  | [] -> Ok ()
  | f :: _ -> Error f.Amsvp_diag.Diag.message

(* ---- text form ---- *)

let fl v = Printf.sprintf "%.17g" v

let range_to_string = function
  | Grid { lo; hi; n } -> Printf.sprintf "grid %s %s %d" (fl lo) (fl hi) n
  | Values vs -> "values " ^ String.concat " " (List.map fl vs)
  | Uniform { lo; hi } -> Printf.sprintf "uniform %s %s" (fl lo) (fl hi)
  | Normal { mean; sigma } -> Printf.sprintf "normal %s %s" (fl mean) (fl sigma)

let stimulus_to_string = function
  | Square { period; low; high } ->
      Printf.sprintf "square %s %s %s" (fl period) (fl low) (fl high)
  | Sine { freq; amplitude } ->
      Printf.sprintf "sine %s %s" (fl freq) (fl amplitude)

let mode_to_string = function
  | `Auto -> "auto"
  | `Exact -> "exact"
  | `Relaxed -> "relaxed"

let integration_to_string = function
  | `Backward_euler -> "backward-euler"
  | `Trapezoidal -> "trapezoidal"

let to_string s =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "sweep %s" s.name;
  (match s.circuit with Some c -> line "circuit %s" c | None -> ());
  (match s.output with Some o -> line "output %s" o | None -> ());
  (match s.stimulus with
  | Some st -> line "stimulus %s" (stimulus_to_string st)
  | None -> ());
  (match s.t_stop with Some v -> line "t_stop %s" (fl v) | None -> ());
  (match s.dt with Some v -> line "dt %s" (fl v) | None -> ());
  if s.mode <> default.mode then line "mode %s" (mode_to_string s.mode);
  if s.integration <> default.integration then
    line "integration %s" (integration_to_string s.integration);
  if s.samples <> default.samples then line "samples %d" s.samples;
  if s.seed <> default.seed then line "seed %d" s.seed;
  (match s.jobs with Some j -> line "jobs %d" j | None -> ());
  if s.reference <> default.reference then
    line "reference %s" (if s.reference then "on" else "off");
  (match s.fidelity with
  | Some f -> line "fidelity %s" (Amsvp_core.Solve.fidelity_to_string f)
  | None -> ());
  (match s.nrmse_budget with
  | Some v -> line "nrmse_budget %s" (fl v)
  | None -> ());
  (match s.amplitude_limit with
  | Some v -> line "amplitude_limit %s" (fl v)
  | None -> ());
  (match s.point_timeout with
  | Some v -> line "point_timeout %s" (fl v)
  | None -> ());
  List.iter
    (fun a -> line "param %s %s" a.param (range_to_string a.range))
    s.axes;
  List.iter
    (fun c ->
      line "corner %s %s" c.corner_name
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (fl v)) c.binds)))
    s.corners;
  Buffer.contents b

let pp ppf s = Format.pp_print_string ppf (to_string s)

(* Parser: one directive per line, '#' starts a comment, blank lines
   ignored. Errors carry the 1-based line number. *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let float_of tok =
  match float_of_string_opt tok with
  | Some v -> v
  | None -> failf "not a number: %S" tok

let int_of tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> failf "not an integer: %S" tok

let parse_range = function
  | "grid" :: lo :: hi :: n :: [] ->
      Grid { lo = float_of lo; hi = float_of hi; n = int_of n }
  | "values" :: (_ :: _ as vs) -> Values (List.map float_of vs)
  | "uniform" :: lo :: hi :: [] ->
      Uniform { lo = float_of lo; hi = float_of hi }
  | "normal" :: mean :: sigma :: [] ->
      Normal { mean = float_of mean; sigma = float_of sigma }
  | kind :: _ -> failf "bad range %S (grid|values|uniform|normal)" kind
  | [] -> failf "missing range"

let parse_stimulus = function
  | "square" :: period :: low :: high :: [] ->
      Square
        { period = float_of period; low = float_of low; high = float_of high }
  | "sine" :: freq :: amplitude :: [] ->
      Sine { freq = float_of freq; amplitude = float_of amplitude }
  | kind :: _ -> failf "bad stimulus %S (square|sine)" kind
  | [] -> failf "missing stimulus"

let parse_bind tok =
  match String.index_opt tok '=' with
  | Some i when i > 0 && i < String.length tok - 1 ->
      ( String.sub tok 0 i,
        float_of (String.sub tok (i + 1) (String.length tok - i - 1)) )
  | Some _ | None -> failf "bad binding %S (want dev.param=value)" tok

let parse_line spec tokens =
  match tokens with
  | [] -> spec
  | "sweep" :: name :: [] -> { spec with name }
  | "circuit" :: c :: [] -> { spec with circuit = Some c }
  | "output" :: o :: [] -> { spec with output = Some o }
  | "stimulus" :: rest -> { spec with stimulus = Some (parse_stimulus rest) }
  | "t_stop" :: v :: [] -> { spec with t_stop = Some (float_of v) }
  | "dt" :: v :: [] -> { spec with dt = Some (float_of v) }
  | "mode" :: m :: [] ->
      let mode =
        match m with
        | "auto" -> `Auto
        | "exact" -> `Exact
        | "relaxed" -> `Relaxed
        | _ -> failf "bad mode %S" m
      in
      { spec with mode }
  | "integration" :: i :: [] ->
      let integration =
        match i with
        | "backward-euler" -> `Backward_euler
        | "trapezoidal" -> `Trapezoidal
        | _ -> failf "bad integration %S" i
      in
      { spec with integration }
  | "samples" :: v :: [] -> { spec with samples = int_of v }
  | "seed" :: v :: [] -> { spec with seed = int_of v }
  | "jobs" :: v :: [] -> { spec with jobs = Some (int_of v) }
  | "reference" :: v :: [] ->
      let reference =
        match v with
        | "on" -> true
        | "off" -> false
        | _ -> failf "bad reference %S (on|off)" v
      in
      { spec with reference }
  | "fidelity" :: f :: [] -> (
      match Amsvp_core.Solve.fidelity_of_string f with
      | Ok fidelity -> { spec with fidelity = Some fidelity }
      | Error _ -> failf "bad fidelity %S (paper|fast)" f)
  | "nrmse_budget" :: v :: [] -> { spec with nrmse_budget = Some (float_of v) }
  | "amplitude_limit" :: v :: [] ->
      { spec with amplitude_limit = Some (float_of v) }
  | "point_timeout" :: v :: [] ->
      { spec with point_timeout = Some (float_of v) }
  | "param" :: param :: range ->
      { spec with axes = spec.axes @ [ { param; range = parse_range range } ] }
  | "corner" :: corner_name :: (_ :: _ as binds) ->
      {
        spec with
        corners =
          spec.corners @ [ { corner_name; binds = List.map parse_bind binds } ];
      }
  | directive :: _ -> failf "bad directive %S" directive

let of_string text =
  let strip_comment l =
    match String.index_opt l '#' with
    | Some i -> String.sub l 0 i
    | None -> l
  in
  let lines = String.split_on_char '\n' text in
  let rec go spec lineno = function
    | [] -> Ok spec
    | l :: rest -> (
        let tokens =
          strip_comment l |> String.split_on_char ' '
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun t -> t <> "")
        in
        match parse_line spec tokens with
        | spec -> go spec (lineno + 1) rest
        | exception Bad msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go default 1 lines
