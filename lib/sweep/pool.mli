(** Fixed-size domain worker pool over an indexed work list.

    [run ~jobs f items] applies [f] to every element of [items] exactly
    once and returns the results in input order.  Work is distributed
    through a shared chunked index queue ([Atomic.fetch_and_add] on a
    cursor, {!chunk} indices per claim); the calling domain participates
    as one of the [jobs] workers, so [jobs = 1] runs everything inline
    with no domain spawned.

    Each result is written to a disjoint slot of a preallocated array,
    so no synchronisation is needed on the output side.  If any [f]
    raises, the first exception (by claim order) is captured, remaining
    workers drain the queue without calling [f] again, and the exception
    is re-raised on the calling domain after all workers are joined. *)

val chunk : int
(** Indices claimed per queue operation. *)

val run : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** @raise Invalid_argument if [jobs < 1]. *)
