module Circuit = Amsvp_netlist.Circuit
module Circuits = Amsvp_netlist.Circuits
module Flow = Amsvp_core.Flow
module Check = Amsvp_core.Check
module Engine = Amsvp_mna.Engine
module Sfprogram = Amsvp_sf.Sfprogram
module Stimulus = Amsvp_util.Stimulus
module Metrics = Amsvp_util.Metrics
module Trace = Amsvp_util.Trace
module Obs = Amsvp_obs.Obs
module Journal = Amsvp_obs.Journal
module Health = Amsvp_probe.Health

type point_result = {
  point : Sampler.point;
  out_final : float;
  out_rms : float;
  nrmse : float option;
  health : Health.verdict;
  cached : bool;
  wall_s : float;
}

type summary = {
  spec : Spec.t;
  label : string;
  jobs : int;
  points : point_result array;
  nrmse_stats : Stats.t option;
  wall_stats : Stats.t option;
  rms_stats : Stats.t option;
  unhealthy : int;
  pruned : int;
  cache_hits : int;
  cache_misses : int;
  total_s : float;
}

let default_dt = 1e-6
let default_t_stop = 3e-3

let c_points =
  Obs.Counter.make ~help:"sweep points executed" "amsvp_sweep_points_total"

let c_cache_hits =
  Obs.Counter.make ~help:"sweep points served by abstraction-plan replay"
    "amsvp_sweep_cache_hits_total"

let c_cache_misses =
  Obs.Counter.make ~help:"sweep points needing a full per-point abstraction"
    "amsvp_sweep_cache_misses_total"

let c_timeouts =
  Obs.Counter.make ~help:"sweep points aborted by the per-point timeout"
    "amsvp_sweep_point_timeouts_total"

let c_pruned =
  Obs.Counter.make ~help:"sweep points skipped by the static pruner"
    "amsvp_sweep_points_pruned_total"

let h_point_seconds =
  Obs.Histogram.make ~help:"wall-clock seconds per sweep point"
    ~buckets:[| 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]
    "amsvp_sweep_point_seconds"

let output_of_string s =
  let pair body =
    match String.index_opt body ',' with
    | Some i ->
        Some
          ( String.sub body 0 i,
            String.sub body (i + 1) (String.length body - i - 1) )
    | None -> None
  in
  let n = String.length s in
  if n >= 4 && s.[1] = '(' && s.[n - 1] = ')' then
    match (s.[0], pair (String.sub s 2 (n - 3))) with
    | 'V', Some (a, b) -> Ok (Expr.potential a b)
    | 'I', Some (a, b) -> Ok (Expr.flow a b)
    | _ -> Error (Printf.sprintf "bad output %S (want V(a,b), I(a,b))" s)
  else if n > 0 then Ok (Expr.signal s)
  else Error "empty output"

let resolve (spec : Spec.t) =
  let label = Option.value spec.circuit ~default:"RECT" in
  match Circuits.by_name label with
  | Some tc -> Ok tc
  | None -> Error (Printf.sprintf "unknown circuit %S" label)

let stimulus_fn = function
  | Spec.Square { period; low; high } -> Stimulus.square ~period ~low ~high
  | Spec.Sine { freq; amplitude } -> Stimulus.sine ~freq ~amplitude ()

(* A prepared sweep: everything shared by every point — the probed
   circuit, stimuli, the recorded abstraction plan and its compiled
   bytecode template — computed once.  The one-shot [run] builds one
   and discards it; the serve daemon keeps it warm across requests and
   forked worker shards inherit it for free. *)
type ctx = {
  c_spec : Spec.t;
  c_tc : Circuits.testcase;
  c_jobs : int;
  c_output : Expr.var;
  c_dt : float;
  c_t_stop : float;
  c_probed : Circuit.t;
  c_stim_assoc : (string * Stimulus.t) list;
  c_cache : Abscache.t;
  c_points : Sampler.point array;
}

let ctx_spec c = c.c_spec
let ctx_label c = c.c_tc.Circuits.label
let ctx_jobs c = c.c_jobs
let ctx_points c = c.c_points

let prepare ?jobs (spec : Spec.t) (tc : Circuits.testcase) =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error m -> invalid_arg ("Sweep: " ^ m));
  let jobs =
    match (jobs, spec.jobs) with
    | Some j, _ -> j
    | None, Some j -> j
    | None, None -> 1
  in
  if jobs < 1 then invalid_arg "Sweep: jobs < 1";
  let output =
    match spec.output with
    | None -> tc.Circuits.output
    | Some s -> (
        match output_of_string s with
        | Ok v -> v
        | Error m -> invalid_arg ("Sweep: " ^ m))
  in
  let dt = Option.value spec.dt ~default:default_dt in
  let t_stop = Option.value spec.t_stop ~default:default_t_stop in
  let probed = Flow.insert_probes tc.Circuits.circuit ~outputs:[ output ] in
  (* Fast-fail: lint the swept model once, before any scenario point is
     expanded. Sweep points only change parameter values, so a
     structural defect (floating node, short, unsolvable output) would
     otherwise be rediscovered N times, one confusing failure per
     point. *)
  Check.gate (Circuit.diagnose probed);
  let input_names = Circuit.input_signals probed in
  let stim_of name =
    match spec.stimulus with
    | Some st -> stimulus_fn st
    | None -> (
        match List.assoc_opt name tc.Circuits.stimuli with
        | Some f -> f
        | None -> Stimulus.constant 0.0)
  in
  let stim_assoc = List.map (fun n -> (n, stim_of n)) input_names in
  (* The plan is recorded once, on this domain, before any worker
     starts: the cache is immutable afterwards, so replaying it from
     several domains (or forked worker processes) needs no
     synchronisation and every point sees the same plan no matter the
     schedule. *)
  let cache =
    Abscache.build ~mode:spec.mode ~integration:spec.integration
      ~name:(tc.Circuits.label ^ "_sweep") ~dt probed ~outputs:[ output ]
  in
  let points = Array.of_list (Sampler.points spec) in
  {
    c_spec = spec;
    c_tc = tc;
    c_jobs = jobs;
    c_output = output;
    c_dt = dt;
    c_t_stop = t_stop;
    c_probed = probed;
    c_stim_assoc = stim_assoc;
    c_cache = cache;
    c_points = points;
  }

(* Cooperative per-point timeout: the runners' [?observe] hook fires
   once per step, so a deadline check there aborts a runaway point from
   inside the loop without preemption.  The clock read is amortised
   over 64 steps — the hook itself is otherwise one branch. *)
exception Timed_out of float (* simulated seconds at abort *)

let deadline_observe ~deadline_ns =
  let k = ref 0 in
  fun time (_ : Expr.var -> float) ->
    incr k;
    if !k land 63 = 0 && Obs.now_ns () > deadline_ns then
      raise (Timed_out time)

let timeout_result ctx (p : Sampler.point) ~cached ~sim_time ~wall_s =
  Obs.Counter.incr c_timeouts;
  if Journal.enabled () then
    Journal.emit ~severity:Journal.Warn ~cat:"sweep" "point.timeout"
      [
        ("point", Journal.S p.Sampler.label);
        ("index", Journal.I p.Sampler.index);
        ("wall_s", Journal.F wall_s);
        ("sim_time", Journal.F sim_time);
      ];
  {
    point = p;
    out_final = nan;
    out_rms = nan;
    nrmse = None;
    health =
      {
        Health.v_signal = Expr.var_name ctx.c_output;
        v_healthy = false;
        v_issues =
          [ { Health.kind = Health.Timeout; time = sim_time; value = wall_s } ];
      };
    cached;
    wall_s;
  }

let pruned_result ctx (p : Sampler.point) (bad : Amsvp_analysis.Absint.bad) =
  Obs.Counter.incr c_pruned;
  let value =
    match bad.Amsvp_analysis.Absint.b_kind with
    | `Nonfinite -> nan
    | `Amplitude ->
        Option.value ctx.c_spec.Spec.amplitude_limit ~default:nan
  in
  if Journal.enabled () then
    Journal.emit ~cat:"sweep" "point.pruned"
      [
        ("point", Journal.S p.Sampler.label);
        ("index", Journal.I p.Sampler.index);
        ( "reason",
          Journal.S
            (match bad.Amsvp_analysis.Absint.b_kind with
            | `Nonfinite -> "nan"
            | `Amplitude -> "amplitude") );
        ("step", Journal.I bad.Amsvp_analysis.Absint.b_step);
        ("sim_time", Journal.F bad.Amsvp_analysis.Absint.b_time);
      ];
  {
    point = p;
    out_final = nan;
    out_rms = nan;
    nrmse = None;
    health =
      {
        Health.v_signal = Expr.var_name ctx.c_output;
        v_healthy = false;
        v_issues =
          [
            {
              Health.kind = Health.Pruned;
              time = bad.Amsvp_analysis.Absint.b_time;
              value;
            };
          ];
      };
    cached = true;
    wall_s = 0.0;
  }

(* Static screen of a prepared sweep: the absint value-range pass over
   the representative program (the probed circuit with its nominal
   parameter values). The serve daemon rejects a submit whose screen
   reports errors — guaranteed division by zero always is one; the
   possible-non-finite and amplitude-budget warnings become errors
   under [werror]. *)
let screen ?(werror = false) ctx =
  let module Diag = Amsvp_diag.Diag in
  let spec = ctx.c_spec in
  let program =
    match Abscache.rebind ctx.c_cache ctx.c_probed with
    | Some p -> Some p
    | None -> (
        match
          Flow.abstract_circuit
            ~name:(ctx.c_tc.Circuits.label ^ "_screen")
            ~mode:spec.Spec.mode ~integration:spec.Spec.integration
            ctx.c_probed ~outputs:[ ctx.c_output ] ~dt:ctx.c_dt
        with
        | rep -> Some rep.Flow.program
        | exception _ -> None)
  in
  match program with
  | None -> []
  | Some program ->
      Amsvp_analysis.Lint.absint_findings
        ?amplitude_budget:spec.Spec.amplitude_limit ~report_dead:false
        ~span_of_target:(fun _ -> None)
        program
      |> Diag.apply { Diag.werror; suppress = [] }

let prune_static ?max_steps ctx points =
  Prune.plan ~cache:ctx.c_cache ~probed:ctx.c_probed
    ~stimuli:ctx.c_stim_assoc ~t_stop:ctx.c_t_stop
    ?amplitude:ctx.c_spec.Spec.amplitude_limit ?max_steps points

let run_point ?timeout_s ctx (p : Sampler.point) =
  Obs.with_span ~cat:"sweep" ~args:[ ("point", p.Sampler.label) ] "sweep.point"
  @@ fun () ->
  let spec = ctx.c_spec in
  let timeout_s =
    match timeout_s with Some _ -> timeout_s | None -> spec.Spec.point_timeout
  in
  let t0 = Obs.now_ns () in
  let observe =
    Option.map
      (fun t -> deadline_observe ~deadline_ns:(t0 + int_of_float (t *. 1e9)))
      timeout_s
  in
  let circuit = Circuit.override ctx.c_probed p.Sampler.overrides in
  let program, cached =
    match Abscache.rebind ctx.c_cache circuit with
    | Some program ->
        Obs.Counter.incr c_cache_hits;
        (program, true)
    | None ->
        Obs.Counter.incr c_cache_misses;
        let rep =
          Flow.abstract_circuit
            ~name:(ctx.c_tc.Circuits.label ^ "_sweep")
            ~mode:spec.mode ~integration:spec.integration circuit
            ~outputs:[ ctx.c_output ] ~dt:ctx.c_dt
        in
        (rep.Flow.program, false)
  in
  match
    let runner =
      (* On a plan replay the bytecode template re-targets for free;
         cache misses (and shape drift) compile from scratch. *)
      let compiled =
        if cached then Abscache.compiled_for ctx.c_cache program else None
      in
      Sfprogram.Runner.create ?compiled program
    in
    let stimuli =
      Array.of_list
        (List.map
           (fun n -> List.assoc n ctx.c_stim_assoc)
           program.Sfprogram.inputs)
    in
    let trace =
      Sfprogram.Runner.run runner ~stimuli ~t_stop:ctx.c_t_stop ?observe ()
    in
    let reference =
      if not spec.reference then None
      else
        let fidelity =
          match spec.Spec.fidelity with Some f -> f | None -> `Paper
        in
        Some
          (Engine.spice_like ~substeps:1 ~iterations:3 ~fidelity ?observe
             circuit ~inputs:ctx.c_stim_assoc ~output:ctx.c_output ~dt:ctx.c_dt
             ~t_stop:ctx.c_t_stop)
    in
    (trace, reference)
  with
  | exception Timed_out sim_time ->
      let wall_s = float_of_int (Obs.now_ns () - t0) *. 1e-9 in
      Obs.Counter.incr c_points;
      Obs.Histogram.observe h_point_seconds wall_s;
      timeout_result ctx p ~cached ~sim_time ~wall_s
  | trace, reference ->
      let t_stop = ctx.c_t_stop in
      let values = Trace.values trace in
      let n = Array.length values in
      let out_final = if n = 0 then 0.0 else values.(n - 1) in
      let out_rms =
        if n = 0 then 0.0
        else
          sqrt
            (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 values
            /. float_of_int n)
      in
      let nrmse =
        match reference with
        | None -> None
        | Some r ->
            Some
              (Metrics.nrmse_traces ~reference:r.Engine.trace trace ~t0:0.0
                 ~dt:(t_stop /. 1000.0) ~n:999)
      in
      (* The recorded trace is replayed through a health monitor after
         the run: same verdict as a live probe would give, with zero
         cost on the stepping loop. With a reference engine on, the
         monitor also streams the NRMSE watchdog against the
         interpolated reference. *)
      let health =
        let config =
          {
            Health.default_config with
            nrmse_budget = spec.nrmse_budget;
            amplitude_limit = spec.amplitude_limit;
          }
        in
        let mon = Health.create ~config (Expr.var_name ctx.c_output) in
        let n = Trace.length trace in
        (match reference with
        | None ->
            for i = 0 to n - 1 do
              Health.observe mon ~time:(Trace.time trace i)
                (Trace.value trace i)
            done
        | Some r ->
            for i = 0 to n - 1 do
              let t = Trace.time trace i in
              Health.observe_ref mon ~time:t ~value:(Trace.value trace i)
                ~reference:(Trace.sample_at r.Engine.trace t)
            done);
        Health.verdict mon
      in
      let wall_s = float_of_int (Obs.now_ns () - t0) *. 1e-9 in
      Obs.Counter.incr c_points;
      Obs.Histogram.observe h_point_seconds wall_s;
      if Journal.enabled () then
        (* One event per dispatched point, recorded on the worker domain
           that ran it — the journal's per-domain buffers make this safe
           and the merge at collection keeps dispatch order readable. *)
        Journal.emit ~cat:"sweep" "point"
          [
            ("point", Journal.S p.Sampler.label);
            ("index", Journal.I p.Sampler.index);
            ("cached", Journal.B cached);
            ("wall_s", Journal.F wall_s);
            ("healthy", Journal.B health.Health.v_healthy);
            ("out_final", Journal.F out_final);
          ];
      { point = p; out_final; out_rms; nrmse; health; cached; wall_s }

let summarize ctx (results : point_result array) ~total_s =
  let series f =
    Stats.of_array
      (Array.of_list (List.filter_map f (Array.to_list results)))
  in
  let hits =
    Array.fold_left (fun n r -> if r.cached then n + 1 else n) 0 results
  in
  {
    spec = ctx.c_spec;
    label = ctx.c_tc.Circuits.label;
    jobs = ctx.c_jobs;
    points = results;
    nrmse_stats = series (fun r -> r.nrmse);
    wall_stats = series (fun r -> Some r.wall_s);
    rms_stats = series (fun r -> Some r.out_rms);
    unhealthy =
      Array.fold_left
        (fun n r -> if r.health.Health.v_healthy then n else n + 1)
        0 results;
    pruned =
      Array.fold_left
        (fun n r ->
          if
            List.exists
              (fun (i : Health.issue) -> i.Health.kind = Health.Pruned)
              r.health.Health.v_issues
          then n + 1
          else n)
        0 results;
    cache_hits = hits;
    cache_misses = Array.length results - hits;
    total_s;
  }

let run ?jobs ?timeout_s ?(prune = false) ?on_point ?(completed = [])
    (spec : Spec.t) (tc : Circuits.testcase) =
  let ctx = prepare ?jobs spec tc in
  let total = Array.length ctx.c_points in
  (* Checkpointed results replace execution for their points: the merge
     below reassembles expansion order, so a resumed sweep reports
     exactly as an uninterrupted one (modulo wall clocks). *)
  let prior : (int, point_result) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : point_result) ->
      let i = r.point.Sampler.index in
      if i < 0 || i >= total then
        invalid_arg
          (Printf.sprintf "Sweep: completed point index %d outside 0..%d" i
             (total - 1));
      Hashtbl.replace prior i r)
    completed;
  let pending =
    Array.of_list
      (List.filter
         (fun (p : Sampler.point) -> not (Hashtbl.mem prior p.Sampler.index))
         (Array.to_list ctx.c_points))
  in
  (* Pre-flight static pruning: points the abstract interpreter proves
     unhealthy are answered without simulation (their [Pruned] results
     go through [on_point] like any other, so checkpoints and service
     streams see them) and removed from the dispatch set. *)
  let pending =
    if not prune then pending
    else begin
      let decisions = prune_static ctx pending in
      let skip = Hashtbl.create 16 in
      List.iter
        (fun (d : Prune.decision) ->
          let r = pruned_result ctx d.Prune.d_point d.Prune.d_bad in
          Hashtbl.replace skip d.Prune.d_point.Sampler.index ();
          Hashtbl.replace prior r.point.Sampler.index r;
          match on_point with Some f -> f r | None -> ())
        decisions;
      Array.of_list
        (List.filter
           (fun (p : Sampler.point) -> not (Hashtbl.mem skip p.Sampler.index))
           (Array.to_list pending))
    end
  in
  let exec p =
    let r = run_point ?timeout_s ctx p in
    (match on_point with Some f -> f r | None -> ());
    r
  in
  let t0 = Obs.now_ns () in
  let fresh = Pool.run ~jobs:ctx.c_jobs exec pending in
  let total_s = float_of_int (Obs.now_ns () - t0) *. 1e-9 in
  let merged =
    if Hashtbl.length prior = 0 then fresh
    else begin
      Array.iter (fun r -> Hashtbl.replace prior r.point.Sampler.index r) fresh;
      Array.map
        (fun (p : Sampler.point) -> Hashtbl.find prior p.Sampler.index)
        ctx.c_points
    end
  in
  summarize ctx merged ~total_s
