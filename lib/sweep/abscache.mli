(** Structure-keyed abstraction cache for parameter sweeps.

    Sweep points share one circuit structure and differ only in
    parameter values, so most of the Fig.-4 flow is redundant work: the
    topology (KCL/KVL) equations are value-free, and the assembler's
    choice of which equation class defines which quantity depends only
    on the sparsity pattern, not on the coefficients.

    [build] runs acquisition → enrichment → assemble once on a
    representative circuit and records the {e plan}: for every defined
    quantity, the id of the consumed equation class and whether it was
    defined through its own derivative.  [rebind] then replays the plan
    on a same-structure circuit with different values — recomputing
    only the (cheap) dipole equations, re-solving each recorded class
    for its recorded pseudo-variable and running the numeric Solve step
    — skipping enrichment and the backtracking assembler entirely.

    The replay relies on two invariants of the flow: {!Eqmap} class ids
    are sequential insertion indices, and {!Enrich} inserts the dipole
    classes first (in netlist order) followed by the Kirchhoff classes.
    When a recorded rearrangement is no longer possible (a coefficient
    vanished under the new values), [rebind] returns [None] and the
    caller falls back to the full per-point abstraction. *)

type t

val build :
  ?mode:Amsvp_core.Solve.mode ->
  ?integration:Amsvp_core.Solve.integration ->
  name:string ->
  dt:float ->
  Amsvp_netlist.Circuit.t ->
  outputs:Expr.var list ->
  t
(** Record the plan from a representative circuit.  The circuit must
    already carry its probes ({!Flow.insert_probes}) so that the sweep
    overrides and the replay see the same structure.
    @raise Invalid_argument, Assemble.No_definition, etc. as
    {!Flow.abstract_circuit} does. *)

val key : t -> string
(** The {!Amsvp_netlist.Circuit.structure_key} the plan was built
    from. *)

val definitions : t -> int
(** Number of recorded definitions (the cone of influence size). *)

val rebind : t -> Amsvp_netlist.Circuit.t -> Amsvp_sf.Sfprogram.t option
(** Replay the plan on a same-structure circuit.  [None] when the
    structure key differs, a recorded rearrangement fails under the new
    values, or the numeric solve rejects the rebound system — in every
    case the caller should run the full abstraction instead. *)

val compiled_for : t -> Amsvp_sf.Sfprogram.t -> Amsvp_sf.Compile.t option
(** Re-target the plan's bytecode template (compiled once, at {!build}
    time, from the solved representative) at a program returned by
    {!rebind}: same schedule and register allocation, new constant
    pool.  [None] when the solver produced a structurally different
    program at this point (or the representative itself would not
    solve) — the runner then compiles that program from scratch. *)
