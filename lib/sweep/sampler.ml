module Rng = Amsvp_util.Rng

type point = {
  index : int;
  label : string;
  overrides : (string * float) list;
}

let grid_values lo hi n =
  if n = 1 then [ lo ]
  else
    List.init n (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

(* Fixed value list of a deterministic axis, [None] for Monte Carlo. *)
let fixed_values a =
  match a.Spec.range with
  | Spec.Grid { lo; hi; n } -> Some (grid_values lo hi n)
  | Spec.Values vs -> Some vs
  | Spec.Uniform _ | Spec.Normal _ -> None

(* Cartesian product over the deterministic axes, first axis slowest.
   Each combo maps an axis position to its fixed value; Monte Carlo
   positions are absent and filled per point. *)
let combos axes =
  let rec go pos = function
    | [] -> [ [] ]
    | a :: rest ->
        let tails = go (pos + 1) rest in
        (match fixed_values a with
        | None -> tails
        | Some vs ->
            List.concat_map
              (fun v -> List.map (fun tl -> (pos, v) :: tl) tails)
              vs)
  in
  go 0 axes

let points (spec : Spec.t) =
  let axes = Array.of_list spec.axes in
  let draws = if Spec.is_random spec then spec.samples else 1 in
  let acc = ref [] in
  let counter = ref 0 in
  let emit label overrides =
    let index = !counter in
    incr counter;
    acc := { index; label; overrides } :: !acc
  in
  List.iter
    (fun combo ->
      for _ = 1 to draws do
        let index = !counter in
        let rng = Rng.derive spec.seed ~stream:index in
        let overrides =
          Array.to_list
            (Array.mapi
               (fun pos a ->
                 let v =
                   match List.assoc_opt pos combo with
                   | Some v -> v
                   | None -> (
                       match a.Spec.range with
                       | Spec.Uniform { lo; hi } -> Rng.uniform rng ~lo ~hi
                       | Spec.Normal { mean; sigma } ->
                           Rng.normal rng ~mean ~sigma
                       | Spec.Grid _ | Spec.Values _ -> assert false)
                 in
                 (a.Spec.param, v))
               axes)
        in
        emit (Printf.sprintf "p%04d" index) overrides
      done)
    (combos spec.axes);
  List.iter (fun (c : Spec.corner) -> emit c.corner_name c.binds) spec.corners;
  List.rev !acc

let pp_point ppf p =
  Format.fprintf ppf "%s:%s" p.label
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s=%.6g" k v) p.overrides))
