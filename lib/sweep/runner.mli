(** Sweep execution: expand a spec, run every point, aggregate.

    Each point applies its parameter overrides to the (probe-carrying)
    circuit, obtains a signal-flow program — through the {!Abscache}
    replay when possible, the full {!Flow.abstract_circuit} otherwise —
    simulates it with the tight-loop runner, and optionally runs the
    Newton-based MNA reference to report the NRMSE, as in the paper's
    Tables I–III but over a population of parameter variations.

    Points are executed by a {!Pool} of worker domains.  All inputs to
    a point (its overrides, the shared plan, the stimuli) are computed
    upfront on the calling domain, so the per-point value results are a
    pure function of the spec: identical for any [jobs]. *)

type point_result = {
  point : Sampler.point;
  out_final : float;  (** output value at [t_stop] *)
  out_rms : float;  (** RMS of the output trace *)
  nrmse : float option;  (** vs the MNA reference; [None] when off *)
  health : Amsvp_probe.Health.verdict;
      (** per-point watchdog verdict over the output trace: NaN/Inf,
          amplitude and stuck-at detection always run; the NRMSE-budget
          watchdog additionally runs when the spec enables the reference
          and sets [nrmse_budget].  A single bad Monte-Carlo point is
          identifiable from the report without rerunning. *)
  cached : bool;  (** program obtained by cache replay *)
  wall_s : float;  (** wall-clock seconds for this point *)
}

type summary = {
  spec : Spec.t;
  label : string;  (** circuit label *)
  jobs : int;
  points : point_result array;  (** in expansion order *)
  nrmse_stats : Stats.t option;
  wall_stats : Stats.t option;
  rms_stats : Stats.t option;
  unhealthy : int;  (** points whose health verdict flagged an issue *)
  cache_hits : int;
  cache_misses : int;
  total_s : float;  (** wall-clock seconds for the whole sweep *)
}

val default_dt : float
val default_t_stop : float

val output_of_string : string -> (Expr.var, string) result
(** Parse ["V(a,b)"] / ["I(a,b)"] / a bare signal name. *)

val resolve : Spec.t -> (Amsvp_netlist.Circuits.testcase, string) result
(** The built-in test case named by the spec ([circuit] directive,
    default ["RECT"]). *)

val run :
  ?jobs:int -> Spec.t -> Amsvp_netlist.Circuits.testcase -> summary
(** Execute the sweep over the given test case.  [jobs] defaults to the
    spec's [jobs] directive, then to 1.
    @raise Invalid_argument on an invalid spec or output. *)
