(** Sweep execution: expand a spec, run every point, aggregate.

    Each point applies its parameter overrides to the (probe-carrying)
    circuit, obtains a signal-flow program — through the {!Abscache}
    replay when possible, the full {!Flow.abstract_circuit} otherwise —
    simulates it with the tight-loop runner, and optionally runs the
    Newton-based MNA reference to report the NRMSE, as in the paper's
    Tables I–III but over a population of parameter variations.

    Points are executed by a {!Pool} of worker domains.  All inputs to
    a point (its overrides, the shared plan, the stimuli) are computed
    upfront on the calling domain, so the per-point value results are a
    pure function of the spec: identical for any [jobs].

    The per-point machinery is also exposed piecewise — {!prepare} once,
    {!run_point} many — so a long-running service can keep the prepared
    sweep (probed circuit, recorded plan, compiled bytecode template)
    warm across requests and dispatch points from its own scheduler. *)

type point_result = {
  point : Sampler.point;
  out_final : float;  (** output value at [t_stop] *)
  out_rms : float;  (** RMS of the output trace *)
  nrmse : float option;  (** vs the MNA reference; [None] when off *)
  health : Amsvp_probe.Health.verdict;
      (** per-point watchdog verdict over the output trace: NaN/Inf,
          amplitude and stuck-at detection always run; the NRMSE-budget
          watchdog additionally runs when the spec enables the reference
          and sets [nrmse_budget].  A single bad Monte-Carlo point is
          identifiable from the report without rerunning.  A point
          aborted by the wall-clock budget carries a single [Timeout]
          issue (and NaN values) instead. *)
  cached : bool;  (** program obtained by cache replay *)
  wall_s : float;  (** wall-clock seconds for this point *)
}

type summary = {
  spec : Spec.t;
  label : string;  (** circuit label *)
  jobs : int;
  points : point_result array;  (** in expansion order *)
  nrmse_stats : Stats.t option;
  wall_stats : Stats.t option;
  rms_stats : Stats.t option;
  unhealthy : int;  (** points whose health verdict flagged an issue *)
  pruned : int;
      (** points skipped by the static pruner (a subset of [unhealthy]:
          each carries a single [Pruned] issue) *)
  cache_hits : int;
  cache_misses : int;
  total_s : float;  (** wall-clock seconds for the whole sweep *)
}

val default_dt : float
val default_t_stop : float

val output_of_string : string -> (Expr.var, string) result
(** Parse ["V(a,b)"] / ["I(a,b)"] / a bare signal name. *)

val resolve : Spec.t -> (Amsvp_netlist.Circuits.testcase, string) result
(** The built-in test case named by the spec ([circuit] directive,
    default ["RECT"]). *)

(** {1 Prepared sweeps} *)

type ctx
(** A validated, fully prepared sweep over one test case: the probed
    circuit, resolved stimuli, the recorded abstraction plan with its
    compiled bytecode template, and the materialised point list.
    Immutable once built — safe to share across domains and inherited
    for free by forked worker processes. *)

val prepare : ?jobs:int -> Spec.t -> Amsvp_netlist.Circuits.testcase -> ctx
(** Validate the spec, lint the circuit once, record the abstraction
    plan and expand the scenario points.  [jobs] defaults to the spec's
    [jobs] directive, then to 1.
    @raise Invalid_argument on an invalid spec or output, and whatever
    the circuit lint gate raises on a structurally broken circuit. *)

val ctx_spec : ctx -> Spec.t
val ctx_label : ctx -> string
val ctx_jobs : ctx -> int

val ctx_points : ctx -> Sampler.point array
(** Points in expansion order; [point.index] is the slot in this
    array. *)

val screen : ?werror:bool -> ctx -> Amsvp_diag.Diag.finding list
(** Value-range screen of the prepared sweep's representative program
    ({!Amsvp_analysis.Lint.absint_findings} with the spec's
    [amplitude_limit] as the AMS063 budget), sorted and upgraded by
    [Diag.apply { werror; suppress = [] }].  The serve daemon rejects
    a submit whose screen contains errors. *)

val prune_static :
  ?max_steps:int -> ctx -> Sampler.point array -> Prune.decision list
(** Run the {!Prune} pre-flight over the given points (normally a
    subset of {!ctx_points}): the abstract interpreter proves
    sub-regions of parameter space unhealthy against the spec's
    [amplitude_limit] and the structural non-finite hazard.  Returns
    the provably-unhealthy points; the caller decides whether to skip
    them ({!run} with [~prune:true] does). *)

val pruned_result :
  ctx -> Sampler.point -> Amsvp_analysis.Absint.bad -> point_result
(** The result recorded for a statically pruned point: NaN values, a
    single [Pruned] health issue timed at the first provably-bad step,
    zero wall clock.  Journals a [point.pruned] event. *)

val run_point : ?timeout_s:float -> ctx -> Sampler.point -> point_result
(** Execute one point.  [timeout_s] (defaulting to the spec's
    [point_timeout]) bounds the point's wall clock: the simulation
    loops are aborted cooperatively once it expires and the result
    carries a [Timeout] health issue with NaN values instead of
    stalling the caller. *)

val summarize : ctx -> point_result array -> total_s:float -> summary
(** Aggregate per-point results (expected in expansion order) into the
    report-ready summary. *)

val run :
  ?jobs:int ->
  ?timeout_s:float ->
  ?prune:bool ->
  ?on_point:(point_result -> unit) ->
  ?completed:point_result list ->
  Spec.t ->
  Amsvp_netlist.Circuits.testcase ->
  summary
(** Execute the sweep over the given test case: {!prepare}, a {!Pool}
    dispatch of {!run_point} over every pending point, {!summarize}.

    [prune] (default false) runs {!prune_static} first: provably
    unhealthy points are answered with {!pruned_result} instead of
    being simulated, leaving every surviving point's result untouched
    (the proof is a MUST analysis, so nothing healthy is ever
    skipped).  [completed] injects results recovered from a
    checkpoint: their points are skipped and the recovered results
    merged back in expansion order, so a resumed sweep summarises
    exactly like an uninterrupted one (wall clocks aside).  [on_point]
    is invoked once per freshly executed (or pruned) point as it
    finishes — on the worker domain that ran it, so the callback must
    be domain-safe; checkpoint appends and service streaming hang off
    it.
    @raise Invalid_argument on an invalid spec or output, or on a
    [completed] point index outside the expansion. *)
