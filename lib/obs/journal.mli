(** Structured run journal: a bounded, domain-safe buffer of typed
    events, the third leg of the observability layer next to spans
    (wall-clock intervals) and metrics (monotone aggregates).

    A journal {e event} records something the solver decided or
    observed — a Newton convergence record, a near-singular pivot, a
    sweep point dispatched, a watchdog firing — with enough structure
    (category, severity, step, simulated time, typed payload) that a
    report tool can aggregate it without scraping logs.

    Cost model, mirroring {!Obs}:

    - Disabled (the default), {!emit} is one atomic load and a branch;
      no payload should even be built (guard call sites with
      {!enabled} when assembling the payload costs anything).
    - Enabled, an event is one atomic fetch-and-add (the global
      sequence number) plus stores into a {e domain-local} buffer
      under that buffer's own mutex — only ever contended against a
      concurrent {!events}/{!reset}, so worker domains never slow each
      other down.

    Each domain journals into its own bounded buffer (a ring keeping
    the most recent [capacity] events; overwritten events are counted
    in {!dropped}). Buffers register themselves in a global table on
    first use and survive domain termination, so {!events} — typically
    called after a {!Amsvp_sweep} pool join — merges every domain's
    buffer. The merge is deterministic: events are ordered by wall
    clock with [(origin, seq)] breaking ties, a total order that is
    stable across processes and consistent with each process's own
    program order. *)

(** {1 Enable flag and bounds} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
val enable : unit -> unit
val disable : unit -> unit

val capacity : unit -> int

val set_capacity : int -> unit
(** Per-domain ring size (default 65536). Applies to buffers created
    after the call; raise it before enabling on a long run.
    @raise Invalid_argument on a non-positive capacity. *)

(** {1 Events} *)

type severity = Debug | Info | Warn | Error

val severity_label : severity -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

(** Typed payload values, so the JSONL sink needs no stringly-typed
    round-trip and floats keep full precision. *)
type value = F of float | I of int | S of string | B of bool

type event = {
  seq : int;  (** sequence number, global within the emitting process *)
  origin : string;
      (** emitting process tag (see {!set_origin}); [""] for the
          anonymous single-process default *)
  dom : int;  (** recording domain ([Domain.self] as an int) *)
  cat : string;  (** subsystem: ["mna"], ["sf"], ["sweep"], ["health"]... *)
  name : string;  (** event kind within the category, e.g. ["newton.step"] *)
  severity : severity;
  step : int;  (** solver/reporting step, [-1] when not applicable *)
  time : float;  (** simulated seconds, [nan] when not applicable *)
  wall_ns : int;  (** {!Obs.now_ns} at record time *)
  payload : (string * value) list;
}

val emit :
  ?severity:severity ->
  ?step:int ->
  ?time:float ->
  cat:string ->
  string ->
  (string * value) list ->
  unit
(** [emit ~cat name payload] records one event (no-op when disabled).
    Defaults: [severity = Info], [step = -1], [time = nan]. *)

(** {1 Reading back} *)

val count : unit -> int
(** Events currently buffered, across every domain. *)

val dropped : unit -> int
(** Events overwritten because a domain's ring was full. *)

val events : unit -> event list
(** Every buffered event from every domain that has journaled —
    including events {!ingest}ed from other processes — merged into
    one deterministic order: [wall_ns] first, ties broken by
    [(origin, seq)]. Within a single origin this is consistent with
    program order (both keys are nondecreasing per process), and the
    tie-break makes the merge independent of arrival order. Safe to
    call while other domains are still emitting (a consistent
    snapshot per buffer). *)

(** {1 Cross-process telemetry}

    A forked worker journals into its own copy of these buffers; the
    serve layer drains them with {!events_after}, ships them over the
    worker pipe, and the parent {!ingest}s them so {!events} and the
    sink see one whole-service journal. *)

val set_origin : string -> unit
(** Tag every event this process emits from now on. The daemon sets
    ["daemon"]; each point-worker sets ["w<slot>:<pid>"] right after
    the fork. Default [""]. *)

val origin : unit -> string

val next_seq : unit -> int
(** The sequence number the next {!emit} will take — a drain
    watermark: record it, run work, then ship {!events_after} it. *)

val events_after : int -> event list
(** [events_after n]: this process's own events (origin equal to
    {!origin}, so inherited or ingested foreign events are never
    re-shipped) with [seq >= n], in seq order. *)

val ingest : event list -> unit
(** Push events received from another process into a dedicated
    foreign ring (so a burst cannot evict local events), preserving
    their [seq]/[origin]/[dom]. No-op when disabled. Overflow counts
    toward {!dropped}. *)

val reset : unit -> unit
(** Clear all buffers and the dropped counter (the enable flag and
    capacity are untouched). The global sequence keeps counting, so
    events recorded after a reset still sort after everything that
    came before. *)

(** {1 JSONL sink} *)

val event_to_json : event -> string
(** One event as a single-line JSON object:
    [{"seq":..,"dom":..,"cat":..,"name":..,"sev":..,"origin":..,
      "step":..,"time":..,"wall_ns":..,"data":{...}}]. [origin] is
    omitted when [""] (so single-process output is unchanged), [step]
    when [-1], [time] when not finite. *)

val to_jsonl : unit -> string
(** Every event of {!events}, one JSON object per line. *)

val write_jsonl : string -> unit
(** [write_jsonl path] dumps {!to_jsonl} to [path]. *)

(** {1 Incremental sink}

    {!write_jsonl} rewrites everything still buffered — right for a
    one-shot CLI run dumping at exit, wrong for a daemon: it never
    exits, and the bounded rings overwrite old events long before any
    [at_exit] dump. A daemon {!attach_sink}s once and calls {!flush}
    at natural barriers (end of request, end of point batch); each
    flush appends only events newer than the previous one. *)

val attach_sink : ?max_bytes:int -> ?keep:int -> string -> unit
(** [attach_sink path] directs {!flush} to append to [path] (truncated
    on attach — a previous run's log is not silently extended). When
    [max_bytes] is given, a flush that leaves the file at or past the
    limit rotates: [path] becomes [path.1], [path.1] becomes [path.2],
    ... keeping [keep] (default 3) rotated files; the oldest is
    dropped.
    @raise Invalid_argument on a non-positive [max_bytes] or negative
    [keep]. *)

val flush : unit -> unit
(** Append every event not yet written to the attached sink, then
    rotate if over the size limit. No-op without a sink. Serialised
    internally — callable from any domain. *)

val detach_sink : unit -> unit
(** Final {!flush}, then forget the sink. *)
