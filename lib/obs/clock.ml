(* CLOCK_MONOTONIC via the bechamel stub, rebased to the first read.
   The origin is installed with a CAS so concurrent first reads from
   several domains agree on a single rebasing point. *)

let origin = Atomic.make Int64.min_int

let now_ns () =
  let t = Monotonic_clock.now () in
  if Atomic.get origin = Int64.min_int then
    ignore (Atomic.compare_and_set origin Int64.min_int t);
  Int64.to_int (Int64.sub t (Atomic.get origin))
