(* CLOCK_MONOTONIC via the bechamel stub, rebased to the first read. *)

let origin = ref Int64.min_int

let now_ns () =
  let t = Monotonic_clock.now () in
  if !origin = Int64.min_int then origin := t;
  Int64.to_int (Int64.sub t !origin)
