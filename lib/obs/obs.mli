(** Structured instrumentation: spans, counters, gauges, histograms.

    Two halves, with different cost models:

    - {b Spans} — nested wall-clock intervals on the monotonic clock,
      recorded into a global in-memory buffer. Gated by a single enable
      flag: when the recorder is off, {!with_span} costs one branch and
      performs no clock read or allocation.
    - {b Metrics} — a process-wide registry of named counters, gauges
      and fixed-bucket histograms. Always live; an increment is a
      single unboxed field update, the same cost as the ad-hoc [ref]
      counters it replaces, so hot loops need no gating.

    Three sinks export the recorded data: {!chrome_trace} (trace-event
    JSON loadable in Perfetto / chrome://tracing), {!prometheus}
    (text exposition format) and {!summary} (human-readable).

    Every operation is safe under concurrent use from several OCaml 5
    domains: metric updates are single atomic read-modify-writes, span
    completion takes a short lock, and span nesting depth is tracked
    per domain (spans from different domains never nest into each
    other). *)

(** {1 Enable flag} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
val enable : unit -> unit
val disable : unit -> unit

val now_ns : unit -> int
(** Monotonic nanoseconds since the first clock read (see {!Clock}). *)

(** {1 Spans} *)

type span = {
  name : string;
  cat : string;  (** Chrome trace-event category ("" shows as "amsvp") *)
  start_ns : int;
  dur_ns : int;  (** 0 for instant events *)
  depth : int;  (** nesting depth at entry, outermost = 0 *)
  dom : int;
      (** id of the domain that recorded the span ([Domain.self] as an
          int). [depth] is only meaningful between spans with the same
          [dom]; the Chrome sink maps [dom] to the trace [tid] so each
          worker domain gets its own row. *)
  proc : string;
      (** [""] for spans recorded in this process; spans received from
          another process via {!ingest_spans} carry that process's
          origin tag and get their own [pid] track in the Chrome
          sink. *)
  args : (string * string) list;
}

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span. When the recorder is
    disabled this is just [f ()]. The span is recorded on completion,
    including exceptional exit (the exception is re-raised). *)

val timed : ?cat:string -> string -> (unit -> 'a) -> 'a * float
(** [timed name f] is [with_span name f] that {e always} measures and
    returns the elapsed seconds — even when the recorder is off — so
    callers can populate reports from one code path. The span event
    itself is only recorded when enabled. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record a zero-duration event (no-op when disabled). *)

val span_count : unit -> int

val spans : unit -> span list
(** Completed spans, in completion order (a nested span precedes its
    parent). *)

val spans_from : int -> span list
(** [spans_from n]: spans recorded at buffer index [n] and later — a
    drain watermark for cross-process shipping: record {!span_count},
    run work, ship [spans_from] it. *)

val ingest_spans : proc:string -> span list -> unit
(** Push spans received from another process into the buffer (no-op
    when the recorder is disabled). Spans whose [proc] is [""] are
    stamped with [proc]. *)

(** {1 Metrics registry}

    Metrics are registered process-wide by series — name plus labels:
    [make] returns the existing instance when called twice with the
    same name and labels, and raises [Invalid_argument] if that series
    is already bound to a different metric kind. Two label sets of one
    name are distinct series of one metric family, Prometheus-style.

    [labels] are emitted by the {!prometheus} sink as
    [name{key="value"}]; values may contain any bytes — backslash,
    double quote and newline are escaped per the exposition format.
    Label {e keys} must be valid Prometheus label names; they are
    emitted as given. *)

module Counter : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  val incr : t -> unit

  val add : t -> int -> unit
  (** @raise Invalid_argument on a negative increment. *)

  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  val set : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  val make :
    ?help:string ->
    ?labels:(string * string) list ->
    ?buckets:float array ->
    string ->
    t
  (** [buckets] are ascending upper bounds (["le"] semantics, an
      implicit [+Inf] bucket is always appended). The default covers
      1 .. 10^6 in 1-2-5 steps.

      Boundary semantics: each bound is an {e inclusive} upper edge,
      Prometheus "less-or-equal" style. A value [v] lands in the first
      bucket whose bound [b] satisfies [v <= b]; in particular a value
      {e exactly equal} to a bound is counted in that bound's bucket,
      not the next one. Equivalently, bucket [i] covers the half-open
      interval (bounds[i-1], bounds[i]] — exclusive on the left,
      inclusive on the right — with bucket 0 covering (-inf, bounds[0]]
      and the implicit overflow bucket (bounds[n-1], +inf). NaN
      observations fall into the overflow bucket (every comparison with
      a bound is false) and still count towards [count] and [sum].
      @raise Invalid_argument if [buckets] is empty or not strictly
      ascending. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val bucket_counts : t -> (float * int) list
  (** Cumulative counts per upper bound, Prometheus-style; the final
      entry is [(infinity, count)]. *)

  val name : t -> string
end

val counter_values : unit -> (string * (string * string) list * int) list
(** Every registered counter as [(name, labels, value)], in
    registration order — snapshot basis for shipping counter deltas
    across processes. *)

val reset : unit -> unit
(** Clear all recorded spans and zero every registered metric (the
    registrations themselves persist). Does not change the enable
    flag. *)

(** {1 Sinks} *)

val chrome_trace : unit -> string
(** The recorded spans as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}]), timestamps in microseconds. Spans of
    this process render under pid 1 ("amsvp"); spans ingested from
    other processes get one pid (and a [process_name] metadata record
    naming their origin) per distinct [proc], so daemon and worker
    activity appear as separate tracks. Open in Perfetto
    ({:https://ui.perfetto.dev}) or chrome://tracing. *)

val prometheus : unit -> string
(** Every registered metric in the Prometheus text exposition format,
    followed by per-span-name aggregates
    ([amsvp_span_<name>_calls_total] / [..._seconds_total]). *)

val summary : unit -> string
(** Human-readable dump: span aggregates (calls, total, mean), then
    counters, gauges and histograms. *)

val write_file : string -> string -> unit
(** [write_file path contents] — tiny helper shared by the CLI sinks. *)
