(* Span recorder + metrics registry + sinks. See obs.mli for the cost
   model: spans are gated by [on], metrics are always live.

   Domain safety: the sweep engine runs flows on a pool of OCaml 5
   domains, so every mutable cell here must tolerate concurrent use.
   Metrics are plain [Atomic.t] cells (an increment stays a single
   atomic RMW — no locks on the hot path); the span buffer is guarded
   by a mutex taken only when a span {e completes} (spans are orders of
   magnitude rarer than metric increments); span nesting depth is
   domain-local state, since interleaving unrelated domains' depths
   would be meaningless. *)

type span = {
  name : string;
  cat : string;
  start_ns : int;
  dur_ns : int;
  depth : int;
  dom : int;
  proc : string;  (* "" = recorded in this process; else the origin tag *)
  args : (string * string) list;
}

(* ---- enable flag ---- *)

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let now_ns = Clock.now_ns

(* ---- span storage: a growable buffer of completed spans ---- *)

let dummy_span =
  { name = ""; cat = ""; start_ns = 0; dur_ns = 0; depth = 0; dom = 0;
    proc = ""; args = [] }

let self_dom () = (Domain.self () :> int)

let buf_mutex = Mutex.create ()
let buf = ref (Array.make 1024 dummy_span)
let len = ref 0

(* Nesting depth is tracked per domain: spans opened on one domain are
   unrelated to spans running concurrently on another. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)
let depth () = Domain.DLS.get depth_key

let locked f =
  Mutex.lock buf_mutex;
  match f () with
  | y ->
      Mutex.unlock buf_mutex;
      y
  | exception e ->
      Mutex.unlock buf_mutex;
      raise e

let push s =
  locked (fun () ->
      if !len = Array.length !buf then begin
        let bigger = Array.make (2 * !len) dummy_span in
        Array.blit !buf 0 bigger 0 !len;
        buf := bigger
      end;
      !buf.(!len) <- s;
      incr len)

let span_count () = locked (fun () -> !len)
let spans () = locked (fun () -> Array.to_list (Array.sub !buf 0 !len))

let spans_from n =
  locked (fun () ->
      if n >= !len then []
      else Array.to_list (Array.sub !buf n (!len - n)))

let ingest_spans ~proc spans =
  if Atomic.get on then
    List.iter
      (fun s -> push (if s.proc = "" then { s with proc } else s))
      spans

(* A consistent snapshot for the sinks (they iterate while other
   domains may still be recording). *)
let span_snapshot () = locked (fun () -> Array.sub !buf 0 !len)

let close ~cat ~args name t0 =
  let t1 = now_ns () in
  let d = depth () in
  decr d;
  push
    {
      name;
      cat;
      start_ns = t0;
      dur_ns = t1 - t0;
      depth = !d;
      dom = self_dom ();
      proc = "";
      args;
    }

let with_span ?(cat = "") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    incr (depth ());
    let t0 = now_ns () in
    match f () with
    | y ->
        close ~cat ~args name t0;
        y
    | exception e ->
        close ~cat ~args name t0;
        raise e
  end

let timed ?(cat = "") name f =
  let recording = Atomic.get on in
  if recording then incr (depth ());
  let t0 = now_ns () in
  match f () with
  | y ->
      let t1 = now_ns () in
      if recording then begin
        let d = depth () in
        decr d;
        push
          {
            name;
            cat;
            start_ns = t0;
            dur_ns = t1 - t0;
            depth = !d;
            dom = self_dom ();
            proc = "";
            args = [];
          }
      end;
      (y, float_of_int (t1 - t0) *. 1e-9)
  | exception e ->
      if recording then begin
        let d = depth () in
        decr d;
        push
          {
            name;
            cat;
            start_ns = t0;
            dur_ns = now_ns () - t0;
            depth = !d;
            dom = self_dom ();
            proc = "";
            args = [];
          }
      end;
      raise e

let instant ?(cat = "") ?(args = []) name =
  if Atomic.get on then
    push
      {
        name;
        cat;
        start_ns = now_ns ();
        dur_ns = 0;
        depth = !(depth ());
        dom = self_dom ();
        proc = "";
        args;
      }

(* ---- metrics registry ---- *)

type counter = {
  c_name : string;
  c_help : string;
  c_labels : (string * string) list;
  c_value : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_help : string;
  g_labels : (string * string) list;
  g_value : float Atomic.t;
}

type histogram = {
  h_name : string;
  h_help : string;
  h_labels : (string * string) list;
  bounds : float array;  (* ascending upper bounds; +Inf is implicit *)
  counts : int Atomic.t array;  (* length = Array.length bounds + 1 *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

(* Lock-free accumulation for the float sum: CAS on the boxed value we
   read, retrying on contention. *)
let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let reg_mutex = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_order : string list ref = ref [] (* reverse registration order *)

let reg_locked f =
  Mutex.lock reg_mutex;
  match f () with
  | y ->
      Mutex.unlock reg_mutex;
      y
  | exception e ->
      Mutex.unlock reg_mutex;
      raise e

let register name m =
  Hashtbl.replace registry name m;
  reg_order := name :: !reg_order

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Obs: metric %s is already registered with another kind"
       name)

(* Exposition-format escaping. Label values escape backslash, double
   quote and newline; HELP text escapes backslash and newline (a raw
   newline would terminate the comment line mid-text and corrupt the
   scrape). *)
let prom_escape ~quote s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' when quote -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_escape_help = prom_escape ~quote:false
let prom_escape_label = prom_escape ~quote:true

(* {k="v",...} — empty for an unlabelled series. *)
let label_suffix = function
  | [] -> ""
  | labels ->
      let b = Buffer.create 32 in
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "%s=\"%s\"" k (prom_escape_label v))
        labels;
      Buffer.add_char b '}';
      Buffer.contents b

(* Find-or-create under the registry lock, so two domains racing on the
   same name share one instance. Labelled series of one metric name are
   distinct instances, keyed by name plus rendered labels. *)
let series_key name labels = name ^ label_suffix labels

let make_metric name ~fresh ~recover =
  reg_locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match recover m with Some x -> x | None -> kind_clash name)
      | None ->
          let x, m = fresh () in
          register name m;
          x)

module Counter = struct
  type t = counter

  let make ?(help = "") ?(labels = []) name =
    make_metric (series_key name labels)
      ~fresh:(fun () ->
        let c =
          { c_name = name; c_help = help; c_labels = labels;
            c_value = Atomic.make 0 }
        in
        (c, Counter c))
      ~recover:(function Counter c -> Some c | _ -> None)

  let incr c = Atomic.incr c.c_value

  let add c n =
    if n < 0 then invalid_arg "Obs.Counter.add: negative increment";
    ignore (Atomic.fetch_and_add c.c_value n)

  let value c = Atomic.get c.c_value
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge

  let make ?(help = "") ?(labels = []) name =
    make_metric (series_key name labels)
      ~fresh:(fun () ->
        let g =
          { g_name = name; g_help = help; g_labels = labels;
            g_value = Atomic.make 0.0 }
        in
        (g, Gauge g))
      ~recover:(function Gauge g -> Some g | _ -> None)

  let set g v = Atomic.set g.g_value v
  let value g = Atomic.get g.g_value
  let name g = g.g_name
end

module Histogram = struct
  type t = histogram

  let default_buckets =
    [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 1e5; 1e6 |]

  let make ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
    if Array.length buckets = 0 then
      invalid_arg "Obs.Histogram.make: empty bucket list";
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Obs.Histogram.make: buckets must be ascending")
      buckets;
    make_metric (series_key name labels)
      ~fresh:(fun () ->
        let h =
          {
            h_name = name;
            h_help = help;
            h_labels = labels;
            bounds = Array.copy buckets;
            counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.0;
            h_count = Atomic.make 0;
          }
        in
        (h, Histogram h))
      ~recover:(function Histogram h -> Some h | _ -> None)

  let observe h v =
    let n = Array.length h.bounds in
    let i = ref 0 in
    (* [v <= b] is false for NaN against every bound, so a NaN walks
       past all of them into the overflow bucket. *)
    while !i < n && not (v <= h.bounds.(!i)) do
      incr i
    done;
    Atomic.incr h.counts.(!i);
    atomic_add_float h.h_sum v;
    Atomic.incr h.h_count

  let count h = Atomic.get h.h_count
  let sum h = Atomic.get h.h_sum

  let bucket_counts h =
    let acc = ref 0 in
    let cumulative =
      Array.to_list
        (Array.mapi
           (fun i b ->
             acc := !acc + Atomic.get h.counts.(i);
             (b, !acc))
           h.bounds)
    in
    cumulative @ [ (infinity, Atomic.get h.h_count) ]

  let name h = h.h_name
end

(* Every registered counter as (name, labels, value) — the worker-side
   snapshot/delta basis for shipping counter increments to the daemon. *)
let counter_values () =
  reg_locked (fun () ->
      List.rev
        (List.filter_map
           (fun key ->
             match Hashtbl.find_opt registry key with
             | Some (Counter c) ->
                 Some (c.c_name, c.c_labels, Atomic.get c.c_value)
             | _ -> None)
           !reg_order))

let reset () =
  locked (fun () ->
      len := 0;
      Domain.DLS.get depth_key := 0);
  reg_locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
              Array.iter (fun a -> Atomic.set a 0) h.counts;
              Atomic.set h.h_sum 0.0;
              Atomic.set h.h_count 0)
        registry)

(* ---- span aggregation (shared by the prometheus/summary sinks) ---- *)

(* name -> (calls, total_ns), in first-completion order *)
let span_aggregate () =
  let snapshot = span_snapshot () in
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  Array.iter
    (fun s ->
      match Hashtbl.find_opt tbl s.name with
      | None ->
          order := s.name :: !order;
          Hashtbl.replace tbl s.name (1, s.dur_ns)
      | Some (calls, total) ->
          Hashtbl.replace tbl s.name (calls + 1, total + s.dur_ns))
    snapshot;
  List.rev_map (fun n -> (n, Hashtbl.find tbl n)) !order

(* ---- sinks ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_trace () =
  let snapshot = span_snapshot () in
  (* Each span-recording process gets its own trace pid so daemon and
     worker spans land on separate tracks: pid 1 is this process
     ("amsvp"), ingested origins get pid 2, 3, ... in sorted order. *)
  let origins =
    Array.fold_left
      (fun acc s -> if s.proc = "" || List.mem s.proc acc then acc
                    else s.proc :: acc)
      [] snapshot
    |> List.sort compare
  in
  let pid_of p =
    if p = "" then 1
    else
      let rec find i = function
        | [] -> 1
        | o :: tl -> if String.equal o p then i else find (i + 1) tl
      in
      find 2 origins
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"amsvp\"}}";
  List.iteri
    (fun i o ->
      Printf.bprintf b
        ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":1,\"args\":{\"name\":\"%s\"}}"
        (i + 2) (json_escape o))
    origins;
  Array.iter
    (fun s ->
      let cat = if s.cat = "" then "amsvp" else s.cat in
      let pid = pid_of s.proc in
      Buffer.add_char b ',';
      if s.dur_ns = 0 then
        Printf.bprintf b
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d"
          (json_escape s.name) (json_escape cat)
          (float_of_int s.start_ns /. 1e3)
          pid (s.dom + 1)
      else
        Printf.bprintf b
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d"
          (json_escape s.name) (json_escape cat)
          (float_of_int s.start_ns /. 1e3)
          (float_of_int s.dur_ns /. 1e3)
          pid (s.dom + 1);
      if s.args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Printf.bprintf b "\"%s\":\"%s\"" (json_escape k) (json_escape v))
          s.args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    snapshot;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* *)
let prom_name s =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    s

let registered_in_order () =
  reg_locked (fun () ->
      List.rev_map
        (fun name -> (name, Hashtbl.find_opt registry name))
        !reg_order)

let prometheus () =
  let b = Buffer.create 4096 in
  (* HELP/TYPE comments belong to the metric name, not the series: the
     first series of a labelled family writes them, later ones only add
     their sample lines. *)
  let seen_headers : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let header name help kind =
    if not (Hashtbl.mem seen_headers name) then begin
      Hashtbl.replace seen_headers name ();
      if help <> "" then
        Printf.bprintf b "# HELP %s %s\n" name (prom_escape_help help);
      Printf.bprintf b "# TYPE %s %s\n" name kind
    end
  in
  List.iter
    (fun (_, m) ->
      match m with
      | None -> ()
      | Some (Counter c) ->
          let n = prom_name c.c_name in
          header n c.c_help "counter";
          Printf.bprintf b "%s%s %d\n" n
            (label_suffix c.c_labels)
            (Atomic.get c.c_value)
      | Some (Gauge g) ->
          let n = prom_name g.g_name in
          header n g.g_help "gauge";
          Printf.bprintf b "%s%s %.9g\n" n
            (label_suffix g.g_labels)
            (Atomic.get g.g_value)
      | Some (Histogram h) ->
          let n = prom_name h.h_name in
          header n h.h_help "histogram";
          List.iter
            (fun (le, count) ->
              let le_s =
                if le = infinity then "+Inf" else Printf.sprintf "%.9g" le
              in
              Printf.bprintf b "%s_bucket%s %d\n" n
                (label_suffix (h.h_labels @ [ ("le", le_s) ]))
                count)
            (Histogram.bucket_counts h);
          Printf.bprintf b "%s_sum%s %.9g\n" n
            (label_suffix h.h_labels)
            (Atomic.get h.h_sum);
          Printf.bprintf b "%s_count%s %d\n" n
            (label_suffix h.h_labels)
            (Atomic.get h.h_count))
    (registered_in_order ());
  (* Per-span-name aggregates, so flow-stage and kernel spans show up in
     the same scrape as the counters. *)
  List.iter
    (fun (name, (calls, total_ns)) ->
      let n = "amsvp_span_" ^ prom_name name in
      header (n ^ "_calls_total") ("completions of span " ^ name) "counter";
      Printf.bprintf b "%s_calls_total %d\n" n calls;
      header (n ^ "_seconds_total") ("total wall time in span " ^ name) "counter";
      Printf.bprintf b "%s_seconds_total %.9g\n" n
        (float_of_int total_ns *. 1e-9))
    (span_aggregate ());
  Buffer.contents b

let summary () =
  let b = Buffer.create 2048 in
  let aggr = span_aggregate () in
  if aggr <> [] then begin
    Buffer.add_string b "spans (name, calls, total, mean):\n";
    List.iter
      (fun (name, (calls, total_ns)) ->
        Printf.bprintf b "  %-40s %8d %10.3f ms %10.1f us\n" name calls
          (float_of_int total_ns /. 1e6)
          (float_of_int total_ns /. 1e3 /. float_of_int calls))
      aggr
  end;
  let counters = ref [] and gauges = ref [] and histos = ref [] in
  List.iter
    (fun (_, m) ->
      match m with
      | Some (Counter c) -> counters := c :: !counters
      | Some (Gauge g) -> gauges := g :: !gauges
      | Some (Histogram h) -> histos := h :: !histos
      | None -> ())
    (registered_in_order ());
  if !counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (c : counter) ->
        Printf.bprintf b "  %-40s %12d\n"
          (c.c_name ^ label_suffix c.c_labels)
          (Atomic.get c.c_value))
      (List.rev !counters)
  end;
  if !gauges <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun (g : gauge) ->
        Printf.bprintf b "  %-40s %12.6g\n"
          (g.g_name ^ label_suffix g.g_labels)
          (Atomic.get g.g_value))
      (List.rev !gauges)
  end;
  if !histos <> [] then begin
    Buffer.add_string b "histograms:\n";
    List.iter
      (fun (h : histogram) ->
        let count = Atomic.get h.h_count and sum = Atomic.get h.h_sum in
        Printf.bprintf b "  %-40s count %d sum %.6g mean %.6g\n"
          (h.h_name ^ label_suffix h.h_labels)
          count
          sum
          (if count = 0 then 0.0 else sum /. float_of_int count))
      (List.rev !histos)
  end;
  Buffer.contents b

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc
