(* Span recorder + metrics registry + sinks. See obs.mli for the cost
   model: spans are gated by [on], metrics are always live. *)

type span = {
  name : string;
  cat : string;
  start_ns : int;
  dur_ns : int;
  depth : int;
  args : (string * string) list;
}

(* ---- enable flag ---- *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b
let enable () = on := true
let disable () = on := false
let now_ns = Clock.now_ns

(* ---- span storage: a growable buffer of completed spans ---- *)

let dummy_span =
  { name = ""; cat = ""; start_ns = 0; dur_ns = 0; depth = 0; args = [] }

let buf = ref (Array.make 1024 dummy_span)
let len = ref 0
let depth = ref 0

let push s =
  if !len = Array.length !buf then begin
    let bigger = Array.make (2 * !len) dummy_span in
    Array.blit !buf 0 bigger 0 !len;
    buf := bigger
  end;
  !buf.(!len) <- s;
  incr len

let span_count () = !len
let spans () = Array.to_list (Array.sub !buf 0 !len)

let close ~cat ~args name t0 =
  let t1 = now_ns () in
  decr depth;
  push { name; cat; start_ns = t0; dur_ns = t1 - t0; depth = !depth; args }

let with_span ?(cat = "") ?(args = []) name f =
  if not !on then f ()
  else begin
    incr depth;
    let t0 = now_ns () in
    match f () with
    | y ->
        close ~cat ~args name t0;
        y
    | exception e ->
        close ~cat ~args name t0;
        raise e
  end

let timed ?(cat = "") name f =
  let recording = !on in
  if recording then incr depth;
  let t0 = now_ns () in
  match f () with
  | y ->
      let t1 = now_ns () in
      if recording then begin
        decr depth;
        push
          { name; cat; start_ns = t0; dur_ns = t1 - t0; depth = !depth; args = [] }
      end;
      (y, float_of_int (t1 - t0) *. 1e-9)
  | exception e ->
      if recording then begin
        decr depth;
        push
          {
            name;
            cat;
            start_ns = t0;
            dur_ns = now_ns () - t0;
            depth = !depth;
            args = [];
          }
      end;
      raise e

let instant ?(cat = "") ?(args = []) name =
  if !on then
    push { name; cat; start_ns = now_ns (); dur_ns = 0; depth = !depth; args }

(* ---- metrics registry ---- *)

type counter = { c_name : string; c_help : string; mutable c_value : int }
type gauge = { g_name : string; g_help : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;  (* ascending upper bounds; +Inf is implicit *)
  counts : int array;  (* length = Array.length bounds + 1 *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_order : string list ref = ref [] (* reverse registration order *)

let register name m =
  Hashtbl.replace registry name m;
  reg_order := name :: !reg_order

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Obs: metric %s is already registered with another kind"
       name)

module Counter = struct
  type t = counter

  let make ?(help = "") name =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) -> c
    | Some _ -> kind_clash name
    | None ->
        let c = { c_name = name; c_help = help; c_value = 0 } in
        register name (Counter c);
        c

  let incr c = c.c_value <- c.c_value + 1

  let add c n =
    if n < 0 then invalid_arg "Obs.Counter.add: negative increment";
    c.c_value <- c.c_value + n

  let value c = c.c_value
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge

  let make ?(help = "") name =
    match Hashtbl.find_opt registry name with
    | Some (Gauge g) -> g
    | Some _ -> kind_clash name
    | None ->
        let g = { g_name = name; g_help = help; g_value = 0.0 } in
        register name (Gauge g);
        g

  let set g v = g.g_value <- v
  let value g = g.g_value
  let name g = g.g_name
end

module Histogram = struct
  type t = histogram

  let default_buckets =
    [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 1e5; 1e6 |]

  let make ?(help = "") ?(buckets = default_buckets) name =
    match Hashtbl.find_opt registry name with
    | Some (Histogram h) -> h
    | Some _ -> kind_clash name
    | None ->
        if Array.length buckets = 0 then
          invalid_arg "Obs.Histogram.make: empty bucket list";
        Array.iteri
          (fun i b ->
            if i > 0 && b <= buckets.(i - 1) then
              invalid_arg "Obs.Histogram.make: buckets must be ascending")
          buckets;
        let h =
          {
            h_name = name;
            h_help = help;
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0.0;
            h_count = 0;
          }
        in
        register name (Histogram h);
        h

  let observe h v =
    let n = Array.length h.bounds in
    let i = ref 0 in
    while !i < n && v > h.bounds.(!i) do
      incr i
    done;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1

  let count h = h.h_count
  let sum h = h.h_sum

  let bucket_counts h =
    let acc = ref 0 in
    let cumulative =
      Array.to_list
        (Array.mapi
           (fun i b ->
             acc := !acc + h.counts.(i);
             (b, !acc))
           h.bounds)
    in
    cumulative @ [ (infinity, h.h_count) ]

  let name h = h.h_name
end

let reset () =
  len := 0;
  depth := 0;
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.h_sum <- 0.0;
          h.h_count <- 0)
    registry

(* ---- span aggregation (shared by the prometheus/summary sinks) ---- *)

(* name -> (calls, total_ns), in first-completion order *)
let span_aggregate () =
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  for i = 0 to !len - 1 do
    let s = (!buf).(i) in
    (match Hashtbl.find_opt tbl s.name with
    | None ->
        order := s.name :: !order;
        Hashtbl.replace tbl s.name (1, s.dur_ns)
    | Some (calls, total) ->
        Hashtbl.replace tbl s.name (calls + 1, total + s.dur_ns));
    ()
  done;
  List.rev_map (fun n -> (n, Hashtbl.find tbl n)) !order

(* ---- sinks ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_trace () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"amsvp\"}}";
  for i = 0 to !len - 1 do
    let s = (!buf).(i) in
    let cat = if s.cat = "" then "amsvp" else s.cat in
    Buffer.add_char b ',';
    if s.dur_ns = 0 then
      Printf.bprintf b
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":1"
        (json_escape s.name) (json_escape cat)
        (float_of_int s.start_ns /. 1e3)
    else
      Printf.bprintf b
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1"
        (json_escape s.name) (json_escape cat)
        (float_of_int s.start_ns /. 1e3)
        (float_of_int s.dur_ns /. 1e3);
    if s.args <> [] then begin
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "\"%s\":\"%s\"" (json_escape k) (json_escape v))
        s.args;
      Buffer.add_char b '}'
    end;
    Buffer.add_char b '}'
  done;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* *)
let prom_name s =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    s

let prometheus () =
  let b = Buffer.create 4096 in
  let header name help kind =
    if help <> "" then Printf.bprintf b "# HELP %s %s\n" name help;
    Printf.bprintf b "# TYPE %s %s\n" name kind
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt registry name with
      | None -> ()
      | Some (Counter c) ->
          let n = prom_name c.c_name in
          header n c.c_help "counter";
          Printf.bprintf b "%s %d\n" n c.c_value
      | Some (Gauge g) ->
          let n = prom_name g.g_name in
          header n g.g_help "gauge";
          Printf.bprintf b "%s %.9g\n" n g.g_value
      | Some (Histogram h) ->
          let n = prom_name h.h_name in
          header n h.h_help "histogram";
          List.iter
            (fun (le, count) ->
              let le_s =
                if le = infinity then "+Inf" else Printf.sprintf "%.9g" le
              in
              Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" n le_s count)
            (Histogram.bucket_counts h);
          Printf.bprintf b "%s_sum %.9g\n" n h.h_sum;
          Printf.bprintf b "%s_count %d\n" n h.h_count)
    (List.rev !reg_order);
  (* Per-span-name aggregates, so flow-stage and kernel spans show up in
     the same scrape as the counters. *)
  List.iter
    (fun (name, (calls, total_ns)) ->
      let n = "amsvp_span_" ^ prom_name name in
      header (n ^ "_calls_total") ("completions of span " ^ name) "counter";
      Printf.bprintf b "%s_calls_total %d\n" n calls;
      header (n ^ "_seconds_total") ("total wall time in span " ^ name) "counter";
      Printf.bprintf b "%s_seconds_total %.9g\n" n
        (float_of_int total_ns *. 1e-9))
    (span_aggregate ());
  Buffer.contents b

let summary () =
  let b = Buffer.create 2048 in
  let aggr = span_aggregate () in
  if aggr <> [] then begin
    Buffer.add_string b "spans (name, calls, total, mean):\n";
    List.iter
      (fun (name, (calls, total_ns)) ->
        Printf.bprintf b "  %-40s %8d %10.3f ms %10.1f us\n" name calls
          (float_of_int total_ns /. 1e6)
          (float_of_int total_ns /. 1e3 /. float_of_int calls))
      aggr
  end;
  let counters = ref [] and gauges = ref [] and histos = ref [] in
  List.iter
    (fun name ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> counters := c :: !counters
      | Some (Gauge g) -> gauges := g :: !gauges
      | Some (Histogram h) -> histos := h :: !histos
      | None -> ())
    (List.rev !reg_order);
  if !counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (c : counter) -> Printf.bprintf b "  %-40s %12d\n" c.c_name c.c_value)
      (List.rev !counters)
  end;
  if !gauges <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun (g : gauge) -> Printf.bprintf b "  %-40s %12.6g\n" g.g_name g.g_value)
      (List.rev !gauges)
  end;
  if !histos <> [] then begin
    Buffer.add_string b "histograms:\n";
    List.iter
      (fun (h : histogram) ->
        Printf.bprintf b "  %-40s count %d sum %.6g mean %.6g\n" h.h_name
          h.h_count h.h_sum
          (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count))
      (List.rev !histos)
  end;
  Buffer.contents b

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc
