(* Bounded, domain-safe structured event journal. See journal.mli for
   the cost model.

   Each domain owns one ring buffer, created through DLS on first emit
   and registered in a global table so the merge can reach buffers of
   domains that have since terminated. The emit path takes only the
   owning domain's mutex — never contended except against a concurrent
   [events]/[reset], both rare — and one global atomic fetch-and-add
   for the sequence number, which is what makes the merged order a
   total order consistent with every domain's program order. *)

type severity = Debug | Info | Warn | Error

let severity_label = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type value = F of float | I of int | S of string | B of bool

type event = {
  seq : int;
  dom : int;
  cat : string;
  name : string;
  severity : severity;
  step : int;
  time : float;
  wall_ns : int;
  payload : (string * value) list;
}

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let default_capacity = 65536
let cap_cell = Atomic.make default_capacity
let capacity () = Atomic.get cap_cell

let set_capacity n =
  if n < 1 then invalid_arg "Journal.set_capacity: capacity must be positive";
  Atomic.set cap_cell n

let seq_counter = Atomic.make 0

let dummy_event =
  {
    seq = 0;
    dom = 0;
    cat = "";
    name = "";
    severity = Info;
    step = -1;
    time = nan;
    wall_ns = 0;
    payload = [];
  }

type buffer = {
  cap : int;
  arr : event array;
  lock : Mutex.t;
  mutable start : int;  (* index of the oldest event *)
  mutable len : int;
  mutable b_dropped : int;
}

let reg_mutex = Mutex.create ()
let buffers : buffer list ref = ref []

let with_lock m f =
  Mutex.lock m;
  match f () with
  | y ->
      Mutex.unlock m;
      y
  | exception e ->
      Mutex.unlock m;
      raise e

let make_buffer () =
  let cap = capacity () in
  let b =
    {
      cap;
      arr = Array.make cap dummy_event;
      lock = Mutex.create ();
      start = 0;
      len = 0;
      b_dropped = 0;
    }
  in
  with_lock reg_mutex (fun () -> buffers := b :: !buffers);
  b

let buffer_key = Domain.DLS.new_key make_buffer

let emit ?(severity = Info) ?(step = -1) ?(time = nan) ~cat name payload =
  if Atomic.get on then begin
    let seq = Atomic.fetch_and_add seq_counter 1 in
    let e =
      {
        seq;
        dom = (Domain.self () :> int);
        cat;
        name;
        severity;
        step;
        time;
        wall_ns = Clock.now_ns ();
        payload;
      }
    in
    let b = Domain.DLS.get buffer_key in
    with_lock b.lock (fun () ->
        if b.len = b.cap then begin
          (* Ring full: overwrite the oldest (recent telemetry is worth
             more than start-up noise) and account for the loss. *)
          b.arr.(b.start) <- e;
          b.start <- (b.start + 1) mod b.cap;
          b.b_dropped <- b.b_dropped + 1
        end
        else begin
          b.arr.((b.start + b.len) mod b.cap) <- e;
          b.len <- b.len + 1
        end)
  end

let snapshot_buffers () = with_lock reg_mutex (fun () -> !buffers)

let count () =
  List.fold_left
    (fun n b -> n + with_lock b.lock (fun () -> b.len))
    0 (snapshot_buffers ())

let dropped () =
  List.fold_left
    (fun n b -> n + with_lock b.lock (fun () -> b.b_dropped))
    0 (snapshot_buffers ())

let events () =
  let per_buffer b =
    with_lock b.lock (fun () ->
        List.init b.len (fun i -> b.arr.((b.start + i) mod b.cap)))
  in
  List.concat_map per_buffer (snapshot_buffers ())
  |> List.sort (fun a b -> compare a.seq b.seq)

let reset () =
  List.iter
    (fun b ->
      with_lock b.lock (fun () ->
          b.start <- 0;
          b.len <- 0;
          b.b_dropped <- 0))
    (snapshot_buffers ())

(* ---- JSONL sink ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no literal for non-finite floats, so they are emitted as
   strings; readers treat "NaN"/"Infinity"/"-Infinity" payload values
   as the floats they name. *)
let add_float b v =
  if Float.is_finite v then Printf.bprintf b "%.17g" v
  else if Float.is_nan v then Buffer.add_string b "\"NaN\""
  else if v > 0.0 then Buffer.add_string b "\"Infinity\""
  else Buffer.add_string b "\"-Infinity\""

let add_value b = function
  | F v -> add_float b v
  | I i -> Printf.bprintf b "%d" i
  | S s -> Printf.bprintf b "\"%s\"" (json_escape s)
  | B v -> Buffer.add_string b (if v then "true" else "false")

let event_to_json e =
  let b = Buffer.create 160 in
  Printf.bprintf b "{\"seq\":%d,\"dom\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"sev\":\"%s\""
    e.seq e.dom (json_escape e.cat) (json_escape e.name)
    (severity_label e.severity);
  if e.step >= 0 then Printf.bprintf b ",\"step\":%d" e.step;
  if Float.is_finite e.time then Printf.bprintf b ",\"time\":%.17g" e.time;
  Printf.bprintf b ",\"wall_ns\":%d" e.wall_ns;
  Buffer.add_string b ",\"data\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":" (json_escape k);
      add_value b v)
    e.payload;
  Buffer.add_string b "}}";
  Buffer.contents b

let to_jsonl () =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (event_to_json e);
      Buffer.add_char b '\n')
    (events ());
  Buffer.contents b

let write_jsonl path =
  let oc = open_out_bin path in
  output_string oc (to_jsonl ());
  close_out oc
