(* Bounded, domain-safe structured event journal. See journal.mli for
   the cost model.

   Each domain owns one ring buffer, created through DLS on first emit
   and registered in a global table so the merge can reach buffers of
   domains that have since terminated. The emit path takes only the
   owning domain's mutex — never contended except against a concurrent
   [events]/[reset], both rare — and one global atomic fetch-and-add
   for the sequence number, which is what makes the merged order a
   total order consistent with every domain's program order. *)

type severity = Debug | Info | Warn | Error

let severity_label = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type value = F of float | I of int | S of string | B of bool

type event = {
  seq : int;
  origin : string;
  dom : int;
  cat : string;
  name : string;
  severity : severity;
  step : int;
  time : float;
  wall_ns : int;
  payload : (string * value) list;
}

(* The process's origin tag, stamped on every event it emits. "" is the
   anonymous single-process default; the daemon sets "daemon" and each
   forked point-worker sets "w<slot>:<pid>" right after the fork, so a
   merged multi-process journal attributes every event. *)
let origin_cell = Atomic.make ""
let origin () = Atomic.get origin_cell
let set_origin o = Atomic.set origin_cell o

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let default_capacity = 65536
let cap_cell = Atomic.make default_capacity
let capacity () = Atomic.get cap_cell

let set_capacity n =
  if n < 1 then invalid_arg "Journal.set_capacity: capacity must be positive";
  Atomic.set cap_cell n

let seq_counter = Atomic.make 0

let dummy_event =
  {
    seq = 0;
    origin = "";
    dom = 0;
    cat = "";
    name = "";
    severity = Info;
    step = -1;
    time = nan;
    wall_ns = 0;
    payload = [];
  }

type buffer = {
  cap : int;
  arr : event array;
  lock : Mutex.t;
  mutable start : int;  (* index of the oldest event *)
  mutable len : int;
  mutable b_dropped : int;
}

let reg_mutex = Mutex.create ()
let buffers : buffer list ref = ref []

let with_lock m f =
  Mutex.lock m;
  match f () with
  | y ->
      Mutex.unlock m;
      y
  | exception e ->
      Mutex.unlock m;
      raise e

let make_buffer () =
  let cap = capacity () in
  let b =
    {
      cap;
      arr = Array.make cap dummy_event;
      lock = Mutex.create ();
      start = 0;
      len = 0;
      b_dropped = 0;
    }
  in
  with_lock reg_mutex (fun () -> buffers := b :: !buffers);
  b

let buffer_key = Domain.DLS.new_key make_buffer

let push b e =
  with_lock b.lock (fun () ->
      if b.len = b.cap then begin
        (* Ring full: overwrite the oldest (recent telemetry is worth
           more than start-up noise) and account for the loss. *)
        b.arr.(b.start) <- e;
        b.start <- (b.start + 1) mod b.cap;
        b.b_dropped <- b.b_dropped + 1
      end
      else begin
        b.arr.((b.start + b.len) mod b.cap) <- e;
        b.len <- b.len + 1
      end)

let emit ?(severity = Info) ?(step = -1) ?(time = nan) ~cat name payload =
  if Atomic.get on then begin
    let seq = Atomic.fetch_and_add seq_counter 1 in
    let e =
      {
        seq;
        origin = Atomic.get origin_cell;
        dom = (Domain.self () :> int);
        cat;
        name;
        severity;
        step;
        time;
        wall_ns = Clock.now_ns ();
        payload;
      }
    in
    push (Domain.DLS.get buffer_key) e
  end

let next_seq () = Atomic.get seq_counter

(* Events ingested from other processes go into a dedicated ring so a
   foreign burst cannot evict this process's own events, and so their
   seq numbers (from the sender's counter) never touch ours. *)
let foreign_lock = Mutex.create ()
let foreign : buffer option ref = ref None

let foreign_buffer () =
  with_lock foreign_lock (fun () ->
      match !foreign with
      | Some b -> b
      | None ->
          let b = make_buffer () in
          foreign := Some b;
          b)

let ingest evs =
  if Atomic.get on && evs <> [] then begin
    let b = foreign_buffer () in
    List.iter (push b) evs
  end

let snapshot_buffers () = with_lock reg_mutex (fun () -> !buffers)

let count () =
  List.fold_left
    (fun n b -> n + with_lock b.lock (fun () -> b.len))
    0 (snapshot_buffers ())

let dropped () =
  List.fold_left
    (fun n b -> n + with_lock b.lock (fun () -> b.b_dropped))
    0 (snapshot_buffers ())

let raw_events () =
  let per_buffer b =
    with_lock b.lock (fun () ->
        List.init b.len (fun i -> b.arr.((b.start + i) mod b.cap)))
  in
  List.concat_map per_buffer (snapshot_buffers ())

(* Merged order: wall-clock first so a multi-process merge reads as a
   timeline, then (origin, seq) so identical timestamps — common when
   two workers share a coarse clock tick — order deterministically
   regardless of arrival order. Within one origin wall_ns and seq are
   both nondecreasing in program order, so this preserves each
   process's own ordering. *)
let event_order a b =
  compare (a.wall_ns, a.origin, a.seq) (b.wall_ns, b.origin, b.seq)

let events () = List.sort event_order (raw_events ())

let events_after n =
  let me = Atomic.get origin_cell in
  (* Only locally emitted events can match: the foreign ring holds other
     processes' seq numbers, so it is skipped wholesale. Within each
     local ring insertion order is seq order (every [emit] draws a fresh
     global seq before pushing), so walking back from the newest entry
     and stopping at the first seq below [n] costs O(matches), not
     O(ring) — which matters when a worker drains after every task from
     a ring it inherited nearly full from a long-lived parent. *)
  let is_foreign =
    match with_lock foreign_lock (fun () -> !foreign) with
    | Some fb -> fun b -> b == fb
    | None -> fun _ -> false
  in
  let per_buffer b =
    if is_foreign b then []
    else
      with_lock b.lock (fun () ->
          let acc = ref [] in
          let i = ref (b.len - 1) in
          let scanning = ref true in
          while !scanning && !i >= 0 do
            let e = b.arr.((b.start + !i) mod b.cap) in
            if e.seq >= n then begin
              if String.equal e.origin me then acc := e :: !acc;
              decr i
            end
            else scanning := false
          done;
          !acc)
  in
  List.concat_map per_buffer (snapshot_buffers ())
  |> List.sort (fun a b -> compare a.seq b.seq)

let reset () =
  List.iter
    (fun b ->
      with_lock b.lock (fun () ->
          b.start <- 0;
          b.len <- 0;
          b.b_dropped <- 0))
    (snapshot_buffers ())

(* ---- JSONL sink ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no literal for non-finite floats, so they are emitted as
   strings; readers treat "NaN"/"Infinity"/"-Infinity" payload values
   as the floats they name. *)
let add_float b v =
  if Float.is_finite v then Printf.bprintf b "%.17g" v
  else if Float.is_nan v then Buffer.add_string b "\"NaN\""
  else if v > 0.0 then Buffer.add_string b "\"Infinity\""
  else Buffer.add_string b "\"-Infinity\""

let add_value b = function
  | F v -> add_float b v
  | I i -> Printf.bprintf b "%d" i
  | S s -> Printf.bprintf b "\"%s\"" (json_escape s)
  | B v -> Buffer.add_string b (if v then "true" else "false")

let event_to_json e =
  let b = Buffer.create 160 in
  Printf.bprintf b "{\"seq\":%d,\"dom\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"sev\":\"%s\""
    e.seq e.dom (json_escape e.cat) (json_escape e.name)
    (severity_label e.severity);
  if e.origin <> "" then
    Printf.bprintf b ",\"origin\":\"%s\"" (json_escape e.origin);
  if e.step >= 0 then Printf.bprintf b ",\"step\":%d" e.step;
  if Float.is_finite e.time then Printf.bprintf b ",\"time\":%.17g" e.time;
  Printf.bprintf b ",\"wall_ns\":%d" e.wall_ns;
  Buffer.add_string b ",\"data\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":" (json_escape k);
      add_value b v)
    e.payload;
  Buffer.add_string b "}}";
  Buffer.contents b

let to_jsonl () =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (event_to_json e);
      Buffer.add_char b '\n')
    (events ());
  Buffer.contents b

let write_jsonl path =
  let oc = open_out_bin path in
  output_string oc (to_jsonl ());
  close_out oc

(* ---- incremental sink with rotation ----

   [write_jsonl] rewrites the whole buffer and is fine for one-shot
   CLI runs that dump once at exit. A daemon never exits, and its ring
   buffers overwrite old events, so it instead attaches a sink and
   flushes periodically: each flush appends only the events newer than
   the previous flush, and the file rotates (path -> path.1 -> ... ->
   path.keep) once it grows past [max_bytes]. *)

type sink = {
  s_path : string;
  s_max_bytes : int option;
  s_keep : int;
  s_marks : (string, int) Hashtbl.t;  (* origin -> highest seq flushed *)
  mutable s_bytes : int;  (* bytes written to the live file *)
}

let sink_lock = Mutex.create ()
let sink : sink option ref = ref None

let rotated path i = Printf.sprintf "%s.%d" path i

let rotate s =
  for i = s.s_keep - 1 downto 1 do
    let src = rotated s.s_path i in
    if Sys.file_exists src then Sys.rename src (rotated s.s_path (i + 1))
  done;
  if s.s_keep >= 1 && Sys.file_exists s.s_path then
    Sys.rename s.s_path (rotated s.s_path 1)
  else if Sys.file_exists s.s_path then Sys.remove s.s_path;
  s.s_bytes <- 0

let flush () =
  with_lock sink_lock (fun () ->
      match !sink with
      | None -> ()
      | Some s ->
          (* Seq counters are per-process, so the "already flushed"
             watermark is kept per origin: a worker's seq 3 arriving
             after the daemon's seq 900 is still fresh. *)
          let mark origin =
            Option.value ~default:(-1) (Hashtbl.find_opt s.s_marks origin)
          in
          let fresh =
            List.filter (fun e -> e.seq > mark e.origin) (events ())
          in
          if fresh <> [] then begin
            let oc =
              open_out_gen
                [ Open_append; Open_creat; Open_wronly; Open_binary ]
                0o644 s.s_path
            in
            let b = Buffer.create 4096 in
            List.iter
              (fun e ->
                Buffer.add_string b (event_to_json e);
                Buffer.add_char b '\n';
                if e.seq > mark e.origin then
                  Hashtbl.replace s.s_marks e.origin e.seq)
              fresh;
            output_string oc (Buffer.contents b);
            close_out oc;
            s.s_bytes <- s.s_bytes + Buffer.length b;
            match s.s_max_bytes with
            | Some limit when s.s_bytes >= limit -> rotate s
            | _ -> ()
          end)

let attach_sink ?max_bytes ?(keep = 3) path =
  (match max_bytes with
  | Some n when n < 1 ->
      invalid_arg "Journal.attach_sink: max_bytes must be positive"
  | _ -> ());
  if keep < 0 then invalid_arg "Journal.attach_sink: keep must be >= 0";
  with_lock sink_lock (fun () ->
      (* Attaching starts a fresh live file: a previous run's log is not
         silently extended. *)
      if Sys.file_exists path then Sys.remove path;
      sink :=
        Some
          { s_path = path; s_max_bytes = max_bytes; s_keep = keep;
            s_marks = Hashtbl.create 7; s_bytes = 0 })

let detach_sink () =
  flush ();
  with_lock sink_lock (fun () -> sink := None)
