(** Monotonic time source for the instrumentation layer. *)

val now_ns : unit -> int
(** Nanoseconds on the system monotonic clock, rebased to the first
    read of the process so timestamps stay small (exact microsecond
    floats in the Chrome trace export). Never decreases. *)
