type t = {
  ground : string;
  mutable devs : Component.t list;  (* reverse insertion order *)
  names : (string, Component.t) Hashtbl.t;
}

let create ?(ground = "gnd") () =
  { ground; devs = []; names = Hashtbl.create 16 }

let ground c = c.ground

let add c (d : Component.t) =
  if Hashtbl.mem c.names d.name then
    invalid_arg (Printf.sprintf "Circuit.add: duplicate device name %s" d.name);
  Hashtbl.add c.names d.name d;
  c.devs <- d :: c.devs

let add_resistor c ~name ~pos ~neg r =
  add c (Component.make ~name ~pos ~neg (Component.Resistor r))

let add_capacitor c ~name ~pos ~neg f =
  add c (Component.make ~name ~pos ~neg (Component.Capacitor f))

let add_inductor c ~name ~pos ~neg l =
  add c (Component.make ~name ~pos ~neg (Component.Inductor l))

let add_vsource c ~name ~pos ~neg s =
  add c (Component.make ~name ~pos ~neg (Component.Vsource s))

let add_isource c ~name ~pos ~neg s =
  add c (Component.make ~name ~pos ~neg (Component.Isource s))

let add_pwl_conductance c ~name ~pos ~neg ~g_on ~g_off ~threshold =
  add c (Component.make ~name ~pos ~neg (Component.Pwl_conductance { g_on; g_off; threshold }))

let has_pwl c =
  List.exists
    (fun (d : Component.t) ->
      match d.kind with Component.Pwl_conductance _ -> true | _ -> false)
    c.devs

let add_vcvs c ~name ~pos ~neg ~gain ~ctrl_pos ~ctrl_neg =
  add c (Component.make ~name ~pos ~neg (Component.Vcvs { gain; ctrl_pos; ctrl_neg }))

let devices c = List.rev c.devs
let find c name = Hashtbl.find_opt c.names name

let nodes c =
  let module S = Set.Make (String) in
  let s =
    List.fold_left
      (fun acc (d : Component.t) -> S.add d.pos (S.add d.neg acc))
      (S.singleton c.ground) c.devs
  in
  S.elements s

let node_count c = List.length (nodes c)
let device_count c = List.length c.devs

let input_signals c =
  let seen = Hashtbl.create 8 in
  List.concat_map Component.input_signals (devices c)
  |> List.filter (fun u ->
         if Hashtbl.mem seen u then false
         else begin
           Hashtbl.add seen u ();
           true
         end)

let dipole_equations c = List.map Component.dipole_equation (devices c)

let params c =
  List.concat_map
    (fun (d : Component.t) ->
      List.map (fun (p, v) -> (d.name ^ "." ^ p, v)) (Component.params d))
    (devices c)

(* "dev.param" -> (dev, param); parameter names contain no dot, so the
   split is on the last one (device names are unrestricted). *)
let split_key key =
  match String.rindex_opt key '.' with
  | Some i when i > 0 && i < String.length key - 1 ->
      (String.sub key 0 i, String.sub key (i + 1) (String.length key - i - 1))
  | Some _ | None ->
      invalid_arg
        (Printf.sprintf "Circuit.override: malformed key %S (want dev.param)"
           key)

let override c bindings =
  let by_dev = Hashtbl.create (List.length bindings) in
  List.iter
    (fun (key, v) ->
      let dev, p = split_key key in
      if not (Hashtbl.mem c.names dev) then
        invalid_arg
          (Printf.sprintf "Circuit.override: unknown device %s in key %s (have: %s)"
             dev key
             (String.concat ", " (List.map (fun (d : Component.t) -> d.name)
                (devices c))));
      Hashtbl.add by_dev dev (p, v))
    bindings;
  let c' = create ~ground:c.ground () in
  List.iter
    (fun (d : Component.t) ->
      let d =
        List.fold_left
          (fun d (p, v) -> Component.with_param d p v)
          d
          (List.rev (Hashtbl.find_all by_dev d.name))
      in
      add c' d)
    (devices c);
  c'

let structure_key c =
  String.concat ";"
    (("gnd=" ^ c.ground) :: List.map Component.structure_tag (devices c))

(* Topology diagnostics (lint passes over the elaborated network).

   All passes work on the undirected device graph; each returns Diag
   findings so that the lint driver can attach source spans (via the
   contribution that created the device) and the legacy [validate]
   below can keep its string interface. *)

module Diag = Amsvp_diag.Diag

(* Reachability from [c.ground] over the edges selected by [keep].
   Returns the visited-set membership test. *)
let reach c keep =
  let adj = Hashtbl.create 16 in
  let link a b =
    let l = try Hashtbl.find adj a with Not_found -> [] in
    Hashtbl.replace adj a (b :: l)
  in
  List.iter
    (fun (d : Component.t) ->
      if keep d then begin
        link d.pos d.neg;
        link d.neg d.pos
      end)
    c.devs;
  let visited = Hashtbl.create 16 in
  let rec visit n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      List.iter visit (try Hashtbl.find adj n with Not_found -> [])
    end
  in
  visit c.ground;
  fun n -> Hashtbl.mem visited n

let is_vsource_like (d : Component.t) =
  match d.kind with
  | Component.Vsource _ | Component.Vcvs _ -> true
  | _ -> false

(* A zero-valued DC current source is an ideal voltmeter (the probes
   [Flow.insert_probes] adds): it carries no current, so it is exempt
   from the return-path requirement of a real current source. *)
let is_isource_like (d : Component.t) =
  match d.kind with
  | Component.Isource (Component.Dc 0.0) -> false
  | Component.Isource _ | Component.Vccs _ -> true
  | _ -> false

(* A cycle made only of voltage-defined branches fixes the same node
   potential twice: detected with union-find over the V-edge subgraph —
   an edge whose endpoints are already connected closes a loop. *)
let vsource_loops c =
  let parent = Hashtbl.create 16 in
  let rec root n =
    match Hashtbl.find_opt parent n with
    | None -> n
    | Some p ->
        let r = root p in
        Hashtbl.replace parent n r;
        r
  in
  List.filter_map
    (fun (d : Component.t) ->
      if not (is_vsource_like d) then None
      else
        let rp = root d.pos and rn = root d.neg in
        if rp = rn then Some d.name
        else begin
          Hashtbl.replace parent rp rn;
          None
        end)
    (devices c)

let diagnose c =
  if c.devs = [] then
    [ Diag.error "AMS024" "circuit has no devices" ]
  else begin
    let connected = reach c (fun _ -> true) in
    let floating = List.filter (fun n -> not (connected n)) (nodes c) in
    let floating_findings =
      List.map
        (fun n ->
          Diag.error ~subject:n "AMS020"
            (Printf.sprintf "node %s is not connected to ground" n))
        floating
    in
    let stranded_devs =
      List.filter
        (fun (d : Component.t) -> not (connected d.pos || connected d.neg))
        (devices c)
    in
    let stranded_findings =
      match stranded_devs with
      | [] -> []
      | ds ->
          [ Diag.error
              ~subject:(List.hd ds).Component.name "AMS021"
              (Printf.sprintf "devices unreachable from ground: %s"
                 (String.concat ", "
                    (List.map (fun (d : Component.t) -> d.Component.name) ds)))
          ]
    in
    let loop_findings =
      List.map
        (fun name ->
          Diag.error ~subject:name "AMS022"
            (Printf.sprintf
               "voltage source %s closes a loop of voltage-defined branches"
               name))
        (vsource_loops c)
    in
    (* A current-defined branch whose endpoints have no other return
       path to ground forms a cutset of current sources: KCL at the cut
       then fixes the source current twice. Detect by removing the
       I-defined edges and looking for current sources that bridge the
       now-disconnected region (ignore endpoints that were floating
       outright — those are already AMS020). *)
    let reach_no_i = reach c (fun d -> not (is_isource_like d)) in
    let cutset_findings =
      List.filter_map
        (fun (d : Component.t) ->
          if
            is_isource_like d
            && connected d.pos && connected d.neg
            && not (reach_no_i d.pos && reach_no_i d.neg)
          then
            Some
              (Diag.error ~subject:d.name "AMS023"
                 (Printf.sprintf
                    "current source %s has no conductive return path (current-source cutset)"
                    d.name))
          else None)
        (devices c)
    in
    floating_findings @ stranded_findings @ loop_findings @ cutset_findings
  end

let validate c =
  let findings = diagnose c in
  let errors = List.filter (fun f -> f.Diag.severity = Diag.Error) findings in
  match errors with
  | [] -> Ok ()
  | fs ->
      (* Keep the historical phrasing for floating nodes; other findings
         fall back to their Diag messages. *)
      let floating =
        List.filter_map
          (fun f -> if f.Diag.code = "AMS020" then f.Diag.subject else None)
          fs
      in
      let msgs =
        (if floating = [] then []
         else
           [ Printf.sprintf "nodes not connected to ground: %s"
               (String.concat ", " floating)
           ])
        @ List.filter_map
            (fun f ->
              if f.Diag.code = "AMS020" then None else Some f.Diag.message)
            fs
      in
      Error (String.concat "; " msgs)

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit (ground=%s, %d nodes, %d devices)@,%a@]"
    c.ground (node_count c) (device_count c)
    (Format.pp_print_list Component.pp)
    (devices c)
