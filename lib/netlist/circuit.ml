type t = {
  ground : string;
  mutable devs : Component.t list;  (* reverse insertion order *)
  names : (string, Component.t) Hashtbl.t;
}

let create ?(ground = "gnd") () =
  { ground; devs = []; names = Hashtbl.create 16 }

let ground c = c.ground

let add c (d : Component.t) =
  if Hashtbl.mem c.names d.name then
    invalid_arg (Printf.sprintf "Circuit.add: duplicate device name %s" d.name);
  Hashtbl.add c.names d.name d;
  c.devs <- d :: c.devs

let add_resistor c ~name ~pos ~neg r =
  add c (Component.make ~name ~pos ~neg (Component.Resistor r))

let add_capacitor c ~name ~pos ~neg f =
  add c (Component.make ~name ~pos ~neg (Component.Capacitor f))

let add_inductor c ~name ~pos ~neg l =
  add c (Component.make ~name ~pos ~neg (Component.Inductor l))

let add_vsource c ~name ~pos ~neg s =
  add c (Component.make ~name ~pos ~neg (Component.Vsource s))

let add_isource c ~name ~pos ~neg s =
  add c (Component.make ~name ~pos ~neg (Component.Isource s))

let add_pwl_conductance c ~name ~pos ~neg ~g_on ~g_off ~threshold =
  add c (Component.make ~name ~pos ~neg (Component.Pwl_conductance { g_on; g_off; threshold }))

let has_pwl c =
  List.exists
    (fun (d : Component.t) ->
      match d.kind with Component.Pwl_conductance _ -> true | _ -> false)
    c.devs

let add_vcvs c ~name ~pos ~neg ~gain ~ctrl_pos ~ctrl_neg =
  add c (Component.make ~name ~pos ~neg (Component.Vcvs { gain; ctrl_pos; ctrl_neg }))

let devices c = List.rev c.devs
let find c name = Hashtbl.find_opt c.names name

let nodes c =
  let module S = Set.Make (String) in
  let s =
    List.fold_left
      (fun acc (d : Component.t) -> S.add d.pos (S.add d.neg acc))
      (S.singleton c.ground) c.devs
  in
  S.elements s

let node_count c = List.length (nodes c)
let device_count c = List.length c.devs

let input_signals c =
  let seen = Hashtbl.create 8 in
  List.concat_map Component.input_signals (devices c)
  |> List.filter (fun u ->
         if Hashtbl.mem seen u then false
         else begin
           Hashtbl.add seen u ();
           true
         end)

let dipole_equations c = List.map Component.dipole_equation (devices c)

let params c =
  List.concat_map
    (fun (d : Component.t) ->
      List.map (fun (p, v) -> (d.name ^ "." ^ p, v)) (Component.params d))
    (devices c)

(* "dev.param" -> (dev, param); parameter names contain no dot, so the
   split is on the last one (device names are unrestricted). *)
let split_key key =
  match String.rindex_opt key '.' with
  | Some i when i > 0 && i < String.length key - 1 ->
      (String.sub key 0 i, String.sub key (i + 1) (String.length key - i - 1))
  | Some _ | None ->
      invalid_arg
        (Printf.sprintf "Circuit.override: malformed key %S (want dev.param)"
           key)

let override c bindings =
  let by_dev = Hashtbl.create (List.length bindings) in
  List.iter
    (fun (key, v) ->
      let dev, p = split_key key in
      if not (Hashtbl.mem c.names dev) then
        invalid_arg
          (Printf.sprintf "Circuit.override: unknown device %s in key %s (have: %s)"
             dev key
             (String.concat ", " (List.map (fun (d : Component.t) -> d.name)
                (devices c))));
      Hashtbl.add by_dev dev (p, v))
    bindings;
  let c' = create ~ground:c.ground () in
  List.iter
    (fun (d : Component.t) ->
      let d =
        List.fold_left
          (fun d (p, v) -> Component.with_param d p v)
          d
          (List.rev (Hashtbl.find_all by_dev d.name))
      in
      add c' d)
    (devices c);
  c'

let structure_key c =
  String.concat ";"
    (("gnd=" ^ c.ground) :: List.map Component.structure_tag (devices c))

let validate c =
  if c.devs = [] then Error "circuit has no devices"
  else begin
    (* Reachability from ground over device edges. *)
    let adj = Hashtbl.create 16 in
    let link a b =
      let l = try Hashtbl.find adj a with Not_found -> [] in
      Hashtbl.replace adj a (b :: l)
    in
    List.iter
      (fun (d : Component.t) ->
        link d.pos d.neg;
        link d.neg d.pos)
      c.devs;
    let visited = Hashtbl.create 16 in
    let rec visit n =
      if not (Hashtbl.mem visited n) then begin
        Hashtbl.add visited n ();
        List.iter visit (try Hashtbl.find adj n with Not_found -> [])
      end
    in
    visit c.ground;
    let floating =
      List.filter (fun n -> not (Hashtbl.mem visited n)) (nodes c)
    in
    match floating with
    | [] -> Ok ()
    | ns ->
        Error
          (Printf.sprintf "nodes not connected to ground: %s"
             (String.concat ", " ns))
  end

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit (ground=%s, %d nodes, %d devices)@,%a@]"
    c.ground (node_count c) (device_count c)
    (Format.pp_print_list Component.pp)
    (devices c)
