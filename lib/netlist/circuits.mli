(** The test circuits of the paper's evaluation (§V-A, Fig. 8).

    - [RCn]: an n-order RC filter built by cascading n RC stages,
      R = 5 kΩ, C = 25 nF;
    - [2IN]: the two-input summing amplifier of Fig. 8.a,
      R1 = 3 kΩ, R2 = 14 kΩ, R3 = 10 kΩ;
    - [OA]: the operational amplifier of Fig. 8.b, R1 = 400 Ω,
      R2 = 1.6 kΩ, C1 = 40 nF, Rin = 1 MΩ, Rout = 20 Ω.

    Each test case carries the circuit, the output of interest
    [V(out,gnd)] and the square-wave stimuli of §V-A (1 ms period). *)

type testcase = {
  label : string;
  circuit : Circuit.t;
  output : Expr.var;  (** the output signal of interest *)
  stimuli : (string * Amsvp_util.Stimulus.t) list;
      (** input signal name -> waveform *)
}

val rc_ladder : ?r:float -> ?c:float -> int -> testcase
(** [rc_ladder n] is the RCn circuit; [n >= 1].
    @raise Invalid_argument otherwise. *)

val two_input : unit -> testcase
(** The 2IN summing amplifier; inputs ["in1"] (1 ms square) and
    ["in2"] (2 ms square). *)

val opamp : unit -> testcase
(** The OA active filter stage. *)

val rlc_series : ?r:float -> ?l:float -> ?c:float -> unit -> testcase
(** A series RLC resonator (not in the paper's table, used to exercise
    the inductor path of every back-end): R = 100 Ω, L = 10 mH,
    C = 1 µF by default (f0 ≈ 1.6 kHz, damping ratio 0.5), driven by a
    1 ms square wave, output [V(out,gnd)] across the capacitor. *)

val rectifier : ?r:float -> ?g_on:float -> ?g_off:float -> unit -> testcase
(** The half-wave rectifier of the piecewise-linear extension (§III-C,
    and [examples/rectifier.ml]): a 1 kHz sine through a series
    resistor (1 kΩ) into a two-segment PWL diode clamp, output
    [V(out,gnd)] across the diode. The tolerance-sweep workhorse of
    the sweep engine. *)

val by_name : string -> testcase option
(** Lookup by the paper's labels: ["2IN"], ["RC1"], ["RC20"], ["OA"],
    and more generally ["RC<n>"]; plus the extras ["RLC"] and
    ["RECT"]. *)

val all_paper_cases : unit -> testcase list
(** [2IN; RC1; RC20; OA], the rows of Tables I–III. *)

(** The op-amp open-loop gain used for the ideal stages. *)
val open_loop_gain : float
