(** Two-terminal devices (dipoles) of an electrical linear network.

    Each device connects a positive to a negative node; its flow
    [I(name)] is oriented from positive to negative through the device.
    A device contributes one constitutive (dipole) equation relating
    its branch potential and flow (paper §III-B). *)

(** Waveform driving an independent source. *)
type source =
  | Dc of float  (** constant value *)
  | Input of string
      (** an external input signal of the analog subsystem, named so
          the abstracted model exposes it as an input port *)

type kind =
  | Resistor of float  (** resistance in ohm *)
  | Capacitor of float  (** capacitance in farad *)
  | Inductor of float  (** inductance in henry *)
  | Vsource of source  (** independent voltage source *)
  | Isource of source  (** independent current source *)
  | Vcvs of { gain : float; ctrl_pos : string; ctrl_neg : string }
      (** voltage-controlled voltage source, e.g. an op-amp output
          stage *)
  | Vccs of { gm : float; ctrl_pos : string; ctrl_neg : string }
      (** voltage-controlled current source (transconductance) *)
  | Pwl_conductance of { g_on : float; g_off : float; threshold : float }
      (** piecewise-linear two-segment conductance (an ideal-diode-like
          element, §III-C): conducts [g_on] when its branch voltage is
          at least [threshold], [g_off] otherwise *)

type t = { name : string; pos : string; neg : string; kind : kind }

val make : name:string -> pos:string -> neg:string -> kind -> t
(** @raise Invalid_argument on a self-loop ([pos = neg]) or an empty
    name. *)

val flow_var : t -> Expr.var
(** [I(name)], the branch flow. *)

val potential_var : t -> Expr.var
(** [V(pos,neg)], the branch potential. *)

val dipole_equation : t -> Eqn.t
(** The constitutive equation of the device, with parameter values
    substituted (e.g. [V(a,b) = R * I(d)] for a resistor,
    [I(d) = C * ddt(V(a,b))] for a capacitor). Sources driven by
    [Input u] refer to the signal variable [u]. *)

val is_source : t -> bool
val input_signals : t -> string list

(** {1 Parameter access}

    Every numeric value a device carries is a named parameter, so sweep
    and optimisation layers can rebind values without knowing the
    device kinds: a resistor exposes ["r"], a capacitor ["c"], an
    inductor ["l"], DC sources ["dc"], controlled sources ["gain"] /
    ["gm"], and a PWL conductance ["g_on"], ["g_off"] and
    ["threshold"]. Sources driven by an external input expose no
    parameters. *)

val params : t -> (string * float) list
(** Named numeric parameters of the device, in a fixed order. *)

val with_param : t -> string -> float -> t
(** [with_param d p v] is [d] with parameter [p] rebound to [v]; the
    nodes and name are unchanged.
    @raise Invalid_argument if the device has no parameter [p]. *)

val structure_tag : t -> string
(** A value-free fingerprint of the device: name, kind, terminals and
    control nodes, with every numeric parameter elided. Two devices
    with equal tags differ at most in parameter values, so any
    abstraction plan keyed on the tag can be re-bound across them. *)

val pp : Format.formatter -> t -> unit
