(** An electrical network: a set of named devices over named nodes.

    This is the conservative representation of the paper (§III-B): a
    graph of nodes connected by branches, each branch carrying a dipole
    equation. The circuit is the input of both the MNA simulation
    back-ends and the abstraction methodology. *)

type t

val create : ?ground:string -> unit -> t
(** [create ()] is an empty circuit whose reference node is ["gnd"]. *)

val ground : t -> string

val add : t -> Component.t -> unit
(** @raise Invalid_argument if a device with the same name exists. *)

val add_resistor : t -> name:string -> pos:string -> neg:string -> float -> unit
val add_capacitor : t -> name:string -> pos:string -> neg:string -> float -> unit
val add_inductor : t -> name:string -> pos:string -> neg:string -> float -> unit

val add_vsource :
  t -> name:string -> pos:string -> neg:string -> Component.source -> unit

val add_isource :
  t -> name:string -> pos:string -> neg:string -> Component.source -> unit

val add_pwl_conductance :
  t ->
  name:string ->
  pos:string ->
  neg:string ->
  g_on:float ->
  g_off:float ->
  threshold:float ->
  unit

val has_pwl : t -> bool
(** True when the network contains a piecewise-linear device (it is
    then outside the scope of the linear fixed-matrix ELN engine). *)

val add_vcvs :
  t ->
  name:string ->
  pos:string ->
  neg:string ->
  gain:float ->
  ctrl_pos:string ->
  ctrl_neg:string ->
  unit

val devices : t -> Component.t list
(** In insertion order. *)

val find : t -> string -> Component.t option
val nodes : t -> string list
(** All node names, ground included, sorted. *)

val node_count : t -> int
val device_count : t -> int

val input_signals : t -> string list
(** External input signal names, in first-appearance order, without
    duplicates. *)

val dipole_equations : t -> Eqn.t list
(** One constitutive equation per device, in insertion order — the
    "arbitrary set of constitutive dipole equations" that parameterises
    the abstraction algorithm (§IV). *)

(** {1 Parameter overrides}

    A sweep point is a set of [device.parameter -> value] bindings over
    a fixed structure; these hooks expose the circuit's parameter space
    and apply such bindings without mutating the original circuit. *)

val params : t -> (string * float) list
(** All numeric parameters as [("device.param", value)] pairs, devices
    in insertion order (see {!Component.params} for the names). *)

val override : t -> (string * float) list -> t
(** [override c bindings] is a fresh circuit in which each
    ["device.param"] key is rebound to its value; device order, names
    and topology are preserved, so {!structure_key} is unchanged.
    @raise Invalid_argument on an unknown device, an unknown parameter
    name, or a malformed key (no dot). *)

val structure_key : t -> string
(** A value-free fingerprint of the circuit: ground, device order,
    kinds and connectivity, with every numeric parameter elided. Two
    circuits with equal keys differ at most in parameter values —
    the cache key of the sweep engine's abstraction cache. *)

val diagnose : t -> Amsvp_diag.Diag.finding list
(** Topology lint passes over the elaborated network. Findings carry no
    source spans (the lint driver attaches them via the contribution
    that created each device); [subject] names the offending node or
    device. Codes:
    - [AMS024] — the circuit has no devices;
    - [AMS020] — a node with no path to ground (one finding per node,
      [subject] = node name);
    - [AMS021] — an island of devices none of whose terminals reach
      ground ([subject] = first such device);
    - [AMS022] — a cycle of voltage-defined branches
      (Vsource/VCVS; [subject] = the device closing the loop);
    - [AMS023] — a current-defined branch (Isource/VCCS) with no
      conductive return path, i.e. a current-source cutset. *)

val validate : t -> (unit, string) result
(** Structural checks: at least one device, every node connected to the
    ground component of the graph, no duplicate device names. Now a
    thin wrapper over {!diagnose} that joins error findings into one
    message. *)

val pp : Format.formatter -> t -> unit
