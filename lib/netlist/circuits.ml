module Stimulus = Amsvp_util.Stimulus

type testcase = {
  label : string;
  circuit : Circuit.t;
  output : Expr.var;
  stimuli : (string * Stimulus.t) list;
}

let open_loop_gain = 1.0e5

let square_1ms = Stimulus.square ~period:1.0e-3 ~low:0.0 ~high:1.0
let square_2ms = Stimulus.square ~period:2.0e-3 ~low:0.0 ~high:1.0

let rc_ladder ?(r = 5.0e3) ?(c = 25.0e-9) n =
  if n < 1 then invalid_arg "Circuits.rc_ladder: need at least one stage";
  let ckt = Circuit.create () in
  Circuit.add_vsource ckt ~name:"vin" ~pos:"in" ~neg:"gnd"
    (Component.Input "in");
  let node i = if i = 0 then "in" else if i = n then "out" else Printf.sprintf "n%d" i in
  for i = 1 to n do
    Circuit.add_resistor ckt
      ~name:(Printf.sprintf "r%d" i)
      ~pos:(node (i - 1))
      ~neg:(node i) r;
    Circuit.add_capacitor ckt
      ~name:(Printf.sprintf "c%d" i)
      ~pos:(node i) ~neg:"gnd" c
  done;
  {
    label = Printf.sprintf "RC%d" n;
    circuit = ckt;
    output = Expr.potential "out" "gnd";
    stimuli = [ ("in", square_1ms) ];
  }

let two_input () =
  let ckt = Circuit.create () in
  Circuit.add_vsource ckt ~name:"vin1" ~pos:"in1" ~neg:"gnd"
    (Component.Input "in1");
  Circuit.add_vsource ckt ~name:"vin2" ~pos:"in2" ~neg:"gnd"
    (Component.Input "in2");
  Circuit.add_resistor ckt ~name:"r1" ~pos:"in1" ~neg:"x" 3.0e3;
  Circuit.add_resistor ckt ~name:"r2" ~pos:"in2" ~neg:"x" 14.0e3;
  Circuit.add_resistor ckt ~name:"r3" ~pos:"x" ~neg:"out" 10.0e3;
  (* Ideal inverting op-amp: the output node is driven by a VCVS with a
     large open-loop gain sensed at the virtual-ground node x. *)
  Circuit.add_vcvs ckt ~name:"eop" ~pos:"out" ~neg:"gnd"
    ~gain:(-.open_loop_gain) ~ctrl_pos:"x" ~ctrl_neg:"gnd";
  {
    label = "2IN";
    circuit = ckt;
    output = Expr.potential "out" "gnd";
    stimuli = [ ("in1", square_1ms); ("in2", square_2ms) ];
  }

let opamp () =
  let ckt = Circuit.create () in
  Circuit.add_vsource ckt ~name:"vin" ~pos:"in" ~neg:"gnd"
    (Component.Input "in");
  Circuit.add_resistor ckt ~name:"r1" ~pos:"in" ~neg:"ninv" 400.0;
  (* Feedback network R2 || C1 makes the stage a first-order active
     low-pass filter (the "active filter" of Fig. 2). *)
  Circuit.add_resistor ckt ~name:"r2" ~pos:"ninv" ~neg:"out" 1.6e3;
  Circuit.add_capacitor ckt ~name:"c1" ~pos:"ninv" ~neg:"out" 40.0e-9;
  Circuit.add_resistor ckt ~name:"rin" ~pos:"ninv" ~neg:"gnd" 1.0e6;
  Circuit.add_vcvs ckt ~name:"eop" ~pos:"e" ~neg:"gnd"
    ~gain:(-.open_loop_gain) ~ctrl_pos:"ninv" ~ctrl_neg:"gnd";
  Circuit.add_resistor ckt ~name:"rout" ~pos:"e" ~neg:"out" 20.0;
  {
    label = "OA";
    circuit = ckt;
    output = Expr.potential "out" "gnd";
    stimuli = [ ("in", square_1ms) ];
  }

let rlc_series ?(r = 100.0) ?(l = 10.0e-3) ?(c = 1.0e-6) () =
  let ckt = Circuit.create () in
  Circuit.add_vsource ckt ~name:"vin" ~pos:"in" ~neg:"gnd"
    (Component.Input "in");
  Circuit.add_resistor ckt ~name:"r1" ~pos:"in" ~neg:"n1" r;
  Circuit.add_inductor ckt ~name:"l1" ~pos:"n1" ~neg:"out" l;
  Circuit.add_capacitor ckt ~name:"c1" ~pos:"out" ~neg:"gnd" c;
  {
    label = "RLC";
    circuit = ckt;
    output = Expr.potential "out" "gnd";
    stimuli = [ ("in", square_1ms) ];
  }

let rectifier ?(r = 1.0e3) ?(g_on = 1.0 /. 100.0) ?(g_off = 1e-6) () =
  let ckt = Circuit.create () in
  Circuit.add_vsource ckt ~name:"vin" ~pos:"in" ~neg:"gnd"
    (Component.Input "in");
  Circuit.add_resistor ckt ~name:"r1" ~pos:"in" ~neg:"out" r;
  Circuit.add_pwl_conductance ckt ~name:"d1" ~pos:"out" ~neg:"gnd" ~g_on ~g_off
    ~threshold:0.0;
  {
    label = "RECT";
    circuit = ckt;
    output = Expr.potential "out" "gnd";
    stimuli = [ ("in", Stimulus.sine ~freq:1e3 ~amplitude:1.0 ()) ];
  }

let by_name label =
  match label with
  | "2IN" -> Some (two_input ())
  | "OA" -> Some (opamp ())
  | "RLC" -> Some (rlc_series ())
  | "RECT" -> Some (rectifier ())
  | _ ->
      if String.length label > 2 && String.sub label 0 2 = "RC" then
        match int_of_string_opt (String.sub label 2 (String.length label - 2)) with
        | Some n when n >= 1 -> Some (rc_ladder n)
        | Some _ | None -> None
      else None

let all_paper_cases () =
  [ two_input (); rc_ladder 1; rc_ladder 20; opamp () ]
