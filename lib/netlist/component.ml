type source = Dc of float | Input of string

type kind =
  | Resistor of float
  | Capacitor of float
  | Inductor of float
  | Vsource of source
  | Isource of source
  | Vcvs of { gain : float; ctrl_pos : string; ctrl_neg : string }
  | Vccs of { gm : float; ctrl_pos : string; ctrl_neg : string }
  | Pwl_conductance of { g_on : float; g_off : float; threshold : float }

type t = { name : string; pos : string; neg : string; kind : kind }

let make ~name ~pos ~neg kind =
  if name = "" then invalid_arg "Component.make: empty name";
  if pos = neg then
    invalid_arg
      (Printf.sprintf "Component.make: device %s is a self-loop on node %s"
         name pos);
  { name; pos; neg; kind }

let flow_var d = Expr.flow d.name ""
let potential_var d = Expr.potential d.pos d.neg

let source_expr = function
  | Dc v -> Expr.const v
  | Input u -> Expr.var (Expr.signal u)

let dipole_equation d =
  let vb = Expr.var (potential_var d) and ib = Expr.var (flow_var d) in
  let lhs, rhs =
    match d.kind with
    | Resistor r -> (vb, Expr.scale r ib)
    | Capacitor c -> (ib, Expr.scale c (Expr.Ddt vb))
    | Inductor l -> (vb, Expr.scale l (Expr.Ddt ib))
    | Vsource s -> (vb, source_expr s)
    | Isource s -> (ib, source_expr s)
    | Vcvs { gain; ctrl_pos; ctrl_neg } ->
        (vb, Expr.scale gain (Expr.var (Expr.potential ctrl_pos ctrl_neg)))
    | Vccs { gm; ctrl_pos; ctrl_neg } ->
        (ib, Expr.scale gm (Expr.var (Expr.potential ctrl_pos ctrl_neg)))
    | Pwl_conductance { g_on; g_off; threshold } ->
        ( ib,
          Expr.Cond
            ( Expr.Cmp (Expr.Ge, vb, Expr.const threshold),
              Expr.scale g_on vb,
              Expr.scale g_off vb ) )
  in
  Eqn.make (Eqn.Dipole d.name) ~lhs ~rhs

let is_source d = match d.kind with Vsource _ | Isource _ -> true | _ -> false

let params d =
  match d.kind with
  | Resistor r -> [ ("r", r) ]
  | Capacitor c -> [ ("c", c) ]
  | Inductor l -> [ ("l", l) ]
  | Vsource (Dc v) | Isource (Dc v) -> [ ("dc", v) ]
  | Vsource (Input _) | Isource (Input _) -> []
  | Vcvs { gain; _ } -> [ ("gain", gain) ]
  | Vccs { gm; _ } -> [ ("gm", gm) ]
  | Pwl_conductance { g_on; g_off; threshold } ->
      [ ("g_on", g_on); ("g_off", g_off); ("threshold", threshold) ]

let with_param d p v =
  let unknown () =
    invalid_arg
      (Printf.sprintf "Component.with_param: device %s has no parameter %s"
         d.name p)
  in
  let kind =
    match (d.kind, p) with
    | Resistor _, "r" -> Resistor v
    | Capacitor _, "c" -> Capacitor v
    | Inductor _, "l" -> Inductor v
    | Vsource (Dc _), "dc" -> Vsource (Dc v)
    | Isource (Dc _), "dc" -> Isource (Dc v)
    | Vcvs c, "gain" -> Vcvs { c with gain = v }
    | Vccs c, "gm" -> Vccs { c with gm = v }
    | Pwl_conductance c, "g_on" -> Pwl_conductance { c with g_on = v }
    | Pwl_conductance c, "g_off" -> Pwl_conductance { c with g_off = v }
    | Pwl_conductance c, "threshold" -> Pwl_conductance { c with threshold = v }
    | _ -> unknown ()
  in
  { d with kind }

let structure_tag d =
  let kind =
    match d.kind with
    | Resistor _ -> "R"
    | Capacitor _ -> "C"
    | Inductor _ -> "L"
    | Vsource (Dc _) -> "Vdc"
    | Vsource (Input u) -> "Vin:" ^ u
    | Isource (Dc _) -> "Idc"
    | Isource (Input u) -> "Iin:" ^ u
    | Vcvs { ctrl_pos; ctrl_neg; _ } ->
        Printf.sprintf "E(%s,%s)" ctrl_pos ctrl_neg
    | Vccs { ctrl_pos; ctrl_neg; _ } ->
        Printf.sprintf "G(%s,%s)" ctrl_pos ctrl_neg
    | Pwl_conductance _ -> "PWL"
  in
  Printf.sprintf "%s[%s](%s,%s)" d.name kind d.pos d.neg

let input_signals d =
  match d.kind with
  | Vsource (Input u) | Isource (Input u) -> [ u ]
  | Vsource (Dc _) | Isource (Dc _) | Resistor _ | Capacitor _ | Inductor _
  | Vcvs _ | Vccs _ | Pwl_conductance _ ->
      []

let pp_kind ppf = function
  | Resistor r -> Format.fprintf ppf "R=%g" r
  | Capacitor c -> Format.fprintf ppf "C=%g" c
  | Inductor l -> Format.fprintf ppf "L=%g" l
  | Vsource (Dc v) -> Format.fprintf ppf "V=%g" v
  | Vsource (Input u) -> Format.fprintf ppf "V=input(%s)" u
  | Isource (Dc v) -> Format.fprintf ppf "I=%g" v
  | Isource (Input u) -> Format.fprintf ppf "I=input(%s)" u
  | Vcvs { gain; ctrl_pos; ctrl_neg } ->
      Format.fprintf ppf "VCVS gain=%g ctrl=(%s,%s)" gain ctrl_pos ctrl_neg
  | Vccs { gm; ctrl_pos; ctrl_neg } ->
      Format.fprintf ppf "VCCS gm=%g ctrl=(%s,%s)" gm ctrl_pos ctrl_neg
  | Pwl_conductance { g_on; g_off; threshold } ->
      Format.fprintf ppf "PWL g_on=%g g_off=%g thr=%g" g_on g_off threshold

let pp ppf d =
  Format.fprintf ppf "%s (%s -> %s) %a" d.name d.pos d.neg pp_kind d.kind
