module Json = Amsvp_util.Json

type span_profile = {
  sp_section : string;
  sp_name : string;
  sp_calls : int;
  sp_total_s : float;
  sp_self_s : float;
}

type convergence = {
  cv_steps : int;
  cv_residual_hist : (float * int) list;
  cv_converged_hist : (int * int) list;
  cv_wasted : int;
  cv_total_iters : int;
  cv_max_residual : float;
  cv_max_stress : float;
  cv_singular : int;
  cv_conditioning : int;
}

type cache = {
  ca_points : int;
  ca_hits : int;
  ca_misses : int;
  ca_wall_mean_s : float;
  ca_unhealthy : int;
}

type health = {
  he_warn : int;
  he_error : int;
  he_kinds : (string * int) list;
}

type traffic = {
  tf_runs : int;
  tf_ticks : int;
  tf_reads : int;
  tf_writes : int;
  tf_flops : int;
}

type origin_row = {
  og_origin : string;
  og_events : int;
  og_points : int;
}

type t = {
  r_journal_events : int;
  r_profile : span_profile list;
  r_convergence : convergence option;
  r_cache : cache option;
  r_health : health option;
  r_traffic : traffic option;
  r_origins : origin_row list;
}

(* ---- journal helpers ---- *)

let ev_cat e = Option.value ~default:"" (Json.mem_string "cat" e)
let ev_name e = Option.value ~default:"" (Json.mem_string "name" e)
let ev_sev e = Option.value ~default:"info" (Json.mem_string "sev" e)
let ev_data e = Option.value ~default:(Json.Obj []) (Json.member "data" e)

let data_float k e = Json.mem_float k (ev_data e)
let data_int k e = Option.map int_of_float (Json.mem_float k (ev_data e))
let data_bool k e = Json.mem_bool k (ev_data e)

(* The decade bounds of the solver's residual histogram; counts here
   are per-bucket (not cumulative), which reads better as a bar
   chart. *)
let residual_bounds = [| 1e-15; 1e-12; 1e-9; 1e-6; 1e-3; 1.0; 1e3 |]

let build_convergence events =
  let steps = List.filter (fun e -> ev_cat e = "mna") events in
  let newton_steps = List.filter (fun e -> ev_name e = "newton.step") steps in
  let runs = List.filter (fun e -> ev_name e = "newton.run") steps in
  let singular =
    List.length (List.filter (fun e -> ev_name e = "singular_pivot") steps)
  in
  let conditioning =
    List.length (List.filter (fun e -> ev_name e = "conditioning") steps)
  in
  if newton_steps = [] && runs = [] && singular = 0 then None
  else begin
    let nb = Array.length residual_bounds in
    let hist = Array.make (nb + 1) 0 in
    let conv : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let wasted = ref 0 and max_res = ref 0.0 and max_stress = ref 0.0 in
    List.iter
      (fun e ->
        (match data_float "residual" e with
        | Some r ->
            if r > !max_res then max_res := r;
            let i = ref 0 in
            while !i < nb && r > residual_bounds.(!i) do
              incr i
            done;
            hist.(!i) <- hist.(!i) + 1
        | None -> ());
        (match data_int "converged_at" e with
        | Some k ->
            Hashtbl.replace conv k
              (1 + Option.value ~default:0 (Hashtbl.find_opt conv k))
        | None -> ());
        (match data_int "wasted" e with
        | Some w -> wasted := !wasted + w
        | None -> ());
        match data_float "stress" e with
        | Some s -> if s > !max_stress then max_stress := s
        | None -> ())
      newton_steps;
    let total_iters =
      List.fold_left
        (fun acc e -> acc + Option.value ~default:0 (data_int "total_iters" e))
        0 runs
    in
    let cv_residual_hist =
      List.init (nb + 1) (fun i ->
          ((if i < nb then residual_bounds.(i) else infinity), hist.(i)))
    in
    let cv_converged_hist =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) conv []
      |> List.sort Stdlib.compare
    in
    Some
      {
        cv_steps = List.length newton_steps;
        cv_residual_hist;
        cv_converged_hist;
        cv_wasted = !wasted;
        cv_total_iters = total_iters;
        cv_max_residual = !max_res;
        cv_max_stress = !max_stress;
        cv_singular = singular;
        cv_conditioning = conditioning;
      }
  end

let build_cache events =
  let pts =
    List.filter (fun e -> ev_cat e = "sweep" && ev_name e = "point") events
  in
  if pts = [] then None
  else begin
    let hits = ref 0 and unhealthy = ref 0 and wall = ref 0.0 in
    List.iter
      (fun e ->
        if data_bool "cached" e = Some true then incr hits;
        if data_bool "healthy" e = Some false then incr unhealthy;
        wall := !wall +. Option.value ~default:0.0 (data_float "wall_s" e))
      pts;
    let n = List.length pts in
    Some
      {
        ca_points = n;
        ca_hits = !hits;
        ca_misses = n - !hits;
        ca_wall_mean_s = !wall /. float_of_int n;
        ca_unhealthy = !unhealthy;
      }
  end

let build_health events =
  let flagged =
    List.filter (fun e -> ev_sev e = "warn" || ev_sev e = "error") events
  in
  if flagged = [] then None
  else begin
    let warn = ref 0 and error = ref 0 in
    let kinds : (string, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        if ev_sev e = "error" then incr error else incr warn;
        let k = ev_cat e ^ "/" ^ ev_name e in
        Hashtbl.replace kinds k
          (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k)))
      flagged;
    let he_kinds =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
      |> List.sort Stdlib.compare
    in
    Some { he_warn = !warn; he_error = !error; he_kinds }
  end

let build_traffic events =
  let runs =
    List.filter (fun e -> ev_cat e = "sf" && ev_name e = "run") events
  in
  if runs = [] then None
  else begin
    let ticks = ref 0 and reads = ref 0 and writes = ref 0 and flops = ref 0 in
    List.iter
      (fun e ->
        let t = Option.value ~default:0 (data_int "ticks" e) in
        let per k = t * Option.value ~default:0 (data_int k e) in
        ticks := !ticks + t;
        reads := !reads + per "reads_per_tick";
        writes := !writes + per "writes_per_tick";
        flops := !flops + per "flops_per_tick")
      runs;
    Some
      {
        tf_runs = List.length runs;
        tf_ticks = !ticks;
        tf_reads = !reads;
        tf_writes = !writes;
        tf_flops = !flops;
      }
  end

(* Per-process breakdown of a merged journal. A single-process journal
   (no event carries an origin tag) yields [] so old reports are
   unchanged. *)
let build_origins events =
  let ev_origin e = Option.value ~default:"" (Json.mem_string "origin" e) in
  if List.for_all (fun e -> ev_origin e = "") events then []
  else begin
    let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let o = ev_origin e in
        let evs, pts = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl o) in
        let is_point = ev_cat e = "sweep" && ev_name e = "point" in
        Hashtbl.replace tbl o (evs + 1, if is_point then pts + 1 else pts))
      events;
    Hashtbl.fold
      (fun o (evs, pts) acc ->
        {
          og_origin = (if o = "" then "main" else o);
          og_events = evs;
          og_points = pts;
        }
        :: acc)
      tbl []
    |> List.sort (fun a b -> Stdlib.compare a.og_origin b.og_origin)
  end

let build_profile ~top bench =
  match bench with
  | None -> []
  | Some doc ->
      let spans =
        List.concat_map
          (fun sec ->
            let section =
              Option.value ~default:"" (Json.mem_string "section" sec)
            in
            List.map
              (fun sp ->
                {
                  sp_section = section;
                  sp_name =
                    Option.value ~default:"" (Json.mem_string "name" sp);
                  sp_calls =
                    int_of_float
                      (Option.value ~default:0.0 (Json.mem_float "calls" sp));
                  sp_total_s =
                    Option.value ~default:0.0 (Json.mem_float "total_s" sp);
                  sp_self_s =
                    Option.value ~default:0.0 (Json.mem_float "self_s" sp);
                })
              (Json.mem_list "spans" sec))
          (Json.mem_list "sections" doc)
      in
      let sorted =
        List.sort (fun a b -> Stdlib.compare b.sp_self_s a.sp_self_s) spans
      in
      List.filteri (fun i _ -> i < top) sorted

let build ?(top = 15) ?(journal = []) ?bench () =
  {
    r_journal_events = List.length journal;
    r_profile = build_profile ~top bench;
    r_convergence = build_convergence journal;
    r_cache = build_cache journal;
    r_health = build_health journal;
    r_traffic = build_traffic journal;
    r_origins = build_origins journal;
  }

(* ---- text rendering ---- *)

let bar n max_n width =
  if max_n <= 0 then ""
  else String.make (max 0 (n * width / max_n)) '#'

let bound_label b =
  if b = infinity then ">1e3" else Printf.sprintf "<=%.0e" b

let to_text r =
  let b = Buffer.create 2048 in
  let line () = Buffer.add_string b (String.make 72 '-' ^ "\n") in
  Buffer.add_string b "amsvp run report\n";
  line ();
  if r.r_journal_events > 0 then
    Printf.bprintf b "journal: %d event(s)\n" r.r_journal_events;
  if r.r_profile <> [] then begin
    Printf.bprintf b "\nSELF-TIME PROFILE (top %d spans by self time)\n"
      (List.length r.r_profile);
    Printf.bprintf b "  %-10s %-28s %8s %12s %12s\n" "section" "span" "calls"
      "total(s)" "self(s)";
    List.iter
      (fun sp ->
        Printf.bprintf b "  %-10s %-28s %8d %12.4f %12.4f\n" sp.sp_section
          sp.sp_name sp.sp_calls sp.sp_total_s sp.sp_self_s)
      r.r_profile
  end;
  (match r.r_convergence with
  | None -> ()
  | Some cv ->
      Printf.bprintf b "\nCONVERGENCE (%d newton.step event(s))\n" cv.cv_steps;
      let max_n =
        List.fold_left (fun m (_, n) -> max m n) 0 cv.cv_residual_hist
      in
      List.iter
        (fun (bound, n) ->
          if n > 0 || bound <= 1.0 then
            Printf.bprintf b "  residual %-8s %8d %s\n" (bound_label bound) n
              (bar n max_n 40))
        cv.cv_residual_hist;
      List.iter
        (fun (k, n) ->
          if k = 0 then
            Printf.bprintf b "  never converged within budget: %d step(s)\n" n
          else Printf.bprintf b "  converged at iteration %d: %d step(s)\n" k n)
        cv.cv_converged_hist;
      if cv.cv_total_iters > 0 then
        Printf.bprintf b
          "  wasted Newton passes: %d of %d (%.1f%%) — budget an early-exit \
           would save\n"
          cv.cv_wasted cv.cv_total_iters
          (100.0 *. float_of_int cv.cv_wasted /. float_of_int cv.cv_total_iters)
      else if cv.cv_wasted > 0 then
        Printf.bprintf b "  wasted Newton passes: %d\n" cv.cv_wasted;
      Printf.bprintf b "  max residual: %.3e   max dt-stress: %.3f\n"
        cv.cv_max_residual cv.cv_max_stress;
      if cv.cv_singular > 0 then
        Printf.bprintf b "  SINGULAR PIVOTS: %d\n" cv.cv_singular;
      if cv.cv_conditioning > 0 then
        Printf.bprintf b "  conditioning warnings: %d\n" cv.cv_conditioning);
  (match r.r_cache with
  | None -> ()
  | Some ca ->
      Printf.bprintf b "\nSWEEP CACHE\n";
      Printf.bprintf b
        "  %d point(s): %d replayed / %d full (%.1f%% hit rate), mean %.4f \
         s/point\n"
        ca.ca_points ca.ca_hits ca.ca_misses
        (100.0 *. float_of_int ca.ca_hits /. float_of_int (max 1 ca.ca_points))
        ca.ca_wall_mean_s;
      if ca.ca_unhealthy > 0 then
        Printf.bprintf b "  UNHEALTHY points: %d\n" ca.ca_unhealthy);
  (match r.r_traffic with
  | None -> ()
  | Some tf ->
      Printf.bprintf b "\nSIGNAL-FLOW TRAFFIC\n";
      Printf.bprintf b
        "  %d run(s), %d ticks: %d reg reads, %d reg writes, %d flops\n"
        tf.tf_runs tf.tf_ticks tf.tf_reads tf.tf_writes tf.tf_flops);
  if r.r_origins <> [] then begin
    Printf.bprintf b "\nPER-ORIGIN (%d process(es))\n"
      (List.length r.r_origins);
    Printf.bprintf b "  %-20s %10s %10s\n" "origin" "events" "points";
    List.iter
      (fun og ->
        Printf.bprintf b "  %-20s %10d %10d\n" og.og_origin og.og_events
          og.og_points)
      r.r_origins
  end;
  (match r.r_health with
  | None -> ()
  | Some he ->
      Printf.bprintf b "\nHEALTH ROLLUP\n";
      Printf.bprintf b "  %d warning(s), %d error(s)\n" he.he_warn he.he_error;
      List.iter
        (fun (k, n) -> Printf.bprintf b "  %-32s %d\n" k n)
        he.he_kinds);
  if
    r.r_profile = [] && r.r_convergence = None && r.r_cache = None
    && r.r_traffic = None && r.r_health = None && r.r_origins = []
  then Buffer.add_string b "nothing to report (empty journal, no bench)\n";
  Buffer.contents b

(* ---- JSON rendering ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v
  else if Float.is_nan v then "\"NaN\""
  else if v > 0.0 then "\"Infinity\""
  else "\"-Infinity\""

let to_json r =
  let b = Buffer.create 2048 in
  Printf.bprintf b "{\n  \"journal_events\": %d" r.r_journal_events;
  if r.r_profile <> [] then begin
    Buffer.add_string b ",\n  \"profile\": [";
    List.iteri
      (fun i sp ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b
          "\n    {\"section\": \"%s\", \"name\": \"%s\", \"calls\": %d, \
           \"total_s\": %s, \"self_s\": %s}"
          (json_escape sp.sp_section) (json_escape sp.sp_name) sp.sp_calls
          (json_float sp.sp_total_s) (json_float sp.sp_self_s))
      r.r_profile;
    Buffer.add_string b "\n  ]"
  end;
  (match r.r_convergence with
  | None -> ()
  | Some cv ->
      Printf.bprintf b
        ",\n  \"convergence\": {\n    \"steps\": %d,\n    \"wasted_iters\": \
         %d,\n    \"total_iters\": %d,\n    \"max_residual\": %s,\n    \
         \"max_stress\": %s,\n    \"singular_pivots\": %d,\n    \
         \"conditioning_warnings\": %d,\n    \"residual_hist\": ["
        cv.cv_steps cv.cv_wasted cv.cv_total_iters
        (json_float cv.cv_max_residual)
        (json_float cv.cv_max_stress)
        cv.cv_singular cv.cv_conditioning;
      List.iteri
        (fun i (bound, n) ->
          if i > 0 then Buffer.add_string b ", ";
          Printf.bprintf b "{\"le\": %s, \"count\": %d}"
            (if bound = infinity then "\"+Inf\"" else json_float bound)
            n)
        cv.cv_residual_hist;
      Buffer.add_string b "],\n    \"converged_at\": [";
      List.iteri
        (fun i (k, n) ->
          if i > 0 then Buffer.add_string b ", ";
          Printf.bprintf b "{\"iteration\": %d, \"count\": %d}" k n)
        cv.cv_converged_hist;
      Buffer.add_string b "]\n  }");
  (match r.r_cache with
  | None -> ()
  | Some ca ->
      Printf.bprintf b
        ",\n  \"cache\": {\"points\": %d, \"hits\": %d, \"misses\": %d, \
         \"wall_mean_s\": %s, \"unhealthy\": %d}"
        ca.ca_points ca.ca_hits ca.ca_misses
        (json_float ca.ca_wall_mean_s)
        ca.ca_unhealthy);
  (match r.r_traffic with
  | None -> ()
  | Some tf ->
      Printf.bprintf b
        ",\n  \"traffic\": {\"runs\": %d, \"ticks\": %d, \"reads\": %d, \
         \"writes\": %d, \"flops\": %d}"
        tf.tf_runs tf.tf_ticks tf.tf_reads tf.tf_writes tf.tf_flops);
  if r.r_origins <> [] then begin
    Buffer.add_string b ",\n  \"origins\": [";
    List.iteri
      (fun i og ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b
          "\n    {\"origin\": \"%s\", \"events\": %d, \"points\": %d}"
          (json_escape og.og_origin) og.og_events og.og_points)
      r.r_origins;
    Buffer.add_string b "\n  ]"
  end;
  (match r.r_health with
  | None -> ()
  | Some he ->
      Printf.bprintf b
        ",\n  \"health\": {\"warnings\": %d, \"errors\": %d, \"kinds\": {"
        he.he_warn he.he_error;
      List.iteri
        (fun i (k, n) ->
          if i > 0 then Buffer.add_string b ", ";
          Printf.bprintf b "\"%s\": %d" (json_escape k) n)
        he.he_kinds;
      Buffer.add_string b "}}");
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* ---- perf comparison ---- *)

type regression = {
  g_where : string;
  g_metric : string;
  g_baseline : float;
  g_current : float;
  g_ratio : float;
}

(* Below this baseline value a relative comparison measures scheduler
   noise, not the code under test. *)
let min_comparable_s = 1e-3

let row_key r =
  Printf.sprintf "rows/%s/%s/%s/%s"
    (Option.value ~default:"" (Json.mem_string "table" r))
    (Option.value ~default:"" (Json.mem_string "comp" r))
    (Option.value ~default:"" (Json.mem_string "target" r))
    (Option.value ~default:"" (Json.mem_string "method" r))

(* (key, metric) -> value for every comparable number of a bench
   document. *)
let metrics_of doc =
  let acc = ref [] in
  List.iter
    (fun r ->
      match Json.mem_float "time_s" r with
      | Some v -> acc := ((row_key r, "time_s"), v) :: !acc
      | None -> ())
    (Json.mem_list "rows" doc);
  List.iter
    (fun sec ->
      let section = Option.value ~default:"" (Json.mem_string "section" sec) in
      List.iter
        (fun sp ->
          let name = Option.value ~default:"" (Json.mem_string "name" sp) in
          let key = Printf.sprintf "sections/%s/%s" section name in
          (match Json.mem_float "self_s" sp with
          | Some v -> acc := ((key, "self_s"), v) :: !acc
          | None -> ());
          match Json.mem_float "total_s" sp with
          | Some v -> acc := ((key, "total_s"), v) :: !acc
          | None -> ())
        (Json.mem_list "spans" sec))
    (Json.mem_list "sections" doc);
  !acc

let compared_metrics ~baseline ~current =
  let cur = metrics_of current in
  List.length
    (List.filter
       (fun (k, v) -> v >= min_comparable_s && List.mem_assoc k cur)
       (metrics_of baseline))

let compare_bench ~baseline ~current ~threshold =
  let base = metrics_of baseline in
  let cur = metrics_of current in
  let regs =
    List.filter_map
      (fun ((key, metric), bv) ->
        if bv < min_comparable_s then None
        else
          match List.assoc_opt (key, metric) cur with
          | Some cv when cv > bv *. (1.0 +. threshold) ->
              Some
                {
                  g_where = key;
                  g_metric = metric;
                  g_baseline = bv;
                  g_current = cv;
                  g_ratio = cv /. bv;
                }
          | Some _ | None -> None)
      base
  in
  List.sort (fun a b -> Stdlib.compare b.g_ratio a.g_ratio) regs

let regressions_to_text ~threshold ~compared regs =
  let b = Buffer.create 512 in
  Printf.bprintf b "perf compare: threshold +%.0f%%, %d metric(s) compared\n"
    (threshold *. 100.0) compared;
  if regs = [] then Buffer.add_string b "OK: no per-section regressions\n"
  else
    List.iter
      (fun g ->
        Printf.bprintf b
          "REGRESSION %s %s: %.4fs -> %.4fs (%.2fx, +%.0f%%)\n" g.g_where
          g.g_metric g.g_baseline g.g_current g.g_ratio
          ((g.g_ratio -. 1.0) *. 100.0))
      regs;
  Buffer.contents b
