(** Run reports: render a run's journal (JSONL) and bench results
    (BENCH_results.json) into a self-time profile, convergence
    histograms, cache hit rates and a health rollup — and compare two
    bench result files for per-section performance regressions.

    This is the reading side of the observability layer: everything
    here consumes the documents the sinks write; nothing here touches
    the live registries. *)

module Json = Amsvp_util.Json

(** {1 Building a report} *)

type span_profile = {
  sp_section : string;
  sp_name : string;
  sp_calls : int;
  sp_total_s : float;
  sp_self_s : float;
}

type convergence = {
  cv_steps : int;  (** [mna]/[newton.step] events seen *)
  cv_residual_hist : (float * int) list;
      (** non-cumulative counts per decade upper bound; the final
          entry's bound is [infinity] *)
  cv_converged_hist : (int * int) list;
      (** converged-at-iteration [k] -> count; [0] = never converged
          within the budget *)
  cv_wasted : int;  (** Newton passes taken after convergence *)
  cv_total_iters : int;  (** total passes from [newton.run] events *)
  cv_max_residual : float;
  cv_max_stress : float;
  cv_singular : int;  (** singular-pivot events *)
  cv_conditioning : int;  (** conditioning warnings *)
}

type cache = {
  ca_points : int;
  ca_hits : int;
  ca_misses : int;
  ca_wall_mean_s : float;
  ca_unhealthy : int;
}

type health = {
  he_warn : int;
  he_error : int;
  he_kinds : (string * int) list;  (** ["cat/name"] -> count, sorted *)
}

type traffic = {
  tf_runs : int;
  tf_ticks : int;
  tf_reads : int;  (** register reads, summed over runs x ticks *)
  tf_writes : int;
  tf_flops : int;
}

type origin_row = {
  og_origin : string;
      (** journal origin tag; untagged events render as ["main"] *)
  og_events : int;
  og_points : int;  (** [sweep]/[point] events from this process *)
}

type t = {
  r_journal_events : int;
  r_profile : span_profile list;  (** sorted by self time, descending *)
  r_convergence : convergence option;
  r_cache : cache option;
  r_health : health option;
  r_traffic : traffic option;
  r_origins : origin_row list;
      (** per-process breakdown of a merged multi-process journal,
          sorted by origin; [[]] when no event carries an origin tag *)
}

val build : ?top:int -> ?journal:Json.t list -> ?bench:Json.t -> unit -> t
(** Assemble a report from whichever inputs are at hand: [journal] is
    a parsed journal (one {!Json.t} per JSONL line), [bench] a parsed
    BENCH_results.json. [top] bounds the profile length (default 15).
    Sections whose input is absent are [None]/empty. *)

val to_text : t -> string
(** Human-readable report with ASCII histograms. *)

val to_json : t -> string
(** The same report as a JSON document. *)

(** {1 Comparing runs} *)

type regression = {
  g_where : string;  (** e.g. ["sections/table1/mna.spice_like"] *)
  g_metric : string;  (** ["self_s"], ["total_s"] or ["time_s"] *)
  g_baseline : float;
  g_current : float;
  g_ratio : float;  (** current / baseline *)
}

val compare_bench :
  baseline:Json.t -> current:Json.t -> threshold:float -> regression list
(** Per-section regression check between two BENCH_results.json
    documents: every bench row ([time_s], keyed by
    table/comp/target/method) and every section span ([self_s] and
    [total_s]) present in both documents is compared, and entries where
    [current > baseline * (1 + threshold)] are returned, worst ratio
    first. Metrics below 1 ms in the baseline are skipped — at that
    scale the comparison would measure scheduler noise, not the code.
    [threshold] is a fraction (0.15 = 15%). *)

val compared_metrics : baseline:Json.t -> current:Json.t -> int
(** How many metrics {!compare_bench} would examine — present in both
    documents and above the noise floor. *)

val regressions_to_text :
  threshold:float -> compared:int -> regression list -> string
(** Render a {!compare_bench} outcome, including the all-clear form.
    [compared] is the number of metrics examined. *)
