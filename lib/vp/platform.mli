(** The complete smart-system virtual platform of Table III.

    Digital side: the MIPS ISS running a polling/IO program out of RAM,
    a UART and an ADC bridge on the APB bus. Analog side: one of the
    paper's six integration bindings. The digital and analog sides
    advance together to [t_stop]; the run reports simulation statistics
    and the UART output so correctness is observable end-to-end.

    Bindings (one per Table III row):
    - [Cosim { rtl_grain = true; _ }] — Verilog-AMS co-simulation with
      the VP in Verilog: the digital side is clock-signal driven at RTL
      grain, the analog side is the SPICE-like stepper in a separate
      solver, synchronised in lock-step with value marshalling at every
      analog timestep (the Questa-ADMS cost structure).
    - [Cosim { rtl_grain = false; _ }] — same co-simulation with the
      VP in SystemC (lighter digital processes).
    - [Eln] — the linear network solved in-kernel (SystemC-AMS/ELN).
    - [Tdf] — the abstracted model in a TDF cluster (SystemC-AMS/TDF).
    - [De_model] — the abstracted model as a DE process (SystemC-DE).
    - [Cpp] — the whole platform as a plain loop, no kernel ("C++"). *)

type analog_binding =
  | Cosim of {
      rtl_grain : bool;
      substeps : int;
      iterations : int;
      fidelity : [ `Paper | `Fast ];
          (** solver cost model of the analog stepper: [`Paper] is the
              faithful re-stamp/re-factor SPICE structure, [`Fast]
              reuses sparse factors with Newton early-exit (see
              {!Amsvp_mna.Engine.spice_like}) *)
    }
  | Eln
  | Tdf
  | De_model
  | Cpp

val binding_label : analog_binding -> string
(** Row labels as in Table III. *)

type result = {
  uart_output : string;
  instructions : int;
  interrupts : int;  (** external interrupts taken by the CPU *)
  bus_transfers : int;
  analog_samples : int;
  cosim_syncs : int;  (** lock-step exchanges (0 for integrated rows) *)
  trace : Amsvp_util.Trace.t;  (** analog output as sampled by the ADC *)
  de_stats : Amsvp_sysc.De.stats option;
}

val default_program : string
(** Polling firmware: waits for fresh ADC samples, accumulates them and
    transmits a byte on the UART every 256 samples. *)

val run :
  ?cpu_hz:float ->
  ?asm_src:string ->
  ?engine:Amsvp_sf.Sfprogram.Runner.engine ->
  testcase:Amsvp_netlist.Circuits.testcase ->
  program:Amsvp_sf.Sfprogram.t option ->
  binding:analog_binding ->
  dt:float ->
  t_stop:float ->
  unit ->
  result
(** [program] is required for the [Tdf], [De_model] and [Cpp] bindings
    (the abstracted model); [Cosim]/[Eln] simulate the conservative
    circuit directly. [engine] selects the signal-flow execution
    engine for those bindings (default: register bytecode).
    @raise Invalid_argument on a missing program or bad parameters. *)
