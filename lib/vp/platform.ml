module De = Amsvp_sysc.De
module Tdf_moc = Amsvp_sysc.Tdf
module Engine = Amsvp_mna.Engine
module Circuits = Amsvp_netlist.Circuits
module Sfprogram = Amsvp_sf.Sfprogram
module Trace = Amsvp_util.Trace
module Obs = Amsvp_obs.Obs

let c_instructions =
  Obs.Counter.make ~help:"ISS instructions retired"
    "amsvp_vp_instructions_retired_total"

let c_interrupts =
  Obs.Counter.make ~help:"interrupts taken by the ISS"
    "amsvp_vp_interrupts_total"

let c_bus_transfers =
  Obs.Counter.make ~help:"bus read/write transactions"
    "amsvp_vp_bus_transfers_total"

let c_adc_samples =
  Obs.Counter.make ~help:"analog samples pushed into the ADC"
    "amsvp_vp_adc_samples_total"

let c_cosim_syncs =
  Obs.Counter.make ~help:"co-simulation channel synchronisations"
    "amsvp_vp_cosim_syncs_total"

let c_uart_bytes =
  Obs.Counter.make ~help:"bytes received on the UART"
    "amsvp_vp_uart_bytes_total"

type analog_binding =
  | Cosim of {
      rtl_grain : bool;
      substeps : int;
      iterations : int;
      fidelity : [ `Paper | `Fast ];
    }
  | Eln
  | Tdf
  | De_model
  | Cpp

let binding_label = function
  | Cosim { rtl_grain = true; _ } -> "Verilog-AMS / Verilog VP (co-sim)"
  | Cosim { rtl_grain = false; _ } -> "Verilog-AMS / SystemC VP (co-sim)"
  | Eln -> "SC-AMS/ELN"
  | Tdf -> "SC-AMS/TDF"
  | De_model -> "SC-DE"
  | Cpp -> "C++"

type result = {
  uart_output : string;
  instructions : int;
  interrupts : int;
  bus_transfers : int;
  analog_samples : int;
  cosim_syncs : int;
  trace : Trace.t;
  de_stats : De.stats option;
}

let ram_base = 0x0000_0000
let uart_base = 0x1000_0000
let adc_base = 0x1000_1000

let default_program =
  Printf.sprintf
    {asm|
        li   $t0, 0x%08x      # ADC base
        li   $t1, 0x%08x      # UART base
        li   $s0, 0             # last sample sequence number
        li   $s1, 0             # accumulator
loop:
        lw   $t2, 4($t0)        # sample sequence number
        beq  $t2, $s0, loop     # busy-wait for a fresh sample
        move $s0, $t2
        lw   $t3, 0($t0)        # sample value (microvolts)
        addu $s1, $s1, $t3
        andi $t4, $t2, 255
        bne  $t4, $zero, loop
        srl  $t5, $s1, 8        # every 256 samples: report a byte
        andi $t5, $t5, 255
        sw   $t5, 0($t1)        # UART transmit
        j    loop
|asm}
    adc_base uart_base

(* Build the bus with RAM, ADC and the loaded firmware; the UART
   flavour (transaction-level or bit-serial RTL) is attached by the
   caller. *)
let make_digital asm_src =
  let bus = Bus.create () in
  Bus.Ram.attach bus ~base:ram_base ~size_words:16384;
  let adc = Bus.Adc.attach bus ~base:adc_base in
  let image = Asm.assemble ~base:ram_base asm_src in
  Bus.Ram.load bus ~base:ram_base image;
  let cpu = Iss.create ~pc:ram_base (Bus.iss_bus bus) in
  (bus, adc, cpu)

(* One serial bit on the RTL UART line (1 us: a frame comfortably fits
   between the firmware's reporting instants). *)
let uart_bit_ps = 1_000_000

let stimuli_values stims t dst =
  for i = 0 to Array.length stims - 1 do
    dst.(i) <- stims.(i) t
  done

(* The co-simulation boundary: values cross between the two simulators
   through explicit serialisation, as over the Questa-ADMS lock-step
   channel. *)
module Channel = struct
  type t = { mutable syncs : int }

  let create () = { syncs = 0 }

  let exchange ch (time : float) (values : float array) : float array =
    ch.syncs <- ch.syncs + 1;
    let packet = Marshal.to_string (time, values) [] in
    let _, decoded = (Marshal.from_string packet 0 : float * float array) in
    decoded
end

let run ?(cpu_hz = 20.0e6) ?(asm_src = default_program) ?engine
    ~(testcase : Circuits.testcase) ~program ~binding ~dt ~t_stop () =
  if dt <= 0.0 || t_stop < dt then invalid_arg "Platform.run: bad timing";
  Obs.with_span ~cat:"vp"
    ~args:
      [
        ("binding", binding_label binding);
        ("testcase", testcase.Circuits.label);
      ]
    "vp.run"
  @@ fun () ->
  let bus, adc, cpu = make_digital asm_src in
  let nsteps = int_of_float (Float.round (t_stop /. dt)) in
  let trace = Trace.create ~capacity:(nsteps + 1) () in
  let stims = Array.of_list (List.map snd testcase.Circuits.stimuli) in
  let input_names = List.map fst testcase.Circuits.stimuli in
  let inputs = Array.make (Array.length stims) 0.0 in
  let cosim_syncs = ref 0 in
  let finish ?de_stats ~uart_output () =
    Obs.Counter.add c_instructions (Iss.instructions_retired cpu);
    Obs.Counter.add c_interrupts (Iss.interrupts_taken cpu);
    Obs.Counter.add c_bus_transfers (Bus.transfers bus);
    Obs.Counter.add c_adc_samples (Bus.Adc.samples_pushed adc);
    Obs.Counter.add c_cosim_syncs !cosim_syncs;
    Obs.Counter.add c_uart_bytes (String.length uart_output);
    {
      uart_output;
      instructions = Iss.instructions_retired cpu;
      interrupts = Iss.interrupts_taken cpu;
      bus_transfers = Bus.transfers bus;
      analog_samples = Bus.Adc.samples_pushed adc;
      cosim_syncs = !cosim_syncs;
      trace;
      de_stats;
    }
  in
  let require_program () =
    match program with
    | Some p -> p
    | None -> invalid_arg "Platform.run: this binding needs an abstracted program"
  in
  let tlm_uart = ref None in
  let attach_tlm_uart () = tlm_uart := Some (Bus.Uart.attach bus ~base:uart_base) in
  match binding with
  | Cpp ->
      (* Whole platform as one compiled loop: no simulation kernel. *)
      attach_tlm_uart ();
      let p = require_program () in
      let order =
        Array.of_list
          (List.map
             (fun n -> List.assoc n testcase.Circuits.stimuli)
             p.Sfprogram.inputs)
      in
      let runner = Sfprogram.Runner.create ?engine p in
      let instr_per_step =
        max 1 (int_of_float (Float.round (cpu_hz *. dt)))
      in
      Trace.add trace ~time:0.0 ~value:0.0;
      for step = 1 to nsteps do
        let t = float_of_int step *. dt in
        stimuli_values order t inputs;
        Sfprogram.Runner.step runner ~inputs;
        let out = Sfprogram.Runner.output runner 0 in
        Bus.Adc.set_sample adc ~volts:out;
        Trace.add trace ~time:t ~value:out;
        for _ = 1 to instr_per_step do
          Iss.set_irq cpu (Bus.Adc.irq_pending adc);
          Iss.step cpu
        done
      done;
      let uart = Option.get !tlm_uart in
      finish ~uart_output:(Bus.Uart.output uart) ()
  | Eln | Tdf | De_model | Cosim _ ->
      let kernel = De.create () in
      let dt_ps = De.ps_of_seconds dt in
      let until_ps = De.ps_of_seconds t_stop in
      let cycle_ps =
        max 1 (int_of_float (Float.round (1e12 /. cpu_hz)))
      in
      (* Digital side. *)
      let rtl_grain =
        match binding with Cosim { rtl_grain; _ } -> rtl_grain | _ -> false
      in
      (* UART flavour: the Verilog-grain platform transmits real 8N1
         frames over a serial line (bit-accurate RTL model); the
         SystemC-grain platforms use the transaction-level UART. *)
      let rtl_uart =
        if rtl_grain then
          Some (Uart_rtl.attach kernel bus ~base:uart_base ~bit_ps:uart_bit_ps)
        else begin
          attach_tlm_uart ();
          None
        end
      in
      (if rtl_grain then begin
         (* RTL grain: an explicit clock signal toggles through the
            kernel's request/update machinery; the CPU and a bus
            monitor are separate processes sensitive to the clock
            edge. *)
         let clk = De.Signal.bool_signal kernel ~name:"clk" false in
         let clk_ev = De.Event.create kernel "clkgen" in
         let gen =
           De.spawn kernel ~name:"clkgen" (fun () ->
               De.Signal.write clk (not (De.Signal.read clk));
               if De.now_ps kernel + (cycle_ps / 2) <= until_ps then
                 De.Event.notify_delayed clk_ev ~delay_ps:(cycle_ps / 2))
         in
         De.Event.sensitize gen clk_ev;
         De.Event.notify_delayed clk_ev ~delay_ps:(cycle_ps / 2);
         let cpu_proc =
           De.spawn kernel ~name:"cpu" (fun () ->
               if De.Signal.read clk then begin
                 Iss.set_irq cpu (Bus.Adc.irq_pending adc);
                 Iss.step cpu
               end)
         in
         De.Event.sensitize cpu_proc (De.Signal.change_event clk);
         let monitor =
           De.spawn kernel ~name:"bus_monitor" (fun () -> ignore (Bus.transfers bus))
         in
         De.Event.sensitize monitor (De.Signal.change_event clk)
       end
       else begin
         (* SystemC VP grain: one self-scheduled CPU process per cycle. *)
         let cpu_ev = De.Event.create kernel "cpu.tick" in
         let cpu_proc =
           De.spawn kernel ~name:"cpu" (fun () ->
               Iss.set_irq cpu (Bus.Adc.irq_pending adc);
               Iss.step cpu;
               if De.now_ps kernel + cycle_ps <= until_ps then
                 De.Event.notify_delayed cpu_ev ~delay_ps:cycle_ps)
         in
         De.Event.sensitize cpu_proc cpu_ev;
         De.Event.notify_delayed cpu_ev ~delay_ps:cycle_ps
       end);
      (* Analog side. *)
      Trace.add trace ~time:0.0 ~value:0.0;
      (match binding with
      | Cosim { substeps; iterations; fidelity; _ } ->
          let stepper =
            Engine.Spice_stepper.create ~substeps ~iterations ~fidelity
              testcase.Circuits.circuit ~inputs:input_names
              ~output:testcase.Circuits.output ~dt
          in
          let channel = Channel.create () in
          let tick = De.Event.create kernel "cosim.tick" in
          (* Stimuli sampled at exact step multiples; see Wrap. *)
          let step_index = ref 0 in
          let proc =
            De.spawn kernel ~name:"cosim" (fun () ->
                incr step_index;
                let t = float_of_int !step_index *. dt in
                stimuli_values stims t inputs;
                (* Digital -> analog hand-off. *)
                let remote_inputs = Channel.exchange channel t inputs in
                let out = Engine.Spice_stepper.step stepper ~input_values:remote_inputs in
                (* Analog -> digital hand-off. *)
                let back = Channel.exchange channel t [| out |] in
                Bus.Adc.set_sample adc ~volts:back.(0);
                Trace.add trace ~time:t ~value:back.(0);
                if De.now_ps kernel + dt_ps <= until_ps then
                  De.Event.notify_delayed tick ~delay_ps:dt_ps)
          in
          De.Event.sensitize proc tick;
          De.Event.notify_delayed tick ~delay_ps:dt_ps;
          De.run_until kernel ~ps:until_ps;
          cosim_syncs := channel.Channel.syncs
      | Eln ->
          let stepper =
            Engine.Eln_stepper.create testcase.Circuits.circuit
              ~inputs:input_names ~output:testcase.Circuits.output ~dt
          in
          let tick = De.Event.create kernel "eln.tick" in
          let step_index = ref 0 in
          let proc =
            De.spawn kernel ~name:"eln" (fun () ->
                incr step_index;
                let t = float_of_int !step_index *. dt in
                stimuli_values stims t inputs;
                let out = Engine.Eln_stepper.step stepper ~input_values:inputs in
                Bus.Adc.set_sample adc ~volts:out;
                Trace.add trace ~time:t ~value:out;
                if De.now_ps kernel + dt_ps <= until_ps then
                  De.Event.notify_delayed tick ~delay_ps:dt_ps)
          in
          De.Event.sensitize proc tick;
          De.Event.notify_delayed tick ~delay_ps:dt_ps;
          De.run_until kernel ~ps:until_ps
      | De_model ->
          let p = require_program () in
          let order =
            Array.of_list
              (List.map
                 (fun n -> List.assoc n testcase.Circuits.stimuli)
                 p.Sfprogram.inputs)
          in
          let runner = Sfprogram.Runner.create ?engine p in
          let out_sig = De.Signal.float_signal kernel ~name:"analog.out" 0.0 in
          let tick = De.Event.create kernel "model.tick" in
          let step_index = ref 0 in
          let proc =
            De.spawn kernel ~name:"analog" (fun () ->
                incr step_index;
                let t = float_of_int !step_index *. dt in
                stimuli_values order t inputs;
                Sfprogram.Runner.step runner ~inputs;
                let out = Sfprogram.Runner.output runner 0 in
                De.Signal.write out_sig out;
                Bus.Adc.set_sample adc ~volts:out;
                Trace.add trace ~time:t ~value:out;
                if De.now_ps kernel + dt_ps <= until_ps then
                  De.Event.notify_delayed tick ~delay_ps:dt_ps)
          in
          De.Event.sensitize proc tick;
          De.Event.notify_delayed tick ~delay_ps:dt_ps;
          De.run_until kernel ~ps:until_ps
      | Tdf ->
          let p = require_program () in
          let order =
            Array.of_list
              (List.map
                 (fun n -> List.assoc n testcase.Circuits.stimuli)
                 p.Sfprogram.inputs)
          in
          let runner = Sfprogram.Runner.create ?engine p in
          let cluster =
            Tdf_moc.create_cluster kernel ~name:"analog" ~timestep_ps:dt_ps
          in
          let n_in = Array.length order in
          let in_ports =
            Array.init n_in (fun i ->
                Tdf_moc.port cluster (Printf.sprintf "u%d" i) ~rate:1)
          in
          let out_port = Tdf_moc.port cluster "y" ~rate:1 in
          let step_index = ref 0 in
          let _src =
            Tdf_moc.add_module cluster ~name:"source" ~reads:[]
              ~writes:(Array.to_list in_ports) (fun () ->
                incr step_index;
                let t = float_of_int !step_index *. dt in
                for i = 0 to n_in - 1 do
                  Tdf_moc.write in_ports.(i) 0 (order.(i) t)
                done)
          in
          let _model =
            Tdf_moc.add_module cluster ~name:"model"
              ~reads:(Array.to_list in_ports) ~writes:[ out_port ] (fun () ->
                for i = 0 to n_in - 1 do
                  inputs.(i) <- Tdf_moc.read in_ports.(i) 0
                done;
                Sfprogram.Runner.step runner ~inputs;
                Tdf_moc.write out_port 0 (Sfprogram.Runner.output runner 0))
          in
          let _sink =
            Tdf_moc.add_module cluster ~name:"adc_bridge" ~reads:[ out_port ]
              ~writes:[] (fun () ->
                let out = Tdf_moc.read out_port 0 in
                Bus.Adc.set_sample adc ~volts:out;
                Trace.add trace ~time:(De.now kernel) ~value:out)
          in
          let _out_sig = Tdf_moc.to_de cluster ~name:"y2de" out_port in
          Tdf_moc.start cluster ~until_ps;
          De.run_until kernel ~ps:until_ps
      | Cpp -> assert false);
      let uart_output =
        match rtl_uart with
        | Some u -> Uart_rtl.decoded u
        | None -> Bus.Uart.output (Option.get !tlm_uart)
      in
      finish ~de_stats:(De.stats kernel) ~uart_output ()
