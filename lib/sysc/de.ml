type process = {
  pname : string;
  run : unit -> unit;
  mutable queued : bool;  (* already in the runnable queue of this delta *)
}

type event = {
  ename : string;
  mutable subscribers : process list;
  mutable scheduled_at : int;  (* earliest pending timed notification, -1 none *)
  mutable delta_pending : bool;
  owner : t;
}

and t = {
  mutable time_ps : int;
  mutable heap : (int * event) array;  (* binary min-heap on time *)
  mutable heap_len : int;
  mutable delta_queue : event list;
  mutable runnable : process list;  (* reverse activation order *)
  mutable updates : (unit -> unit) list;
  mutable activations : int;
  mutable delta_cycles : int;
  mutable timed_notifications : int;
  mutable signal_updates : int;
}

let create () =
  {
    time_ps = 0;
    heap = [||];
    heap_len = 0;
    delta_queue = [];
    runnable = [];
    updates = [];
    activations = 0;
    delta_cycles = 0;
    timed_notifications = 0;
    signal_updates = 0;
  }

let now_ps k = k.time_ps
let ps_of_seconds s = int_of_float (Float.round (s *. 1e12))
let seconds_of_ps ps = float_of_int ps *. 1e-12
let now k = seconds_of_ps k.time_ps

(* Binary min-heap on notification time. *)
let heap_push k entry =
  if k.heap_len = Array.length k.heap then begin
    let bigger = Array.make (max 64 (2 * Array.length k.heap)) entry in
    Array.blit k.heap 0 bigger 0 k.heap_len;
    k.heap <- bigger
  end;
  k.heap.(k.heap_len) <- entry;
  let i = ref k.heap_len in
  k.heap_len <- k.heap_len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if fst k.heap.(!i) < fst k.heap.(parent) then begin
      let tmp = k.heap.(!i) in
      k.heap.(!i) <- k.heap.(parent);
      k.heap.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let heap_pop k =
  assert (k.heap_len > 0);
  let top = k.heap.(0) in
  k.heap_len <- k.heap_len - 1;
  if k.heap_len > 0 then begin
    k.heap.(0) <- k.heap.(k.heap_len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < k.heap_len && fst k.heap.(l) < fst k.heap.(!smallest) then
        smallest := l;
      if r < k.heap_len && fst k.heap.(r) < fst k.heap.(!smallest) then
        smallest := r;
      if !smallest <> !i then begin
        let tmp = k.heap.(!i) in
        k.heap.(!i) <- k.heap.(!smallest);
        k.heap.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  top

let heap_peek k = if k.heap_len = 0 then None else Some k.heap.(0)

let spawn _k ~name run = { pname = name; run; queued = false }

module Event = struct
  type nonrec event = event

  let create owner ename =
    { ename; subscribers = []; scheduled_at = -1; delta_pending = false; owner }

  let sensitize p ev = ev.subscribers <- p :: ev.subscribers

  let notify_delayed ev ~delay_ps =
    if delay_ps < 0 then invalid_arg "Event.notify_delayed: negative delay";
    let k = ev.owner in
    let t = k.time_ps + delay_ps in
    (* Same-instant duplicates collapse; an earlier pending time wins. *)
    if ev.scheduled_at < 0 || t < ev.scheduled_at then begin
      ev.scheduled_at <- t;
      k.timed_notifications <- k.timed_notifications + 1;
      heap_push k (t, ev)
    end

  let notify_delta ev =
    if not ev.delta_pending then begin
      ev.delta_pending <- true;
      ev.owner.delta_queue <- ev :: ev.owner.delta_queue
    end
end

let enqueue_subscribers k ev =
  List.iter
    (fun p ->
      if not p.queued then begin
        p.queued <- true;
        k.runnable <- p :: k.runnable
      end)
    ev.subscribers

(* One delta cycle: run every runnable process (evaluation phase), then
   apply the signal updates (update phase), which may prime the next
   delta cycle. *)
let run_delta_cycle k =
  k.delta_cycles <- k.delta_cycles + 1;
  let ps = List.rev k.runnable in
  k.runnable <- [];
  List.iter
    (fun p ->
      p.queued <- false;
      k.activations <- k.activations + 1;
      p.run ())
    ps;
  let ups = List.rev k.updates in
  k.updates <- [];
  List.iter (fun u -> u ()) ups

(* Process every delta cycle pending at the current instant. *)
let drain_instant k =
  let rec loop () =
    if k.delta_queue <> [] || k.runnable <> [] then begin
      let fired = List.rev k.delta_queue in
      k.delta_queue <- [];
      List.iter
        (fun ev ->
          ev.delta_pending <- false;
          enqueue_subscribers k ev)
        fired;
      run_delta_cycle k;
      loop ()
    end
  in
  loop ()

(* Fire all timed events scheduled for the current time. *)
let fire_current_time k =
  let rec loop () =
    match heap_peek k with
    | Some (t, _) when t = k.time_ps ->
        let _, ev = heap_pop k in
        (* Stale entries (event re-collapsed to another time) are
           skipped. *)
        if ev.scheduled_at = k.time_ps then begin
          ev.scheduled_at <- -1;
          enqueue_subscribers k ev
        end;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

(* Kernel counters mirrored into the metrics registry: [run_until] adds
   the delta accumulated by this kernel instance on exit, so repeated
   runs and multiple kernels aggregate correctly. *)
let c_activations =
  Amsvp_obs.Obs.Counter.make ~help:"DE process activations"
    "amsvp_de_activations_total"

let c_delta_cycles =
  Amsvp_obs.Obs.Counter.make ~help:"DE delta cycles"
    "amsvp_de_delta_cycles_total"

let c_timed_notifications =
  Amsvp_obs.Obs.Counter.make ~help:"DE timed event notifications"
    "amsvp_de_timed_notifications_total"

let c_signal_updates =
  Amsvp_obs.Obs.Counter.make ~help:"DE signal update-phase evaluations"
    "amsvp_de_signal_updates_total"

let run_until k ~ps =
  Amsvp_obs.Obs.with_span ~cat:"sysc" "de.run_until" @@ fun () ->
  let activations0 = k.activations
  and delta_cycles0 = k.delta_cycles
  and timed0 = k.timed_notifications
  and updates0 = k.signal_updates in
  let rec loop () =
    fire_current_time k;
    drain_instant k;
    (* Advance to the next non-stale timed notification. *)
    let rec next_time () =
      match heap_peek k with
      | None -> None
      | Some (t, ev) ->
          if ev.scheduled_at <> t then begin
            ignore (heap_pop k);
            next_time ()
          end
          else Some t
    in
    match next_time () with
    | Some t when t <= ps ->
        k.time_ps <- t;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  Amsvp_obs.Obs.Counter.add c_activations (k.activations - activations0);
  Amsvp_obs.Obs.Counter.add c_delta_cycles (k.delta_cycles - delta_cycles0);
  Amsvp_obs.Obs.Counter.add c_timed_notifications
    (k.timed_notifications - timed0);
  Amsvp_obs.Obs.Counter.add c_signal_updates (k.signal_updates - updates0)

let run k = run_until k ~ps:max_int

module Signal = struct
  type 'a signal = {
    mutable cur : 'a;
    mutable next : 'a;
    mutable update_pending : bool;
    eq : 'a -> 'a -> bool;
    ev : Event.event;
    k : t;
  }

  let create k ~name ~eq init =
    {
      cur = init;
      next = init;
      update_pending = false;
      eq;
      ev = Event.create k (name ^ ".changed");
      k;
    }

  let float_signal k ~name init =
    create k ~name ~eq:(fun (a : float) b -> a = b) init

  let bool_signal k ~name init =
    create k ~name ~eq:(fun (a : bool) b -> a = b) init

  let int_signal k ~name init = create k ~name ~eq:(fun (a : int) b -> a = b) init

  let read s = s.cur

  let write s v =
    s.next <- v;
    if not s.update_pending then begin
      s.update_pending <- true;
      s.k.updates <-
        (fun () ->
          s.update_pending <- false;
          s.k.signal_updates <- s.k.signal_updates + 1;
          if not (s.eq s.cur s.next) then begin
            s.cur <- s.next;
            Event.notify_delta s.ev
          end)
        :: s.k.updates
    end

  let change_event s = s.ev
end

module Tracing = struct
  module Trace = Amsvp_util.Trace
  module Vcd = Amsvp_util.Vcd

  type recorder = {
    kernel : t;
    mutable entries : (string * Trace.t) list;  (* reverse registration *)
  }

  let create kernel = { kernel; entries = [] }

  let watch r ~name s =
    let tr = Trace.create () in
    Trace.add tr ~time:(now r.kernel) ~value:(Signal.read s);
    let p =
      spawn r.kernel ~name:("trace." ^ name) (fun () ->
          Trace.add tr ~time:(now r.kernel) ~value:(Signal.read s))
    in
    Event.sensitize p (Signal.change_event s);
    r.entries <- (name, tr) :: r.entries

  let traces r = List.rev r.entries
  let to_vcd r = Vcd.to_string (traces r)
end

module Thread = struct
  type suspend = Wait_time of int | Wait_event of Event.event

  type _ Effect.t += Suspend : suspend -> unit Effect.t

  let outside_thread what =
    invalid_arg (Printf.sprintf "De.Thread.%s: not inside a thread body" what)

  let wait_ps _k d =
    if d < 0 then invalid_arg "De.Thread.wait_ps: negative delay";
    try Effect.perform (Suspend (Wait_time d))
    with Effect.Unhandled _ -> outside_thread "wait_ps"

  let wait_event _k ev =
    try Effect.perform (Suspend (Wait_event ev))
    with Effect.Unhandled _ -> outside_thread "wait_event"

  (* Arm a one-shot resumption of the suspended thread. For timed waits
     a private event is used; for event waits the process unsubscribes
     itself on its first activation, so repeated waits on a long-lived
     event do not accumulate subscribers. *)
  let arm k ~name how resume =
    match how with
    | Wait_time d ->
        let ev = Event.create k (name ^ ".timeout") in
        let p = spawn k ~name resume in
        Event.sensitize p ev;
        if d = 0 then Event.notify_delta ev
        else Event.notify_delayed ev ~delay_ps:d
    | Wait_event ev ->
        let fired = ref false in
        let self = ref None in
        let p =
          spawn k ~name (fun () ->
              if not !fired then begin
                fired := true;
                (match !self with
                | Some p ->
                    ev.subscribers <- List.filter (fun q -> q != p) ev.subscribers
                | None -> ());
                resume ()
              end)
        in
        self := Some p;
        Event.sensitize p ev

  let spawn k ~name body =
    let open Effect.Deep in
    let handler =
      {
        retc = (fun () -> ());
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend how ->
                Some
                  (fun (cont : (a, unit) continuation) ->
                    arm k ~name how (fun () -> continue cont ()))
            | _ -> None);
      }
    in
    (* The body starts in the first delta cycle of the current time. *)
    arm k ~name (Wait_time 0) (fun () -> match_with body () handler)
end

type stats = {
  activations : int;
  delta_cycles : int;
  timed_notifications : int;
  signal_updates : int;
}

let stats (k : t) =
  {
    activations = k.activations;
    delta_cycles = k.delta_cycles;
    timed_notifications = k.timed_notifications;
    signal_updates = k.signal_updates;
  }
