type port = {
  port_name : string;
  default_rate : int;
  mutable tokens : float array;
  mutable read_base : int;
  mutable write_base : int;
  mutable producer : int;  (* module id, -1 until connected *)
  mutable producer_rate : int;
  mutable consumers : (int * int) list;  (* module id, rate *)
}

type tdf_module = {
  id : int;
  mod_name : string;
  reads : (port * int) list;
  writes : (port * int) list;
  body : int -> unit;  (* repetition index within the activation *)
}

type cluster = {
  kernel : De.t;
  cname : string;
  timestep_ps : int;
  mutable ports : port list;
  mutable modules : tdf_module list;  (* reverse registration order *)
  mutable schedule : (tdf_module * int) array;  (* module, repetitions *)
  mutable started : bool;
  mutable activations : int;
  tick : De.Event.event;
}

let create_cluster kernel ~name ~timestep_ps =
  if timestep_ps <= 0 then
    invalid_arg "Tdf.create_cluster: timestep must be positive";
  {
    kernel;
    cname = name;
    timestep_ps;
    ports = [];
    modules = [];
    schedule = [||];
    started = false;
    activations = 0;
    tick = De.Event.create kernel (name ^ ".tick");
  }

let port c port_name ~rate =
  if rate < 1 then invalid_arg "Tdf.port: rate must be >= 1";
  let p =
    {
      port_name;
      default_rate = rate;
      tokens = Array.make rate 0.0;
      read_base = 0;
      write_base = 0;
      producer = -1;
      producer_rate = rate;
      consumers = [];
    }
  in
  c.ports <- p :: c.ports;
  p

let add_module_rated c ~name ~reads ~writes body =
  if c.started then invalid_arg "Tdf.add_module: cluster already started";
  let id = List.length c.modules in
  let m = { id; mod_name = name; reads; writes; body } in
  List.iter
    (fun (p, rate) ->
      if rate < 1 then invalid_arg "Tdf.add_module: rate must be >= 1";
      if p.producer >= 0 then
        invalid_arg
          (Printf.sprintf "Tdf: port %s has several producers" p.port_name);
      p.producer <- id;
      p.producer_rate <- rate)
    writes;
  List.iter
    (fun (p, rate) ->
      if rate < 1 then invalid_arg "Tdf.add_module: rate must be >= 1";
      p.consumers <- (id, rate) :: p.consumers)
    reads;
  c.modules <- m :: c.modules;
  m

let add_module c ~name ~reads ~writes body =
  add_module_rated c ~name
    ~reads:(List.map (fun p -> (p, p.default_rate)) reads)
    ~writes:(List.map (fun p -> (p, p.default_rate)) writes)
    (fun _rep -> body ())

let read p i = p.tokens.(p.read_base + i)
let write p i v = p.tokens.(p.write_base + i) <- v

let from_de c ~name sig_in =
  let p = port c (name ^ ".out") ~rate:1 in
  let _ =
    add_module c ~name ~reads:[] ~writes:[ p ] (fun () ->
        write p 0 (De.Signal.read sig_in))
  in
  p

let to_de c ~name p =
  let s = De.Signal.float_signal c.kernel ~name:(name ^ ".sig") 0.0 in
  let _ =
    add_module c ~name ~reads:[ p ] ~writes:[] (fun () ->
        De.Signal.write s (read p 0))
  in
  s

(* Repetition vector from the SDF balance equations:
   producer_rate * reps(producer) = consumer_rate * reps(consumer) for
   every connection. Solved over rationals by propagation, then scaled
   to the smallest integer vector. *)
let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let compute_repetitions c mods =
  let n = Array.length mods in
  let reps = Array.make n None in
  (* adjacency: (neighbour, my_rate, their_rate) meaning
     my_rate * reps(me) = their_rate * reps(neighbour). *)
  let adj = Array.make n [] in
  List.iter
    (fun p ->
      if p.producer >= 0 then
        List.iter
          (fun (consumer, crate) ->
            adj.(p.producer) <- (consumer, p.producer_rate, crate) :: adj.(p.producer);
            adj.(consumer) <- (p.producer, crate, p.producer_rate) :: adj.(consumer))
          p.consumers)
    c.ports;
  let queue = Queue.create () in
  for start = 0 to n - 1 do
    if reps.(start) = None then begin
      reps.(start) <- Some (1, 1);
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        let nu, du = Option.get reps.(u) in
        List.iter
          (fun (v, my_rate, their_rate) ->
            (* my_rate * reps(u) = their_rate * reps(v) *)
            let nv = nu * my_rate and dv = du * their_rate in
            let g = gcd nv dv in
            let nv = nv / g and dv = dv / g in
            match reps.(v) with
            | None ->
                reps.(v) <- Some (nv, dv);
                Queue.add v queue
            | Some (nv', dv') ->
                if nv * dv' <> nv' * dv then
                  invalid_arg
                    (Printf.sprintf
                       "Tdf: inconsistent rates in cluster %s around module %s"
                       c.cname mods.(v).mod_name))
          adj.(u)
      done
    end
  done;
  (* Scale to integers. *)
  let lcm a b = a / gcd a b * b in
  let denom =
    Array.fold_left
      (fun acc r -> match r with Some (_, d) -> lcm acc d | None -> acc)
      1 reps
  in
  let ints =
    Array.map (function Some (nu, du) -> nu * denom / du | None -> 1) reps
  in
  let g = Array.fold_left (fun acc v -> gcd acc v) 0 ints in
  let g = max g 1 in
  Array.map (fun v -> v / g) ints

(* Static schedule: topological sort of the module dependency graph
   (producer of a port before its consumers), each module annotated
   with its repetition count. *)
let compute_schedule c =
  let mods = Array.of_list (List.rev c.modules) in
  let n = Array.length mods in
  let reps = compute_repetitions c mods in
  let succ = Array.make n [] and indeg = Array.make n 0 in
  List.iter
    (fun p ->
      if p.producer >= 0 then
        List.iter
          (fun (consumer, _) ->
            succ.(p.producer) <- consumer :: succ.(p.producer);
            indeg.(consumer) <- indeg.(consumer) + 1)
          p.consumers)
    c.ports;
  let queue = Queue.create () in
  (* Stable order: lower registration id first among ready modules. *)
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.take queue in
    order := (mods.(i), reps.(i)) :: !order;
    incr count;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      (List.rev succ.(i))
  done;
  if !count <> n then
    invalid_arg
      (Printf.sprintf "Tdf: combinational cycle in cluster %s" c.cname);
  (* Size the token buffers for one full activation. *)
  List.iter
    (fun p ->
      if p.producer >= 0 then begin
        let total = p.producer_rate * reps.(p.producer) in
        if Array.length p.tokens <> total then p.tokens <- Array.make total 0.0
      end
      else if p.consumers <> [] then
        invalid_arg
          (Printf.sprintf "Tdf: port %s has consumers but no producer"
             p.port_name))
    c.ports;
  Array.of_list (List.rev !order)

let c_cluster_activations =
  Amsvp_obs.Obs.Counter.make ~help:"TDF cluster schedule replays"
    "amsvp_tdf_cluster_activations_total"

let c_module_activations =
  Amsvp_obs.Obs.Counter.make
    ~help:"TDF module body invocations (incl. repetitions)"
    "amsvp_tdf_module_activations_total"

let start c ~until_ps =
  if c.started then invalid_arg "Tdf.start: already started";
  c.schedule <- compute_schedule c;
  c.started <- true;
  let schedule_length =
    Array.fold_left (fun acc (_, reps) -> acc + reps) 0 c.schedule
  in
  let proc =
    De.spawn c.kernel ~name:(c.cname ^ ".cluster") (fun () ->
        c.activations <- c.activations + 1;
        Amsvp_obs.Obs.Counter.incr c_cluster_activations;
        Amsvp_obs.Obs.Counter.add c_module_activations schedule_length;
        (* Replay the static schedule with repetition counts. *)
        for i = 0 to Array.length c.schedule - 1 do
          let m, reps = c.schedule.(i) in
          for rep = 0 to reps - 1 do
            List.iter (fun (p, rate) -> p.read_base <- rep * rate) m.reads;
            List.iter (fun (p, rate) -> p.write_base <- rep * rate) m.writes;
            m.body rep
          done
        done;
        let next = De.now_ps c.kernel + c.timestep_ps in
        if next <= until_ps then
          De.Event.notify_delayed c.tick ~delay_ps:c.timestep_ps)
  in
  De.Event.sensitize proc c.tick;
  De.Event.notify_delayed c.tick ~delay_ps:c.timestep_ps

type cluster_stats = { activations : int; modules : int; schedule_length : int }

let cluster_stats (c : cluster) =
  {
    activations = c.activations;
    modules = List.length c.modules;
    schedule_length =
      Array.fold_left (fun acc (_, reps) -> acc + reps) 0 c.schedule;
  }
