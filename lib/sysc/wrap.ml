module Trace = Amsvp_util.Trace
module Sfprogram = Amsvp_sf.Sfprogram
module Obs = Amsvp_obs.Obs

type result = { trace : Trace.t; de_stats : De.stats option }

let stimuli_for (p : Sfprogram.t) bindings =
  Array.of_list
    (List.map
       (fun name ->
         match List.assoc_opt name bindings with
         | Some f -> f
         | None -> invalid_arg ("Wrap: no stimulus bound to input " ^ name))
       p.Sfprogram.inputs)

let steps_of ~dt ~t_stop = int_of_float (Float.round (t_stop /. dt))

let run_cpp ?engine ?observe p ~stimuli ~t_stop =
  Obs.with_span ~cat:"sysc" ~args:[ ("program", p.Sfprogram.name) ]
    "wrap.run_cpp"
  @@ fun () ->
  let runner = Sfprogram.Runner.create ?engine p in
  let stims = stimuli_for p stimuli in
  let trace = Sfprogram.Runner.run runner ~stimuli:stims ~t_stop ?observe () in
  { trace; de_stats = None }

let run_de ?engine ?observe p ~stimuli ~t_stop =
  Obs.with_span ~cat:"sysc" ~args:[ ("program", p.Sfprogram.name) ]
    "wrap.run_de"
  @@ fun () ->
  let kernel = De.create () in
  let runner = Sfprogram.Runner.create ?engine p in
  let reader = Sfprogram.Runner.read runner in
  let stims = stimuli_for p stimuli in
  let dt_ps = De.ps_of_seconds p.Sfprogram.dt in
  let until_ps = De.ps_of_seconds t_stop in
  let nsteps = steps_of ~dt:p.Sfprogram.dt ~t_stop in
  let trace = Trace.create ~capacity:(nsteps + 1) () in
  let out_sig = De.Signal.float_signal kernel ~name:"out" 0.0 in
  let inputs = Array.make (Array.length stims) 0.0 in
  let tick = De.Event.create kernel "model.tick" in
  Trace.add trace ~time:0.0 ~value:0.0;
  (match observe with None -> () | Some f -> f 0.0 reader);
  (* Stimuli are sampled at exact step multiples (k * dt) so square-wave
     edges land on the same instants as in the fixed-step engines; the
     kernel's picosecond clock and the float product can differ by one
     ulp right at an edge. *)
  let step_index = ref 0 in
  let proc =
    De.spawn kernel ~name:"model" (fun () ->
        incr step_index;
        let t = float_of_int !step_index *. p.Sfprogram.dt in
        for i = 0 to Array.length stims - 1 do
          inputs.(i) <- stims.(i) t
        done;
        Sfprogram.Runner.step runner ~inputs;
        let out = Sfprogram.Runner.output runner 0 in
        De.Signal.write out_sig out;
        Trace.add trace ~time:t ~value:out;
        (match observe with None -> () | Some f -> f t reader);
        if De.now_ps kernel + dt_ps <= until_ps then
          De.Event.notify_delayed tick ~delay_ps:dt_ps)
  in
  De.Event.sensitize proc tick;
  De.Event.notify_delayed tick ~delay_ps:dt_ps;
  De.run_until kernel ~ps:until_ps;
  { trace; de_stats = Some (De.stats kernel) }

let run_tdf ?engine ?observe p ~stimuli ~t_stop =
  Obs.with_span ~cat:"sysc" ~args:[ ("program", p.Sfprogram.name) ]
    "wrap.run_tdf"
  @@ fun () ->
  let kernel = De.create () in
  let runner = Sfprogram.Runner.create ?engine p in
  let reader = Sfprogram.Runner.read runner in
  let stims = stimuli_for p stimuli in
  let dt = p.Sfprogram.dt in
  let dt_ps = De.ps_of_seconds dt in
  let until_ps = De.ps_of_seconds t_stop in
  let nsteps = steps_of ~dt ~t_stop in
  let trace = Trace.create ~capacity:(nsteps + 1) () in
  let cluster = Tdf.create_cluster kernel ~name:"analog" ~timestep_ps:dt_ps in
  let n_in = Array.length stims in
  let in_ports = Array.init n_in (fun i -> Tdf.port cluster (Printf.sprintf "u%d" i) ~rate:1) in
  let out_port = Tdf.port cluster "y" ~rate:1 in
  (* Per-sample time annotation, as the SystemC-AMS scheduler maintains
     for every TDF sample. *)
  let timestamps = Array.make (n_in + 1) 0.0 in
  let inputs = Array.make n_in 0.0 in
  (* Exact step multiples, for the same reason as in [run_de]. *)
  let step_index = ref 0 in
  let _source =
    Tdf.add_module cluster ~name:"source" ~reads:[] ~writes:(Array.to_list in_ports)
      (fun () ->
        incr step_index;
        let t = float_of_int !step_index *. dt in
        for i = 0 to n_in - 1 do
          timestamps.(i) <- t;
          Tdf.write in_ports.(i) 0 (stims.(i) t)
        done)
  in
  let _model =
    Tdf.add_module cluster ~name:"model" ~reads:(Array.to_list in_ports)
      ~writes:[ out_port ] (fun () ->
        for i = 0 to n_in - 1 do
          inputs.(i) <- Tdf.read in_ports.(i) 0
        done;
        Sfprogram.Runner.step runner ~inputs;
        timestamps.(n_in) <- De.now kernel;
        (match observe with
        | None -> ()
        | Some f -> f (De.now kernel) reader);
        Tdf.write out_port 0 (Sfprogram.Runner.output runner 0))
  in
  let _sink =
    Tdf.add_module cluster ~name:"sink" ~reads:[ out_port ] ~writes:[]
      (fun () -> Trace.add trace ~time:(De.now kernel) ~value:(Tdf.read out_port 0))
  in
  (* DE boundary: the cluster output is also exported to a kernel
     signal, as it would be inside a virtual platform. *)
  let _out_sig = Tdf.to_de cluster ~name:"y2de" out_port in
  Trace.add trace ~time:0.0 ~value:0.0;
  (match observe with None -> () | Some f -> f 0.0 reader);
  Tdf.start cluster ~until_ps;
  De.run_until kernel ~ps:until_ps;
  { trace; de_stats = Some (De.stats kernel) }

let run_eln ?observe circuit ~inputs ~output ~dt ~t_stop =
  Obs.with_span ~cat:"sysc" "wrap.run_eln" @@ fun () ->
  let kernel = De.create () in
  let names = List.map fst inputs in
  let stims = Array.of_list (List.map snd inputs) in
  let stepper =
    Amsvp_mna.Engine.Eln_stepper.create circuit ~inputs:names ~output ~dt
  in
  let reader = Amsvp_mna.Engine.Eln_stepper.read stepper in
  let dt_ps = De.ps_of_seconds dt in
  let until_ps = De.ps_of_seconds t_stop in
  let nsteps = steps_of ~dt ~t_stop in
  let trace = Trace.create ~capacity:(nsteps + 1) () in
  let out_sig = De.Signal.float_signal kernel ~name:"eln.out" 0.0 in
  let input_values = Array.make (Array.length stims) 0.0 in
  let tick = De.Event.create kernel "eln.tick" in
  Trace.add trace ~time:0.0 ~value:0.0;
  (match observe with None -> () | Some f -> f 0.0 reader);
  let step_index = ref 0 in
  let proc =
    De.spawn kernel ~name:"eln" (fun () ->
        incr step_index;
        let t = float_of_int !step_index *. dt in
        for i = 0 to Array.length stims - 1 do
          input_values.(i) <- stims.(i) t
        done;
        let out = Amsvp_mna.Engine.Eln_stepper.step stepper ~input_values in
        De.Signal.write out_sig out;
        Trace.add trace ~time:t ~value:out;
        (match observe with None -> () | Some f -> f t reader);
        if De.now_ps kernel + dt_ps <= until_ps then
          De.Event.notify_delayed tick ~delay_ps:dt_ps)
  in
  De.Event.sensitize proc tick;
  De.Event.notify_delayed tick ~delay_ps:dt_ps;
  De.run_until kernel ~ps:until_ps;
  { trace; de_stats = Some (De.stats kernel) }
