(** Execution of analog models under each model of computation.

    One entry point per row family of the paper's Tables I–II:

    - {!run_cpp}: the generated model in a plain tight loop ("C++").
    - {!run_de}: the generated model as a discrete-event module —
      an SC_METHOD-like process self-clocked every [dt], computing its
      stimulus from the simulated time (the generator shares the MoC of
      the component under test, §V-A), stepping the model and driving
      an output signal through the kernel's request/update machinery.
    - {!run_tdf}: the generated model inside a TDF cluster — source,
      model and sink modules run by the static schedule, with
      per-sample time annotation, the cluster being re-activated
      through the DE kernel every timestep ("SC-AMS/TDF").
    - {!run_eln}: the conservative network solved by the fixed-step
      linear engine embedded in the kernel ("SC-AMS/ELN").

    Every runner returns the recorded output trace plus kernel
    statistics, so benches can report both wall-clock time and the
    mechanical work (activations, delta cycles) that explains it. *)

type result = {
  trace : Amsvp_util.Trace.t;
  de_stats : De.stats option;  (** [None] for the plain loop *)
}

val run_cpp :
  ?engine:Amsvp_sf.Sfprogram.Runner.engine ->
  ?observe:(float -> (Expr.var -> float) -> unit) ->
  Amsvp_sf.Sfprogram.t ->
  stimuli:(string * Amsvp_util.Stimulus.t) list ->
  t_stop:float ->
  result
(** [engine] (on every model runner) selects the signal-flow execution
    engine — the default register bytecode or the reference [`Tree]
    interpreter; both produce bit-identical traces.

    [observe] (on every runner) is called once per simulated step with
    the current time and a reader over the model's quantities — the
    attachment point for [Amsvp_probe] waveform taps. It costs one
    branch per step when absent.
    @raise Invalid_argument if a program input has no stimulus. *)

val run_de :
  ?engine:Amsvp_sf.Sfprogram.Runner.engine ->
  ?observe:(float -> (Expr.var -> float) -> unit) ->
  Amsvp_sf.Sfprogram.t ->
  stimuli:(string * Amsvp_util.Stimulus.t) list ->
  t_stop:float ->
  result

val run_tdf :
  ?engine:Amsvp_sf.Sfprogram.Runner.engine ->
  ?observe:(float -> (Expr.var -> float) -> unit) ->
  Amsvp_sf.Sfprogram.t ->
  stimuli:(string * Amsvp_util.Stimulus.t) list ->
  t_stop:float ->
  result

val run_eln :
  ?observe:(float -> (Expr.var -> float) -> unit) ->
  Amsvp_netlist.Circuit.t ->
  inputs:(string * Amsvp_util.Stimulus.t) list ->
  output:Expr.var ->
  dt:float ->
  t_stop:float ->
  result

val stimuli_for :
  Amsvp_sf.Sfprogram.t ->
  (string * Amsvp_util.Stimulus.t) list ->
  Amsvp_util.Stimulus.t array
(** Order the stimuli as the program's input list.
    @raise Invalid_argument on a missing binding. *)
