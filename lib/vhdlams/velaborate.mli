(** Elaboration of the VHDL-AMS subset onto the shared flat model.

    Entities/architectures are flattened exactly like Verilog-AMS
    modules: instances are expanded with generic substitution and port
    binding, across/through quantity pairs become branches, and
    simultaneous statements become per-branch contributions. The result
    is an {!Amsvp_vams.Elaborate.flat}, so classification, device
    recognition and both conversion routes are shared with the
    Verilog-AMS front-end.

    VHDL-AMS terminals carry no direction, so the externally driven
    ports of the top entity are given explicitly ([~inputs]). The
    actual name [ground] (or [gnd]) in a port map denotes the reference
    node. *)

exception Elab_error of string * Amsvp_diag.Diag.span option
(** message and, when the error traces back to a source construct, its
    [file:line:col] span. *)

val flatten :
  Vast.design -> top:string -> inputs:string list -> Amsvp_vams.Elaborate.flat
(** @raise Elab_error on unknown entities/ports/quantities, arity or
    binding problems. *)

val parse_and_abstract :
  string ->
  top:string ->
  inputs:string list ->
  outputs:Expr.var list ->
  dt:float ->
  Amsvp_core.Flow.report
(** Parse VHDL-AMS source, elaborate the top entity and run the
    abstraction flow (conservative route) or the direct conversion
    (signal-flow route), exactly as the Verilog-AMS front door does. *)
