(** Abstract syntax for the supported VHDL-AMS subset.

    The paper works in Verilog-AMS syntax but notes that "despite of
    the syntactic differences, both languages represent the same
    systems and constructs ... all considerations are applicable to
    VHDL-AMS" (§II-A). This front-end accepts the VHDL-AMS rendering
    of the same subset — entities/architectures, terminal ports,
    across/through quantity pairs, simultaneous statements ([==]) with
    the ['dot] derivative attribute, conditional [if ... use]
    statements and component instantiation with generic/port maps —
    and elaborates onto the same flat model as the Verilog-AMS
    elaborator, so every downstream step is shared.

    Simultaneous statements and quantity declarations carry the
    [file:line:col] span of their first token so diagnostics can point
    back at the source. *)

type span = Amsvp_diag.Diag.span

type expr =
  | Number of float
  | Name of string  (** quantity, generic or constant reference *)
  | Dot of string  (** [q'dot] — time derivative of a quantity *)
  | Unop of [ `Neg | `Not ] * expr
  | Binop of
      [ `Add | `Sub | `Mul | `Div | `Lt | `Le | `Gt | `Ge | `And | `Or ]
      * expr
      * expr
  | Call of string * expr list  (** [sin], [exp], ... *)

type stmt =
  | Simult of string * expr * span
      (** [q == rhs;] — a simultaneous statement defining quantity [q] *)
  | If_use of expr * stmt list * stmt list
      (** [if cond use ... else ... end use;] *)

type decl =
  | Quantity of {
      across : string;
      through : string option;
      pos : string;
      neg : string;
      qspan : span;
    }  (** [quantity v across i through p to n;] *)
  | Terminal of string list  (** [terminal a, b : electrical;] *)
  | Constant of string * expr  (** [constant k : real := 2.0;] *)

type instance = {
  label : string;
  entity : string;
  generic_map : (string * expr) list;
  port_map : (string * string) list;  (** formal -> actual terminal *)
}

type concurrent = Stmt of stmt | Instance of instance

type generic = { gname : string; default : expr option }

type entity = { ename : string; generics : generic list; ports : string list }

type architecture = {
  aname : string;
  of_entity : string;
  decls : decl list;
  body : concurrent list;
}

type unit_ = Entity of entity | Architecture of architecture

type design = unit_ list

val find_entity : design -> string -> entity option
val find_architecture : design -> string -> architecture option
(** First architecture of the named entity. *)
