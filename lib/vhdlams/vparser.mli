(** Lexer and recursive-descent parser for the VHDL-AMS subset.

    VHDL is case-insensitive: identifiers and keywords are lowercased
    during lexing. [--] comments are skipped; [library]/[use] clauses
    are accepted and ignored. *)

exception Parse_error of string * int * int
(** message, 1-based source line, 1-based column *)

val parse : ?file:string -> string -> Vast.design
(** @raise Parse_error on malformed input. [file] (default
    ["<input>"]) names the source in AST spans. *)

val parse_expr_string : ?file:string -> string -> Vast.expr
(** Parse a single expression (for tests). *)
