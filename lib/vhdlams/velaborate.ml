module E = Amsvp_vams.Elaborate
module Diag = Amsvp_diag.Diag

exception Elab_error of string * Diag.span option

let fail ?span fmt =
  Printf.ksprintf (fun s -> raise (Elab_error (s, span))) fmt

type qkind = Across | Through

type quantity = { kind : qkind; branch : E.branch_ref }

type ctx = {
  design : Vast.design;
  path : string;
  bindings : (string * string) list;  (* formal terminal -> global net *)
  values : (string * float) list;  (* generics and constants *)
  quantities : (string * quantity) list;
  mutable acc : (E.branch_ref * bool * Expr.t * Diag.span) list;
}

let qualify ctx name = if ctx.path = "" then name else ctx.path ^ "." ^ name

let resolve_terminal ctx name =
  match List.assoc_opt name ctx.bindings with
  | Some net -> net
  | None -> if name = "ground" || name = "gnd" then "gnd" else qualify ctx name

let rec const_eval ctx (e : Vast.expr) =
  match e with
  | Vast.Number f -> f
  | Vast.Name n -> (
      match List.assoc_opt n ctx.values with
      | Some v -> v
      | None -> fail "unknown generic or constant %s in %s" n ctx.path)
  | Vast.Unop (`Neg, a) -> -.const_eval ctx a
  | Vast.Binop (`Add, a, b) -> const_eval ctx a +. const_eval ctx b
  | Vast.Binop (`Sub, a, b) -> const_eval ctx a -. const_eval ctx b
  | Vast.Binop (`Mul, a, b) -> const_eval ctx a *. const_eval ctx b
  | Vast.Binop (`Div, a, b) -> const_eval ctx a /. const_eval ctx b
  | Vast.Unop (`Not, _) | Vast.Binop _ | Vast.Call _ | Vast.Dot _ ->
      fail "unsupported constant expression"

let quantity_expr q =
  match q.kind with
  | Across ->
      if q.branch.E.pos = q.branch.E.neg then Expr.zero
      else Expr.var (Expr.potential q.branch.E.pos q.branch.E.neg)
  | Through -> Expr.var (Expr.flow q.branch.E.flow_id "")

let unary_fun_of_name = function
  | "sin" -> Some Expr.Sin
  | "cos" -> Some Expr.Cos
  | "exp" -> Some Expr.Exp
  | "log" | "ln" -> Some Expr.Ln
  | "sqrt" -> Some Expr.Sqrt
  | "abs" -> Some Expr.Abs
  | "tanh" -> Some Expr.Tanh
  | _ -> None

let rec expr_of_ast ctx (e : Vast.expr) =
  match e with
  | Vast.Number f -> Expr.const f
  | Vast.Name n -> (
      match List.assoc_opt n ctx.quantities with
      | Some q -> quantity_expr q
      | None -> (
          match List.assoc_opt n ctx.values with
          | Some v -> Expr.const v
          | None -> fail "unknown name %s in %s" n ctx.path))
  | Vast.Dot n -> (
      match List.assoc_opt n ctx.quantities with
      | Some q -> Expr.Ddt (quantity_expr q)
      | None -> fail "'dot applies to a quantity, got %s" n)
  | Vast.Unop (`Neg, a) -> Expr.neg (expr_of_ast ctx a)
  | Vast.Unop (`Not, _) -> fail "boolean operator outside a condition"
  | Vast.Binop (`Add, a, b) -> Expr.( + ) (expr_of_ast ctx a) (expr_of_ast ctx b)
  | Vast.Binop (`Sub, a, b) -> Expr.( - ) (expr_of_ast ctx a) (expr_of_ast ctx b)
  | Vast.Binop (`Mul, a, b) -> Expr.( * ) (expr_of_ast ctx a) (expr_of_ast ctx b)
  | Vast.Binop (`Div, a, b) -> Expr.( / ) (expr_of_ast ctx a) (expr_of_ast ctx b)
  | Vast.Binop ((`Lt | `Le | `Gt | `Ge | `And | `Or), _, _) ->
      fail "comparison outside a condition"
  | Vast.Call (f, [ a ]) -> (
      match unary_fun_of_name f with
      | Some fn -> Expr.App (fn, expr_of_ast ctx a)
      | None -> fail "unsupported function %s" f)
  | Vast.Call (f, _) -> fail "unsupported function %s or arity" f

and cond_of_ast ctx (e : Vast.expr) =
  match e with
  | Vast.Binop (`Lt, a, b) ->
      Expr.Cmp (Expr.Lt, expr_of_ast ctx a, expr_of_ast ctx b)
  | Vast.Binop (`Le, a, b) ->
      Expr.Cmp (Expr.Le, expr_of_ast ctx a, expr_of_ast ctx b)
  | Vast.Binop (`Gt, a, b) ->
      Expr.Cmp (Expr.Gt, expr_of_ast ctx a, expr_of_ast ctx b)
  | Vast.Binop (`Ge, a, b) ->
      Expr.Cmp (Expr.Ge, expr_of_ast ctx a, expr_of_ast ctx b)
  | Vast.Binop (`And, a, b) -> Expr.And (cond_of_ast ctx a, cond_of_ast ctx b)
  | Vast.Binop (`Or, a, b) -> Expr.Or (cond_of_ast ctx a, cond_of_ast ctx b)
  | Vast.Unop (`Not, a) -> Expr.Not (cond_of_ast ctx a)
  | _ -> fail "expected a comparison in condition"

let rec exec_stmts ctx guard stmts =
  List.iter
    (fun (s : Vast.stmt) ->
      match s with
      | Vast.Simult (qname, rhs, span) ->
          let q =
            match List.assoc_opt qname ctx.quantities with
            | Some q -> q
            | None ->
                fail ~span "simultaneous statement on unknown quantity %s"
                  qname
          in
          let rhs = expr_of_ast ctx rhs in
          let rhs =
            match guard with
            | None -> rhs
            | Some c -> Expr.Cond (c, rhs, Expr.zero)
          in
          ctx.acc <- (q.branch, q.kind = Through, rhs, span) :: ctx.acc
      | Vast.If_use (c, then_b, else_b) ->
          let c = cond_of_ast ctx c in
          let combined g extra =
            match g with
            | None -> Some extra
            | Some g0 -> Some (Expr.And (g0, extra))
          in
          exec_stmts ctx (combined guard c) then_b;
          if else_b <> [] then
            exec_stmts ctx (combined guard (Expr.Not c)) else_b)
    stmts

let rec elaborate design ~path ~bindings ~generic_values acc_sink entity_name =
  let entity =
    match Vast.find_entity design entity_name with
    | Some e -> e
    | None -> fail "unknown entity %s" entity_name
  in
  let arch =
    match Vast.find_architecture design entity_name with
    | Some a -> a
    | None -> fail "entity %s has no architecture" entity_name
  in
  (* Generic environment: defaults overridden by the instance. *)
  let values =
    List.map
      (fun (g : Vast.generic) ->
        match List.assoc_opt g.Vast.gname generic_values with
        | Some v -> (g.Vast.gname, v)
        | None -> (
            match g.Vast.default with
            | Some d ->
                ( g.Vast.gname,
                  const_eval
                    {
                      design;
                      path;
                      bindings;
                      values = [];
                      quantities = [];
                      acc = [];
                    }
                    d )
            | None -> fail "generic %s of %s has no value" g.Vast.gname entity_name))
      entity.Vast.generics
  in
  let base = { design; path; bindings; values; quantities = []; acc = [] } in
  (* Declarations: constants extend the value environment; quantities
     declare branches. *)
  let ctx =
    List.fold_left
      (fun ctx decl ->
        match decl with
        | Vast.Constant (name, e) ->
            { ctx with values = (name, const_eval ctx e) :: ctx.values }
        | Vast.Terminal _ -> ctx
        | Vast.Quantity { across; through; pos; neg; qspan = _ } ->
            let branch =
              {
                E.flow_id =
                  (match through with
                  | Some i -> qualify ctx i
                  | None -> qualify ctx ("br_" ^ across));
                pos = resolve_terminal ctx pos;
                neg = resolve_terminal ctx neg;
              }
            in
            let qs =
              ((across, { kind = Across; branch }) :: ctx.quantities)
              |> fun qs ->
              match through with
              | Some i -> (i, { kind = Through; branch }) :: qs
              | None -> qs
            in
            { ctx with quantities = qs })
      base arch.Vast.decls
  in
  List.iter
    (fun item ->
      match item with
      | Vast.Stmt s ->
          exec_stmts ctx None [ s ];
          (* chronological order: earlier chunks first *)
          acc_sink := !acc_sink @ List.rev ctx.acc;
          ctx.acc <- []
      | Vast.Instance { label; entity = child_name; generic_map; port_map } ->
          let child =
            match Vast.find_entity design child_name with
            | Some e -> e
            | None -> fail "unknown entity %s" child_name
          in
          let child_bindings =
            List.map
              (fun (formal, actual) ->
                if not (List.mem formal child.Vast.ports) then
                  fail "entity %s has no port %s" child_name formal;
                (formal, resolve_terminal ctx actual))
              port_map
          in
          let child_values =
            List.map (fun (g, e) -> (g, const_eval ctx e)) generic_map
          in
          let child_path = if path = "" then label else path ^ "." ^ label in
          elaborate design ~path:child_path ~bindings:child_bindings
            ~generic_values:child_values acc_sink child_name)
    arch.Vast.body

let flatten design ~top ~inputs =
  let acc = ref [] in
  let top_entity =
    match Vast.find_entity design top with
    | Some e -> e
    | None -> fail "unknown entity %s" top
  in
  List.iter
    (fun p ->
      if not (List.mem p top_entity.Vast.ports) then
        fail "top entity %s has no port %s" top p)
    inputs;
  let bindings = List.map (fun p -> (p, p)) top_entity.Vast.ports in
  elaborate design ~path:"" ~bindings ~generic_values:[] acc top;
  let raw = !acc in
  (* Merge contributions per branch and kind, preserving first-use
     order (VHDL-AMS simultaneous statements are a system of equations;
     several statements on the same quantity sum like [<+]). *)
  let merged = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun ((br : E.branch_ref), is_flow, rhs, span) ->
      let key = (br.E.flow_id, is_flow) in
      match Hashtbl.find_opt merged key with
      | Some (br0, sum, span0) ->
          Hashtbl.replace merged key (br0, Expr.( + ) sum rhs, span0)
      | None ->
          Hashtbl.replace merged key (br, rhs, span);
          order := key :: !order)
    raw;
  let contributions =
    List.rev_map
      (fun key ->
        let br, rhs, span = Hashtbl.find merged key in
        { E.branch = br; is_flow = snd key; rhs = Expr.simplify rhs; span })
      !order
  in
  let nets =
    let module S = Set.Make (String) in
    let s =
      List.fold_left
        (fun s (c : E.contribution) ->
          let s = S.add c.E.branch.E.pos (S.add c.E.branch.E.neg s) in
          Expr.Var_set.fold
            (fun v s ->
              match v.Expr.base with
              | Expr.Potential (a, b) -> S.add a (S.add b s)
              | Expr.Flow _ | Expr.Signal _ | Expr.Param _ -> s)
            (Expr.vars c.E.rhs) s)
        (S.singleton "gnd") contributions
    in
    S.elements s
  in
  {
    E.top;
    ground = "gnd";
    nets;
    input_ports = inputs;
    output_ports = [];
    contributions;
  }

let parse_and_abstract src ~top ~inputs ~outputs ~dt =
  let design = Vparser.parse src in
  let flat = flatten design ~top ~inputs in
  match E.classify flat with
  | `Conservative ->
      let circuit = E.to_circuit flat in
      Amsvp_core.Flow.abstract_circuit ~name:top circuit ~outputs ~dt
  | `Signal_flow ->
      let contributions = E.signal_flow_assignments flat in
      let program =
        Amsvp_core.Flow.convert_signal_flow ~name:top
          ~inputs:flat.E.input_ports ~outputs ~contributions ~dt
      in
      {
        Amsvp_core.Flow.program;
        nodes = List.length flat.E.nets;
        branches = List.length flat.E.contributions;
        classes = 0;
        fidelity = `Paper;
        variants = 0;
        definitions = List.length contributions;
        explain = Amsvp_core.Explain.of_signal_flow program;
        acquisition_s = 0.0;
        enrichment_s = 0.0;
        assemble_s = 0.0;
        solve_s = 0.0;
      }
