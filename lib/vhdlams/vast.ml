type span = Amsvp_diag.Diag.span

type expr =
  | Number of float
  | Name of string
  | Dot of string
  | Unop of [ `Neg | `Not ] * expr
  | Binop of
      [ `Add | `Sub | `Mul | `Div | `Lt | `Le | `Gt | `Ge | `And | `Or ]
      * expr
      * expr
  | Call of string * expr list

type stmt =
  | Simult of string * expr * span
  | If_use of expr * stmt list * stmt list

type decl =
  | Quantity of {
      across : string;
      through : string option;
      pos : string;
      neg : string;
      qspan : span;
    }
  | Terminal of string list
  | Constant of string * expr

type instance = {
  label : string;
  entity : string;
  generic_map : (string * expr) list;
  port_map : (string * string) list;
}

type concurrent = Stmt of stmt | Instance of instance

type generic = { gname : string; default : expr option }

type entity = { ename : string; generics : generic list; ports : string list }

type architecture = {
  aname : string;
  of_entity : string;
  decls : decl list;
  body : concurrent list;
}

type unit_ = Entity of entity | Architecture of architecture

type design = unit_ list

let find_entity design name =
  List.find_map
    (function Entity e when e.ename = name -> Some e | _ -> None)
    design

let find_architecture design entity_name =
  List.find_map
    (function
      | Architecture a when a.of_entity = entity_name -> Some a | _ -> None)
    design
