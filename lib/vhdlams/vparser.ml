module Diag = Amsvp_diag.Diag

exception Parse_error of string * int * int

type token = Ident of string | Number of float | Punct of string | Eof

type ptok = { tok : token; line : int; col : int }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let col = !i - !bol + 1 in
    let emit tok = out := { tok; line = !line; col } :: !out in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if is_digit c then begin
      let b = Buffer.create 8 in
      let seen_dot = ref false and seen_exp = ref false in
      let continue = ref true in
      while !continue && !i < n do
        let ch = src.[!i] in
        if is_digit ch || ch = '_' then begin
          if ch <> '_' then Buffer.add_char b ch;
          incr i
        end
        else if ch = '.' && not !seen_dot && not !seen_exp then begin
          seen_dot := true;
          Buffer.add_char b ch;
          incr i
        end
        else if (ch = 'e' || ch = 'E') && not !seen_exp then begin
          seen_exp := true;
          Buffer.add_char b 'e';
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then begin
            Buffer.add_char b src.[!i];
            incr i
          end
        end
        else continue := false
      done;
      match float_of_string_opt (Buffer.contents b) with
      | Some f -> emit (Number f)
      | None ->
          raise
            (Parse_error ("malformed number " ^ Buffer.contents b, !line, col))
    end
    else if is_ident_start c then begin
      let b = Buffer.create 8 in
      while !i < n && is_ident_char src.[!i] do
        Buffer.add_char b (Char.lowercase_ascii src.[!i]);
        incr i
      done;
      emit (Ident (Buffer.contents b))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.init 2 (fun k -> src.[!i + k])) else None
      in
      match two with
      | Some ((":=" | "==" | "=>" | "<=" | ">=" | "/=" | "**") as p) ->
          i := !i + 2;
          emit (Punct p)
      | _ -> (
          match c with
          | '(' | ')' | ',' | ';' | ':' | '.' | '\'' | '+' | '-' | '*' | '/'
          | '<' | '>' | '=' ->
              incr i;
              emit (Punct (String.make 1 c))
          | _ ->
              raise
                (Parse_error
                   (Printf.sprintf "unexpected character %c" c, !line, col)))
    end
  done;
  out := { tok = Eof; line = !line; col = n - !bol + 1 } :: !out;
  List.rev !out

type state = { toks : ptok array; mutable pos : int; file : string }

let peek st = st.toks.(st.pos).tok

let here st =
  let t = st.toks.(st.pos) in
  Diag.span ~file:st.file t.line t.col

let fail st msg =
  let t = st.toks.(st.pos) in
  raise (Parse_error (msg, t.line, t.col))

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let accept_punct st p =
  match peek st with
  | Punct q when q = p ->
      advance st;
      true
  | _ -> false

let eat_punct st p =
  if not (accept_punct st p) then fail st (Printf.sprintf "expected '%s'" p)

let accept_kw st kw =
  match peek st with
  | Ident s when s = kw ->
      advance st;
      true
  | _ -> false

let eat_kw st kw =
  if not (accept_kw st kw) then fail st (Printf.sprintf "expected '%s'" kw)

let eat_ident st =
  match peek st with
  | Ident s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let ident_list st =
  let rec go acc =
    let id = eat_ident st in
    if accept_punct st "," then go (id :: acc) else List.rev (id :: acc)
  in
  go []

(* Expressions. *)
let rec parse_or st =
  let rec go acc =
    if accept_kw st "or" then go (Vast.Binop (`Or, acc, parse_and st)) else acc
  in
  go (parse_and st)

and parse_and st =
  let rec go acc =
    if accept_kw st "and" then go (Vast.Binop (`And, acc, parse_cmp st))
    else acc
  in
  go (parse_cmp st)

and parse_cmp st =
  let a = parse_add st in
  let op =
    match peek st with
    | Punct "<" -> Some `Lt
    | Punct "<=" -> Some `Le
    | Punct ">" -> Some `Gt
    | Punct ">=" -> Some `Ge
    | _ -> None
  in
  match op with
  | None -> a
  | Some op ->
      advance st;
      Vast.Binop (op, a, parse_add st)

and parse_add st =
  let rec go acc =
    if accept_punct st "+" then go (Vast.Binop (`Add, acc, parse_mul st))
    else if accept_punct st "-" then go (Vast.Binop (`Sub, acc, parse_mul st))
    else acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    if accept_punct st "*" then go (Vast.Binop (`Mul, acc, parse_unary st))
    else if accept_punct st "/" then go (Vast.Binop (`Div, acc, parse_unary st))
    else acc
  in
  go (parse_unary st)

and parse_unary st =
  if accept_punct st "-" then Vast.Unop (`Neg, parse_unary st)
  else if accept_punct st "+" then parse_unary st
  else if accept_kw st "not" then Vast.Unop (`Not, parse_unary st)
  else parse_primary st

and parse_primary st =
  match peek st with
  | Number f ->
      advance st;
      Vast.Number f
  | Punct "(" ->
      advance st;
      let e = parse_or st in
      eat_punct st ")";
      e
  | Ident name -> (
      advance st;
      if accept_punct st "'" then begin
        let attr = eat_ident st in
        if attr <> "dot" then fail st ("unsupported attribute '" ^ attr);
        Vast.Dot name
      end
      else if accept_punct st "(" then begin
        let rec args acc =
          let e = parse_or st in
          if accept_punct st "," then args (e :: acc)
          else begin
            eat_punct st ")";
            List.rev (e :: acc)
          end
        in
        Vast.Call (name, args [])
      end
      else Vast.Name name)
  | Punct p -> fail st (Printf.sprintf "unexpected '%s'" p)
  | Eof -> fail st "unexpected end of input"

(* Statements. *)
let rec parse_stmt st =
  if accept_kw st "if" then begin
    let cond = parse_or st in
    eat_kw st "use";
    let rec stmts acc =
      match peek st with
      | Ident ("else" | "end") -> List.rev acc
      | _ -> stmts (parse_stmt st :: acc)
    in
    let then_b = stmts [] in
    let else_b = if accept_kw st "else" then stmts [] else [] in
    eat_kw st "end";
    eat_kw st "use";
    eat_punct st ";";
    Vast.If_use (cond, then_b, else_b)
  end
  else begin
    let span = here st in
    let q = eat_ident st in
    eat_punct st "==";
    let rhs = parse_or st in
    eat_punct st ";";
    Vast.Simult (q, rhs, span)
  end

let parse_assoc_list st =
  (* ( formal => actual, ... ) where actual is an expression or a
     terminal name; we capture the raw expression and let the
     elaborator interpret it. *)
  eat_punct st "(";
  let rec go acc =
    let formal = eat_ident st in
    eat_punct st "=>";
    let actual = parse_or st in
    if accept_punct st "," then go ((formal, actual) :: acc)
    else begin
      eat_punct st ")";
      List.rev ((formal, actual) :: acc)
    end
  in
  go []

let parse_entity st =
  (* entity <id> is [generic (...);] [port (...);] end [entity] [id]; *)
  let ename = eat_ident st in
  eat_kw st "is";
  let generics = ref [] in
  if accept_kw st "generic" then begin
    eat_punct st "(";
    let rec go () =
      let names = ident_list st in
      eat_punct st ":";
      eat_kw st "real";
      let default =
        if accept_punct st ":=" then Some (parse_or st) else None
      in
      List.iter
        (fun gname -> generics := { Vast.gname; default } :: !generics)
        names;
      if accept_punct st ";" then go ()
    in
    go ();
    eat_punct st ")";
    eat_punct st ";"
  end;
  let ports = ref [] in
  if accept_kw st "port" then begin
    eat_punct st "(";
    let rec go () =
      eat_kw st "terminal";
      let names = ident_list st in
      eat_punct st ":";
      eat_kw st "electrical";
      ports := !ports @ names;
      if accept_punct st ";" then go ()
    in
    go ();
    eat_punct st ")";
    eat_punct st ";"
  end;
  eat_kw st "end";
  ignore (accept_kw st "entity");
  (match peek st with Ident _ -> ignore (eat_ident st) | _ -> ());
  eat_punct st ";";
  { Vast.ename; generics = List.rev !generics; ports = !ports }

let parse_decl st =
  if accept_kw st "quantity" then begin
    let span = here st in
    let across = eat_ident st in
    eat_kw st "across";
    (* either "i through p to n" or directly "p to n" *)
    let first = eat_ident st in
    let through, pos =
      if accept_kw st "through" then (Some first, eat_ident st)
      else (None, first)
    in
    eat_kw st "to";
    let neg = eat_ident st in
    eat_punct st ";";
    Some (Vast.Quantity { across; through; pos; neg; qspan = span })
  end
  else if accept_kw st "terminal" then begin
    let names = ident_list st in
    eat_punct st ":";
    eat_kw st "electrical";
    eat_punct st ";";
    Some (Vast.Terminal names)
  end
  else if accept_kw st "constant" then begin
    let name = eat_ident st in
    eat_punct st ":";
    eat_kw st "real";
    eat_punct st ":=";
    let e = parse_or st in
    eat_punct st ";";
    Some (Vast.Constant (name, e))
  end
  else None

let actual_to_string st (e : Vast.expr) =
  match e with
  | Vast.Name s -> s
  | _ -> fail st "port map actual must be a terminal name or 'ground'"

let parse_architecture st =
  (* architecture <id> of <id> is decls begin body end [architecture] [id]; *)
  let aname = eat_ident st in
  eat_kw st "of";
  let of_entity = eat_ident st in
  eat_kw st "is";
  let decls = ref [] in
  let rec decl_loop () =
    match parse_decl st with
    | Some d ->
        decls := d :: !decls;
        decl_loop ()
    | None -> ()
  in
  decl_loop ();
  eat_kw st "begin";
  let body = ref [] in
  let rec body_loop () =
    match peek st with
    | Ident "end" -> ()
    | Ident "if" ->
        body := Vast.Stmt (parse_stmt st) :: !body;
        body_loop ()
    | Ident _ ->
        (* lookahead: "label : entity ..." is an instance, otherwise a
           simultaneous statement. *)
        let save = st.pos in
        let first = eat_ident st in
        if accept_punct st ":" then begin
          eat_kw st "entity";
          (* optional library prefix: work.name *)
          let name1 = eat_ident st in
          let entity =
            if accept_punct st "." then eat_ident st else name1
          in
          let generic_map =
            if accept_kw st "generic" then begin
              eat_kw st "map";
              parse_assoc_list st
            end
            else []
          in
          let port_map =
            if accept_kw st "port" then begin
              eat_kw st "map";
              List.map
                (fun (f, a) -> (f, actual_to_string st a))
                (parse_assoc_list st)
            end
            else []
          in
          eat_punct st ";";
          body :=
            Vast.Instance { label = first; entity; generic_map; port_map }
            :: !body;
          body_loop ()
        end
        else begin
          st.pos <- save;
          body := Vast.Stmt (parse_stmt st) :: !body;
          body_loop ()
        end
    | _ -> fail st "expected concurrent statement"
  in
  body_loop ();
  eat_kw st "end";
  ignore (accept_kw st "architecture");
  (match peek st with Ident _ -> ignore (eat_ident st) | _ -> ());
  eat_punct st ";";
  { Vast.aname; of_entity; decls = List.rev !decls; body = List.rev !body }

let state_of ?(file = "<input>") src =
  { toks = Array.of_list (tokenize src); pos = 0; file }

let parse ?file src =
  let st = state_of ?file src in
  let units = ref [] in
  let rec go () =
    match peek st with
    | Eof -> ()
    | Ident "library" ->
        advance st;
        ignore (ident_list st);
        eat_punct st ";";
        go ()
    | Ident "use" ->
        advance st;
        (* dotted name, possibly ending in .all *)
        ignore (eat_ident st);
        while accept_punct st "." do
          (match peek st with
          | Ident _ -> ignore (eat_ident st)
          | _ -> fail st "expected name after '.'")
        done;
        eat_punct st ";";
        go ()
    | Ident "entity" ->
        advance st;
        units := Vast.Entity (parse_entity st) :: !units;
        go ()
    | Ident "architecture" ->
        advance st;
        units := Vast.Architecture (parse_architecture st) :: !units;
        go ()
    | Ident other -> fail st (Printf.sprintf "unexpected '%s'" other)
    | Number _ | Punct _ -> fail st "expected a design unit"
  in
  go ();
  List.rev !units

let parse_expr_string ?file src =
  let st = state_of ?file src in
  let e = parse_or st in
  (match peek st with Eof -> () | _ -> fail st "trailing tokens");
  e
