(** Abstract syntax for the supported Verilog-AMS subset.

    The subset covers what the paper's models exercise (§III, Fig. 2):
    modules with electrical ports and internal nets, named branches,
    real parameters (with scale-factor literals), analog blocks made of
    contribution statements ([<+]) over potential and flow accesses,
    [ddt]/[idt] and math functions, conditionals, and hierarchical
    instantiation with parameter overrides.

    Every node carries the {!Amsvp_diag.Diag.span} of the token that
    opened it, so elaboration errors and lint findings can point at
    [file:line:col]. *)

type span = Amsvp_diag.Diag.span

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr = { edesc : expr_desc; espan : span }

and expr_desc =
  | Number of float
  | Ident of string  (** parameter or net reference *)
  | Access of string * string list
      (** [Access ("V", [a; b])] is [V(a,b)]; [Access ("I", [br])] may
          name a single net (flow to ground), a named branch, or a
          pair. *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list  (** [ddt], [idt], [sin], [exp], ... *)
  | Ternary of expr * expr * expr

type stmt = { sdesc : stmt_desc; sspan : span }

and stmt_desc =
  | Contribution of expr * expr  (** [access <+ rhs] *)
  | Assign of string * expr
      (** [x = rhs;] — a procedural (analog real) variable assignment;
          the elaborator substitutes the value symbolically at use
          sites, folding enclosing conditions in *)
  | If of expr * stmt list * stmt list
      (** [if (c) ...; else ...] — both branches are statement lists *)

type direction = Inout | Input | Output

type item = { idesc : item_desc; ispan : span }

and item_desc =
  | Port_direction of direction * string list  (** [inout a, b;] *)
  | Net_decl of string * string list  (** [electrical n1, n2;] *)
  | Ground_decl of string list  (** [ground gnd;] *)
  | Branch_decl of (string * string) * string list
      (** [branch (a,b) br1, br2;] *)
  | Parameter of string * expr  (** [parameter real r = 5k;] *)
  | Analog of stmt list  (** [analog begin ... end] *)
  | Instance of {
      module_name : string;
      instance_name : string;
      overrides : (string * expr) list;  (** [#(.r(5k))] *)
      connections : (string * string) list;  (** [.p(in)] *)
    }

type module_def = {
  name : string;
  ports : string list;
  items : item list;
  mspan : span;
}

type design = module_def list

val find_module : design -> string -> module_def option

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_module : Format.formatter -> module_def -> unit
