(** Elaboration: hierarchy flattening and model extraction.

    Flattening instantiates every module instance (substituting
    parameter overrides and binding ports to parent nets), executes the
    analog blocks symbolically — contributions accumulate per branch,
    [if]/ternary conditions wrap their contribution in a conditional —
    and yields one summed contribution per accessed branch, over global
    net names.

    A flat model is then consumed along the paper's two routes:
    {!to_circuit} recognises the constitutive equation of each branch
    (resistor, capacitor, inductor, sources, controlled sources) and
    builds the conservative network for the abstraction flow, while
    {!signal_flow_assignments} translates a purely signal-flow model
    directly (§III-A/C). *)

exception Elab_error of string * Amsvp_diag.Diag.span option
(** message and, when the error traces back to a source construct, its
    [file:line:col] span. *)

type branch_ref = {
  flow_id : string;  (** unique flow identifier (device name) *)
  pos : string;
  neg : string;  (** global net names *)
}

type contribution = {
  branch : branch_ref;
  is_flow : bool;  (** [I(...) <+ ...] vs [V(...) <+ ...] *)
  rhs : Expr.t;  (** summed, condition-wrapped, parameters substituted *)
  span : Amsvp_diag.Diag.span;
      (** the first contribution statement targeting this branch *)
}

type flat = {
  top : string;
  ground : string;
  nets : string list;  (** global nets, ground included *)
  input_ports : string list;  (** input-direction ports of the top module *)
  output_ports : string list;  (** output-direction ports of the top module *)
  contributions : contribution list;  (** in source order *)
}

val flatten : Ast.design -> top:string -> flat
(** @raise Elab_error on unknown modules/ports, arity mismatches,
    unresolved identifiers or unsupported constructs. *)

val classify : flat -> [ `Signal_flow | `Conservative ]
(** [`Signal_flow] when every contribution drives a potential to
    ground and no flow is accessed anywhere (Equation 1 models);
    [`Conservative] otherwise (Equation 2 models). *)

val to_circuit : flat -> Amsvp_netlist.Circuit.t
(** Recognise each branch contribution as a circuit device; every
    input-direction top port [p] is driven by an implicit voltage
    source carrying the external signal [p].
    @raise Elab_error on a contribution that matches no supported
    device pattern. *)

val signal_flow_assignments : flat -> (Expr.var * Expr.t) list
(** The ordered contribution list of a signal-flow model, with
    top-level input-port potentials rewritten to input signals, ready
    for [Flow.convert_signal_flow].
    @raise Elab_error if the model is not signal-flow. *)

val parse_and_abstract :
  string ->
  top:string ->
  outputs:Expr.var list ->
  dt:float ->
  Amsvp_core.Flow.report
(** One-call front door: parse Verilog-AMS source text, elaborate the
    top module and run the abstraction flow (conservative route) or the
    direct conversion (signal-flow route). *)
