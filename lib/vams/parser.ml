module Diag = Amsvp_diag.Diag

exception Parse_error of string * int * int

type state = {
  toks : Lexer.positioned array;
  mutable pos : int;
  file : string;
}

let peek st = st.toks.(st.pos).Lexer.token

let here st =
  let t = st.toks.(st.pos) in
  Diag.span ~file:st.file t.Lexer.line t.Lexer.col

let fail st msg =
  let s = here st in
  raise (Parse_error (msg, s.Diag.line, s.Diag.col))

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let eat_punct st p =
  match peek st with
  | Lexer.Punct q when q = p -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" p)

let accept_punct st p =
  match peek st with
  | Lexer.Punct q when q = p ->
      advance st;
      true
  | _ -> false

let eat_ident st =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let accept_keyword st kw =
  match peek st with
  | Lexer.Ident s when s = kw ->
      advance st;
      true
  | _ -> false

let eat_keyword st kw =
  if not (accept_keyword st kw) then fail st (Printf.sprintf "expected '%s'" kw)

let ident_list st =
  let rec go acc =
    let id = eat_ident st in
    if accept_punct st "," then go (id :: acc) else List.rev (id :: acc)
  in
  go []

let mk span edesc = { Ast.edesc; espan = span }

(* Expressions, precedence climbing. Compound nodes inherit the span of
   their leftmost constituent, so a finding on [a + b/c] points at [a]'s
   position — the start of the expression as written. *)
let rec parse_ternary st =
  let sp = here st in
  let c = parse_or st in
  if accept_punct st "?" then begin
    let a = parse_ternary st in
    eat_punct st ":";
    let b = parse_ternary st in
    mk sp (Ast.Ternary (c, a, b))
  end
  else c

and parse_or st =
  let sp = here st in
  let rec go acc =
    if accept_punct st "||" then
      go (mk sp (Ast.Binop (Ast.Or, acc, parse_and st)))
    else acc
  in
  go (parse_and st)

and parse_and st =
  let sp = here st in
  let rec go acc =
    if accept_punct st "&&" then
      go (mk sp (Ast.Binop (Ast.And, acc, parse_cmp st)))
    else acc
  in
  go (parse_cmp st)

and parse_cmp st =
  let sp = here st in
  let a = parse_add st in
  let op =
    match peek st with
    | Lexer.Punct "<" -> Some Ast.Lt
    | Lexer.Punct "<=" -> Some Ast.Le
    | Lexer.Punct ">" -> Some Ast.Gt
    | Lexer.Punct ">=" -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> a
  | Some op ->
      advance st;
      mk sp (Ast.Binop (op, a, parse_add st))

and parse_add st =
  let sp = here st in
  let rec go acc =
    if accept_punct st "+" then
      go (mk sp (Ast.Binop (Ast.Add, acc, parse_mul st)))
    else if accept_punct st "-" then
      go (mk sp (Ast.Binop (Ast.Sub, acc, parse_mul st)))
    else acc
  in
  go (parse_mul st)

and parse_mul st =
  let sp = here st in
  let rec go acc =
    if accept_punct st "*" then
      go (mk sp (Ast.Binop (Ast.Mul, acc, parse_unary st)))
    else if accept_punct st "/" then
      go (mk sp (Ast.Binop (Ast.Div, acc, parse_unary st)))
    else acc
  in
  go (parse_unary st)

and parse_unary st =
  let sp = here st in
  if accept_punct st "-" then mk sp (Ast.Unop (Ast.Neg, parse_unary st))
  else if accept_punct st "!" then mk sp (Ast.Unop (Ast.Not, parse_unary st))
  else if accept_punct st "+" then parse_unary st
  else parse_primary st

and parse_primary st =
  let sp = here st in
  match peek st with
  | Lexer.Number f ->
      advance st;
      mk sp (Ast.Number f)
  | Lexer.Punct "(" ->
      advance st;
      let e = parse_ternary st in
      eat_punct st ")";
      e
  | Lexer.Ident name ->
      advance st;
      if accept_punct st "(" then begin
        (* Access functions V(...)/I(...) take net names; everything
           else is a call with expression arguments. *)
        if name = "V" || name = "I" then begin
          let args = ident_list st in
          eat_punct st ")";
          mk sp (Ast.Access (name, args))
        end
        else begin
          let args =
            if accept_punct st ")" then []
            else begin
              let rec go acc =
                let e = parse_ternary st in
                if accept_punct st "," then go (e :: acc)
                else begin
                  eat_punct st ")";
                  List.rev (e :: acc)
                end
              in
              go []
            end
          in
          mk sp (Ast.Call (name, args))
        end
      end
      else mk sp (Ast.Ident name)
  | Lexer.Punct p -> fail st (Printf.sprintf "unexpected '%s'" p)
  | Lexer.Eof -> fail st "unexpected end of input"

(* Statements. *)
let rec parse_stmt st =
  let sp = here st in
  if accept_keyword st "if" then begin
    eat_punct st "(";
    let c = parse_ternary st in
    eat_punct st ")";
    let then_branch = parse_block_or_stmt st in
    let else_branch =
      if accept_keyword st "else" then parse_block_or_stmt st else []
    in
    { Ast.sdesc = Ast.If (c, then_branch, else_branch); sspan = sp }
  end
  else begin
    let lhs = parse_primary st in
    match lhs.Ast.edesc with
    | Ast.Access _ ->
        eat_punct st "<+";
        let rhs = parse_ternary st in
        eat_punct st ";";
        { Ast.sdesc = Ast.Contribution (lhs, rhs); sspan = sp }
    | Ast.Ident name when accept_punct st "=" ->
        let rhs = parse_ternary st in
        eat_punct st ";";
        { Ast.sdesc = Ast.Assign (name, rhs); sspan = sp }
    | _ -> fail st "expected a contribution (<+) or an assignment (=)"
  end

and parse_block_or_stmt st =
  if accept_keyword st "begin" then begin
    let rec go acc =
      if accept_keyword st "end" then List.rev acc
      else go (parse_stmt st :: acc)
    in
    go []
  end
  else [ parse_stmt st ]

let parse_parameter st sp =
  (* parameter [real|integer] name = expr ; *)
  (match peek st with
  | Lexer.Ident ("real" | "integer") -> advance st
  | _ -> ());
  let name = eat_ident st in
  eat_punct st "=";
  let e = parse_ternary st in
  eat_punct st ";";
  { Ast.idesc = Ast.Parameter (name, e); ispan = sp }

let parse_overrides st =
  (* #(.name(expr), ...) *)
  if accept_punct st "#" then begin
    eat_punct st "(";
    let rec go acc =
      eat_punct st ".";
      let name = eat_ident st in
      eat_punct st "(";
      let e = parse_ternary st in
      eat_punct st ")";
      if accept_punct st "," then go ((name, e) :: acc)
      else begin
        eat_punct st ")";
        List.rev ((name, e) :: acc)
      end
    in
    go []
  end
  else []

let parse_connections st =
  eat_punct st "(";
  if accept_punct st ")" then []
  else if accept_punct st "." then begin
    (* Named: .port(net), ... *)
    let rec go acc =
      let port = eat_ident st in
      eat_punct st "(";
      let net = eat_ident st in
      eat_punct st ")";
      if accept_punct st "," then begin
        eat_punct st ".";
        go ((port, net) :: acc)
      end
      else begin
        eat_punct st ")";
        List.rev ((port, net) :: acc)
      end
    in
    go []
  end
  else begin
    (* Positional: net, net, ... — port names resolved at elaboration. *)
    let nets = ident_list st in
    eat_punct st ")";
    List.map (fun n -> ("", n)) nets
  end

let parse_item st =
  let sp = here st in
  let item idesc = { Ast.idesc; ispan = sp } in
  let direction =
    if accept_keyword st "inout" then Some Ast.Inout
    else if accept_keyword st "input" then Some Ast.Input
    else if accept_keyword st "output" then Some Ast.Output
    else None
  in
  match direction with
  | Some d ->
      (* inout [electrical] a, b ; *)
      ignore (accept_keyword st "electrical");
      let ids = ident_list st in
      eat_punct st ";";
      item (Ast.Port_direction (d, ids))
  | None ->
      if accept_keyword st "electrical" then begin
        let ids = ident_list st in
        eat_punct st ";";
        item (Ast.Net_decl ("electrical", ids))
      end
      else if accept_keyword st "ground" then begin
        let ids = ident_list st in
        eat_punct st ";";
        item (Ast.Ground_decl ids)
      end
      else if accept_keyword st "branch" then begin
        eat_punct st "(";
        let a = eat_ident st in
        eat_punct st ",";
        let b = eat_ident st in
        eat_punct st ")";
        let names = ident_list st in
        eat_punct st ";";
        item (Ast.Branch_decl ((a, b), names))
      end
      else if accept_keyword st "real" then begin
        (* analog real variable declaration: names are brought into
           scope by their first assignment, the declaration itself
           carries no information we need *)
        let ids = ident_list st in
        eat_punct st ";";
        item (Ast.Net_decl ("real", ids))
      end
      else if accept_keyword st "parameter" then parse_parameter st sp
      else if accept_keyword st "analog" then begin
        let stmts = parse_block_or_stmt st in
        item (Ast.Analog stmts)
      end
      else begin
        (* Instance: module_name [#(...)] inst_name ( connections ) ; *)
        let module_name = eat_ident st in
        let overrides = parse_overrides st in
        let instance_name = eat_ident st in
        let connections = parse_connections st in
        eat_punct st ";";
        item (Ast.Instance { module_name; instance_name; overrides; connections })
      end

let parse_module st =
  let sp = here st in
  eat_keyword st "module";
  let name = eat_ident st in
  let ports =
    if accept_punct st "(" then begin
      if accept_punct st ")" then []
      else begin
        let ids = ident_list st in
        eat_punct st ")";
        ids
      end
    end
    else []
  in
  eat_punct st ";";
  let rec items acc =
    if accept_keyword st "endmodule" then List.rev acc
    else items (parse_item st :: acc)
  in
  let items = items [] in
  { Ast.name; ports; items; mspan = sp }

let state_of ?(file = "<input>") src =
  { toks = Array.of_list (Lexer.tokenize src); pos = 0; file }

let parse ?file src =
  let st = state_of ?file src in
  let rec go acc =
    match peek st with
    | Lexer.Eof -> List.rev acc
    | _ -> go (parse_module st :: acc)
  in
  go []

let parse_expr_string ?file src =
  let st = state_of ?file src in
  let e = parse_ternary st in
  (match peek st with
  | Lexer.Eof -> ()
  | _ -> fail st "trailing tokens after expression");
  e
