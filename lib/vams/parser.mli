(** Recursive-descent parser for the Verilog-AMS subset.

    Positional instance connections are recorded with an empty port
    name and resolved against the instantiated module's port order
    during elaboration. Every AST node is stamped with the
    [file:line:col] span of its first token; [file] defaults to
    ["<input>"] for in-memory sources. *)

exception Parse_error of string * int * int
(** message, line, column *)

val parse : ?file:string -> string -> Ast.design
(** Parse source text.
    @raise Parse_error or {!Lexer.Lex_error} on malformed input. *)

val parse_expr_string : ?file:string -> string -> Ast.expr
(** Parse a single expression (used by tests). *)
