module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component
module Diag = Amsvp_diag.Diag

exception Elab_error of string * Diag.span option

let fail ?span fmt =
  Printf.ksprintf (fun s -> raise (Elab_error (s, span))) fmt

type branch_ref = { flow_id : string; pos : string; neg : string }

type contribution = {
  branch : branch_ref;
  is_flow : bool;
  rhs : Expr.t;
  span : Diag.span;
}

type flat = {
  top : string;
  ground : string;
  nets : string list;
  input_ports : string list;
  output_ports : string list;
  contributions : contribution list;
}

(* Elaboration context of one module instance. *)
type ctx = {
  design : Ast.design;
  path : string;  (* hierarchical prefix, "" for top *)
  bindings : (string * string) list;  (* port -> global net *)
  params : (string * float) list;
  branches : (string * (string * string)) list;  (* named branch -> pair *)
  ground_nets : (string, unit) Hashtbl.t;  (* global ground aliases *)
  mutable acc : (branch_ref * bool * Expr.t * Diag.span) list;  (* reverse *)
  mutable nets : string list;
  mutable locals : (string * Expr.t) list;  (* analog real variables *)
}

let qualify ctx name = if ctx.path = "" then name else ctx.path ^ "." ^ name

let resolve_net ctx name =
  match List.assoc_opt name ctx.bindings with
  | Some net -> net
  | None ->
      let g = qualify ctx name in
      if Hashtbl.mem ctx.ground_nets g then "gnd" else g

let note_net ctx net =
  if not (List.mem net ctx.nets) then ctx.nets <- net :: ctx.nets

(* Evaluate a constant expression (parameter values, overrides). *)
let rec const_eval ctx (e : Ast.expr) =
  let span = e.Ast.espan in
  match e.Ast.edesc with
  | Ast.Number f -> f
  | Ast.Ident p -> (
      match List.assoc_opt p ctx.params with
      | Some v -> v
      | None -> fail ~span "unknown parameter %s in %s" p ctx.path)
  | Ast.Unop (Ast.Neg, a) -> -.const_eval ctx a
  | Ast.Unop (Ast.Not, _) -> fail ~span "boolean in constant expression"
  | Ast.Binop (op, a, b) -> (
      let x = const_eval ctx a and y = const_eval ctx b in
      match op with
      | Ast.Add -> x +. y
      | Ast.Sub -> x -. y
      | Ast.Mul -> x *. y
      | Ast.Div -> x /. y
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or ->
          fail ~span "comparison in constant expression")
  | Ast.Call _ | Ast.Access _ | Ast.Ternary _ ->
      fail ~span "unsupported constant expression"

(* Branch resolution: named branches, single nets (to ground) and net
   pairs. Unnamed branches are unique per (instance, oriented pair). *)
let branch_of_access ctx ~span (args : string list) =
  match args with
  | [ x ] -> (
      match List.assoc_opt x ctx.branches with
      | Some (a, b) ->
          let pos = resolve_net ctx a and neg = resolve_net ctx b in
          { flow_id = qualify ctx x; pos; neg }
      | None ->
          let pos = resolve_net ctx x in
          {
            flow_id = qualify ctx (Printf.sprintf "br_%s_gnd" x);
            pos;
            neg = "gnd";
          })
  | [ a; b ] ->
      let pos = resolve_net ctx a and neg = resolve_net ctx b in
      {
        flow_id = qualify ctx (Printf.sprintf "br_%s_%s" a b);
        pos;
        neg;
      }
  | _ -> fail ~span "access takes one or two nets"

let unary_fun_of_name = function
  | "sin" -> Some Expr.Sin
  | "cos" -> Some Expr.Cos
  | "exp" -> Some Expr.Exp
  | "ln" | "log" -> Some Expr.Ln
  | "sqrt" -> Some Expr.Sqrt
  | "abs" -> Some Expr.Abs
  | "tanh" -> Some Expr.Tanh
  | _ -> None

let rec expr_of_ast ctx (e : Ast.expr) =
  let span = e.Ast.espan in
  match e.Ast.edesc with
  | Ast.Number f -> Expr.const f
  | Ast.Ident p -> (
      match List.assoc_opt p ctx.locals with
      | Some e -> e
      | None -> (
          match List.assoc_opt p ctx.params with
          | Some v -> Expr.const v
          | None ->
              fail ~span "unresolved identifier %s (nets need V()/I() access)"
                p))
  | Ast.Access ("V", args) -> (
      match args with
      | [ x ] when not (List.mem_assoc x ctx.branches) ->
          let net = resolve_net ctx x in
          note_net ctx net;
          if net = "gnd" then Expr.zero
          else Expr.var (Expr.potential net "gnd")
      | _ ->
          let br = branch_of_access ctx ~span args in
          note_net ctx br.pos;
          note_net ctx br.neg;
          if br.pos = br.neg then Expr.zero
          else Expr.var (Expr.potential br.pos br.neg))
  | Ast.Access ("I", args) ->
      let br = branch_of_access ctx ~span args in
      note_net ctx br.pos;
      note_net ctx br.neg;
      Expr.var (Expr.flow br.flow_id "")
  | Ast.Access (f, _) -> fail ~span "unknown access function %s" f
  | Ast.Unop (Ast.Neg, a) -> Expr.neg (expr_of_ast ctx a)
  | Ast.Unop (Ast.Not, _) -> fail ~span "boolean operator outside a condition"
  | Ast.Binop (op, a, b) -> (
      match op with
      | Ast.Add -> Expr.( + ) (expr_of_ast ctx a) (expr_of_ast ctx b)
      | Ast.Sub -> Expr.( - ) (expr_of_ast ctx a) (expr_of_ast ctx b)
      | Ast.Mul -> Expr.( * ) (expr_of_ast ctx a) (expr_of_ast ctx b)
      | Ast.Div -> Expr.( / ) (expr_of_ast ctx a) (expr_of_ast ctx b)
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or ->
          fail ~span "comparison outside a condition")
  | Ast.Call ("ddt", [ a ]) -> Expr.Ddt (expr_of_ast ctx a)
  | Ast.Call ("idt", [ a ]) -> Expr.Idt (expr_of_ast ctx a)
  | Ast.Call (f, [ a ]) -> (
      match unary_fun_of_name f with
      | Some fn -> Expr.App (fn, expr_of_ast ctx a)
      | None -> fail ~span "unsupported function %s" f)
  | Ast.Call (f, _) -> fail ~span "unsupported function %s or arity" f
  | Ast.Ternary (c, a, b) ->
      Expr.Cond (cond_of_ast ctx c, expr_of_ast ctx a, expr_of_ast ctx b)

and cond_of_ast ctx (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Binop (Ast.Lt, a, b) ->
      Expr.Cmp (Expr.Lt, expr_of_ast ctx a, expr_of_ast ctx b)
  | Ast.Binop (Ast.Le, a, b) ->
      Expr.Cmp (Expr.Le, expr_of_ast ctx a, expr_of_ast ctx b)
  | Ast.Binop (Ast.Gt, a, b) ->
      Expr.Cmp (Expr.Gt, expr_of_ast ctx a, expr_of_ast ctx b)
  | Ast.Binop (Ast.Ge, a, b) ->
      Expr.Cmp (Expr.Ge, expr_of_ast ctx a, expr_of_ast ctx b)
  | Ast.Binop (Ast.And, a, b) ->
      Expr.And (cond_of_ast ctx a, cond_of_ast ctx b)
  | Ast.Binop (Ast.Or, a, b) -> Expr.Or (cond_of_ast ctx a, cond_of_ast ctx b)
  | Ast.Unop (Ast.Not, a) -> Expr.Not (cond_of_ast ctx a)
  | _ -> fail ~span:e.Ast.espan "expected a comparison in condition"

(* Symbolic execution of an analog block: contributions under an [if]
   apply only when the condition holds, and multiple contributions to
   the same branch accumulate (Verilog-AMS [<+] semantics). *)
let rec exec_stmts ctx guard stmts =
  List.iter
    (fun (s : Ast.stmt) ->
      let sspan = s.Ast.sspan in
      match s.Ast.sdesc with
      | Ast.Contribution ({ Ast.edesc = Ast.Access (f, args); espan }, rhs) ->
          let is_flow =
            match f with
            | "I" -> true
            | "V" -> false
            | _ -> fail ~span:espan "contribution target must be V or I"
          in
          let br = branch_of_access ctx ~span:espan args in
          note_net ctx br.pos;
          note_net ctx br.neg;
          let rhs = expr_of_ast ctx rhs in
          let rhs =
            match guard with
            | None -> rhs
            | Some c -> Expr.Cond (c, rhs, Expr.zero)
          in
          ctx.acc <- (br, is_flow, rhs, sspan) :: ctx.acc
      | Ast.Contribution _ ->
          fail ~span:sspan "contribution target must be an access"
      | Ast.Assign (name, rhs) ->
          (* Symbolic execution of the procedural assignment: under a
             guard, the variable keeps its previous value in the other
             region. *)
          let rhs = expr_of_ast ctx rhs in
          let value =
            match guard with
            | None -> rhs
            | Some c ->
                let previous =
                  match List.assoc_opt name ctx.locals with
                  | Some e -> e
                  | None -> Expr.zero
                in
                Expr.Cond (c, rhs, previous)
          in
          ctx.locals <-
            (name, Expr.simplify value)
            :: List.remove_assoc name ctx.locals
      | Ast.If (c, then_b, else_b) ->
          let c = cond_of_ast ctx c in
          let combined g extra =
            match g with None -> Some extra | Some g0 -> Some (Expr.And (g0, extra))
          in
          exec_stmts ctx (combined guard c) then_b;
          if else_b <> [] then exec_stmts ctx (combined guard (Expr.Not c)) else_b)
    stmts

let rec elaborate_module design ~path ~bindings ~overrides ~ground_nets ~acc_ctx
    (m : Ast.module_def) =
  (* Parameter environment: defaults overridden by the instance. *)
  let base_ctx =
    {
      design;
      path;
      bindings;
      params = [];
      branches = [];
      ground_nets;
      acc = [];
      nets = [];
      locals = [];
    }
  in
  let params =
    List.filter_map
      (fun (item : Ast.item) ->
        match item.Ast.idesc with
        | Ast.Parameter (name, default) ->
            let v =
              match List.assoc_opt name overrides with
              | Some v -> v
              | None -> const_eval { base_ctx with params = base_ctx.params } default
            in
            Some (name, v)
        | _ -> None)
      m.Ast.items
  in
  let branches =
    List.concat_map
      (fun (item : Ast.item) ->
        match item.Ast.idesc with
        | Ast.Branch_decl (pair, names) -> List.map (fun n -> (n, pair)) names
        | _ -> [])
      m.Ast.items
  in
  (* Ground declarations become global aliases. *)
  List.iter
    (fun (item : Ast.item) ->
      match item.Ast.idesc with
      | Ast.Ground_decl names ->
          List.iter
            (fun n ->
              let g =
                match List.assoc_opt n bindings with
                | Some net -> net
                | None -> if path = "" then n else path ^ "." ^ n
              in
              Hashtbl.replace ground_nets g ())
            names
      | _ -> ())
    m.Ast.items;
  let ctx = { base_ctx with params; branches } in
  List.iter
    (fun (item : Ast.item) ->
      let ispan = item.Ast.ispan in
      match item.Ast.idesc with
      | Ast.Analog stmts ->
          exec_stmts ctx None stmts;
          (* chronological order: earlier chunks first *)
          acc_ctx := !acc_ctx @ List.rev ctx.acc;
          ctx.acc <- []
      | Ast.Instance { module_name; instance_name; overrides = ovr; connections }
        -> (
          match Ast.find_module design module_name with
          | None -> fail ~span:ispan "unknown module %s" module_name
          | Some child ->
              let child_path =
                if path = "" then instance_name else path ^ "." ^ instance_name
              in
              let connections =
                (* Positional connections get port names by position. *)
                if List.for_all (fun (p, _) -> p = "") connections then
                  List.mapi
                    (fun i (_, net) ->
                      match List.nth_opt child.Ast.ports i with
                      | Some port -> (port, net)
                      | None ->
                          fail ~span:ispan "too many connections for %s"
                            module_name)
                    connections
                else connections
              in
              let child_bindings =
                List.map
                  (fun (port, net) ->
                    if not (List.mem port child.Ast.ports) then
                      fail ~span:ispan "module %s has no port %s" module_name
                        port;
                    (port, resolve_net ctx net))
                  connections
              in
              let child_overrides =
                List.map (fun (name, e) -> (name, const_eval ctx e)) ovr
              in
              elaborate_module design ~path:child_path ~bindings:child_bindings
                ~overrides:child_overrides ~ground_nets ~acc_ctx child)
      | Ast.Port_direction _ | Ast.Net_decl _ | Ast.Ground_decl _
      | Ast.Branch_decl _ | Ast.Parameter _ ->
          ())
    m.Ast.items

let flatten design ~top =
  match Ast.find_module design top with
  | None -> fail "unknown top module %s" top
  | Some m ->
      let ground_nets = Hashtbl.create 4 in
      (* The conventional ground names at top level. *)
      Hashtbl.replace ground_nets "gnd" ();
      Hashtbl.replace ground_nets "0" ();
      let acc_ctx = ref [] in
      (* Top-level ports are bound to nets of the same name. *)
      let bindings = List.map (fun p -> (p, p)) m.Ast.ports in
      elaborate_module design ~path:"" ~bindings ~overrides:[] ~ground_nets
        ~acc_ctx m;
      let raw = !acc_ctx in
      (* Rewrite ground aliases and collect nets. *)
      let canon net = if Hashtbl.mem ground_nets net then "gnd" else net in
      let raw =
        List.map
          (fun (br, is_flow, rhs, span) ->
            let br = { br with pos = canon br.pos; neg = canon br.neg } in
            let rhs =
              Expr.subst
                (fun v ->
                  match v.Expr.base with
                  | Expr.Potential (a, b) ->
                      let a = canon a and b = canon b in
                      if a = b then Some Expr.zero
                      else Some (Expr.var { v with Expr.base = Expr.Potential (a, b) })
                  | Expr.Flow _ | Expr.Signal _ | Expr.Param _ -> None)
                rhs
            in
            (br, is_flow, rhs, span))
          raw
      in
      (* Merge contributions per (branch, kind); the merged contribution
         keeps the span of its first statement. *)
      let merged = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun (br, is_flow, rhs, span) ->
          let key = (br.flow_id, is_flow) in
          match Hashtbl.find_opt merged key with
          | Some (br0, acc, span0) ->
              Hashtbl.replace merged key (br0, Expr.( + ) acc rhs, span0)
          | None ->
              Hashtbl.replace merged key (br, rhs, span);
              order := key :: !order)
        raw;
      let contributions =
        List.rev_map
          (fun key ->
            let br, rhs, span = Hashtbl.find merged key in
            { branch = br; is_flow = snd key; rhs = Expr.simplify rhs; span })
          !order
      in
      let nets =
        let module S = Set.Make (String) in
        let s =
          List.fold_left
            (fun s c ->
              let s = S.add c.branch.pos (S.add c.branch.neg s) in
              Expr.Var_set.fold
                (fun v s ->
                  match v.Expr.base with
                  | Expr.Potential (a, b) -> S.add a (S.add b s)
                  | Expr.Flow _ | Expr.Signal _ | Expr.Param _ -> s)
                (Expr.vars c.rhs) s)
            (S.singleton "gnd") contributions
        in
        S.elements s
      in
      let direction d =
        List.concat_map
          (fun (item : Ast.item) ->
            match item.Ast.idesc with
            | Ast.Port_direction (dd, names) when dd = d -> names
            | _ -> [])
          m.Ast.items
      in
      {
        top;
        ground = "gnd";
        nets;
        input_ports = direction Ast.Input;
        output_ports = direction Ast.Output;
        contributions;
      }

let accesses_flow flat =
  List.exists
    (fun c ->
      c.is_flow
      || Expr.Var_set.exists
           (fun v ->
             match v.Expr.base with
             | Expr.Flow _ -> true
             | Expr.Potential _ | Expr.Signal _ | Expr.Param _ -> false)
           (Expr.vars c.rhs))
    flat.contributions

let classify flat =
  let all_to_ground =
    List.for_all (fun c -> (not c.is_flow) && c.branch.neg = "gnd") flat.contributions
  in
  if all_to_ground && not (accesses_flow flat) then `Signal_flow
  else `Conservative

(* Device recognition over the summed branch contribution. *)
let recognise (c : contribution) =
  let br = c.branch in
  let span = c.span in
  let self_flow = Expr.flow br.flow_id "" in
  let self_pot = Expr.potential br.pos br.neg in
  let name =
    String.map
      (fun ch -> if ch = '(' || ch = ')' || ch = ',' || ch = '.' then '_' else ch)
      br.flow_id
  in
  let mk kind = Component.make ~name ~pos:br.pos ~neg:br.neg kind in
  let is p v = Eqn.compare_pseudo p v = 0 in
  (* Conductance coefficient of a per-region branch: g * V(self). *)
  let region_conductance e =
    match Eqn.plinear_form e with
    | Some ([ (p, g) ], 0.0) when is p (Eqn.Cur self_pot) -> Some g
    | Some _ | None -> None
  in
  (* An if/else pair of guarded contributions accumulates to
     [Cond(c,a,0) + Cond(not c,b,0)]: normalise it to the canonical
     ternary before recognition. *)
  let rhs =
    match c.rhs with
    | Expr.Add
        ( Expr.Cond (c1, a, Expr.Const 0.0),
          Expr.Cond (Expr.Not c2, b, Expr.Const 0.0) )
      when compare c1 c2 = 0 ->
        Expr.Cond (c1, a, b)
    | e -> e
  in
  match rhs with
  (* I(a,b) <+ V(a,b) >= thr ? g_on*V(a,b) : g_off*V(a,b) :
     two-segment piecewise-linear conductance (Section III-C). *)
  | Expr.Cond
      ( Expr.Cmp (cmp, Expr.Var v, Expr.Const threshold),
        then_branch,
        else_branch )
    when c.is_flow
         && Expr.equal_var v self_pot
         && (cmp = Expr.Ge || cmp = Expr.Gt) -> (
      match (region_conductance then_branch, region_conductance else_branch) with
      | Some g_on, Some g_off ->
          mk (Component.Pwl_conductance { g_on; g_off; threshold })
      | _ ->
          fail ~span "unsupported piecewise-linear contribution on branch %s"
            br.flow_id)
  | _ -> (
  match Eqn.plinear_form rhs with
  | None -> fail ~span "nonlinear contribution on branch %s" br.flow_id
  | Some (items, k) -> (
      match (c.is_flow, items, k) with
      (* V(a,b) <+ r * I(self) : resistor *)
      | false, [ (p, r) ], 0.0 when is p (Eqn.Cur self_flow) -> mk (Component.Resistor r)
      (* V(a,b) <+ l * ddt(I(self)) : inductor *)
      | false, [ (p, l) ], 0.0 when is p (Eqn.Der self_flow) -> mk (Component.Inductor l)
      (* V(a,b) <+ const : voltage source *)
      | false, [], v -> mk (Component.Vsource (Component.Dc v))
      (* V(a,b) <+ g*V(c,d) [+ g*(V(c)-V(d))] : controlled source *)
      | false, [ (Eqn.Cur { Expr.base = Expr.Potential (cp, cn); delay = 0 }, g) ], 0.0 ->
          mk (Component.Vcvs { gain = g; ctrl_pos = cp; ctrl_neg = cn })
      | ( false,
          [
            (Eqn.Cur { Expr.base = Expr.Potential (a1, g1); delay = 0 }, ga);
            (Eqn.Cur { Expr.base = Expr.Potential (a2, g2); delay = 0 }, gb);
          ],
          0.0 )
        when g1 = "gnd" && g2 = "gnd" && ga = -.gb ->
          (* g*(V(a1) - V(a2)) written over ground-referenced accesses *)
          mk (Component.Vcvs { gain = ga; ctrl_pos = a1; ctrl_neg = a2 })
      (* I(a,b) <+ c * ddt(V(self)) : capacitor *)
      | true, [ (p, cap) ], 0.0 when is p (Eqn.Der self_pot) -> mk (Component.Capacitor cap)
      (* I(a,b) <+ g * V(self) : conductance *)
      | true, [ (p, g) ], 0.0 when is p (Eqn.Cur self_pot) && g <> 0.0 ->
          mk (Component.Resistor (1.0 /. g))
      (* I(a,b) <+ const : current source *)
      | true, [], v -> mk (Component.Isource (Component.Dc v))
      (* I(a,b) <+ gm * V(c,d) : transconductance *)
      | true, [ (Eqn.Cur { Expr.base = Expr.Potential (cp, cn); delay = 0 }, gm) ], 0.0 ->
          mk (Component.Vccs { gm; ctrl_pos = cp; ctrl_neg = cn })
      | _ ->
          fail ~span "unrecognised constitutive equation on branch %s: %s"
            br.flow_id
            (Expr.to_string c.rhs)))

let to_circuit flat =
  let circuit = Circuit.create ~ground:flat.ground () in
  List.iter (fun c -> Circuit.add circuit (recognise c)) flat.contributions;
  (* External drive: each input-direction top port is driven by a
     voltage source carrying the homonymous input signal. *)
  List.iter
    (fun p ->
      Circuit.add_vsource circuit ~name:("__drv_" ^ p) ~pos:p ~neg:flat.ground
        (Component.Input p))
    flat.input_ports;
  circuit

let signal_flow_assignments flat =
  (match classify flat with
  | `Signal_flow -> ()
  | `Conservative -> fail "model %s is not in signal-flow form" flat.top);
  let rewrite_inputs e =
    Expr.subst
      (fun v ->
        match v.Expr.base with
        | Expr.Potential (a, "gnd") when List.mem a flat.input_ports ->
            Some (Expr.var { v with Expr.base = Expr.Signal a })
        | Expr.Potential _ | Expr.Flow _ | Expr.Signal _ | Expr.Param _ -> None)
      e
  in
  List.map
    (fun c -> (Expr.potential c.branch.pos "gnd", rewrite_inputs c.rhs))
    flat.contributions

let parse_and_abstract src ~top ~outputs ~dt =
  let design = Parser.parse src in
  let flat = flatten design ~top in
  match classify flat with
  | `Conservative ->
      let circuit = to_circuit flat in
      Amsvp_core.Flow.abstract_circuit ~name:top circuit ~outputs ~dt
  | `Signal_flow ->
      let contributions = signal_flow_assignments flat in
      let program =
        Amsvp_core.Flow.convert_signal_flow ~name:top ~inputs:flat.input_ports
          ~outputs ~contributions ~dt
      in
      {
        Amsvp_core.Flow.program;
        nodes = List.length flat.nets;
        branches = List.length flat.contributions;
        classes = 0;
        fidelity = `Paper;
        variants = 0;
        definitions = List.length contributions;
        explain = Amsvp_core.Explain.of_signal_flow program;
        acquisition_s = 0.0;
        enrichment_s = 0.0;
        assemble_s = 0.0;
        solve_s = 0.0;
      }
