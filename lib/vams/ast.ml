type span = Amsvp_diag.Diag.span

type unop = Neg | Not

type binop = Add | Sub | Mul | Div | Lt | Le | Gt | Ge | And | Or

type expr = { edesc : expr_desc; espan : span }

and expr_desc =
  | Number of float
  | Ident of string
  | Access of string * string list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Ternary of expr * expr * expr

type stmt = { sdesc : stmt_desc; sspan : span }

and stmt_desc =
  | Contribution of expr * expr
  | Assign of string * expr
  | If of expr * stmt list * stmt list

type direction = Inout | Input | Output

type item = { idesc : item_desc; ispan : span }

and item_desc =
  | Port_direction of direction * string list
  | Net_decl of string * string list
  | Ground_decl of string list
  | Branch_decl of (string * string) * string list
  | Parameter of string * expr
  | Analog of stmt list
  | Instance of {
      module_name : string;
      instance_name : string;
      overrides : (string * expr) list;
      connections : (string * string) list;
    }

type module_def = {
  name : string;
  ports : string list;
  items : item list;
  mspan : span;
}

type design = module_def list

let find_module design name =
  List.find_opt (fun m -> m.name = name) design

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr ppf e =
  match e.edesc with
  | Number f -> Format.fprintf ppf "%g" f
  | Ident s -> Format.pp_print_string ppf s
  | Access (f, args) -> Format.fprintf ppf "%s(%s)" f (String.concat "," args)
  | Unop (Neg, e) -> Format.fprintf ppf "-(%a)" pp_expr e
  | Unop (Not, e) -> Format.fprintf ppf "!(%a)" pp_expr e
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_expr)
        args
  | Ternary (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt ppf s =
  match s.sdesc with
  | Contribution (lhs, rhs) ->
      Format.fprintf ppf "%a <+ %a;" pp_expr lhs pp_expr rhs
  | Assign (name, rhs) -> Format.fprintf ppf "%s = %a;" name pp_expr rhs
  | If (c, ts, []) ->
      Format.fprintf ppf "if (%a) %a" pp_expr c
        (Format.pp_print_list pp_stmt)
        ts
  | If (c, ts, es) ->
      Format.fprintf ppf "if (%a) %a else %a" pp_expr c
        (Format.pp_print_list pp_stmt)
        ts
        (Format.pp_print_list pp_stmt)
        es

let pp_module ppf m =
  Format.fprintf ppf "@[<v>module %s (%s);@,...%d items@,endmodule@]" m.name
    (String.concat ", " m.ports)
    (List.length m.items)
