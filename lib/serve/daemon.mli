(** The sweep service: a long-running daemon on a Unix-domain socket.

    One-shot [amsvp sweep] pays the whole Fig.-4 abstraction flow —
    acquisition, enrichment, assembly, bytecode compilation — on every
    invocation. The daemon pays it once: prepared sweeps
    ({!Amsvp_sweep.Runner.ctx}, which bundle the recorded plan and the
    compiled template) stay warm in an LRU cache keyed by the canonical
    spec text, so a repeated request skips straight to point execution,
    and the forked {!Procpool} workers inherit the warm cache
    copy-on-write.

    Requests are served one client at a time over the line-delimited
    JSON {!Protocol}; within a sweep, points are sharded across
    [workers] processes. With [checkpoint_dir] set, every completed
    point is appended to a per-sweep checkpoint file, so a daemon
    killed mid-sweep resumes on resubmit, streaming recovered points
    first and executing only the remainder.

    The daemon journals under origin ["daemon"] and ingests each
    worker's journal events, spans, and counter deltas shipped over
    the {!Protocol} telemetry frames, so the attached journal sink
    and the shutdown trace cover the whole service; worker outcome
    counters (spawned/crashed/timeouts/re-dispatches/torn telemetry),
    in-flight points, journal drops, and GC heap words are surfaced in
    the [Stats] reply.

    SIGTERM / SIGINT (or a [Shutdown] request) drain gracefully: no new
    point is dispatched, in-flight points finish and are checkpointed,
    the client gets a [Done] with [complete = false], the journal sink
    is flushed and the socket unlinked.

    The caller must keep the process single-domain: the point workers
    are forked, and fork and live domains do not mix. *)

type config = {
  socket_path : string;
  workers : int;  (** forked point-worker processes per sweep *)
  checkpoint_dir : string option;
  point_timeout_s : float option;
      (** default per-point budget for specs that set none *)
  retries : int;  (** re-dispatches per crashed point *)
  ctx_cache_max : int;  (** warm prepared sweeps kept *)
  metrics_out : string option;
      (** Prometheus textfile the daemon rewrites atomically
          (write-to-temp + rename) every [metrics_every_s], on each
          completed request, and at startup/shutdown *)
  metrics_every_s : float;
  trace_out : string option;
      (** Chrome trace written at shutdown: daemon request spans plus
          every worker span ingested over the telemetry frames, one
          [pid] track per process *)
  werror : bool;
      (** upgrade value-range screen warnings (AMS061/AMS063…) to
          errors: a submit whose screen then contains any error is
          answered with [Protocol.Rejected] instead of running *)
  fidelity : Amsvp_core.Solve.fidelity option;
      (** default reference-engine fidelity for submitted specs that do
          not carry a [fidelity] directive themselves (the directive
          always wins); [None] keeps the paper default *)
}

val default_config : socket_path:string -> config
(** 2 workers, no checkpointing, no timeout, 1 retry, 8 cached sweeps,
    no metrics/trace files, metrics every 2 s, no [werror]. *)

val serve : config -> unit
(** Bind, listen and serve until drained. Blocks.
    @raise Unix.Unix_error when the socket cannot be bound,
    @raise Invalid_argument on [workers < 1]. *)
