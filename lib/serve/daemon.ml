module Spec = Amsvp_sweep.Spec
module Runner = Amsvp_sweep.Runner
module Diag = Amsvp_diag.Diag
module Checkpoint = Amsvp_sweep.Checkpoint
module Circuits = Amsvp_netlist.Circuits
module Obs = Amsvp_obs.Obs
module Journal = Amsvp_obs.Journal

type config = {
  socket_path : string;
  workers : int;
  checkpoint_dir : string option;
  point_timeout_s : float option;
  retries : int;
  ctx_cache_max : int;
  metrics_out : string option;
  metrics_every_s : float;
  trace_out : string option;
  werror : bool;
  fidelity : Amsvp_core.Solve.fidelity option;
      (* default reference fidelity injected into submitted specs that
         do not pin one themselves (a spec-level [fidelity] directive
         always wins) *)
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 2;
    checkpoint_dir = None;
    point_timeout_s = None;
    retries = 1;
    ctx_cache_max = 8;
    metrics_out = None;
    metrics_every_s = 2.0;
    trace_out = None;
    werror = false;
    fidelity = None;
  }

let c_requests =
  Obs.Counter.make ~help:"serve requests handled" "amsvp_serve_requests_total"

let c_ctx_hits =
  Obs.Counter.make ~help:"submits served by a warm prepared sweep"
    "amsvp_serve_ctx_hits_total"

let c_ctx_misses =
  Obs.Counter.make ~help:"submits that had to prepare from cold"
    "amsvp_serve_ctx_misses_total"

let g_in_flight =
  Obs.Gauge.make ~help:"points dispatched but not yet resolved"
    "amsvp_serve_in_flight"

(* Daemon state. One instance per [serve] call; the signal handlers
   write only the [draining] flag (the single async-signal-safe thing
   to do), the main loop polls it. *)
type state = {
  cfg : config;
  draining : bool ref;
  (* warm prepared sweeps, keyed by canonical spec text + circuit; LRU
     by re-insertion order in [ctx_order] *)
  ctxs : (string, Runner.ctx) Hashtbl.t;
  mutable ctx_order : string list;
  mutable requests : int;
  mutable points_run : int;
  mutable ctx_hits : int;
  mutable ctx_misses : int;
  (* worker outcomes, from point verdicts (covers in-child cooperative
     timeouts and parent-synthesised kills alike) *)
  mutable crashed : int;
  mutable timeouts : int;
  mutable in_flight : int;
  tally : Procpool.tally;
  mutable metrics_last_ns : int;
  started_ns : int;
}

let jlog ?req st name payload =
  ignore st;
  if Journal.enabled () then
    let payload =
      match req with
      | Some id -> ("id", Journal.I id) :: payload
      | None -> payload
    in
    Journal.emit ~cat:"serve" name payload

(* Rewrite the Prometheus textfile atomically: a scraper (or the CI
   assertion) must never read a half-written exposition. *)
let write_metrics_file path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Obs.prometheus ());
  close_out oc;
  Sys.rename tmp path

let tick_metrics ?(force = false) st =
  match st.cfg.metrics_out with
  | None -> ()
  | Some path ->
      let now = Obs.now_ns () in
      let every_ns = int_of_float (st.cfg.metrics_every_s *. 1e9) in
      if force || now - st.metrics_last_ns >= every_ns then begin
        st.metrics_last_ns <- now;
        try write_metrics_file path with Sys_error _ -> ()
      end

let send conn resp =
  try Lineio.write_line conn (Protocol.encode_response resp)
  with Unix.Unix_error _ -> ()
(* client gone mid-stream: the sweep still runs to the checkpoint, the
   sends just stop landing anywhere *)

let ctx_key spec circuit = Spec.to_string spec ^ "@" ^ circuit

let ctx_for ~id st spec (tc : Circuits.testcase) =
  let key = ctx_key spec tc.Circuits.label in
  match Hashtbl.find_opt st.ctxs key with
  | Some ctx ->
      st.ctx_hits <- st.ctx_hits + 1;
      Obs.Counter.incr c_ctx_hits;
      jlog ~req:id st "ctx.hit" [ ("sweep", Journal.S spec.Spec.name) ];
      ctx
  | None ->
      st.ctx_misses <- st.ctx_misses + 1;
      Obs.Counter.incr c_ctx_misses;
      jlog ~req:id st "ctx.miss" [ ("sweep", Journal.S spec.Spec.name) ];
      let ctx =
        Obs.with_span ~cat:"serve" "serve.prepare" @@ fun () ->
        Runner.prepare spec tc
      in
      Hashtbl.replace st.ctxs key ctx;
      st.ctx_order <- key :: List.filter (( <> ) key) st.ctx_order;
      (if List.length st.ctx_order > st.cfg.ctx_cache_max then
         match List.rev st.ctx_order with
         | oldest :: _ ->
             Hashtbl.remove st.ctxs oldest;
             st.ctx_order <- List.filter (( <> ) oldest) st.ctx_order
         | [] -> ());
      ctx

let checkpoint_path st spec ~circuit =
  Option.map
    (fun dir ->
      Filename.concat dir
        (Printf.sprintf "%s-%s.ckpt.jsonl" spec.Spec.name
           (Checkpoint.digest spec ~circuit)))
    st.cfg.checkpoint_dir

let handle_submit st conn ~id ~spec_text ~jobs =
  match Spec.of_string spec_text with
  | Error m -> send conn (Protocol.Failed { message = "bad spec: " ^ m })
  | Ok spec -> (
      let spec =
        match jobs with Some j -> { spec with Spec.jobs = Some j } | None -> spec
      in
      let spec =
        (* The daemon default applies only when the spec itself does not
           pin a fidelity, so submitted spec texts stay authoritative. *)
        match (spec.Spec.fidelity, st.cfg.fidelity) with
        | None, (Some _ as f) -> { spec with Spec.fidelity = f }
        | _ -> spec
      in
      match Runner.resolve spec with
      | Error m -> send conn (Protocol.Failed { message = m })
      | Ok tc -> (
          match ctx_for ~id st spec tc with
          | exception Diag.Rejected f ->
              (* The lint gate inside [Runner.prepare] refused the
                 circuit: a structured reply, not a dead worker. *)
              jlog ~req:id st "submit.rejected"
                [ ("sweep", Journal.S spec.Spec.name);
                  ("code", Journal.S f.Diag.code) ];
              send conn
                (Protocol.Rejected { message = f.Diag.message; findings = [ f ] })
          | exception e ->
              send conn
                (Protocol.Failed { message = Printexc.to_string e })
          | ctx
            when List.exists
                   (fun (f : Diag.finding) -> f.Diag.severity = Diag.Error)
                   (Runner.screen ~werror:st.cfg.werror ctx) ->
              (* Value-range screen (AMS06x): errors — native AMS060 or
                 anything upgraded by the daemon's [werror] — reject the
                 submit with the full diagnostics list.  (The screen is
                 a pure function of the warm ctx, so re-running it here
                 is cheap and keeps the guard side-effect free.) *)
              let findings = Runner.screen ~werror:st.cfg.werror ctx in
              let errors =
                List.length
                  (List.filter
                     (fun (f : Diag.finding) -> f.Diag.severity = Diag.Error)
                     findings)
              in
              jlog ~req:id st "submit.rejected"
                [ ("sweep", Journal.S spec.Spec.name);
                  ("errors", Journal.I errors) ];
              send conn
                (Protocol.Rejected
                   {
                     message =
                       Printf.sprintf
                         "value-range screen rejected the sweep: %d error(s)"
                         errors;
                     findings;
                   })
          | ctx ->
              Obs.with_span ~cat:"serve"
                ~args:[ ("sweep", spec.Spec.name); ("id", string_of_int id) ]
                "serve.request"
              @@ fun () ->
              let circuit = tc.Circuits.label in
              let points = Runner.ctx_points ctx in
              let total = Array.length points in
              let ckpt = checkpoint_path st spec ~circuit in
              let completed, writer =
                match ckpt with
                | None -> ([], None)
                | Some path ->
                    let completed, w =
                      Checkpoint.open_resume ~path spec ~circuit ~points:total
                    in
                    (completed, Some w)
              in
              send conn
                (Protocol.Accepted
                   {
                     id;
                     sweep = spec.Spec.name;
                     circuit;
                     points = total;
                     resumed = List.length completed;
                   });
              (* Recovered points stream first, so the client always
                 sees the full result set in one session. *)
              List.iter
                (fun r -> send conn (Protocol.Point { id; result = r }))
                completed;
              let done_idx = Hashtbl.create 16 in
              List.iter
                (fun (r : Runner.point_result) ->
                  Hashtbl.replace done_idx r.Runner.point.index r)
                completed;
              let pending =
                Array.of_list
                  (List.filter
                     (fun (p : Amsvp_sweep.Sampler.point) ->
                       not (Hashtbl.mem done_idx p.index))
                     (Array.to_list points))
              in
              let timeout_s =
                match spec.Spec.point_timeout with
                | Some _ as t -> t
                | None -> st.cfg.point_timeout_s
              in
              let signal =
                match spec.Spec.output with
                | Some s -> s
                | None -> Expr.var_name tc.Circuits.output
              in
              let executed = ref 0 in
              let t0 = Obs.now_ns () in
              st.in_flight <- Array.length pending;
              Obs.Gauge.set g_in_flight (float_of_int st.in_flight);
              let fresh =
                Procpool.run ~workers:st.cfg.workers ?timeout_s
                  ~retries:st.cfg.retries ~signal ~request_id:id
                  ~tally:st.tally
                  ~on_result:(fun r ->
                    incr executed;
                    st.points_run <- st.points_run + 1;
                    st.in_flight <- st.in_flight - 1;
                    Obs.Gauge.set g_in_flight (float_of_int st.in_flight);
                    let issues =
                      r.Runner.health.Amsvp_probe.Health.v_issues
                    in
                    let has k =
                      List.exists
                        (fun i -> i.Amsvp_probe.Health.kind = k)
                        issues
                    in
                    if has Amsvp_probe.Health.Timeout then
                      st.timeouts <- st.timeouts + 1
                    else if has Amsvp_probe.Health.Crashed then
                      st.crashed <- st.crashed + 1;
                    (match writer with
                    | Some w -> Checkpoint.append w r
                    | None -> ());
                    send conn (Protocol.Point { id; result = r });
                    (* The worker streams its own journal through the
                       telemetry frames; this parent-side record is the
                       dispatch bookkeeping view of the same point. *)
                    jlog ~req:id st "shard.result"
                      [
                        ("point",
                         Journal.S r.Runner.point.Amsvp_sweep.Sampler.label);
                        ("cached", Journal.B r.Runner.cached);
                        ("healthy",
                         Journal.B
                           r.Runner.health.Amsvp_probe.Health.v_healthy);
                        ("wall_s", Journal.F r.Runner.wall_s);
                      ];
                    tick_metrics st;
                    if !executed land 31 = 0 then Journal.flush ())
                  ~should_stop:(fun () -> !(st.draining))
                  (fun ~retry:_ p -> Runner.run_point ?timeout_s ctx p)
                  pending
              in
              st.in_flight <- 0;
              Obs.Gauge.set g_in_flight 0.0;
              let total_s = float_of_int (Obs.now_ns () - t0) *. 1e-9 in
              Option.iter Checkpoint.close writer;
              let delivered =
                completed
                @ List.filter_map Fun.id (Array.to_list fresh)
              in
              let n_delivered = List.length delivered in
              let complete = n_delivered = total in
              (* A finished sweep's checkpoint has served its purpose;
                 dropping it keeps a resubmit a fresh (warm-ctx) run
                 rather than an instant replay of stale results. *)
              (match ckpt with
              | Some path when complete && Sys.file_exists path ->
                  Sys.remove path
              | _ -> ());
              let count f = List.length (List.filter f delivered) in
              send conn
                (Protocol.Done
                   {
                     id;
                     points = n_delivered;
                     unhealthy =
                       count (fun (r : Runner.point_result) ->
                           not r.Runner.health.Amsvp_probe.Health.v_healthy);
                     cache_hits =
                       count (fun (r : Runner.point_result) -> r.Runner.cached);
                     cache_misses =
                       count (fun (r : Runner.point_result) ->
                           not r.Runner.cached);
                     total_s;
                     complete;
                   });
              jlog ~req:id st "request.done"
                [
                  ("sweep", Journal.S spec.Spec.name);
                  ("points", Journal.I n_delivered);
                  ("complete", Journal.B complete);
                  ("total_s", Journal.F total_s);
                ];
              Journal.flush ();
              tick_metrics ~force:true st))

let stats_reply st =
  Protocol.Stats_reply
    {
      st_requests = st.requests;
      st_points = st.points_run;
      st_ctx_hits = st.ctx_hits;
      st_ctx_misses = st.ctx_misses;
      st_uptime_s = float_of_int (Obs.now_ns () - st.started_ns) *. 1e-9;
      st_in_flight = st.in_flight;
      st_workers = st.cfg.workers;
      st_spawned = st.tally.Procpool.t_spawned;
      st_crashed = st.crashed;
      st_timeouts = st.timeouts;
      st_redispatched = st.tally.Procpool.t_redispatched;
      st_telemetry_torn = st.tally.Procpool.t_torn;
      st_journal_dropped = Journal.dropped ();
      st_heap_words = (Gc.quick_stat ()).Gc.heap_words;
    }

let serve_client st fd =
  let conn = Lineio.make fd in
  let rec loop () =
    if !(st.draining) then ()
    else
      match Lineio.read_line conn with
      | `Eof -> ()
      | `Eof_partial ->
          send conn (Protocol.Failed { message = "truncated frame at EOF" })
      | `Intr -> loop ()
      | `Line line ->
          st.requests <- st.requests + 1;
          Obs.Counter.incr c_requests;
          (match Protocol.decode_request line with
          | Error m -> send conn (Protocol.Failed { message = m })
          | Ok Protocol.Ping -> send conn Protocol.Pong
          | Ok Protocol.Stats -> send conn (stats_reply st)
          | Ok Protocol.Shutdown ->
              send conn Protocol.Bye;
              st.draining := true
          | Ok (Protocol.Submit { spec_text; jobs }) ->
              let id = st.requests in
              handle_submit st conn ~id ~spec_text ~jobs);
          loop ()
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve cfg =
  if cfg.workers < 1 then invalid_arg "Daemon.serve: workers < 1";
  Journal.set_origin "daemon";
  let draining = ref false in
  let st =
    {
      cfg;
      draining;
      ctxs = Hashtbl.create 8;
      ctx_order = [];
      requests = 0;
      points_run = 0;
      ctx_hits = 0;
      ctx_misses = 0;
      crashed = 0;
      timeouts = 0;
      in_flight = 0;
      tally = Procpool.make_tally ();
      metrics_last_ns = 0;
      started_ns = Obs.now_ns ();
    }
  in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> draining := true))
  in
  let prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> draining := true))
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Sys.remove cfg.socket_path with Sys_error _ -> ());
      Journal.flush ();
      tick_metrics ~force:true st;
      (match cfg.trace_out with
      | Some path -> (
          try Obs.write_file path (Obs.chrome_trace ())
          with Sys_error _ -> ())
      | None -> ());
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigpipe prev_pipe)
  @@ fun () ->
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  Unix.bind sock (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen sock 8;
  jlog st "up"
    [
      ("socket", Journal.S cfg.socket_path);
      ("workers", Journal.I cfg.workers);
    ];
  Journal.flush ();
  tick_metrics ~force:true st;
  (* One client at a time: requests are serialised, parallelism lives
     in the per-sweep worker processes. The accept loop polls the
     drain flag between (short) select timeouts. *)
  let rec accept_loop () =
    if !draining then ()
    else begin
      (match Unix.select [ sock ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept sock with
          | fd, _ -> serve_client st fd
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      tick_metrics st;
      accept_loop ()
    end
  in
  accept_loop ();
  jlog st "down" [ ("requests", Journal.I st.requests) ]
