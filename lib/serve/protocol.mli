(** Wire protocol of the sweep service: versioned line-delimited JSON.

    Every frame is one JSON object on one line, carrying [{"v":1}].
    Requests name an operation in ["req"]; responses name an event in
    ["ev"]. Point results reuse the checkpoint codec
    ({!Amsvp_sweep.Checkpoint.result_to_json}) verbatim as the
    ["result"] payload, so a client that can read a checkpoint file can
    read the stream.

    Decoders are total: a malformed, truncated or wrong-version frame
    yields [Error] with a human-readable reason, never an exception —
    a confused client cannot take the daemon down. *)

val version : int
(** Current protocol version, [1]. *)

type request =
  | Submit of { spec_text : string; jobs : int option }
      (** run a sweep; [spec_text] is the {!Amsvp_sweep.Spec} text form *)
  | Ping
  | Stats
  | Shutdown  (** answer [Bye], then drain and exit *)

type stats = {
  st_requests : int;
  st_points : int;  (** points executed since start (resumed excluded) *)
  st_ctx_hits : int;  (** submits served by a warm prepared sweep *)
  st_ctx_misses : int;
  st_uptime_s : float;
  st_in_flight : int;  (** points dispatched but not yet resolved *)
  st_workers : int;  (** configured worker count *)
  st_spawned : int;  (** worker processes forked since start *)
  st_crashed : int;  (** points resolved with a [Crashed] verdict *)
  st_timeouts : int;  (** points resolved with a [Timeout] verdict *)
  st_redispatched : int;  (** re-dispatches after a worker death *)
  st_telemetry_torn : int;  (** telemetry frames dropped as torn *)
  st_journal_dropped : int;  (** journal ring overwrites ({!Amsvp_obs.Journal.dropped}) *)
  st_heap_words : int;  (** [Gc.quick_stat] major heap words *)
}

type response =
  | Accepted of {
      id : int;  (** request id; echoed on every event of this sweep *)
      sweep : string;
      circuit : string;
      points : int;  (** full expansion size *)
      resumed : int;  (** recovered from the checkpoint, streamed first *)
    }
  | Point of { id : int; result : Amsvp_sweep.Runner.point_result }
  | Done of {
      id : int;
      points : int;  (** results delivered (= expansion when complete) *)
      unhealthy : int;
      cache_hits : int;
      cache_misses : int;
      total_s : float;
      complete : bool;  (** [false] when a drain interrupted the sweep *)
    }
  | Failed of { message : string }
  | Rejected of {
      message : string;
      findings : Amsvp_diag.Diag.finding list;
          (** the diagnostics that rejected the submit: pre-flight gate
              findings ([Diag.Rejected]) or value-range screen errors
              (AMS06x, upgraded under the daemon's [werror]); each
              carries its code, severity, message and span *)
    }
  | Pong
  | Stats_reply of stats
  | Bye

val encode_request : request -> string
(** One line, no trailing newline. *)

val encode_response : response -> string

val decode_request : string -> (request, string) result
val decode_response : string -> (response, string) result

(** {1 Telemetry frames}

    Point-workers interleave telemetry lines with result lines on
    their pipe back to the daemon: drained journal events, completed
    spans, and counter deltas, each tagged with the worker's origin.
    The frames are self-announcing — every telemetry line starts with
    {!telemetry_prefix}, which no task or result line can produce — so
    the pool can classify a line {e before} parsing it and a torn
    telemetry frame is dropped (and counted) without costing the
    worker its connection, while a torn result line still means the
    worker died mid-write. *)

type telemetry =
  | Tel_journal of Amsvp_obs.Journal.event list
      (** events carry their own [origin]/[seq] *)
  | Tel_spans of { origin : string; spans : Amsvp_obs.Obs.span list }
  | Tel_counters of {
      origin : string;
      counters : (string * (string * string) list * int) list;
          (** [(name, labels, delta)] — positive increments since the
              worker's previous ship *)
    }

val telemetry_prefix : string
(** The byte prefix every encoded telemetry line starts with. *)

val encode_telemetry : telemetry -> string
(** One line, no trailing newline; starts with {!telemetry_prefix}. *)

val decode_telemetry :
  string -> [ `Telemetry of telemetry | `Torn of string | `Not_telemetry ]
(** Total classifier for one pipe line. [`Telemetry] — a well-formed
    frame. [`Torn] — the line announces itself as telemetry (it starts
    with {!telemetry_prefix}, or is a nonempty prefix of it) but does
    not decode; the connection is still healthy, drop and count it.
    [`Not_telemetry] — not a telemetry line at all (e.g. a result
    line); hand it to the next codec. *)
