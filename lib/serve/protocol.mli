(** Wire protocol of the sweep service: versioned line-delimited JSON.

    Every frame is one JSON object on one line, carrying [{"v":1}].
    Requests name an operation in ["req"]; responses name an event in
    ["ev"]. Point results reuse the checkpoint codec
    ({!Amsvp_sweep.Checkpoint.result_to_json}) verbatim as the
    ["result"] payload, so a client that can read a checkpoint file can
    read the stream.

    Decoders are total: a malformed, truncated or wrong-version frame
    yields [Error] with a human-readable reason, never an exception —
    a confused client cannot take the daemon down. *)

val version : int
(** Current protocol version, [1]. *)

type request =
  | Submit of { spec_text : string; jobs : int option }
      (** run a sweep; [spec_text] is the {!Amsvp_sweep.Spec} text form *)
  | Ping
  | Stats
  | Shutdown  (** answer [Bye], then drain and exit *)

type stats = {
  st_requests : int;
  st_points : int;  (** points executed since start (resumed excluded) *)
  st_ctx_hits : int;  (** submits served by a warm prepared sweep *)
  st_ctx_misses : int;
  st_uptime_s : float;
}

type response =
  | Accepted of {
      id : int;  (** request id; echoed on every event of this sweep *)
      sweep : string;
      circuit : string;
      points : int;  (** full expansion size *)
      resumed : int;  (** recovered from the checkpoint, streamed first *)
    }
  | Point of { id : int; result : Amsvp_sweep.Runner.point_result }
  | Done of {
      id : int;
      points : int;  (** results delivered (= expansion when complete) *)
      unhealthy : int;
      cache_hits : int;
      cache_misses : int;
      total_s : float;
      complete : bool;  (** [false] when a drain interrupted the sweep *)
    }
  | Failed of { message : string }
  | Pong
  | Stats_reply of stats
  | Bye

val encode_request : request -> string
(** One line, no trailing newline. *)

val encode_response : response -> string

val decode_request : string -> (request, string) result
val decode_response : string -> (response, string) result
