(* Blocking line-delimited IO over a file descriptor, with a partial
   read buffer: TCP-ish socket reads hand back arbitrary chunks, the
   protocol wants whole lines. *)

type t = { fd : Unix.file_descr; buf : Buffer.t }

let make fd = { fd; buf = Buffer.create 512 }
let fd t = t.fd

let take_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      Buffer.clear t.buf;
      Buffer.add_string t.buf
        (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)

let rec read_line t =
  match take_line t with
  | Some line -> `Line line
  | None -> (
      let chunk = Bytes.create 4096 in
      match Unix.read t.fd chunk 0 4096 with
      | 0 -> if Buffer.length t.buf > 0 then `Eof_partial else `Eof
      | k ->
          Buffer.add_subbytes t.buf chunk 0 k;
          read_line t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Intr
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          `Eof)

let write_line t line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write t.fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0
