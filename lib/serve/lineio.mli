(** Blocking line-delimited IO over a file descriptor with partial-read
    buffering — the transport under both ends of the protocol. *)

type t

val make : Unix.file_descr -> t
val fd : t -> Unix.file_descr

val read_line : t -> [ `Line of string | `Eof | `Eof_partial | `Intr ]
(** Next complete line (without the newline). [`Eof_partial] means the
    peer closed with an unterminated trailing fragment — a truncated
    frame, which callers should treat as an error, not silently drop.
    [`Intr] surfaces EINTR so daemons can poll their drain flag. *)

val write_line : t -> string -> unit
(** Write [line ^ "\n"], handling short writes.
    @raise Unix.Unix_error (e.g. [EPIPE]) when the peer is gone. *)
