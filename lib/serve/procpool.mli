(** Process-sharded point execution.

    The {!Amsvp_sweep.Pool} runs points on domains inside one runtime;
    this pool forks {e worker processes} instead, which buys the
    service three things domains cannot give it: a crashed point
    (segfault, OOM kill, stack overflow) takes down only its worker,
    a hung point can be SIGKILLed, and forked children inherit the
    parent's warm abstraction cache copy-on-write for free.

    Each worker is a line-driven slave on a pipe pair: the parent
    writes one task line (point + retry count), the child answers one
    result line in the checkpoint codec, EOF on the task pipe shuts it
    down. The parent multiplexes all workers with [select] — it stays
    single-threaded and, critically for fork safety, must not be
    running other domains.

    Failure handling, per point:
    - worker death mid-point (EOF / signal) — re-dispatched to a fresh
      worker up to [retries] times, then reported with a [Crashed]
      health verdict;
    - kill-deadline expiry (the in-child cooperative timeout is the
      primary mechanism; this slack parent-side backstop catches a
      worker hung outside the stepping loop) — worker SIGKILLed, point
      reported with a [Timeout] verdict, {e not} retried.

    Dispatch/kill/re-dispatch decisions are journaled in category
    ["serve"] (["shard.redispatch"], ["shard.kill"],
    ["shard.crashed"]), tagged with the request id when one is given.

    {b Telemetry.} Each child tags its process with the journal origin
    ["w<slot>:<pid>"] and, after every task, ships its new journal
    events, completed spans, and positive counter deltas as
    {!Protocol.telemetry} lines on the result pipe (before the result
    line). The parent ingests them into its own journal/span
    buffer/metric registry, so after [run] the parent's
    {!Amsvp_obs.Journal.events} and {!Amsvp_obs.Obs.chrome_trace}
    cover the whole pool. Torn telemetry frames are dropped and
    counted, never fatal to the connection. *)

val encode_task : Amsvp_sweep.Sampler.point -> retry:int -> string
(** Exposed for tests. *)

val decode_task : string -> (Amsvp_sweep.Sampler.point * int) option

(** Worker-outcome tally for one [run], mutated as events happen; hand
    the same record to successive runs to accumulate service totals. *)
type tally = {
  mutable t_spawned : int;  (** worker processes forked *)
  mutable t_crashed : int;  (** points exhausted their retries *)
  mutable t_timeouts : int;  (** parent kill-deadline expiries *)
  mutable t_redispatched : int;  (** re-dispatches after worker death *)
  mutable t_torn : int;  (** telemetry frames dropped as torn *)
}

val make_tally : unit -> tally

val ingest_telemetry_line : ?tally:tally -> ?request_id:int -> string -> bool
(** Absorb one pipe line if it is a telemetry frame: well-formed
    frames are ingested into this process's journal / span buffer /
    counters, torn frames are dropped, counted in [tally] and
    journaled (["telemetry.torn"]). Returns [false] iff the line is
    not telemetry at all. Exposed for tests. *)

val run :
  workers:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?signal:string ->
  ?request_id:int ->
  ?tally:tally ->
  ?on_result:(Amsvp_sweep.Runner.point_result -> unit) ->
  ?should_stop:(unit -> bool) ->
  (retry:int -> Amsvp_sweep.Sampler.point -> Amsvp_sweep.Runner.point_result) ->
  Amsvp_sweep.Sampler.point array ->
  Amsvp_sweep.Runner.point_result option array
(** [run ~workers f points] executes every point through [f] in forked
    workers and returns results indexed like [points]. [f] receives the
    point's dispatch attempt as [retry] (0 first time) — production
    callers ignore it; tests use it to crash deterministically. [f]
    should apply the cooperative timeout itself (e.g.
    [Runner.run_point ?timeout_s]); [timeout_s] here only arms the
    parent's kill-deadline backstop. [retries] (default 1) bounds
    re-dispatches per point. [signal] names the swept output in
    synthesised [Timeout]/[Crashed] verdicts. [on_result] runs in the
    parent as each result arrives (checkpoint append / streaming).
    [should_stop] is polled between dispatches: once true, no new point
    is dispatched, in-flight points finish, and undispatched slots come
    back [None]. [request_id] is stamped on the children's
    ["task.begin"] journal events and the parent's shard events;
    [tally] receives worker-outcome counts as they happen.
    @raise Invalid_argument on [workers < 1]. *)
