(** Process-sharded point execution.

    The {!Amsvp_sweep.Pool} runs points on domains inside one runtime;
    this pool forks {e worker processes} instead, which buys the
    service three things domains cannot give it: a crashed point
    (segfault, OOM kill, stack overflow) takes down only its worker,
    a hung point can be SIGKILLed, and forked children inherit the
    parent's warm abstraction cache copy-on-write for free.

    Each worker is a line-driven slave on a pipe pair: the parent
    writes one task line (point + retry count), the child answers one
    result line in the checkpoint codec, EOF on the task pipe shuts it
    down. The parent multiplexes all workers with [select] — it stays
    single-threaded and, critically for fork safety, must not be
    running other domains.

    Failure handling, per point:
    - worker death mid-point (EOF / signal) — re-dispatched to a fresh
      worker up to [retries] times, then reported with a [Crashed]
      health verdict;
    - kill-deadline expiry (the in-child cooperative timeout is the
      primary mechanism; this slack parent-side backstop catches a
      worker hung outside the stepping loop) — worker SIGKILLed, point
      reported with a [Timeout] verdict, {e not} retried.

    Dispatch/kill/re-dispatch decisions are journaled in category
    ["serve"] (["shard.redispatch"], ["shard.kill"],
    ["shard.crashed"]). *)

val encode_task : Amsvp_sweep.Sampler.point -> retry:int -> string
(** Exposed for tests. *)

val decode_task : string -> (Amsvp_sweep.Sampler.point * int) option

val run :
  workers:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?signal:string ->
  ?on_result:(Amsvp_sweep.Runner.point_result -> unit) ->
  ?should_stop:(unit -> bool) ->
  (retry:int -> Amsvp_sweep.Sampler.point -> Amsvp_sweep.Runner.point_result) ->
  Amsvp_sweep.Sampler.point array ->
  Amsvp_sweep.Runner.point_result option array
(** [run ~workers f points] executes every point through [f] in forked
    workers and returns results indexed like [points]. [f] receives the
    point's dispatch attempt as [retry] (0 first time) — production
    callers ignore it; tests use it to crash deterministically. [f]
    should apply the cooperative timeout itself (e.g.
    [Runner.run_point ?timeout_s]); [timeout_s] here only arms the
    parent's kill-deadline backstop. [retries] (default 1) bounds
    re-dispatches per point. [signal] names the swept output in
    synthesised [Timeout]/[Crashed] verdicts. [on_result] runs in the
    parent as each result arrives (checkpoint append / streaming).
    [should_stop] is polled between dispatches: once true, no new point
    is dispatched, in-flight points finish, and undispatched slots come
    back [None].
    @raise Invalid_argument on [workers < 1]. *)
