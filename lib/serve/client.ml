type t = { io : Lineio.t }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> { io = Lineio.make fd }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let close t = try Unix.close (Lineio.fd t.io) with Unix.Unix_error _ -> ()

let send t req = Lineio.write_line t.io (Protocol.encode_request req)

let rec recv t =
  match Lineio.read_line t.io with
  | `Line line -> Protocol.decode_response line
  | `Intr -> recv t
  | `Eof -> Error "connection closed"
  | `Eof_partial -> Error "connection closed mid-frame (truncated frame)"

let submit t ?jobs ~spec_text ?(on_event = fun (_ : Protocol.response) -> ())
    () =
  send t (Protocol.Submit { spec_text; jobs });
  let rec drain () =
    match recv t with
    | Error _ as e -> e
    | Ok resp -> (
        on_event resp;
        match resp with
        | Protocol.Done _ | Protocol.Rejected _ -> Ok resp
        | Protocol.Failed { message } -> Error message
        | _ -> drain ())
  in
  drain ()
