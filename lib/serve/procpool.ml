module Runner = Amsvp_sweep.Runner
module Sampler = Amsvp_sweep.Sampler
module Checkpoint = Amsvp_sweep.Checkpoint
module Json = Amsvp_util.Json
module Journal = Amsvp_obs.Journal
module Obs = Amsvp_obs.Obs
module Health = Amsvp_probe.Health

(* Worker lifecycle counters: always live (metrics are unconditional),
   aggregated service-wide because worker deltas ingested from
   telemetry frames land in this same registry. *)
let c_spawned =
  Obs.Counter.make ~help:"worker processes forked"
    "amsvp_procpool_spawned_total"

let c_crashed =
  Obs.Counter.make ~help:"points resolved with a crashed verdict"
    "amsvp_procpool_crashed_total"

let c_kills =
  Obs.Counter.make ~help:"workers SIGKILLed past the parent deadline"
    "amsvp_procpool_kills_total"

let c_redispatch =
  Obs.Counter.make ~help:"points re-dispatched after a worker death"
    "amsvp_procpool_redispatch_total"

let c_torn =
  Obs.Counter.make ~help:"telemetry frames dropped as torn"
    "amsvp_procpool_telemetry_torn_total"

(* Per-run outcome tally a caller (the daemon) can hand in to surface
   worker outcomes in its status reply without scraping the journal. *)
type tally = {
  mutable t_spawned : int;
  mutable t_crashed : int;
  mutable t_timeouts : int;
  mutable t_redispatched : int;
  mutable t_torn : int;
}

let make_tally () =
  { t_spawned = 0; t_crashed = 0; t_timeouts = 0; t_redispatched = 0;
    t_torn = 0 }

(* ---- task codec (parent -> child), one line per dispatch ---- *)

let encode_task (p : Sampler.point) ~retry =
  Printf.sprintf "{\"index\":%d,\"label\":%s,\"overrides\":{%s},\"retry\":%d}"
    p.Sampler.index
    (Checkpoint.jstr p.Sampler.label)
    (String.concat ","
       (List.map
          (fun (k, v) ->
            Printf.sprintf "%s:%s" (Checkpoint.jstr k) (Checkpoint.jnum v))
          p.Sampler.overrides))
    retry

let decode_task line =
  match Json.parse line with
  | j -> (
      match
        ( Option.map int_of_float (Json.mem_float "index" j),
          Json.mem_string "label" j,
          Json.member "overrides" j,
          Option.map int_of_float (Json.mem_float "retry" j) )
      with
      | Some index, Some label, Some (Json.Obj fields), Some retry ->
          let overrides =
            List.filter_map
              (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
              fields
          in
          Some ({ Sampler.index; label; overrides }, retry)
      | _ -> None)
  | exception Json.Parse_error _ -> None

(* ---- child side ---- *)

(* ---- child-side telemetry shipping ----

   A worker inherits the parent's journal rings, span buffer, and
   counters copy-on-write, so cross-process observability is a drain
   problem: after each task the child ships everything it produced
   since its previous ship — its own journal events (the origin filter
   in [events_after] keeps inherited parent events from being
   re-shipped), newly completed spans, and positive counter deltas —
   as telemetry lines on the result pipe, before the result line, in
   one flush. *)

let counter_lookup base (name, labels, _) =
  match
    List.find_opt (fun (n, ls, _) -> n = name && ls = labels) base
  with
  | Some (_, _, v) -> v
  | None -> 0

let make_shipper oc =
  let jmark = ref (Journal.next_seq ()) in
  let smark = ref (Obs.span_count ()) in
  let cbase = ref (Obs.counter_values ()) in
  fun () ->
    let send t =
      output_string oc (Protocol.encode_telemetry t);
      output_char oc '\n'
    in
    if Journal.enabled () then begin
      match Journal.events_after !jmark with
      | [] -> ()
      | evs ->
          jmark :=
            1 + List.fold_left (fun m e -> max m e.Journal.seq) !jmark evs;
          send (Protocol.Tel_journal evs)
    end;
    if Obs.enabled () then begin
      let origin = Journal.origin () in
      (match Obs.spans_from !smark with
      | [] -> ()
      | spans ->
          smark := !smark + List.length spans;
          send (Protocol.Tel_spans { origin; spans }));
      let current = Obs.counter_values () in
      let deltas =
        List.filter_map
          (fun ((name, labels, v) as c) ->
            let d = v - counter_lookup !cbase c in
            if d > 0 then Some (name, labels, d) else None)
          current
      in
      cbase := current;
      if deltas <> [] then
        send (Protocol.Tel_counters { origin; counters = deltas })
    end

(* The child is a line-driven slave: read one task, run it, write one
   result, repeat; EOF on the task pipe is the shutdown signal. All
   exits go through [Unix._exit] — the fork duplicated the parent's
   buffered channels and an [exit] would flush them a second time. *)
let child_loop ~slot ?request_id f task_r res_w =
  let ic = Unix.in_channel_of_descr task_r in
  let oc = Unix.out_channel_of_descr res_w in
  Journal.set_origin (Printf.sprintf "w%d:%d" slot (Unix.getpid ()));
  let ship = make_shipper oc in
  let req_payload =
    match request_id with
    | Some id -> [ ("id", Journal.I id) ]
    | None -> []
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> Unix._exit 0
    | line -> (
        match decode_task line with
        | None -> Unix._exit 3
        | Some (point, retry) ->
            if Journal.enabled () then
              Journal.emit ~cat:"serve" "task.begin"
                (req_payload
                @ [
                    ("point", Journal.S point.Sampler.label);
                    ("index", Journal.I point.Sampler.index);
                    ("retry", Journal.I retry);
                  ]);
            let result =
              try f ~retry point
              with e ->
                (* A raising work function is a defect in the point, not
                   the pool: report it as a crashed point rather than
                   dying and burning a re-dispatch on a deterministic
                   failure. *)
                {
                  Runner.point;
                  out_final = nan;
                  out_rms = nan;
                  nrmse = None;
                  health =
                    {
                      Health.v_signal = Printexc.to_string e;
                      v_healthy = false;
                      v_issues =
                        [ { Health.kind = Health.Crashed; time = nan;
                            value = nan } ];
                    };
                  cached = false;
                  wall_s = 0.0;
                }
            in
            ship ();
            output_string oc (Checkpoint.result_to_json result);
            output_char oc '\n';
            flush oc;
            loop ())
  in
  loop ()

(* ---- parent side ---- *)

type worker = {
  slot : int;  (* stable position in the pool; part of the origin tag *)
  mutable pid : int;
  mutable to_child : Unix.file_descr;
  mutable from_child : Unix.file_descr;
  mutable buf : Buffer.t;
  mutable current : (int * float) option;  (* point slot, kill deadline *)
  mutable alive : bool;
}

(* [sibling_fds] are the parent-side pipe ends of every other live
   worker: a fork inherits them all, and a child holding a sibling's
   task-pipe write end would keep that sibling alive past the parent's
   close (no EOF), deadlocking shutdown — so each child closes them
   first thing. *)
let spawn ~slot ?request_id ~sibling_fds f =
  let task_r, task_w = Unix.pipe ~cloexec:false () in
  let res_r, res_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        sibling_fds;
      Unix.close task_w;
      Unix.close res_r;
      child_loop ~slot ?request_id f task_r res_w
  | pid ->
      Unix.close task_r;
      Unix.close res_w;
      {
        slot;
        pid;
        to_child = task_w;
        from_child = res_r;
        buf = Buffer.create 256;
        current = None;
        alive = true;
      }

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

let synth ctx_signal (p : Sampler.point) kind ~wall_s =
  {
    Runner.point = p;
    out_final = nan;
    out_rms = nan;
    nrmse = None;
    health =
      {
        Health.v_signal = ctx_signal;
        v_healthy = false;
        v_issues = [ { Health.kind; time = nan; value = wall_s } ];
      };
    cached = false;
    wall_s;
  }

let jlog ?req name payload =
  if Journal.enabled () then
    let payload =
      match req with
      | Some id -> ("id", Journal.I id) :: payload
      | None -> payload
    in
    Journal.emit ~severity:Journal.Warn ~cat:"serve" name payload

(* Classify and absorb one pipe line if it is telemetry. Returns false
   when the line is not a telemetry frame (the caller then treats it
   as a result line). A torn frame is absorbed too — dropped, counted,
   journaled — because a worker that managed to write a recognisable
   telemetry prefix is still alive and its connection still carries
   ordered lines; only result-line corruption implies death. *)
let ingest_telemetry_line ?tally ?request_id line =
  match Protocol.decode_telemetry line with
  | `Telemetry (Protocol.Tel_journal evs) ->
      Journal.ingest evs;
      true
  | `Telemetry (Protocol.Tel_spans { origin; spans }) ->
      Obs.ingest_spans ~proc:origin spans;
      true
  | `Telemetry (Protocol.Tel_counters { origin = _; counters }) ->
      List.iter
        (fun (name, labels, d) ->
          (* A kind clash (the name is a gauge here) or a hostile
             negative delta must not take the pool down: telemetry is
             advisory. *)
          match Obs.Counter.make ~labels name with
          | c -> ( try Obs.Counter.add c d with Invalid_argument _ -> ())
          | exception Invalid_argument _ -> ())
        counters;
      true
  | `Torn reason ->
      (match tally with Some t -> t.t_torn <- t.t_torn + 1 | None -> ());
      Obs.Counter.incr c_torn;
      jlog ?req:request_id "telemetry.torn" [ ("reason", Journal.S reason) ];
      true
  | `Not_telemetry -> false

let run ~workers ?timeout_s ?(retries = 1) ?(signal = "") ?request_id ?tally
    ?on_result ?(should_stop = fun () -> false) f
    (points : Sampler.point array) =
  if workers < 1 then invalid_arg "Procpool.run: workers < 1";
  let n = Array.length points in
  let results : Runner.point_result option array = Array.make n None in
  if n = 0 then results
  else begin
    let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    Fun.protect
      ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev_pipe)
    @@ fun () ->
    let retry_count = Array.make n 0 in
    let requeue = Queue.create () in
    let next = ref 0 in
    let done_count = ref 0 in
    let stop = ref false in
    let live_fds = ref [] in
    let spawn_tracked slot =
      let w = spawn ~slot ?request_id ~sibling_fds:!live_fds f in
      Obs.Counter.incr c_spawned;
      (match tally with Some t -> t.t_spawned <- t.t_spawned + 1 | None -> ());
      live_fds := w.to_child :: w.from_child :: !live_fds;
      w
    in
    let forget_fds w =
      live_fds :=
        List.filter
          (fun fd -> fd <> w.to_child && fd <> w.from_child)
          !live_fds
    in
    let ws = Array.init (min workers n) (fun i -> spawn_tracked i) in
    let dispatch_times = Array.make n 0.0 in
    (* The child runs the cooperative in-simulation timeout itself; the
       parent's kill deadline is the backstop for a worker that hangs
       outside the stepping loop, so it is deliberately slack. *)
    let kill_deadline now =
      match timeout_s with
      | Some t -> now +. (1.5 *. t) +. 0.5
      | None -> infinity
    in
    let finish slot r =
      results.(slot) <- Some r;
      incr done_count;
      match on_result with Some cb -> cb r | None -> ()
    in
    let pending_available () = (not (Queue.is_empty requeue)) || !next < n in
    let pop_pending () =
      if not (Queue.is_empty requeue) then Queue.pop requeue
      else begin
        let s = !next in
        incr next;
        s
      end
    in
    let reap w =
      (* Close the task pipe first: an idle child is blocked on it and
         the EOF is what lets it exit before the (blocking) waitpid.
         Dropping the fds from [live_fds] at close time also keeps a
         later child from closing an unrelated reuse of the number. *)
      forget_fds w;
      (try Unix.close w.to_child with Unix.Unix_error _ -> ());
      (try Unix.close w.from_child with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
      w.alive <- false
    in
    let respawn w =
      let fresh = spawn_tracked w.slot in
      w.pid <- fresh.pid;
      w.to_child <- fresh.to_child;
      w.from_child <- fresh.from_child;
      w.buf <- Buffer.create 256;
      w.current <- None;
      w.alive <- true
    in
    (* A worker died (EOF / kill). Its in-flight point either gets
       re-dispatched — bounded by [retries] — or a synthesised verdict
       so the sweep can still complete. *)
    let handle_death ?(timed_out = false) w =
      (match w.current with
      | None -> ()
      | Some (slot, _) ->
          let wall_s = Unix.gettimeofday () -. dispatch_times.(slot) in
          let p = points.(slot) in
          if timed_out then begin
            Obs.Counter.incr c_kills;
            (match tally with
            | Some t -> t.t_timeouts <- t.t_timeouts + 1
            | None -> ());
            jlog ?req:request_id "shard.kill"
              [
                ("point", Journal.S p.Sampler.label);
                ("wall_s", Journal.F wall_s);
              ];
            finish slot (synth signal p Health.Timeout ~wall_s)
          end
          else if retry_count.(slot) < retries then begin
            retry_count.(slot) <- retry_count.(slot) + 1;
            Obs.Counter.incr c_redispatch;
            (match tally with
            | Some t -> t.t_redispatched <- t.t_redispatched + 1
            | None -> ());
            jlog ?req:request_id "shard.redispatch"
              [
                ("point", Journal.S p.Sampler.label);
                ("retry", Journal.I retry_count.(slot));
              ];
            Queue.push slot requeue
          end
          else begin
            Obs.Counter.incr c_crashed;
            (match tally with
            | Some t -> t.t_crashed <- t.t_crashed + 1
            | None -> ());
            jlog ?req:request_id "shard.crashed"
              [
                ("point", Journal.S p.Sampler.label);
                ("retries", Journal.I retry_count.(slot));
              ];
            finish slot (synth signal p Health.Crashed ~wall_s)
          end;
          w.current <- None);
      reap w;
      if (not !stop) && pending_available () then respawn w
    in
    let handle_line w line =
      if ingest_telemetry_line ?tally ?request_id line then ()
      else
        match Checkpoint.result_of_line line with
        | Ok r -> (
            match w.current with
            | Some (slot, _) ->
                w.current <- None;
                finish slot r
            | None -> () (* stray line after a re-dispatch; drop *))
        | Error _ ->
            (* A torn result is indistinguishable from a crash. *)
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            handle_death w
    in
    let handle_readable w =
      let chunk = Bytes.create 4096 in
      match Unix.read w.from_child chunk 0 4096 with
      | 0 -> handle_death w
      | k ->
          Buffer.add_subbytes w.buf chunk 0 k;
          let s = Buffer.contents w.buf in
          let parts = String.split_on_char '\n' s in
          let rec go = function
            | [] -> ()
            | [ tail ] ->
                Buffer.clear w.buf;
                Buffer.add_string w.buf tail
            | line :: rest ->
                handle_line w line;
                go rest
          in
          go parts
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    let dispatch () =
      Array.iter
        (fun w ->
          if w.alive && w.current = None && (not !stop) && pending_available ()
          then begin
            let slot = pop_pending () in
            let now = Unix.gettimeofday () in
            dispatch_times.(slot) <- now;
            let line =
              encode_task points.(slot) ~retry:retry_count.(slot) ^ "\n"
            in
            match write_all w.to_child line with
            | () -> w.current <- Some (slot, kill_deadline now)
            | exception Unix.Unix_error _ ->
                (* Pipe already broken: the EOF on the result pipe will
                   reap it; put the point back. *)
                Queue.push slot requeue
          end)
        ws
    in
    let rec loop () =
      if should_stop () then stop := true;
      dispatch ();
      let in_flight = Array.exists (fun w -> w.current <> None) ws in
      if
        (not in_flight)
        && (!stop || !done_count = n || not (pending_available ()))
      then ()
      else begin
        let now = Unix.gettimeofday () in
        let tick =
          Array.fold_left
            (fun acc w ->
              match w.current with
              | Some (_, dl) when dl < infinity ->
                  Float.min acc (Float.max 0.01 (dl -. now))
              | _ -> acc)
            0.25 ws
        in
        let fds =
          Array.to_list ws
          |> List.filter_map (fun w ->
                 if w.alive then Some w.from_child else None)
        in
        (match Unix.select fds [] [] tick with
        | readable, _, _ ->
            Array.iter
              (fun w ->
                if w.alive && List.mem w.from_child readable then
                  handle_readable w)
              ws
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        (* Kill-deadline check: a worker stuck past the backstop is
           SIGKILLed and its point reported as timed out. *)
        let now = Unix.gettimeofday () in
        Array.iter
          (fun w ->
            match w.current with
            | Some (_, dl) when w.alive && now > dl ->
                (try Unix.kill w.pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                handle_death ~timed_out:true w
            | _ -> ())
          ws;
        loop ()
      end
    in
    loop ();
    Array.iter (fun w -> if w.alive then reap w) ws;
    results
  end
