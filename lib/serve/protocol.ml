module Json = Amsvp_util.Json
module Checkpoint = Amsvp_sweep.Checkpoint
module Runner = Amsvp_sweep.Runner
module Journal = Amsvp_obs.Journal
module Obs = Amsvp_obs.Obs

let version = 1

type request =
  | Submit of { spec_text : string; jobs : int option }
  | Ping
  | Stats
  | Shutdown

type stats = {
  st_requests : int;
  st_points : int;
  st_ctx_hits : int;
  st_ctx_misses : int;
  st_uptime_s : float;
  st_in_flight : int;
  st_workers : int;
  st_spawned : int;
  st_crashed : int;
  st_timeouts : int;
  st_redispatched : int;
  st_telemetry_torn : int;
  st_journal_dropped : int;
  st_heap_words : int;
}

type response =
  | Accepted of {
      id : int;
      sweep : string;
      circuit : string;
      points : int;
      resumed : int;
    }
  | Point of { id : int; result : Runner.point_result }
  | Done of {
      id : int;
      points : int;
      unhealthy : int;
      cache_hits : int;
      cache_misses : int;
      total_s : float;
      complete : bool;
    }
  | Failed of { message : string }
  | Rejected of {
      message : string;
      findings : Amsvp_diag.Diag.finding list;
    }
  | Pong
  | Stats_reply of stats
  | Bye

let jstr = Checkpoint.jstr
let jnum = Checkpoint.jnum

(* ---- encoders: one line, no trailing newline ---- *)

let encode_request = function
  | Submit { spec_text; jobs } ->
      Printf.sprintf "{\"v\":%d,\"req\":\"submit\",\"spec\":%s%s}" version
        (jstr spec_text)
        (match jobs with
        | Some j -> Printf.sprintf ",\"jobs\":%d" j
        | None -> "")
  | Ping -> Printf.sprintf "{\"v\":%d,\"req\":\"ping\"}" version
  | Stats -> Printf.sprintf "{\"v\":%d,\"req\":\"stats\"}" version
  | Shutdown -> Printf.sprintf "{\"v\":%d,\"req\":\"shutdown\"}" version

let encode_response = function
  | Accepted { id; sweep; circuit; points; resumed } ->
      Printf.sprintf
        "{\"v\":%d,\"ev\":\"accepted\",\"id\":%d,\"sweep\":%s,\"circuit\":%s,\"points\":%d,\"resumed\":%d}"
        version id (jstr sweep) (jstr circuit) points resumed
  | Point { id; result } ->
      Printf.sprintf "{\"v\":%d,\"ev\":\"point\",\"id\":%d,\"result\":%s}"
        version id
        (Checkpoint.result_to_json result)
  | Done { id; points; unhealthy; cache_hits; cache_misses; total_s; complete }
    ->
      Printf.sprintf
        "{\"v\":%d,\"ev\":\"done\",\"id\":%d,\"points\":%d,\"unhealthy\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"total_s\":%s,\"complete\":%b}"
        version id points unhealthy cache_hits cache_misses (jnum total_s)
        complete
  | Failed { message } ->
      Printf.sprintf "{\"v\":%d,\"ev\":\"error\",\"message\":%s}" version
        (jstr message)
  | Rejected { message; findings } ->
      let module Diag = Amsvp_diag.Diag in
      let finding_json (f : Diag.finding) =
        let b = Buffer.create 128 in
        Printf.bprintf b "{\"code\":%s,\"severity\":%s,\"message\":%s"
          (jstr f.Diag.code)
          (jstr (Diag.severity_name f.Diag.severity))
          (jstr f.Diag.message);
        (match f.Diag.span with
        | Some s ->
            Printf.bprintf b ",\"file\":%s,\"line\":%d,\"col\":%d"
              (jstr s.Diag.file) s.Diag.line s.Diag.col
        | None -> ());
        (match f.Diag.subject with
        | Some s -> Printf.bprintf b ",\"subject\":%s" (jstr s)
        | None -> ());
        Buffer.add_char b '}';
        Buffer.contents b
      in
      Printf.sprintf
        "{\"v\":%d,\"ev\":\"rejected\",\"message\":%s,\"findings\":[%s]}"
        version (jstr message)
        (String.concat "," (List.map finding_json findings))
  | Pong -> Printf.sprintf "{\"v\":%d,\"ev\":\"pong\"}" version
  | Stats_reply s ->
      Printf.sprintf
        "{\"v\":%d,\"ev\":\"stats\",\"requests\":%d,\"points\":%d,\"ctx_hits\":%d,\"ctx_misses\":%d,\"uptime_s\":%s,\"in_flight\":%d,\"workers\":%d,\"spawned\":%d,\"crashed\":%d,\"timeouts\":%d,\"redispatched\":%d,\"telemetry_torn\":%d,\"journal_dropped\":%d,\"heap_words\":%d}"
        version s.st_requests s.st_points s.st_ctx_hits s.st_ctx_misses
        (jnum s.st_uptime_s) s.st_in_flight s.st_workers s.st_spawned
        s.st_crashed s.st_timeouts s.st_redispatched s.st_telemetry_torn
        s.st_journal_dropped s.st_heap_words
  | Bye -> Printf.sprintf "{\"v\":%d,\"ev\":\"bye\"}" version

(* ---- decoders: total, never raise ---- *)

let parse_frame line =
  match Json.parse line with
  | j -> (
      match Json.mem_float "v" j with
      | Some v when int_of_float v = version -> Ok j
      | Some v ->
          Error
            (Printf.sprintf "unsupported protocol version %d (want %d)"
               (int_of_float v) version)
      | None -> Error "frame has no \"v\" field")
  | exception Json.Parse_error (m, off) ->
      Error (Printf.sprintf "malformed frame at offset %d: %s" off m)

let decode_request line =
  match parse_frame line with
  | Error _ as e -> e
  | Ok j -> (
      match Json.mem_string "req" j with
      | Some "submit" -> (
          match Json.mem_string "spec" j with
          | Some spec_text ->
              let jobs = Option.map int_of_float (Json.mem_float "jobs" j) in
              Ok (Submit { spec_text; jobs })
          | None -> Error "submit frame has no \"spec\" field")
      | Some "ping" -> Ok Ping
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Error (Printf.sprintf "unknown request %S" other)
      | None -> Error "frame has no \"req\" field")

let decode_response line =
  let ( let* ) o f =
    match o with Some v -> f v | None -> Error "malformed response frame"
  in
  let int k j = Option.map int_of_float (Json.mem_float k j) in
  match parse_frame line with
  | Error _ as e -> e
  | Ok j -> (
      match Json.mem_string "ev" j with
      | Some "accepted" ->
          let* id = int "id" j in
          let* sweep = Json.mem_string "sweep" j in
          let* circuit = Json.mem_string "circuit" j in
          let* points = int "points" j in
          let* resumed = int "resumed" j in
          Ok (Accepted { id; sweep; circuit; points; resumed })
      | Some "point" -> (
          let* id = int "id" j in
          let* rj = Json.member "result" j in
          match Checkpoint.result_of_json rj with
          | Ok result -> Ok (Point { id; result })
          | Error _ as e -> e)
      | Some "done" ->
          let* id = int "id" j in
          let* points = int "points" j in
          let* unhealthy = int "unhealthy" j in
          let* cache_hits = int "cache_hits" j in
          let* cache_misses = int "cache_misses" j in
          let* total_s = Json.mem_float "total_s" j in
          let* complete = Json.mem_bool "complete" j in
          Ok
            (Done
               {
                 id;
                 points;
                 unhealthy;
                 cache_hits;
                 cache_misses;
                 total_s;
                 complete;
               })
      | Some "error" ->
          let* message = Json.mem_string "message" j in
          Ok (Failed { message })
      | Some "rejected" -> (
          let module Diag = Amsvp_diag.Diag in
          let severity_of_name = function
            | "error" -> Some Diag.Error
            | "warning" -> Some Diag.Warning
            | "info" -> Some Diag.Info
            | _ -> None
          in
          let finding_of_json fj =
            let ( let* ) = Option.bind in
            let* code = Json.mem_string "code" fj in
            let* severity =
              Option.bind (Json.mem_string "severity" fj) severity_of_name
            in
            let* message = Json.mem_string "message" fj in
            let span =
              match
                ( Json.mem_string "file" fj,
                  Json.mem_float "line" fj,
                  Json.mem_float "col" fj )
              with
              | Some file, Some line, Some col ->
                  Some
                    {
                      Diag.file;
                      line = int_of_float line;
                      col = int_of_float col;
                    }
              | _ -> None
            in
            let subject = Json.mem_string "subject" fj in
            Some { Diag.code; severity; message; span; subject }
          in
          let* message = Json.mem_string "message" j in
          match
            List.fold_right
              (fun fj acc ->
                match (finding_of_json fj, acc) with
                | Some f, Some tl -> Some (f :: tl)
                | _ -> None)
              (Json.mem_list "findings" j)
              (Some [])
          with
          | Some findings -> Ok (Rejected { message; findings })
          | None -> Error "malformed response frame")
      | Some "pong" -> Ok Pong
      | Some "stats" ->
          let* st_requests = int "requests" j in
          let* st_points = int "points" j in
          let* st_ctx_hits = int "ctx_hits" j in
          let* st_ctx_misses = int "ctx_misses" j in
          let* st_uptime_s = Json.mem_float "uptime_s" j in
          let* st_in_flight = int "in_flight" j in
          let* st_workers = int "workers" j in
          let* st_spawned = int "spawned" j in
          let* st_crashed = int "crashed" j in
          let* st_timeouts = int "timeouts" j in
          let* st_redispatched = int "redispatched" j in
          let* st_telemetry_torn = int "telemetry_torn" j in
          let* st_journal_dropped = int "journal_dropped" j in
          let* st_heap_words = int "heap_words" j in
          Ok
            (Stats_reply
               { st_requests; st_points; st_ctx_hits; st_ctx_misses;
                 st_uptime_s; st_in_flight; st_workers; st_spawned;
                 st_crashed; st_timeouts; st_redispatched;
                 st_telemetry_torn; st_journal_dropped; st_heap_words })
      | Some "bye" -> Ok Bye
      | Some other -> Error (Printf.sprintf "unknown event %S" other)
      | None -> Error "frame has no \"ev\" field")

(* ---- telemetry frames (worker -> parent, on the result pipe) ----

   A worker interleaves telemetry lines with result lines on its one
   pipe. Telemetry is advisory: the parent must be able to tell "this
   is telemetry, possibly torn" from "this is (supposed to be) a
   result line", because a torn result still means the worker died
   mid-write whereas a torn telemetry frame must never cost a point.
   The discriminator is the frame prefix [telemetry_prefix]: the
   encoders below always start a telemetry line with it, and the task
   codec / checkpoint result codec never emit a "tel" key. *)

type telemetry =
  | Tel_journal of Journal.event list
  | Tel_spans of { origin : string; spans : Obs.span list }
  | Tel_counters of {
      origin : string;
      counters : (string * (string * string) list * int) list;
    }

let telemetry_prefix = Printf.sprintf "{\"v\":%d,\"tel\":\"" version

let span_to_json (s : Obs.span) =
  let b = Buffer.create 128 in
  Printf.bprintf b
    "{\"name\":%s,\"cat\":%s,\"start_ns\":%d,\"dur_ns\":%d,\"depth\":%d,\"dom\":%d"
    (jstr s.Obs.name) (jstr s.Obs.cat) s.Obs.start_ns s.Obs.dur_ns
    s.Obs.depth s.Obs.dom;
  if s.Obs.proc <> "" then Printf.bprintf b ",\"proc\":%s" (jstr s.Obs.proc);
  if s.Obs.args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "%s:%s" (jstr k) (jstr v))
      s.Obs.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let counter_to_json (name, labels, value) =
  let b = Buffer.create 64 in
  Printf.bprintf b "{\"name\":%s" (jstr name);
  if labels <> [] then begin
    Buffer.add_string b ",\"labels\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "%s:%s" (jstr k) (jstr v))
      labels;
    Buffer.add_char b '}'
  end;
  Printf.bprintf b ",\"value\":%d}" value;
  Buffer.contents b

let encode_telemetry = function
  | Tel_journal events ->
      Printf.sprintf "%sjournal\",\"events\":[%s]}" telemetry_prefix
        (String.concat "," (List.map Journal.event_to_json events))
  | Tel_spans { origin; spans } ->
      Printf.sprintf "%sspans\",\"origin\":%s,\"spans\":[%s]}" telemetry_prefix
        (jstr origin)
        (String.concat "," (List.map span_to_json spans))
  | Tel_counters { origin; counters } ->
      Printf.sprintf "%scounters\",\"origin\":%s,\"counters\":[%s]}"
        telemetry_prefix (jstr origin)
        (String.concat "," (List.map counter_to_json counters))

(* Decoding back into journal values. Numbers decode to [I] when they
   are integral and inside the range the [I] encoder can have produced
   (so the round-trip is canonical: what re-encodes identically);
   everything else stays [F]. The journal's non-finite string encoding
   maps back to the floats it names — a payload [S "NaN"] encodes to
   the same bytes as [F nan], so decoding either spelling to [F nan]
   keeps re-encoding stable. *)
let value_of_json = function
  | Json.Bool b -> Some (Journal.B b)
  | Json.Num v ->
      if
        Float.is_integer v
        && Float.abs v <= 1e15
        && not (v = 0.0 && 1.0 /. v < 0.0) (* -0. must stay a float *)
      then Some (Journal.I (int_of_float v))
      else Some (Journal.F v)
  | Json.Str "NaN" -> Some (Journal.F nan)
  | Json.Str "Infinity" -> Some (Journal.F infinity)
  | Json.Str "-Infinity" -> Some (Journal.F neg_infinity)
  | Json.Str s -> Some (Journal.S s)
  | _ -> None

let severity_of_label = function
  | "debug" -> Some Journal.Debug
  | "info" -> Some Journal.Info
  | "warn" -> Some Journal.Warn
  | "error" -> Some Journal.Error
  | _ -> None

let opt_all f l =
  List.fold_right
    (fun x acc ->
      match (f x, acc) with Some y, Some tl -> Some (y :: tl) | _ -> None)
    l (Some [])

let string_pairs = function
  | Json.Obj fields ->
      opt_all
        (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_string v))
        fields
  | _ -> None

let event_of_json j =
  let ( let* ) = Option.bind in
  let int k = Option.map int_of_float (Json.mem_float k j) in
  let* seq = int "seq" in
  let* dom = int "dom" in
  let* cat = Json.mem_string "cat" j in
  let* name = Json.mem_string "name" j in
  let* severity = Option.bind (Json.mem_string "sev" j) severity_of_label in
  let* wall_ns = int "wall_ns" in
  let origin = Option.value ~default:"" (Json.mem_string "origin" j) in
  let step = Option.value ~default:(-1) (int "step") in
  let time = Option.value ~default:nan (Json.mem_float "time" j) in
  let* payload =
    match Json.member "data" j with
    | Some (Json.Obj fields) ->
        opt_all
          (fun (k, v) -> Option.map (fun x -> (k, x)) (value_of_json v))
          fields
    | _ -> None
  in
  Some
    { Journal.seq; origin; dom; cat; name; severity; step; time; wall_ns;
      payload }

let span_of_json j =
  let ( let* ) = Option.bind in
  let int k = Option.map int_of_float (Json.mem_float k j) in
  let* name = Json.mem_string "name" j in
  let* cat = Json.mem_string "cat" j in
  let* start_ns = int "start_ns" in
  let* dur_ns = int "dur_ns" in
  let* depth = int "depth" in
  let* dom = int "dom" in
  let proc = Option.value ~default:"" (Json.mem_string "proc" j) in
  let* args =
    match Json.member "args" j with
    | None -> Some []
    | Some o -> string_pairs o
  in
  Some { Obs.name; cat; start_ns; dur_ns; depth; dom; proc; args }

let counter_of_json j =
  let ( let* ) = Option.bind in
  let* name = Json.mem_string "name" j in
  let* value = Option.map int_of_float (Json.mem_float "value" j) in
  let* labels =
    match Json.member "labels" j with
    | None -> Some []
    | Some o -> string_pairs o
  in
  Some (name, labels, value)

let is_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let decode_telemetry line =
  if is_prefix ~prefix:telemetry_prefix line then begin
    let torn reason = `Torn reason in
    match Json.parse line with
    | exception Json.Parse_error (m, off) ->
        torn (Printf.sprintf "torn telemetry frame at offset %d: %s" off m)
    | j -> (
        let decoded =
          let ( let* ) = Option.bind in
          let* kind = Json.mem_string "tel" j in
          match kind with
          | "journal" ->
              let* events =
                opt_all event_of_json (Json.mem_list "events" j)
              in
              Some (Tel_journal events)
          | "spans" ->
              let* origin = Json.mem_string "origin" j in
              let* spans = opt_all span_of_json (Json.mem_list "spans" j) in
              Some (Tel_spans { origin; spans })
          | "counters" ->
              let* origin = Json.mem_string "origin" j in
              let* counters =
                opt_all counter_of_json (Json.mem_list "counters" j)
              in
              Some (Tel_counters { origin; counters })
          | _ -> None
        in
        match decoded with
        | Some t -> `Telemetry t
        | None -> torn "malformed telemetry frame")
  end
  else if
    line <> ""
    && String.length line < String.length telemetry_prefix
    && is_prefix ~prefix:line telemetry_prefix
  then
    (* The line is a proper prefix of the telemetry prefix itself: a
       telemetry frame cut off before it even finished announcing — a
       truncated result line can never look like this because result
       lines never start with the prefix. *)
    `Torn "truncated telemetry frame"
  else `Not_telemetry
