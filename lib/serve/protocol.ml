module Json = Amsvp_util.Json
module Checkpoint = Amsvp_sweep.Checkpoint
module Runner = Amsvp_sweep.Runner

let version = 1

type request =
  | Submit of { spec_text : string; jobs : int option }
  | Ping
  | Stats
  | Shutdown

type stats = {
  st_requests : int;
  st_points : int;
  st_ctx_hits : int;
  st_ctx_misses : int;
  st_uptime_s : float;
}

type response =
  | Accepted of {
      id : int;
      sweep : string;
      circuit : string;
      points : int;
      resumed : int;
    }
  | Point of { id : int; result : Runner.point_result }
  | Done of {
      id : int;
      points : int;
      unhealthy : int;
      cache_hits : int;
      cache_misses : int;
      total_s : float;
      complete : bool;
    }
  | Failed of { message : string }
  | Pong
  | Stats_reply of stats
  | Bye

let jstr = Checkpoint.jstr
let jnum = Checkpoint.jnum

(* ---- encoders: one line, no trailing newline ---- *)

let encode_request = function
  | Submit { spec_text; jobs } ->
      Printf.sprintf "{\"v\":%d,\"req\":\"submit\",\"spec\":%s%s}" version
        (jstr spec_text)
        (match jobs with
        | Some j -> Printf.sprintf ",\"jobs\":%d" j
        | None -> "")
  | Ping -> Printf.sprintf "{\"v\":%d,\"req\":\"ping\"}" version
  | Stats -> Printf.sprintf "{\"v\":%d,\"req\":\"stats\"}" version
  | Shutdown -> Printf.sprintf "{\"v\":%d,\"req\":\"shutdown\"}" version

let encode_response = function
  | Accepted { id; sweep; circuit; points; resumed } ->
      Printf.sprintf
        "{\"v\":%d,\"ev\":\"accepted\",\"id\":%d,\"sweep\":%s,\"circuit\":%s,\"points\":%d,\"resumed\":%d}"
        version id (jstr sweep) (jstr circuit) points resumed
  | Point { id; result } ->
      Printf.sprintf "{\"v\":%d,\"ev\":\"point\",\"id\":%d,\"result\":%s}"
        version id
        (Checkpoint.result_to_json result)
  | Done { id; points; unhealthy; cache_hits; cache_misses; total_s; complete }
    ->
      Printf.sprintf
        "{\"v\":%d,\"ev\":\"done\",\"id\":%d,\"points\":%d,\"unhealthy\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"total_s\":%s,\"complete\":%b}"
        version id points unhealthy cache_hits cache_misses (jnum total_s)
        complete
  | Failed { message } ->
      Printf.sprintf "{\"v\":%d,\"ev\":\"error\",\"message\":%s}" version
        (jstr message)
  | Pong -> Printf.sprintf "{\"v\":%d,\"ev\":\"pong\"}" version
  | Stats_reply s ->
      Printf.sprintf
        "{\"v\":%d,\"ev\":\"stats\",\"requests\":%d,\"points\":%d,\"ctx_hits\":%d,\"ctx_misses\":%d,\"uptime_s\":%s}"
        version s.st_requests s.st_points s.st_ctx_hits s.st_ctx_misses
        (jnum s.st_uptime_s)
  | Bye -> Printf.sprintf "{\"v\":%d,\"ev\":\"bye\"}" version

(* ---- decoders: total, never raise ---- *)

let parse_frame line =
  match Json.parse line with
  | j -> (
      match Json.mem_float "v" j with
      | Some v when int_of_float v = version -> Ok j
      | Some v ->
          Error
            (Printf.sprintf "unsupported protocol version %d (want %d)"
               (int_of_float v) version)
      | None -> Error "frame has no \"v\" field")
  | exception Json.Parse_error (m, off) ->
      Error (Printf.sprintf "malformed frame at offset %d: %s" off m)

let decode_request line =
  match parse_frame line with
  | Error _ as e -> e
  | Ok j -> (
      match Json.mem_string "req" j with
      | Some "submit" -> (
          match Json.mem_string "spec" j with
          | Some spec_text ->
              let jobs = Option.map int_of_float (Json.mem_float "jobs" j) in
              Ok (Submit { spec_text; jobs })
          | None -> Error "submit frame has no \"spec\" field")
      | Some "ping" -> Ok Ping
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Error (Printf.sprintf "unknown request %S" other)
      | None -> Error "frame has no \"req\" field")

let decode_response line =
  let ( let* ) o f =
    match o with Some v -> f v | None -> Error "malformed response frame"
  in
  let int k j = Option.map int_of_float (Json.mem_float k j) in
  match parse_frame line with
  | Error _ as e -> e
  | Ok j -> (
      match Json.mem_string "ev" j with
      | Some "accepted" ->
          let* id = int "id" j in
          let* sweep = Json.mem_string "sweep" j in
          let* circuit = Json.mem_string "circuit" j in
          let* points = int "points" j in
          let* resumed = int "resumed" j in
          Ok (Accepted { id; sweep; circuit; points; resumed })
      | Some "point" -> (
          let* id = int "id" j in
          let* rj = Json.member "result" j in
          match Checkpoint.result_of_json rj with
          | Ok result -> Ok (Point { id; result })
          | Error _ as e -> e)
      | Some "done" ->
          let* id = int "id" j in
          let* points = int "points" j in
          let* unhealthy = int "unhealthy" j in
          let* cache_hits = int "cache_hits" j in
          let* cache_misses = int "cache_misses" j in
          let* total_s = Json.mem_float "total_s" j in
          let* complete = Json.mem_bool "complete" j in
          Ok
            (Done
               {
                 id;
                 points;
                 unhealthy;
                 cache_hits;
                 cache_misses;
                 total_s;
                 complete;
               })
      | Some "error" ->
          let* message = Json.mem_string "message" j in
          Ok (Failed { message })
      | Some "pong" -> Ok Pong
      | Some "stats" ->
          let* st_requests = int "requests" j in
          let* st_points = int "points" j in
          let* st_ctx_hits = int "ctx_hits" j in
          let* st_ctx_misses = int "ctx_misses" j in
          let* st_uptime_s = Json.mem_float "uptime_s" j in
          Ok
            (Stats_reply
               { st_requests; st_points; st_ctx_hits; st_ctx_misses;
                 st_uptime_s })
      | Some "bye" -> Ok Bye
      | Some other -> Error (Printf.sprintf "unknown event %S" other)
      | None -> Error "frame has no \"ev\" field")
