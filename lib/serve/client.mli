(** Client side of the sweep service protocol. *)

type t

val connect : string -> t
(** Connect to the daemon's Unix-domain socket.
    @raise Unix.Unix_error when the daemon is not there. *)

val close : t -> unit
val send : t -> Protocol.request -> unit

val recv : t -> (Protocol.response, string) result
(** Next response frame; blocks. [Error] on a malformed frame or a
    closed/truncated connection. *)

val submit :
  t ->
  ?jobs:int ->
  spec_text:string ->
  ?on_event:(Protocol.response -> unit) ->
  unit ->
  (Protocol.response, string) result
(** Submit a sweep and stream it: [on_event] sees every frame
    ([Accepted], each [Point], the [Done]) as it arrives; returns the
    final [Done] — or the [Rejected] carrying the diagnostics that
    refused the submit — or [Error] on a protocol failure. *)
