module Trace = Amsvp_util.Trace

type assignment = { target : Expr.var; expr : Expr.t }

type t = {
  name : string;
  inputs : string list;
  outputs : Expr.var list;
  assignments : assignment list;
  dt : float;
}

let is_input p name = List.mem name p.inputs

let validate p =
  if p.dt <= 0.0 then invalid_arg "Sfprogram: dt must be positive";
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let targets = Hashtbl.create 16 in
  List.iter
    (fun a ->
      if a.target.Expr.delay <> 0 then
        fail "Sfprogram: assignment to delayed variable %s"
          (Expr.var_name a.target);
      if Hashtbl.mem targets a.target.Expr.base then
        fail "Sfprogram: duplicate assignment to %s" (Expr.var_name a.target);
      Hashtbl.add targets a.target.Expr.base ())
    p.assignments;
  let assigned_so_far = Hashtbl.create 16 in
  List.iter
    (fun a ->
      if Expr.contains_ddt a.expr then
        fail "Sfprogram: %s has an un-discretised ddt/idt"
          (Expr.var_name a.target);
      Expr.Var_set.iter
        (fun v ->
          match v.Expr.base with
          | Expr.Param name -> fail "Sfprogram: unresolved parameter %s" name
          | Expr.Signal s when v.Expr.delay = 0 && is_input p s -> ()
          | base when v.Expr.delay >= 1 ->
              let input_history =
                match base with
                | Expr.Signal s -> is_input p s
                | Expr.Potential _ | Expr.Flow _ | Expr.Param _ -> false
              in
              if not (input_history || Hashtbl.mem targets base) then
                fail "Sfprogram: %s reads history of unknown quantity %s"
                  (Expr.var_name a.target) (Expr.var_name v)
          | base ->
              if not (Hashtbl.mem assigned_so_far base) then
                fail
                  "Sfprogram: %s reads %s before it is assigned in this step"
                  (Expr.var_name a.target) (Expr.var_name v))
        (Expr.vars a.expr);
      Hashtbl.add assigned_so_far a.target.Expr.base ())
    p.assignments;
  List.iter
    (fun o ->
      if not (Hashtbl.mem targets o.Expr.base) then
        fail "Sfprogram: output %s is never assigned" (Expr.var_name o))
    p.outputs

let make ~name ~inputs ~outputs ~assignments ~dt =
  let p = { name; inputs; outputs; assignments; dt } in
  validate p;
  p

let fold_read_vars p f acc =
  List.fold_left
    (fun acc a -> Expr.Var_set.fold (fun v acc -> f acc v) (Expr.vars a.expr) acc)
    acc p.assignments

let max_delay p = fold_read_vars p (fun acc v -> max acc v.Expr.delay) 0

let state_vars p =
  let bases =
    fold_read_vars p
      (fun acc v ->
        if v.Expr.delay >= 1 then
          Expr.Var_set.add { v with Expr.delay = 0 } acc
        else acc)
      Expr.Var_set.empty
  in
  (* Keep only assigned targets (input histories are tracked separately). *)
  List.filter
    (fun (a : assignment) -> Expr.Var_set.mem a.target bases)
    p.assignments
  |> List.map (fun a -> a.target)

let pp ppf p =
  Format.fprintf ppf "@[<v>program %s (dt=%g)@," p.name p.dt;
  Format.fprintf ppf "inputs: %s@," (String.concat ", " p.inputs);
  Format.fprintf ppf "outputs: %s@,"
    (String.concat ", " (List.map Expr.var_name p.outputs));
  List.iter
    (fun a ->
      Format.fprintf ppf "  %s := %a@," (Expr.var_name a.target) Expr.pp a.expr)
    p.assignments;
  Format.fprintf ppf "@]"

(* Slot layout, shared by both execution engines. The allocation order
   is a deterministic function of the program structure alone (inputs
   in declaration order, then targets, then history levels discovered
   through the ordered [Var_set] of reads), so two programs with the
   same shape — as produced by the sweep engine's plan replay — get
   identical layouts, and a bytecode artifact compiled against one is
   valid for the other. *)
type layout = {
  l_table : (Expr.var, int) Hashtbl.t;
  l_count : int;
  l_input_slots : int array;
  l_output_slots : int array;
  l_rotations : (int * int) array;
}

let layout_of (p : t) =
  let table : (Expr.var, int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  let slot v =
    match Hashtbl.find_opt table v with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add table v i;
        i
  in
  (* Reserve slots: inputs first, then every variable read or written,
     then every intermediate delay level so histories can rotate. *)
  let l_input_slots =
    Array.of_list (List.map (fun s -> slot (Expr.signal s)) p.inputs)
  in
  List.iter (fun a -> ignore (slot a.target)) p.assignments;
  let depth : (Expr.base, int) Hashtbl.t = Hashtbl.create 16 in
  fold_read_vars p
    (fun () v ->
      if v.Expr.delay >= 1 then begin
        let d =
          match Hashtbl.find_opt depth v.Expr.base with
          | Some d -> max d v.Expr.delay
          | None -> v.Expr.delay
        in
        Hashtbl.replace depth v.Expr.base d
      end)
    ();
  let rotations = ref [] in
  Hashtbl.iter
    (fun base d ->
      for k = d downto 1 do
        let dst = slot { Expr.base; delay = k }
        and src = slot { Expr.base; delay = k - 1 } in
        rotations := (dst, src) :: !rotations
      done)
    depth;
  (* Rotation order: deepest level first for each base; the list was
     built deepest-first per base, and bases are independent, but the
     Hashtbl.iter interleaving preserves per-base order only if we
     keep the construction order. Reversing restores it. *)
  let l_rotations = Array.of_list (List.rev !rotations) in
  let l_output_slots = Array.of_list (List.map slot p.outputs) in
  {
    l_table = table;
    l_count = !next;
    l_input_slots;
    l_output_slots;
    l_rotations;
  }

let layout_slot lay v =
  match Hashtbl.find_opt lay.l_table v with
  | Some i -> i
  | None ->
      invalid_arg ("Sfprogram: unknown variable " ^ Expr.var_name v)

let layout_count lay = lay.l_count
let layout_input_slots lay = Array.copy lay.l_input_slots
let layout_output_slots lay = Array.copy lay.l_output_slots
let layout_rotations lay = Array.copy lay.l_rotations

let assignment_slots lay (p : t) =
  List.map (fun a -> (layout_slot lay a.target, a.expr)) p.assignments

let compile ?mode ?facts (p : t) =
  let lay = layout_of p in
  Compile.compile ?mode ?facts ~slot:(layout_slot lay) ~n_slots:lay.l_count
    (assignment_slots lay p)

let rebind_compiled artifact (p : t) =
  let lay = layout_of p in
  Compile.rebind artifact ~slot:(layout_slot lay) ~n_slots:lay.l_count
    (assignment_slots lay p)

module Runner = struct
  module Obs = Amsvp_obs.Obs
  module Journal = Amsvp_obs.Journal

  type program = t

  (* Signal-flow interpreter counters: one tick = one [step] call, one
     op = one compiled assignment evaluated. *)
  let c_ticks = Obs.Counter.make ~help:"signal-flow steps" "amsvp_sf_ticks_total"

  let c_ops =
    Obs.Counter.make ~help:"signal-flow assignments evaluated"
      "amsvp_sf_ops_total"

  type engine = [ `Tree | `Bytecode ]

  type impl =
    | Tree_steps of (int * (float array -> float)) array
        (** target slot, compiled closure per assignment *)
    | Bytecode of Compile.t

  type t = {
    program : program;
    slots : float array;
        (** for [Bytecode], the whole register file; variable slots are
            the first [n_state] entries in both engines *)
    n_state : int;
    slot_of : Expr.var -> int;
    input_slots : int array;
    output_slots : int array;
    impl : impl;
    n_assign : int;
    rotations : (int * int) array;
        (** dst, src pairs applied (in order) after each step *)
  }

  let create ?(engine : engine = `Bytecode) ?compiled (p : program) =
    let lay = layout_of p in
    let impl, slots =
      match engine with
      | `Tree ->
          let steps =
            Array.of_list
              (List.map
                 (fun a ->
                   (layout_slot lay a.target,
                    Expr.compile (layout_slot lay) a.expr))
                 p.assignments)
          in
          (Tree_steps steps, Array.make (max 1 lay.l_count) 0.0)
      | `Bytecode ->
          let artifact =
            match compiled with
            | Some a ->
                if Compile.n_slots a <> lay.l_count then
                  invalid_arg
                    (Printf.sprintf
                       "Sfprogram.Runner.create(%s): compiled artifact has \
                        %d slots, program needs %d"
                       p.name (Compile.n_slots a) lay.l_count)
                else a
            | None -> compile p
          in
          let slots = Array.make (max 1 (Compile.n_regs artifact)) 0.0 in
          Compile.load_consts artifact slots;
          (Bytecode artifact, slots)
    in
    {
      program = p;
      slots;
      n_state = lay.l_count;
      slot_of = layout_slot lay;
      input_slots = lay.l_input_slots;
      output_slots = lay.l_output_slots;
      impl;
      n_assign = List.length p.assignments;
      rotations = lay.l_rotations;
    }

  (* Only the variable slots are cleared: constant registers of the
     bytecode engine are loaded once at [create] and must survive, and
     temporaries are dead between steps by construction. *)
  let reset r = Array.fill r.slots 0 r.n_state 0.0

  let step r ~inputs =
    if Array.length inputs <> Array.length r.input_slots then
      invalid_arg
        (Printf.sprintf
           "Sfprogram.Runner.step(%s): expected %d input(s), got %d"
           r.program.name
           (Array.length r.input_slots)
           (Array.length inputs));
    for i = 0 to Array.length inputs - 1 do
      r.slots.(r.input_slots.(i)) <- inputs.(i)
    done;
    (match r.impl with
    | Tree_steps steps ->
        for i = 0 to Array.length steps - 1 do
          let tgt, f = steps.(i) in
          r.slots.(tgt) <- f r.slots
        done
    | Bytecode artifact -> Compile.exec artifact r.slots);
    for i = 0 to Array.length r.rotations - 1 do
      let dst, src = r.rotations.(i) in
      r.slots.(dst) <- r.slots.(src)
    done;
    Obs.Counter.incr c_ticks;
    Obs.Counter.add c_ops r.n_assign

  let output r i = r.slots.(r.output_slots.(i))
  let read r v = r.slots.(r.slot_of v)

  let run r ~stimuli ~t_stop ?(probe = 0) ?observe () =
    Obs.with_span ~cat:"sf" ~args:[ ("program", r.program.name) ] "sf.run"
    @@ fun () ->
    reset r;
    let dt = r.program.dt in
    let nsteps = int_of_float (Float.round (t_stop /. dt)) in
    let trace = Trace.create ~capacity:(nsteps + 1) () in
    let inputs = Array.make (Array.length stimuli) 0.0 in
    (* The reader closure is built once, outside the loop; when no
       observer is attached the per-step cost is a single branch. *)
    let reader = read r in
    Trace.add trace ~time:0.0 ~value:(output r probe);
    (match observe with None -> () | Some f -> f 0.0 reader);
    for i = 1 to nsteps do
      let t = float_of_int i *. dt in
      for k = 0 to Array.length stimuli - 1 do
        inputs.(k) <- stimuli.(k) t
      done;
      step r ~inputs;
      Trace.add trace ~time:t ~value:(output r probe);
      match observe with None -> () | Some f -> f t reader
    done;
    if Journal.enabled () then begin
      (* Per-step traffic is a static property of the artifact; the
         journal records it once per run, scaled by the tick count. *)
      let base =
        [
          ("program", Journal.S r.program.name);
          ("ticks", Journal.I nsteps);
          ("assigns_per_tick", Journal.I r.n_assign);
        ]
      in
      let payload =
        match r.impl with
        | Tree_steps _ -> ("engine", Journal.S "tree") :: base
        | Bytecode artifact ->
            let tr = Compile.traffic artifact in
            ("engine", Journal.S "bytecode")
            :: base
            @ [
                ("instrs_per_tick", Journal.I (Compile.n_instrs artifact));
                ("reads_per_tick", Journal.I tr.Compile.t_reads);
                ("writes_per_tick", Journal.I tr.Compile.t_writes);
                ("flops_per_tick", Journal.I tr.Compile.t_flops);
                ("regs", Journal.I (Compile.n_regs artifact));
              ]
            @ List.map
                (fun (op, n) -> ("op." ^ op, Journal.I n))
                tr.Compile.t_opcode_mix
      in
      Journal.emit ~time:t_stop ~cat:"sf" "run" payload
    end;
    trace
end
