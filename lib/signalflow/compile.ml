module Obs = Amsvp_obs.Obs

type mode = [ `Optimize | `Template ]

(* Three-address instructions over one float register file. All
   operands are plain register indices, validated at build time, so
   [exec] can use unchecked array accesses. Conditions are materialised
   as 0.0 / 1.0 floats. *)
type instr =
  | Mov of int * int
  | Neg of int * int
  | Add of int * int * int
  | Sub of int * int * int
  | Mul of int * int * int
  | Div of int * int * int
  | App of Expr.unary_fun * int * int
  | Cmp of Expr.cmp * int * int * int
  | Andb of int * int * int
  | Orb of int * int * int
  | Notb of int * int
  | Sel of int * int * int * int  (** dst, cond, then, else *)

type t = {
  mode : mode;
  shape : string;
      (** structural key: slot layout + expression structure, constants
          elided — two programs with equal shapes share register
          allocation and scheduling *)
  n_slots : int;
  n_regs : int;
  consts : float array;  (** [consts.(i)] preloads register [n_slots + i] *)
  code : instr array;
}

let n_slots t = t.n_slots
let n_regs t = t.n_regs
let n_instrs t = Array.length t.code
let n_consts t = Array.length t.consts

(* ---- observability ---- *)

let c_programs =
  Obs.Counter.make ~help:"signal-flow programs compiled to bytecode"
    "amsvp_sf_compiled_programs_total"

let c_instrs =
  Obs.Counter.make ~help:"bytecode instructions emitted"
    "amsvp_sf_compiled_instrs_total"

let c_rebinds =
  Obs.Counter.make ~help:"template artifacts re-targeted without recompiling"
    "amsvp_sf_compile_rebinds_total"

let h_compile_seconds =
  Obs.Histogram.make ~help:"wall-clock seconds per bytecode compilation"
    ~buckets:[| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1 |]
    "amsvp_sf_compile_seconds"

(* ---- value-numbering DAG ---- *)

type op =
  | Oneg
  | Oadd
  | Osub
  | Omul
  | Odiv
  | Oapp of Expr.unary_fun
  | Ocmp of Expr.cmp
  | Oand
  | Oor
  | Onot
  | Osel

type node = Nconst of int  (** pool index *) | Nread of int  (** slot *) | Nop of op * int array

(* Hash-consing key. Constants are keyed by their bit pattern in
   [`Optimize] mode (0.0 and -0.0 stay distinct, every NaN payload is
   its own value); in [`Template] mode every literal occurrence is a
   fresh pool position and never unifies. Reads are keyed by (slot,
   version) with the version bumped at each store, so a read before and
   after an assignment to the same slot cannot unify. *)
type key = Kconst of int64 | Kread of int * int | Kop of op * int list

(* Exactly the IEEE operations the tree interpreter performs, so
   compile-time folding is bit-identical to evaluating at run time.
   The boolean connectives see only 0.0/1.0 operands here. *)
let eval_op op (xs : float array) =
  match (op, xs) with
  | Oneg, [| a |] -> -.a
  | Oadd, [| a; b |] -> a +. b
  | Osub, [| a; b |] -> a -. b
  | Omul, [| a; b |] -> a *. b
  | Odiv, [| a; b |] -> a /. b
  | Oapp f, [| a |] -> Expr.apply_fun f a
  | Ocmp c, [| a; b |] -> if Expr.apply_cmp c a b then 1.0 else 0.0
  | Oand, [| a; b |] -> if a <> 0.0 && b <> 0.0 then 1.0 else 0.0
  | Oor, [| a; b |] -> if a <> 0.0 || b <> 0.0 then 1.0 else 0.0
  | Onot, [| a |] -> if a <> 0.0 then 0.0 else 1.0
  | Osel, [| c; a; b |] -> if c <> 0.0 then a else b
  | _ -> invalid_arg "Compile.eval_op: arity"

(* ---- structural shape ---- *)

let fun_tag = function
  | Expr.Sin -> "sin"
  | Expr.Cos -> "cos"
  | Expr.Exp -> "exp"
  | Expr.Ln -> "ln"
  | Expr.Sqrt -> "sqrt"
  | Expr.Abs -> "abs"
  | Expr.Tanh -> "tanh"

let cmp_tag = function Expr.Lt -> "<" | Expr.Le -> "<=" | Expr.Gt -> ">" | Expr.Ge -> ">="

let shape_of ~slot ~n_slots assigns =
  let b = Buffer.create 256 in
  Printf.bprintf b "S%d" n_slots;
  let rec walk e =
    match e with
    | Expr.Const _ -> Buffer.add_char b 'C'
    | Expr.Var x -> Printf.bprintf b "v%d" (slot x)
    | Expr.Neg a ->
        Buffer.add_string b "(-";
        walk a;
        Buffer.add_char b ')'
    | Expr.Add (x, y) -> bin "+" x y
    | Expr.Sub (x, y) -> bin "-" x y
    | Expr.Mul (x, y) -> bin "*" x y
    | Expr.Div (x, y) -> bin "/" x y
    | Expr.Ddt _ | Expr.Idt _ ->
        invalid_arg "Compile: ddt/idt cannot be compiled"
    | Expr.App (f, a) ->
        Printf.bprintf b "(%s " (fun_tag f);
        walk a;
        Buffer.add_char b ')'
    | Expr.Cond (c, x, y) ->
        Buffer.add_string b "(?";
        walk_cond c;
        Buffer.add_char b ' ';
        walk x;
        Buffer.add_char b ' ';
        walk y;
        Buffer.add_char b ')'
  and bin tag x y =
    Buffer.add_char b '(';
    Buffer.add_string b tag;
    Buffer.add_char b ' ';
    walk x;
    Buffer.add_char b ' ';
    walk y;
    Buffer.add_char b ')'
  and walk_cond c =
    match c with
    | Expr.Cmp (op, x, y) -> bin (cmp_tag op) x y
    | Expr.And (c1, c2) ->
        Buffer.add_string b "(&& ";
        walk_cond c1;
        Buffer.add_char b ' ';
        walk_cond c2;
        Buffer.add_char b ')'
    | Expr.Or (c1, c2) ->
        Buffer.add_string b "(|| ";
        walk_cond c1;
        Buffer.add_char b ' ';
        walk_cond c2;
        Buffer.add_char b ')'
    | Expr.Not c ->
        Buffer.add_string b "(! ";
        walk_cond c;
        Buffer.add_char b ')'
  in
  List.iter
    (fun (tslot, e) ->
      Printf.bprintf b "|%d:=" tslot;
      walk e)
    assigns;
  Buffer.contents b

(* Literal constants in the left-to-right traversal order used by the
   lowering pass: the pool layout of a [`Template] artifact, so
   {!rebind} can patch values positionally. *)
let collect_consts assigns =
  let acc = ref [] in
  let rec walk e =
    match e with
    | Expr.Const c -> acc := c :: !acc
    | Expr.Var _ -> ()
    | Expr.Neg a | Expr.App (_, a) | Expr.Ddt a | Expr.Idt a -> walk a
    | Expr.Add (x, y) | Expr.Sub (x, y) | Expr.Mul (x, y) | Expr.Div (x, y) ->
        walk x;
        walk y
    | Expr.Cond (c, x, y) ->
        walk_cond c;
        walk x;
        walk y
  and walk_cond = function
    | Expr.Cmp (_, x, y) ->
        walk x;
        walk y
    | Expr.And (c1, c2) | Expr.Or (c1, c2) ->
        walk_cond c1;
        walk_cond c2
    | Expr.Not c -> walk_cond c
  in
  List.iter (fun (_, e) -> walk e) assigns;
  Array.of_list (List.rev !acc)

(* ---- compilation ---- *)

let compile_unobserved ~(mode : mode) ~facts ~slot ~n_slots assigns =
  (* Facts are externally proven invariants "this slot holds exactly
     the finite nonzero constant c after every store". They only make
     sense under value folding, and zero is refused because the domain
     that proves facts cannot tell the signed zeros apart. With no
     facts the artifact is bit-identical to one compiled without the
     parameter. *)
  let facts_tbl : (int, float) Hashtbl.t = Hashtbl.create 8 in
  if mode = `Optimize then
    List.iter
      (fun (s, c) ->
        if c <> 0.0 && not (Float.is_nan c) then Hashtbl.replace facts_tbl s c)
      facts;
  let assigns =
    if Hashtbl.length facts_tbl = 0 then assigns
    else
      List.map
        (fun (tslot, e) ->
          match Hashtbl.find_opt facts_tbl tslot with
          | Some c -> (tslot, Expr.Const c)
          | None -> (tslot, e))
        assigns
  in
  let shape = shape_of ~slot ~n_slots assigns in
  (* checked [slot]: every variable register must stay below the slot
     region so the unchecked accesses of [exec] are safe. *)
  let slot v =
    let s = slot v in
    if s < 0 || s >= n_slots then
      invalid_arg
        (Printf.sprintf "Compile: slot %d of %s out of range [0,%d)" s
           (Expr.var_name v) n_slots);
    s
  in
  (* -- pass 1: lower to a value-numbered DAG -- *)
  let nodes : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let keys : (key, int) Hashtbl.t = Hashtbl.create 64 in
  let cval : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let pool = ref [] in
  let pool_n = ref 0 in
  let pool_ix : (int64, int) Hashtbl.t = Hashtbl.create 16 in
  let version = Array.make (max 1 n_slots) 0 in
  let next_id = ref 0 in
  let fresh node =
    let id = !next_id in
    incr next_id;
    Hashtbl.add nodes id node;
    id
  in
  let pool_slot c =
    match mode with
    | `Template ->
        let i = !pool_n in
        incr pool_n;
        pool := c :: !pool;
        i
    | `Optimize -> (
        let bits = Int64.bits_of_float c in
        match Hashtbl.find_opt pool_ix bits with
        | Some i -> i
        | None ->
            let i = !pool_n in
            incr pool_n;
            pool := c :: !pool;
            Hashtbl.add pool_ix bits i;
            i)
  in
  let mk_const c =
    match mode with
    | `Template ->
        (* every occurrence is its own rebindable pool position *)
        fresh (Nconst (pool_slot c))
    | `Optimize -> (
        let k = Kconst (Int64.bits_of_float c) in
        match Hashtbl.find_opt keys k with
        | Some id -> id
        | None ->
            let id = fresh (Nconst (pool_slot c)) in
            Hashtbl.add keys k id;
            Hashtbl.add cval id c;
            id)
  in
  let mk_read s =
    (* a slot with a proven-constant fact always reads that value
       (validated programs never read a target before its store) *)
    match Hashtbl.find_opt facts_tbl s with
    | Some c -> mk_const c
    | None -> (
        let k = Kread (s, version.(s)) in
        match Hashtbl.find_opt keys k with
        | Some id -> id
        | None ->
            let id = fresh (Nread s) in
            Hashtbl.add keys k id;
            id)
  in
  let mk_op op args =
    let folded =
      if mode = `Template then None
      else
        let vals = Array.map (fun a -> Hashtbl.find_opt cval a) args in
        if Array.for_all Option.is_some vals then
          Some (mk_const (eval_op op (Array.map Option.get vals)))
        else
          match (op, vals) with
          (* constant condition: the dead arm is never scheduled *)
          | Osel, [| Some c; _; _ |] ->
              Some (if c <> 0.0 then args.(1) else args.(2))
          | _ -> None
    in
    match folded with
    | Some id -> id
    | None -> (
        let k = Kop (op, Array.to_list args) in
        match Hashtbl.find_opt keys k with
        | Some id -> id
        | None ->
            let id = fresh (Nop (op, args)) in
            Hashtbl.add keys k id;
            id)
  in
  (* explicit left-to-right sequencing: template pool positions must
     match the traversal order of [collect_consts] *)
  let rec lower e =
    match e with
    | Expr.Const c -> mk_const c
    | Expr.Var x -> mk_read (slot x)
    | Expr.Neg a ->
        let a' = lower a in
        mk_op Oneg [| a' |]
    | Expr.Add (x, y) ->
        let x' = lower x in
        let y' = lower y in
        mk_op Oadd [| x'; y' |]
    | Expr.Sub (x, y) ->
        let x' = lower x in
        let y' = lower y in
        mk_op Osub [| x'; y' |]
    | Expr.Mul (x, y) ->
        let x' = lower x in
        let y' = lower y in
        mk_op Omul [| x'; y' |]
    | Expr.Div (x, y) ->
        let x' = lower x in
        let y' = lower y in
        mk_op Odiv [| x'; y' |]
    | Expr.Ddt _ | Expr.Idt _ ->
        invalid_arg "Compile: ddt/idt cannot be compiled"
    | Expr.App (f, a) ->
        let a' = lower a in
        mk_op (Oapp f) [| a' |]
    | Expr.Cond (c, x, y) ->
        let c' = lower_cond c in
        let x' = lower x in
        let y' = lower y in
        mk_op Osel [| c'; x'; y' |]
  and lower_cond c =
    match c with
    | Expr.Cmp (op, x, y) ->
        let x' = lower x in
        let y' = lower y in
        mk_op (Ocmp op) [| x'; y' |]
    | Expr.And (c1, c2) ->
        let a = lower_cond c1 in
        let b = lower_cond c2 in
        mk_op Oand [| a; b |]
    | Expr.Or (c1, c2) ->
        let a = lower_cond c1 in
        let b = lower_cond c2 in
        mk_op Oor [| a; b |]
    | Expr.Not c ->
        let a = lower_cond c in
        mk_op Onot [| a |]
  in
  let roots =
    List.map
      (fun (tslot, e) ->
        if tslot < 0 || tslot >= n_slots then
          invalid_arg
            (Printf.sprintf "Compile: target slot %d out of range [0,%d)"
               tslot n_slots);
        let r = lower e in
        (* the store makes this value the current content of the
           target slot: bump the version and let later reads of the
           target reuse the computed node instead of re-loading *)
        version.(tslot) <- version.(tslot) + 1;
        Hashtbl.replace keys (Kread (tslot, version.(tslot))) r;
        (tslot, r))
      assigns
  in
  let consts = Array.of_list (List.rev !pool) in
  let const_base = n_slots in
  let temp_base = n_slots + Array.length consts in
  (* -- pass 2: demand-driven scheduling over virtual registers.
     Nodes never demanded from an assignment root are dead and emit
     nothing. The first emission of a root lands directly in its
     target slot (safe: each slot is stored at most once per step, and
     validated programs cannot read a target before its assignment). -- *)
  let vcode = ref [] in
  let n_vinstr = ref 0 in
  let push i =
    vcode := i :: !vcode;
    incr n_vinstr
  in
  let vreg : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_vtemp = ref temp_base in
  let rec emit ?dst id =
    match Hashtbl.find_opt vreg id with
    | Some r -> r
    | None -> (
        match Hashtbl.find nodes id with
        | Nconst pix ->
            let r = const_base + pix in
            Hashtbl.add vreg id r;
            r
        | Nread s ->
            Hashtbl.add vreg id s;
            s
        | Nop (op, args) ->
            let n = Array.length args in
            let regs = Array.make n 0 in
            for i = 0 to n - 1 do
              regs.(i) <- emit args.(i)
            done;
            let d =
              match dst with
              | Some d -> d
              | None ->
                  let d = !next_vtemp in
                  incr next_vtemp;
                  d
            in
            (match (op, regs) with
            | Oneg, [| a |] -> push (Neg (d, a))
            | Oadd, [| a; b |] -> push (Add (d, a, b))
            | Osub, [| a; b |] -> push (Sub (d, a, b))
            | Omul, [| a; b |] -> push (Mul (d, a, b))
            | Odiv, [| a; b |] -> push (Div (d, a, b))
            | Oapp f, [| a |] -> push (App (f, d, a))
            | Ocmp c, [| a; b |] -> push (Cmp (c, d, a, b))
            | Oand, [| a; b |] -> push (Andb (d, a, b))
            | Oor, [| a; b |] -> push (Orb (d, a, b))
            | Onot, [| a |] -> push (Notb (d, a))
            | Osel, [| c; a; b |] -> push (Sel (d, c, a, b))
            | _ -> assert false);
            Hashtbl.add vreg id d;
            d)
  in
  List.iter
    (fun (tslot, r) ->
      match Hashtbl.find_opt vreg r with
      | Some reg -> if reg <> tslot then push (Mov (tslot, reg))
      | None -> (
          match Hashtbl.find nodes r with
          | Nop _ -> ignore (emit ~dst:tslot r)
          | Nconst _ | Nread _ ->
              let reg = emit r in
              push (Mov (tslot, reg))))
    roots;
  let vcode = Array.of_list (List.rev !vcode) in
  (* -- pass 3: collapse virtual temporaries onto a small physical
     file. Last uses are computed over the whole program, so a value
     shared across assignments (CSE) stays live until its final
     reader; past it, the register returns to the free list. -- *)
  let srcs = function
    | Mov (_, s) | Neg (_, s) | Notb (_, s) -> [ s ]
    | Add (_, a, b) | Sub (_, a, b) | Mul (_, a, b) | Div (_, a, b)
    | Andb (_, a, b) | Orb (_, a, b) ->
        [ a; b ]
    | App (_, _, a) -> [ a ]
    | Cmp (_, _, a, b) -> [ a; b ]
    | Sel (_, c, a, b) -> [ c; a; b ]
  in
  let dst_of = function
    | Mov (d, _) | Neg (d, _) | Notb (d, _)
    | Add (d, _, _) | Sub (d, _, _) | Mul (d, _, _) | Div (d, _, _)
    | Andb (d, _, _) | Orb (d, _, _)
    | App (_, d, _)
    | Cmp (_, d, _, _)
    | Sel (d, _, _, _) ->
        d
  in
  let last_use : (int, int) Hashtbl.t = Hashtbl.create 32 in
  Array.iteri
    (fun i instr ->
      List.iter
        (fun s -> if s >= temp_base then Hashtbl.replace last_use s i)
        (srcs instr))
    vcode;
  let phys : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let free = ref [] in
  let n_temps = ref 0 in
  let alloc () =
    match !free with
    | r :: rest ->
        free := rest;
        r
    | [] ->
        let r = temp_base + !n_temps in
        incr n_temps;
        r
  in
  let rename r = if r < temp_base then r else Hashtbl.find phys r in
  let code =
    Array.mapi
      (fun i instr ->
        let s = List.map rename (srcs instr) in
        List.iter
          (fun v ->
            if v >= temp_base && Hashtbl.find_opt last_use v = Some i then
              free := Hashtbl.find phys v :: !free)
          (List.sort_uniq compare (srcs instr));
        let d0 = dst_of instr in
        let d =
          if d0 < temp_base then d0
          else begin
            (* defined once, so the first (and only) def allocates;
               a value never read keeps its register only for this
               instruction *)
            let p = alloc () in
            Hashtbl.replace phys d0 p;
            if not (Hashtbl.mem last_use d0) then free := p :: !free;
            p
          end
        in
        match (instr, s) with
        | Mov _, [ a ] -> Mov (d, a)
        | Neg _, [ a ] -> Neg (d, a)
        | Notb _, [ a ] -> Notb (d, a)
        | Add _, [ a; b ] -> Add (d, a, b)
        | Sub _, [ a; b ] -> Sub (d, a, b)
        | Mul _, [ a; b ] -> Mul (d, a, b)
        | Div _, [ a; b ] -> Div (d, a, b)
        | Andb _, [ a; b ] -> Andb (d, a, b)
        | Orb _, [ a; b ] -> Orb (d, a, b)
        | App (f, _, _), [ a ] -> App (f, d, a)
        | Cmp (c, _, _, _), [ a; b ] -> Cmp (c, d, a, b)
        | Sel _, [ c; a; b ] -> Sel (d, c, a, b)
        | _ -> assert false)
      vcode
  in
  { mode; shape; n_slots; n_regs = temp_base + !n_temps; consts; code }

let compile ?(mode : mode = `Optimize) ?(facts = []) ~slot ~n_slots assigns =
  Obs.with_span ~cat:"sf" "sf.compile" @@ fun () ->
  let t0 = Obs.now_ns () in
  let t = compile_unobserved ~mode ~facts ~slot ~n_slots assigns in
  Obs.Counter.incr c_programs;
  Obs.Counter.add c_instrs (Array.length t.code);
  Obs.Histogram.observe h_compile_seconds
    (float_of_int (Obs.now_ns () - t0) *. 1e-9);
  t

let rebind t ~slot ~n_slots assigns =
  if t.mode <> `Template || n_slots <> t.n_slots then None
  else if not (String.equal (shape_of ~slot ~n_slots assigns) t.shape) then
    None
  else
    let consts = collect_consts assigns in
    if Array.length consts <> Array.length t.consts then None
    else begin
      Obs.Counter.incr c_rebinds;
      Some { t with consts }
    end

(* ---- traffic ---- *)

type traffic = {
  t_reads : int;
  t_writes : int;
  t_flops : int;
  t_opcode_mix : (string * int) list;
}

(* The bytecode is straight-line (no branches), so one [exec] performs
   exactly the instruction sequence: per-step register traffic and the
   opcode mix are static properties of the artifact. *)
let traffic t =
  let reads = ref 0 and writes = ref 0 and flops = ref 0 in
  let mix = Hashtbl.create 12 in
  let count name n_src ~flop =
    reads := !reads + n_src;
    incr writes;
    if flop then incr flops;
    Hashtbl.replace mix name (1 + Option.value ~default:0 (Hashtbl.find_opt mix name))
  in
  Array.iter
    (fun instr ->
      match instr with
      | Mov _ -> count "mov" 1 ~flop:false
      | Neg _ -> count "neg" 1 ~flop:true
      | Add _ -> count "add" 2 ~flop:true
      | Sub _ -> count "sub" 2 ~flop:true
      | Mul _ -> count "mul" 2 ~flop:true
      | Div _ -> count "div" 2 ~flop:true
      | App _ -> count "app" 1 ~flop:true
      | Cmp _ -> count "cmp" 2 ~flop:true
      | Andb _ -> count "and" 2 ~flop:false
      | Orb _ -> count "or" 2 ~flop:false
      | Notb _ -> count "not" 1 ~flop:false
      | Sel _ -> count "sel" 3 ~flop:false)
    t.code;
  let t_opcode_mix =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) mix []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { t_reads = !reads; t_writes = !writes; t_flops = !flops; t_opcode_mix }

(* ---- execution ---- *)

let load_consts t regs =
  if Array.length regs < t.n_regs then
    invalid_arg
      (Printf.sprintf "Compile.load_consts: register file %d < %d"
         (Array.length regs) t.n_regs);
  Array.iteri (fun i c -> regs.(t.n_slots + i) <- c) t.consts

(* All operand indices were validated below [n_regs] at build time and
   [load_consts] checked the array length, so the hot loop can elide
   bounds checks. *)
let exec t (regs : float array) =
  let code = t.code in
  let get i = Array.unsafe_get regs i in
  let set i v = Array.unsafe_set regs i v in
  for i = 0 to Array.length code - 1 do
    match Array.unsafe_get code i with
    | Mov (d, s) -> set d (get s)
    | Neg (d, a) -> set d (-.get a)
    | Add (d, a, b) -> set d (get a +. get b)
    | Sub (d, a, b) -> set d (get a -. get b)
    | Mul (d, a, b) -> set d (get a *. get b)
    | Div (d, a, b) -> set d (get a /. get b)
    | App (f, d, a) -> set d (Expr.apply_fun f (get a))
    | Cmp (c, d, a, b) ->
        set d (if Expr.apply_cmp c (get a) (get b) then 1.0 else 0.0)
    | Andb (d, a, b) ->
        set d (if get a <> 0.0 && get b <> 0.0 then 1.0 else 0.0)
    | Orb (d, a, b) ->
        set d (if get a <> 0.0 || get b <> 0.0 then 1.0 else 0.0)
    | Notb (d, a) -> set d (if get a <> 0.0 then 0.0 else 1.0)
    | Sel (d, c, a, b) -> set d (if get c <> 0.0 then get a else get b)
  done

(* ---- generic (abstract) execution ---- *)

type 'a interp = {
  i_neg : 'a -> 'a;
  i_add : 'a -> 'a -> 'a;
  i_sub : 'a -> 'a -> 'a;
  i_mul : 'a -> 'a -> 'a;
  i_div : 'a -> 'a -> 'a;
  i_app : Expr.unary_fun -> 'a -> 'a;
  i_cmp : Expr.cmp -> 'a -> 'a -> 'a;
  i_and : 'a -> 'a -> 'a;
  i_or : 'a -> 'a -> 'a;
  i_not : 'a -> 'a;
  i_sel : 'a -> 'a -> 'a -> 'a;
}

let const_pool t = Array.copy t.consts

let exec_with (ip : 'a interp) t (regs : 'a array) =
  if Array.length regs < t.n_regs then
    invalid_arg
      (Printf.sprintf "Compile.exec_with: register file %d < %d"
         (Array.length regs) t.n_regs);
  let code = t.code in
  for i = 0 to Array.length code - 1 do
    match code.(i) with
    | Mov (d, s) -> regs.(d) <- regs.(s)
    | Neg (d, a) -> regs.(d) <- ip.i_neg regs.(a)
    | Add (d, a, b) -> regs.(d) <- ip.i_add regs.(a) regs.(b)
    | Sub (d, a, b) -> regs.(d) <- ip.i_sub regs.(a) regs.(b)
    | Mul (d, a, b) -> regs.(d) <- ip.i_mul regs.(a) regs.(b)
    | Div (d, a, b) -> regs.(d) <- ip.i_div regs.(a) regs.(b)
    | App (f, d, a) -> regs.(d) <- ip.i_app f regs.(a)
    | Cmp (c, d, a, b) -> regs.(d) <- ip.i_cmp c regs.(a) regs.(b)
    | Andb (d, a, b) -> regs.(d) <- ip.i_and regs.(a) regs.(b)
    | Orb (d, a, b) -> regs.(d) <- ip.i_or regs.(a) regs.(b)
    | Notb (d, a) -> regs.(d) <- ip.i_not regs.(a)
    | Sel (d, c, a, b) -> regs.(d) <- ip.i_sel regs.(c) regs.(a) regs.(b)
  done

(* ---- disassembly ---- *)

let pp ppf t =
  let r i =
    if i < t.n_slots then Printf.sprintf "s%d" i
    else if i < t.n_slots + Array.length t.consts then
      Printf.sprintf "c%d{%g}" (i - t.n_slots) t.consts.(i - t.n_slots)
    else Printf.sprintf "t%d" (i - t.n_slots - Array.length t.consts)
  in
  Format.fprintf ppf "@[<v>bytecode: %d instr, %d regs (%d slots, %d consts)@,"
    (Array.length t.code) t.n_regs t.n_slots (Array.length t.consts);
  Array.iter
    (fun instr ->
      (match instr with
      | Mov (d, s) -> Format.fprintf ppf "  %s := %s" (r d) (r s)
      | Neg (d, a) -> Format.fprintf ppf "  %s := -%s" (r d) (r a)
      | Add (d, a, b) -> Format.fprintf ppf "  %s := %s + %s" (r d) (r a) (r b)
      | Sub (d, a, b) -> Format.fprintf ppf "  %s := %s - %s" (r d) (r a) (r b)
      | Mul (d, a, b) -> Format.fprintf ppf "  %s := %s * %s" (r d) (r a) (r b)
      | Div (d, a, b) -> Format.fprintf ppf "  %s := %s / %s" (r d) (r a) (r b)
      | App (f, d, a) ->
          Format.fprintf ppf "  %s := %s(%s)" (r d) (fun_tag f) (r a)
      | Cmp (c, d, a, b) ->
          Format.fprintf ppf "  %s := %s %s %s" (r d) (r a) (cmp_tag c) (r b)
      | Andb (d, a, b) ->
          Format.fprintf ppf "  %s := %s && %s" (r d) (r a) (r b)
      | Orb (d, a, b) ->
          Format.fprintf ppf "  %s := %s || %s" (r d) (r a) (r b)
      | Notb (d, a) -> Format.fprintf ppf "  %s := !%s" (r d) (r a)
      | Sel (d, c, a, b) ->
          Format.fprintf ppf "  %s := %s ? %s : %s" (r d) (r c) (r a) (r b));
      Format.fprintf ppf "@,")
    t.code;
  Format.fprintf ppf "@]"
