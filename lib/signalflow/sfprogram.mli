(** Signal-flow programs: the output of the abstraction methodology.

    A program is an ordered list of explicit assignments computing the
    outputs of interest from the inputs and from past values of the
    computed quantities (Equation 1 of the paper, in discrete time).
    The same program is executed by the plain tight-loop runner (the
    "C++" rows of Tables I–III), wrapped into discrete-event or TDF
    modules by [amsvp_sysc], and pretty-printed by [amsvp_codegen]. *)

type assignment = { target : Expr.var; expr : Expr.t }
(** [expr] may reference input signals, previously assigned targets of
    the same step, and delayed samples of any target. It must be free
    of [ddt]/[idt] (already discretised) and of unresolved parameters. *)

type t = {
  name : string;
  inputs : string list;  (** external input signal names *)
  outputs : Expr.var list;  (** in declaration order *)
  assignments : assignment list;  (** in execution order *)
  dt : float;  (** the discretisation step baked into coefficients *)
}

val make :
  name:string ->
  inputs:string list ->
  outputs:Expr.var list ->
  assignments:assignment list ->
  dt:float ->
  t
(** Validates the program: every variable read by an assignment must be
    an input, a previously assigned target (current time), or a delayed
    sample of some target; outputs must be assigned.
    @raise Invalid_argument describing the first violation. *)

val max_delay : t -> int
(** Deepest history referenced by any assignment (0 when the program is
    purely combinational). *)

val state_vars : t -> Expr.var list
(** Targets whose past samples are referenced (the discrete state X of
    Equation 1). *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing of the program. *)

(** {1 Compilation}

    Programs execute through one of two engines: the reference
    tree-walking interpreter (one closure per AST node) and the
    register bytecode of {!Compile} (a flat instruction array over an
    unboxed float file — the default, measurably faster per step and
    bit-identical in its results). *)

(** {2 Slot layout}

    The canonical slot layout both engines and the abstract
    interpreter share: a deterministic function of the program
    structure alone (inputs in declaration order, then targets, then
    history levels), so same-shaped programs get identical layouts. *)

type layout

val layout_of : t -> layout

val layout_slot : layout -> Expr.var -> int
(** @raise Invalid_argument on a variable the program never touches. *)

val layout_count : layout -> int
(** Number of slots (the [n_slots] of {!Compile}). *)

val layout_input_slots : layout -> int array
(** Slot of each input, in declaration order. *)

val layout_output_slots : layout -> int array
(** Slot of each output, in declaration order. *)

val layout_rotations : layout -> (int * int) array
(** History rotations [(dst, src)] applied in order after each step
    ([x@-k] receives [x@-(k-1)], deepest level first per quantity). *)

val assignment_slots : layout -> t -> (int * Expr.t) list
(** The (target slot, right-hand side) pairs {!Compile.compile}
    consumes, in execution order. *)

val compile : ?mode:Compile.mode -> ?facts:(int * float) list -> t -> Compile.t
(** Lower the program to bytecode against its canonical slot layout
    (the one {!Runner.create} uses). With [~mode:`Template] the
    artifact can be {!rebind_compiled} onto same-shaped programs.
    [facts] are proven-constant slot invariants forwarded to
    {!Compile.compile}. *)

val rebind_compiled : Compile.t -> t -> Compile.t option
(** Re-target a [`Template] artifact at a program with the same shape
    but different constant values (the sweep engine's plan-replay
    case), skipping lowering, scheduling and register allocation.
    [None] when the shapes differ; fall back to {!compile}. *)

(** {1 Execution} *)

module Runner : sig
  type program = t

  type engine = [ `Tree | `Bytecode ]

  type t
  (** A compiled instance with its own mutable state, all slots
      preallocated; stepping allocates nothing. *)

  val create : ?engine:engine -> ?compiled:Compile.t -> program -> t
  (** [engine] selects the execution engine (default [`Bytecode]; the
      interpreter remains available as [`Tree] for reference and
      differential testing — both produce bit-identical traces).
      [compiled] supplies a ready bytecode artifact (from
      {!Sfprogram.compile} or {!Sfprogram.rebind_compiled}) to skip
      compilation; it is ignored under [`Tree].
      @raise Invalid_argument if [compiled] was built for a different
      slot layout. *)

  val reset : t -> unit
  (** Zero all state (initial condition [X0 = 0]). *)

  val step : t -> inputs:float array -> unit
  (** Advance one step of [dt]; [inputs] are ordered like
      [program.inputs].
      @raise Invalid_argument on an input arity mismatch, naming the
      program and the expected/actual arities. *)

  val output : t -> int -> float
  (** Value of the i-th output after the last [step]. *)

  val read : t -> Expr.var -> float
  (** Read any assigned target (current value). *)

  val run :
    t ->
    stimuli:(float -> float) array ->
    t_stop:float ->
    ?probe:int ->
    ?observe:(float -> (Expr.var -> float) -> unit) ->
    unit ->
    Amsvp_util.Trace.t
  (** Run from time 0 to [t_stop], sampling the stimuli at each step
      and recording output [probe] (default 0). The runner is reset
      first. This tight loop is the "plain C++" execution model.

      [observe] is called once per step (including the initial state at
      t = 0) with the current time and a reader over the runner's
      variables; it is how waveform probes ([Amsvp_probe]) attach
      without touching the hot loop — when absent, the per-step cost is
      one branch. The reader raises [Invalid_argument] on variables the
      program does not compute. *)
end
