(** Bytecode compilation of signal-flow programs.

    The tree-walking interpreter ([Expr.compile]) evaluates one nested
    closure per AST node and boxes every intermediate float at the
    closure boundary; that allocation-per-node cost dominates the hot
    loop of the abstracted models. This module lowers the equation
    trees of a whole program into a flat, register-based bytecode: an
    array of three-address instructions over a single unboxed [float
    array] register file whose low registers alias the runner's
    variable slots. Executing a step is then one tight match loop with
    no allocation and no indirect calls (beyond [sin]/[exp]-style
    primitives).

    Lowering goes through a value-numbering DAG, which gives three
    classic optimisations for free:

    - {e constant folding}: an operation whose operands are all
      constants is evaluated at compile time with exactly the IEEE
      operations the interpreter would use, so results stay
      bit-identical;
    - {e common-subexpression elimination}, across all equations of the
      program: slot reads are keyed by (slot, version), with the
      version bumped at each store, so only genuinely unchanged
      subexpressions unify;
    - {e dead-register elimination}: instructions are emitted
      demand-first from the assignment roots, so unreferenced nodes
      are never scheduled, and temporaries are re-allocated from a
      free list after their last use.

    Conditionals are compiled eagerly ([Sel] evaluates both arms).
    This is value-identical to the interpreter's lazy evaluation
    because float operations cannot raise or trap here (division by
    zero and domain errors produce inf/NaN in both engines), and
    comparisons involving NaN are false in both.

    {2 Templates}

    A [`Template] artifact disables value-dependent folding and keys
    every literal constant by its position, so two programs that differ
    only in constant values (the situation created by the sweep
    engine's rebind-and-re-solve plan replay) share one compilation:
    {!rebind} checks the structural shape and patches the constant
    pool without re-running lowering, scheduling or allocation. *)

type mode =
  [ `Optimize  (** fold constants; artifact is specific to the values *)
  | `Template  (** positional constants; {!rebind} can re-target it *) ]

type t
(** A compiled program: immutable, shareable across runners. Registers
    [0 .. n_slots-1] alias the runner's variable slots; constants and
    temporaries live above. *)

val compile :
  ?mode:mode ->
  ?facts:(int * float) list ->
  slot:(Expr.var -> int) ->
  n_slots:int ->
  (int * Expr.t) list ->
  t
(** [compile ~slot ~n_slots assigns] lowers [assigns] (pairs of target
    slot and right-hand side, in execution order) into bytecode.
    [slot] must map every variable occurring in the right-hand sides to
    a register below [n_slots]. Default mode is [`Optimize].

    [facts] are externally proven invariants (from
    [Amsvp_analysis.Absint]): slot [s] holds exactly the finite
    nonzero constant [c] after every store. The whole right-hand side
    of a fact slot and every read of it fold to the constant,
    strengthening constant propagation and letting demand-driven
    scheduling drop the computation entirely. Facts with a zero or NaN
    value are ignored (signed zeros are indistinguishable to the
    prover), as is the whole list under [`Template] (positional pools
    must keep every literal). An empty [facts] yields an artifact
    bit-identical to compiling without the parameter.
    @raise Invalid_argument on a [ddt]/[idt] node (un-discretised
    program) or a slot index out of range. *)

val rebind : t -> slot:(Expr.var -> int) -> n_slots:int -> (int * Expr.t) list -> t option
(** [rebind t ~slot ~n_slots assigns] re-targets a [`Template] artifact
    at a program with the same shape (same slot layout, same expression
    structure, same variable occurrences) but possibly different
    constant values: the constant pool is replaced, everything else is
    reused. [None] when [t] is not a template or the shape differs. *)

val n_slots : t -> int
(** Number of low registers aliasing runner slots. *)

val n_regs : t -> int
(** Total register file size ([n_slots] + constants + temporaries);
    the runner must allocate its slot array this large. *)

val n_instrs : t -> int
(** Scheduled instruction count (after CSE and dead-code removal). *)

val n_consts : t -> int
(** Constant-pool size. *)

type traffic = {
  t_reads : int;  (** register reads per executed step *)
  t_writes : int;  (** register writes per executed step *)
  t_flops : int;  (** arithmetic/transcendental operations per step *)
  t_opcode_mix : (string * int) list;
      (** instruction count per mnemonic, sorted by mnemonic *)
}

val traffic : t -> traffic
(** Static per-step register/opcode traffic of the artifact. The
    bytecode is straight-line, so these are exact per-[exec] counts,
    computed without running anything — the runner multiplies by its
    tick count for journal reporting. *)

val load_consts : t -> float array -> unit
(** Preload the constant pool into its registers. Must be called once
    after allocating the register file (constants are never written by
    {!exec}, so one load survives any number of steps and resets).
    @raise Invalid_argument if the array is shorter than {!n_regs}. *)

val exec : t -> float array -> unit
(** Execute one step: evaluate every assignment in order, writing each
    target's register. The array must be the one prepared with
    {!load_consts}. *)

(** {2 Generic execution}

    The bytecode is straight-line, so it can be executed over any
    value domain by supplying the operations — this is how the
    abstract interpreter ([Amsvp_analysis.Absint]) runs the very
    artifact the sweep engine executes, template pools included. *)

type 'a interp = {
  i_neg : 'a -> 'a;
  i_add : 'a -> 'a -> 'a;
  i_sub : 'a -> 'a -> 'a;
  i_mul : 'a -> 'a -> 'a;
  i_div : 'a -> 'a -> 'a;
  i_app : Expr.unary_fun -> 'a -> 'a;
  i_cmp : Expr.cmp -> 'a -> 'a -> 'a;
  i_and : 'a -> 'a -> 'a;
  i_or : 'a -> 'a -> 'a;
  i_not : 'a -> 'a;
  i_sel : 'a -> 'a -> 'a -> 'a;  (** condition, then-value, else-value *)
}

val const_pool : t -> float array
(** A copy of the constant pool; [const_pool t].(i) preloads register
    [n_slots t + i] (positional — a [`Template] artifact's pool lines
    up with [rebind]'s collect order). *)

val exec_with : 'a interp -> t -> 'a array -> unit
(** One step over an arbitrary domain: the caller preloads constants
    (mapped from {!const_pool}) at registers [n_slots t ..] and input
    slots, then each instruction applies the supplied operation.
    @raise Invalid_argument if the register file is shorter than
    {!n_regs}. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing, one instruction per line. *)
