(** Symbolic expressions over electrical quantities.

    This is the algebraic substrate of the abstraction methodology: the
    right-hand sides of dipole equations are parsed into abstract syntax
    trees whose leaves are values and variables and whose intermediate
    nodes are operators (paper, §IV-A). The module provides the
    manipulations every later step needs: substitution, linear-form
    extraction, solving for a variable, backward-Euler discretisation of
    [ddt]/[idt], evaluation and code-oriented printing. *)

(** {1 Variables} *)

(** The physical or signal quantity a leaf refers to. *)
type base =
  | Potential of string * string
      (** [Potential (a, b)] is the branch potential [V(a,b)], the
          potential of node [a] with respect to node [b]. *)
  | Flow of string * string
      (** [Flow (a, b)] is the branch flow [I(a,b)], oriented from [a]
          to [b]. *)
  | Signal of string  (** A named signal-flow quantity. *)
  | Param of string  (** A symbolic parameter (e.g. [R], [C]). *)

type var = { base : base; delay : int }
(** A variable is a quantity sampled [delay] steps in the past;
    [delay = 0] is the current time step. Delayed samples appear when
    derivatives are discretised. *)

val v : base -> var
(** [v b] is the current-time variable over [b]. *)

val potential : string -> string -> var
val flow : string -> string -> var
val signal : string -> var
val param : string -> var

val delayed : var -> int -> var
(** [delayed x k] shifts [x] a further [k] steps into the past. *)

val compare_var : var -> var -> int
val equal_var : var -> var -> bool
val var_name : var -> string
(** Verilog-AMS-style rendering, e.g. ["V(out,gnd)"], with ["@-k"]
    appended for delayed samples. *)

val var_c_name : var -> string
(** A C identifier for the variable, e.g. ["V_out_gnd"] or
    ["V_out_gnd_m1"] for one step in the past. *)

module Var_map : Map.S with type key = var
module Var_set : Set.S with type elt = var

(** {1 Expressions} *)

type unary_fun = Sin | Cos | Exp | Ln | Sqrt | Abs | Tanh

type cmp = Lt | Le | Gt | Ge

type t =
  | Const of float
  | Var of var
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Ddt of t  (** time derivative, Verilog-AMS [ddt()] *)
  | Idt of t  (** time integral, Verilog-AMS [idt()] *)
  | App of unary_fun * t
  | Cond of cond * t * t
      (** [Cond (c, a, b)] is [a] when [c] holds, else [b]; models
          if/else contributions and piecewise-linear devices. *)

and cond =
  | Cmp of cmp * t * t
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

val const : float -> t
val var : var -> t
val zero : t
val one : t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val neg : t -> t
val scale : float -> t -> t

(** {1 Structure} *)

val vars : t -> Var_set.t
(** All variables occurring in the expression (including inside
    conditions). *)

val contains_var : var -> t -> bool

val contains_ddt : t -> bool
(** True if a [Ddt] or [Idt] node occurs anywhere — the "derivative
    flag" the paper attaches to tree elements (§IV-A). *)

val subst : (var -> t option) -> t -> t
(** [subst f e] replaces each variable [x] with [f x] when it is
    [Some _]. *)

val delay_expr : int -> t -> t
(** Shift every variable of the expression [k] steps into the past.
    @raise Invalid_argument if the expression still contains
    [Ddt]/[Idt] nodes (discretise first). *)

val size : t -> int
(** Number of AST nodes, used for complexity reporting. *)

(** {1 Evaluation} *)

val apply_fun : unary_fun -> float -> float
(** Pointwise semantics of the unary functions. Every execution engine
    (interpreter, compiled closures, bytecode) must route through this
    single definition so their results stay bit-identical. *)

val apply_cmp : cmp -> float -> float -> bool
(** Pointwise semantics of the comparison operators (IEEE semantics:
    any comparison involving NaN is false). *)

val eval : (var -> float) -> t -> float
(** Evaluate under an environment.
    @raise Failure on [Ddt]/[Idt] nodes — continuous-time operators
    cannot be evaluated pointwise; discretise first. *)

val compile : (var -> int) -> t -> float array -> float
(** [compile slot e] compiles [e] into a closure reading variable
    values from an array at the indices given by [slot]. The closure
    allocates nothing per call; this is the "plain C++" execution path.
    @raise Failure on [Ddt]/[Idt] nodes. *)

(** {1 Algebra} *)

val simplify : t -> t
(** Constant folding and neutral-element elimination. [simplify] never
    changes the value of the expression under any environment. *)

val linear_form : t -> ((var * float) list * float) option
(** [linear_form e] writes [e] as [sum_i c_i * x_i + k] if [e] is an
    affine combination of variables with constant coefficients.
    Returns [None] for nonlinear expressions, conditionals or
    un-discretised [Ddt]/[Idt]. Coefficients are merged per variable
    and zero coefficients dropped. *)

val of_linear_form : (var * float) list * float -> t
(** Rebuild an expression from a linear form (simplified). *)

val discretize : dt:float -> t -> t
(** Backward-Euler discretisation: innermost-first,
    [ddt(e)] becomes [(e - e@-1) / dt]. Nested derivatives yield
    second-order differences. [Idt] nodes must be removed with
    {!extract_idt} beforehand.
    @raise Failure if an [Idt] node remains. *)

val extract_idt : fresh:(unit -> string) -> t -> t * (var * t) list
(** [extract_idt ~fresh e] replaces each [idt(u)] node with a fresh
    signal variable [s] and returns the companion update equations
    [s = s@-1 + dt_param * u] where [dt_param] is the parameter
    ["__dt"]. The returned list is ordered innermost first. *)

val dt_param : var
(** The reserved parameter ["__dt"] denoting the discretisation step. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Verilog-AMS-flavoured rendering, parenthesised by precedence. *)

val to_string : t -> string

val pp_c : name:(var -> string) -> Format.formatter -> t -> unit
(** C/C++ rendering; variables are printed through [name]. *)

val to_c : name:(var -> string) -> t -> string

val pp_tree : Format.formatter -> t -> unit
(** Indented tree dump used to reproduce the paper's Fig. 6/7 views. *)
