(** Modified nodal analysis (MNA) assembly of a circuit.

    Unknown vector layout: node voltages for every non-ground node
    first, then one branch current per device that needs it (voltage
    sources, inductors, controlled voltage sources). Companion models
    use backward Euler with step [h]: a capacitor becomes a conductance
    [C/h] with a history current, an inductor a resistive branch with a
    history voltage. *)

type t

val build : Amsvp_netlist.Circuit.t -> t
(** @raise Invalid_argument if the circuit fails validation. *)

val size : t -> int
(** Dimension of the MNA system. *)

val node_voltage_count : t -> int

val stamp_matrix : ?state:float array -> t -> h:float -> Matrix.t
(** The MNA matrix for timestep [h]; constant for a linear network.
    Piecewise-linear devices stamp the conductance of the region
    selected by [state] (the current solution estimate, defaulting to
    the zero vector) — re-stamping per solver pass is how the
    SPICE-like engine linearises them. *)

val has_pwl : t -> bool

val pwl_count : t -> int
(** Number of piecewise-linear devices in stamp order. *)

val pwl_regions_into : t -> float array -> regions:bool array -> unit
(** Write each piecewise-linear device's region selection under the
    given solution estimate ([true] when on) into [regions], in stamp
    order. The matrix stamp is fully determined by [(h, regions)], which
    is what lets the fast engine reuse an LU across Newton passes. *)

val stamp_triplets :
  ?state:float array -> t -> h:float -> (int * int * float) list
(** The same stamps as {!stamp_matrix}, as sparse triplets for
    {!Sparse.lu_factor}. *)

val stamp_rhs :
  t ->
  h:float ->
  state:float array ->
  input:(string -> float) ->
  rhs:float array ->
  unit
(** Fill [rhs] for one step: [state] is the previous solution vector
    (history terms), [input] maps external signal names to their value
    at the new time point. *)

val output_value : t -> Expr.var -> float array -> float
(** Read an output quantity from a solution vector: a [Potential(a,b)]
    is [e_a - e_b]; a [Flow(dev)] is supported for devices carrying a
    current unknown and for resistors.
    @raise Invalid_argument for unsupported or unknown quantities. *)
