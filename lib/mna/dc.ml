module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component

type solution = { circuit : Circuit.t; sys : System.t; x : float array }

(* The GMIN conductance standing in for an open capacitor, keeping
   otherwise-floating nodes weakly tied. *)
let gmin_resistance = 1e12

let dc_equivalent ?(inputs = []) circuit =
  let dc = Circuit.create ~ground:(Circuit.ground circuit) () in
  List.iter
    (fun (d : Component.t) ->
      let resolve = function
        | Component.Dc v -> Component.Dc v
        | Component.Input u -> (
            match List.assoc_opt u inputs with
            | Some v -> Component.Dc v
            | None -> Component.Dc 0.0)
      in
      let kind =
        match d.kind with
        | Component.Capacitor _ -> Component.Resistor gmin_resistance
        | Component.Inductor _ -> Component.Vsource (Component.Dc 0.0)
        | Component.Vsource s -> Component.Vsource (resolve s)
        | Component.Isource s -> Component.Isource (resolve s)
        | (Component.Resistor _ | Component.Vcvs _ | Component.Vccs _
          | Component.Pwl_conductance _) as k ->
            k
      in
      Circuit.add dc (Component.make ~name:d.name ~pos:d.pos ~neg:d.neg kind))
    (Circuit.devices circuit);
  dc

let operating_point ?(solver = `Dense) ?inputs circuit =
  let dc = dc_equivalent ?inputs circuit in
  let sys = System.build dc in
  let n = System.size sys in
  let rhs = Array.make n 0.0 in
  let input _ = invalid_arg "Dc: unresolved input" in
  System.stamp_rhs sys ~h:1.0 ~state:(Array.make n 0.0) ~input ~rhs;
  let x = ref (Array.make n 0.0) in
  let solve state =
    match solver with
    | `Dense ->
        Matrix.lu_solve (Matrix.lu_factor (System.stamp_matrix ~state sys ~h:1.0)) rhs
    | `Sparse ->
        Sparse.lu_solve
          (Sparse.lu_factor ~n (System.stamp_triplets ~state sys ~h:1.0))
          rhs
  in
  (* Region iteration for piecewise-linear devices (a trivial single
     pass for linear networks). *)
  let rec iterate k =
    if k > 50 then
      failwith "Dc.operating_point: piecewise-linear regions do not settle";
    let x' = solve !x in
    let moved =
      let acc = ref 0.0 in
      Array.iteri (fun i v -> acc := max !acc (abs_float (v -. !x.(i)))) x';
      !acc
    in
    x := x';
    if moved > 1e-9 then iterate (k + 1)
  in
  iterate 1;
  { circuit = dc; sys; x = !x }

let read s v = System.output_value s.sys v s.x

let voltage s node =
  if not (List.mem node (Circuit.nodes s.circuit)) then
    invalid_arg ("Dc.voltage: unknown node " ^ node);
  read s (Expr.potential node (Circuit.ground s.circuit))

let current s name =
  match Circuit.find s.circuit name with
  | None -> invalid_arg ("Dc.current: unknown device " ^ name)
  | Some _ -> read s (Expr.flow name "")

let pp ppf s =
  Format.fprintf ppf "@[<v>operating point:@,";
  List.iter
    (fun n ->
      if n <> Circuit.ground s.circuit then
        Format.fprintf ppf "  V(%s) = %.9g V@," n (voltage s n))
    (Circuit.nodes s.circuit);
  List.iter
    (fun (d : Component.t) ->
      match d.kind with
      | Component.Vsource _ | Component.Vcvs _ ->
          Format.fprintf ppf "  I(%s) = %.9g A@," d.name (current s d.name)
      | Component.Resistor _ | Component.Capacitor _ | Component.Inductor _
      | Component.Isource _ | Component.Vccs _ | Component.Pwl_conductance _
        ->
          ())
    (Circuit.devices s.circuit);
  Format.fprintf ppf "@]"
