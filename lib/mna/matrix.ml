type t = { n : int; a : float array }

let create n =
  if n < 0 then invalid_arg "Matrix.create: negative dimension";
  { n; a = Array.make (n * n) 0.0 }

let dim m = m.n

let check m i j =
  if i < 0 || i >= m.n || j < 0 || j >= m.n then
    invalid_arg "Matrix: index out of bounds"

let get m i j =
  check m i j;
  m.a.((i * m.n) + j)

let set m i j v =
  check m i j;
  m.a.((i * m.n) + j) <- v

let add_to m i j v =
  check m i j;
  m.a.((i * m.n) + j) <- m.a.((i * m.n) + j) +. v

let copy m = { n = m.n; a = Array.copy m.a }
let fill_zero m = Array.fill m.a 0 (Array.length m.a) 0.0

type lu = { ln : int; lu : float array; perm : int array }

exception Singular of int

let lu_factor m =
  let n = m.n in
  let a = Array.copy m.a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* Partial pivoting: pick the largest magnitude in column k. *)
    let pivot_row = ref k in
    let pivot_mag = ref (abs_float a.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let mag = abs_float a.((i * n) + k) in
      if mag > !pivot_mag then begin
        pivot_mag := mag;
        pivot_row := i
      end
    done;
    if !pivot_mag < 1e-300 then raise (Singular k);
    if !pivot_row <> k then begin
      let r = !pivot_row in
      for j = 0 to n - 1 do
        let tmp = a.((k * n) + j) in
        a.((k * n) + j) <- a.((r * n) + j);
        a.((r * n) + j) <- tmp
      done;
      let tp = perm.(k) in
      perm.(k) <- perm.(r);
      perm.(r) <- tp
    end;
    let pivot = a.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let factor = a.((i * n) + k) /. pivot in
      a.((i * n) + k) <- factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          a.((i * n) + j) <- a.((i * n) + j) -. (factor *. a.((k * n) + j))
        done
    done
  done;
  { ln = n; lu = a; perm }

(* Smallest and largest pivot magnitude of a completed factorisation —
   the U diagonal under partial pivoting. Their ratio is the cheap
   conditioning proxy the solver telemetry reports: a ratio near
   1/epsilon means the solve is running out of significant digits. *)
let pivot_range f =
  let n = f.ln in
  let mn = ref infinity and mx = ref 0.0 in
  for i = 0 to n - 1 do
    let p = abs_float f.lu.((i * n) + i) in
    if p < !mn then mn := p;
    if p > !mx then mx := p
  done;
  (!mn, !mx)

let lu_solve_into f ~b ~x =
  let n = f.ln in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Matrix.lu_solve_into: dimension mismatch";
  (* Forward substitution on the permuted RHS. *)
  for i = 0 to n - 1 do
    let s = ref b.(f.perm.(i)) in
    for j = 0 to i - 1 do
      s := !s -. (f.lu.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* Backward substitution. *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (f.lu.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s /. f.lu.((i * n) + i)
  done

let lu_solve f b =
  let x = Array.make f.ln 0.0 in
  lu_solve_into f ~b ~x;
  x

let solve m b = lu_solve (lu_factor m) b

let mat_vec m v =
  if Array.length v <> m.n then invalid_arg "Matrix.mat_vec: dimension mismatch";
  Array.init m.n (fun i ->
      let s = ref 0.0 in
      for j = 0 to m.n - 1 do
        s := !s +. (m.a.((i * m.n) + j) *. v.(j))
      done;
      !s)
