(** Conservative transient simulation back-ends.

    Two engines over the same MNA system, mirroring the cost structure
    of the tools the paper measures:

    - {!spice_like} — the Verilog-AMS/ELDO stand-in and accuracy
      reference. It refines every reporting step into [substeps]
      internal steps and, at each, re-evaluates all devices
      (re-assembly) and re-factors the matrix for each of
      [iterations] solver passes, like a SPICE engine re-linearising
      at every Newton iteration. The sparse solve + device evaluation
      are "the two most serious bottlenecks" (§III-B [5]).
    - {!eln_like} — the SystemC-AMS/ELN stand-in: the network equations
      are set up and factored {e once} (linear network, fixed step);
      each step costs one RHS build plus one triangular solve, plus a
      synchronisation callback so the caller can model the DE-kernel
      boundary. *)

type stats = {
  steps : int;  (** reporting steps taken *)
  device_evals : int;  (** full device-evaluation (assembly) passes *)
  factorizations : int;
  solves : int;
}

type newton = {
  total_iters : int;  (** Newton passes taken (fixed budget) *)
  wasted_iters : int;
      (** passes taken {e after} the update norm already met tolerance
          — the budget an adaptive early-exit scheme would save *)
  max_residual : float;  (** worst final update norm over all substeps *)
  pivot_min : float;  (** smallest LU pivot magnitude seen *)
  pivot_max : float;  (** largest LU pivot magnitude seen *)
  dt_stress : float;
      (** largest relative state change within one substep; values near
          or above 1 mean the internal step is not small against the
          local time constant *)
  stressed_substeps : int;  (** substeps whose relative change > 0.5 *)
}
(** Solver-convergence telemetry for one {!spice_like} run. Only
    computed while the {!Amsvp_obs.Journal} is enabled — the residual
    norms have no other consumer, so with the journal off the inner
    loop is byte-for-byte the pre-telemetry loop. *)

type result = {
  trace : Amsvp_util.Trace.t;
  stats : stats;
  matrix_dim : int;
  newton : newton option;
      (** [Some] iff the journal was enabled during the run (always
          [None] for {!eln_like}, which has no Newton loop). *)
}

val spice_like :
  ?substeps:int ->
  ?iterations:int ->
  ?fidelity:[ `Paper | `Fast ] ->
  ?observe:(float -> (Expr.var -> float) -> unit) ->
  Amsvp_netlist.Circuit.t ->
  inputs:(string * Amsvp_util.Stimulus.t) list ->
  output:Expr.var ->
  dt:float ->
  t_stop:float ->
  result
(** [spice_like ckt ~inputs ~output ~dt ~t_stop] simulates from 0 to
    [t_stop], recording [output] every [dt]. Default [substeps = 8],
    [iterations = 3]. [observe] is called at every reporting instant
    (including t = 0) with a reader over the solved MNA state — the
    waveform-probe attachment point; absent, it costs one branch per
    reporting step.

    [fidelity] selects the cost model (default [`Paper]):
    - [`Paper] reproduces the SPICE cost structure bit-identically to
      previous releases: every Newton pass of every substep re-stamps
      the dense matrix and re-factors it, with a fixed
      [substeps * iterations] budget.
    - [`Fast] keeps the same circuit equations but solves them the way
      a production simulator would: sparse LU with the symbolic
      factorisation reused across steps, numeric factors reused until
      the timestep or a piecewise-linear region changes, Newton
      early-exit on the update norm, one factorisation total for a
      linear network, and adaptive substepping (1..[substeps],
      refined by a local-truncation-error estimate). For reporting
      steps that resolve the circuit's time constants (the bench and
      sweep operating points) traces agree with [`Paper] within the
      health-watchdog NRMSE budget, but they are not bit-identical —
      and at [dt] comparable to the fastest time constant the adaptive
      controller trades accuracy for the remaining speed; [stats]
      counts the work actually done. With
      [`Fast] the [newton] telemetry in the result is always populated
      ([wasted_iters] is 0 by construction).
    @raise Invalid_argument on a missing input signal or bad step. *)

val eln_like :
  ?on_step:(float -> float -> unit) ->
  ?observe:(float -> (Expr.var -> float) -> unit) ->
  Amsvp_netlist.Circuit.t ->
  inputs:(string * Amsvp_util.Stimulus.t) list ->
  output:Expr.var ->
  dt:float ->
  t_stop:float ->
  result
(** Fixed-step linear-network engine; [on_step time value] is invoked
    once per step (the ELN-cluster to DE-kernel synchronisation
    point). [observe] is the probe attachment point, as in
    {!spice_like}. *)

(** Step-wise interface to the ELN engine, for embedding the linear
    network inside a discrete-event kernel (the SystemC-AMS use case):
    the matrix is factored at creation, each [step] performs one RHS
    build and one triangular solve. *)
module Eln_stepper : sig
  type t

  val create :
    ?solver:[ `Dense | `Sparse ] ->
    Amsvp_netlist.Circuit.t ->
    inputs:string list ->
    output:Expr.var ->
    dt:float ->
    t
  (** [inputs] declares the input signal order used by [step]; [solver]
      selects the linear-algebra back-end (default [`Dense]; [`Sparse]
      factors with {!Sparse} — the right choice for large networks, see
      the dense-vs-sparse ablation). *)

  val step : t -> input_values:float array -> float
  (** Advance one timestep with the given input samples (ordered as the
      [inputs] list) and return the output quantity.
      @raise Invalid_argument on an arity mismatch, naming the expected
      and actual input counts. *)

  val output : t -> float
  (** Output value after the last [step] (0 before the first). *)

  val read : t -> Expr.var -> float
  (** Evaluate any circuit quantity (node potential or branch flow)
      from the current state — used by waveform probes. *)

  val reset : t -> unit
end

(** Step-wise interface to the SPICE-like engine, for lock-step
    co-simulation with a digital simulator (the Questa-ADMS use case of
    Table III): every [step] refines the reporting step into internal
    substeps, re-evaluating devices and re-factoring at each solver
    pass. *)
module Spice_stepper : sig
  type t

  val create :
    ?substeps:int ->
    ?iterations:int ->
    ?fidelity:[ `Paper | `Fast ] ->
    Amsvp_netlist.Circuit.t ->
    inputs:string list ->
    output:Expr.var ->
    dt:float ->
    t
  (** [fidelity] as in {!spice_like} (default [`Paper]). With [`Fast]
      the factor cache and the adaptive substep count persist across
      [step] calls — symbolic-factorisation reuse is what makes
      lock-step co-simulation cheap. *)

  val step : t -> input_values:float array -> float
  (** @raise Invalid_argument on an arity mismatch, naming the expected
      and actual input counts. *)

  val output : t -> float

  val read : t -> Expr.var -> float
  (** Evaluate any circuit quantity from the current state. *)

  val reset : t -> unit
end

val run_testcase_spice :
  ?substeps:int ->
  ?iterations:int ->
  ?fidelity:[ `Paper | `Fast ] ->
  Amsvp_netlist.Circuits.testcase ->
  dt:float ->
  t_stop:float ->
  result
(** Convenience wrapper running a paper test case. *)

val run_testcase_eln :
  Amsvp_netlist.Circuits.testcase -> dt:float -> t_stop:float -> result
