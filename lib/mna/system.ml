module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component

type t = {
  circuit : Circuit.t;
  devices : Component.t array;
  node_index : (string, int) Hashtbl.t;  (* non-ground nodes -> 0.. *)
  current_index : (string, int) Hashtbl.t;  (* device name -> unknown *)
  nnodes : int;
  size : int;
}

let needs_current_unknown (d : Component.t) =
  match d.kind with
  | Vsource _ | Inductor _ | Vcvs _ -> true
  | Resistor _ | Capacitor _ | Isource _ | Vccs _ | Pwl_conductance _ -> false

let build circuit =
  (match Circuit.validate circuit with
  | Ok () -> ()
  | Error msg -> invalid_arg ("System.build: " ^ msg));
  let ground = Circuit.ground circuit in
  let node_index = Hashtbl.create 16 in
  List.iteri
    (fun i n -> Hashtbl.add node_index n i)
    (List.filter (fun n -> n <> ground) (Circuit.nodes circuit));
  let nnodes = Hashtbl.length node_index in
  let devices = Array.of_list (Circuit.devices circuit) in
  let current_index = Hashtbl.create 8 in
  let next = ref nnodes in
  Array.iter
    (fun (d : Component.t) ->
      if needs_current_unknown d then begin
        Hashtbl.add current_index d.name !next;
        incr next
      end)
    devices;
  { circuit; devices; node_index; current_index; nnodes; size = !next }

let size s = s.size
let node_voltage_count s = s.nnodes
let has_pwl s = Circuit.has_pwl s.circuit

(* Node index, or -1 for ground. *)
let nid s n = match Hashtbl.find_opt s.node_index n with Some i -> i | None -> -1

let node_value s state n =
  let i = nid s n in
  if i < 0 then 0.0 else state.(i)

(* Stamping through an abstract accumulator so that both the dense and
   the sparse back-ends share the device models. *)
let stamp_into ?state s ~h ~add =
  let state = match state with Some x -> x | None -> Array.make s.size 0.0 in
  let stamp_conductance i j g =
    if i >= 0 then add i i g;
    if j >= 0 then add j j g;
    if i >= 0 && j >= 0 then begin
      add i j (-.g);
      add j i (-.g)
    end
  in
  Array.iter
    (fun (d : Component.t) ->
      let a = nid s d.pos and b = nid s d.neg in
      match d.kind with
      | Resistor r -> stamp_conductance a b (1.0 /. r)
      | Pwl_conductance { g_on; g_off; threshold } ->
          (* Region selected by the current solution estimate: the
             SPICE-like engine re-stamps at every pass, so the region
             follows the Newton iteration. *)
          let v = node_value s state d.pos -. node_value s state d.neg in
          stamp_conductance a b (if v >= threshold then g_on else g_off)
      | Capacitor c -> stamp_conductance a b (c /. h)
      | Isource _ -> ()
      | Vccs { gm; ctrl_pos; ctrl_neg } ->
          let cp = nid s ctrl_pos and cn = nid s ctrl_neg in
          let addc i j v = if i >= 0 && j >= 0 then add i j v in
          addc a cp gm;
          addc a cn (-.gm);
          addc b cp (-.gm);
          addc b cn gm
      | Vsource _ ->
          let k = Hashtbl.find s.current_index d.name in
          if a >= 0 then begin
            add a k 1.0;
            add k a 1.0
          end;
          if b >= 0 then begin
            add b k (-1.0);
            add k b (-1.0)
          end
      | Vcvs { gain; ctrl_pos; ctrl_neg } ->
          let k = Hashtbl.find s.current_index d.name in
          if a >= 0 then begin
            add a k 1.0;
            add k a 1.0
          end;
          if b >= 0 then begin
            add b k (-1.0);
            add k b (-1.0)
          end;
          let cp = nid s ctrl_pos and cn = nid s ctrl_neg in
          if cp >= 0 then add k cp (-.gain);
          if cn >= 0 then add k cn gain
      | Inductor l ->
          let k = Hashtbl.find s.current_index d.name in
          if a >= 0 then begin
            add a k 1.0;
            add k a 1.0
          end;
          if b >= 0 then begin
            add b k (-1.0);
            add k b (-1.0)
          end;
          add k k (-.(l /. h)))
    s.devices

let pwl_count s =
  Array.fold_left
    (fun acc (d : Component.t) ->
      match d.kind with Pwl_conductance _ -> acc + 1 | _ -> acc)
    0 s.devices

let pwl_regions_into s state ~regions =
  let k = ref 0 in
  Array.iter
    (fun (d : Component.t) ->
      match d.kind with
      | Pwl_conductance { threshold; _ } ->
          let v = node_value s state d.pos -. node_value s state d.neg in
          regions.(!k) <- v >= threshold;
          incr k
      | _ -> ())
    s.devices

let stamp_matrix ?state s ~h =
  let m = Matrix.create s.size in
  stamp_into ?state s ~h ~add:(fun i j v -> Matrix.add_to m i j v);
  m

let stamp_triplets ?state s ~h =
  let acc = ref [] in
  stamp_into ?state s ~h ~add:(fun i j v -> acc := (i, j, v) :: !acc);
  !acc

let source_value input = function
  | Component.Dc v -> v
  | Component.Input u -> input u

let stamp_rhs s ~h ~state ~input ~rhs =
  Array.fill rhs 0 (Array.length rhs) 0.0;
  Array.iter
    (fun (d : Component.t) ->
      let a = nid s d.pos and b = nid s d.neg in
      match d.kind with
      | Resistor _ | Vccs _ | Pwl_conductance _ -> ()
      | Capacitor c ->
          (* History current of the backward-Euler companion model. *)
          let v_prev = node_value s state d.pos -. node_value s state d.neg in
          let ieq = c /. h *. v_prev in
          if a >= 0 then rhs.(a) <- rhs.(a) +. ieq;
          if b >= 0 then rhs.(b) <- rhs.(b) -. ieq
      | Isource src ->
          let j = source_value input src in
          if a >= 0 then rhs.(a) <- rhs.(a) -. j;
          if b >= 0 then rhs.(b) <- rhs.(b) +. j
      | Vsource src ->
          let k = Hashtbl.find s.current_index d.name in
          rhs.(k) <- source_value input src
      | Vcvs _ -> ()
      | Inductor l ->
          let k = Hashtbl.find s.current_index d.name in
          rhs.(k) <- -.(l /. h) *. state.(k))
    s.devices;
  ()

let output_value s v state =
  if v.Expr.delay <> 0 then
    invalid_arg "System.output_value: delayed quantity";
  match v.Expr.base with
  | Expr.Potential (a, b) -> node_value s state a -. node_value s state b
  | Expr.Flow (name, "") -> (
      match Hashtbl.find_opt s.current_index name with
      | Some k -> state.(k)
      | None -> (
          match Circuit.find s.circuit name with
          | Some { Component.kind = Component.Resistor r; pos; neg; _ } ->
              (node_value s state pos -. node_value s state neg) /. r
          | Some _ ->
              invalid_arg
                ("System.output_value: no current unknown for device " ^ name)
          | None -> invalid_arg ("System.output_value: unknown device " ^ name)))
  | Expr.Flow _ | Expr.Signal _ | Expr.Param _ ->
      invalid_arg "System.output_value: unsupported quantity"
