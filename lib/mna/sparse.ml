type triplet = int * int * float

type lu = {
  n : int;
  perm : int array;  (* permuted row i came from original row perm.(i) *)
  lrows : (int * float) array array;  (* strictly lower, sorted by column *)
  urows : (int * float) array array;  (* strictly upper, sorted by column *)
  diag : float array;
  nnz : int;
}

exception Singular of int

let pivot_threshold = 1e-3

let lu_factor ~n triplets =
  let rows = Array.init n (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun (i, j, v) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Sparse.lu_factor: index out of range";
      if v <> 0.0 then
        let cur = try Hashtbl.find rows.(i) j with Not_found -> 0.0 in
        Hashtbl.replace rows.(i) j (cur +. v))
    triplets;
  let perm = Array.init n (fun i -> i) in
  let lrows = Array.make n [] in
  for k = 0 to n - 1 do
    (* Candidate pivots: rows k..n-1 with an entry in column k. The
       numerically admissible one with the sparsest row wins
       (Markowitz-style fill control with threshold pivoting). *)
    let colmax = ref 0.0 in
    for i = k to n - 1 do
      match Hashtbl.find_opt rows.(i) k with
      | Some v -> if abs_float v > !colmax then colmax := abs_float v
      | None -> ()
    done;
    if !colmax < 1e-300 then raise (Singular k);
    let best = ref (-1) and best_nnz = ref max_int in
    for i = k to n - 1 do
      match Hashtbl.find_opt rows.(i) k with
      | Some v
        when abs_float v >= pivot_threshold *. !colmax
             && Hashtbl.length rows.(i) < !best_nnz ->
          best := i;
          best_nnz := Hashtbl.length rows.(i)
      | Some _ | None -> ()
    done;
    let r = !best in
    if r <> k then begin
      let t = rows.(k) in
      rows.(k) <- rows.(r);
      rows.(r) <- t;
      let t = perm.(k) in
      perm.(k) <- perm.(r);
      perm.(r) <- t;
      let t = lrows.(k) in
      lrows.(k) <- lrows.(r);
      lrows.(r) <- t
    end;
    let pivot_row = rows.(k) in
    let pivot = Hashtbl.find pivot_row k in
    for i = k + 1 to n - 1 do
      match Hashtbl.find_opt rows.(i) k with
      | None -> ()
      | Some a_ik ->
          let f = a_ik /. pivot in
          Hashtbl.remove rows.(i) k;
          lrows.(i) <- (k, f) :: lrows.(i);
          Hashtbl.iter
            (fun j v ->
              if j > k then begin
                let cur = try Hashtbl.find rows.(i) j with Not_found -> 0.0 in
                let nv = cur -. (f *. v) in
                if nv = 0.0 then Hashtbl.remove rows.(i) j
                else Hashtbl.replace rows.(i) j nv
              end)
            pivot_row
    done
  done;
  let compress_l l =
    let arr = Array.of_list l in
    Array.sort (fun (a, _) (b, _) -> compare a b) arr;
    arr
  in
  let diag = Array.make n 0.0 in
  let urows =
    Array.init n (fun i ->
        let items =
          Hashtbl.fold
            (fun j v acc -> if j > i then (j, v) :: acc else acc)
            rows.(i) []
        in
        diag.(i) <- (try Hashtbl.find rows.(i) i with Not_found -> 0.0);
        if abs_float diag.(i) < 1e-300 then raise (Singular i);
        let arr = Array.of_list items in
        Array.sort (fun (a, _) (b, _) -> compare a b) arr;
        arr)
  in
  let lrows = Array.map compress_l lrows in
  let nnz =
    n
    + Array.fold_left (fun acc r -> acc + Array.length r) 0 lrows
    + Array.fold_left (fun acc r -> acc + Array.length r) 0 urows
  in
  { n; perm; lrows; urows; diag; nnz }

let lu_solve_into f ~b ~x =
  if Array.length b <> f.n || Array.length x <> f.n then
    invalid_arg "Sparse.lu_solve_into: dimension mismatch";
  (* Forward substitution on the permuted RHS (x doubles as y). *)
  for i = 0 to f.n - 1 do
    let s = ref b.(f.perm.(i)) in
    let row = f.lrows.(i) in
    for e = 0 to Array.length row - 1 do
      let j, v = row.(e) in
      s := !s -. (v *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* Backward substitution. *)
  for i = f.n - 1 downto 0 do
    let s = ref x.(i) in
    let row = f.urows.(i) in
    for e = 0 to Array.length row - 1 do
      let j, v = row.(e) in
      s := !s -. (v *. x.(j))
    done;
    x.(i) <- !s /. f.diag.(i)
  done

let lu_solve f b =
  let x = Array.make f.n 0.0 in
  lu_solve_into f ~b ~x;
  x

let nnz f = f.nnz

let pivot_range f =
  let mn = ref infinity and mx = ref 0.0 in
  for i = 0 to f.n - 1 do
    let d = abs_float f.diag.(i) in
    if d < !mn then mn := d;
    if d > !mx then mx := d
  done;
  (!mn, !mx)

(* Symbolic factorisation: the pivot order and the fill pattern of L and
   U depend only on the sparsity structure once the pivot sequence is
   fixed, so both can be computed once per topology and reused by a
   cheap numeric refactor at every subsequent (h, region) change. The
   analysis is the same Markowitz elimination as [lu_factor] except that
   structural zeros are retained: zero-valued inserts stay in the row
   and entries that cancel numerically are kept, making the recorded
   pattern a superset of the fill of any matrix with this structure. *)

type symbolic = {
  sn : int;
  sperm : int array;          (* permuted row i came from original sperm.(i) *)
  spos : int array;           (* inverse of sperm *)
  slpat : int array array;    (* strictly-lower pattern, ascending columns *)
  supat : int array array;    (* strictly-upper pattern, ascending columns *)
}

let analyze ~n triplets =
  let rows = Array.init n (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun (i, j, v) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Sparse.analyze: index out of range";
      let cur = try Hashtbl.find rows.(i) j with Not_found -> 0.0 in
      Hashtbl.replace rows.(i) j (cur +. v))
    triplets;
  let perm = Array.init n (fun i -> i) in
  let lcols = Array.make n [] in
  for k = 0 to n - 1 do
    let colmax = ref 0.0 in
    for i = k to n - 1 do
      match Hashtbl.find_opt rows.(i) k with
      | Some v -> if abs_float v > !colmax then colmax := abs_float v
      | None -> ()
    done;
    if !colmax < 1e-300 then raise (Singular k);
    let best = ref (-1) and best_nnz = ref max_int in
    for i = k to n - 1 do
      match Hashtbl.find_opt rows.(i) k with
      | Some v
        when abs_float v >= pivot_threshold *. !colmax
             && Hashtbl.length rows.(i) < !best_nnz ->
          best := i;
          best_nnz := Hashtbl.length rows.(i)
      | Some _ | None -> ()
    done;
    let r = !best in
    if r <> k then begin
      let t = rows.(k) in
      rows.(k) <- rows.(r);
      rows.(r) <- t;
      let t = perm.(k) in
      perm.(k) <- perm.(r);
      perm.(r) <- t;
      let t = lcols.(k) in
      lcols.(k) <- lcols.(r);
      lcols.(r) <- t
    end;
    let pivot_row = rows.(k) in
    let pivot = Hashtbl.find pivot_row k in
    for i = k + 1 to n - 1 do
      match Hashtbl.find_opt rows.(i) k with
      | None -> ()
      | Some a_ik ->
          let f = a_ik /. pivot in
          Hashtbl.remove rows.(i) k;
          lcols.(i) <- k :: lcols.(i);
          Hashtbl.iter
            (fun j v ->
              if j > k then begin
                let cur = try Hashtbl.find rows.(i) j with Not_found -> 0.0 in
                (* Keep cancelled entries: the pattern must stay valid
                   for other values on the same structure. *)
                Hashtbl.replace rows.(i) j (cur -. (f *. v))
              end)
            pivot_row
    done
  done;
  let sort_cols l =
    let arr = Array.of_list l in
    Array.sort compare arr;
    arr
  in
  let slpat = Array.map sort_cols lcols in
  let supat =
    Array.init n (fun i ->
        let items =
          Hashtbl.fold (fun j _ acc -> if j > i then j :: acc else acc)
            rows.(i) []
        in
        if not (Hashtbl.mem rows.(i) i) then raise (Singular i);
        sort_cols items)
  in
  let spos = Array.make n 0 in
  Array.iteri (fun i p -> spos.(p) <- i) perm;
  { sn = n; sperm = perm; spos; slpat; supat }

let refactor sym triplets =
  let n = sym.sn in
  (* Bucket the entries into permuted rows. *)
  let buckets = Array.make n [] in
  List.iter
    (fun (i, j, v) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Sparse.refactor: index out of range";
      let pi = sym.spos.(i) in
      buckets.(pi) <- (j, v) :: buckets.(pi))
    triplets;
  let diag = Array.make n 0.0 in
  let lrows =
    Array.init n (fun i -> Array.map (fun j -> (j, 0.0)) sym.slpat.(i))
  in
  let urows =
    Array.init n (fun i -> Array.map (fun j -> (j, 0.0)) sym.supat.(i))
  in
  (* Up-looking row elimination over the fixed pattern: scatter the row
     into a dense workspace, eliminate against already-finished U rows
     in ascending pivot order, gather L/U values back out. Every column
     touched lies inside the recorded pattern because the structure is
     unchanged, so clearing the workspace by pattern is exact. *)
  let w = Array.make n 0.0 in
  for i = 0 to n - 1 do
    List.iter (fun (j, v) -> w.(j) <- w.(j) +. v) buckets.(i);
    let lp = sym.slpat.(i) in
    let lrow = lrows.(i) in
    for e = 0 to Array.length lp - 1 do
      let j = lp.(e) in
      let f = w.(j) /. diag.(j) in
      lrow.(e) <- (j, f);
      let urow = urows.(j) in
      for u = 0 to Array.length urow - 1 do
        let k, uv = urow.(u) in
        w.(k) <- w.(k) -. (f *. uv)
      done
    done;
    let d = w.(i) in
    if abs_float d < 1e-300 then raise (Singular i);
    diag.(i) <- d;
    let up = sym.supat.(i) in
    let urow = urows.(i) in
    for e = 0 to Array.length up - 1 do
      let k = up.(e) in
      urow.(e) <- (k, w.(k))
    done;
    (* Clear the workspace along the row pattern. *)
    Array.iter (fun j -> w.(j) <- 0.0) lp;
    w.(i) <- 0.0;
    Array.iter (fun j -> w.(j) <- 0.0) up
  done;
  let nnz =
    n
    + Array.fold_left (fun acc r -> acc + Array.length r) 0 lrows
    + Array.fold_left (fun acc r -> acc + Array.length r) 0 urows
  in
  { n; perm = Array.copy sym.sperm; lrows; urows; diag; nnz }
