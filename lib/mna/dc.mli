(** DC operating-point analysis.

    Solves the network with every capacitor open and every inductor
    shorted (a 0 V branch), with sources at their DC values —
    the classic [.op] analysis, also used as the consistent initial
    condition for transients and as the linearisation point for
    piecewise-linear devices (regions are iterated to a fixed point,
    like a SPICE source-free Newton loop). *)

type solution

val operating_point :
  ?solver:[ `Dense | `Sparse ] ->
  ?inputs:(string * float) list ->
  Amsvp_netlist.Circuit.t ->
  solution
(** [inputs] gives the DC level of each external input signal
    (default 0). [solver] selects the linear-algebra back-end
    (default [`Dense]; [`Sparse] factors with {!Sparse} and must
    agree with the dense path to rounding).
    @raise Invalid_argument on invalid circuits or missing inputs
    @raise Matrix.Singular on ill-posed networks
    @raise Failure if the piecewise-linear region iteration does not
    settle (no DC fixed point). *)

val voltage : solution -> string -> float
(** Node voltage (0 for the ground node).
    @raise Invalid_argument for unknown nodes. *)

val current : solution -> string -> float
(** Branch current of a device carrying a current unknown (sources,
    inductors, controlled voltage sources) or of a resistor.
    @raise Invalid_argument otherwise. *)

val read : solution -> Expr.var -> float
(** Potentials and flows through the {!System.output_value}
    conventions. *)

val pp : Format.formatter -> solution -> unit
(** Table of node voltages and source/inductor currents. *)
