(** Dense matrices and LU decomposition.

    The conservative back-ends need exactly one linear-algebra
    primitive: solving [A x = b] for the modest matrix sizes of
    electrical linear networks. Partial pivoting keeps the
    high-gain op-amp stamps well conditioned. *)

type t
(** A dense square matrix. *)

val create : int -> t
(** [create n] is the [n x n] zero matrix. [n >= 0]. *)

val dim : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] accumulates [v] into [m.(i).(j)] — the stamping
    primitive. *)

val copy : t -> t
val fill_zero : t -> unit

type lu
(** An LU factorisation with partial pivoting. *)

exception Singular of int
(** Raised (with the offending pivot column) when the matrix is
    numerically singular — e.g. a floating subcircuit or a loop of
    ideal voltage sources. *)

val lu_factor : t -> lu
(** Factor a copy of the matrix; the argument is not modified. *)

val pivot_range : lu -> float * float
(** [(min, max)] pivot magnitudes (the U diagonal) of a factorisation.
    Their ratio is a cheap conditioning proxy used by the solver
    telemetry: a ratio approaching [1/epsilon] means the solve has
    little precision left. *)

val lu_solve : lu -> float array -> float array
(** [lu_solve lu b] solves [A x = b]; [b] is not modified. *)

val lu_solve_into : lu -> b:float array -> x:float array -> unit
(** Allocation-free variant used in simulation inner loops; [b] and [x]
    may not alias. *)

val solve : t -> float array -> float array
(** One-shot [factor + solve]. *)

val mat_vec : t -> float array -> float array
(** Matrix-vector product, for tests. *)
