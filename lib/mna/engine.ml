module Trace = Amsvp_util.Trace
module Circuits = Amsvp_netlist.Circuits
module Obs = Amsvp_obs.Obs
module Journal = Amsvp_obs.Journal

(* Registry-backed solver counters: the per-run [stats] record is still
   returned (tests and callers depend on the per-run values); the global
   counters accumulate across runs and feed the metrics sinks. *)
let c_steps = Obs.Counter.make ~help:"MNA reporting steps" "amsvp_mna_steps_total"

let c_device_evals =
  Obs.Counter.make ~help:"full device-evaluation (re-stamp) passes"
    "amsvp_mna_device_evals_total"

let c_factorizations =
  Obs.Counter.make ~help:"LU factorisations" "amsvp_mna_factorizations_total"

let c_solves =
  Obs.Counter.make ~help:"triangular solves" "amsvp_mna_solves_total"

let c_rhs_builds =
  Obs.Counter.make ~help:"RHS vector builds" "amsvp_mna_rhs_builds_total"

let h_solver_passes =
  Obs.Histogram.make
    ~help:"solver passes (substeps x Newton iterations) per reporting step"
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 24.; 32.; 48.; 64.; 128. |]
    "amsvp_mna_solver_passes_per_step"

let g_matrix_dim =
  Obs.Gauge.make ~help:"dimension of the last MNA system built"
    "amsvp_mna_matrix_dim"

(* Convergence telemetry — only advanced while the journal is enabled,
   because the residual norms that feed them are not computed
   otherwise (the fixed-budget inner loop has no other use for them). *)
let c_newton_wasted =
  Obs.Counter.make
    ~help:"Newton passes taken after the update norm already met tolerance"
    "amsvp_mna_wasted_newton_iters_total"

let h_newton_residual =
  Obs.Histogram.make
    ~help:"final Newton update norm (inf-norm) per solver substep"
    ~buckets:[| 1e-15; 1e-12; 1e-9; 1e-6; 1e-3; 1.0; 1e3 |]
    "amsvp_mna_newton_residual"

type stats = {
  steps : int;
  device_evals : int;
  factorizations : int;
  solves : int;
}

type newton = {
  total_iters : int;
  wasted_iters : int;
  max_residual : float;
  pivot_min : float;
  pivot_max : float;
  dt_stress : float;
  stressed_substeps : int;
}

type result = {
  trace : Trace.t;
  stats : stats;
  matrix_dim : int;
  newton : newton option;
}

(* Newton convergence test on the update norm: converged once
   ||x_k - x_{k-1}||_inf <= rtol * ||x_k||_inf + atol. *)
let newton_rtol = 1e-6
let newton_atol = 1e-12

(* A substep is dt-stressed when the state moves by more than half its
   own magnitude within that single substep — for first-order dynamics
   that means the internal step h is no longer small against the local
   time constant. *)
let stress_threshold = 0.5

let check_args ~dt ~t_stop =
  if dt <= 0.0 then invalid_arg "Engine: dt must be positive";
  if t_stop < dt then invalid_arg "Engine: t_stop shorter than one step"

let input_fun inputs =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (name, f) -> Hashtbl.replace tbl name f) inputs;
  fun t name ->
    match Hashtbl.find_opt tbl name with
    | Some f -> f t
    | None -> invalid_arg ("Engine: no stimulus bound to input " ^ name)

let spice_like ?(substeps = 8) ?(iterations = 3) ?observe circuit ~inputs
    ~output ~dt ~t_stop =
  check_args ~dt ~t_stop;
  if substeps < 1 || iterations < 1 then
    invalid_arg "Engine.spice_like: substeps and iterations must be >= 1";
  Obs.with_span ~cat:"mna" "mna.spice_like" @@ fun () ->
  let sys = System.build circuit in
  let n = System.size sys in
  let input_at = input_fun inputs in
  let h = dt /. float_of_int substeps in
  let nsteps = int_of_float (Float.round (t_stop /. dt)) in
  let x = ref (Array.make n 0.0) in
  let rhs = Array.make n 0.0 in
  let trace = Trace.create ~capacity:(nsteps + 1) () in
  let device_evals = ref 0 and factorizations = ref 0 and solves = ref 0 in
  (* Convergence telemetry, computed only while the journal records
     events: the fixed Newton budget never reads the residual, so with
     the journal off the inner loop runs exactly as before. *)
  let jn = Journal.enabled () in
  let total_iters = ref 0 and wasted_iters = ref 0 in
  let max_residual = ref 0.0 in
  let pivot_min = ref infinity and pivot_max = ref 0.0 in
  let dt_stress = ref 0.0 and stressed_substeps = ref 0 in
  let reader v = System.output_value sys v !x in
  Trace.add trace ~time:0.0 ~value:(System.output_value sys output !x);
  (match observe with None -> () | Some f -> f 0.0 reader);
  for step = 1 to nsteps do
    let t_base = float_of_int (step - 1) *. dt in
    (* Per-reporting-step journal aggregates. *)
    let step_residual = ref 0.0 in
    let step_converged_at = ref 0 in
    let step_wasted = ref 0 in
    let step_stress = ref 0.0 in
    for sub = 1 to substeps do
      (* The last substep lands exactly on the reporting instant so that
         stimulus edges are sampled at the same points as the
         fixed-step engines (no knife-edge drift on square waves). *)
      let t =
        if sub = substeps then float_of_int step *. dt
        else t_base +. (float_of_int sub *. h)
      in
      let input = input_at t in
      let x_next = ref !x in
      let converged_at = ref 0 in
      let last_delta = ref infinity in
      for iter = 1 to iterations do
        (* Device evaluation: the full system is re-stamped (with
           piecewise-linear regions selected by the latest estimate),
           then re-factored, at every solver pass — the SPICE cost
           model. *)
        let m = System.stamp_matrix ~state:!x_next sys ~h in
        incr device_evals;
        System.stamp_rhs sys ~h ~state:!x ~input ~rhs;
        let lu =
          try Matrix.lu_factor m
          with Matrix.Singular k ->
            if jn then
              Journal.emit ~severity:Journal.Error ~step ~time:t ~cat:"mna"
                "singular_pivot"
                [ ("column", Journal.I k); ("dim", Journal.I n) ];
            raise (Matrix.Singular k)
        in
        incr factorizations;
        let prev = !x_next in
        x_next := Matrix.lu_solve lu rhs;
        incr solves;
        if jn then begin
          incr total_iters;
          (* Conditioning proxy sampled on the final pass only: the
             re-stamped matrix drifts little between passes, and the
             diagonal scan is a third of the telemetry's cost. *)
          if iter = iterations then begin
            let mn, mx = Matrix.pivot_range lu in
            if mn < !pivot_min then pivot_min := mn;
            if mx > !pivot_max then pivot_max := mx
          end;
          (* Update norm ||x_k - x_{k-1}||_inf against the iterate
             scale; [prev] is the previous Newton iterate (the substep
             start state on the first pass). *)
          let delta = ref 0.0 and scale = ref 0.0 in
          let xn = !x_next in
          for i = 0 to n - 1 do
            let d = abs_float (xn.(i) -. prev.(i)) in
            if d > !delta then delta := d;
            let m = abs_float xn.(i) in
            if m > !scale then scale := m
          done;
          last_delta := !delta;
          if !converged_at > 0 then begin
            incr wasted_iters;
            incr step_wasted
          end
          else if !delta <= (newton_rtol *. !scale) +. newton_atol then
            converged_at := iter
        end
      done;
      if jn then begin
        Obs.Histogram.observe h_newton_residual !last_delta;
        if !last_delta > !max_residual then max_residual := !last_delta;
        step_residual := !last_delta;
        step_converged_at := !converged_at;
        (* Relative state motion across this one substep. *)
        let stress = ref 0.0 in
        let x0 = !x and x1 = !x_next in
        for i = 0 to n - 1 do
          let m = Float.max (abs_float x0.(i)) (abs_float x1.(i)) in
          if m > newton_atol then begin
            let r = abs_float (x1.(i) -. x0.(i)) /. m in
            if r > !stress then stress := r
          end
        done;
        if !stress > !step_stress then step_stress := !stress;
        if !stress > !dt_stress then dt_stress := !stress;
        if !stress > stress_threshold then incr stressed_substeps
      end;
      x := !x_next
    done;
    Obs.Histogram.observe h_solver_passes
      (float_of_int (substeps * iterations));
    let t_report = float_of_int step *. dt in
    if jn then
      Journal.emit ~step ~time:t_report ~cat:"mna" "newton.step"
        [
          ("residual", Journal.F !step_residual);
          ("converged_at", Journal.I !step_converged_at);
          ("wasted", Journal.I !step_wasted);
          ("stress", Journal.F !step_stress);
        ];
    Trace.add trace ~time:t_report
      ~value:(System.output_value sys output !x);
    match observe with None -> () | Some f -> f t_report reader
  done;
  Obs.Counter.add c_steps nsteps;
  Obs.Counter.add c_device_evals !device_evals;
  Obs.Counter.add c_factorizations !factorizations;
  Obs.Counter.add c_solves !solves;
  Obs.Counter.add c_rhs_builds !solves;
  Obs.Gauge.set g_matrix_dim (float_of_int n);
  let newton =
    if not jn then None
    else begin
      Obs.Counter.add c_newton_wasted !wasted_iters;
      let pivot_ratio =
        if !pivot_min > 0.0 && !pivot_min < infinity then
          !pivot_max /. !pivot_min
        else infinity
      in
      if pivot_ratio > 1e12 then
        Journal.emit ~severity:Journal.Warn ~cat:"mna" "conditioning"
          [
            ("pivot_min", Journal.F !pivot_min);
            ("pivot_max", Journal.F !pivot_max);
            ("pivot_ratio", Journal.F pivot_ratio);
          ];
      if !stressed_substeps > 0 then
        Journal.emit ~severity:Journal.Warn ~cat:"mna" "dt_stress"
          [
            ("max_rel_change", Journal.F !dt_stress);
            ("stressed_substeps", Journal.I !stressed_substeps);
            ("dt", Journal.F dt);
            ("substeps", Journal.I substeps);
          ];
      Journal.emit ~cat:"mna" "newton.run"
        [
          ("steps", Journal.I nsteps);
          ("total_iters", Journal.I !total_iters);
          ("wasted_iters", Journal.I !wasted_iters);
          ("max_residual", Journal.F !max_residual);
          ("pivot_min", Journal.F !pivot_min);
          ("pivot_max", Journal.F !pivot_max);
          ("dt_stress", Journal.F !dt_stress);
          ("dim", Journal.I n);
        ];
      Some
        {
          total_iters = !total_iters;
          wasted_iters = !wasted_iters;
          max_residual = !max_residual;
          pivot_min = !pivot_min;
          pivot_max = !pivot_max;
          dt_stress = !dt_stress;
          stressed_substeps = !stressed_substeps;
        }
    end
  in
  {
    trace;
    stats =
      {
        steps = nsteps;
        device_evals = !device_evals;
        factorizations = !factorizations;
        solves = !solves;
      };
    matrix_dim = n;
    newton;
  }

let eln_like ?(on_step = fun _ _ -> ()) ?observe circuit ~inputs ~output ~dt
    ~t_stop =
  check_args ~dt ~t_stop;
  if Amsvp_netlist.Circuit.has_pwl circuit then
    invalid_arg "Engine.eln_like: the linear-network engine cannot simulate \
                 piecewise-linear devices";
  Obs.with_span ~cat:"mna" "mna.eln_like" @@ fun () ->
  let sys = System.build circuit in
  let n = System.size sys in
  let input_at = input_fun inputs in
  let nsteps = int_of_float (Float.round (t_stop /. dt)) in
  (* Linear fixed-step network: assemble and factor exactly once. *)
  let m = System.stamp_matrix sys ~h:dt in
  let lu = Matrix.lu_factor m in
  let x = Array.make n 0.0 in
  let x_next = Array.make n 0.0 in
  let rhs = Array.make n 0.0 in
  let trace = Trace.create ~capacity:(nsteps + 1) () in
  let solves = ref 0 in
  let reader v = System.output_value sys v x in
  Trace.add trace ~time:0.0 ~value:(System.output_value sys output x);
  (match observe with None -> () | Some f -> f 0.0 reader);
  for step = 1 to nsteps do
    let t = float_of_int step *. dt in
    System.stamp_rhs sys ~h:dt ~state:x ~input:(input_at t) ~rhs;
    Matrix.lu_solve_into lu ~b:rhs ~x:x_next;
    incr solves;
    Array.blit x_next 0 x 0 n;
    let out = System.output_value sys output x in
    Trace.add trace ~time:t ~value:out;
    on_step t out;
    match observe with None -> () | Some f -> f t reader
  done;
  Obs.Counter.add c_steps nsteps;
  Obs.Counter.add c_device_evals 1;
  Obs.Counter.add c_factorizations 1;
  Obs.Counter.add c_solves !solves;
  Obs.Counter.add c_rhs_builds !solves;
  Obs.Gauge.set g_matrix_dim (float_of_int n);
  if Journal.enabled () then begin
    let mn, mx = Matrix.pivot_range lu in
    Journal.emit ~cat:"mna" "eln.run"
      [
        ("steps", Journal.I nsteps);
        ("solves", Journal.I !solves);
        ("pivot_min", Journal.F mn);
        ("pivot_max", Journal.F mx);
        ("dim", Journal.I n);
      ]
  end;
  {
    trace;
    stats =
      { steps = nsteps; device_evals = 1; factorizations = 1; solves = !solves };
    matrix_dim = n;
    newton = None;
  }

module Eln_stepper = struct
  type factors = Dense of Matrix.lu | Sparse_lu of Sparse.lu

  type t = {
    sys : System.t;
    lu : factors;
    dt : float;
    inputs : string array;
    output_var : Expr.var;
    x : float array;
    x_next : float array;
    rhs : float array;
    mutable out : float;
  }

  let create ?(solver = `Dense) circuit ~inputs ~output ~dt =
    if dt <= 0.0 then invalid_arg "Eln_stepper: dt must be positive";
    if Amsvp_netlist.Circuit.has_pwl circuit then
      invalid_arg "Eln_stepper: the linear-network engine cannot simulate \
                   piecewise-linear devices";
    let sys = System.build circuit in
    let n = System.size sys in
    let lu =
      match solver with
      | `Dense -> Dense (Matrix.lu_factor (System.stamp_matrix sys ~h:dt))
      | `Sparse -> Sparse_lu (Sparse.lu_factor ~n (System.stamp_triplets sys ~h:dt))
    in
    {
      sys;
      lu;
      dt;
      inputs = Array.of_list inputs;
      output_var = output;
      x = Array.make n 0.0;
      x_next = Array.make n 0.0;
      rhs = Array.make n 0.0;
      out = 0.0;
    }

  let step st ~input_values =
    if Array.length input_values <> Array.length st.inputs then
      invalid_arg
        (Printf.sprintf "Eln_stepper.step: expected %d input(s), got %d"
           (Array.length st.inputs)
           (Array.length input_values));
    let input name =
      let rec find i =
        if i >= Array.length st.inputs then
          invalid_arg ("Eln_stepper: unknown input " ^ name)
        else if st.inputs.(i) = name then input_values.(i)
        else find (i + 1)
      in
      find 0
    in
    System.stamp_rhs st.sys ~h:st.dt ~state:st.x ~input ~rhs:st.rhs;
    (match st.lu with
    | Dense lu -> Matrix.lu_solve_into lu ~b:st.rhs ~x:st.x_next
    | Sparse_lu lu -> Sparse.lu_solve_into lu ~b:st.rhs ~x:st.x_next);
    Obs.Counter.incr c_steps;
    Obs.Counter.incr c_solves;
    Obs.Counter.incr c_rhs_builds;
    Array.blit st.x_next 0 st.x 0 (Array.length st.x);
    st.out <- System.output_value st.sys st.output_var st.x;
    st.out

  let output st = st.out
  let read st v = System.output_value st.sys v st.x

  let reset st =
    Array.fill st.x 0 (Array.length st.x) 0.0;
    st.out <- 0.0
end

module Spice_stepper = struct
  type t = {
    sys : System.t;
    dt : float;
    h : float;
    substeps : int;
    iterations : int;
    inputs : string array;
    output_var : Expr.var;
    mutable x : float array;
    rhs : float array;
    mutable out : float;
  }

  let create ?(substeps = 8) ?(iterations = 3) circuit ~inputs ~output ~dt =
    if dt <= 0.0 then invalid_arg "Spice_stepper: dt must be positive";
    if substeps < 1 || iterations < 1 then
      invalid_arg "Spice_stepper: substeps and iterations must be >= 1";
    let sys = System.build circuit in
    let n = System.size sys in
    {
      sys;
      dt;
      h = dt /. float_of_int substeps;
      substeps;
      iterations;
      inputs = Array.of_list inputs;
      output_var = output;
      x = Array.make n 0.0;
      rhs = Array.make n 0.0;
      out = 0.0;
    }

  let step st ~input_values =
    if Array.length input_values <> Array.length st.inputs then
      invalid_arg
        (Printf.sprintf "Spice_stepper.step: expected %d input(s), got %d"
           (Array.length st.inputs)
           (Array.length input_values));
    let input name =
      let rec find i =
        if i >= Array.length st.inputs then
          invalid_arg ("Spice_stepper: unknown input " ^ name)
        else if st.inputs.(i) = name then input_values.(i)
        else find (i + 1)
      in
      find 0
    in
    for _sub = 1 to st.substeps do
      let x_next = ref st.x in
      for _iter = 1 to st.iterations do
        let m = System.stamp_matrix ~state:!x_next st.sys ~h:st.h in
        System.stamp_rhs st.sys ~h:st.h ~state:st.x ~input ~rhs:st.rhs;
        let lu = Matrix.lu_factor m in
        x_next := Matrix.lu_solve lu st.rhs
      done;
      st.x <- !x_next
    done;
    let passes = st.substeps * st.iterations in
    Obs.Counter.incr c_steps;
    Obs.Counter.add c_device_evals passes;
    Obs.Counter.add c_factorizations passes;
    Obs.Counter.add c_solves passes;
    Obs.Counter.add c_rhs_builds passes;
    Obs.Histogram.observe h_solver_passes (float_of_int passes);
    st.out <- System.output_value st.sys st.output_var st.x;
    st.out

  let output st = st.out
  let read st v = System.output_value st.sys v st.x

  let reset st =
    Array.fill st.x 0 (Array.length st.x) 0.0;
    st.out <- 0.0
end

let run_testcase_spice ?substeps ?iterations (tc : Circuits.testcase) ~dt
    ~t_stop =
  spice_like ?substeps ?iterations tc.circuit ~inputs:tc.stimuli
    ~output:tc.output ~dt ~t_stop

let run_testcase_eln (tc : Circuits.testcase) ~dt ~t_stop =
  eln_like tc.circuit ~inputs:tc.stimuli ~output:tc.output ~dt ~t_stop
