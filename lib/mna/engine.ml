module Trace = Amsvp_util.Trace
module Circuits = Amsvp_netlist.Circuits
module Obs = Amsvp_obs.Obs
module Journal = Amsvp_obs.Journal

(* Registry-backed solver counters: the per-run [stats] record is still
   returned (tests and callers depend on the per-run values); the global
   counters accumulate across runs and feed the metrics sinks. *)
let c_steps = Obs.Counter.make ~help:"MNA reporting steps" "amsvp_mna_steps_total"

let c_device_evals =
  Obs.Counter.make ~help:"full device-evaluation (re-stamp) passes"
    "amsvp_mna_device_evals_total"

let c_factorizations =
  Obs.Counter.make ~help:"LU factorisations" "amsvp_mna_factorizations_total"

let c_solves =
  Obs.Counter.make ~help:"triangular solves" "amsvp_mna_solves_total"

let c_rhs_builds =
  Obs.Counter.make ~help:"RHS vector builds" "amsvp_mna_rhs_builds_total"

let h_solver_passes =
  Obs.Histogram.make
    ~help:"solver passes (substeps x Newton iterations) per reporting step"
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 24.; 32.; 48.; 64.; 128. |]
    "amsvp_mna_solver_passes_per_step"

let g_matrix_dim =
  Obs.Gauge.make ~help:"dimension of the last MNA system built"
    "amsvp_mna_matrix_dim"

(* Convergence telemetry — only advanced while the journal is enabled,
   because the residual norms that feed them are not computed
   otherwise (the fixed-budget inner loop has no other use for them). *)
let c_newton_wasted =
  Obs.Counter.make
    ~help:"Newton passes taken after the update norm already met tolerance"
    "amsvp_mna_wasted_newton_iters_total"

let h_newton_residual =
  Obs.Histogram.make
    ~help:"final Newton update norm (inf-norm) per solver substep"
    ~buckets:[| 1e-15; 1e-12; 1e-9; 1e-6; 1e-3; 1.0; 1e3 |]
    "amsvp_mna_newton_residual"

type stats = {
  steps : int;
  device_evals : int;
  factorizations : int;
  solves : int;
}

type newton = {
  total_iters : int;
  wasted_iters : int;
  max_residual : float;
  pivot_min : float;
  pivot_max : float;
  dt_stress : float;
  stressed_substeps : int;
}

type result = {
  trace : Trace.t;
  stats : stats;
  matrix_dim : int;
  newton : newton option;
}

(* Newton convergence test on the update norm: converged once
   ||x_k - x_{k-1}||_inf <= rtol * ||x_k||_inf + atol. *)
let newton_rtol = 1e-6
let newton_atol = 1e-12

(* A substep is dt-stressed when the state moves by more than half its
   own magnitude within that single substep — for first-order dynamics
   that means the internal step h is no longer small against the local
   time constant. *)
let stress_threshold = 0.5

let check_args ~dt ~t_stop =
  if dt <= 0.0 then invalid_arg "Engine: dt must be positive";
  if t_stop < dt then invalid_arg "Engine: t_stop shorter than one step"

let input_fun inputs =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (name, f) -> Hashtbl.replace tbl name f) inputs;
  fun t name ->
    match Hashtbl.find_opt tbl name with
    | Some f -> f t
    | None -> invalid_arg ("Engine: no stimulus bound to input " ^ name)

(* The faithful paper-cost-model path. This body is kept byte-for-byte
   the pre-fidelity [spice_like]: `Paper must stay bit-identical. *)
let spice_like_paper ?(substeps = 8) ?(iterations = 3) ?observe circuit ~inputs
    ~output ~dt ~t_stop =
  check_args ~dt ~t_stop;
  if substeps < 1 || iterations < 1 then
    invalid_arg "Engine.spice_like: substeps and iterations must be >= 1";
  Obs.with_span ~cat:"mna" "mna.spice_like" @@ fun () ->
  let sys = System.build circuit in
  let n = System.size sys in
  let input_at = input_fun inputs in
  let h = dt /. float_of_int substeps in
  let nsteps = int_of_float (Float.round (t_stop /. dt)) in
  let x = ref (Array.make n 0.0) in
  let rhs = Array.make n 0.0 in
  let trace = Trace.create ~capacity:(nsteps + 1) () in
  let device_evals = ref 0 and factorizations = ref 0 and solves = ref 0 in
  (* Convergence telemetry, computed only while the journal records
     events: the fixed Newton budget never reads the residual, so with
     the journal off the inner loop runs exactly as before. *)
  let jn = Journal.enabled () in
  let total_iters = ref 0 and wasted_iters = ref 0 in
  let max_residual = ref 0.0 in
  let pivot_min = ref infinity and pivot_max = ref 0.0 in
  let dt_stress = ref 0.0 and stressed_substeps = ref 0 in
  let reader v = System.output_value sys v !x in
  Trace.add trace ~time:0.0 ~value:(System.output_value sys output !x);
  (match observe with None -> () | Some f -> f 0.0 reader);
  for step = 1 to nsteps do
    let t_base = float_of_int (step - 1) *. dt in
    (* Per-reporting-step journal aggregates. *)
    let step_residual = ref 0.0 in
    let step_converged_at = ref 0 in
    let step_wasted = ref 0 in
    let step_stress = ref 0.0 in
    for sub = 1 to substeps do
      (* The last substep lands exactly on the reporting instant so that
         stimulus edges are sampled at the same points as the
         fixed-step engines (no knife-edge drift on square waves). *)
      let t =
        if sub = substeps then float_of_int step *. dt
        else t_base +. (float_of_int sub *. h)
      in
      let input = input_at t in
      let x_next = ref !x in
      let converged_at = ref 0 in
      let last_delta = ref infinity in
      for iter = 1 to iterations do
        (* Device evaluation: the full system is re-stamped (with
           piecewise-linear regions selected by the latest estimate),
           then re-factored, at every solver pass — the SPICE cost
           model. *)
        let m = System.stamp_matrix ~state:!x_next sys ~h in
        incr device_evals;
        System.stamp_rhs sys ~h ~state:!x ~input ~rhs;
        let lu =
          try Matrix.lu_factor m
          with Matrix.Singular k ->
            if jn then
              Journal.emit ~severity:Journal.Error ~step ~time:t ~cat:"mna"
                "singular_pivot"
                [ ("column", Journal.I k); ("dim", Journal.I n) ];
            raise (Matrix.Singular k)
        in
        incr factorizations;
        let prev = !x_next in
        x_next := Matrix.lu_solve lu rhs;
        incr solves;
        if jn then begin
          incr total_iters;
          (* Conditioning proxy sampled on the final pass only: the
             re-stamped matrix drifts little between passes, and the
             diagonal scan is a third of the telemetry's cost. *)
          if iter = iterations then begin
            let mn, mx = Matrix.pivot_range lu in
            if mn < !pivot_min then pivot_min := mn;
            if mx > !pivot_max then pivot_max := mx
          end;
          (* Update norm ||x_k - x_{k-1}||_inf against the iterate
             scale; [prev] is the previous Newton iterate (the substep
             start state on the first pass). *)
          let delta = ref 0.0 and scale = ref 0.0 in
          let xn = !x_next in
          for i = 0 to n - 1 do
            let d = abs_float (xn.(i) -. prev.(i)) in
            if d > !delta then delta := d;
            let m = abs_float xn.(i) in
            if m > !scale then scale := m
          done;
          last_delta := !delta;
          if !converged_at > 0 then begin
            incr wasted_iters;
            incr step_wasted
          end
          else if !delta <= (newton_rtol *. !scale) +. newton_atol then
            converged_at := iter
        end
      done;
      if jn then begin
        Obs.Histogram.observe h_newton_residual !last_delta;
        if !last_delta > !max_residual then max_residual := !last_delta;
        step_residual := !last_delta;
        step_converged_at := !converged_at;
        (* Relative state motion across this one substep. *)
        let stress = ref 0.0 in
        let x0 = !x and x1 = !x_next in
        for i = 0 to n - 1 do
          let m = Float.max (abs_float x0.(i)) (abs_float x1.(i)) in
          if m > newton_atol then begin
            let r = abs_float (x1.(i) -. x0.(i)) /. m in
            if r > !stress then stress := r
          end
        done;
        if !stress > !step_stress then step_stress := !stress;
        if !stress > !dt_stress then dt_stress := !stress;
        if !stress > stress_threshold then incr stressed_substeps
      end;
      x := !x_next
    done;
    Obs.Histogram.observe h_solver_passes
      (float_of_int (substeps * iterations));
    let t_report = float_of_int step *. dt in
    if jn then
      Journal.emit ~step ~time:t_report ~cat:"mna" "newton.step"
        [
          ("residual", Journal.F !step_residual);
          ("converged_at", Journal.I !step_converged_at);
          ("wasted", Journal.I !step_wasted);
          ("stress", Journal.F !step_stress);
        ];
    Trace.add trace ~time:t_report
      ~value:(System.output_value sys output !x);
    match observe with None -> () | Some f -> f t_report reader
  done;
  Obs.Counter.add c_steps nsteps;
  Obs.Counter.add c_device_evals !device_evals;
  Obs.Counter.add c_factorizations !factorizations;
  Obs.Counter.add c_solves !solves;
  Obs.Counter.add c_rhs_builds !solves;
  Obs.Gauge.set g_matrix_dim (float_of_int n);
  let newton =
    if not jn then None
    else begin
      Obs.Counter.add c_newton_wasted !wasted_iters;
      let pivot_ratio =
        if !pivot_min > 0.0 && !pivot_min < infinity then
          !pivot_max /. !pivot_min
        else infinity
      in
      if pivot_ratio > 1e12 then
        Journal.emit ~severity:Journal.Warn ~cat:"mna" "conditioning"
          [
            ("pivot_min", Journal.F !pivot_min);
            ("pivot_max", Journal.F !pivot_max);
            ("pivot_ratio", Journal.F pivot_ratio);
          ];
      if !stressed_substeps > 0 then
        Journal.emit ~severity:Journal.Warn ~cat:"mna" "dt_stress"
          [
            ("max_rel_change", Journal.F !dt_stress);
            ("stressed_substeps", Journal.I !stressed_substeps);
            ("dt", Journal.F dt);
            ("substeps", Journal.I substeps);
          ];
      Journal.emit ~cat:"mna" "newton.run"
        [
          ("steps", Journal.I nsteps);
          ("total_iters", Journal.I !total_iters);
          ("wasted_iters", Journal.I !wasted_iters);
          ("max_residual", Journal.F !max_residual);
          ("pivot_min", Journal.F !pivot_min);
          ("pivot_max", Journal.F !pivot_max);
          ("dt_stress", Journal.F !dt_stress);
          ("dim", Journal.I n);
        ];
      Some
        {
          total_iters = !total_iters;
          wasted_iters = !wasted_iters;
          max_residual = !max_residual;
          pivot_min = !pivot_min;
          pivot_max = !pivot_max;
          dt_stress = !dt_stress;
          stressed_substeps = !stressed_substeps;
        }
    end
  in
  {
    trace;
    stats =
      {
        steps = nsteps;
        device_evals = !device_evals;
        factorizations = !factorizations;
        solves = !solves;
      };
    matrix_dim = n;
    newton;
  }

(* Shared factor cache of the fast fidelity path: the sparse symbolic
   factorisation is computed once per topology, and the numeric factors
   are reused across Newton passes and substeps until the timestep or
   the piecewise-linear region selection changes. A numerically stale
   pivot (Sparse.Singular out of [refactor]) triggers one re-analysis
   with fresh pivoting before the failure is surfaced with the same
   [Matrix.Singular] diagnostics as the paper path. *)
module Fast_cache = struct
  type t = {
    n : int;
    sys : System.t;
    npwl : int;
    mutable symbolic : Sparse.symbolic option;
    mutable lu : Sparse.lu option;
    mutable h : float;
    regions : bool array;  (* region selection the cached LU was stamped with *)
    scratch : bool array;
  }

  let create sys =
    {
      n = System.size sys;
      sys;
      npwl = System.pwl_count sys;
      symbolic = None;
      lu = None;
      h = nan;
      regions = Array.make (System.pwl_count sys) false;
      scratch = Array.make (System.pwl_count sys) false;
    }

  let bools_equal a b npwl =
    let ok = ref true in
    for i = 0 to npwl - 1 do
      if a.(i) <> b.(i) then ok := false
    done;
    !ok

  let refactor_with c triplets =
    match c.symbolic with
    | Some sym -> (
        try Sparse.refactor sym triplets
        with Sparse.Singular _ ->
          (* Reused pivots went numerically stale: re-analyze with
             fresh pivoting and retry once. *)
          let sym = Sparse.analyze ~n:c.n triplets in
          c.symbolic <- Some sym;
          Sparse.refactor sym triplets)
    | None ->
        let sym = Sparse.analyze ~n:c.n triplets in
        c.symbolic <- Some sym;
        Sparse.refactor sym triplets

  (* Factors for the system stamped at [state] with timestep [h],
     reusing the cached LU when neither changed anything the stamp
     depends on. [on_stamp] is the device-evaluation counter hook;
     [on_singular] runs before the error is re-raised. *)
  let factor c ~state ~h ~on_stamp ~on_factor ~on_singular =
    System.pwl_regions_into c.sys state ~regions:c.scratch;
    match c.lu with
    | Some lu when c.h = h && bools_equal c.scratch c.regions c.npwl -> lu
    | _ ->
        let triplets = System.stamp_triplets ~state c.sys ~h in
        on_stamp ();
        let lu =
          try refactor_with c triplets
          with Sparse.Singular k ->
            on_singular k;
            raise (Matrix.Singular k)
        in
        on_factor ();
        c.h <- h;
        Array.blit c.scratch 0 c.regions 0 c.npwl;
        c.lu <- Some lu;
        lu

  (* Does [state] select the same regions as the cached LU was stamped
     with? Vacuously true for a linear network. *)
  let regions_stable c state =
    if c.npwl = 0 then true
    else begin
      System.pwl_regions_into c.sys state ~regions:c.scratch;
      bools_equal c.scratch c.regions c.npwl
    end
end

(* Substep controller thresholds for the fast path: refine (double the
   substep count and redo the reporting step) when the second-difference
   LTE proxy crosses [lte_refine] or a substep is dt-stressed; relax
   (halve) when the whole step stayed comfortably below the band. *)
let lte_refine = 0.05
let lte_relax = lte_refine /. 8.0

let spice_like_fast ~substeps ~iterations ?observe circuit ~inputs ~output ~dt
    ~t_stop =
  check_args ~dt ~t_stop;
  Obs.with_span ~cat:"mna" "mna.spice_like" @@ fun () ->
  let sys = System.build circuit in
  let n = System.size sys in
  let input_at = input_fun inputs in
  let nsteps = int_of_float (Float.round (t_stop /. dt)) in
  let nonlinear = System.has_pwl sys in
  let x = ref (Array.make n 0.0) in
  (* State one substep back, for the second-difference LTE estimate. *)
  let xm1 = ref (Array.make n 0.0) in
  let rhs = Array.make n 0.0 in
  let trace = Trace.create ~capacity:(nsteps + 1) () in
  let device_evals = ref 0 and factorizations = ref 0 and solves = ref 0 in
  let rhs_builds = ref 0 in
  let jn = Journal.enabled () in
  (* Unlike the paper path, every control quantity here (update norm,
     stress, LTE, pivot range) is computed unconditionally: the update
     norm is the early-exit test and stress/LTE drive the substep
     controller, so the journal can only change what is emitted, never
     the numerics — journal-off runs are step-identical to journal-on. *)
  let total_iters = ref 0 in
  let max_residual = ref 0.0 in
  let pivot_min = ref infinity and pivot_max = ref 0.0 in
  let dt_stress = ref 0.0 and stressed_substeps = ref 0 in
  let cache = Fast_cache.create sys in
  let nsub = ref substeps in
  let reader v = System.output_value sys v !x in
  Trace.add trace ~time:0.0 ~value:(System.output_value sys output !x);
  (match observe with None -> () | Some f -> f 0.0 reader);
  for step = 1 to nsteps do
    let t_base = float_of_int (step - 1) *. dt in
    let x_save = !x and xm1_save = !xm1 in
    let step_residual = ref 0.0 in
    let step_converged_at = ref 0 in
    let step_passes = ref 0 in
    let step_stress = ref 0.0 in
    let step_lte = ref 0.0 in
    let step_nsub = ref !nsub in
    let retry = ref true in
    while !retry do
      retry := false;
      step_residual := 0.0;
      step_converged_at := 0;
      step_stress := 0.0;
      step_lte := 0.0;
      let ns = !nsub in
      step_nsub := ns;
      let h = dt /. float_of_int ns in
      let aborted = ref false in
      let sub = ref 1 in
      while (not !aborted) && !sub <= ns do
        (* As in the paper path, the last substep lands exactly on the
           reporting instant. *)
        let t =
          if !sub = ns then float_of_int step *. dt
          else t_base +. (float_of_int !sub *. h)
        in
        let input = input_at t in
        (* The RHS depends only on the substep-start state and the
           input, so one build serves every Newton pass. *)
        System.stamp_rhs sys ~h ~state:!x ~input ~rhs;
        incr rhs_builds;
        let x_next = ref !x in
        let converged_at = ref 0 in
        let last_delta = ref infinity in
        (* A linear network needs exactly one pass: the matrix does not
           depend on the state, so the first solve is the solution. *)
        let max_iters = if nonlinear then iterations else 1 in
        let iter = ref 0 in
        let stop = ref false in
        while (not !stop) && !iter < max_iters do
          incr iter;
          let lu =
            Fast_cache.factor cache ~state:!x_next ~h
              ~on_stamp:(fun () -> incr device_evals)
              ~on_factor:(fun () -> incr factorizations)
              ~on_singular:(fun k ->
                if jn then
                  Journal.emit ~severity:Journal.Error ~step ~time:t
                    ~cat:"mna" "singular_pivot"
                    [ ("column", Journal.I k); ("dim", Journal.I n) ])
          in
          let prev = !x_next in
          x_next := Sparse.lu_solve lu rhs;
          incr solves;
          incr total_iters;
          incr step_passes;
          let mn, mx = Sparse.pivot_range lu in
          if mn < !pivot_min then pivot_min := mn;
          if mx > !pivot_max then pivot_max := mx;
          let delta = ref 0.0 and scale = ref 0.0 in
          let xn = !x_next in
          for i = 0 to n - 1 do
            let d = abs_float (xn.(i) -. prev.(i)) in
            if d > !delta then delta := d;
            let m = abs_float xn.(i) in
            if m > !scale then scale := m
          done;
          last_delta := !delta;
          (* Early exit: update norm inside tolerance AND the region
             selection the LU was stamped with still matches the new
             iterate — otherwise another pass re-stamps. *)
          if
            !delta <= (newton_rtol *. !scale) +. newton_atol
            && Fast_cache.regions_stable cache xn
          then begin
            converged_at := !iter;
            stop := true
          end
        done;
        if jn then Obs.Histogram.observe h_newton_residual !last_delta;
        if !last_delta > !max_residual then max_residual := !last_delta;
        step_residual := !last_delta;
        step_converged_at := !converged_at;
        (* Stress (relative motion over this substep) and the LTE proxy
           (scaled second difference, ~ h^2/2 * |x''|). *)
        let stress = ref 0.0 and lte = ref 0.0 in
        let x0 = !x and x1 = !x_next and xm = !xm1 in
        for i = 0 to n - 1 do
          let m = Float.max (abs_float x0.(i)) (abs_float x1.(i)) in
          if m > newton_atol then begin
            let r = abs_float (x1.(i) -. x0.(i)) /. m in
            if r > !stress then stress := r;
            let l =
              abs_float (x1.(i) -. (2.0 *. x0.(i)) +. xm.(i)) /. (2.0 *. m)
            in
            if l > !lte then lte := l
          end
        done;
        if !stress > !step_stress then step_stress := !stress;
        if !lte > !step_lte then step_lte := !lte;
        if (!lte > lte_refine || !stress > stress_threshold) && ns < substeps
        then
          (* Over the error band and refinement headroom remains: abort
             and redo the whole reporting step with more substeps. *)
          aborted := true
        else begin
          if !stress > !dt_stress then dt_stress := !stress;
          if !stress > stress_threshold then incr stressed_substeps;
          xm1 := !x;
          x := !x_next;
          incr sub
        end
      done;
      if !aborted then begin
        x := x_save;
        xm1 := xm1_save;
        nsub := min substeps (ns * 2);
        retry := true
      end
      else if
        !step_lte < lte_relax
        && !step_stress < stress_threshold /. 2.0
        && ns > 1
      then nsub := ns / 2
    done;
    Obs.Histogram.observe h_solver_passes (float_of_int !step_passes);
    let t_report = float_of_int step *. dt in
    if jn then
      Journal.emit ~step ~time:t_report ~cat:"mna" "newton.step"
        [
          ("residual", Journal.F !step_residual);
          ("converged_at", Journal.I !step_converged_at);
          ("wasted", Journal.I 0);
          ("stress", Journal.F !step_stress);
          ("nsub", Journal.I !step_nsub);
        ];
    Trace.add trace ~time:t_report ~value:(System.output_value sys output !x);
    match observe with None -> () | Some f -> f t_report reader
  done;
  Obs.Counter.add c_steps nsteps;
  Obs.Counter.add c_device_evals !device_evals;
  Obs.Counter.add c_factorizations !factorizations;
  Obs.Counter.add c_solves !solves;
  Obs.Counter.add c_rhs_builds !rhs_builds;
  Obs.Gauge.set g_matrix_dim (float_of_int n);
  let pivot_ratio =
    if !pivot_min > 0.0 && !pivot_min < infinity then !pivot_max /. !pivot_min
    else infinity
  in
  if jn then begin
    if pivot_ratio > 1e12 then
      Journal.emit ~severity:Journal.Warn ~cat:"mna" "conditioning"
        [
          ("pivot_min", Journal.F !pivot_min);
          ("pivot_max", Journal.F !pivot_max);
          ("pivot_ratio", Journal.F pivot_ratio);
        ];
    if !stressed_substeps > 0 then
      Journal.emit ~severity:Journal.Warn ~cat:"mna" "dt_stress"
        [
          ("max_rel_change", Journal.F !dt_stress);
          ("stressed_substeps", Journal.I !stressed_substeps);
          ("dt", Journal.F dt);
          ("substeps", Journal.I substeps);
        ];
    Journal.emit ~cat:"mna" "newton.run"
      [
        ("steps", Journal.I nsteps);
        ("total_iters", Journal.I !total_iters);
        ("wasted_iters", Journal.I 0);
        ("max_residual", Journal.F !max_residual);
        ("pivot_min", Journal.F !pivot_min);
        ("pivot_max", Journal.F !pivot_max);
        ("dt_stress", Journal.F !dt_stress);
        ("dim", Journal.I n);
      ]
  end;
  {
    trace;
    stats =
      {
        steps = nsteps;
        device_evals = !device_evals;
        factorizations = !factorizations;
        solves = !solves;
      };
    matrix_dim = n;
    newton =
      Some
        {
          total_iters = !total_iters;
          wasted_iters = 0;
          max_residual = !max_residual;
          pivot_min = !pivot_min;
          pivot_max = !pivot_max;
          dt_stress = !dt_stress;
          stressed_substeps = !stressed_substeps;
        };
  }

let spice_like ?(substeps = 8) ?(iterations = 3) ?(fidelity = `Paper) ?observe
    circuit ~inputs ~output ~dt ~t_stop =
  match fidelity with
  | `Paper ->
      spice_like_paper ~substeps ~iterations ?observe circuit ~inputs ~output
        ~dt ~t_stop
  | `Fast ->
      if substeps < 1 || iterations < 1 then
        invalid_arg "Engine.spice_like: substeps and iterations must be >= 1";
      spice_like_fast ~substeps ~iterations ?observe circuit ~inputs ~output
        ~dt ~t_stop

let eln_like ?(on_step = fun _ _ -> ()) ?observe circuit ~inputs ~output ~dt
    ~t_stop =
  check_args ~dt ~t_stop;
  if Amsvp_netlist.Circuit.has_pwl circuit then
    invalid_arg "Engine.eln_like: the linear-network engine cannot simulate \
                 piecewise-linear devices";
  Obs.with_span ~cat:"mna" "mna.eln_like" @@ fun () ->
  let sys = System.build circuit in
  let n = System.size sys in
  let input_at = input_fun inputs in
  let nsteps = int_of_float (Float.round (t_stop /. dt)) in
  (* Linear fixed-step network: assemble and factor exactly once. *)
  let m = System.stamp_matrix sys ~h:dt in
  let lu = Matrix.lu_factor m in
  let x = Array.make n 0.0 in
  let x_next = Array.make n 0.0 in
  let rhs = Array.make n 0.0 in
  let trace = Trace.create ~capacity:(nsteps + 1) () in
  let solves = ref 0 in
  let reader v = System.output_value sys v x in
  Trace.add trace ~time:0.0 ~value:(System.output_value sys output x);
  (match observe with None -> () | Some f -> f 0.0 reader);
  for step = 1 to nsteps do
    let t = float_of_int step *. dt in
    System.stamp_rhs sys ~h:dt ~state:x ~input:(input_at t) ~rhs;
    Matrix.lu_solve_into lu ~b:rhs ~x:x_next;
    incr solves;
    Array.blit x_next 0 x 0 n;
    let out = System.output_value sys output x in
    Trace.add trace ~time:t ~value:out;
    on_step t out;
    match observe with None -> () | Some f -> f t reader
  done;
  Obs.Counter.add c_steps nsteps;
  Obs.Counter.add c_device_evals 1;
  Obs.Counter.add c_factorizations 1;
  Obs.Counter.add c_solves !solves;
  Obs.Counter.add c_rhs_builds !solves;
  Obs.Gauge.set g_matrix_dim (float_of_int n);
  if Journal.enabled () then begin
    let mn, mx = Matrix.pivot_range lu in
    Journal.emit ~cat:"mna" "eln.run"
      [
        ("steps", Journal.I nsteps);
        ("solves", Journal.I !solves);
        ("pivot_min", Journal.F mn);
        ("pivot_max", Journal.F mx);
        ("dim", Journal.I n);
      ]
  end;
  {
    trace;
    stats =
      { steps = nsteps; device_evals = 1; factorizations = 1; solves = !solves };
    matrix_dim = n;
    newton = None;
  }

module Eln_stepper = struct
  type factors = Dense of Matrix.lu | Sparse_lu of Sparse.lu

  type t = {
    sys : System.t;
    lu : factors;
    dt : float;
    inputs : string array;
    output_var : Expr.var;
    x : float array;
    x_next : float array;
    rhs : float array;
    mutable out : float;
  }

  let create ?(solver = `Dense) circuit ~inputs ~output ~dt =
    if dt <= 0.0 then invalid_arg "Eln_stepper: dt must be positive";
    if Amsvp_netlist.Circuit.has_pwl circuit then
      invalid_arg "Eln_stepper: the linear-network engine cannot simulate \
                   piecewise-linear devices";
    let sys = System.build circuit in
    let n = System.size sys in
    let lu =
      match solver with
      | `Dense -> Dense (Matrix.lu_factor (System.stamp_matrix sys ~h:dt))
      | `Sparse -> Sparse_lu (Sparse.lu_factor ~n (System.stamp_triplets sys ~h:dt))
    in
    {
      sys;
      lu;
      dt;
      inputs = Array.of_list inputs;
      output_var = output;
      x = Array.make n 0.0;
      x_next = Array.make n 0.0;
      rhs = Array.make n 0.0;
      out = 0.0;
    }

  let step st ~input_values =
    if Array.length input_values <> Array.length st.inputs then
      invalid_arg
        (Printf.sprintf "Eln_stepper.step: expected %d input(s), got %d"
           (Array.length st.inputs)
           (Array.length input_values));
    let input name =
      let rec find i =
        if i >= Array.length st.inputs then
          invalid_arg ("Eln_stepper: unknown input " ^ name)
        else if st.inputs.(i) = name then input_values.(i)
        else find (i + 1)
      in
      find 0
    in
    System.stamp_rhs st.sys ~h:st.dt ~state:st.x ~input ~rhs:st.rhs;
    (match st.lu with
    | Dense lu -> Matrix.lu_solve_into lu ~b:st.rhs ~x:st.x_next
    | Sparse_lu lu -> Sparse.lu_solve_into lu ~b:st.rhs ~x:st.x_next);
    Obs.Counter.incr c_steps;
    Obs.Counter.incr c_solves;
    Obs.Counter.incr c_rhs_builds;
    Array.blit st.x_next 0 st.x 0 (Array.length st.x);
    st.out <- System.output_value st.sys st.output_var st.x;
    st.out

  let output st = st.out
  let read st v = System.output_value st.sys v st.x

  let reset st =
    Array.fill st.x 0 (Array.length st.x) 0.0;
    st.out <- 0.0
end

module Spice_stepper = struct
  (* Persistent fast-fidelity state: the factor cache survives across
     ticks (the whole point of symbolic reuse in lock-step
     co-simulation) and so does the adaptive substep count. *)
  type fast = {
    cache : Fast_cache.t;
    mutable nsub : int;
    mutable xm1 : float array;
  }

  type t = {
    sys : System.t;
    dt : float;
    h : float;
    substeps : int;
    iterations : int;
    inputs : string array;
    output_var : Expr.var;
    mutable x : float array;
    rhs : float array;
    mutable out : float;
    fast : fast option;  (* [None] = paper fidelity *)
  }

  let create ?(substeps = 8) ?(iterations = 3) ?(fidelity = `Paper) circuit
      ~inputs ~output ~dt =
    if dt <= 0.0 then invalid_arg "Spice_stepper: dt must be positive";
    if substeps < 1 || iterations < 1 then
      invalid_arg "Spice_stepper: substeps and iterations must be >= 1";
    let sys = System.build circuit in
    let n = System.size sys in
    let fast =
      match fidelity with
      | `Paper -> None
      | `Fast ->
          Some
            {
              cache = Fast_cache.create sys;
              nsub = substeps;
              xm1 = Array.make n 0.0;
            }
    in
    {
      sys;
      dt;
      h = dt /. float_of_int substeps;
      substeps;
      iterations;
      inputs = Array.of_list inputs;
      output_var = output;
      x = Array.make n 0.0;
      rhs = Array.make n 0.0;
      out = 0.0;
      fast;
    }

  (* One fast-fidelity tick: same controller as the fast engine path —
     early-exit Newton over reused factors, adaptive substep count with
     refine-and-retry — minus the journal (steppers run inside a DE
     kernel; the host owns observability). *)
  let step_fast st fs ~input =
    let n = Array.length st.x in
    let nonlinear = System.has_pwl st.sys in
    let passes = ref 0 and stamps = ref 0 and factors = ref 0 in
    let x_save = st.x and xm1_save = fs.xm1 in
    let retry = ref true in
    while !retry do
      retry := false;
      let ns = fs.nsub in
      let h = st.dt /. float_of_int ns in
      let step_stress = ref 0.0 and step_lte = ref 0.0 in
      let aborted = ref false in
      let sub = ref 1 in
      while (not !aborted) && !sub <= ns do
        System.stamp_rhs st.sys ~h ~state:st.x ~input ~rhs:st.rhs;
        let x_next = ref st.x in
        let max_iters = if nonlinear then st.iterations else 1 in
        let iter = ref 0 in
        let stop = ref false in
        while (not !stop) && !iter < max_iters do
          incr iter;
          let lu =
            Fast_cache.factor fs.cache ~state:!x_next ~h
              ~on_stamp:(fun () -> incr stamps)
              ~on_factor:(fun () -> incr factors)
              ~on_singular:(fun _ -> ())
          in
          let prev = !x_next in
          x_next := Sparse.lu_solve lu st.rhs;
          incr passes;
          let delta = ref 0.0 and scale = ref 0.0 in
          let xn = !x_next in
          for i = 0 to n - 1 do
            let d = abs_float (xn.(i) -. prev.(i)) in
            if d > !delta then delta := d;
            let m = abs_float xn.(i) in
            if m > !scale then scale := m
          done;
          if
            !delta <= (newton_rtol *. !scale) +. newton_atol
            && Fast_cache.regions_stable fs.cache xn
          then stop := true
        done;
        let stress = ref 0.0 and lte = ref 0.0 in
        let x0 = st.x and x1 = !x_next and xm = fs.xm1 in
        for i = 0 to n - 1 do
          let m = Float.max (abs_float x0.(i)) (abs_float x1.(i)) in
          if m > newton_atol then begin
            let r = abs_float (x1.(i) -. x0.(i)) /. m in
            if r > !stress then stress := r;
            let l =
              abs_float (x1.(i) -. (2.0 *. x0.(i)) +. xm.(i)) /. (2.0 *. m)
            in
            if l > !lte then lte := l
          end
        done;
        if !stress > !step_stress then step_stress := !stress;
        if !lte > !step_lte then step_lte := !lte;
        if (!lte > lte_refine || !stress > stress_threshold) && ns < st.substeps
        then aborted := true
        else begin
          fs.xm1 <- st.x;
          st.x <- !x_next;
          incr sub
        end
      done;
      if !aborted then begin
        st.x <- x_save;
        fs.xm1 <- xm1_save;
        fs.nsub <- min st.substeps (ns * 2);
        retry := true
      end
      else if
        !step_lte < lte_relax
        && !step_stress < stress_threshold /. 2.0
        && ns > 1
      then fs.nsub <- ns / 2
    done;
    Obs.Counter.incr c_steps;
    Obs.Counter.add c_device_evals !stamps;
    Obs.Counter.add c_factorizations !factors;
    Obs.Counter.add c_solves !passes;
    Obs.Counter.add c_rhs_builds !passes;
    Obs.Histogram.observe h_solver_passes (float_of_int !passes);
    st.out <- System.output_value st.sys st.output_var st.x;
    st.out

  let step st ~input_values =
    if Array.length input_values <> Array.length st.inputs then
      invalid_arg
        (Printf.sprintf "Spice_stepper.step: expected %d input(s), got %d"
           (Array.length st.inputs)
           (Array.length input_values));
    let input name =
      let rec find i =
        if i >= Array.length st.inputs then
          invalid_arg ("Spice_stepper: unknown input " ^ name)
        else if st.inputs.(i) = name then input_values.(i)
        else find (i + 1)
      in
      find 0
    in
    match st.fast with
    | Some fs -> step_fast st fs ~input
    | None ->
    for _sub = 1 to st.substeps do
      let x_next = ref st.x in
      for _iter = 1 to st.iterations do
        let m = System.stamp_matrix ~state:!x_next st.sys ~h:st.h in
        System.stamp_rhs st.sys ~h:st.h ~state:st.x ~input ~rhs:st.rhs;
        let lu = Matrix.lu_factor m in
        x_next := Matrix.lu_solve lu st.rhs
      done;
      st.x <- !x_next
    done;
    let passes = st.substeps * st.iterations in
    Obs.Counter.incr c_steps;
    Obs.Counter.add c_device_evals passes;
    Obs.Counter.add c_factorizations passes;
    Obs.Counter.add c_solves passes;
    Obs.Counter.add c_rhs_builds passes;
    Obs.Histogram.observe h_solver_passes (float_of_int passes);
    st.out <- System.output_value st.sys st.output_var st.x;
    st.out

  let output st = st.out
  let read st v = System.output_value st.sys v st.x

  let reset st =
    Array.fill st.x 0 (Array.length st.x) 0.0;
    (match st.fast with
    | Some fs ->
        fs.nsub <- st.substeps;
        fs.xm1 <- Array.make (Array.length st.x) 0.0
    | None -> ());
    st.out <- 0.0
end

let run_testcase_spice ?substeps ?iterations ?fidelity
    (tc : Circuits.testcase) ~dt ~t_stop =
  spice_like ?substeps ?iterations ?fidelity tc.circuit ~inputs:tc.stimuli
    ~output:tc.output ~dt ~t_stop

let run_testcase_eln (tc : Circuits.testcase) ~dt ~t_stop =
  eln_like tc.circuit ~inputs:tc.stimuli ~output:tc.output ~dt ~t_stop
