(** Sparse LU factorisation for MNA systems.

    The paper notes that "the sparse linear solver and device evaluation
    are two most serious bottlenecks in this kind of simulators"
    (§III-B, citing DATE'15 work on fast sparse solvers). This module
    provides the sparse counterpart of {!Matrix}: rows are kept as
    hash-sparse vectors during elimination, pivots are chosen by a
    Markowitz-style rule (fewest fill candidates) subject to a
    numerical threshold against the column maximum, and the resulting
    factors are stored compressed for repeated forward/backward solves
    — the access pattern of a fixed-timestep linear network. *)

type triplet = int * int * float
(** [(row, col, value)]; duplicate entries accumulate. *)

type lu

exception Singular of int
(** No admissible pivot in the given elimination step. *)

val lu_factor : n:int -> triplet list -> lu
(** Factor the [n x n] matrix given by its nonzero entries.
    @raise Singular on structurally or numerically singular input
    @raise Invalid_argument on out-of-range indices. *)

val lu_solve_into : lu -> b:float array -> x:float array -> unit
(** Allocation-free solve; [b] is not modified, [b] and [x] may not
    alias. *)

val lu_solve : lu -> float array -> float array

val nnz : lu -> int
(** Stored nonzeros of [L] + [U] (fill-in included), for reporting. *)

val pivot_range : lu -> float * float
(** [(min, max)] absolute value over the U diagonal — the same
    conditioning proxy as {!Matrix.pivot_range}. *)

(** {1 Symbolic-factorisation reuse}

    MNA stamps change their {e values} every Newton pass but their
    {e structure} never changes for a fixed topology. [analyze] runs
    the Markowitz elimination once, retaining structural zeros so the
    recorded pivot order and fill pattern stay valid for any numeric
    values on the same structure; [refactor] then redoes only the
    numeric work along that fixed pattern — no pivot search, no
    hash tables — which is what makes per-step refactorisation cheap
    in the fast engine path. *)

type symbolic

val analyze : n:int -> triplet list -> symbolic
(** Compute pivot order and fill pattern from a representative stamped
    matrix. Zero-valued entries are kept as structural.
    @raise Singular when no admissible pivot exists
    @raise Invalid_argument on out-of-range indices. *)

val refactor : symbolic -> triplet list -> lu
(** Numeric refactorisation over the fixed pattern. The triplets must
    have the same structure (a subset of the analyzed one is fine).
    @raise Singular when a reused pivot has gone numerically stale
    (|pivot| < 1e-300) — callers should re-[analyze] and retry. *)
