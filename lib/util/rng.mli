(** Deterministic seeded pseudo-random numbers (splitmix64).

    The sweep engine draws Monte Carlo samples from independent
    substreams — one per scenario point — so results are reproducible
    for a given seed regardless of how points are scheduled across
    domains, and so adding a point never perturbs the draws of the
    others. The generator is self-contained (no dependency on the
    global [Random] state, which is per-domain and order-sensitive). *)

type t
(** A mutable generator. Not thread-safe: derive one per domain or per
    work item instead of sharing. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds
    yield equal streams. *)

val derive : int -> stream:int -> t
(** [derive seed ~stream] is an independent substream: generators
    derived from the same seed with different [stream] indices produce
    decorrelated sequences, and the construction is pure — calling it
    twice yields identical generators. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].
    @raise Invalid_argument if [lo > hi]. *)

val normal : t -> mean:float -> sigma:float -> float
(** Gaussian draw (Box–Muller over two uniforms; no rejection loop, so
    every draw consumes exactly two generator steps). *)

val int : t -> bound:int -> int
(** Uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
