type t = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create ?(capacity = 1024) () =
  let capacity = max capacity 1 in
  { times = Array.make capacity 0.0; values = Array.make capacity 0.0; len = 0 }

let grow tr =
  let cap = Array.length tr.times in
  let times = Array.make (2 * cap) 0.0 and values = Array.make (2 * cap) 0.0 in
  Array.blit tr.times 0 times 0 tr.len;
  Array.blit tr.values 0 values 0 tr.len;
  tr.times <- times;
  tr.values <- values

let add tr ~time ~value =
  if tr.len = Array.length tr.times then grow tr;
  (* Not an assert: the check must survive release builds, or a
     non-monotonic sample silently corrupts every later interpolation. *)
  if tr.len > 0 && time < tr.times.(tr.len - 1) then
    invalid_arg "Trace.add: non-monotonic time";
  tr.times.(tr.len) <- time;
  tr.values.(tr.len) <- value;
  tr.len <- tr.len + 1

let length tr = tr.len

let check_index tr i =
  if i < 0 || i >= tr.len then invalid_arg "Trace: index out of bounds"

let time tr i =
  check_index tr i;
  tr.times.(i)

let value tr i =
  check_index tr i;
  tr.values.(i)

let last_value tr =
  if tr.len = 0 then invalid_arg "Trace.last_value: empty trace";
  tr.values.(tr.len - 1)

(* Binary search for the rightmost sample with time <= t. *)
let find_left tr t =
  let rec loop lo hi =
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if tr.times.(mid) <= t then loop mid hi else loop lo mid
  in
  loop 0 tr.len

let sample_at tr t =
  if tr.len = 0 then invalid_arg "Trace.sample_at: empty trace";
  if t <= tr.times.(0) then tr.values.(0)
  else if t >= tr.times.(tr.len - 1) then tr.values.(tr.len - 1)
  else
    let i = find_left tr t in
    let t0 = tr.times.(i) and t1 = tr.times.(i + 1) in
    let v0 = tr.values.(i) and v1 = tr.values.(i + 1) in
    if t1 = t0 then v1 else v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))

let values tr = Array.sub tr.values 0 tr.len
let times tr = Array.sub tr.times 0 tr.len

let resample tr ~t0 ~dt ~n =
  Array.init n (fun i -> sample_at tr (t0 +. (float_of_int i *. dt)))

let of_fun f ~t0 ~dt ~n =
  let tr = create ~capacity:n () in
  for i = 0 to n - 1 do
    let t = t0 +. (float_of_int i *. dt) in
    add tr ~time:t ~value:(f t)
  done;
  tr

let pp ppf tr =
  if tr.len = 0 then Format.fprintf ppf "<empty trace>"
  else begin
    let vmin = ref tr.values.(0) and vmax = ref tr.values.(0) in
    for i = 1 to tr.len - 1 do
      if tr.values.(i) < !vmin then vmin := tr.values.(i);
      if tr.values.(i) > !vmax then vmax := tr.values.(i)
    done;
    Format.fprintf ppf "<trace %d samples, t=[%g,%g], v=[%g,%g]>" tr.len
      tr.times.(0)
      tr.times.(tr.len - 1)
      !vmin !vmax
  end
