(** Error metrics between waveforms.

    The paper reports the normalised root-mean-square error (NRMSE) of
    every abstracted model against the Verilog-AMS reference (Table I);
    these are the corresponding numeric routines. *)

(** [rmse a b] is the root-mean-square difference of two equal-length
    sample arrays.
    @raise Invalid_argument if lengths differ or arrays are empty. *)
val rmse : float array -> float array -> float

(** [nrmse ~reference measured] is [rmse] normalised by the value range
    (max - min) of [reference]. A constant reference (range 0) with a
    non-zero error yields [infinity]; identical arrays yield [0]. *)
val nrmse : reference:float array -> float array -> float

(** [nrmse_traces ~reference measured ~t0 ~dt ~n] resamples both traces
    on a common grid and computes the NRMSE. *)
val nrmse_traces :
  reference:Trace.t -> Trace.t -> t0:float -> dt:float -> n:int -> float

(** [max_abs_error a b] is the maximum pointwise absolute difference. *)
val max_abs_error : float array -> float array -> float

(** [ulp_distance a b] is the number of representable floats between
    [a] and [b] (0 when bit-identical, 1 for adjacent floats). Signed
    zeros are 0 apart; two NaNs are 0 apart regardless of payload; a
    NaN against a non-NaN is [Int64.max_int]. Used by the differential
    engine tests: "≤ 1 ulp" is the identical-output acceptance bar. *)
val ulp_distance : float -> float -> int64
