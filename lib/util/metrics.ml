let check_same_length a b =
  if Array.length a <> Array.length b then
    invalid_arg "Metrics: arrays of different lengths";
  if Array.length a = 0 then invalid_arg "Metrics: empty arrays"

let rmse a b =
  check_same_length a b;
  let n = Array.length a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let value_range a =
  let vmin = ref a.(0) and vmax = ref a.(0) in
  Array.iter
    (fun v ->
      if v < !vmin then vmin := v;
      if v > !vmax then vmax := v)
    a;
  !vmax -. !vmin

let nrmse ~reference measured =
  let e = rmse reference measured in
  if e = 0.0 then 0.0
  else
    let range = value_range reference in
    if range = 0.0 then infinity else e /. range

let nrmse_traces ~reference measured ~t0 ~dt ~n =
  let a = Trace.resample reference ~t0 ~dt ~n in
  let b = Trace.resample measured ~t0 ~dt ~n in
  nrmse ~reference:a b

let max_abs_error a b =
  check_same_length a b;
  let m = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = abs_float (v -. b.(i)) in
      if d > !m then m := d)
    a;
  !m

let ulp_distance a b =
  (* Map the IEEE-754 bit pattern onto a monotone integer line: for
     non-negative floats the bits already order correctly; negative
     floats order in reverse, so reflect them below the positives. On
     that line adjacent representable floats differ by exactly 1. *)
  let ordered f =
    let bits = Int64.bits_of_float f in
    if Int64.compare bits 0L >= 0 then bits
    else Int64.sub Int64.min_int bits
  in
  let nan_a = Float.is_nan a and nan_b = Float.is_nan b in
  if nan_a || nan_b then if nan_a && nan_b then 0L else Int64.max_int
  else Int64.abs (Int64.sub (ordered a) (ordered b))
