(** Minimal JSON reader for the observability tooling.

    Parses the documents this repo itself writes — [BENCH_results.json],
    sweep reports, journal JSONL lines — without pulling in an external
    dependency. Full RFC 8259 value grammar (objects, arrays, strings
    with escapes, numbers, booleans, null); numbers are all read as
    OCaml floats, which is exact for the magnitudes the sinks emit. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** fields in document order *)

exception Parse_error of string * int
(** [(message, byte offset)] of the first offending character. *)

val parse : string -> t
(** Parse one JSON document. Trailing whitespace is allowed; any other
    trailing content raises.
    @raise Parse_error on malformed input. *)

val parse_lines : string -> t list
(** Parse a JSONL document: one JSON value per non-empty line.
    @raise Parse_error on the first malformed line (offset is within
    that line's text). *)

(** {1 Accessors} — total lookups returning [option]. *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val to_float : t -> float option
(** [Num] as float. Also accepts the journal's non-finite float
    encoding: the strings ["NaN"], ["Infinity"], ["-Infinity"]. *)

val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val mem_float : string -> t -> float option
val mem_string : string -> t -> string option
val mem_bool : string -> t -> bool option
val mem_list : string -> t -> t list
(** [mem_list k j] is the array at field [k], or [[]] when absent. *)
