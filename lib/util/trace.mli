(** Sampled waveform traces.

    A trace is a growable record of [(time, value)] samples produced by a
    simulator. Traces are the common currency used to compare the output
    of the different simulation back-ends (conservative MNA engines,
    discrete-event models, tight-loop signal-flow models). *)

type t

(** [create ()] is an empty trace. [create ~capacity ()] pre-allocates
    room for [capacity] samples. *)
val create : ?capacity:int -> unit -> t

(** [add trace ~time ~value] appends one sample. Samples must be appended
    in non-decreasing time order.
    @raise Invalid_argument when [time] precedes the last sample. *)
val add : t -> time:float -> value:float -> unit

(** Number of samples recorded so far. *)
val length : t -> int

(** [time trace i] and [value trace i] read sample [i] (0-based).
    @raise Invalid_argument if [i] is out of bounds. *)
val time : t -> int -> float

val value : t -> int -> float

(** [last_value trace] is the most recent sample value.
    @raise Invalid_argument on an empty trace. *)
val last_value : t -> float

(** [sample_at trace t] linearly interpolates the trace value at time
    [t]. Before the first sample it returns the first value; past the
    last sample, the last value.
    @raise Invalid_argument on an empty trace. *)
val sample_at : t -> float -> float

(** [values trace] is a fresh array of all sample values in order. *)
val values : t -> float array

(** [times trace] is a fresh array of all sample times in order. *)
val times : t -> float array

(** [resample trace ~t0 ~dt ~n] returns [n] values interpolated at
    [t0, t0+dt, ...]; used to align traces produced with different
    internal steps before computing error metrics. *)
val resample : t -> t0:float -> dt:float -> n:int -> float array

(** [of_fun f ~t0 ~dt ~n] tabulates an analytic waveform, for tests. *)
val of_fun : (float -> float) -> t0:float -> dt:float -> n:int -> t

(** [pp] prints a short summary (sample count, time span, value range). *)
val pp : Format.formatter -> t -> unit
