(* splitmix64 (Steele, Lea, Flood 2014): a tiny, fast, well-distributed
   generator with a trivially splittable seed space — exactly what the
   per-point substream scheme of the sweep engine needs. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

(* Mixing the stream index through one splitmix step before combining
   decorrelates (seed, stream) pairs that differ in low bits only. *)
let derive seed ~stream =
  let s = Int64.of_int seed in
  let k = mix (Int64.add (Int64.of_int stream) golden) in
  { state = mix (Int64.logxor (mix s) k) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let float t =
  (* Top 53 bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let normal t ~mean ~sigma =
  (* Box-Muller: two uniforms per draw, no rejection, so the stream
     position after a draw is deterministic. u1 is shifted away from 0
     so the log is finite. *)
  let u1 = 1.0 -. float t and u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (sigma *. z)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo; the bias is < bound/2^64, irrelevant for
     scenario sampling. *)
  let m = Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound) in
  Int64.to_int m
