(* Recursive-descent JSON reader; see json.mli for scope. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string * int

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (msg, st.pos))

let peek st =
  if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad \\u escape"

(* \uXXXX escapes are decoded to UTF-8; surrogate pairs are combined
   when both halves are present. *)
let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec read_u4 () =
    if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
    let v =
      (hex_digit st st.src.[st.pos] lsl 12)
      lor (hex_digit st st.src.[st.pos + 1] lsl 8)
      lor (hex_digit st st.src.[st.pos + 2] lsl 4)
      lor hex_digit st st.src.[st.pos + 3]
    in
    st.pos <- st.pos + 4;
    v
  and add_codepoint cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  and loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents b
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char b '"'; loop ()
        | Some '\\' -> advance st; Buffer.add_char b '\\'; loop ()
        | Some '/' -> advance st; Buffer.add_char b '/'; loop ()
        | Some 'b' -> advance st; Buffer.add_char b '\b'; loop ()
        | Some 'f' -> advance st; Buffer.add_char b '\012'; loop ()
        | Some 'n' -> advance st; Buffer.add_char b '\n'; loop ()
        | Some 'r' -> advance st; Buffer.add_char b '\r'; loop ()
        | Some 't' -> advance st; Buffer.add_char b '\t'; loop ()
        | Some 'u' ->
            advance st;
            let hi = read_u4 () in
            let cp =
              if hi >= 0xD800 && hi <= 0xDBFF
                 && st.pos + 6 <= String.length st.src
                 && st.src.[st.pos] = '\\'
                 && st.src.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let lo = read_u4 () in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
                else fail st "unpaired surrogate"
              end
              else hi
            in
            add_codepoint cp;
            loop ()
        | _ -> fail st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char b c;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    let rec go () =
      match peek st with
      | Some c when pred c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  consume_while (function '0' .. '9' -> true | _ -> false);
  (match peek st with
  | Some '.' ->
      advance st;
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some v -> v
  | None ->
      st.pos <- start;
      fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        fields []
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elems (v :: acc)
          | Some ']' ->
              advance st;
              Arr (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        elems []
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some _ -> fail st "trailing content");
  v

let parse_lines src =
  String.split_on_char '\n' src
  |> List.filter_map (fun line ->
         if String.trim line = "" then None else Some (parse line))

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function
  | Num v -> Some v
  | Str "NaN" -> Some nan
  | Str "Infinity" -> Some infinity
  | Str "-Infinity" -> Some neg_infinity
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let mem_float k j = Option.bind (member k j) to_float
let mem_string k j = Option.bind (member k j) to_string
let mem_bool k j = Option.bind (member k j) to_bool

let mem_list k j =
  match Option.bind (member k j) to_list with Some l -> l | None -> []
