(** Online numerical-health monitors for probed signals.

    A monitor consumes one sample per simulated step and maintains
    streaming statistics (min/max/RMS plus Welford mean/variance, so a
    million-step run needs O(1) memory) together with a set of
    watchdogs:

    - {b NaN/Inf} — always armed; fires on the first non-finite sample.
    - {b amplitude explosion} — fires when |value| exceeds
      [amplitude_limit].
    - {b stuck-at} — fires when [stuck_after] {e consecutive} samples
      are bitwise-identical (and finite). Pick a threshold larger than
      any legitimate start-up plateau: a circuit resting at its 0
      initial condition for k steps looks stuck for those k steps.
    - {b NRMSE budget} — for monitors fed through {!observe_ref}:
      fires when the streaming NRMSE against the reference (RMS error
      normalised by the reference peak-to-peak range, the same
      definition as [Amsvp_util.Metrics.nrmse]) exceeds [nrmse_budget]
      after a short warm-up.

    Each watchdog fires {e at most once} per monitor, at the first
    offending sample; the emitted {!issue} carries the signal name, the
    simulated time and the offending value. When the [Amsvp_obs]
    recorder is enabled, firing also emits a structured instant event
    (category ["health"], name ["health.<kind>"]) so breaches show up
    in Chrome traces next to the spans that produced them. *)

type kind =
  | Nan_or_inf
  | Amplitude
  | Stuck
  | Nrmse_budget
  | Timeout
      (** the point's wall-clock budget expired before the simulation
          finished (sweep worker pools; never fired by a monitor) *)
  | Crashed
      (** the worker executing the point died or raised (multi-process
          sweep service; never fired by a monitor) *)
  | Pruned
      (** the point was skipped: the abstract interpreter proved every
          run at its parameters trips a watchdog (sweep pre-flight
          pruning; never fired by a monitor) *)

val kind_label : kind -> string
(** ["nan"], ["amplitude"], ["stuck"], ["nrmse-budget"], ["timeout"],
    ["crashed"], ["pruned"]. *)

val kind_of_label : string -> kind option
(** Inverse of {!kind_label} — the checkpoint/protocol codecs read
    verdicts back from their serialised form. *)

type issue = { kind : kind; time : float; value : float }
(** [value] is the offending sample (for [Nrmse_budget], the streaming
    NRMSE at the moment of the breach). *)

type config = {
  amplitude_limit : float option;  (** None disables the watchdog *)
  stuck_after : int option;  (** must be >= 2 when given *)
  nrmse_budget : float option;
  nrmse_warmup : int;
      (** reference-fed samples ignored by the budget check (the first
          few steps of a transient are all start-up error) *)
}

val default_config : config
(** Only the NaN/Inf watchdog armed; [nrmse_warmup = 8]. *)

type t

val create : ?config:config -> string -> t
(** [create name] — a monitor for the signal called [name].
    @raise Invalid_argument on [stuck_after < 2] or a non-positive
    [amplitude_limit]/[nrmse_budget]. *)

val signal : t -> string

val observe : t -> time:float -> float -> unit
(** Feed one sample. *)

val observe_ref : t -> time:float -> value:float -> reference:float -> unit
(** Feed one sample together with the reference-simulator value at the
    same instant; updates the streaming NRMSE in addition to everything
    {!observe} does. *)

(** {1 Streaming statistics}

    All statistics are over the {e finite} samples seen so far (a NaN
    trips the watchdog instead of poisoning the aggregates); they
    return [nan] before the first finite sample. *)

val samples : t -> int
(** Total samples fed, finite or not. *)

val min_value : t -> float
val max_value : t -> float
val mean : t -> float
val variance : t -> float
(** Population variance (Welford). *)

val stddev : t -> float
val rms : t -> float

val nrmse : t -> float option
(** Streaming NRMSE; [None] until {!observe_ref} has been fed, or when
    the reference range is still zero. *)

(** {1 Verdict} *)

val issues : t -> issue list
(** Fired watchdogs, in firing order (at most one per kind). *)

val healthy : t -> bool
(** [issues t = []]. *)

type verdict = { v_signal : string; v_healthy : bool; v_issues : issue list }
(** A monitor's final state, detached from the monitor itself — the
    form embedded in sweep reports. *)

val verdict : t -> verdict
val issue_to_string : issue -> string
(** E.g. ["nan at t=2.5e-05 (value=nan)"]. *)

val pp_issue : Format.formatter -> issue -> unit
