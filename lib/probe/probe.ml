module Trace = Amsvp_util.Trace
module Vcd = Amsvp_util.Vcd

module Tap = struct
  type t = {
    name : string;
    var : Expr.var;
    every : int;
    times : float array;
    vals : float array;
    mutable head : int;  (* next write position *)
    mutable filled : int;  (* retained samples, <= capacity *)
    mutable seen : int;  (* samples offered *)
  }

  let make ~name ~var ~capacity ~every =
    {
      name;
      var;
      every;
      times = Array.make capacity 0.0;
      vals = Array.make capacity 0.0;
      head = 0;
      filled = 0;
      seen = 0;
    }

  let name t = t.name
  let var t = t.var
  let seen t = t.seen
  let count t = t.filled

  let offer t ~time v =
    if t.seen mod t.every = 0 then begin
      t.times.(t.head) <- time;
      t.vals.(t.head) <- v;
      t.head <- (t.head + 1) mod Array.length t.times;
      if t.filled < Array.length t.times then t.filled <- t.filled + 1
    end;
    t.seen <- t.seen + 1

  (* Oldest retained sample: [head] once wrapped, index 0 before. *)
  let nth t i =
    let cap = Array.length t.times in
    let first = if t.filled < cap then 0 else t.head in
    let j = (first + i) mod cap in
    (t.times.(j), t.vals.(j))

  let times t = Array.init t.filled (fun i -> fst (nth t i))
  let values t = Array.init t.filled (fun i -> snd (nth t i))

  let to_trace t =
    let trace = Trace.create ~capacity:(max 1 t.filled) () in
    for i = 0 to t.filled - 1 do
      let time, value = nth t i in
      Trace.add trace ~time ~value
    done;
    trace
end

type t = {
  capacity : int;
  every : int;
  mutable taps : Tap.t list;  (* reverse attachment order *)
  mutable mons : (Expr.var * Health.t) list;  (* reverse attachment order *)
}

let create ?(capacity = 65536) ?(every = 1) () =
  if capacity < 1 then invalid_arg "Probe.create: capacity must be >= 1";
  if every < 1 then invalid_arg "Probe.create: every must be >= 1";
  { capacity; every; taps = []; mons = [] }

let tap set ?name ?capacity ?every var =
  let name = match name with Some n -> n | None -> Expr.var_name var in
  let capacity = Option.value capacity ~default:set.capacity in
  let every = Option.value every ~default:set.every in
  if capacity < 1 then invalid_arg "Probe.tap: capacity must be >= 1";
  if every < 1 then invalid_arg "Probe.tap: every must be >= 1";
  if List.exists (fun t -> Tap.name t = name) set.taps then
    invalid_arg ("Probe.tap: duplicate tap name " ^ name);
  let t = Tap.make ~name ~var ~capacity ~every in
  set.taps <- t :: set.taps;
  t

let watch set ?config var =
  let m = Health.create ?config (Expr.var_name var) in
  set.mons <- (var, m) :: set.mons;
  m

let taps set = List.rev set.taps
let monitors set = List.rev_map snd set.mons
let is_empty set = set.taps = [] && set.mons = []

let sample set ~time read =
  List.iter (fun t -> Tap.offer t ~time (read (Tap.var t))) set.taps;
  List.iter (fun (v, m) -> Health.observe m ~time (read v)) set.mons

let observer set time read = sample set ~time read
let traces set = List.map (fun t -> (Tap.name t, Tap.to_trace t)) (taps set)

let to_vcd ?timescale_ps set =
  if set.taps = [] then invalid_arg "Probe.to_vcd: no taps";
  Vcd.to_string ?timescale_ps (traces set)

let write_vcd ?timescale_ps set path =
  let oc = open_out path in
  output_string oc (to_vcd ?timescale_ps set);
  close_out oc

let to_csv set =
  let b = Buffer.create 4096 in
  Buffer.add_string b "signal,time,value\n";
  List.iter
    (fun t ->
      let name = Tap.name t in
      for i = 0 to Tap.count t - 1 do
        let time, value = Tap.nth t i in
        Printf.bprintf b "%s,%.9g,%.17g\n" name time value
      done)
    (taps set);
  Buffer.contents b

let write_csv set path =
  let oc = open_out path in
  output_string oc (to_csv set);
  close_out oc
