(** Waveform probes: named taps over a running simulation.

    A probe set is attached to any runner exposing the generic observe
    hook ([Sfprogram.Runner.run ?observe], [Engine.spice_like ?observe],
    [Engine.eln_like ?observe], the [Amsvp_sysc.Wrap.run_*] kernels) by
    passing {!observer}. At every simulated step the hook samples each
    tapped variable through the runner's reader into a preallocated
    ring buffer, optionally decimated; afterwards the retained samples
    export as VCD (loadable in GTKWave / Surfer) or CSV.

    A ring buffer keeps the {e last} [capacity] retained samples: a run
    longer than the buffer drops the oldest samples, never the newest,
    and allocates nothing while stepping. *)

module Tap : sig
  type t

  val name : t -> string
  val var : t -> Expr.var

  val seen : t -> int
  (** Samples offered to the tap (before decimation and wrap-around). *)

  val count : t -> int
  (** Samples currently retained, [<= capacity]. *)

  val times : t -> float array
  (** Retained sample times, oldest first (fresh array). *)

  val values : t -> float array

  val to_trace : t -> Amsvp_util.Trace.t
  (** Retained samples as a trace (the repo's common waveform
      currency). *)
end

type t
(** A set of taps sampled together, plus optional health monitors. *)

val create : ?capacity:int -> ?every:int -> unit -> t
(** Defaults for taps subsequently added to this set:
    [capacity = 65536] retained samples, [every = 1] (no decimation).
    @raise Invalid_argument on [capacity < 1] or [every < 1]. *)

val tap : t -> ?name:string -> ?capacity:int -> ?every:int -> Expr.var -> Tap.t
(** Attach a tap for a variable. [name] defaults to [Expr.var_name];
    [every = k] retains one sample out of every [k] offered.
    @raise Invalid_argument on a duplicate tap name. *)

val watch : t -> ?config:Health.config -> Expr.var -> Health.t
(** Attach a health monitor fed by the same observe hook as the taps.
    The variable does not need a tap of its own. *)

val taps : t -> Tap.t list
(** In attachment order. *)

val monitors : t -> Health.t list
val is_empty : t -> bool

val sample : t -> time:float -> (Expr.var -> float) -> unit
(** Feed one step: reads every tapped / watched variable through the
    reader. Raises whatever the reader raises on an unknown variable
    (so a typo in a probe name fails loudly on the first step). *)

val observer : t -> float -> (Expr.var -> float) -> unit
(** [observer set] is [fun time read -> sample set ~time read] — the
    value to pass as [?observe] to a runner. *)

(** {1 Export} *)

val traces : t -> (string * Amsvp_util.Trace.t) list

val to_vcd : ?timescale_ps:int -> t -> string
(** All taps as a VCD document ({!Amsvp_util.Vcd}).
    @raise Invalid_argument on an empty set. *)

val write_vcd : ?timescale_ps:int -> t -> string -> unit

val to_csv : t -> string
(** Long-format CSV, one row per retained sample:
    [signal,time,value] — unambiguous even when taps use different
    decimation. Rows are grouped by tap in attachment order. *)

val write_csv : t -> string -> unit
