module Obs = Amsvp_obs.Obs

type kind =
  | Nan_or_inf
  | Amplitude
  | Stuck
  | Nrmse_budget
  | Timeout
  | Crashed
  | Pruned

let kind_label = function
  | Nan_or_inf -> "nan"
  | Amplitude -> "amplitude"
  | Stuck -> "stuck"
  | Nrmse_budget -> "nrmse-budget"
  | Timeout -> "timeout"
  | Crashed -> "crashed"
  | Pruned -> "pruned"

let kind_of_label = function
  | "nan" -> Some Nan_or_inf
  | "amplitude" -> Some Amplitude
  | "stuck" -> Some Stuck
  | "nrmse-budget" -> Some Nrmse_budget
  | "timeout" -> Some Timeout
  | "crashed" -> Some Crashed
  | "pruned" -> Some Pruned
  | _ -> None

type issue = { kind : kind; time : float; value : float }

type config = {
  amplitude_limit : float option;
  stuck_after : int option;
  nrmse_budget : float option;
  nrmse_warmup : int;
}

let default_config =
  {
    amplitude_limit = None;
    stuck_after = None;
    nrmse_budget = None;
    nrmse_warmup = 8;
  }

type t = {
  signal : string;
  config : config;
  (* streaming statistics over finite samples *)
  mutable n_total : int;
  mutable n_finite : int;
  mutable v_min : float;
  mutable v_max : float;
  mutable mean : float;
  mutable m2 : float;  (* Welford sum of squared deviations *)
  mutable sum_sq : float;  (* for RMS *)
  (* streaming NRMSE against a reference *)
  mutable n_ref : int;
  mutable err_sq : float;
  mutable ref_min : float;
  mutable ref_max : float;
  (* stuck-at run tracking *)
  mutable last : float;
  mutable run : int;
  (* fired watchdogs, newest first *)
  mutable fired : issue list;
}

let create ?(config = default_config) signal =
  (match config.amplitude_limit with
  | Some l when not (l > 0.0) ->
      invalid_arg "Health.create: amplitude_limit must be positive"
  | _ -> ());
  (match config.stuck_after with
  | Some k when k < 2 -> invalid_arg "Health.create: stuck_after must be >= 2"
  | _ -> ());
  (match config.nrmse_budget with
  | Some b when not (b > 0.0) ->
      invalid_arg "Health.create: nrmse_budget must be positive"
  | _ -> ());
  {
    signal;
    config;
    n_total = 0;
    n_finite = 0;
    v_min = infinity;
    v_max = neg_infinity;
    mean = 0.0;
    m2 = 0.0;
    sum_sq = 0.0;
    n_ref = 0;
    err_sq = 0.0;
    ref_min = infinity;
    ref_max = neg_infinity;
    last = nan;
    run = 0;
    fired = [];
  }

let signal m = m.signal

let already_fired m kind = List.exists (fun i -> i.kind = kind) m.fired

let fire m kind ~time ~value =
  if not (already_fired m kind) then begin
    m.fired <- { kind; time; value } :: m.fired;
    Obs.instant ~cat:"health"
      ~args:
        [
          ("signal", m.signal);
          ("time", Printf.sprintf "%.9g" time);
          ("value", Printf.sprintf "%.9g" value);
        ]
      ("health." ^ kind_label kind);
    if Amsvp_obs.Journal.enabled () then
      Amsvp_obs.Journal.emit ~severity:Amsvp_obs.Journal.Warn ~time
        ~cat:"health" (kind_label kind)
        [
          ("signal", Amsvp_obs.Journal.S m.signal);
          ("value", Amsvp_obs.Journal.F value);
        ]
  end

let nrmse m =
  if m.n_ref = 0 then None
  else
    let range = m.ref_max -. m.ref_min in
    if range > 0.0 then Some (sqrt (m.err_sq /. float_of_int m.n_ref) /. range)
    else None

let observe m ~time v =
  m.n_total <- m.n_total + 1;
  if Float.is_finite v then begin
    m.n_finite <- m.n_finite + 1;
    if v < m.v_min then m.v_min <- v;
    if v > m.v_max then m.v_max <- v;
    let d = v -. m.mean in
    m.mean <- m.mean +. (d /. float_of_int m.n_finite);
    m.m2 <- m.m2 +. (d *. (v -. m.mean));
    m.sum_sq <- m.sum_sq +. (v *. v);
    (match m.config.amplitude_limit with
    | Some limit when abs_float v > limit -> fire m Amplitude ~time ~value:v
    | _ -> ());
    match m.config.stuck_after with
    | None -> ()
    | Some k ->
        if v = m.last then begin
          m.run <- m.run + 1;
          if m.run >= k then fire m Stuck ~time ~value:v
        end
        else begin
          m.last <- v;
          m.run <- 1
        end
  end
  else fire m Nan_or_inf ~time ~value:v

let observe_ref m ~time ~value ~reference =
  observe m ~time value;
  if Float.is_finite reference then begin
    if reference < m.ref_min then m.ref_min <- reference;
    if reference > m.ref_max then m.ref_max <- reference;
    m.n_ref <- m.n_ref + 1;
    let e = value -. reference in
    (* A non-finite sample would make every later NRMSE reading NaN;
       the NaN watchdog already reports it, so keep the error stream
       clean by clamping the contribution. *)
    if Float.is_finite e then m.err_sq <- m.err_sq +. (e *. e);
    match m.config.nrmse_budget with
    | Some budget when m.n_ref >= m.config.nrmse_warmup -> (
        match nrmse m with
        | Some e when e > budget -> fire m Nrmse_budget ~time ~value:e
        | _ -> ())
    | _ -> ()
  end

let samples m = m.n_total
let min_value m = if m.n_finite = 0 then nan else m.v_min
let max_value m = if m.n_finite = 0 then nan else m.v_max
let mean m = if m.n_finite = 0 then nan else m.mean

let variance m =
  if m.n_finite = 0 then nan else m.m2 /. float_of_int m.n_finite

let stddev m = sqrt (variance m)

let rms m =
  if m.n_finite = 0 then nan else sqrt (m.sum_sq /. float_of_int m.n_finite)

let issues m = List.rev m.fired
let healthy m = m.fired = []

type verdict = { v_signal : string; v_healthy : bool; v_issues : issue list }

let verdict m =
  { v_signal = m.signal; v_healthy = healthy m; v_issues = issues m }

let issue_to_string i =
  Printf.sprintf "%s at t=%.9g (value=%.9g)" (kind_label i.kind) i.time i.value

let pp_issue ppf i = Format.pp_print_string ppf (issue_to_string i)
