type severity = Error | Warning | Info

type span = { file : string; line : int; col : int }

let span ?(file = "<input>") line col = { file; line; col }

let pp_span ppf s = Format.fprintf ppf "%s:%d:%d" s.file s.line s.col

type finding = {
  code : string;
  severity : severity;
  message : string;
  span : span option;
  subject : string option;
}

exception Rejected of finding

type code_info = { id : string; default_severity : severity; title : string }

(* The registry is the single source of truth: the README table is
   generated from it and [finding] refuses unknown codes, so a typo in
   a pass cannot silently mint a new code. *)
let codes =
  [
    { id = "AMS001"; default_severity = Error; title = "lexical error" };
    { id = "AMS002"; default_severity = Error; title = "syntax error" };
    { id = "AMS003"; default_severity = Error; title = "elaboration error" };
    { id = "AMS010"; default_severity = Warning; title = "undeclared net" };
    { id = "AMS011"; default_severity = Warning; title = "unused declaration" };
    {
      id = "AMS012";
      default_severity = Error;
      title = "discipline or direction mismatch";
    };
    {
      id = "AMS013";
      default_severity = Warning;
      title = "duplicate contribution";
    };
    {
      id = "AMS014";
      default_severity = Warning;
      title = "self-referential contribution";
    };
    {
      id = "AMS015";
      default_severity = Error;
      title = "nested ddt/idt beyond first order";
    };
    {
      id = "AMS016";
      default_severity = Error;
      title = "parameter with zero default used as divisor";
    };
    { id = "AMS020"; default_severity = Error; title = "floating node" };
    {
      id = "AMS021";
      default_severity = Error;
      title = "devices unreachable from ground";
    };
    { id = "AMS022"; default_severity = Error; title = "voltage-source loop" };
    {
      id = "AMS023";
      default_severity = Error;
      title = "current-source cutset";
    };
    { id = "AMS024"; default_severity = Error; title = "empty circuit" };
    {
      id = "AMS030";
      default_severity = Error;
      title = "under-determined system";
    };
    {
      id = "AMS031";
      default_severity = Warning;
      title = "over-determined system";
    };
    {
      id = "AMS040";
      default_severity = Warning;
      title = "zero-delay algebraic loop";
    };
    {
      id = "AMS041";
      default_severity = Warning;
      title = "timestep exceeds estimated time constant";
    };
    {
      id = "AMS042";
      default_severity = Error;
      title = "nonlinear definition outside the linear scope";
    };
    { id = "AMS050"; default_severity = Error; title = "empty sweep spec" };
    {
      id = "AMS051";
      default_severity = Error;
      title = "malformed sweep axis or corner";
    };
    {
      id = "AMS052";
      default_severity = Error;
      title = "duplicate sweep axis parameter";
    };
    {
      id = "AMS060";
      default_severity = Error;
      title = "guaranteed division by zero";
    };
    {
      id = "AMS061";
      default_severity = Warning;
      title = "possible non-finite value reaches an output";
    };
    {
      id = "AMS062";
      default_severity = Info;
      title = "proven-constant or dead contribution";
    };
    {
      id = "AMS063";
      default_severity = Warning;
      title = "proven output bound exceeds amplitude budget";
    };
  ]

let is_code id = List.exists (fun c -> c.id = id) codes

let finding ?span ?subject severity code message =
  if not (is_code code) then
    invalid_arg (Printf.sprintf "Diag.finding: unregistered code %s" code);
  { code; severity; message; span; subject }

let error ?span ?subject code message =
  finding ?span ?subject Error code message

let warning ?span ?subject code message =
  finding ?span ?subject Warning code message

let info ?span ?subject code message = finding ?span ?subject Info code message

let with_span f s = match f.span with Some _ -> f | None -> { f with span = Some s }

type config = { werror : bool; suppress : string list }

let default_config = { werror = false; suppress = [] }

let apply cfg findings =
  let kept =
    List.filter (fun f -> not (List.mem f.code cfg.suppress)) findings
  in
  let kept =
    if cfg.werror then
      List.map
        (fun f ->
          match f.severity with
          | Warning -> { f with severity = Error }
          | Error | Info -> f)
        kept
    else kept
  in
  List.stable_sort
    (fun a b ->
      let key f =
        match f.span with
        | Some s -> (s.file, s.line, s.col, f.code)
        | None -> ("~", max_int, max_int, f.code)
      in
      compare (key a) (key b))
    kept

let error_count findings =
  List.length (List.filter (fun f -> f.severity = Error) findings)

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_text f =
  let loc =
    match f.span with
    | Some s -> Printf.sprintf "%s:%d:%d: " s.file s.line s.col
    | None -> ""
  in
  Printf.sprintf "%s%s[%s]: %s" loc (severity_name f.severity) f.code f.message

let report_to_text findings =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (to_text f);
      Buffer.add_char b '\n')
    findings;
  let count sev =
    List.length (List.filter (fun f -> f.severity = sev) findings)
  in
  Buffer.add_string b
    (Printf.sprintf "%d error(s), %d warning(s), %d info\n" (count Error)
       (count Warning) (count Info));
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)

let report_to_json ?file findings =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  (match file with
  | Some f -> Buffer.add_string b (Printf.sprintf "\"file\": %s, " (jstr f))
  | None -> ());
  Buffer.add_string b "\"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"code\": %s, \"severity\": %s, \"message\": %s"
           (jstr f.code)
           (jstr (severity_name f.severity))
           (jstr f.message));
      (match f.span with
      | Some s ->
          Buffer.add_string b
            (Printf.sprintf ", \"file\": %s, \"line\": %d, \"col\": %d"
               (jstr s.file) s.line s.col)
      | None -> ());
      (match f.subject with
      | Some s -> Buffer.add_string b (Printf.sprintf ", \"subject\": %s" (jstr s))
      | None -> ());
      Buffer.add_string b "}")
    findings;
  let count sev =
    List.length (List.filter (fun f -> f.severity = sev) findings)
  in
  Buffer.add_string b
    (Printf.sprintf "], \"errors\": %d, \"warnings\": %d}" (count Error)
       (count Warning));
  Buffer.contents b

let report_to_sarif ?(tool_version = "0.1.0") findings =
  let level = function
    | Error -> "error"
    | Warning -> "warning"
    | Info -> "note"
  in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"version\": \"2.1.0\",\n";
  Buffer.add_string b
    "  \"$schema\": \
     \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  Buffer.add_string b "  \"runs\": [\n    {\n";
  Buffer.add_string b "      \"tool\": {\n        \"driver\": {\n";
  Buffer.add_string b "          \"name\": \"amsvp\",\n";
  Buffer.add_string b
    (Printf.sprintf "          \"version\": %s,\n" (jstr tool_version));
  Buffer.add_string b "          \"rules\": [\n";
  (* Only the rules actually fired, sorted by id, each once. *)
  let fired =
    List.sort_uniq compare (List.map (fun f -> f.code) findings)
  in
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_string b ",\n";
      let title =
        match List.find_opt (fun c -> c.id = id) codes with
        | Some c -> c.title
        | None -> id
      in
      Buffer.add_string b
        (Printf.sprintf
           "            {\"id\": %s, \"shortDescription\": {\"text\": %s}}"
           (jstr id) (jstr title)))
    fired;
  Buffer.add_string b "\n          ]\n        }\n      },\n";
  Buffer.add_string b "      \"results\": [\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "        {\n";
      Buffer.add_string b
        (Printf.sprintf "          \"ruleId\": %s,\n" (jstr f.code));
      Buffer.add_string b
        (Printf.sprintf "          \"level\": %s,\n"
           (jstr (level f.severity)));
      Buffer.add_string b
        (Printf.sprintf "          \"message\": {\"text\": %s}"
           (jstr f.message));
      (match f.span with
      | Some s ->
          Buffer.add_string b ",\n          \"locations\": [\n";
          Buffer.add_string b
            (Printf.sprintf
               "            {\"physicalLocation\": {\"artifactLocation\": \
                {\"uri\": %s}, \"region\": {\"startLine\": %d, \
                \"startColumn\": %d}}}\n"
               (jstr s.file) s.line s.col);
          Buffer.add_string b "          ]"
      | None -> ());
      Buffer.add_string b "\n        }")
    findings;
  Buffer.add_string b "\n      ]\n    }\n  ]\n}\n";
  Buffer.contents b

let pp ppf f = Format.pp_print_string ppf (to_text f)
