module Diag = Amsvp_diag.Diag
module Ast = Amsvp_vams.Ast
module Lexer = Amsvp_vams.Lexer
module Parser = Amsvp_vams.Parser
module Elaborate = Amsvp_vams.Elaborate
module Vast = Amsvp_vhdlams.Vast
module Vparser = Amsvp_vhdlams.Vparser
module Velaborate = Amsvp_vhdlams.Velaborate
module Circuit = Amsvp_netlist.Circuit
module Component = Amsvp_netlist.Component
module Flow = Amsvp_core.Flow
module Check = Amsvp_core.Check
module Acquisition = Amsvp_core.Acquisition
module Enrich = Amsvp_core.Enrich
module Assemble = Amsvp_core.Assemble
module Solve = Amsvp_core.Solve

type lang = [ `Verilog_ams | `Vhdl_ams ]

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* AST passes (Verilog-AMS)                                            *)
(* ------------------------------------------------------------------ *)

type decl_kind = Knet | Kreal | Kbranch | Kparam | Kground

(* Every parameter overridden on some instance, design-wide:
   [(module, param)] keys. A parameter only consumed through overrides
   is not unused. *)
let overridden_params design =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (m : Ast.module_def) ->
      List.iter
        (fun (it : Ast.item) ->
          match it.Ast.idesc with
          | Ast.Instance { module_name; overrides; _ } ->
              List.iter
                (fun (p, _) -> Hashtbl.replace tbl (module_name, p) ())
                overrides
          | _ -> ())
        m.Ast.items)
    design;
  tbl

let ast_module_findings ~overridden (m : Ast.module_def) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let decls = Hashtbl.create 16 in
  let declare name kind span =
    if not (Hashtbl.mem decls name) then Hashtbl.add decls name (kind, span)
  in
  let dirs = Hashtbl.create 8 in
  let grounds = Hashtbl.create 4 in
  Hashtbl.replace grounds "gnd" ();
  List.iter
    (fun (it : Ast.item) ->
      let sp = it.Ast.ispan in
      match it.Ast.idesc with
      | Ast.Port_direction (d, ids) ->
          List.iter
            (fun n ->
              Hashtbl.replace dirs n d;
              declare n Knet sp)
            ids
      | Ast.Net_decl ("real", ids) -> List.iter (fun n -> declare n Kreal sp) ids
      | Ast.Net_decl (_, ids) -> List.iter (fun n -> declare n Knet sp) ids
      | Ast.Ground_decl ids ->
          List.iter
            (fun n ->
              Hashtbl.replace grounds n ();
              declare n Kground sp)
            ids
      | Ast.Branch_decl (_, names) ->
          List.iter (fun n -> declare n Kbranch sp) names
      | Ast.Parameter (name, _) -> declare name Kparam sp
      | Ast.Analog _ | Ast.Instance _ -> ())
    m.Ast.items;
  (* Usage collection. *)
  let net_uses = ref [] in
  let net_used = Hashtbl.create 16 in
  let ident_used = Hashtbl.create 16 in
  let use_net n sp =
    net_uses := (n, sp) :: !net_uses;
    Hashtbl.replace net_used n ()
  in
  let all_exprs = ref [] in
  let contribs = ref [] in
  let rec walk_expr (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.Number _ -> ()
    | Ast.Ident x -> Hashtbl.replace ident_used x ()
    | Ast.Access (_, args) -> List.iter (fun a -> use_net a e.Ast.espan) args
    | Ast.Unop (_, a) -> walk_expr a
    | Ast.Binop (_, a, b) ->
        walk_expr a;
        walk_expr b
    | Ast.Call (_, args) -> List.iter walk_expr args
    | Ast.Ternary (c, a, b) ->
        walk_expr c;
        walk_expr a;
        walk_expr b
  in
  let note e =
    all_exprs := e :: !all_exprs;
    walk_expr e
  in
  let rec walk_stmt ~cond (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Ast.Contribution (t, rhs) ->
        contribs := (t, rhs, cond, s.Ast.sspan) :: !contribs;
        note t;
        note rhs
    | Ast.Assign (_, e) -> note e
    | Ast.If (c, a, b) ->
        note c;
        List.iter (walk_stmt ~cond:true) a;
        List.iter (walk_stmt ~cond:true) b
  in
  List.iter
    (fun (it : Ast.item) ->
      match it.Ast.idesc with
      | Ast.Analog stmts -> List.iter (walk_stmt ~cond:false) stmts
      | Ast.Parameter (_, e) -> note e
      | Ast.Branch_decl ((a, b), _) ->
          use_net a it.Ast.ispan;
          use_net b it.Ast.ispan
      | Ast.Instance { connections; overrides; _ } ->
          List.iter (fun (_, net) -> use_net net it.Ast.ispan) connections;
          List.iter (fun (_, e) -> note e) overrides
      | Ast.Port_direction _ | Ast.Net_decl _ | Ast.Ground_decl _ -> ())
    m.Ast.items;
  let contribs = List.rev !contribs in
  (* AMS010: branch accesses and instance connections over undeclared
     nets. One finding per name, at its first use. *)
  let reported = Hashtbl.create 8 in
  List.iter
    (fun (n, sp) ->
      if
        (not (Hashtbl.mem decls n))
        && (not (Hashtbl.mem grounds n))
        && not (Hashtbl.mem reported n)
      then begin
        Hashtbl.replace reported n ();
        add
          (Diag.warning ~span:sp ~subject:n "AMS010"
             (Printf.sprintf "net %s is not declared in module %s" n
                m.Ast.name))
      end)
    (List.rev !net_uses);
  (* AMS011: declared but never used. *)
  Hashtbl.iter
    (fun name (kind, sp) ->
      let used =
        match kind with
        | Kground -> true
        | Knet -> Hashtbl.mem net_used name || List.mem name m.Ast.ports
        | Kbranch -> Hashtbl.mem net_used name
        | Kreal -> Hashtbl.mem ident_used name
        | Kparam ->
            Hashtbl.mem ident_used name
            || Hashtbl.mem overridden (m.Ast.name, name)
      in
      if not used then
        let what =
          match kind with
          | Knet -> "net"
          | Kreal -> "analog variable"
          | Kbranch -> "branch"
          | Kparam -> "parameter"
          | Kground -> "ground"
        in
        add
          (Diag.warning ~span:sp ~subject:name "AMS011"
             (Printf.sprintf "%s %s is declared but never used" what name)))
    decls;
  (* AMS012/013/014 over contribution statements. *)
  let contrib_seen = Hashtbl.create 8 in
  List.iter
    (fun ((t : Ast.expr), (rhs : Ast.expr), cond, ssp) ->
      match t.Ast.edesc with
      | Ast.Access (fn, args) ->
          let target_name =
            Printf.sprintf "%s(%s)" fn (String.concat "," args)
          in
          if fn <> "V" && fn <> "I" then
            add
              (Diag.error ~span:t.Ast.espan ~subject:fn "AMS012"
                 (Printf.sprintf
                    "cannot contribute to %s: only V(...) and I(...) branch \
                     accesses are contribution targets"
                    target_name))
          else if args = [] || List.length args > 2 then
            add
              (Diag.error ~span:t.Ast.espan ~subject:target_name "AMS012"
                 (Printf.sprintf "branch access %s takes one or two nets"
                    target_name))
          else if fn = "V" then
            (* Only potential contributions conflict with an external
               driver; sourcing a current into a driven port is the
               normal conservative idiom (the driver absorbs it). *)
            List.iter
              (fun a ->
                match Hashtbl.find_opt dirs a with
                | Some Ast.Input ->
                    add
                      (Diag.error ~span:t.Ast.espan ~subject:a "AMS012"
                         (Printf.sprintf
                            "contribution to %s drives input-direction port %s"
                            target_name a))
                | _ -> ())
              args;
          (if not cond then
             match Hashtbl.find_opt contrib_seen target_name with
             | Some _ ->
                 add
                   (Diag.warning ~span:ssp ~subject:target_name "AMS013"
                      (Printf.sprintf
                         "duplicate contribution to %s; contributions \
                          accumulate"
                         target_name))
             | None -> Hashtbl.replace contrib_seen target_name ssp);
          (* AMS014: the target read back outside ddt/idt. *)
          let rec self ~under (e : Ast.expr) =
            match e.Ast.edesc with
            | Ast.Access (fn', args') when fn' = fn && args' = args ->
                not under
            | Ast.Number _ | Ast.Ident _ | Ast.Access _ -> false
            | Ast.Unop (_, a) -> self ~under a
            | Ast.Binop (_, a, b) -> self ~under a || self ~under b
            | Ast.Call (f, es) ->
                let under = under || f = "ddt" || f = "idt" in
                List.exists (self ~under) es
            | Ast.Ternary (c, a, b) ->
                self ~under c || self ~under a || self ~under b
          in
          if self ~under:false rhs then
            add
              (Diag.warning ~span:ssp ~subject:target_name "AMS014"
                 (Printf.sprintf
                    "contribution to %s reads its own target outside \
                     ddt/idt; the implicit equation is solved simultaneously"
                    target_name))
      | _ ->
          add
            (Diag.error ~span:t.Ast.espan "AMS012"
               "contribution target must be a V(...) or I(...) branch access"))
    contribs;
  (* AMS015: nested ddt/idt. *)
  let rec nested ~depth (e : Ast.expr) =
    match e.Ast.edesc with
    | Ast.Call (("ddt" | "idt") as f, es) ->
        if depth >= 1 then
          add
            (Diag.error ~span:e.Ast.espan ~subject:f "AMS015"
               (Printf.sprintf
                  "%s nested inside another derivative/integral: only \
                   first-order operators are supported"
                  f));
        List.iter (nested ~depth:(depth + 1)) es
    | Ast.Number _ | Ast.Ident _ | Ast.Access _ -> ()
    | Ast.Unop (_, a) -> nested ~depth a
    | Ast.Binop (_, a, b) ->
        nested ~depth a;
        nested ~depth b
    | Ast.Call (_, es) -> List.iter (nested ~depth) es
    | Ast.Ternary (c, a, b) ->
        nested ~depth c;
        nested ~depth a;
        nested ~depth b
  in
  List.iter (nested ~depth:0) !all_exprs;
  (* AMS016: a parameter whose declared default is 0 used as divisor. *)
  let zero_params = Hashtbl.create 4 in
  List.iter
    (fun (it : Ast.item) ->
      match it.Ast.idesc with
      | Ast.Parameter (name, { Ast.edesc = Ast.Number 0.0; _ })
      | Ast.Parameter
          ( name,
            {
              Ast.edesc =
                Ast.Unop (Ast.Neg, { Ast.edesc = Ast.Number 0.0; _ });
              _;
            } ) ->
          Hashtbl.replace zero_params name ()
      | _ -> ())
    m.Ast.items;
  let rec divcheck (e : Ast.expr) =
    (match e.Ast.edesc with
    | Ast.Binop (Ast.Div, _, ({ Ast.edesc = Ast.Ident p; _ } as den))
      when Hashtbl.mem zero_params p ->
        add
          (Diag.error ~span:den.Ast.espan ~subject:p "AMS016"
             (Printf.sprintf
                "parameter %s has declared default 0 and is used as a divisor"
                p))
    | _ -> ());
    match e.Ast.edesc with
    | Ast.Number _ | Ast.Ident _ | Ast.Access _ -> ()
    | Ast.Unop (_, a) -> divcheck a
    | Ast.Binop (_, a, b) ->
        divcheck a;
        divcheck b
    | Ast.Call (_, es) -> List.iter divcheck es
    | Ast.Ternary (c, a, b) ->
        divcheck c;
        divcheck a;
        divcheck b
  in
  List.iter divcheck !all_exprs;
  List.rev !findings

let ast_findings (design : Ast.design) =
  let overridden = overridden_params design in
  List.concat_map (ast_module_findings ~overridden) design

(* ------------------------------------------------------------------ *)
(* Elaborated-model passes (shared by both front-ends)                 *)
(* ------------------------------------------------------------------ *)

let sanitize =
  String.map (fun ch ->
      if ch = '(' || ch = ')' || ch = ',' || ch = '.' then '_' else ch)

let has_error fs = List.exists (fun f -> f.Diag.severity = Diag.Error) fs

let ams003 (msg, sp) = Diag.finding ?span:sp Diag.Error "AMS003" msg

(* ------------------------------------------------------------------ *)
(* Semantic value-range passes (abstract interpretation)               *)
(* ------------------------------------------------------------------ *)

(* Once a route produced a signal-flow program, run the abstract
   interpreter over it with every input confined to ±input_bound (the
   unit box by default, so AMS061 reports structural hazards rather
   than unbounded-stimulus overflow) and turn the proven facts into
   findings. *)
let absint_findings ?amplitude_budget ?(input_bound = 1.0)
    ?(report_dead = true) ~span_of_target (program : Amsvp_sf.Sfprogram.t) =
  match
    Absint.analyze
      ~inputs:
        (List.map
           (fun s -> (s, Absint.interval (-.input_bound) input_bound))
           program.Amsvp_sf.Sfprogram.inputs)
      program
  with
  | exception _ -> []
  | a ->
      let add_span (v : Expr.var) f =
        match span_of_target v with
        | Some sp -> Diag.with_span f sp
        | None -> f
      in
      (* Generated helper quantities (observation probes and the like)
         carry a [__] prefix; their values are machinery, not model. *)
      let internal (v : Expr.var) =
        let pre s = String.length s >= 2 && s.[0] = '_' && s.[1] = '_' in
        match v.Expr.base with
        | Expr.Potential (a, b) | Expr.Flow (a, b) -> pre a || pre b
        | Expr.Signal s | Expr.Param s -> pre s
      in
      let div60 =
        List.filter (fun v -> not (internal v)) a.Absint.a_div_sure
        |> List.map (fun (v : Expr.var) ->
               add_span v
                 (Diag.error ~subject:(Expr.var_name v) "AMS060"
                    (Printf.sprintf
                       "division by zero is guaranteed in the definition of \
                        %s (the divisor is provably zero at every step)"
                       (Expr.var_name v))))
      in
      let nonfinite61 =
        List.filter_map
          (fun ((o : Expr.var), itv) ->
            if Absint.may_non_finite itv then
              Some
                (add_span o
                   (Diag.warning ~subject:(Expr.var_name o) "AMS061"
                      (Printf.sprintf
                         "output %s may reach a non-finite value (proven \
                          range: %s)"
                         (Expr.var_name o) (Absint.to_string itv))))
            else None)
          a.Absint.a_outputs
      in
      let is_output t =
        List.exists (Expr.equal_var t) program.Amsvp_sf.Sfprogram.outputs
      in
      let const62 =
        List.filter_map
          (fun ((t : Expr.var), itv) ->
            match Absint.singleton itv with
            | Some c when (not (is_output t)) && not (internal t) ->
                Some
                  (add_span t
                     (Diag.info ~subject:(Expr.var_name t) "AMS062"
                        (Printf.sprintf
                           "%s is provably the constant %g at every step"
                           (Expr.var_name t) c)))
            | _ -> None)
          a.Absint.a_targets
      in
      let dead62 =
        if not report_dead then []
        else
          List.filter (fun v -> not (internal v)) a.Absint.a_dead
          |> List.map (fun (t : Expr.var) ->
                 add_span t
                   (Diag.info ~subject:(Expr.var_name t) "AMS062"
                      (Printf.sprintf
                         "%s contributes to no output (dead definition)"
                         (Expr.var_name t))))
      in
      let budget63 =
        match amplitude_budget with
        | None -> []
        | Some b ->
            List.filter_map
              (fun ((o : Expr.var), itv) ->
                if
                  Absint.has_finite itv
                  && (itv.Absint.hi > b || itv.Absint.lo < -.b)
                then
                  Some
                    (add_span o
                       (Diag.warning ~subject:(Expr.var_name o) "AMS063"
                          (Printf.sprintf
                             "proven bound of output %s is [%g, %g], \
                              exceeding the amplitude budget %g"
                             (Expr.var_name o) itv.Absint.lo itv.Absint.hi b)))
                else None)
              a.Absint.a_outputs
      in
      div60 @ nonfinite61 @ const62 @ dead62 @ budget63

(* The ground-connected part of a circuit: devices with both terminals
   reachable from ground. Lets the deeper passes run even when a
   floating island was diagnosed. *)
let grounded_subcircuit circuit =
  let devices = Circuit.devices circuit in
  let adj = Hashtbl.create 16 in
  let link a b =
    Hashtbl.replace adj a (b :: (try Hashtbl.find adj a with Not_found -> []))
  in
  List.iter
    (fun (d : Component.t) ->
      link d.Component.pos d.Component.neg;
      link d.Component.neg d.Component.pos)
    devices;
  let visited = Hashtbl.create 16 in
  let rec visit n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      List.iter visit (try Hashtbl.find adj n with Not_found -> [])
    end
  in
  visit (Circuit.ground circuit);
  let keep =
    List.filter
      (fun (d : Component.t) ->
        Hashtbl.mem visited d.Component.pos
        && Hashtbl.mem visited d.Component.neg)
      devices
  in
  if List.length keep = List.length devices then circuit
  else begin
    let c = Circuit.create ~ground:(Circuit.ground circuit) () in
    List.iter (Circuit.add c) keep;
    c
  end

let conservative_findings ?amplitude_budget ?input_bound ~outputs ~dt
    (flat : Elaborate.flat) =
  match Elaborate.to_circuit flat with
  | exception Elaborate.Elab_error (msg, sp) -> [ ams003 (msg, sp) ]
  | circuit ->
      (* Span resolution: a topology or solvability finding names a
         device or node; point it at the first contribution that
         created that device (device names are the sanitised flow id)
         or touched that node. *)
      let dev_span = Hashtbl.create 16 and node_span = Hashtbl.create 16 in
      List.iter
        (fun (c : Elaborate.contribution) ->
          let name = sanitize c.Elaborate.branch.Elaborate.flow_id in
          if not (Hashtbl.mem dev_span name) then
            Hashtbl.add dev_span name c.Elaborate.span;
          let note_node n =
            if not (Hashtbl.mem node_span n) then
              Hashtbl.add node_span n c.Elaborate.span
          in
          note_node c.Elaborate.branch.Elaborate.pos;
          note_node c.Elaborate.branch.Elaborate.neg;
          (* Sensed-only nets (controlled-source references) appear in
             the rhs but on no branch; map them too so a solvability
             finding about them points at the sensing contribution. *)
          Expr.Var_set.iter
            (fun (v : Expr.var) ->
              match v.Expr.base with
              | Expr.Potential (a, b) ->
                  note_node a;
                  note_node b
              | Expr.Flow _ | Expr.Signal _ | Expr.Param _ -> ())
            (Expr.vars c.Elaborate.rhs))
        flat.Elaborate.contributions;
      let span_of_subject s =
        match Hashtbl.find_opt dev_span s with
        | Some sp -> Some sp
        | None -> Hashtbl.find_opt node_span s
      in
      let span_of_var (v : Expr.var) =
        match v.Expr.base with
        | Expr.Flow (n, _) -> Hashtbl.find_opt dev_span n
        | Expr.Potential (a, b) -> (
            match Hashtbl.find_opt node_span a with
            | Some sp -> Some sp
            | None -> Hashtbl.find_opt node_span b)
        | Expr.Signal _ | Expr.Param _ -> None
      in
      let attach f =
        match (f.Diag.span, f.Diag.subject) with
        | None, Some s -> (
            match span_of_subject s with
            | Some sp -> Diag.with_span f sp
            | None -> f)
        | _ -> f
      in
      let topo = List.map attach (Circuit.diagnose circuit) in
      (* Degrade gracefully: a floating island (AMS020/021) does not
         block the solvability passes — they run on the grounded part
         of the network. Source loops/cutsets (AMS022/023) make the
         remaining system singular by construction, so deeper passes
         would only repeat them. *)
      let blocking =
        List.exists
          (fun f ->
            f.Diag.severity = Diag.Error
            && (f.Diag.code = "AMS022" || f.Diag.code = "AMS023"))
          topo
      in
      let circuit = grounded_subcircuit circuit in
      if blocking || Circuit.device_count circuit = 0 then topo
      else begin
        match
          let probed = Flow.insert_probes circuit ~outputs in
          let acq = Acquisition.of_circuit probed in
          let map, _stats = Enrich.enrich acq in
          let solv = Check.solvability ~span_of:span_of_var map ~outputs in
          if has_error solv then solv
          else begin
            let asm_outputs =
              (* Default to the ground-referenced node voltages: asking
                 for every branch potential forces Assemble to define
                 the floating ones algebraically, which hides the state
                 form (and its time constants) from the safety pass. *)
              if outputs <> [] then outputs
              else begin
                let g = Circuit.ground probed in
                let all =
                  List.map Component.potential_var (Circuit.devices probed)
                  |> List.sort_uniq Expr.compare_var
                in
                let grounded =
                  List.filter
                    (fun (v : Expr.var) ->
                      match v.Expr.base with
                      | Expr.Potential (_, b) -> b = g
                      | _ -> false)
                    all
                in
                if grounded <> [] then grounded else all
              end
            in
            let inputs = Circuit.input_signals probed in
            match Assemble.assemble map ~inputs ~outputs:asm_outputs with
            | exception Assemble.No_definition v ->
                solv
                @ [
                    Diag.error ?span:(span_of_var v)
                      ~subject:(Expr.var_name v) "AMS030"
                      (Printf.sprintf
                         "no consistent set of equations defines %s"
                         (Expr.var_name v));
                  ]
            | asm ->
                (* Matching is necessary, not sufficient: run the solver
                   to catch a rank-deficient definition choice the same
                   way the flow's own gate does. *)
                let late =
                  match
                    Solve.solve_with_plan ~mode:`Auto
                      ~integration:`Backward_euler ~name:"lint" ~dt asm
                  with
                  | _ -> []
                  | exception Solve.Underdetermined msg ->
                      [
                        Diag.error "AMS030"
                          (Printf.sprintf "underdetermined system (%s)" msg);
                      ]
                  | exception Solve.Nonlinear v ->
                      [
                        Diag.error
                          ?span:(span_of_var v)
                          ~subject:(Expr.var_name v) "AMS042"
                          (Printf.sprintf
                             "nonlinear definition for %s (outside the \
                              linear scope)"
                             (Expr.var_name v));
                      ]
                in
                let base =
                  solv @ late
                  @ Check.abstraction_safety ~span_of:span_of_var ~dt asm
                in
                (* value-range passes, on the very program the flow
                   would hand the execution engines *)
                let sem =
                  if has_error base then []
                  else
                    match
                      Flow.abstract_circuit ~name:"lint" probed
                        ~outputs:asm_outputs ~dt
                    with
                    | report ->
                        (* the solver emits auxiliary definitions (branch
                           currents, potential differences) that are
                           legitimately unused — dead-code reporting is
                           for user-written assignments only *)
                        absint_findings ?amplitude_budget ?input_bound
                          ~report_dead:false ~span_of_target:span_of_var
                          report.Flow.program
                    | exception _ -> []
                in
                base @ sem
          end
        with
        | deep -> topo @ deep
        | exception Invalid_argument msg -> topo @ [ Diag.error "AMS030" msg ]
      end

let signal_flow_findings ?amplitude_budget ?input_bound ~outputs ~dt top
    (flat : Elaborate.flat) =
  match Elaborate.signal_flow_assignments flat with
  | exception Elaborate.Elab_error (msg, sp) -> [ ams003 (msg, sp) ]
  | assigns ->
      let spans =
        List.map
          (fun (c : Elaborate.contribution) -> c.Elaborate.span)
          flat.Elaborate.contributions
      in
      let pairs = List.combine assigns spans in
      let inputs = flat.Elaborate.input_ports in
      let target_bases =
        List.map (fun ((v : Expr.var), _) -> v.Expr.base) assigns
      in
      let is_defined (v : Expr.var) =
        match v.Expr.base with
        | Expr.Signal s -> List.mem s inputs
        | Expr.Param _ -> true
        | base -> List.mem base target_bases
      in
      (* AMS030: a quantity read but neither an input nor a target. *)
      let seen = Hashtbl.create 8 in
      let undefined =
        List.concat_map
          (fun ((_, rhs), sp) ->
            Expr.Var_set.elements (Expr.vars rhs)
            |> List.filter_map (fun (v : Expr.var) ->
                   let name = Expr.var_name { v with Expr.delay = 0 } in
                   if is_defined v || Hashtbl.mem seen name then None
                   else begin
                     Hashtbl.replace seen name ();
                     Some
                       (Diag.error ~span:sp ~subject:name "AMS030"
                          (Printf.sprintf
                             "quantity %s is read but never defined" name))
                   end))
          pairs
      in
      if undefined <> [] then undefined
      else begin
        (* Outputs of the converted program: the caller's choice, else
           the targets driving declared output ports, else everything —
           the narrower the output set, the more the value-range passes
           can say about interior quantities (constants, dead code). *)
        let drives_port (v : Expr.var) =
          let port n = List.mem n flat.Elaborate.output_ports in
          match v.Expr.base with
          | Expr.Potential (a, b) | Expr.Flow (a, b) -> port a || port b
          | Expr.Signal s -> port s
          | Expr.Param _ -> false
        in
        let port_outs =
          List.filter_map
            (fun ((t : Expr.var), _) -> if drives_port t then Some t else None)
            assigns
        in
        let outs =
          if outputs <> [] then outputs
          else if port_outs <> [] then port_outs
          else List.map fst assigns
        in
        match
          Flow.convert_signal_flow ~name:top ~inputs ~outputs:outs
            ~contributions:assigns ~dt
        with
        | program ->
            (* value-range passes over the converted program; span each
               finding at the contribution that defined its target *)
            let span_of_target (v : Expr.var) =
              List.find_map
                (fun (((t : Expr.var), _), sp) ->
                  if Expr.equal_var t v then Some sp else None)
                pairs
            in
            absint_findings ?amplitude_budget ?input_bound ~span_of_target
              program
        | exception Solve.Nonlinear v ->
            [
              Diag.error ~subject:(Expr.var_name v) "AMS042"
                (Printf.sprintf
                   "nonlinear self-reference on %s is outside the linear \
                    abstraction scope"
                   (Expr.var_name v));
            ]
        | exception Solve.Underdetermined msg -> [ Diag.error "AMS030" msg ]
        | exception Invalid_argument msg ->
            let code =
              if
                contains_substring msg "never assigned"
                || contains_substring msg "unknown quantity"
              then "AMS030"
              else "AMS040"
            in
            (* Fatal on this route: the direct conversion has no
               simultaneous solve to fall back on. *)
            [ Diag.error code msg ]
      end

let flat_findings ?amplitude_budget ?input_bound ~outputs ~dt top
    (flat : Elaborate.flat) =
  match Elaborate.classify flat with
  | `Conservative ->
      conservative_findings ?amplitude_budget ?input_bound ~outputs ~dt flat
  | `Signal_flow ->
      signal_flow_findings ?amplitude_budget ?input_bound ~outputs ~dt top flat

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let lint ?(lang = `Verilog_ams) ?top ?(inputs = []) ?(outputs = [])
    ?(dt = 50e-9) ?amplitude_budget ?input_bound ~file src =
  match lang with
  | `Verilog_ams -> (
      match Parser.parse ~file src with
      | exception Lexer.Lex_error (msg, line, col) ->
          [ Diag.error ~span:(Diag.span ~file line col) "AMS001" msg ]
      | exception Parser.Parse_error (msg, line, col) ->
          [ Diag.error ~span:(Diag.span ~file line col) "AMS002" msg ]
      | [] -> [ Diag.error "AMS003" "design contains no modules" ]
      | design ->
          let ast = ast_findings design in
          let top =
            match top with
            | Some t -> t
            | None -> (List.hd (List.rev design)).Ast.name
          in
          let deep =
            match Elaborate.flatten design ~top with
            | exception Elaborate.Elab_error (msg, sp) -> [ ams003 (msg, sp) ]
            | flat ->
                flat_findings ?amplitude_budget ?input_bound ~outputs ~dt top
                  flat
          in
          ast @ deep)
  | `Vhdl_ams -> (
      match Vparser.parse ~file src with
      | exception Vparser.Parse_error (msg, line, col) ->
          [ Diag.error ~span:(Diag.span ~file line col) "AMS002" msg ]
      | design -> (
          let entities =
            List.filter_map
              (function Vast.Entity e -> Some e.Vast.ename | _ -> None)
              design
          in
          let top =
            match (top, List.rev entities) with
            | Some t, _ -> Some t
            | None, e :: _ -> Some e
            | None, [] -> None
          in
          match top with
          | None -> [ Diag.error "AMS003" "design contains no entities" ]
          | Some top -> (
              match Velaborate.flatten design ~top ~inputs with
              | exception Velaborate.Elab_error (msg, sp) ->
                  [ ams003 (msg, sp) ]
              | flat ->
                  flat_findings ?amplitude_budget ?input_bound ~outputs ~dt
                    top flat)))
