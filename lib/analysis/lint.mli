(** The multi-pass static analyzer behind [amsvp lint].

    One entry point runs every pass the source admits, in pipeline
    order, accumulating {!Amsvp_diag.Diag} findings instead of raising:

    + {b front-end} — lexing ([AMS001]) and parsing ([AMS002]) errors,
      with their [file:line:col];
    + {b AST passes} (Verilog-AMS only — the VHDL-AMS subset declares
      quantities implicitly, so the equivalent mistakes surface during
      elaboration): undeclared nets ([AMS010]), unused declarations
      ([AMS011]), malformed or direction-violating branch accesses
      ([AMS012]), duplicate ([AMS013]) and self-referential ([AMS014])
      contributions, nested [ddt]/[idt] ([AMS015]) and parameters with
      default 0 used as divisors ([AMS016]);
    + {b elaboration} — hierarchy errors become located [AMS003]
      findings;
    + {b topology} — {!Amsvp_netlist.Circuit.diagnose} over the
      recognised network ([AMS020]–[AMS024]), with each finding's
      subject resolved back to the span of the contribution that
      created the device or node;
    + {b structural solvability} — {!Amsvp_core.Check.solvability} over
      the enriched equation map ([AMS030]/[AMS031]);
    + {b abstraction safety} — {!Amsvp_core.Check.abstraction_safety}
      over the assembled definitions ([AMS040]/[AMS041]); on the
      signal-flow route, reads of never-defined quantities are
      [AMS030] and zero-delay ordering violations are [AMS040] errors
      (they are fatal to the direct conversion);
    + {b value ranges} — once a route yields a signal-flow program
      with no errors, {!Absint} analyses it to a widened fixpoint with
      inputs confined to [±input_bound]: guaranteed division by zero
      ([AMS060]), possible NaN/infinity at an output ([AMS061]),
      proven-constant or dead definitions ([AMS062]) and proven output
      bounds beyond the declared amplitude budget ([AMS063]).

    Passes degrade gracefully: an error at one stage skips the stages
    that depend on it but never the independent ones, so one run
    reports as much as the model admits. *)

type lang = [ `Verilog_ams | `Vhdl_ams ]

val absint_findings :
  ?amplitude_budget:float ->
  ?input_bound:float ->
  ?report_dead:bool ->
  span_of_target:(Expr.var -> Amsvp_diag.Diag.span option) ->
  Amsvp_sf.Sfprogram.t ->
  Amsvp_diag.Diag.finding list
(** The value-range pass alone, over an already-obtained signal-flow
    program: AMS060–AMS063 as in {!lint}. [report_dead] (default true)
    controls the dead-definition half of AMS062 — turn it off for
    solver-generated programs whose auxiliary definitions are
    legitimately unused. [span_of_target] anchors findings to source
    spans when the caller knows them ([fun _ -> None] otherwise). The
    sweep service uses this to screen a prepared sweep without
    re-parsing any source. *)

val lint :
  ?lang:lang ->
  ?top:string ->
  ?inputs:string list ->
  ?outputs:Expr.var list ->
  ?dt:float ->
  ?amplitude_budget:float ->
  ?input_bound:float ->
  file:string ->
  string ->
  Amsvp_diag.Diag.finding list
(** [lint ~file src] analyses the source text. [lang] defaults to
    [`Verilog_ams]; [top] to the last module (entity) of the design;
    [inputs] (VHDL-AMS only) to []]; [outputs] to every branch
    potential of the recognised network; [dt] to [50e-9].
    [amplitude_budget] declares the |output| budget [AMS063] checks
    (absent: the pass is off); [input_bound] confines every input
    signal to [±input_bound] for the value-range passes (default 1).
    The result is unfiltered and unsorted — pass it through
    {!Amsvp_diag.Diag.apply} with the desired configuration. *)
