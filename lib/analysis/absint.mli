(** Sound abstract interpretation of signal-flow programs.

    The domain is an interval over the {e finite} doubles extended with
    three independent possibility flags for NaN, [+inf] and [-inf]: the
    concretisation of [{lo; hi; nan; pinf; ninf}] is
    [[lo, hi] ∪ {NaN if nan} ∪ {+inf if pinf} ∪ {-inf if ninf}].
    Endpoints are computed with ordinary round-to-nearest operations
    and nudged outward by the involved rounding steps, so every value
    either execution engine can produce is inside the abstraction.

    Two analyses are built on the domain:

    - {!analyze} runs the program's step function abstractly (inputs,
      assignments in order, history rotations) to a widened fixpoint —
      a MAY analysis whose per-target ranges over-approximate every
      reachable value, powering the AMS06x lint passes and the
      proven-constant facts {!Amsvp_sf.Compile} folds;
    - {!prove_unhealthy} follows the exact step sequence without
      joining across steps — a MUST analysis: when the whole abstract
      output at some step is non-finite (or finite but beyond the
      amplitude budget), {e every} concrete run in the analysed box
      trips the corresponding health watchdog, which is what lets the
      sweep engine skip provably-bad parameter sub-regions. *)

module Sfprogram = Amsvp_sf.Sfprogram
module Compile = Amsvp_sf.Compile

(** {1 Domain} *)

type itv = {
  lo : float;  (** finite lower bound; [lo > hi] encodes "no finite value" *)
  hi : float;  (** finite upper bound *)
  nan : bool;  (** NaN is a possible value *)
  pinf : bool;  (** [+inf] is a possible value *)
  ninf : bool;  (** [-inf] is a possible value *)
}

val bot : itv
(** The empty set (unreachable). *)

val top : itv
(** Every double. *)

val const : float -> itv
(** The singleton — non-finite values land in the flags. *)

val interval : float -> float -> itv
(** [interval lo hi]: all values in the closed range; infinite
    endpoints set the corresponding flag.
    @raise Invalid_argument on NaN endpoints or [lo > hi]. *)

val fin : float -> float -> itv
(** Unchecked finite range (internal constructor, exposed for tests). *)

val join : itv -> itv -> itv
val widen : itv -> itv -> itv
(** [widen old next] jumps unstable bounds to the next magnitude
    threshold, guaranteeing fixpoint termination. *)

val leq : itv -> itv -> bool
val mem : float -> itv -> bool
(** [mem v i]: is the concrete value [v] (NaN and infinities included)
    inside the concretisation of [i]? The soundness relation. *)

val is_bot : itv -> bool
val has_finite : itv -> bool
val has_flag : itv -> bool
(** Some non-finite value (NaN or an infinity) is possible. *)

val singleton : itv -> float option
(** [Some c] when the abstraction proves the value is exactly the
    finite constant [c] (no flags, [lo = hi]). *)

val may_non_finite : itv -> bool
val may_zero : itv -> bool

val definitely_non_finite : itv -> bool
(** No finite value is possible, yet some value is — every concrete
    outcome is NaN or an infinity. *)

val definitely_unhealthy :
  ?amplitude:float -> itv -> [ `Nonfinite | `Amplitude ] option
(** Every concrete value in the abstraction would trip a health
    watchdog: it is non-finite, or finite with magnitude strictly
    above [amplitude]. [None] on [bot] (no value — nothing provable)
    or whenever a healthy value remains possible. *)

val to_string : itv -> string
val pp : Format.formatter -> itv -> unit

(** {1 Transfer functions} *)

val neg : itv -> itv
val add : itv -> itv -> itv
val sub : itv -> itv -> itv
val mul : itv -> itv -> itv
val div : itv -> itv -> itv
val app : Expr.unary_fun -> itv -> itv

val eval : (Expr.var -> itv) -> Expr.t -> itv
(** Abstract evaluation of one expression under an environment.
    @raise Invalid_argument on [ddt]/[idt] nodes. *)

(** {1 Whole-program MAY analysis} *)

type analysis = {
  a_program : Sfprogram.t;
  a_inputs : (string * itv) list;  (** the input box the analysis assumed *)
  a_targets : (Expr.var * itv) list;
      (** per-assignment value range, sound for every step of every
          concrete run with inputs inside the box *)
  a_outputs : (Expr.var * itv) list;
      (** per-output trace range (includes the initial 0 sample) *)
  a_div_sure : Expr.var list;
      (** assignments containing a division whose divisor is provably
          zero at every step *)
  a_div_may : Expr.var list;
      (** assignments containing a division whose divisor may be zero *)
  a_dead : Expr.var list;
      (** assignment targets with no path to any output *)
  a_steps : int;  (** exact abstract steps taken before stabilisation *)
  a_widened : bool;  (** widening (or the top fallback) was needed *)
}

val default_input_box : itv
(** [[-1, 1]] — the unit box assumed for inputs not named by the
    caller, keeping AMS061 about structural hazards rather than
    unbounded-stimulus overflow. *)

val analyze :
  ?max_steps:int -> ?inputs:(string * itv) list -> Sfprogram.t -> analysis
(** Fixpoint analysis: exact abstract steps while new states appear
    (at most [max_steps], default 64), then widening iterations until
    the accumulated state is inductive. Inputs default to
    {!default_input_box} per input signal. *)

val dead_targets : Sfprogram.t -> Expr.var list
(** The demand analysis of {!analysis.a_dead} alone (no fixpoint). *)

val constant_facts : analysis -> (int * float) list
(** Slots proven to hold one finite nonzero constant at every step —
    the [?facts] input of {!Amsvp_sf.Sfprogram.compile} /
    {!Amsvp_sf.Compile.compile}. Zero is excluded: the domain cannot
    distinguish signed zeros, and the engines' folding must stay
    bit-identical. *)

(** {1 Step-accurate MUST proofs} *)

type bad = {
  b_kind : [ `Nonfinite | `Amplitude ];
  b_step : int;  (** first step whose output is provably unhealthy *)
  b_time : float;  (** [b_step * dt] *)
}

val prove_unhealthy :
  ?max_steps:int ->
  ?amplitude:float ->
  ?pool:itv array ->
  ?output:int ->
  inputs:(int -> itv array) ->
  Sfprogram.t ->
  bad option
(** Follow the exact abstract step sequence (no joins across steps,
    at most [max_steps], default 256) and return the first step at
    which output [output] (default 0) is {!definitely_unhealthy}.
    [inputs k] gives the abstract inputs of step [k] (1-based) —
    exact singletons when the stimulus is known. [pool] positionally
    overrides literal constants in [Compile.collect_consts] order
    (a [`Template] pool hull), letting one run cover a whole family
    of rebound programs. [Some _] is a proof that {e every} concrete
    run in the box is reported unhealthy; [None] proves nothing. *)

val prove_unhealthy_compiled :
  ?max_steps:int ->
  ?amplitude:float ->
  ?pool:itv array ->
  ?output:int ->
  inputs:(int -> itv array) ->
  Sfprogram.t ->
  Compile.t ->
  bad option
(** The same proof executed over the compiled bytecode through
    {!Compile.exec_with} — the very artifact (template pools included)
    the sweep engine runs. [pool] defaults to the artifact's own
    constants.
    @raise Invalid_argument on an artifact/program slot mismatch or a
    wrong pool size. *)
