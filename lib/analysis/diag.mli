(** Source-located diagnostics for AMS models and the abstraction flow.

    Every front-end, topology, solvability and abstraction-safety check
    reports through this one scheme: a stable code ([AMS001]...), a
    severity, a message and — whenever the finding can be traced back
    to the source text — a [file:line:col] span. Findings render both
    as compiler-style text and as machine-readable JSON ([amsvp lint
    --format json]), and a configuration controls per-code suppression
    and warnings-as-errors. *)

type severity = Error | Warning | Info

type span = { file : string; line : int; col : int }
(** A source position. [file] is ["<input>"] for in-memory sources. *)

val span : ?file:string -> int -> int -> span
val pp_span : Format.formatter -> span -> unit
(** Rendered as [file:line:col]. *)

type finding = {
  code : string;  (** stable diagnostic code, e.g. ["AMS020"] *)
  severity : severity;
  message : string;
  span : span option;  (** source anchor, when one is known *)
  subject : string option;
      (** the offending object in machine-readable form — a net, device,
          parameter or quantity name — letting later passes attach a
          span the reporting layer did not know *)
}

exception Rejected of finding
(** Raised by pre-flight gates (e.g. {!val:Amsvp_core.Flow} via its
    checks) instead of a deep solver exception. *)

val finding :
  ?span:span -> ?subject:string -> severity -> string -> string -> finding
(** [finding sev code message]. @raise Invalid_argument on an unknown
    code (codes must be registered in {!codes}). *)

val error : ?span:span -> ?subject:string -> string -> string -> finding
val warning : ?span:span -> ?subject:string -> string -> string -> finding
val info : ?span:span -> ?subject:string -> string -> string -> finding

val with_span : finding -> span -> finding
(** Attach a span to a finding that lacks one (no-op when present). *)

(** {1 The code registry} *)

type code_info = { id : string; default_severity : severity; title : string }

val codes : code_info list
(** Every registered diagnostic code, sorted by id — the reference
    table rendered in the README. *)

val is_code : string -> bool

(** {1 Reports} *)

type config = {
  werror : bool;  (** treat warnings as errors *)
  suppress : string list;  (** codes to drop entirely *)
}

val default_config : config

val apply : config -> finding list -> finding list
(** Drop suppressed codes, upgrade warnings under [werror], and sort by
    (file, line, col, code). *)

val error_count : finding list -> int
(** Findings with [Error] severity (after {!apply}, this is what decides
    a non-zero exit). *)

val severity_name : severity -> string

val to_text : finding -> string
(** One compiler-style line:
    [file:line:col: severity[CODE]: message]. *)

val report_to_text : finding list -> string
(** One line per finding plus a trailing summary line. *)

val report_to_json : ?file:string -> finding list -> string
(** [{ "file": ..., "findings": [ {code, severity, message, file, line,
    col, subject} ], "errors": n, "warnings": n }]. *)

val report_to_sarif : ?tool_version:string -> finding list -> string
(** SARIF 2.1.0 ([amsvp lint --format sarif]): one run, the fired rule
    ids with their registry titles under [tool.driver.rules], one
    result per finding with severity mapped to
    [error]/[warning]/[note] and the span (when known) as a
    [physicalLocation]. Findings should already be ordered by
    {!apply}. *)

val pp : Format.formatter -> finding -> unit
