module Sfprogram = Amsvp_sf.Sfprogram
module Compile = Amsvp_sf.Compile

(* ---- the interval-with-flags domain ---- *)

type itv = {
  lo : float;  (** finite lower bound; [lo > hi] encodes "no finite value" *)
  hi : float;
  nan : bool;
  pinf : bool;
  ninf : bool;
}

let bot = { lo = infinity; hi = neg_infinity; nan = false; pinf = false; ninf = false }
let top = { lo = -.max_float; hi = max_float; nan = true; pinf = true; ninf = true }

let no_finite i = i.lo > i.hi
let has_finite i = i.lo <= i.hi
let has_flag i = i.nan || i.pinf || i.ninf
let is_bot i = no_finite i && not (has_flag i)

let fin lo hi = { lo; hi; nan = false; pinf = false; ninf = false }

let const c =
  if Float.is_nan c then { bot with nan = true }
  else if c = infinity then { bot with pinf = true }
  else if c = neg_infinity then { bot with ninf = true }
  else fin c c

let interval lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg "Absint.interval: need lo <= hi, non-NaN";
  let ninf = lo = neg_infinity and pinf = hi = infinity in
  let lo = if lo = neg_infinity then -.max_float else lo in
  let hi = if hi = infinity then max_float else hi in
  { lo; hi; nan = false; pinf; ninf }

let join a b =
  {
    lo = min a.lo b.lo;
    hi = max a.hi b.hi;
    nan = a.nan || b.nan;
    pinf = a.pinf || b.pinf;
    ninf = a.ninf || b.ninf;
  }

let leq a b =
  (no_finite a || (has_finite b && a.lo >= b.lo && a.hi <= b.hi))
  && ((not a.nan) || b.nan)
  && ((not a.pinf) || b.pinf)
  && ((not a.ninf) || b.ninf)

let mem v i =
  if Float.is_nan v then i.nan
  else if v = infinity then i.pinf
  else if v = neg_infinity then i.ninf
  else has_finite i && i.lo <= v && v <= i.hi

let singleton i =
  if has_flag i || no_finite i || i.lo <> i.hi then None else Some i.lo

let may_non_finite i = has_flag i
let may_zero i = has_finite i && i.lo <= 0.0 && 0.0 <= i.hi

let definitely_non_finite i = no_finite i && has_flag i

let definitely_unhealthy ?amplitude i =
  if is_bot i then None
  else
    let fin_bad =
      no_finite i
      ||
      match amplitude with
      | Some l -> i.lo > l || i.hi < -.l
      | None -> false
    in
    if not fin_bad then None
    else if has_flag i then Some `Nonfinite
    else Some `Amplitude

let to_string i =
  if is_bot i then "⊥"
  else
    let flags =
      (if i.nan then ["NaN"] else [])
      @ (if i.pinf then ["+inf"] else [])
      @ if i.ninf then ["-inf"] else []
    in
    let fin_s =
      if no_finite i then []
      else if i.lo = i.hi then [ Printf.sprintf "{%.17g}" i.lo ]
      else [ Printf.sprintf "[%.17g, %.17g]" i.lo i.hi ]
    in
    String.concat " ∪ " (fin_s @ flags)

let pp ppf i = Format.pp_print_string ppf (to_string i)

(* ---- outward rounding ----

   Endpoint candidates are computed with ordinary round-to-nearest
   float operations and then nudged one representable value outward per
   rounding step involved, so the abstract bound always brackets the
   exact real result the hardware approximated. Nudging past the finite
   range clamps to ±max_float: finite IEEE values cannot exceed it, and
   overflow to an infinity is tracked by the flags instead. *)

let next_up x =
  if x <> x || x = infinity then x
  else if x = 0.0 then Int64.float_of_bits 1L
  else if x > 0.0 then Int64.float_of_bits (Int64.add (Int64.bits_of_float x) 1L)
  else Int64.float_of_bits (Int64.sub (Int64.bits_of_float x) 1L)

let next_down x = -.next_up (-.x)

let nudge_up n x =
  let r = ref x in
  for _ = 1 to n do
    r := next_up !r
  done;
  if !r = infinity then max_float else !r

let nudge_down n x =
  let r = ref x in
  for _ = 1 to n do
    r := next_down !r
  done;
  if !r = neg_infinity then -.max_float else !r

(* Build a finite range (plus overflow flags) from endpoint candidates.
   A candidate that overflowed to ±inf contributes the flag and extends
   the finite bound to ±max_float (values just short of overflow are
   reachable). [slack] ulps absorb round-to-nearest error. *)
let of_cands ~slack cands =
  let nan = ref false and pinf = ref false and ninf = ref false in
  let lo = ref infinity and hi = ref neg_infinity in
  List.iter
    (fun c ->
      if Float.is_nan c then nan := true
      else
        let c =
          if c = infinity then begin
            pinf := true;
            max_float
          end
          else if c = neg_infinity then begin
            ninf := true;
            -.max_float
          end
          else c
        in
        if c < !lo then lo := c;
        if c > !hi then hi := c)
    cands;
  if !lo > !hi then { bot with nan = !nan; pinf = !pinf; ninf = !ninf }
  else
    {
      lo = nudge_down slack !lo;
      hi = nudge_up slack !hi;
      nan = !nan;
      pinf = !pinf;
      ninf = !ninf;
    }

(* ---- transfer functions ---- *)

let neg a =
  {
    lo = -.a.hi;
    hi = -.a.lo;
    nan = a.nan;
    pinf = a.ninf;
    ninf = a.pinf;
  }

(* Both operands proven to a single finite value: apply exactly the
   IEEE operation the engines perform, keeping folded constants
   bit-compatible with [Compile]'s own folding. Not used for division
   (the sign of a zero denominator flips the infinity). *)
let exact2 f a b =
  if
    has_finite a && has_finite b && a.lo = a.hi && b.lo = b.hi
    && (not (has_flag a))
    && not (has_flag b)
  then Some (const (f a.lo b.lo))
  else None

let add a b =
  if is_bot a || is_bot b then bot
  else
    match exact2 ( +. ) a b with
    | Some r -> r
    | None ->
        let fa = has_finite a and fb = has_finite b in
        let nan = a.nan || b.nan || (a.pinf && b.ninf) || (a.ninf && b.pinf) in
        let pinf = (a.pinf && (fb || b.pinf)) || (b.pinf && (fa || a.pinf)) in
        let ninf = (a.ninf && (fb || b.ninf)) || (b.ninf && (fa || a.ninf)) in
        let finp =
          if fa && fb then of_cands ~slack:1 [ a.lo +. b.lo; a.hi +. b.hi ]
          else bot
        in
        join finp { bot with nan; pinf; ninf }

let sub a b =
  if is_bot a || is_bot b then bot
  else
    match exact2 ( -. ) a b with
    | Some r -> r
    | None ->
        let fa = has_finite a and fb = has_finite b in
        let nan = a.nan || b.nan || (a.pinf && b.pinf) || (a.ninf && b.ninf) in
        let pinf = (a.pinf && (fb || b.ninf)) || (b.ninf && (fa || a.pinf)) in
        let ninf = (a.ninf && (fb || b.pinf)) || (b.pinf && (fa || a.ninf)) in
        let finp =
          if fa && fb then of_cands ~slack:1 [ a.lo -. b.hi; a.hi -. b.lo ]
          else bot
        in
        join finp { bot with nan; pinf; ninf }

let has_pos i = (has_finite i && i.hi > 0.0) || i.pinf
let has_neg i = (has_finite i && i.lo < 0.0) || i.ninf

let mul a b =
  if is_bot a || is_bot b then bot
  else
    match exact2 ( *. ) a b with
    | Some r -> r
    | None ->
        let a_inf = a.pinf || a.ninf and b_inf = b.pinf || b.ninf in
        let nan =
          a.nan || b.nan || (a_inf && may_zero b) || (b_inf && may_zero a)
        in
        let pinf =
          (a.pinf && has_pos b) || (b.pinf && has_pos a)
          || (a.ninf && has_neg b)
          || (b.ninf && has_neg a)
        in
        let ninf =
          (a.pinf && has_neg b) || (b.pinf && has_neg a)
          || (a.ninf && has_pos b)
          || (b.ninf && has_pos a)
        in
        let finp =
          if has_finite a && has_finite b then
            of_cands ~slack:1
              [ a.lo *. b.lo; a.lo *. b.hi; a.hi *. b.lo; a.hi *. b.hi ]
          else bot
        in
        join finp { bot with nan; pinf; ninf }

let div a b =
  if is_bot a || is_bot b then bot
  else
    let fa = has_finite a and fb = has_finite b in
    let a_inf = a.pinf || a.ninf and b_inf = b.pinf || b.ninf in
    let a_nonzero = (fa && (a.hi > 0.0 || a.lo < 0.0)) || a_inf in
    let nan =
      a.nan || b.nan || (a_inf && b_inf) || (may_zero a && may_zero b)
    in
    (* infinite numerator over ordered denominator; an abstract zero
       divisor carries both signs, so both infinities appear *)
    let p_num =
      (a.pinf && (has_pos b || may_zero b))
      || (a.ninf && (has_neg b || may_zero b))
    in
    let n_num =
      (a.pinf && (has_neg b || may_zero b))
      || (a.ninf && (has_pos b || may_zero b))
    in
    (* finite numerator over a denominator that can be (close to) zero *)
    let div0 = fb && may_zero b && a_nonzero in
    let pinf = p_num || div0 in
    let ninf = n_num || div0 in
    let finp =
      if not (fa && fb) then bot
      else if may_zero b then
        if b.lo = 0.0 && b.hi = 0.0 then bot
          (* nothing finite out of a provably-zero denominator *)
        else if a.lo = 0.0 && a.hi = 0.0 then const 0.0
        else fin (-.max_float) max_float
      else
        of_cands ~slack:1
          [ a.lo /. b.lo; a.lo /. b.hi; a.hi /. b.lo; a.hi /. b.hi ]
    in
    (* finite numerator over an infinite denominator underflows to zero *)
    let finp = if fa && b_inf then join finp (const 0.0) else finp in
    join finp { bot with nan; pinf; ninf }

let tiny = Int64.float_of_bits 1L

let clamp lo hi i =
  if no_finite i then i
  else { i with lo = max lo i.lo; hi = min hi i.hi }

let app f a =
  if is_bot a then bot
  else
    match
      if has_finite a && a.lo = a.hi && not (has_flag a) then
        Some (const (Expr.apply_fun f a.lo))
      else None
    with
    | Some r -> r
    | None -> (
        let fa = has_finite a in
        match f with
        | Expr.Sin | Expr.Cos ->
            (* |sin|,|cos| <= 1 for every finite argument *)
            let nan = a.nan || a.pinf || a.ninf in
            let finp = if fa then fin (-1.0) 1.0 else bot in
            join finp { bot with nan }
        | Expr.Exp ->
            let pinf = a.pinf in
            let zero = if a.ninf then const 0.0 else bot in
            let finp =
              if fa then
                clamp 0.0 max_float
                  (of_cands ~slack:2 [ exp a.lo; exp a.hi ])
              else bot
            in
            join (join finp zero) { bot with nan = a.nan; pinf }
        | Expr.Ln ->
            let nan = a.nan || (fa && a.lo < 0.0) || a.ninf in
            let ninf = fa && a.lo <= 0.0 && 0.0 <= a.hi in
            let pinf = a.pinf in
            let finp =
              if fa && a.hi > 0.0 then
                let lo_arg = if a.lo > 0.0 then a.lo else tiny in
                of_cands ~slack:2 [ log lo_arg; log a.hi ]
              else bot
            in
            join finp { bot with nan; pinf; ninf }
        | Expr.Sqrt ->
            let nan = a.nan || (fa && a.lo < 0.0) || a.ninf in
            let pinf = a.pinf in
            let finp =
              if fa && a.hi >= 0.0 then
                (* sqrt is correctly rounded: endpoints are exact *)
                fin (sqrt (max a.lo 0.0)) (sqrt a.hi)
              else bot
            in
            join finp { bot with nan; pinf }
        | Expr.Abs ->
            let nan = a.nan in
            let pinf = a.pinf || a.ninf in
            let finp =
              if not fa then bot
              else if a.lo >= 0.0 then fin a.lo a.hi
              else if a.hi <= 0.0 then fin (-.a.hi) (-.a.lo)
              else fin 0.0 (max (-.a.lo) a.hi)
            in
            join finp { bot with nan; pinf }
        | Expr.Tanh ->
            let nan = a.nan in
            let edges =
              join
                (if a.pinf then const 1.0 else bot)
                (if a.ninf then const (-1.0) else bot)
            in
            let finp =
              if fa then
                clamp (-1.0) 1.0 (of_cands ~slack:2 [ tanh a.lo; tanh a.hi ])
              else bot
            in
            join (join finp edges) { bot with nan })

(* ---- three-valued conditions ---- *)

type tbool = { may_t : bool; may_f : bool }

let cmp_abs c a b =
  if is_bot a || is_bot b then { may_t = false; may_f = false }
  else
    let ord x = has_finite x || x.pinf || x.ninf in
    let xmin x =
      if x.ninf then neg_infinity
      else if has_finite x then x.lo
      else infinity
    in
    let xmax x =
      if x.pinf then infinity
      else if has_finite x then x.hi
      else neg_infinity
    in
    let o = ord a && ord b in
    let t, f =
      match c with
      | Expr.Lt -> ((o && xmin a < xmax b), o && xmax a >= xmin b)
      | Expr.Le -> ((o && xmin a <= xmax b), o && xmax a > xmin b)
      | Expr.Gt -> ((o && xmax a > xmin b), o && xmin a <= xmax b)
      | Expr.Ge -> ((o && xmax a >= xmin b), o && xmin a < xmax b)
    in
    { may_t = t; may_f = f || a.nan || b.nan }

(* ---- widening ---- *)

let thresholds =
  [| -.max_float; -1e100; -1e9; -1e3; -1.0; 0.0; 1.0; 1e3; 1e9; 1e100; max_float |]

let widen old nw =
  let j = join old nw in
  if leq j old then old
  else
    let lo =
      if j.lo >= old.lo then old.lo
      else begin
        let r = ref (-.max_float) in
        Array.iter (fun t -> if t <= j.lo && t > !r then r := t) thresholds;
        !r
      end
    in
    let hi =
      if j.hi <= old.hi then old.hi
      else begin
        let r = ref max_float in
        Array.iter (fun t -> if t >= j.hi && t < !r then r := t) thresholds;
        !r
      end
    in
    { lo; hi; nan = j.nan; pinf = j.pinf; ninf = j.ninf }

(* ---- abstract evaluation of expression trees ----

   [pool], when given, overrides literal constants positionally in the
   left-to-right traversal order of [Compile.collect_consts] — the
   layout of a [`Template] constant pool — so one abstract run can
   cover a whole family of rebound programs at once. Both arms of a
   conditional are always walked (positions must stay aligned, and it
   matches the bytecode's eager [Sel]). *)

type eval_ctx = {
  env : itv array;
  e_slot : Expr.var -> int;
  pool : itv array option;
  mutable cpos : int;
  mutable on_div : itv -> unit;
}

let rec eval_expr ctx e =
  match e with
  | Expr.Const c -> (
      match ctx.pool with
      | Some pool ->
          let i = ctx.cpos in
          ctx.cpos <- i + 1;
          pool.(i)
      | None -> const c)
  | Expr.Var x -> ctx.env.(ctx.e_slot x)
  | Expr.Neg a -> neg (eval_expr ctx a)
  | Expr.Add (x, y) ->
      let vx = eval_expr ctx x in
      let vy = eval_expr ctx y in
      add vx vy
  | Expr.Sub (x, y) ->
      let vx = eval_expr ctx x in
      let vy = eval_expr ctx y in
      (* cancellation: e - e is +0 for every finite value of e (only
         valid without a positional pool — overridden constants may
         differ between the two occurrences) *)
      if ctx.pool = None && Stdlib.compare x y = 0 then
        let z = if has_finite vx then const 0.0 else bot in
        if has_flag vx then join z { bot with nan = true } else z
      else sub vx vy
  | Expr.Mul (x, y) ->
      let vx = eval_expr ctx x in
      let vy = eval_expr ctx y in
      mul vx vy
  | Expr.Div (x, y) ->
      let vx = eval_expr ctx x in
      let vy = eval_expr ctx y in
      ctx.on_div vy;
      div vx vy
  | Expr.Ddt _ | Expr.Idt _ ->
      invalid_arg "Absint: ddt/idt cannot be analyzed (discretise first)"
  | Expr.App (f, a) -> app f (eval_expr ctx a)
  | Expr.Cond (c, x, y) -> (
      let tb = eval_cond ctx c in
      let vx = eval_expr ctx x in
      let vy = eval_expr ctx y in
      match tb with
      | { may_t = true; may_f = false } -> vx
      | { may_t = false; may_f = true } -> vy
      | { may_t = true; may_f = true } -> join vx vy
      | { may_t = false; may_f = false } -> bot)

and eval_cond ctx c =
  match c with
  | Expr.Cmp (op, x, y) ->
      let vx = eval_expr ctx x in
      let vy = eval_expr ctx y in
      cmp_abs op vx vy
  | Expr.And (c1, c2) ->
      let a = eval_cond ctx c1 in
      let b = eval_cond ctx c2 in
      { may_t = a.may_t && b.may_t; may_f = a.may_f || b.may_f }
  | Expr.Or (c1, c2) ->
      let a = eval_cond ctx c1 in
      let b = eval_cond ctx c2 in
      { may_t = a.may_t || b.may_t; may_f = a.may_f && b.may_f }
  | Expr.Not c ->
      let a = eval_cond ctx c in
      { may_t = a.may_f; may_f = a.may_t }

let eval env e =
  let tbl = Hashtbl.create 16 in
  let next = ref 0 in
  let vals = ref [] in
  Expr.Var_set.iter
    (fun v ->
      Hashtbl.replace tbl v !next;
      vals := env v :: !vals;
      incr next)
    (Expr.vars e);
  let ctx =
    {
      env = Array.of_list (List.rev !vals);
      e_slot = (fun v -> Hashtbl.find tbl v);
      pool = None;
      cpos = 0;
      on_div = ignore;
    }
  in
  eval_expr ctx e

(* ---- whole-program analysis ---- *)

type prog = {
  program : Sfprogram.t;
  lay : Sfprogram.layout;
  assigns : (int * Expr.t) list;
  n : int;
  input_slots : int array;
  rotations : (int * int) array;
}

let prog_of p =
  let lay = Sfprogram.layout_of p in
  {
    program = p;
    lay;
    assigns = Sfprogram.assignment_slots lay p;
    n = Sfprogram.layout_count lay;
    input_slots = Sfprogram.layout_input_slots lay;
    rotations = Sfprogram.layout_rotations lay;
  }

(* One abstract step over a slot-state: inputs, assignments in source
   order, then the history rotations — exactly the runner's step. *)
let abstract_step pr ?pool ?(on_div = fun _ _ -> ()) ?(on_assign = fun _ _ -> ())
    ~inputs (st : itv array) =
  Array.iteri (fun i s -> st.(s) <- inputs.(i)) pr.input_slots;
  let ctx =
    {
      env = st;
      e_slot = (fun v -> Sfprogram.layout_slot pr.lay v);
      pool;
      cpos = 0;
      on_div = ignore;
    }
  in
  List.iter
    (fun (tslot, e) ->
      ctx.on_div <- (fun d -> on_div tslot d);
      let v = eval_expr ctx e in
      on_assign tslot v;
      st.(tslot) <- v)
    pr.assigns;
  Array.iter (fun (dst, src) -> st.(dst) <- st.(src)) pr.rotations

(* Transitive demand from the outputs: an assignment whose target is
   never read (at any delay) on a path to an output contributes
   nothing to the observable trace. *)
let dead_targets (p : Sfprogram.t) =
  let rhs : (Expr.base, Expr.Var_set.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Sfprogram.assignment) ->
      Hashtbl.replace rhs a.Sfprogram.target.Expr.base (Expr.vars a.Sfprogram.expr))
    p.Sfprogram.assignments;
  let demanded : (Expr.base, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec demand b =
    if not (Hashtbl.mem demanded b) then begin
      Hashtbl.add demanded b ();
      match Hashtbl.find_opt rhs b with
      | None -> ()
      | Some vars ->
          Expr.Var_set.iter (fun v -> demand v.Expr.base) vars
    end
  in
  List.iter (fun (o : Expr.var) -> demand o.Expr.base) p.Sfprogram.outputs;
  List.filter_map
    (fun (a : Sfprogram.assignment) ->
      if Hashtbl.mem demanded a.Sfprogram.target.Expr.base then None
      else Some a.Sfprogram.target)
    p.Sfprogram.assignments

type analysis = {
  a_program : Sfprogram.t;
  a_inputs : (string * itv) list;  (** the box the analysis assumed *)
  a_targets : (Expr.var * itv) list;
      (** per-assignment value range, joined over every step *)
  a_outputs : (Expr.var * itv) list;
      (** per-output trace range (includes the initial 0 sample) *)
  a_div_sure : Expr.var list;
      (** assignments containing a division whose divisor is provably
          zero at every step *)
  a_div_may : Expr.var list;
  a_dead : Expr.var list;
  a_steps : int;  (** exact abstract steps before stabilisation *)
  a_widened : bool;
}

let default_input_box = fin (-1.0) 1.0

let analyze ?(max_steps = 64) ?(inputs = []) p =
  let pr = prog_of p in
  let input_box =
    List.map
      (fun name ->
        match List.assoc_opt name inputs with
        | Some i -> (name, i)
        | None -> (name, default_input_box))
      p.Sfprogram.inputs
  in
  let in_itv = Array.of_list (List.map snd input_box) in
  let st = Array.make (max 1 pr.n) (const 0.0) in
  let acc = Array.copy st in
  let joined_into_acc cur =
    let changed = ref false in
    Array.iteri
      (fun i v ->
        if not (leq v acc.(i)) then begin
          changed := true;
          acc.(i) <- join acc.(i) v
        end)
      cur;
    !changed
  in
  (* exact warm-up: follow the real step sequence while it still
     discovers new states *)
  let steps = ref 0 in
  (try
     for k = 1 to max_steps do
       abstract_step pr ~inputs:in_itv st;
       steps := k;
       if not (joined_into_acc st) then raise Exit
     done
   with Exit -> ());
  (* stabilise: iterate the transfer function on the accumulated state,
     widening until it is inductive (monotone transfer functions make
     an inductive [acc] cover every reachable state) *)
  let widened = ref false in
  let stable = ref false in
  let rounds = ref 0 in
  while (not !stable) && !rounds < 40 do
    incr rounds;
    let nxt = Array.copy acc in
    abstract_step pr ~inputs:in_itv nxt;
    let covered = ref true in
    Array.iteri (fun i v -> if not (leq v acc.(i)) then covered := false) nxt;
    if !covered then stable := true
    else begin
      widened := true;
      Array.iteri (fun i v -> acc.(i) <- widen acc.(i) v) nxt
    end
  done;
  if not !stable then begin
    widened := true;
    Array.fill acc 0 (Array.length acc) top
  end;
  (* report pass at the fixpoint: per-assignment ranges and division
     sites, each sound for every step of any concrete run *)
  let tvals : (int, itv) Hashtbl.t = Hashtbl.create 16 in
  let div_sure : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let div_may : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let final = Array.copy acc in
  abstract_step pr ~inputs:in_itv final
    ~on_assign:(fun tslot v -> Hashtbl.replace tvals tslot v)
    ~on_div:(fun tslot d ->
      if has_finite d && d.lo = 0.0 && d.hi = 0.0 && not (has_flag d) then
        Hashtbl.replace div_sure tslot ()
      else if may_zero d then Hashtbl.replace div_may tslot ());
  let a_targets =
    List.map
      (fun (a : Sfprogram.assignment) ->
        let s = Sfprogram.layout_slot pr.lay a.Sfprogram.target in
        (a.Sfprogram.target, Option.value ~default:bot (Hashtbl.find_opt tvals s)))
      p.Sfprogram.assignments
  in
  let a_outputs =
    List.map
      (fun o ->
        match List.assoc_opt o a_targets with
        | Some v -> (o, join (const 0.0) v)
        | None -> (o, join (const 0.0) acc.(Sfprogram.layout_slot pr.lay o)))
      p.Sfprogram.outputs
  in
  let of_slots tbl =
    List.filter_map
      (fun (a : Sfprogram.assignment) ->
        let s = Sfprogram.layout_slot pr.lay a.Sfprogram.target in
        if Hashtbl.mem tbl s then Some a.Sfprogram.target else None)
      p.Sfprogram.assignments
  in
  {
    a_program = p;
    a_inputs = input_box;
    a_targets;
    a_outputs;
    a_div_sure = of_slots div_sure;
    a_div_may = of_slots div_may;
    a_dead = dead_targets p;
    a_steps = !steps;
    a_widened = !widened;
  }

(* ---- facts for the bytecode compiler ---- *)

let constant_facts analysis =
  let lay = Sfprogram.layout_of analysis.a_program in
  List.filter_map
    (fun (target, v) ->
      match singleton v with
      | Some c when c <> 0.0 ->
          (* signed zeros are indistinguishable in the domain, so a
             proven 0 is never folded *)
          Some (Sfprogram.layout_slot lay target, c)
      | _ -> None)
    analysis.a_targets

(* ---- step-accurate proofs of unhealthiness ---- *)

type bad = {
  b_kind : [ `Nonfinite | `Amplitude ];
  b_step : int;
  b_time : float;
}

let check_bad ?amplitude ~dt ~step out =
  match definitely_unhealthy ?amplitude out with
  | Some k ->
      Some { b_kind = k; b_step = step; b_time = float_of_int step *. dt }
  | None -> None

let prove_unhealthy ?(max_steps = 256) ?amplitude ?pool ?(output = 0) ~inputs p
    =
  let pr = prog_of p in
  let out_slot = (Sfprogram.layout_output_slots pr.lay).(output) in
  let st = Array.make (max 1 pr.n) (const 0.0) in
  let dt = p.Sfprogram.dt in
  let found = ref None in
  (try
     for k = 1 to max_steps do
       abstract_step pr ?pool ~inputs:(inputs k) st;
       match check_bad ?amplitude ~dt ~step:k st.(out_slot) with
       | Some b ->
           found := Some b;
           raise Exit
       | None -> ()
     done
   with Exit -> ());
  !found

(* The same proof over a compiled artifact: the interval interpretation
   runs the very bytecode the sweep engine executes (template pools
   included), through [Compile.exec_with]. *)

let bool_itv { may_t; may_f } =
  match (may_t, may_f) with
  | true, true -> fin 0.0 1.0
  | true, false -> const 1.0
  | false, true -> const 0.0
  | false, false -> bot

let truthy i = has_flag i || (has_finite i && (i.hi > 0.0 || i.lo < 0.0))
let falsy i = may_zero i

let interp : itv Compile.interp =
  {
    Compile.i_neg = neg;
    i_add = add;
    i_sub = sub;
    i_mul = mul;
    i_div = div;
    i_app = app;
    i_cmp = (fun c a b -> bool_itv (cmp_abs c a b));
    i_and =
      (fun a b ->
        if is_bot a || is_bot b then bot
        else
          join
            (if truthy a && truthy b then const 1.0 else bot)
            (if falsy a || falsy b then const 0.0 else bot));
    i_or =
      (fun a b ->
        if is_bot a || is_bot b then bot
        else
          join
            (if truthy a || truthy b then const 1.0 else bot)
            (if falsy a && falsy b then const 0.0 else bot));
    i_not =
      (fun a ->
        if is_bot a then bot
        else
          join
            (if falsy a then const 1.0 else bot)
            (if truthy a then const 0.0 else bot));
    i_sel =
      (fun c a b ->
        if is_bot c then bot
        else
          join (if truthy c then a else bot) (if falsy c then b else bot));
  }

let prove_unhealthy_compiled ?(max_steps = 256) ?amplitude ?pool ?(output = 0)
    ~inputs p artifact =
  let pr = prog_of p in
  let out_slot = (Sfprogram.layout_output_slots pr.lay).(output) in
  let n_regs = Compile.n_regs artifact in
  let n_slots = Compile.n_slots artifact in
  if n_slots <> pr.n then
    invalid_arg "Absint.prove_unhealthy_compiled: artifact/program mismatch";
  let regs = Array.make (max 1 n_regs) (const 0.0) in
  let cpool =
    match pool with
    | Some p -> p
    | None -> Array.map const (Compile.const_pool artifact)
  in
  if Array.length cpool <> Compile.n_consts artifact then
    invalid_arg "Absint.prove_unhealthy_compiled: pool size mismatch";
  Array.iteri (fun i c -> regs.(n_slots + i) <- c) cpool;
  let dt = p.Sfprogram.dt in
  let found = ref None in
  (try
     for k = 1 to max_steps do
       let inp = inputs k in
       Array.iteri (fun i s -> regs.(s) <- inp.(i)) pr.input_slots;
       Compile.exec_with interp artifact regs;
       Array.iter (fun (dst, src) -> regs.(dst) <- regs.(src)) pr.rotations;
       match check_bad ?amplitude ~dt ~step:k regs.(out_slot) with
       | Some b ->
           found := Some b;
           raise Exit
       | None -> ()
     done
   with Exit -> ());
  !found
