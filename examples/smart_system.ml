(* The paper's Fig. 1 scenario end-to-end: a smart system whose digital
   side (MIPS CPU + APB bus + UART) runs firmware that polls an analog
   sensor front-end (the OA active filter) through an ADC bridge, with
   the analog component integrated under several models of computation.

   Run with: dune exec examples/smart_system.exe *)

module Circuits = Amsvp_netlist.Circuits
module Flow = Amsvp_core.Flow
module Platform = Amsvp_vp.Platform
module Trace = Amsvp_util.Trace

let firmware =
  (* Custom firmware: sample the ADC, track the peak |value| seen and
     stream its high byte to the UART every 64 samples. *)
  {asm|
        li   $t0, 0x10001000    # ADC base
        li   $t1, 0x10000000    # UART base
        li   $s0, 0             # last sequence number
        li   $s2, 0             # peak magnitude (microvolts)
poll:
        lw   $t2, 4($t0)        # sequence number
        beq  $t2, $s0, poll
        move $s0, $t2
        lw   $t3, 0($t0)        # sample (microvolts, two's complement)
        sra  $t4, $t3, 31       # abs(sample)
        xor  $t5, $t3, $t4
        subu $t5, $t5, $t4
        slt  $t6, $s2, $t5      # new peak?
        beq  $t6, $zero, skip
        move $s2, $t5
skip:
        andi $t7, $t2, 63
        bne  $t7, $zero, poll
        srl  $t8, $s2, 16       # report peak bits [23:16]
        andi $t8, $t8, 255
        sw   $t8, 0($t1)
        j    poll
|asm}

let time f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

let () =
  let dt = 50e-9 and t_stop = 2e-3 in
  let tc = Circuits.opamp () in
  Printf.printf
    "Smart system: MIPS firmware polling the OA front-end over APB\n\
     (dt = 50 ns, simulated %.1f ms, CPU at 100 MHz)\n\n"
    (t_stop *. 1e3);
  let rep = Flow.abstract_testcase tc ~dt in
  Printf.printf
    "abstracted OA: %d definitions from %d equation classes in %.2f ms\n\n"
    rep.Flow.definitions rep.Flow.classes
    (Flow.total_seconds rep *. 1e3);
  let program = Some rep.Flow.program in
  List.iter
    (fun binding ->
      let r, wall =
        time (fun () ->
            Platform.run ~cpu_hz:1e8 ~asm_src:firmware ~testcase:tc ~program
              ~binding ~dt ~t_stop ())
      in
      let bytes =
        String.to_seq r.Platform.uart_output
        |> Seq.map (fun c -> Printf.sprintf "%02x" (Char.code c))
        |> List.of_seq |> String.concat " "
      in
      Printf.printf "%-36s wall %6.3f s | %7d instructions | uart: %s\n"
        (Platform.binding_label binding)
        wall r.Platform.instructions
        (if String.length bytes > 60 then String.sub bytes 0 60 ^ "..."
         else bytes))
    [
      Platform.Cosim { rtl_grain = false; substeps = 8; iterations = 3; fidelity = `Paper };
      Platform.Eln;
      Platform.Tdf;
      Platform.De_model;
      Platform.Cpp;
    ];
  print_newline ();
  (* The analog trace the ADC sampled, for eyeballing. *)
  let r =
    Platform.run ~cpu_hz:1e8 ~asm_src:firmware ~testcase:tc ~program
      ~binding:Platform.Cpp ~dt ~t_stop ()
  in
  print_endline "OA output as sampled by the ADC (inverting low-pass, gain -4):";
  List.iter
    (fun t ->
      Printf.printf "  t=%7.0f us  V(out,gnd) = %+.4f V\n" (t *. 1e6)
        (Trace.sample_at r.Platform.trace t))
    [ 10e-6; 100e-6; 400e-6; 499e-6; 600e-6; 1000e-6; 1400e-6; 1900e-6 ]
