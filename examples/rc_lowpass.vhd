library IEEE;
use IEEE.electrical_systems.all;

-- The RC low-pass as a VHDL-AMS architecture: branch quantities carry
-- the same conservative semantics, elaborated onto the same network.
-- Lint with:
--   amsvp lint examples/rc_lowpass.vhd --lang vhdl-ams --inputs tin
entity rc_lowpass is
  port (terminal tin, tout : electrical);
end entity;

architecture behav of rc_lowpass is
  quantity vr across ir through tin to tout;
  quantity vc across ic through tout to ground;
begin
  vr == 5.0e3 * ir;
  ic == 25.0e-9 * vc'dot;
end architecture;
