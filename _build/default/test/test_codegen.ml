(* Golden-shape tests for the three code-generation targets. *)

module Codegen = Amsvp_codegen.Codegen
module Circuits = Amsvp_netlist.Circuits
module Flow = Amsvp_core.Flow
module Sfprogram = Amsvp_sf.Sfprogram

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let check_contains what text needle =
  if not (contains text needle) then
    Alcotest.failf "%s should contain %S, got:\n%s" what needle text

let rc1_program () =
  let tc = Circuits.rc_ladder 1 in
  (Flow.abstract_testcase tc ~dt:50e-9).Flow.program

let test_target_names () =
  Alcotest.(check string) "cpp" "C++" (Codegen.target_name Codegen.Cpp);
  Alcotest.(check string) "de" "SC-DE" (Codegen.target_name Codegen.Systemc_de);
  Alcotest.(check string) "tdf" "SC-AMS/TDF"
    (Codegen.target_name Codegen.Systemc_ams_tdf)

let test_cpp_shape () =
  let p = rc1_program () in
  let src = Codegen.emit Codegen.Cpp p in
  check_contains "C++" src "class RC1 {";
  check_contains "C++" src "void step(double in)";
  check_contains "C++" src "double V_out_gnd = 0.0;";
  check_contains "C++" src "double V_out_gnd_m1 = 0.0;";
  (* State rotation after the update statements. *)
  check_contains "C++" src "V_out_gnd_m1 = V_out_gnd;";
  check_contains "C++" src "V_out_gnd_value()"

let test_systemc_de_shape () =
  let p = rc1_program () in
  let src = Codegen.emit Codegen.Systemc_de p in
  check_contains "SC-DE" src "SC_MODULE(RC1)";
  check_contains "SC-DE" src "sc_core::sc_in<double> in;";
  check_contains "SC-DE" src "sc_core::sc_out<double> V_out_gnd_out;";
  check_contains "SC-DE" src "SC_METHOD(step);";
  check_contains "SC-DE" src "next_trigger(sc_core::sc_time(5e-08, sc_core::SC_SEC));";
  check_contains "SC-DE" src "V_out_gnd_out.write(V_out_gnd);"

let test_systemc_tdf_shape () =
  let p = rc1_program () in
  let src = Codegen.emit Codegen.Systemc_ams_tdf p in
  check_contains "TDF" src "SCA_TDF_MODULE(RC1)";
  check_contains "TDF" src "sca_tdf::sca_in<double> in;";
  check_contains "TDF" src "set_timestep(5e-08, sc_core::SC_SEC);";
  check_contains "TDF" src "void processing()";
  check_contains "TDF" src "SCA_CTOR(RC1)"

let test_step_body_is_executable_shape () =
  (* Fig. 7.b: assignments followed by the history rotation, every line
     terminated by a semicolon. *)
  let p = rc1_program () in
  let body = Codegen.emit_step_body p in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         if String.trim line <> "" then
           Alcotest.(check bool)
             (Printf.sprintf "line %S is a statement" line)
             true
             (String.length line > 1 && line.[String.length line - 1] = ';'))

let test_rotation_depth_order () =
  (* A two-level history must rotate deepest-first. *)
  let y = Expr.potential "y" "gnd" in
  let p =
    Sfprogram.make ~name:"deep" ~inputs:[ "u" ] ~outputs:[ y ]
      ~assignments:
        [
          {
            Sfprogram.target = y;
            expr =
              Expr.(
                var (Expr.delayed y 2)
                + var (Expr.signal "u"));
          };
        ]
      ~dt:1.0
  in
  let body = Codegen.emit_step_body p in
  let idx s =
    let rec go i =
      if i + String.length s > String.length body then -1
      else if String.sub body i (String.length s) = s then i
      else go (i + 1)
    in
    go 0
  in
  let m2 = idx "V_y_gnd_m2 = V_y_gnd_m1;" in
  let m1 = idx "V_y_gnd_m1 = V_y_gnd;" in
  Alcotest.(check bool) "both rotations present" true (m1 >= 0 && m2 >= 0);
  Alcotest.(check bool) "deepest first" true (m2 < m1)

let test_pwl_model_emits_ternary () =
  (* Region-switching generated code renders as C ternaries over the
     previous step's values. *)
  let ckt = Amsvp_netlist.Circuit.create () in
  Amsvp_netlist.Circuit.add_vsource ckt ~name:"vin" ~pos:"in" ~neg:"gnd"
    (Amsvp_netlist.Component.Input "in");
  Amsvp_netlist.Circuit.add_resistor ckt ~name:"r1" ~pos:"in" ~neg:"a" 1.0e3;
  Amsvp_netlist.Circuit.add_pwl_conductance ckt ~name:"d1" ~pos:"a" ~neg:"gnd"
    ~g_on:0.01 ~g_off:1e-9 ~threshold:0.0;
  let rep =
    Flow.abstract_circuit ckt ~outputs:[ Expr.potential "a" "gnd" ] ~dt:1e-6
  in
  let src = Codegen.emit Codegen.Cpp rep.Flow.program in
  check_contains "PWL C++" src "?";
  check_contains "PWL C++ lagged condition" src "V_a_gnd_m1 >= 0"

let test_emitted_for_all_paper_circuits () =
  List.iter
    (fun (tc : Circuits.testcase) ->
      let p = (Flow.abstract_testcase tc ~dt:50e-9).Flow.program in
      List.iter
        (fun target ->
          let src = Codegen.emit target p in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s nonempty" tc.Circuits.label
               (Codegen.target_name target))
            true
            (String.length src > 100))
        [ Codegen.Cpp; Codegen.Systemc_de; Codegen.Systemc_ams_tdf ])
    (Circuits.all_paper_cases ())

let () =
  Alcotest.run "codegen"
    [
      ( "targets",
        [
          Alcotest.test_case "names" `Quick test_target_names;
          Alcotest.test_case "C++ shape" `Quick test_cpp_shape;
          Alcotest.test_case "SystemC-DE shape" `Quick test_systemc_de_shape;
          Alcotest.test_case "SystemC-AMS/TDF shape" `Quick test_systemc_tdf_shape;
        ] );
      ( "body",
        [
          Alcotest.test_case "statement shape" `Quick
            test_step_body_is_executable_shape;
          Alcotest.test_case "rotation order" `Quick test_rotation_depth_order;
          Alcotest.test_case "PWL ternary" `Quick test_pwl_model_emits_ternary;
          Alcotest.test_case "all circuits emit" `Quick
            test_emitted_for_all_paper_circuits;
        ] );
    ]
