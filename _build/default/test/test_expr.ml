(* Unit and property tests for the symbolic expression layer. *)

let check_float = Alcotest.(check (float 1e-9))

let x = Expr.signal "x"
let y = Expr.signal "y"
let vx = Expr.var x
let vy = Expr.var y

let env_of bindings v =
  match List.find_opt (fun (w, _) -> Expr.equal_var v w) bindings with
  | Some (_, value) -> value
  | None -> Alcotest.failf "unbound variable %s" (Expr.var_name v)

(* Construction and printing *)

let test_var_names () =
  Alcotest.(check string) "potential" "V(out,gnd)"
    (Expr.var_name (Expr.potential "out" "gnd"));
  Alcotest.(check string) "flow" "I(r1)" (Expr.var_name (Expr.flow "r1" ""));
  Alcotest.(check string) "delayed" "V(out,gnd)@-1"
    (Expr.var_name (Expr.delayed (Expr.potential "out" "gnd") 1));
  Alcotest.(check string) "c name" "V_out_gnd_m2"
    (Expr.var_c_name (Expr.delayed (Expr.potential "out" "gnd") 2))

let test_pp_precedence () =
  let e = Expr.Mul (Expr.Add (vx, vy), Expr.const 2.0) in
  Alcotest.(check string) "parens kept" "(x + y) * 2" (Expr.to_string e);
  let e2 = Expr.Add (Expr.Mul (vx, vy), Expr.const 2.0) in
  Alcotest.(check string) "no spurious parens" "x * y + 2" (Expr.to_string e2)

let test_c_printing () =
  let e = Expr.Cond (Expr.Cmp (Expr.Lt, vx, Expr.zero), Expr.Neg vx, vx) in
  Alcotest.(check string) "ternary" "(x < 0 ? -x : x)"
    (Expr.to_c ~name:Expr.var_c_name e)

(* Evaluation *)

let test_eval_arith () =
  let e = Expr.((vx + vy) * (vx - vy)) in
  let env = env_of [ (x, 5.0); (y, 3.0) ] in
  check_float "difference of squares" 16.0 (Expr.eval env e)

let test_eval_cond () =
  let e = Expr.Cond (Expr.Cmp (Expr.Ge, vx, Expr.const 0.0), vx, Expr.Neg vx) in
  check_float "abs pos" 2.5 (Expr.eval (env_of [ (x, 2.5) ]) e);
  check_float "abs neg" 2.5 (Expr.eval (env_of [ (x, -2.5) ]) e)

let test_eval_ddt_rejected () =
  Alcotest.check_raises "ddt rejected"
    (Failure "Expr.eval: ddt/idt cannot be evaluated pointwise") (fun () ->
      ignore (Expr.eval (fun _ -> 0.0) (Expr.Ddt vx)))

(* Simplification *)

let test_simplify_neutral () =
  let e = Expr.Add (Expr.Mul (Expr.one, vx), Expr.zero) in
  Alcotest.(check string) "x*1+0 = x" "x" (Expr.to_string (Expr.simplify e));
  let e2 = Expr.Mul (Expr.zero, Expr.Add (vx, vy)) in
  Alcotest.(check string) "0*(x+y) = 0" "0" (Expr.to_string (Expr.simplify e2))

let test_simplify_constants () =
  let e = Expr.Div (Expr.const 7.0, Expr.Add (Expr.const 2.0, Expr.const 1.5)) in
  check_float "constant folding" 2.0 (Expr.eval (fun _ -> nan) (Expr.simplify e))

(* Linear form *)

let test_linear_form_basic () =
  let e = Expr.(scale 2.0 vx + scale 3.0 vy + const 4.0 + vx) in
  match Expr.linear_form e with
  | None -> Alcotest.fail "expected linear"
  | Some (items, k) ->
      check_float "constant" 4.0 k;
      let coeff v =
        match List.find_opt (fun (w, _) -> Expr.equal_var v w) items with
        | Some (_, c) -> c
        | None -> 0.0
      in
      check_float "x merged" 3.0 (coeff x);
      check_float "y" 3.0 (coeff y)

let test_linear_form_nonlinear () =
  Alcotest.(check bool) "x*y nonlinear" true (Expr.linear_form Expr.(vx * vy) = None);
  Alcotest.(check bool) "1/x nonlinear" true
    (Expr.linear_form Expr.(one / vx) = None);
  Alcotest.(check bool) "x/2 linear" true
    (Expr.linear_form Expr.(vx / const 2.0) <> None)

(* Discretisation *)

let test_discretize_first_order () =
  let dt = 0.5 in
  let e = Expr.discretize ~dt (Expr.Ddt vx) in
  (* ddt x ~ (x - x@-1)/dt *)
  let env = env_of [ (x, 3.0); (Expr.delayed x 1, 1.0) ] in
  check_float "backward euler" 4.0 (Expr.eval env e)

let test_discretize_nested () =
  let dt = 1.0 in
  let e = Expr.discretize ~dt (Expr.Ddt (Expr.Ddt vx)) in
  (* second difference: x - 2 x@-1 + x@-2 *)
  let env =
    env_of [ (x, 4.0); (Expr.delayed x 1, 1.0); (Expr.delayed x 2, 0.0) ]
  in
  check_float "second difference" 2.0 (Expr.eval env e)

let test_extract_idt () =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "acc%d" !counter
  in
  let e, aux = Expr.extract_idt ~fresh (Expr.Idt vx) in
  Alcotest.(check int) "one accumulator" 1 (List.length aux);
  match aux with
  | [ (s, update) ] ->
      Alcotest.(check string) "replaced by signal" "acc1" (Expr.var_name s);
      Alcotest.(check string) "body is the signal" "acc1" (Expr.to_string e);
      (* update: acc1 = acc1@-1 + __dt * x *)
      let env =
        env_of [ (Expr.delayed s 1, 10.0); (Expr.dt_param, 0.1); (x, 5.0) ]
      in
      check_float "rectangle rule" 10.5 (Expr.eval env update)
  | _ -> Alcotest.fail "expected exactly one accumulator"

(* Tree dump and functions *)

let test_pp_tree_shape () =
  let e = Expr.(Add (vx, Mul (Const 2.0, vy))) in
  let dump = Format.asprintf "%a" Expr.pp_tree e in
  Alcotest.(check bool) "root plus" true
    (String.length dump > 0 && dump.[0] = '+');
  Alcotest.(check bool) "indented operands" true
    (let rec contains i s =
       i + String.length s <= String.length dump
       && (String.sub dump i (String.length s) = s || contains (i + 1) s)
     in
     contains 0 "  x" && contains 0 "    2")

let test_unary_functions_eval_and_print () =
  List.iter
    (fun (fn, name, input, expected) ->
      let e = Expr.App (fn, vx) in
      Alcotest.(check string) "printing" (name ^ "(x)") (Expr.to_string e);
      check_float name expected (Expr.eval (env_of [ (x, input) ]) e))
    [
      (Expr.Sin, "sin", 0.0, 0.0);
      (Expr.Exp, "exp", 0.0, 1.0);
      (Expr.Sqrt, "sqrt", 4.0, 2.0);
      (Expr.Abs, "abs", -3.5, 3.5);
      (Expr.Tanh, "tanh", 0.0, 0.0);
    ];
  (* ln prints as log in C *)
  Alcotest.(check string) "C log" "log(x)"
    (Expr.to_c ~name:Expr.var_c_name (Expr.App (Expr.Ln, vx)))

(* Equations *)

let test_solve_for_simple () =
  (* 2x + 3y - 6 = 0 solved for x: x = 3 - 1.5 y *)
  let eq =
    Eqn.make Eqn.Explicit
      ~lhs:Expr.(scale 2.0 vx + scale 3.0 vy)
      ~rhs:(Expr.const 6.0)
  in
  match Eqn.solve_for (Eqn.Cur x) eq with
  | None -> Alcotest.fail "solvable equation"
  | Some e ->
      check_float "at y=2" 0.0 (Expr.eval (env_of [ (y, 2.0) ]) e);
      check_float "at y=0" 3.0 (Expr.eval (env_of [ (y, 0.0) ]) e)

let test_solve_for_derivative () =
  (* i = C * ddt(v) solved for ddt(v): ddt(v) = i / C *)
  let i = Expr.flow "c1" "" and vnode = Expr.potential "a" "gnd" in
  let eq =
    Eqn.make (Eqn.Dipole "c1") ~lhs:(Expr.var i)
      ~rhs:(Expr.scale 2.0 (Expr.Ddt (Expr.var vnode)))
  in
  match Eqn.solve_for (Eqn.Der vnode) eq with
  | None -> Alcotest.fail "solvable for derivative"
  | Some e ->
      Alcotest.(check bool) "mentions i" true (Expr.contains_var i e);
      let env = env_of [ (i, 6.0) ] in
      check_float "i/C" 3.0 (Expr.eval env e)

let test_solve_for_missing () =
  let eq = Eqn.make Eqn.Explicit ~lhs:vx ~rhs:Expr.one in
  Alcotest.(check bool) "y not present" true (Eqn.solve_for (Eqn.Cur y) eq = None)

let test_unknowns () =
  let vnode = Expr.potential "a" "gnd" in
  let eq =
    Eqn.make Eqn.Explicit ~lhs:vx
      ~rhs:(Expr.scale 2.0 (Expr.Ddt (Expr.var vnode)))
  in
  let us = Eqn.unknowns eq in
  Alcotest.(check int) "two unknowns" 2 (List.length us);
  Alcotest.(check bool) "contains ddt" true
    (List.exists (fun p -> Eqn.compare_pseudo p (Eqn.Der vnode) = 0) us)

(* Properties *)

let arb_linear_expr =
  (* Random affine expressions over x and y, built from +,-,*const. *)
  let open QCheck in
  let leaf =
    Gen.oneof
      [
        Gen.map (fun c -> Expr.const (float_of_int c)) (Gen.int_range (-5) 5);
        Gen.return vx;
        Gen.return vy;
      ]
  in
  let gen =
    Gen.sized (fun n ->
        let rec go n =
          if n <= 0 then leaf
          else
            Gen.oneof
              [
                leaf;
                Gen.map2 (fun a b -> Expr.Add (a, b)) (go (n / 2)) (go (n / 2));
                Gen.map2 (fun a b -> Expr.Sub (a, b)) (go (n / 2)) (go (n / 2));
                Gen.map2
                  (fun c a -> Expr.Mul (Expr.const (float_of_int c), a))
                  (Gen.int_range (-4) 4) (go (n - 1));
                Gen.map (fun a -> Expr.Neg a) (go (n - 1));
              ]
        in
        go (min n 12))
  in
  make ~print:Expr.to_string gen

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:300
    arb_linear_expr (fun e ->
      let env = env_of [ (x, 1.7); (y, -2.3) ] in
      let a = Expr.eval env e and b = Expr.eval env (Expr.simplify e) in
      abs_float (a -. b) <= 1e-6 *. (1.0 +. abs_float a))

let prop_linear_form_sound =
  QCheck.Test.make ~name:"linear form agrees with evaluation" ~count:300
    arb_linear_expr (fun e ->
      match Expr.linear_form e with
      | None -> QCheck.assume_fail ()
      | Some lf ->
          let env = env_of [ (x, 0.9); (y, 4.1) ] in
          let a = Expr.eval env e
          and b = Expr.eval env (Expr.of_linear_form lf) in
          abs_float (a -. b) <= 1e-6 *. (1.0 +. abs_float a))

let prop_solve_for_substitutes_back =
  QCheck.Test.make ~name:"solve_for yields a root of the equation" ~count:300
    QCheck.(pair arb_linear_expr arb_linear_expr)
    (fun (lhs, rhs) ->
      let eq = Eqn.make Eqn.Explicit ~lhs ~rhs in
      match Eqn.solve_for (Eqn.Cur x) eq with
      | None -> QCheck.assume_fail ()
      | Some sol ->
          let env_y v =
            if Expr.equal_var v y then -1.3
            else Alcotest.failf "unexpected var %s" (Expr.var_name v)
          in
          let x_val = Expr.eval env_y sol in
          let env v = if Expr.equal_var v x then x_val else env_y v in
          let residual = Expr.eval env (Eqn.residual eq) in
          abs_float residual <= 1e-6 *. (1.0 +. abs_float x_val))

let prop_compile_matches_eval =
  QCheck.Test.make ~name:"compiled closures agree with the interpreter"
    ~count:300 arb_linear_expr (fun e ->
      let vals = [ (x, 2.5); (y, -0.75) ] in
      let env = env_of vals in
      let slot v =
        if Expr.equal_var v x then 0
        else if Expr.equal_var v y then 1
        else Alcotest.failf "unexpected var %s" (Expr.var_name v)
      in
      let f = Expr.compile slot e in
      let a = Expr.eval env e and b = f [| 2.5; -0.75 |] in
      abs_float (a -. b) <= 1e-9 *. (1.0 +. abs_float a))

let prop_delay_shifts_all_vars =
  QCheck.Test.make ~name:"delay_expr shifts every variable" ~count:200
    arb_linear_expr (fun e ->
      let shifted = Expr.delay_expr 2 e in
      Expr.Var_set.for_all (fun v -> v.Expr.delay >= 2) (Expr.vars shifted))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "expr"
    [
      ( "vars",
        [
          Alcotest.test_case "names" `Quick test_var_names;
          Alcotest.test_case "precedence printing" `Quick test_pp_precedence;
          Alcotest.test_case "C printing" `Quick test_c_printing;
        ] );
      ( "eval",
        [
          Alcotest.test_case "arithmetic" `Quick test_eval_arith;
          Alcotest.test_case "conditional" `Quick test_eval_cond;
          Alcotest.test_case "ddt rejected" `Quick test_eval_ddt_rejected;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "neutral elements" `Quick test_simplify_neutral;
          Alcotest.test_case "constant folding" `Quick test_simplify_constants;
        ] );
      ( "linear",
        [
          Alcotest.test_case "coefficients" `Quick test_linear_form_basic;
          Alcotest.test_case "nonlinear detection" `Quick
            test_linear_form_nonlinear;
        ] );
      ( "discretize",
        [
          Alcotest.test_case "first order" `Quick test_discretize_first_order;
          Alcotest.test_case "nested ddt" `Quick test_discretize_nested;
          Alcotest.test_case "idt extraction" `Quick test_extract_idt;
        ] );
      ( "trees",
        [
          Alcotest.test_case "tree dump" `Quick test_pp_tree_shape;
          Alcotest.test_case "unary functions" `Quick
            test_unary_functions_eval_and_print;
        ] );
      ( "equations",
        [
          Alcotest.test_case "solve for variable" `Quick test_solve_for_simple;
          Alcotest.test_case "solve for derivative" `Quick
            test_solve_for_derivative;
          Alcotest.test_case "missing variable" `Quick test_solve_for_missing;
          Alcotest.test_case "unknowns" `Quick test_unknowns;
        ] );
      ( "properties",
        qt
          [
            prop_simplify_preserves_eval;
            prop_linear_form_sound;
            prop_solve_for_substitutes_back;
            prop_compile_matches_eval;
            prop_delay_shifts_all_vars;
          ] );
    ]
