(* Tests for the abstraction methodology: the equation multimap,
   enrichment, assembly, solving and the end-to-end flow. *)

module Circuits = Amsvp_netlist.Circuits
module Circuit = Amsvp_netlist.Circuit
module Engine = Amsvp_mna.Engine
module Eqmap = Amsvp_core.Eqmap
module Acquisition = Amsvp_core.Acquisition
module Enrich = Amsvp_core.Enrich
module Assemble = Amsvp_core.Assemble
module Solve = Amsvp_core.Solve
module Flow = Amsvp_core.Flow
module Sfprogram = Amsvp_sf.Sfprogram
module Metrics = Amsvp_util.Metrics
module Stimulus = Amsvp_util.Stimulus
module Trace = Amsvp_util.Trace

let dt = 50e-9

let rc1_map () =
  let tc = Circuits.rc_ladder 1 in
  let acq = Acquisition.of_circuit tc.circuit in
  Enrich.enrich acq

(* Eqmap *)

let test_enrichment_counts () =
  let map, stats = rc1_map () in
  (* RC1: 3 dipole equations, 2 non-ground nodes, 1 fundamental loop. *)
  Alcotest.(check int) "dipole classes" 3 stats.Enrich.dipole_classes;
  Alcotest.(check int) "kcl classes" 2 stats.Enrich.kcl_classes;
  Alcotest.(check int) "kvl classes" 1 stats.Enrich.kvl_classes;
  Alcotest.(check int) "classes" 6 (Eqmap.class_count map);
  (* Every equation contributes one solved variant per unknown:
     2+2+2 (dipoles) + 2+2 (KCL) + 3 (KVL). *)
  Alcotest.(check int) "variants" 13 (Eqmap.variant_count map)

let test_fetch_and_disable () =
  let map, _ = rc1_map () in
  let v_in = Eqn.Cur (Expr.potential "in" "gnd") in
  (match Eqmap.fetch map v_in with
  | None -> Alcotest.fail "V(in,gnd) should be definable"
  | Some variant ->
      Alcotest.(check bool) "class enabled" true
        (Eqmap.is_enabled map variant.Eqmap.class_id);
      Eqmap.disable_class map variant.Eqmap.class_id;
      Alcotest.(check bool) "fetch skips disabled class" true
        (match Eqmap.fetch map v_in with
        | None -> true
        | Some v2 -> v2.Eqmap.class_id <> variant.Eqmap.class_id));
  Eqmap.reset map;
  Alcotest.(check bool) "reset re-enables" true (Eqmap.fetch map v_in <> None)

let test_fetch_all_order () =
  let map, _ = rc1_map () in
  let i_r1 = Eqn.Cur (Expr.flow "r1" "") in
  let all = Eqmap.fetch_all map i_r1 in
  (* I(r1) is definable from its own dipole equation and from both
     Kirchhoff current equations. *)
  Alcotest.(check bool) "at least two variants" true (List.length all >= 2);
  let ids = List.map (fun v -> v.Eqmap.class_id) all in
  Alcotest.(check (list int)) "insertion order" (List.sort compare ids) ids

(* Assemble *)

let test_assemble_rc1 () =
  let map, _ = rc1_map () in
  let out = Expr.potential "out" "gnd" in
  let r = Assemble.assemble map ~inputs:[ "in" ] ~outputs:[ out ] in
  Alcotest.(check int) "cone size" 5 (List.length r.Assemble.defs);
  Alcotest.(check bool) "output defined" true
    (List.exists (fun d -> Expr.equal_var d.Assemble.var out) r.Assemble.defs);
  (* The output is state-bearing: with integration preferred, its
     definition must be an integration. *)
  let out_def =
    List.find (fun d -> Expr.equal_var d.Assemble.var out) r.Assemble.defs
  in
  Alcotest.(check bool) "output integrates" true out_def.Assemble.integrates

let test_assemble_consumes_classes () =
  let map, _ = rc1_map () in
  let out = Expr.potential "out" "gnd" in
  let r = Assemble.assemble map ~inputs:[ "in" ] ~outputs:[ out ] in
  let disabled =
    List.filter
      (fun d -> not (Eqmap.is_enabled map d.Assemble.via))
      r.Assemble.defs
  in
  Alcotest.(check int) "one class consumed per definition"
    (List.length r.Assemble.defs)
    (List.length disabled)

let test_assemble_missing_output () =
  let map, _ = rc1_map () in
  let ghost = Expr.potential "nowhere" "gnd" in
  Alcotest.check_raises "undefinable output" (Assemble.No_definition ghost)
    (fun () ->
      ignore (Assemble.assemble map ~inputs:[ "in" ] ~outputs:[ ghost ]))

let test_inline_tree_self_reference () =
  (* Fig. 6: the inlined tree for V(out,gnd) mentions V(out,gnd) on its
     right-hand side (through the discretised derivative chain). *)
  let map, _ = rc1_map () in
  let out = Expr.potential "out" "gnd" in
  let r = Assemble.assemble map ~inputs:[ "in" ] ~outputs:[ out ] in
  let tree = Assemble.inline_tree r out in
  Alcotest.(check bool) "self reference present" true
    (Expr.contains_var out tree
    || Expr.contains_var (Expr.delayed out 1) tree)

(* Solve *)

let test_solve_rc1_coefficients () =
  (* Backward Euler on the RC stage: V = (V@-1 + a*in) / (1+a),
     a = dt/(R C) = 4e-4. *)
  let tc = Circuits.rc_ladder 1 in
  let rep = Flow.abstract_testcase tc ~dt in
  let out = Expr.potential "out" "gnd" in
  let assignment =
    List.find
      (fun (a : Sfprogram.assignment) -> Expr.equal_var a.Sfprogram.target out)
      rep.Flow.program.Sfprogram.assignments
  in
  let env v =
    if Expr.equal_var v (Expr.delayed out 1) then 1.0
    else if Expr.equal_var v (Expr.signal "in") then 0.0
    else 0.0
  in
  let alpha = Expr.eval env assignment.Sfprogram.expr in
  let a = dt /. (5.0e3 *. 25.0e-9) in
  Alcotest.(check (float 1e-9)) "state coefficient" (1.0 /. (1.0 +. a)) alpha

let test_solve_modes_agree_when_fine () =
  (* Exact and relaxed modes agree within the truncation error of one
     step lag. *)
  let tc = Circuits.rc_ladder 3 in
  let acq = Acquisition.of_circuit tc.circuit in
  let map, _ = Enrich.enrich acq in
  let asm = Assemble.assemble map ~inputs:[ "in" ] ~outputs:[ tc.output ] in
  let exact = Solve.solve ~mode:`Exact ~name:"x" ~dt asm in
  let relaxed = Solve.solve ~mode:`Relaxed ~name:"r" ~dt asm in
  let run p =
    let runner = Sfprogram.Runner.create p in
    Sfprogram.Runner.run runner
      ~stimuli:[| Stimulus.square ~period:1e-3 ~low:0.0 ~high:1.0 |]
      ~t_stop:1e-3 ()
  in
  let a = run exact and b = run relaxed in
  let err = Metrics.nrmse_traces ~reference:a b ~t0:0.0 ~dt:1e-6 ~n:999 in
  Alcotest.(check bool) (Printf.sprintf "NRMSE %g small" err) true (err < 1e-3)

let test_relaxed_stable_long_run () =
  let tc = Circuits.rc_ladder 8 in
  let acq = Acquisition.of_circuit tc.circuit in
  let map, _ = Enrich.enrich acq in
  let asm = Assemble.assemble map ~inputs:[ "in" ] ~outputs:[ tc.output ] in
  let p = Solve.solve ~mode:`Relaxed ~name:"r" ~dt asm in
  let runner = Sfprogram.Runner.create p in
  let tr =
    Sfprogram.Runner.run runner
      ~stimuli:[| Stimulus.constant 1.0 |]
      ~t_stop:20e-3 ()
  in
  let last = Trace.last_value tr in
  Alcotest.(check bool) "settles to DC level" true (abs_float (last -. 1.0) < 1e-2)

(* Flow *)

let test_flow_report_fields () =
  let tc = Circuits.rc_ladder 20 in
  let rep = Flow.abstract_testcase tc ~dt in
  Alcotest.(check int) "nodes (paper: 22)" 22 rep.Flow.nodes;
  Alcotest.(check int) "branches (paper: 41)" 41 rep.Flow.branches;
  Alcotest.(check bool) "timings recorded" true (Flow.total_seconds rep >= 0.0)

let test_flow_probe_insertion () =
  (* V(in,out) is not the branch potential of any RC2 device: the flow
     must observe it through an inserted probe. *)
  let tc = Circuits.rc_ladder 2 in
  let out = Expr.potential "in" "out" in
  let rep = Flow.abstract_circuit tc.circuit ~outputs:[ out ] ~dt in
  let runner = Sfprogram.Runner.create rep.Flow.program in
  let tr =
    Sfprogram.Runner.run runner ~stimuli:[| Stimulus.constant 1.0 |]
      ~t_stop:20e-3 ()
  in
  (* At DC both nodes sit at the source level: the difference is 0. *)
  Alcotest.(check (float 1e-3)) "difference settles to zero" 0.0
    (Trace.last_value tr)

let test_flow_rejects_unknown_nodes () =
  let tc = Circuits.rc_ladder 1 in
  Alcotest.(check bool) "unknown node rejected" true
    (try
       ignore
         (Flow.abstract_circuit tc.circuit
            ~outputs:[ Expr.potential "zig" "zag" ]
            ~dt);
       false
     with Invalid_argument _ -> true)

let test_convert_nonlinear_self_reference_rejected () =
  let out = Expr.potential "out" "gnd" in
  Alcotest.(check bool) "nonlinear self-reference rejected" true
    (try
       ignore
         (Flow.convert_signal_flow ~name:"bad" ~inputs:[ "in" ]
            ~outputs:[ out ]
            ~contributions:
              [ (out, Expr.(App (Sin, Expr.var out) + Expr.var (Expr.signal "in"))) ]
            ~dt);
       false
     with Solve.Nonlinear _ -> true)

let test_convert_idt () =
  (* V(out) <+ idt(V(in)) becomes an accumulator program. *)
  let out = Expr.potential "out" "gnd" in
  let p =
    Flow.convert_signal_flow ~name:"integ" ~inputs:[ "in" ] ~outputs:[ out ]
      ~contributions:[ (out, Expr.Idt (Expr.var (Expr.signal "in"))) ]
      ~dt:0.5
  in
  let runner = Sfprogram.Runner.create p in
  let tr =
    Sfprogram.Runner.run runner ~stimuli:[| Stimulus.constant 2.0 |] ~t_stop:2.0 ()
  in
  (* Rectangle rule: after 4 steps of 0.5 s at rate 2: integral = 4. *)
  Alcotest.(check (float 1e-9)) "integral" 4.0 (Trace.last_value tr)

let test_rlc_abstraction_exact () =
  (* The inductor forces the Der-fallback on a flow quantity: the
     abstracted RLC must still match the same-step network solution. *)
  let tc = Circuits.rlc_series () in
  let step = 1e-6 in
  let rep = Flow.abstract_testcase ~mode:`Exact tc ~dt:step in
  let runner = Sfprogram.Runner.create rep.Flow.program in
  let stims =
    Array.of_list
      (List.map
         (fun name -> List.assoc name tc.Circuits.stimuli)
         rep.Flow.program.Amsvp_sf.Sfprogram.inputs)
  in
  let t_stop = 5e-3 in
  let mine = Sfprogram.Runner.run runner ~stimuli:stims ~t_stop () in
  let reference =
    Engine.run_testcase_spice ~substeps:1 ~iterations:1 tc ~dt:step ~t_stop
  in
  let err =
    Metrics.nrmse_traces ~reference:reference.Engine.trace mine ~t0:0.0
      ~dt:(step *. 5.0) ~n:999
  in
  Alcotest.(check bool) (Printf.sprintf "NRMSE=%g" err) true (err < 1e-9)

let test_multi_output_abstraction () =
  (* Several outputs of interest share one cone: both the capacitor
     voltage and the inductor current of the RLC. *)
  let tc = Circuits.rlc_series () in
  let i_l = Expr.flow "l1" "" in
  let rep =
    Flow.abstract_circuit ~mode:`Exact tc.Circuits.circuit
      ~outputs:[ tc.Circuits.output; i_l ]
      ~dt:1e-6
  in
  Alcotest.(check int) "two outputs" 2
    (List.length rep.Flow.program.Amsvp_sf.Sfprogram.outputs);
  let runner = Sfprogram.Runner.create rep.Flow.program in
  let stims = [| Stimulus.constant 1.0 |] in
  let _ = Sfprogram.Runner.run runner ~stimuli:stims ~t_stop:10e-3 () in
  (* At DC the capacitor blocks: inductor current -> 0, voltage -> 1. *)
  Alcotest.(check (float 1e-3)) "V(out) settles" 1.0
    (Sfprogram.Runner.read runner tc.Circuits.output);
  Alcotest.(check (float 1e-4)) "I(l1) settles" 0.0
    (Sfprogram.Runner.read runner i_l)

let test_trapezoidal_accuracy () =
  (* At a deliberately coarse step and a smooth stimulus, trapezoidal
     integration must beat backward Euler by an order of magnitude
     against a fine reference (second- vs first-order truncation
     error; the advantage degrades on discontinuous stimuli, where
     both methods are edge-limited). *)
  let tc = Circuits.rc_ladder 1 in
  let coarse = 5e-6 in
  let t_stop = 2e-3 in
  let sine = Stimulus.sine ~freq:1e3 ~amplitude:1.0 () in
  let reference =
    Engine.spice_like ~substeps:64 ~iterations:1 tc.Circuits.circuit
      ~inputs:[ ("in", sine) ] ~output:tc.Circuits.output ~dt:coarse ~t_stop
  in
  let err integration =
    let rep = Flow.abstract_testcase ~mode:`Exact ~integration tc ~dt:coarse in
    let runner = Sfprogram.Runner.create rep.Flow.program in
    let tr = Sfprogram.Runner.run runner ~stimuli:[| sine |] ~t_stop () in
    Metrics.nrmse_traces ~reference:reference.Engine.trace tr ~t0:0.0
      ~dt:(t_stop /. 200.0) ~n:199
  in
  let be = err `Backward_euler and trap = err `Trapezoidal in
  Alcotest.(check bool)
    (Printf.sprintf "trap (%g) at least 5x better than BE (%g)" trap be)
    true
    (trap *. 5.0 < be)

let test_trapezoidal_rlc () =
  (* Second-order dynamics, smooth drive near the resonance. *)
  let tc = Circuits.rlc_series () in
  let step = 2e-6 in
  let t_stop = 5e-3 in
  let sine = Stimulus.sine ~freq:800.0 ~amplitude:1.0 () in
  let rep =
    Flow.abstract_testcase ~mode:`Exact ~integration:`Trapezoidal tc ~dt:step
  in
  let runner = Sfprogram.Runner.create rep.Flow.program in
  let tr = Sfprogram.Runner.run runner ~stimuli:[| sine |] ~t_stop () in
  let reference =
    Engine.spice_like ~substeps:64 ~iterations:1 tc.Circuits.circuit
      ~inputs:[ ("in", sine) ] ~output:tc.Circuits.output ~dt:step ~t_stop
  in
  let err =
    Metrics.nrmse_traces ~reference:reference.Engine.trace tr ~t0:0.0
      ~dt:(t_stop /. 500.0) ~n:499
  in
  Alcotest.(check bool) (Printf.sprintf "NRMSE=%g" err) true (err < 2e-3)

let test_pwl_half_wave () =
  (* Half-wave rectifier: a piecewise-linear conductance loads a
     resistor divider (Section III-C extension). The abstracted model
     selects the solved region from the previous step's values and must
     track the Newton-based SPICE reference. *)
  let ckt = Circuit.create () in
  Circuit.add_vsource ckt ~name:"vin" ~pos:"in" ~neg:"gnd"
    (Amsvp_netlist.Component.Input "in");
  Circuit.add_resistor ckt ~name:"r1" ~pos:"in" ~neg:"a" 1.0e3;
  Circuit.add_pwl_conductance ckt ~name:"d1" ~pos:"a" ~neg:"gnd"
    ~g_on:(1.0 /. 100.0) ~g_off:1e-6 ~threshold:0.0;
  let out = Expr.potential "a" "gnd" in
  let step = 1e-7 in
  let rep = Flow.abstract_circuit ~mode:`Exact ckt ~outputs:[ out ] ~dt:step in
  let runner = Sfprogram.Runner.create rep.Flow.program in
  let sine = Stimulus.sine ~freq:1e3 ~amplitude:1.0 () in
  let t_stop = 2e-3 in
  let mine = Sfprogram.Runner.run runner ~stimuli:[| sine |] ~t_stop () in
  let reference =
    Engine.spice_like ~substeps:1 ~iterations:3 ckt
      ~inputs:[ ("in", sine) ] ~output:out ~dt:step ~t_stop
  in
  let err =
    Metrics.nrmse_traces ~reference:reference.Engine.trace mine ~t0:0.0
      ~dt:(t_stop /. 1000.0) ~n:999
  in
  Alcotest.(check bool) (Printf.sprintf "NRMSE=%g" err) true (err < 1e-3);
  (* Rectification: positive peaks squashed to the divider level,
     negative peaks pass through. *)
  let vmax = ref (-10.0) and vmin = ref 10.0 in
  for i = 0 to Amsvp_util.Trace.length mine - 1 do
    let v = Amsvp_util.Trace.value mine i in
    if v > !vmax then vmax := v;
    if v < !vmin then vmin := v
  done;
  Alcotest.(check (float 2e-2)) "positive clamp" (100.0 /. 1100.0) !vmax;
  Alcotest.(check (float 2e-2)) "negative passthrough" (-1.0) !vmin

let test_pwl_rejected_by_eln () =
  let ckt = Circuit.create () in
  Circuit.add_vsource ckt ~name:"vin" ~pos:"in" ~neg:"gnd"
    (Amsvp_netlist.Component.Dc 1.0);
  Circuit.add_pwl_conductance ckt ~name:"d1" ~pos:"in" ~neg:"gnd" ~g_on:1.0
    ~g_off:1e-6 ~threshold:0.0;
  Alcotest.(check bool) "linear-only engine refuses PWL" true
    (try
       ignore
         (Engine.eln_like ckt ~inputs:[] ~output:(Expr.potential "in" "gnd")
            ~dt:1e-6 ~t_stop:1e-5);
       false
     with Invalid_argument _ -> true)

(* End-to-end accuracy properties *)

let prop_random_ladder_matches_reference =
  QCheck.Test.make ~name:"abstracted random RC ladder matches same-step MNA"
    ~count:15
    QCheck.(triple (int_range 1 8) (float_range 1e3 20e3) (float_range 5e-9 100e-9))
    (fun (n, r, c) ->
      let tc = Circuits.rc_ladder ~r ~c n in
      let step = 1e-6 in
      let rep = Flow.abstract_testcase ~mode:`Exact tc ~dt:step in
      let runner = Sfprogram.Runner.create rep.Flow.program in
      let stims =
        Array.of_list
          (List.map
             (fun name -> List.assoc name tc.Circuits.stimuli)
             rep.Flow.program.Sfprogram.inputs)
      in
      let t_stop = 2e-3 in
      let mine = Sfprogram.Runner.run runner ~stimuli:stims ~t_stop () in
      let reference =
        Engine.run_testcase_spice ~substeps:1 ~iterations:1 tc ~dt:step ~t_stop
      in
      let err =
        Metrics.nrmse_traces ~reference:reference.Engine.trace mine ~t0:0.0
          ~dt:(step *. 2.

) ~n:999
      in
      err < 1e-6)

let prop_relaxed_ladder_close_to_reference =
  (* Relaxed mode trades one step of lag for locality: the error is
     O(dt/tau) but the result stays close to the exact discretisation
     when dt is much smaller than the time constant. *)
  QCheck.Test.make ~name:"relaxed mode stays within O(dt/tau) of exact"
    ~count:10
    QCheck.(int_range 2 10)
    (fun n ->
      let tc = Circuits.rc_ladder n in
      let step = 50e-9 in
      (* tau = 125 us per stage; dt/tau = 4e-4 *)
      let run mode =
        let rep = Flow.abstract_testcase ~mode tc ~dt:step in
        let runner = Sfprogram.Runner.create rep.Flow.program in
        Sfprogram.Runner.run runner
          ~stimuli:[| Stimulus.square ~period:1e-3 ~low:0.0 ~high:1.0 |]
          ~t_stop:1e-3 ()
      in
      let exact = run `Exact and relaxed = run `Relaxed in
      let err =
        Metrics.nrmse_traces ~reference:exact relaxed ~t0:0.0 ~dt:1e-6 ~n:999
      in
      err < 5e-3)

let prop_paper_circuits_roundtrip =
  QCheck.Test.make ~name:"every paper circuit abstracts and runs" ~count:4
    (QCheck.make (QCheck.Gen.oneofl [ "2IN"; "RC1"; "RC20"; "OA" ]))
    (fun label ->
      let tc = Option.get (Circuits.by_name label) in
      let rep = Flow.abstract_testcase tc ~dt in
      let runner = Sfprogram.Runner.create rep.Flow.program in
      let stims =
        Array.of_list
          (List.map
             (fun name -> List.assoc name tc.Circuits.stimuli)
             rep.Flow.program.Sfprogram.inputs)
      in
      let tr = Sfprogram.Runner.run runner ~stimuli:stims ~t_stop:1e-4 () in
      Trace.length tr = 2001
      && Float.is_finite (Trace.last_value tr))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "eqmap",
        [
          Alcotest.test_case "enrichment counts" `Quick test_enrichment_counts;
          Alcotest.test_case "fetch and disable" `Quick test_fetch_and_disable;
          Alcotest.test_case "fetch_all order" `Quick test_fetch_all_order;
        ] );
      ( "assemble",
        [
          Alcotest.test_case "RC1 cone" `Quick test_assemble_rc1;
          Alcotest.test_case "classes consumed" `Quick
            test_assemble_consumes_classes;
          Alcotest.test_case "missing output" `Quick test_assemble_missing_output;
          Alcotest.test_case "inline tree self-reference" `Quick
            test_inline_tree_self_reference;
        ] );
      ( "solve",
        [
          Alcotest.test_case "RC1 coefficients" `Quick test_solve_rc1_coefficients;
          Alcotest.test_case "modes agree" `Quick test_solve_modes_agree_when_fine;
          Alcotest.test_case "relaxed stability" `Quick test_relaxed_stable_long_run;
        ] );
      ( "flow",
        [
          Alcotest.test_case "report fields" `Quick test_flow_report_fields;
          Alcotest.test_case "probe insertion" `Quick test_flow_probe_insertion;
          Alcotest.test_case "unknown nodes rejected" `Quick
            test_flow_rejects_unknown_nodes;
          Alcotest.test_case "nonlinear self-ref rejected" `Quick
            test_convert_nonlinear_self_reference_rejected;
          Alcotest.test_case "idt conversion" `Quick test_convert_idt;
          Alcotest.test_case "RLC abstraction exact" `Quick
            test_rlc_abstraction_exact;
          Alcotest.test_case "multi-output abstraction" `Quick
            test_multi_output_abstraction;
          Alcotest.test_case "trapezoidal accuracy" `Quick
            test_trapezoidal_accuracy;
          Alcotest.test_case "trapezoidal RLC" `Quick test_trapezoidal_rlc;
          Alcotest.test_case "PWL half-wave rectifier" `Quick test_pwl_half_wave;
          Alcotest.test_case "PWL rejected by ELN" `Quick
            test_pwl_rejected_by_eln;
        ] );
      ( "properties",
        qt
          [
            prop_random_ladder_matches_reference;
            prop_relaxed_ladder_close_to_reference;
            prop_paper_circuits_roundtrip;
          ]
      );
    ]
