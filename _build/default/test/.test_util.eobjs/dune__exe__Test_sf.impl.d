test/test_sf.ml: Alcotest Amsvp_core Amsvp_netlist Amsvp_sf Amsvp_util Expr List QCheck QCheck_alcotest
