test/test_util.ml: Alcotest Amsvp_util Array Gen List QCheck QCheck_alcotest String
