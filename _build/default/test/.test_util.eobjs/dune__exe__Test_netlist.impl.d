test/test_netlist.ml: Alcotest Amsvp_netlist Eqn List Printf QCheck QCheck_alcotest String
