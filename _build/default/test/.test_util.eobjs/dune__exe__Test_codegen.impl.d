test/test_codegen.ml: Alcotest Amsvp_codegen Amsvp_core Amsvp_netlist Amsvp_sf Expr List Printf String
