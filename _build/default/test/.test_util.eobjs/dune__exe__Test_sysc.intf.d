test/test_sysc.mli:
