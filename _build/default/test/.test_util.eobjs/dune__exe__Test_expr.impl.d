test/test_expr.ml: Alcotest Eqn Expr Format Gen List Printf QCheck QCheck_alcotest String
