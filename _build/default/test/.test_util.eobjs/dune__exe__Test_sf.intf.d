test/test_sf.mli:
