test/test_vp.ml: Alcotest Amsvp_core Amsvp_netlist Amsvp_sysc Amsvp_vp Array Char Printf String
