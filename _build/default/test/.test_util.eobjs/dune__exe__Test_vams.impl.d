test/test_vams.ml: Alcotest Amsvp_core Amsvp_mna Amsvp_netlist Amsvp_sf Amsvp_util Amsvp_vams Array Expr Format List Option Printf QCheck QCheck_alcotest
