test/test_vhdlams.mli:
