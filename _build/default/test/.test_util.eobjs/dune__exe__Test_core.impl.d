test/test_core.ml: Alcotest Amsvp_core Amsvp_mna Amsvp_netlist Amsvp_sf Amsvp_util Array Eqn Expr Float List Option Printf QCheck QCheck_alcotest
