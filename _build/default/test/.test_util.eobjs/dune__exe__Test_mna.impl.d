test/test_mna.ml: Alcotest Amsvp_core Amsvp_mna Amsvp_netlist Amsvp_sf Amsvp_util Array Complex Eqn Expr Float Gen List Printf QCheck QCheck_alcotest String
