test/test_vhdlams.ml: Alcotest Amsvp_core Amsvp_netlist Amsvp_sf Amsvp_util Amsvp_vams Amsvp_vhdlams Expr List Printf
