test/test_sysc.ml: Alcotest Amsvp_core Amsvp_mna Amsvp_netlist Amsvp_sysc Amsvp_util List Printf String
