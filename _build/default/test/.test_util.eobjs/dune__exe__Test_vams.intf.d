test/test_vams.mli:
