(* Tests for components, circuits and the Kirchhoff topology layer. *)

module Component = Amsvp_netlist.Component
module Circuit = Amsvp_netlist.Circuit
module Graph = Amsvp_netlist.Graph
module Circuits = Amsvp_netlist.Circuits

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Components *)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Component.make: device r is a self-loop on node a")
    (fun () ->
      ignore (Component.make ~name:"r" ~pos:"a" ~neg:"a" (Component.Resistor 1.0)))

let test_dipole_equations () =
  let r = Component.make ~name:"r1" ~pos:"a" ~neg:"b" (Component.Resistor 2.0) in
  Alcotest.(check string) "resistor" "V(a,b) = 2 * I(r1)  (dipole[r1])"
    (Eqn.to_string (Component.dipole_equation r));
  let c = Component.make ~name:"c1" ~pos:"a" ~neg:"gnd" (Component.Capacitor 3.0) in
  Alcotest.(check string) "capacitor" "I(c1) = 3 * ddt(V(a,gnd))  (dipole[c1])"
    (Eqn.to_string (Component.dipole_equation c));
  let v =
    Component.make ~name:"vs" ~pos:"a" ~neg:"gnd" (Component.Vsource (Component.Input "u"))
  in
  Alcotest.(check string) "source" "V(a,gnd) = u  (dipole[vs])"
    (Eqn.to_string (Component.dipole_equation v))

(* Circuits *)

let test_duplicate_device () =
  let c = Circuit.create () in
  Circuit.add_resistor c ~name:"r1" ~pos:"a" ~neg:"gnd" 1.0;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Circuit.add: duplicate device name r1") (fun () ->
      Circuit.add_resistor c ~name:"r1" ~pos:"b" ~neg:"gnd" 1.0)

let test_floating_node_detected () =
  let c = Circuit.create () in
  Circuit.add_resistor c ~name:"r1" ~pos:"a" ~neg:"gnd" 1.0;
  Circuit.add_resistor c ~name:"r2" ~pos:"b" ~neg:"c" 1.0;
  match Circuit.validate c with
  | Ok () -> Alcotest.fail "expected floating-node error"
  | Error msg ->
      Alcotest.(check bool) "mentions floating nodes" true
        (contains_substring msg "b" && contains_substring msg "c")

let test_input_signals_dedup () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"v1" ~pos:"a" ~neg:"gnd" (Component.Input "u");
  Circuit.add_vsource c ~name:"v2" ~pos:"b" ~neg:"gnd" (Component.Input "u");
  Circuit.add_vsource c ~name:"v3" ~pos:"c" ~neg:"gnd" (Component.Input "w");
  Alcotest.(check (list string)) "dedup keeps order" [ "u"; "w" ]
    (Circuit.input_signals c)

(* Graph / Kirchhoff *)

let test_rc20_dimensions () =
  (* The paper reports RC20 as "22 nodes and 41 branches" (§V-A). *)
  let tc = Circuits.rc_ladder 20 in
  let g = Graph.of_circuit tc.circuit in
  Alcotest.(check int) "nodes" 22 (Graph.node_count g);
  Alcotest.(check int) "branches" 41 (Graph.branch_count g);
  Alcotest.(check int) "loops" 20 (Graph.loop_count g);
  Alcotest.(check int) "KCL count" 21 (List.length (Graph.kcl_equations g));
  Alcotest.(check int) "KVL count" 20 (List.length (Graph.kvl_equations g))

let test_kirchhoff_equations_linear () =
  List.iter
    (fun (tc : Circuits.testcase) ->
      let g = Graph.of_circuit tc.circuit in
      List.iter
        (fun eq ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s linear" tc.label (Eqn.to_string eq))
            true (Eqn.is_linear eq))
        (Graph.kcl_equations g @ Graph.kvl_equations g))
    (Circuits.all_paper_cases ())

let test_kvl_nontrivial () =
  List.iter
    (fun (tc : Circuits.testcase) ->
      let g = Graph.of_circuit tc.circuit in
      List.iter
        (fun eq ->
          match Eqn.unknowns eq with
          | [] -> Alcotest.failf "%s: trivial KVL %s" tc.label (Eqn.to_string eq)
          | _ -> ())
        (Graph.kvl_equations g))
    (Circuits.all_paper_cases ())

let test_parallel_branch_loop_dropped () =
  (* Two same-oriented parallel resistors share the potential variable:
     their fundamental loop is trivially 0 = 0 and must be dropped. *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"vs" ~pos:"a" ~neg:"gnd" (Component.Dc 1.0);
  Circuit.add_resistor c ~name:"r1" ~pos:"a" ~neg:"gnd" 1.0;
  Circuit.add_resistor c ~name:"r2" ~pos:"a" ~neg:"gnd" 1.0;
  let g = Graph.of_circuit c in
  Alcotest.(check int) "two cotree branches" 2 (Graph.loop_count g);
  (* All three devices share V(a,gnd): every fundamental loop is trivial. *)
  Alcotest.(check int) "all loops trivial" 0 (List.length (Graph.kvl_equations g))

let test_testcase_lookup () =
  (match Circuits.by_name "RC7" with
  | Some tc -> Alcotest.(check string) "rc7" "RC7" tc.label
  | None -> Alcotest.fail "RC7 should resolve");
  Alcotest.(check bool) "bogus" true (Circuits.by_name "RCx" = None);
  Alcotest.(check bool) "2IN" true (Circuits.by_name "2IN" <> None)

(* Properties *)

let prop_ladder_euler_formula =
  QCheck.Test.make ~name:"RC ladders satisfy |loops| = |B| - |N| + 1" ~count:30
    QCheck.(int_range 1 40)
    (fun n ->
      let tc = Circuits.rc_ladder n in
      let g = Graph.of_circuit tc.circuit in
      Graph.loop_count g = Graph.branch_count g - Graph.node_count g + 1
      && Graph.node_count g = n + 2
      && Graph.branch_count g = (2 * n) + 1)

let prop_kcl_covers_every_nonground_node =
  QCheck.Test.make ~name:"one KCL equation per non-ground node" ~count:30
    QCheck.(int_range 1 30)
    (fun n ->
      let tc = Circuits.rc_ladder n in
      let g = Graph.of_circuit tc.circuit in
      List.length (Graph.kcl_equations g) = Graph.node_count g - 1)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "netlist"
    [
      ( "components",
        [
          Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
          Alcotest.test_case "dipole equations" `Quick test_dipole_equations;
        ] );
      ( "circuits",
        [
          Alcotest.test_case "duplicate device" `Quick test_duplicate_device;
          Alcotest.test_case "floating node" `Quick test_floating_node_detected;
          Alcotest.test_case "input signal dedup" `Quick test_input_signals_dedup;
          Alcotest.test_case "testcase lookup" `Quick test_testcase_lookup;
        ] );
      ( "graph",
        [
          Alcotest.test_case "RC20 dimensions" `Quick test_rc20_dimensions;
          Alcotest.test_case "Kirchhoff equations linear" `Quick
            test_kirchhoff_equations_linear;
          Alcotest.test_case "KVL nontrivial" `Quick test_kvl_nontrivial;
          Alcotest.test_case "parallel-branch loop dropped" `Quick
            test_parallel_branch_loop_dropped;
        ] );
      ("properties", qt [ prop_ladder_euler_formula; prop_kcl_covers_every_nonground_node ]);
    ]
