(* Tests for the discrete-event kernel, the TDF layer and the MoC
   wrappers. *)

module De = Amsvp_sysc.De
module Tdf = Amsvp_sysc.Tdf
module Wrap = Amsvp_sysc.Wrap
module Circuits = Amsvp_netlist.Circuits
module Engine = Amsvp_mna.Engine
module Flow = Amsvp_core.Flow
module Trace = Amsvp_util.Trace
module Metrics = Amsvp_util.Metrics

(* DE kernel *)

let test_timed_ordering () =
  let k = De.create () in
  let log = ref [] in
  let mark name = log := name :: !log in
  let e1 = De.Event.create k "e1" and e2 = De.Event.create k "e2" in
  let p1 = De.spawn k ~name:"p1" (fun () -> mark "p1") in
  let p2 = De.spawn k ~name:"p2" (fun () -> mark "p2") in
  De.Event.sensitize p1 e1;
  De.Event.sensitize p2 e2;
  De.Event.notify_delayed e2 ~delay_ps:100;
  De.Event.notify_delayed e1 ~delay_ps:50;
  De.run k;
  Alcotest.(check (list string)) "time order wins over notify order"
    [ "p1"; "p2" ] (List.rev !log);
  Alcotest.(check int) "time advanced" 100 (De.now_ps k)

let test_signal_update_semantics () =
  (* A write is not visible within the same delta cycle. *)
  let k = De.create () in
  let s = De.Signal.int_signal k ~name:"s" 0 in
  let seen_same_delta = ref (-1) in
  let seen_next_delta = ref (-1) in
  let e = De.Event.create k "go" in
  let writer =
    De.spawn k ~name:"writer" (fun () ->
        De.Signal.write s 42;
        seen_same_delta := De.Signal.read s)
  in
  De.Event.sensitize writer e;
  let reader =
    De.spawn k ~name:"reader" (fun () -> seen_next_delta := De.Signal.read s)
  in
  De.Event.sensitize reader (De.Signal.change_event s);
  De.Event.notify_delayed e ~delay_ps:10;
  De.run k;
  Alcotest.(check int) "old value in same delta" 0 !seen_same_delta;
  Alcotest.(check int) "new value next delta" 42 !seen_next_delta

let test_no_event_on_unchanged_write () =
  let k = De.create () in
  let s = De.Signal.int_signal k ~name:"s" 7 in
  let fired = ref 0 in
  let watcher = De.spawn k ~name:"w" (fun () -> incr fired) in
  De.Event.sensitize watcher (De.Signal.change_event s);
  let e = De.Event.create k "go" in
  let writer = De.spawn k ~name:"writer" (fun () -> De.Signal.write s 7) in
  De.Event.sensitize writer e;
  De.Event.notify_delayed e ~delay_ps:5;
  De.run k;
  Alcotest.(check int) "no change event" 0 !fired

let test_notify_collapse () =
  let k = De.create () in
  let e = De.Event.create k "e" in
  let count = ref 0 in
  let p = De.spawn k ~name:"p" (fun () -> incr count) in
  De.Event.sensitize p e;
  De.Event.notify_delayed e ~delay_ps:10;
  De.Event.notify_delayed e ~delay_ps:10;
  De.Event.notify_delayed e ~delay_ps:20;
  De.run k;
  (* Same-instant duplicates collapse; the later (20 ps) notification
     was overridden by the pending earlier one. *)
  Alcotest.(check int) "single activation" 1 !count

let test_run_until_boundary () =
  let k = De.create () in
  let e = De.Event.create k "e" in
  let count = ref 0 in
  let p =
    De.spawn k ~name:"p" (fun () ->
        incr count;
        De.Event.notify_delayed e ~delay_ps:10)
  in
  De.Event.sensitize p e;
  De.Event.notify_delayed e ~delay_ps:10;
  De.run_until k ~ps:55;
  (* Activations at 10,20,30,40,50. *)
  Alcotest.(check int) "five activations" 5 !count;
  Alcotest.(check int) "clock at last event" 50 (De.now_ps k)

let test_stats_counted () =
  let k = De.create () in
  let s = De.Signal.float_signal k ~name:"s" 0.0 in
  let e = De.Event.create k "e" in
  let p =
    De.spawn k ~name:"p" (fun () ->
        De.Signal.write s (De.now k);
        if De.now_ps k < 100 then De.Event.notify_delayed e ~delay_ps:10)
  in
  De.Event.sensitize p e;
  De.Event.notify_delayed e ~delay_ps:10;
  De.run k;
  let st = De.stats k in
  Alcotest.(check int) "activations" 10 st.De.activations;
  Alcotest.(check bool) "updates counted" true (st.De.signal_updates >= 10)

(* Thread processes (SC_THREAD style, via effects) *)

let test_thread_clock_generator () =
  (* A thread toggles a signal with timed waits; a method process
     counts rising edges. *)
  let k = De.create () in
  let clk = De.Signal.bool_signal k ~name:"clk" false in
  De.Thread.spawn k ~name:"clkgen" (fun () ->
      for _ = 1 to 10 do
        De.Thread.wait_ps k 50;
        De.Signal.write clk (not (De.Signal.read clk))
      done);
  let edges = ref 0 in
  let counter =
    De.spawn k ~name:"counter" (fun () -> if De.Signal.read clk then incr edges)
  in
  De.Event.sensitize counter (De.Signal.change_event clk);
  De.run k;
  Alcotest.(check int) "five rising edges" 5 !edges;
  Alcotest.(check int) "stopped after ten half-periods" 500 (De.now_ps k)

let test_thread_event_handshake () =
  (* Two threads ping-pong through events. *)
  let k = De.create () in
  let ping = De.Event.create k "ping" and pong = De.Event.create k "pong" in
  let log = ref [] in
  De.Thread.spawn k ~name:"a" (fun () ->
      for i = 1 to 3 do
        log := Printf.sprintf "a%d" i :: !log;
        De.Event.notify_delta ping;
        De.Thread.wait_event k pong
      done);
  De.Thread.spawn k ~name:"b" (fun () ->
      for i = 1 to 3 do
        De.Thread.wait_event k ping;
        log := Printf.sprintf "b%d" i :: !log;
        De.Event.notify_delta pong
      done);
  De.run k;
  Alcotest.(check (list string)) "alternation"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (List.rev !log)

let test_thread_sequencing_with_time () =
  let k = De.create () in
  let samples = ref [] in
  De.Thread.spawn k ~name:"seq" (fun () ->
      De.Thread.wait_ps k 100;
      samples := De.now_ps k :: !samples;
      De.Thread.wait_ps k 250;
      samples := De.now_ps k :: !samples;
      De.Thread.wait_ps k 0;
      (* delta wait: same time *)
      samples := De.now_ps k :: !samples);
  De.run k;
  Alcotest.(check (list int)) "timeline" [ 100; 350; 350 ] (List.rev !samples)

let test_wait_outside_thread_rejected () =
  let k = De.create () in
  Alcotest.(check bool) "wait outside thread" true
    (try
       De.Thread.wait_ps k 10;
       false
     with Invalid_argument _ -> true)

let test_thread_repeated_event_waits_no_leak () =
  (* Waiting many times on the same event must keep exactly one live
     subscriber at a time (the one-shot resumes unsubscribe). *)
  let k = De.create () in
  let tick = De.Event.create k "tick" in
  let count = ref 0 in
  De.Thread.spawn k ~name:"w" (fun () ->
      for _ = 1 to 50 do
        De.Thread.wait_event k tick;
        incr count
      done);
  let driver =
    De.spawn k ~name:"driver" (fun () ->
        if De.now_ps k < 5000 then De.Event.notify_delayed tick ~delay_ps:100)
  in
  De.Event.sensitize driver tick;
  De.Event.notify_delayed tick ~delay_ps:100;
  De.run k;
  Alcotest.(check int) "all ticks seen" 50 !count

(* TDF *)

let test_tdf_schedule_order () =
  let k = De.create () in
  let c = Tdf.create_cluster k ~name:"c" ~timestep_ps:10 in
  let p1 = Tdf.port c "p1" ~rate:1 in
  let p2 = Tdf.port c "p2" ~rate:1 in
  let order = ref [] in
  (* Register consumer first: the schedule must still run producers
     first. *)
  let _sink =
    Tdf.add_module c ~name:"sink" ~reads:[ p2 ] ~writes:[] (fun () ->
        order := "sink" :: !order)
  in
  let _mid =
    Tdf.add_module c ~name:"mid" ~reads:[ p1 ] ~writes:[ p2 ] (fun () ->
        order := "mid" :: !order;
        Tdf.write p2 0 (Tdf.read p1 0 +. 1.0))
  in
  let _src =
    Tdf.add_module c ~name:"src" ~reads:[] ~writes:[ p1 ] (fun () ->
        order := "src" :: !order;
        Tdf.write p1 0 5.0)
  in
  Tdf.start c ~until_ps:10;
  De.run_until k ~ps:10;
  Alcotest.(check (list string)) "topological order" [ "src"; "mid"; "sink" ]
    (List.rev !order);
  Alcotest.(check (float 0.0)) "token flowed" 6.0 (Tdf.read p2 0)

let test_tdf_cycle_rejected () =
  let k = De.create () in
  let c = Tdf.create_cluster k ~name:"c" ~timestep_ps:10 in
  let a = Tdf.port c "a" ~rate:1 and b = Tdf.port c "b" ~rate:1 in
  let _m1 = Tdf.add_module c ~name:"m1" ~reads:[ a ] ~writes:[ b ] (fun () -> ()) in
  let _m2 = Tdf.add_module c ~name:"m2" ~reads:[ b ] ~writes:[ a ] (fun () -> ()) in
  Alcotest.(check bool) "combinational cycle rejected" true
    (try
       Tdf.start c ~until_ps:10;
       false
     with Invalid_argument _ -> true)

let test_tdf_double_producer_rejected () =
  let k = De.create () in
  let c = Tdf.create_cluster k ~name:"c" ~timestep_ps:10 in
  let a = Tdf.port c "a" ~rate:1 in
  let _m1 = Tdf.add_module c ~name:"m1" ~reads:[] ~writes:[ a ] (fun () -> ()) in
  Alcotest.(check bool) "double producer rejected" true
    (try
       ignore (Tdf.add_module c ~name:"m2" ~reads:[] ~writes:[ a ] (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_tdf_activation_count () =
  let k = De.create () in
  let c = Tdf.create_cluster k ~name:"c" ~timestep_ps:100 in
  let a = Tdf.port c "a" ~rate:1 in
  let _m = Tdf.add_module c ~name:"m" ~reads:[] ~writes:[ a ] (fun () -> ()) in
  Tdf.start c ~until_ps:1000;
  De.run_until k ~ps:1000;
  let st = Tdf.cluster_stats c in
  Alcotest.(check int) "ten activations" 10 st.Tdf.activations

let test_tdf_multirate_decimation () =
  (* Source fires twice per activation (rate-1 writes), a 2:1 decimator
     averages each pair, the sink sees one token per activation. *)
  let k = De.create () in
  let c = Tdf.create_cluster k ~name:"deci" ~timestep_ps:100 in
  let hi = Tdf.port c "hi" ~rate:1 in
  let lo = Tdf.port c "lo" ~rate:1 in
  let counter = ref 0.0 in
  let _src =
    Tdf.add_module_rated c ~name:"src" ~reads:[] ~writes:[ (hi, 1) ]
      (fun _rep ->
        counter := !counter +. 1.0;
        Tdf.write hi 0 !counter)
  in
  let _decim =
    Tdf.add_module_rated c ~name:"decim" ~reads:[ (hi, 2) ]
      ~writes:[ (lo, 1) ] (fun _rep ->
        Tdf.write lo 0 ((Tdf.read hi 0 +. Tdf.read hi 1) /. 2.0))
  in
  let seen = ref [] in
  let _sink =
    Tdf.add_module_rated c ~name:"sink" ~reads:[ (lo, 1) ] ~writes:[]
      (fun _rep -> seen := Tdf.read lo 0 :: !seen)
  in
  Tdf.start c ~until_ps:300;
  De.run_until k ~ps:300;
  (* Activations at 100/200/300: pairs (1,2) (3,4) (5,6). *)
  Alcotest.(check (list (float 1e-12))) "decimated averages"
    [ 1.5; 3.5; 5.5 ] (List.rev !seen);
  let st = Tdf.cluster_stats c in
  Alcotest.(check int) "firings per activation: 2+1+1" 4 st.Tdf.schedule_length

let test_tdf_multirate_interpolation () =
  (* 1:3 expander: one input token, three output tokens. *)
  let k = De.create () in
  let c = Tdf.create_cluster k ~name:"interp" ~timestep_ps:100 in
  let a = Tdf.port c "a" ~rate:1 in
  let b = Tdf.port c "b" ~rate:1 in
  let _src =
    Tdf.add_module_rated c ~name:"src" ~reads:[] ~writes:[ (a, 1) ]
      (fun _ -> Tdf.write a 0 10.0)
  in
  let _expand =
    Tdf.add_module_rated c ~name:"expand" ~reads:[ (a, 1) ] ~writes:[ (b, 3) ]
      (fun _ ->
        let v = Tdf.read a 0 in
        Tdf.write b 0 v;
        Tdf.write b 1 (v +. 1.0);
        Tdf.write b 2 (v +. 2.0))
  in
  let seen = ref [] in
  let _sink =
    Tdf.add_module_rated c ~name:"sink" ~reads:[ (b, 1) ] ~writes:[]
      (fun _ -> seen := Tdf.read b 0 :: !seen)
  in
  Tdf.start c ~until_ps:100;
  De.run_until k ~ps:100;
  Alcotest.(check (list (float 1e-12))) "expanded stream" [ 10.0; 11.0; 12.0 ]
    (List.rev !seen)

let test_tdf_inconsistent_rates () =
  (* A rate loop that cannot be balanced must be rejected. *)
  let k = De.create () in
  let c = Tdf.create_cluster k ~name:"bad" ~timestep_ps:100 in
  let a = Tdf.port c "a" ~rate:1 in
  let b = Tdf.port c "b" ~rate:1 in
  (* m1 -> a -> m2 -> b -> m3, and m1 -> b' ... build inconsistency with
     two paths of different rate products between the same modules. *)
  let cport = Tdf.port c "c" ~rate:1 in
  let _m1 =
    Tdf.add_module_rated c ~name:"m1" ~reads:[] ~writes:[ (a, 1); (b, 2) ]
      (fun _ -> ())
  in
  let _m2 =
    Tdf.add_module_rated c ~name:"m2" ~reads:[ (a, 1) ] ~writes:[ (cport, 1) ]
      (fun _ -> ())
  in
  let _m3 =
    Tdf.add_module_rated c ~name:"m3" ~reads:[ (b, 1); (cport, 1) ] ~writes:[]
      (fun _ -> ())
  in
  Alcotest.(check bool) "inconsistent rates rejected" true
    (try
       Tdf.start c ~until_ps:100;
       false
     with Invalid_argument _ -> true)

(* Tracing *)

let test_tracing_vcd () =
  let k = De.create () in
  let s = De.Signal.float_signal k ~name:"s" 0.0 in
  let rec_ = De.Tracing.create k in
  De.Tracing.watch rec_ ~name:"sig_s" s;
  let e = De.Event.create k "e" in
  let p =
    De.spawn k ~name:"driver" (fun () ->
        De.Signal.write s (De.now k *. 1e12);
        if De.now_ps k < 3000 then De.Event.notify_delayed e ~delay_ps:1000)
  in
  De.Event.sensitize p e;
  De.Event.notify_delayed e ~delay_ps:1000;
  De.run k;
  let traces = De.Tracing.traces rec_ in
  Alcotest.(check int) "one signal" 1 (List.length traces);
  let _, tr = List.hd traces in
  (* initial sample + three changes *)
  Alcotest.(check int) "samples" 4 (Amsvp_util.Trace.length tr);
  let doc = De.Tracing.to_vcd rec_ in
  Alcotest.(check bool) "vcd var" true
    (let rec contains i =
       i + 5 <= String.length doc
       && (String.sub doc i 5 = "sig_s" || contains (i + 1))
     in
     contains 0)

(* Wrappers: the same abstracted model must produce identical traces
   under every MoC (only the machinery differs). *)

let test_wrappers_agree () =
  let dt = 1e-6 in
  let tc = Circuits.rc_ladder 1 in
  let rep = Flow.abstract_testcase tc ~dt in
  let p = rep.Flow.program in
  let t_stop = 1e-3 in
  let cpp = Wrap.run_cpp p ~stimuli:tc.Circuits.stimuli ~t_stop in
  let de = Wrap.run_de p ~stimuli:tc.Circuits.stimuli ~t_stop in
  let tdf = Wrap.run_tdf p ~stimuli:tc.Circuits.stimuli ~t_stop in
  let check_equal name a b =
    Alcotest.(check int) (name ^ " length") (Trace.length a) (Trace.length b);
    for i = 0 to Trace.length a - 1 do
      if abs_float (Trace.value a i -. Trace.value b i) > 1e-12 then
        Alcotest.failf "%s differs at sample %d" name i
    done
  in
  check_equal "de vs cpp" cpp.Wrap.trace de.Wrap.trace;
  check_equal "tdf vs cpp" cpp.Wrap.trace tdf.Wrap.trace

let test_eln_wrapper_matches_engine () =
  let dt = 1e-6 and t_stop = 1e-3 in
  let tc = Circuits.rc_ladder 2 in
  let wrapped =
    Wrap.run_eln tc.Circuits.circuit ~inputs:tc.Circuits.stimuli
      ~output:tc.Circuits.output ~dt ~t_stop
  in
  let direct = Engine.run_testcase_eln tc ~dt ~t_stop in
  let err =
    Metrics.nrmse_traces ~reference:direct.Engine.trace wrapped.Wrap.trace
      ~t0:0.0 ~dt:(2.0 *. dt) ~n:499
  in
  Alcotest.(check bool) "identical dynamics" true (err < 1e-12)

let () =
  Alcotest.run "sysc"
    [
      ( "kernel",
        [
          Alcotest.test_case "timed ordering" `Quick test_timed_ordering;
          Alcotest.test_case "signal request/update" `Quick
            test_signal_update_semantics;
          Alcotest.test_case "no event on unchanged write" `Quick
            test_no_event_on_unchanged_write;
          Alcotest.test_case "notification collapse" `Quick test_notify_collapse;
          Alcotest.test_case "run_until boundary" `Quick test_run_until_boundary;
          Alcotest.test_case "stats" `Quick test_stats_counted;
        ] );
      ( "threads",
        [
          Alcotest.test_case "clock generator" `Quick test_thread_clock_generator;
          Alcotest.test_case "event handshake" `Quick test_thread_event_handshake;
          Alcotest.test_case "timed sequencing" `Quick
            test_thread_sequencing_with_time;
          Alcotest.test_case "wait outside thread" `Quick
            test_wait_outside_thread_rejected;
          Alcotest.test_case "no subscriber leak" `Quick
            test_thread_repeated_event_waits_no_leak;
        ] );
      ( "tdf",
        [
          Alcotest.test_case "static schedule order" `Quick test_tdf_schedule_order;
          Alcotest.test_case "cycle rejected" `Quick test_tdf_cycle_rejected;
          Alcotest.test_case "double producer rejected" `Quick
            test_tdf_double_producer_rejected;
          Alcotest.test_case "activation count" `Quick test_tdf_activation_count;
          Alcotest.test_case "multirate decimation" `Quick
            test_tdf_multirate_decimation;
          Alcotest.test_case "multirate interpolation" `Quick
            test_tdf_multirate_interpolation;
          Alcotest.test_case "inconsistent rates" `Quick
            test_tdf_inconsistent_rates;
        ] );
      ("tracing", [ Alcotest.test_case "vcd export" `Quick test_tracing_vcd ]);
      ( "wrappers",
        [
          Alcotest.test_case "MoCs agree on the model" `Quick test_wrappers_agree;
          Alcotest.test_case "ELN wrapper vs engine" `Quick
            test_eln_wrapper_matches_engine;
        ] );
    ]
