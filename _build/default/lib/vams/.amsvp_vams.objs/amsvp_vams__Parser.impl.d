lib/vams/parser.ml: Array Ast Lexer List Printf
