lib/vams/ast.mli: Format
