lib/vams/elaborate.ml: Amsvp_core Amsvp_netlist Ast Eqn Expr Hashtbl List Parser Printf Set String
