lib/vams/parser.mli: Ast
