lib/vams/sources.ml: Buffer Printf String
