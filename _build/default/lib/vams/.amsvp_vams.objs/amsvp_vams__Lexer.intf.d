lib/vams/lexer.mli:
