lib/vams/sources.mli:
