lib/vams/elaborate.mli: Amsvp_core Amsvp_netlist Ast Expr
