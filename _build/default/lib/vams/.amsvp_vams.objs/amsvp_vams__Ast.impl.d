lib/vams/ast.ml: Format List String
