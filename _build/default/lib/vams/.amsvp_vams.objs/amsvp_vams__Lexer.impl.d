lib/vams/lexer.ml: Buffer List Printf String
