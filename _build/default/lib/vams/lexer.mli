(** Lexer for the Verilog-AMS subset.

    Handles identifiers, keywords, real/integer literals with
    Verilog-AMS scale factors ([T G M K k m u n p f a]), punctuation
    including the contribution operator [<+], line and block comments,
    and compiler directives (backtick lines such as
    [`include "disciplines.vams"]), which are skipped. *)

type token =
  | Ident of string
  | Number of float
  | Punct of string
      (** one of: ( ) , ; = . # ? : + - * / < <= > >= <+ && || ! % *)
  | Eof

type positioned = { token : token; line : int; col : int }

exception Lex_error of string * int * int
(** message, line, column *)

val tokenize : string -> positioned list
(** @raise Lex_error on an unexpected character or malformed number. *)

val scale_factor : char -> float option
(** The Verilog-AMS scale factors: [T=1e12 .. a=1e-18]; [None] for
    other characters. *)
