type token = Ident of string | Number of float | Punct of string | Eof

type positioned = { token : token; line : int; col : int }

exception Lex_error of string * int * int

let scale_factor = function
  | 'T' -> Some 1e12
  | 'G' -> Some 1e9
  | 'M' -> Some 1e6
  | 'K' | 'k' -> Some 1e3
  | 'm' -> Some 1e-3
  | 'u' -> Some 1e-6
  | 'n' -> Some 1e-9
  | 'p' -> Some 1e-12
  | 'f' -> Some 1e-15
  | 'a' -> Some 1e-18
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let out = ref [] in
  let emit token l c = out := { token; line = l; col = c } :: !out in
  let i = ref 0 in
  let advance () =
    (if !i < n then
       if src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr i
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then raise (Lex_error ("unterminated comment", l0, c0))
    end
    else if c = '`' then
      (* Compiler directive: skip to end of line. *)
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '"' then begin
      (* String literal (only used in includes/attributes): skipped as
         part of directives, but tolerate stray strings by consuming
         them as an identifier-ish token. *)
      advance ();
      let b = Buffer.create 8 in
      while !i < n && src.[!i] <> '"' do
        Buffer.add_char b src.[!i];
        advance ()
      done;
      if !i >= n then raise (Lex_error ("unterminated string", l0, c0));
      advance ();
      emit (Ident (Buffer.contents b)) l0 c0
    end
    else if is_digit c
            || (c = '.' && match peek 1 with Some d -> is_digit d | None -> false)
    then begin
      let b = Buffer.create 8 in
      let seen_dot = ref false and seen_exp = ref false in
      let continue = ref true in
      while !continue && !i < n do
        let ch = src.[!i] in
        if is_digit ch then begin
          Buffer.add_char b ch;
          advance ()
        end
        else if ch = '.' && (not !seen_dot) && not !seen_exp then begin
          seen_dot := true;
          Buffer.add_char b ch;
          advance ()
        end
        else if (ch = 'e' || ch = 'E') && not !seen_exp then begin
          seen_exp := true;
          Buffer.add_char b ch;
          advance ();
          match peek 0 with
          | Some ('+' | '-') ->
              Buffer.add_char b src.[!i];
              advance ()
          | _ -> ()
        end
        else continue := false
      done;
      let base =
        match float_of_string_opt (Buffer.contents b) with
        | Some f -> f
        | None -> raise (Lex_error ("malformed number " ^ Buffer.contents b, l0, c0))
      in
      (* Scale-factor suffix, not followed by more identifier chars
         (else it is the start of an identifier, e.g. a unit). *)
      let value =
        match peek 0 with
        | Some ch -> (
            match scale_factor ch with
            | Some f
              when match peek 1 with
                   | Some next -> not (is_ident_char next)
                   | None -> true ->
                advance ();
                base *. f
            | Some _ | None -> base)
        | None -> base
      in
      emit (Number value) l0 c0
    end
    else if is_ident_start c then begin
      let b = Buffer.create 8 in
      while !i < n && is_ident_char src.[!i] do
        Buffer.add_char b src.[!i];
        advance ()
      done;
      emit (Ident (Buffer.contents b)) l0 c0
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.init 2 (fun k -> src.[!i + k])) else None
      in
      match two with
      | Some (("<+" | "<=" | ">=" | "&&" | "||" | "==" | "!=") as p) ->
          advance ();
          advance ();
          emit (Punct p) l0 c0
      | _ -> (
          match c with
          | '(' | ')' | ',' | ';' | '=' | '.' | '#' | '?' | ':' | '+' | '-'
          | '*' | '/' | '<' | '>' | '!' | '%' | '[' | ']' ->
              advance ();
              emit (Punct (String.make 1 c)) l0 c0
          | _ ->
              raise
                (Lex_error (Printf.sprintf "unexpected character %c" c, l0, c0)))
    end
  done;
  emit Eof !line !col;
  List.rev !out
