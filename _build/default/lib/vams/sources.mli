(** Verilog-AMS source text for the paper's models.

    These are the descriptions the tool consumes in the evaluation:
    the RCn ladder (built by cascading n RC stages, §V-A), the
    two-input summing amplifier and the operational amplifier of
    Fig. 8, plus the mixed-block active filter of Fig. 2 (declaration,
    signal-flow and conservative blocks) and a purely signal-flow
    filter exercising the direct conversion route. *)

val primitives : string
(** Leaf modules: [resistor], [capacitor], [inductor], [opamp_vcvs]. *)

val rc_ladder : int -> string
(** [rc_ladder n] is the full source (primitives + top module [rcN])
    for the n-stage ladder with the paper's parameters. *)

val two_input : string
(** Top module [two_in] (Fig. 8.a with the paper's resistances). *)

val opamp : string
(** Top module [oa] (Fig. 8.b with the paper's parameters). *)

val active_filter : string
(** Fig. 2-style module [active_filter] mixing declaration,
    signal-flow and conservative blocks. *)

val signal_flow_filter : string
(** A first-order low-pass written in signal-flow form (module
    [sf_lowpass]) for the direct conversion path. *)

val top_name_of : string -> string
(** Top module name used by each source above, keyed by the paper's
    circuit label (["RC7"] -> ["rc7"], ["2IN"] -> ["two_in"],
    ["OA"] -> ["oa"]). *)
