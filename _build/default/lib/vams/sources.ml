let primitives =
  {vams|
`include "disciplines.vams"

// Constitutive dipole primitives (paper, Section III-B).

module resistor(p, n);
  inout electrical p, n;
  parameter real r = 1k;
  analog V(p,n) <+ r * I(p,n);
endmodule

module capacitor(p, n);
  inout electrical p, n;
  parameter real c = 1n;
  analog I(p,n) <+ c * ddt(V(p,n));
endmodule

module inductor(p, n);
  inout electrical p, n;
  parameter real l = 1u;
  analog V(p,n) <+ l * ddt(I(p,n));
endmodule

// Single-pole ideal op-amp output stage: a voltage-controlled voltage
// source with a large open-loop gain.
module opamp_vcvs(out, inp, inn);
  inout electrical out, inp, inn;
  parameter real gain = 100K;
  analog V(out) <+ gain * (V(inp) - V(inn));
endmodule
|vams}

let rc_ladder n =
  if n < 1 then invalid_arg "Sources.rc_ladder";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf primitives;
  Buffer.add_string buf (Printf.sprintf "\nmodule rc%d(in, out);\n" n);
  Buffer.add_string buf "  input electrical in;\n  output electrical out;\n";
  if n > 1 then begin
    Buffer.add_string buf "  electrical ";
    for i = 1 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "n%d%s" i (if i < n - 1 then ", " else ";\n"))
    done
  end;
  let node i = if i = 0 then "in" else if i = n then "out" else Printf.sprintf "n%d" i in
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "  resistor #(.r(5K)) r%d (.p(%s), .n(%s));\n" i
         (node (i - 1)) (node i));
    Buffer.add_string buf
      (Printf.sprintf "  capacitor #(.c(25n)) c%d (.p(%s), .n(gnd));\n" i (node i))
  done;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let two_input =
  primitives
  ^ {vams|
// Two-inputs summing amplifier (Fig. 8.a): R1 = 3k, R2 = 14k, R3 = 10k.
module two_in(in1, in2, out);
  input electrical in1, in2;
  output electrical out;
  electrical x;
  resistor #(.r(3K))  r1 (.p(in1), .n(x));
  resistor #(.r(14K)) r2 (.p(in2), .n(x));
  resistor #(.r(10K)) r3 (.p(x), .n(out));
  opamp_vcvs op (.out(out), .inp(gnd), .inn(x));
endmodule
|vams}

let opamp =
  primitives
  ^ {vams|
// Operational amplifier stage (Fig. 8.b): R1 = 400, R2 = 1.6k,
// C1 = 40n, Rin = 1M, Rout = 20.
module oa(in, out);
  input electrical in;
  output electrical out;
  electrical ninv, e;
  resistor  #(.r(400))  r1   (.p(in), .n(ninv));
  resistor  #(.r(1.6K)) r2   (.p(ninv), .n(out));
  capacitor #(.c(40n))  c1   (.p(ninv), .n(out));
  resistor  #(.r(1M))   rin  (.p(ninv), .n(gnd));
  opamp_vcvs op (.out(e), .inp(gnd), .inn(ninv));
  resistor  #(.r(20))   rout (.p(e), .n(out));
endmodule
|vams}

let active_filter =
  primitives
  ^ {vams|
// Fig. 2: an active filter description mixing the three block kinds —
// (a) declarations, (b) a signal-flow block, (c) conservative
// contributions.
module active_filter(in, out);
  // (a) declarations
  input electrical in;
  output electrical out;
  electrical ninv, e;
  parameter real rf = 1.6K;
  parameter real cf = 40n;
  parameter real gain = 100K;

  // (b) signal-flow style: the op-amp output stage computed from the
  // sensed input potential through an intermediate analog variable
  real vd;
  analog begin
    vd = V(ninv);
    V(e) <+ -gain * vd;
  end

  // (c) conservative: the feedback network around the virtual ground
  resistor  #(.r(400))  r1   (.p(in), .n(ninv));
  resistor  #(.r(1.6K)) r2   (.p(ninv), .n(out));
  capacitor #(.c(40n))  c1   (.p(ninv), .n(out));
  resistor  #(.r(1M))   rin  (.p(ninv), .n(gnd));
  resistor  #(.r(20))   rout (.p(e), .n(out));
endmodule
|vams}

let signal_flow_filter =
  {vams|
`include "disciplines.vams"

// First-order low-pass in pure signal-flow form (Equation 1): the
// output is driven directly from the input and the output's own
// derivative; no flow quantity is ever accessed.
module sf_lowpass(in, out);
  input electrical in;
  output electrical out;
  parameter real tau = 125u;
  analog V(out) <+ V(in) - tau * ddt(V(out));
endmodule
|vams}

let top_name_of label =
  match label with
  | "2IN" -> "two_in"
  | "OA" -> "oa"
  | _ ->
      if String.length label > 2 && String.sub label 0 2 = "RC" then
        "rc" ^ String.sub label 2 (String.length label - 2)
      else invalid_arg ("Sources.top_name_of: unknown label " ^ label)
