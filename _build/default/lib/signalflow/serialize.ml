exception Parse_error of string * int

(* {1 Writing} *)

let var_to_string = Expr.var_name

let rec expr_to_string e =
  (* Canonical rendering: fully parenthesised ternaries, standard
     operator precedences otherwise (reuses the precedence-aware C
     printer for everything but conditionals). *)
  match e with
  | Expr.Cond (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (cond_to_string c) (expr_to_string a)
        (expr_to_string b)
  | Expr.Add (a, b) -> Printf.sprintf "%s + %s" (expr_to_string a) (atom b)
  | Expr.Sub (a, b) -> Printf.sprintf "%s - %s" (expr_to_string a) (atom b)
  | _ -> atom e

and atom e =
  match e with
  | Expr.Const c -> Printf.sprintf "%.17g" c
  | Expr.Var v -> var_to_string v
  | Expr.Neg a -> Printf.sprintf "-%s" (atom a)
  | Expr.Mul (a, b) -> Printf.sprintf "%s * %s" (atom a) (atom b)
  | Expr.Div (a, b) -> Printf.sprintf "%s / %s" (atom a) (atom b)
  | Expr.App (fn, a) ->
      let name =
        match fn with
        | Expr.Sin -> "sin"
        | Expr.Cos -> "cos"
        | Expr.Exp -> "exp"
        | Expr.Ln -> "ln"
        | Expr.Sqrt -> "sqrt"
        | Expr.Abs -> "abs"
        | Expr.Tanh -> "tanh"
      in
      Printf.sprintf "%s(%s)" name (expr_to_string a)
  | Expr.Add _ | Expr.Sub _ | Expr.Cond _ ->
      Printf.sprintf "(%s)" (expr_to_string e)
  | Expr.Ddt _ | Expr.Idt _ ->
      invalid_arg "Serialize: programs may not contain ddt/idt"

and cond_to_string = function
  | Expr.Cmp (op, a, b) ->
      let ops =
        match op with
        | Expr.Lt -> "<"
        | Expr.Le -> "<="
        | Expr.Gt -> ">"
        | Expr.Ge -> ">="
      in
      Printf.sprintf "%s %s %s" (expr_to_string a) ops (expr_to_string b)
  | Expr.And (c1, c2) ->
      Printf.sprintf "(%s) && (%s)" (cond_to_string c1) (cond_to_string c2)
  | Expr.Or (c1, c2) ->
      Printf.sprintf "(%s) || (%s)" (cond_to_string c1) (cond_to_string c2)
  | Expr.Not c -> Printf.sprintf "!(%s)" (cond_to_string c)

let program_to_string (p : Sfprogram.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "sfprogram 1\n";
  Buffer.add_string buf ("name " ^ p.Sfprogram.name ^ "\n");
  Buffer.add_string buf (Printf.sprintf "dt %.17g\n" p.Sfprogram.dt);
  Buffer.add_string buf
    ("inputs " ^ String.concat " " p.Sfprogram.inputs ^ "\n");
  Buffer.add_string buf
    ("outputs "
    ^ String.concat " " (List.map var_to_string p.Sfprogram.outputs)
    ^ "\n");
  List.iter
    (fun (a : Sfprogram.assignment) ->
      Buffer.add_string buf
        (Printf.sprintf "assign %s := %s\n"
           (var_to_string a.Sfprogram.target)
           (expr_to_string a.Sfprogram.expr)))
    p.Sfprogram.assignments;
  Buffer.contents buf

(* {1 Reading} *)

type token =
  | Tvar of Expr.var
  | Tnum of float
  | Tident of string
  | Tpunct of string
  | Teof

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (s, line))) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Lex one expression string (no newlines inside). *)
let lex_expr line s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  (* optional @-k suffix after a variable-like token *)
  let delay_suffix () =
    if !i + 1 < n && s.[!i] = '@' && s.[!i + 1] = '-' then begin
      i := !i + 2;
      let start = !i in
      while !i < n && is_digit s.[!i] do
        incr i
      done;
      if start = !i then fail line "expected digits after @-";
      int_of_string (String.sub s start (!i - start))
    end
    else 0
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if (c = 'V' || c = 'I') && peek 1 = Some '(' then begin
      (* access: V(a,b) | V(a) | I(x) | I(a,b) *)
      let kind = c in
      i := !i + 2;
      let start = !i in
      while !i < n && s.[!i] <> ')' do
        incr i
      done;
      if !i >= n then fail line "unterminated access";
      let body = String.sub s start (!i - start) in
      incr i;
      let d = delay_suffix () in
      let base =
        match (kind, String.split_on_char ',' body) with
        | 'V', [ a; b ] -> Expr.Potential (String.trim a, String.trim b)
        | 'V', [ a ] -> Expr.Potential (String.trim a, "gnd")
        | 'I', [ a ] -> Expr.Flow (String.trim a, "")
        | 'I', [ a; b ] -> Expr.Flow (String.trim a, String.trim b)
        | _ -> fail line "malformed access %c(%s)" kind body
      in
      out := Tvar { Expr.base; delay = d } :: !out
    end
    else if is_digit c || (c = '.' && match peek 1 with Some d -> is_digit d | None -> false)
    then begin
      let start = !i in
      while
        !i < n
        && (is_digit s.[!i] || s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E'
           || ((s.[!i] = '+' || s.[!i] = '-')
              && !i > start
              && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
      do
        incr i
      done;
      match float_of_string_opt (String.sub s start (!i - start)) with
      | Some f -> out := Tnum f :: !out
      | None -> fail line "malformed number"
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      let name = String.sub s start (!i - start) in
      let d = delay_suffix () in
      if d = 0 then out := Tident name :: !out
      else out := Tvar (Expr.delayed (Expr.signal name) d) :: !out
    end
    else begin
      let two = if !i + 1 < n then Some (String.sub s !i 2) else None in
      match two with
      | Some (("<=" | ">=" | "&&" | "||") as p) ->
          i := !i + 2;
          out := Tpunct p :: !out
      | _ -> (
          match c with
          | '(' | ')' | '?' | ':' | '+' | '-' | '*' | '/' | '<' | '>' | '!' ->
              incr i;
              out := Tpunct (String.make 1 c) :: !out
          | _ -> fail line "unexpected character %c" c)
    end
  done;
  Array.of_list (List.rev (Teof :: !out))

type pstate = { toks : token array; mutable pos : int; line : int }

let peek st = st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let accept st p =
  match peek st with
  | Tpunct q when q = p ->
      advance st;
      true
  | _ -> false

let expect st p =
  if not (accept st p) then fail st.line "expected '%s'" p

(* Grammar: ternary is parenthesised: '(' or-expr '?' e ':' e ')'.
   Inside a parenthesis we first parse an or-expression (which covers
   plain arithmetic too); '?' decides between ternary and grouping. *)
let rec parse_expr st = parse_add st

and parse_add st =
  let rec go acc =
    if accept st "+" then go (Expr.( + ) acc (parse_mul st))
    else if accept st "-" then go (Expr.( - ) acc (parse_mul st))
    else acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    if accept st "*" then go (Expr.( * ) acc (parse_unary st))
    else if accept st "/" then go (Expr.( / ) acc (parse_unary st))
    else acc
  in
  go (parse_unary st)

and parse_unary st =
  if accept st "-" then Expr.neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Tnum f ->
      advance st;
      Expr.const f
  | Tvar v ->
      advance st;
      Expr.var v
  | Tident name -> (
      advance st;
      if accept st "(" then begin
        let arg = parse_expr st in
        expect st ")";
        let fn =
          match name with
          | "sin" -> Expr.Sin
          | "cos" -> Expr.Cos
          | "exp" -> Expr.Exp
          | "ln" | "log" -> Expr.Ln
          | "sqrt" -> Expr.Sqrt
          | "abs" -> Expr.Abs
          | "tanh" -> Expr.Tanh
          | _ -> fail st.line "unknown function %s" name
        in
        Expr.App (fn, arg)
      end
      else Expr.var (Expr.signal name))
  | Tpunct "(" -> (
      advance st;
      (* Either a grouped arithmetic expression or a ternary whose
         condition is a boolean expression. A condition is recognised
         by a successful boolean parse followed by '?'; otherwise we
         backtrack and parse arithmetic. *)
      let save = st.pos in
      let as_cond =
        match (try Some (parse_cond st) with Parse_error _ -> None) with
        | Some c when (match peek st with Tpunct "?" -> true | _ -> false) ->
            Some c
        | _ ->
            st.pos <- save;
            None
      in
      match as_cond with
      | Some c ->
          expect st "?";
          let a = parse_expr st in
          expect st ":";
          let b = parse_expr st in
          expect st ")";
          Expr.Cond (c, a, b)
      | None ->
          let e = parse_expr st in
          expect st ")";
          e)
  | Tpunct p -> fail st.line "unexpected '%s'" p
  | Teof -> fail st.line "unexpected end of expression"

(* Boolean grammar: atoms are comparisons, parenthesised conditions or
   negations; && and || combine left-to-right (the writer parenthesises
   nested boolean operands, so associativity is unambiguous). *)
and parse_cond st =
  let atom () =
    if accept st "!" then begin
      expect st "(";
      let c = parse_cond st in
      expect st ")";
      Expr.Not c
    end
    else if accept st "(" then begin
      let c = parse_cond st in
      expect st ")";
      c
    end
    else begin
      let a = parse_expr st in
      let op =
        match peek st with
        | Tpunct "<" -> Expr.Lt
        | Tpunct "<=" -> Expr.Le
        | Tpunct ">" -> Expr.Gt
        | Tpunct ">=" -> Expr.Ge
        | _ -> fail st.line "expected a comparison"
      in
      advance st;
      Expr.Cmp (op, a, parse_expr st)
    end
  in
  let rec go acc =
    if accept st "&&" then go (Expr.And (acc, atom ()))
    else if accept st "||" then go (Expr.Or (acc, atom ()))
    else acc
  in
  go (atom ())

let parse_expression ~line s =
  let st = { toks = lex_expr line s; pos = 0; line } in
  let e = parse_expr st in
  (match peek st with
  | Teof -> ()
  | _ -> fail line "trailing tokens in expression");
  e

let parse_var ~line s =
  match parse_expression ~line s with
  | Expr.Var v -> v
  | _ -> fail line "expected a variable"

let program_of_string text =
  let lines = String.split_on_char '\n' text in
  let name = ref None
  and dt = ref None
  and inputs = ref None
  and outputs = ref None
  and assigns = ref [] in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line = "" then ()
      else
        let keyword, rest =
          match String.index_opt line ' ' with
          | None -> (line, "")
          | Some i ->
              ( String.sub line 0 i,
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              )
        in
        match keyword with
        | "sfprogram" ->
            if String.trim rest <> "1" then
              fail lineno "unsupported sfprogram version %s" rest
        | "name" -> name := Some rest
        | "dt" -> (
            match float_of_string_opt rest with
            | Some f -> dt := Some f
            | None -> fail lineno "malformed dt")
        | "inputs" ->
            inputs :=
              Some (List.filter (fun s -> s <> "") (String.split_on_char ' ' rest))
        | "outputs" ->
            outputs :=
              Some
                (List.filter_map
                   (fun s -> if s = "" then None else Some (parse_var ~line:lineno s))
                   (String.split_on_char ' ' rest))
        | "assign" -> (
            match
              let marker = " := " in
              let rec find i =
                if i + String.length marker > String.length rest then None
                else if String.sub rest i (String.length marker) = marker then
                  Some i
                else find (i + 1)
              in
              find 0
            with
            | None -> fail lineno "assign needs ':='"
            | Some i ->
                let target = parse_var ~line:lineno (String.sub rest 0 i) in
                let body =
                  String.sub rest (i + 4) (String.length rest - i - 4)
                in
                let expr = parse_expression ~line:lineno body in
                assigns := { Sfprogram.target; expr } :: !assigns)
        | other -> fail lineno "unknown directive %s" other)
    lines;
  match (!name, !dt, !inputs, !outputs) with
  | Some name, Some dt, Some inputs, Some outputs ->
      Sfprogram.make ~name ~inputs ~outputs
        ~assignments:(List.rev !assigns) ~dt
  | _ -> fail 0 "missing name/dt/inputs/outputs header"
