(** Textual serialisation of signal-flow programs.

    Lets an abstracted model be saved as a standalone artifact and
    reloaded later (or shipped to another process) without re-running
    the abstraction flow — the workflow of a model library. The format
    is line-oriented and human-readable:

    {v
    sfprogram 1
    name RC1
    dt 5e-08
    inputs in
    outputs V(out,gnd)
    assign V(in,gnd) := in
    assign V(out,gnd) := 0.00039984 * V(in,gnd) + 0.9996 * V(out,gnd)@-1
    v}

    Expressions use the library's own rendering: accesses [V(a,b)] /
    [I(d)], [@-k] history suffixes, arithmetic operators, unary
    functions and parenthesised ternaries [(c ? a : b)]. *)

exception Parse_error of string * int
(** message, 1-based line *)

val program_to_string : Sfprogram.t -> string

val program_of_string : string -> Sfprogram.t
(** @raise Parse_error on malformed input; the reconstructed program is
    re-validated by {!Sfprogram.make}. *)
