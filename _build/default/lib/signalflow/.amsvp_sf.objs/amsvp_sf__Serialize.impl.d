lib/signalflow/serialize.ml: Array Buffer Expr List Printf Sfprogram String
