lib/signalflow/sfprogram.mli: Amsvp_util Expr Format
