lib/signalflow/sfprogram.ml: Amsvp_util Array Expr Float Format Hashtbl List Printf String
