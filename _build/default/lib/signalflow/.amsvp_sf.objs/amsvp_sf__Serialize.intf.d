lib/signalflow/serialize.mli: Sfprogram
