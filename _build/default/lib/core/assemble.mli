(** Step 3 — Assemble (paper §IV-C, Algorithm 2).

    Builds one defining equation per quantity in the cone of influence
    of the requested outputs, consuming one equation class per defined
    quantity. Definitions are returned dependencies-first; a definition
    may still reference quantities of the {e current} step — including
    the defined variable itself through a discretised derivative — and
    those occurrences are removed by the subsequent {!Solve} step
    (Fig. 6 → Fig. 7).

    The paper's [fetchEquation] takes the first available equation of a
    dependency set; a greedy choice can dead-end (the only equation
    able to define a later variable may already be consumed), so this
    implementation backtracks over the candidate variants — a
    conservative completion of the algorithm that preserves its
    behaviour whenever the greedy choice succeeds. *)

type definition = {
  var : Expr.var;  (** the quantity being defined *)
  raw : Expr.t;
      (** defining expression; may contain [ddt] nodes and references
          to the reserved parameter [__dt] (from integrations) *)
  via : int;  (** id of the consumed equation class *)
  integrates : bool;
      (** the quantity was defined through its own derivative
          ([x = x@-1 + dt * ddt_expr]) — a state update with the
          contraction structure the relaxed solver may safely lag *)
  deriv : Expr.t option;
      (** for integrations, the defining derivative expression
          ([ddt(var) = deriv]); lets the solver choose the integration
          rule (backward Euler or trapezoidal) *)
}

type result = {
  defs : definition list;  (** dependencies first *)
  outputs : Expr.var list;
  inputs : string list;
}

exception No_definition of Expr.var
(** No consistent assignment of equation classes defines this
    quantity — e.g. an output outside the modelled network. *)

val assemble :
  Eqmap.t -> inputs:string list -> outputs:Expr.var list -> result
(** Consumes classes from the map (they are left disabled, so the same
    map can be inspected afterwards to see the extracted sub-set of
    Fig. 3; use {!Eqmap.reset} to run again). *)

val inline_tree : result -> Expr.var -> Expr.t
(** The nested equation tree of Fig. 6: the output's definition with
    every defined quantity substituted recursively, stopping (leaving a
    variable reference) when a quantity recurs along its own expansion
    path — those are the "occurrences of the left value on the right
    side" the Solve step removes.
    @raise Not_found if the variable has no definition. *)

val pp_definition : Format.formatter -> definition -> unit
