module Circuit = Amsvp_netlist.Circuit
module Graph = Amsvp_netlist.Graph

type t = { circuit : Circuit.t; graph : Graph.t; dipoles : Eqn.t list }

let of_circuit circuit =
  let graph = Graph.of_circuit circuit in
  let dipoles = Circuit.dipole_equations circuit in
  { circuit; graph; dipoles }

let pp ppf a =
  Format.fprintf ppf "@[<v>acquisition: %a@,%a@]" Graph.pp a.graph
    (Format.pp_print_list Eqn.pp) a.dipoles
