(** Step 1 — Acquisition (paper §IV-A).

    Gathers the constitutive dipole equations of the network into the
    optimised multimap structure and retrieves the topology graph
    [G = (N, B)] from the same set of equations. Complexity O(|B|). *)

type t = {
  circuit : Amsvp_netlist.Circuit.t;
  graph : Amsvp_netlist.Graph.t;
  dipoles : Eqn.t list;  (** one per branch, in netlist order *)
}

val of_circuit : Amsvp_netlist.Circuit.t -> t
(** @raise Invalid_argument on a structurally invalid circuit
    (floating nodes, no devices). *)

val pp : Format.formatter -> t -> unit
