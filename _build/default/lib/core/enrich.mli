(** Step 2 — Enrichment (paper §IV-B, Algorithm 1).

    Starting from the acquired dipole equations and the circuit graph,
    adds the Kirchhoff current equations (nodal analysis) and voltage
    equations (mesh analysis), then — for every equation — inserts the
    variants obtained by solving it for each of its terms, chained into
    dependency classes inside the multimap. *)

type stats = {
  dipole_classes : int;
  kcl_classes : int;
  kvl_classes : int;
  variants : int;  (** total solved variants across all classes *)
}

val enrich : Acquisition.t -> Eqmap.t * stats
