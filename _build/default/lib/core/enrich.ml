module Graph = Amsvp_netlist.Graph

type stats = {
  dipole_classes : int;
  kcl_classes : int;
  kvl_classes : int;
  variants : int;
}

let enrich (a : Acquisition.t) =
  let m = Eqmap.create () in
  (* Dipole equations first: Algorithm 2 prefers constitutive
     definitions, so insertion order doubles as fetch preference. *)
  List.iter (Eqmap.add_equation m) a.dipoles;
  let kcl = Graph.kcl_equations a.graph in
  List.iter (Eqmap.add_equation m) kcl;
  let kvl = Graph.kvl_equations a.graph in
  List.iter (Eqmap.add_equation m) kvl;
  ( m,
    {
      dipole_classes = List.length a.dipoles;
      kcl_classes = List.length kcl;
      kvl_classes = List.length kvl;
      variants = Eqmap.variant_count m;
    } )
