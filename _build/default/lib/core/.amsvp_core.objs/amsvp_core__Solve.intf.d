lib/core/solve.mli: Amsvp_sf Assemble Expr
