lib/core/enrich.mli: Acquisition Eqmap
