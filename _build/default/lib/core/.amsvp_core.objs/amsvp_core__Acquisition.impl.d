lib/core/acquisition.ml: Amsvp_netlist Eqn Format
