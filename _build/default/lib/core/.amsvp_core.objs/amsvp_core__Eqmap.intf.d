lib/core/eqmap.mli: Eqn Expr Format
