lib/core/enrich.ml: Acquisition Amsvp_netlist Eqmap List
