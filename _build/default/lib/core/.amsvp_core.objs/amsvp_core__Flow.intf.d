lib/core/flow.mli: Amsvp_netlist Amsvp_sf Expr Format Solve
