lib/core/assemble.mli: Eqmap Expr Format
