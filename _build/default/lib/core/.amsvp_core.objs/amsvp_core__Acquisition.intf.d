lib/core/acquisition.mli: Amsvp_netlist Eqn Format
