lib/core/eqmap.ml: Array Eqn Expr Format List Map
