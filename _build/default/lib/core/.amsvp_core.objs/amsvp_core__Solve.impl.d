lib/core/solve.ml: Amsvp_sf Array Assemble Expr Hashtbl List Printf
