lib/core/assemble.ml: Eqmap Eqn Expr Format Hashtbl List
