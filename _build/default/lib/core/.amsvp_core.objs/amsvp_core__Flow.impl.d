lib/core/flow.ml: Acquisition Amsvp_netlist Amsvp_sf Assemble Enrich Eqmap Expr Format List Printf Solve Unix
