lib/vhdlams/vparser.mli: Vast
