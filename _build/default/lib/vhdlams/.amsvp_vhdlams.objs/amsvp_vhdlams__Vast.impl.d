lib/vhdlams/vast.ml: List
