lib/vhdlams/vast.mli:
