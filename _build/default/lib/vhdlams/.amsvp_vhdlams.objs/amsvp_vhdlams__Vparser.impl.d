lib/vhdlams/vparser.ml: Array Buffer Char List Printf String Vast
