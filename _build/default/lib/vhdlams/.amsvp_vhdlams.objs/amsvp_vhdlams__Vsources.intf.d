lib/vhdlams/vsources.mli:
