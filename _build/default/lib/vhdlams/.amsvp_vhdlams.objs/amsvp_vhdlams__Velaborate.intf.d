lib/vhdlams/velaborate.mli: Amsvp_core Amsvp_vams Expr Vast
