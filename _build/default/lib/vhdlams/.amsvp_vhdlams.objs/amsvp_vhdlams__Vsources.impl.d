lib/vhdlams/vsources.ml: Buffer Printf
