lib/vhdlams/velaborate.ml: Amsvp_core Amsvp_vams Expr Hashtbl List Printf Set String Vast Vparser
