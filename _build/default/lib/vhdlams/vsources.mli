(** VHDL-AMS renderings of the paper's models (the same systems as
    {!Amsvp_vams.Sources}, in the other language of §II-A). *)

val primitives : string
(** Entities [resistor], [capacitor], [inductor], [opamp_vcvs] with
    behavioural architectures. *)

val rc_ladder : int -> string
(** Primitives + structural top entity [rcN] ([tin]/[tout] ports). *)

val opamp : string
(** The OA stage of Fig. 8.b as entity [oa]. *)

val signal_flow_filter : string
(** First-order low-pass in signal-flow form, entity [sf_lowpass]. *)
