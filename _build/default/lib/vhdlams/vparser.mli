(** Lexer and recursive-descent parser for the VHDL-AMS subset.

    VHDL is case-insensitive: identifiers and keywords are lowercased
    during lexing. [--] comments are skipped; [library]/[use] clauses
    are accepted and ignored. *)

exception Parse_error of string * int
(** message, 1-based source line *)

val parse : string -> Vast.design
(** @raise Parse_error on malformed input. *)

val parse_expr_string : string -> Vast.expr
(** Parse a single expression (for tests). *)
