let primitives =
  {vhdl|
library IEEE;
use IEEE.electrical_systems.all;

entity resistor is
  generic (r : real := 1.0e3);
  port (terminal p, n : electrical);
end entity;

architecture behav of resistor is
  quantity v across i through p to n;
begin
  v == r * i;
end architecture;

entity capacitor is
  generic (c : real := 1.0e-9);
  port (terminal p, n : electrical);
end entity;

architecture behav of capacitor is
  quantity v across i through p to n;
begin
  i == c * v'dot;
end architecture;

entity inductor is
  generic (l : real := 1.0e-6);
  port (terminal p, n : electrical);
end entity;

architecture behav of inductor is
  quantity v across i through p to n;
begin
  v == l * i'dot;
end architecture;

entity opamp_vcvs is
  generic (gain : real := 1.0e5);
  port (terminal tout, inp, inn : electrical);
end entity;

architecture behav of opamp_vcvs is
  quantity vout across iout through tout to ground;
  quantity vd across inp to inn;
begin
  vout == gain * vd;
end architecture;
|vhdl}

let rc_ladder n =
  if n < 1 then invalid_arg "Vsources.rc_ladder";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf primitives;
  Buffer.add_string buf
    (Printf.sprintf "\nentity rc%d is\n  port (terminal tin, tout : electrical);\nend entity;\n\n" n);
  Buffer.add_string buf
    (Printf.sprintf "architecture struct of rc%d is\n" n);
  if n > 1 then begin
    Buffer.add_string buf "  terminal ";
    for i = 1 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf "m%d%s" i (if i < n - 1 then ", " else " : electrical;\n"))
    done
  end;
  Buffer.add_string buf "begin\n";
  let node i =
    if i = 0 then "tin" else if i = n then "tout" else Printf.sprintf "m%d" i
  in
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf
         "  r%d : entity work.resistor generic map (r => 5.0e3) port map (p \
          => %s, n => %s);\n"
         i (node (i - 1)) (node i));
    Buffer.add_string buf
      (Printf.sprintf
         "  c%d : entity work.capacitor generic map (c => 25.0e-9) port map \
          (p => %s, n => ground);\n"
         i (node i))
  done;
  Buffer.add_string buf "end architecture;\n";
  Buffer.contents buf

let opamp =
  primitives
  ^ {vhdl|
entity oa is
  port (terminal tin, tout : electrical);
end entity;

architecture struct of oa is
  terminal ninv, e : electrical;
begin
  r1   : entity work.resistor generic map (r => 400.0)   port map (p => tin,  n => ninv);
  r2   : entity work.resistor generic map (r => 1.6e3)   port map (p => ninv, n => tout);
  c1   : entity work.capacitor generic map (c => 40.0e-9) port map (p => ninv, n => tout);
  rin  : entity work.resistor generic map (r => 1.0e6)   port map (p => ninv, n => ground);
  op   : entity work.opamp_vcvs generic map (gain => -1.0e5) port map (tout => e, inp => ninv, inn => ground);
  rout : entity work.resistor generic map (r => 20.0)    port map (p => e,   n => tout);
end architecture;
|vhdl}

let signal_flow_filter =
  {vhdl|
library IEEE;
use IEEE.electrical_systems.all;

entity sf_lowpass is
  generic (tau : real := 125.0e-6);
  port (terminal tin, tout : electrical);
end entity;

architecture sflow of sf_lowpass is
  quantity vin across tin to ground;
  quantity vout across tout to ground;
begin
  vout == vin - tau * vout'dot;
end architecture;
|vhdl}
