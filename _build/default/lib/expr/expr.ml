type base =
  | Potential of string * string
  | Flow of string * string
  | Signal of string
  | Param of string

type var = { base : base; delay : int }

let v base = { base; delay = 0 }
let potential a b = v (Potential (a, b))
let flow a b = v (Flow (a, b))
let signal s = v (Signal s)
let param s = v (Param s)

let delayed x k =
  if k < 0 then invalid_arg "Expr.delayed: negative shift";
  { x with delay = x.delay + k }

let compare_base a b =
  match (a, b) with
  | Potential (x1, y1), Potential (x2, y2) ->
      let c = String.compare x1 x2 in
      if c <> 0 then c else String.compare y1 y2
  | Flow (x1, y1), Flow (x2, y2) ->
      let c = String.compare x1 x2 in
      if c <> 0 then c else String.compare y1 y2
  | Signal s1, Signal s2 -> String.compare s1 s2
  | Param s1, Param s2 -> String.compare s1 s2
  | Potential _, (Flow _ | Signal _ | Param _) -> -1
  | Flow _, (Signal _ | Param _) -> -1
  | Signal _, Param _ -> -1
  | Flow _, Potential _ -> 1
  | Signal _, (Potential _ | Flow _) -> 1
  | Param _, (Potential _ | Flow _ | Signal _) -> 1

let compare_var a b =
  let c = compare_base a.base b.base in
  if c <> 0 then c else Int.compare a.delay b.delay

let equal_var a b = compare_var a b = 0

let base_name = function
  | Potential (a, b) -> Printf.sprintf "V(%s,%s)" a b
  | Flow (a, "") -> Printf.sprintf "I(%s)" a
  | Flow (a, b) -> Printf.sprintf "I(%s,%s)" a b
  | Signal s -> s
  | Param s -> s

let var_name x =
  if x.delay = 0 then base_name x.base
  else Printf.sprintf "%s@-%d" (base_name x.base) x.delay

let sanitize s =
  String.map (fun c -> if c = '(' || c = ')' || c = ',' || c = '.' then '_' else c) s

let base_c_name = function
  | Potential (a, b) -> Printf.sprintf "V_%s_%s" (sanitize a) (sanitize b)
  | Flow (a, "") -> Printf.sprintf "I_%s" (sanitize a)
  | Flow (a, b) -> Printf.sprintf "I_%s_%s" (sanitize a) (sanitize b)
  | Signal s -> sanitize s
  | Param s -> sanitize s

let var_c_name x =
  if x.delay = 0 then base_c_name x.base
  else Printf.sprintf "%s_m%d" (base_c_name x.base) x.delay

module Var_ord = struct
  type t = var

  let compare = compare_var
end

module Var_map = Map.Make (Var_ord)
module Var_set = Set.Make (Var_ord)

type unary_fun = Sin | Cos | Exp | Ln | Sqrt | Abs | Tanh
type cmp = Lt | Le | Gt | Ge

type t =
  | Const of float
  | Var of var
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Ddt of t
  | Idt of t
  | App of unary_fun * t
  | Cond of cond * t * t

and cond = Cmp of cmp * t * t | And of cond * cond | Or of cond * cond | Not of cond

let const c = Const c
let var x = Var x
let zero = Const 0.0
let one = Const 1.0

(* Smart constructors performing the obvious local simplifications so
   that generated trees stay readable. *)
let add a b =
  match (a, b) with
  | Const 0.0, e | e, Const 0.0 -> e
  | Const x, Const y -> Const (x +. y)
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | e, Const 0.0 -> e
  | Const 0.0, e -> Neg e
  | Const x, Const y -> Const (x -. y)
  | _ -> Sub (a, b)

let mul a b =
  match (a, b) with
  | Const 0.0, _ | _, Const 0.0 -> Const 0.0
  | Const 1.0, e | e, Const 1.0 -> e
  | Const x, Const y -> Const (x *. y)
  | _ -> Mul (a, b)

let div a b =
  match (a, b) with
  | Const 0.0, _ -> Const 0.0
  | e, Const 1.0 -> e
  | Const x, Const y when y <> 0.0 -> Const (x /. y)
  | _ -> Div (a, b)

let neg = function
  | Const c -> Const (-.c)
  | Neg e -> e
  | e -> Neg e

let scale k e = mul (Const k) e

let rec fold_cond_vars f acc = function
  | Cmp (_, a, b) -> fold_vars f (fold_vars f acc a) b
  | And (c1, c2) | Or (c1, c2) -> fold_cond_vars f (fold_cond_vars f acc c1) c2
  | Not c -> fold_cond_vars f acc c

and fold_vars f acc = function
  | Const _ -> acc
  | Var x -> f acc x
  | Neg e | Ddt e | Idt e | App (_, e) -> fold_vars f acc e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      fold_vars f (fold_vars f acc a) b
  | Cond (c, a, b) -> fold_cond_vars f (fold_vars f (fold_vars f acc a) b) c

let vars e = fold_vars (fun acc x -> Var_set.add x acc) Var_set.empty e
let contains_var x e = fold_vars (fun acc y -> acc || equal_var x y) false e

let rec contains_ddt = function
  | Const _ | Var _ -> false
  | Ddt _ | Idt _ -> true
  | Neg e | App (_, e) -> contains_ddt e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      contains_ddt a || contains_ddt b
  | Cond (c, a, b) -> cond_contains_ddt c || contains_ddt a || contains_ddt b

and cond_contains_ddt = function
  | Cmp (_, a, b) -> contains_ddt a || contains_ddt b
  | And (c1, c2) | Or (c1, c2) -> cond_contains_ddt c1 || cond_contains_ddt c2
  | Not c -> cond_contains_ddt c

let rec subst f e =
  match e with
  | Const _ -> e
  | Var x -> ( match f x with Some e' -> e' | None -> e)
  | Neg a -> neg (subst f a)
  | Add (a, b) -> add (subst f a) (subst f b)
  | Sub (a, b) -> sub (subst f a) (subst f b)
  | Mul (a, b) -> mul (subst f a) (subst f b)
  | Div (a, b) -> div (subst f a) (subst f b)
  | Ddt a -> Ddt (subst f a)
  | Idt a -> Idt (subst f a)
  | App (fn, a) -> App (fn, subst f a)
  | Cond (c, a, b) -> Cond (subst_cond f c, subst f a, subst f b)

and subst_cond f = function
  | Cmp (op, a, b) -> Cmp (op, subst f a, subst f b)
  | And (c1, c2) -> And (subst_cond f c1, subst_cond f c2)
  | Or (c1, c2) -> Or (subst_cond f c1, subst_cond f c2)
  | Not c -> Not (subst_cond f c)

let delay_expr k e =
  if contains_ddt e then
    invalid_arg "Expr.delay_expr: expression contains ddt/idt";
  subst (fun x -> Some (Var (delayed x k))) e

let rec size = function
  | Const _ | Var _ -> 1
  | Neg e | Ddt e | Idt e | App (_, e) -> 1 + size e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> 1 + size a + size b
  | Cond (c, a, b) -> 1 + cond_size c + size a + size b

and cond_size = function
  | Cmp (_, a, b) -> 1 + size a + size b
  | And (c1, c2) | Or (c1, c2) -> 1 + cond_size c1 + cond_size c2
  | Not c -> 1 + cond_size c

let apply_fun fn x =
  match fn with
  | Sin -> sin x
  | Cos -> cos x
  | Exp -> exp x
  | Ln -> log x
  | Sqrt -> sqrt x
  | Abs -> abs_float x
  | Tanh -> tanh x

let apply_cmp op a b =
  match op with Lt -> a < b | Le -> a <= b | Gt -> a > b | Ge -> a >= b

let rec eval env = function
  | Const c -> c
  | Var x -> env x
  | Neg e -> -.eval env e
  | Add (a, b) -> eval env a +. eval env b
  | Sub (a, b) -> eval env a -. eval env b
  | Mul (a, b) -> eval env a *. eval env b
  | Div (a, b) -> eval env a /. eval env b
  | Ddt _ | Idt _ -> failwith "Expr.eval: ddt/idt cannot be evaluated pointwise"
  | App (fn, e) -> apply_fun fn (eval env e)
  | Cond (c, a, b) -> if eval_cond env c then eval env a else eval env b

and eval_cond env = function
  | Cmp (op, a, b) -> apply_cmp op (eval env a) (eval env b)
  | And (c1, c2) -> eval_cond env c1 && eval_cond env c2
  | Or (c1, c2) -> eval_cond env c1 || eval_cond env c2
  | Not c -> not (eval_cond env c)

let rec compile slot e =
  match e with
  | Const c -> fun _ -> c
  | Var x ->
      let i = slot x in
      fun a -> a.(i)
  | Neg e ->
      let f = compile slot e in
      fun a -> -.f a
  | Add (x, y) ->
      let f = compile slot x and g = compile slot y in
      fun a -> f a +. g a
  | Sub (x, y) ->
      let f = compile slot x and g = compile slot y in
      fun a -> f a -. g a
  | Mul (x, y) ->
      let f = compile slot x and g = compile slot y in
      fun a -> f a *. g a
  | Div (x, y) ->
      let f = compile slot x and g = compile slot y in
      fun a -> f a /. g a
  | Ddt _ | Idt _ -> failwith "Expr.compile: ddt/idt cannot be compiled"
  | App (fn, e) ->
      let f = compile slot e in
      fun a -> apply_fun fn (f a)
  | Cond (c, x, y) ->
      let fc = compile_cond slot c in
      let f = compile slot x and g = compile slot y in
      fun a -> if fc a then f a else g a

and compile_cond slot = function
  | Cmp (op, x, y) ->
      let f = compile slot x and g = compile slot y in
      fun a -> apply_cmp op (f a) (g a)
  | And (c1, c2) ->
      let f = compile_cond slot c1 and g = compile_cond slot c2 in
      fun a -> f a && g a
  | Or (c1, c2) ->
      let f = compile_cond slot c1 and g = compile_cond slot c2 in
      fun a -> f a || g a
  | Not c ->
      let f = compile_cond slot c in
      fun a -> not (f a)

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Neg a -> neg (simplify a)
  | Add (a, b) -> add (simplify a) (simplify b)
  | Sub (a, b) -> sub (simplify a) (simplify b)
  | Mul (a, b) -> mul (simplify a) (simplify b)
  | Div (a, b) -> div (simplify a) (simplify b)
  | Ddt a -> Ddt (simplify a)
  | Idt a -> Idt (simplify a)
  | App (fn, a) -> (
      match simplify a with
      | Const c -> Const (apply_fun fn c)
      | a' -> App (fn, a'))
  | Cond (c, a, b) -> Cond (simplify_cond c, simplify a, simplify b)

and simplify_cond = function
  | Cmp (op, a, b) -> Cmp (op, simplify a, simplify b)
  | And (c1, c2) -> And (simplify_cond c1, simplify_cond c2)
  | Or (c1, c2) -> Or (simplify_cond c1, simplify_cond c2)
  | Not c -> Not (simplify_cond c)

(* Linear-form extraction: an affine map from variables to coefficients
   plus a constant offset, or None when the expression is nonlinear. *)
let linear_form e =
  let module M = Var_map in
  let merge f m1 m2 = M.union (fun _ a b -> Some (f a b)) m1 m2 in
  let rec go = function
    | Const c -> Some (M.empty, c)
    | Var x -> Some (M.singleton x 1.0, 0.0)
    | Neg a ->
        Option.map (fun (m, k) -> (M.map (fun c -> -.c) m, -.k)) (go a)
    | Add (a, b) -> (
        match (go a, go b) with
        | Some (m1, k1), Some (m2, k2) -> Some (merge ( +. ) m1 m2, k1 +. k2)
        | _ -> None)
    | Sub (a, b) -> (
        match (go a, go b) with
        | Some (m1, k1), Some (m2, k2) ->
            Some (merge ( +. ) m1 (M.map (fun c -> -.c) m2), k1 -. k2)
        | _ -> None)
    | Mul (a, b) -> (
        match (go a, go b) with
        | Some (m1, k1), Some (m2, k2) ->
            if M.is_empty m1 then Some (M.map (fun c -> c *. k1) m2, k1 *. k2)
            else if M.is_empty m2 then
              Some (M.map (fun c -> c *. k2) m1, k1 *. k2)
            else None
        | _ -> None)
    | Div (a, b) -> (
        match (go a, go b) with
        | Some (m1, k1), Some (m2, k2) when M.is_empty m2 && k2 <> 0.0 ->
            Some (M.map (fun c -> c /. k2) m1, k1 /. k2)
        | _ -> None)
    | Ddt _ | Idt _ | App _ | Cond _ -> None
  in
  match go e with
  | None -> None
  | Some (m, k) ->
      let items =
        M.fold (fun x c acc -> if c = 0.0 then acc else (x, c) :: acc) m []
      in
      Some (List.rev items, k)

let of_linear_form (items, k) =
  let term (x, c) = if c = 1.0 then Var x else mul (Const c) (Var x) in
  match items with
  | [] -> Const k
  | first :: rest ->
      let body = List.fold_left (fun acc it -> add acc (term it)) (term first) rest in
      if k = 0.0 then body else add body (Const k)

let dt_param = param "__dt"

let rec discretize ~dt e =
  match e with
  | Const _ | Var _ -> e
  | Neg a -> neg (discretize ~dt a)
  | Add (a, b) -> add (discretize ~dt a) (discretize ~dt b)
  | Sub (a, b) -> sub (discretize ~dt a) (discretize ~dt b)
  | Mul (a, b) -> mul (discretize ~dt a) (discretize ~dt b)
  | Div (a, b) -> div (discretize ~dt a) (discretize ~dt b)
  | Ddt a ->
      let a' = discretize ~dt a in
      div (sub a' (delay_expr 1 a')) (Const dt)
  | Idt _ -> failwith "Expr.discretize: idt must be removed with extract_idt"
  | App (fn, a) -> App (fn, discretize ~dt a)
  | Cond (c, a, b) ->
      Cond (discretize_cond ~dt c, discretize ~dt a, discretize ~dt b)

and discretize_cond ~dt = function
  | Cmp (op, a, b) -> Cmp (op, discretize ~dt a, discretize ~dt b)
  | And (c1, c2) -> And (discretize_cond ~dt c1, discretize_cond ~dt c2)
  | Or (c1, c2) -> Or (discretize_cond ~dt c1, discretize_cond ~dt c2)
  | Not c -> Not (discretize_cond ~dt c)

let extract_idt ~fresh e =
  let aux = ref [] in
  let rec go e =
    match e with
    | Const _ | Var _ -> e
    | Neg a -> neg (go a)
    | Add (a, b) -> add (go a) (go b)
    | Sub (a, b) -> sub (go a) (go b)
    | Mul (a, b) -> mul (go a) (go b)
    | Div (a, b) -> div (go a) (go b)
    | Ddt a -> Ddt (go a)
    | Idt a ->
        let a' = go a in
        let s = signal (fresh ()) in
        (* s = s@-1 + __dt * integrand: rectangle-rule accumulator. *)
        let update = add (Var (delayed s 1)) (mul (Var dt_param) a') in
        aux := (s, update) :: !aux;
        Var s
    | App (fn, a) -> App (fn, go a)
    | Cond (c, a, b) -> Cond (go_cond c, go a, go b)
  and go_cond = function
    | Cmp (op, a, b) -> Cmp (op, go a, go b)
    | And (c1, c2) -> And (go_cond c1, go_cond c2)
    | Or (c1, c2) -> Or (go_cond c1, go_cond c2)
    | Not c -> Not (go_cond c)
  in
  let e' = go e in
  (e', List.rev !aux)

(* Printing with precedence levels: 0 additive, 1 multiplicative,
   2 unary/atomic. *)
let fun_name = function
  | Sin -> "sin"
  | Cos -> "cos"
  | Exp -> "exp"
  | Ln -> "ln"
  | Sqrt -> "sqrt"
  | Abs -> "abs"
  | Tanh -> "tanh"

let cmp_name = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let pp_gen ~name ~ln_name ~cond_style ppf e =
  let rec go prec ppf e =
    match e with
    | Const c -> Format.fprintf ppf "%g" c
    | Var x -> Format.pp_print_string ppf (name x)
    | Neg a -> wrap prec 1 ppf (fun ppf -> Format.fprintf ppf "-%a" (go 2) a)
    | Add (a, b) ->
        wrap prec 0 ppf (fun ppf ->
            Format.fprintf ppf "%a + %a" (go 0) a (go 1) b)
    | Sub (a, b) ->
        wrap prec 0 ppf (fun ppf ->
            Format.fprintf ppf "%a - %a" (go 0) a (go 1) b)
    | Mul (a, b) ->
        wrap prec 1 ppf (fun ppf ->
            Format.fprintf ppf "%a * %a" (go 1) a (go 2) b)
    | Div (a, b) ->
        wrap prec 1 ppf (fun ppf ->
            Format.fprintf ppf "%a / %a" (go 1) a (go 2) b)
    | Ddt a -> Format.fprintf ppf "ddt(%a)" (go 0) a
    | Idt a -> Format.fprintf ppf "idt(%a)" (go 0) a
    | App (fn, a) ->
        let n = match fn with Ln -> ln_name | _ -> fun_name fn in
        Format.fprintf ppf "%s(%a)" n (go 0) a
    | Cond (c, a, b) -> (
        match cond_style with
        | `Ternary ->
            wrap prec 0 ppf (fun ppf ->
                Format.fprintf ppf "(%a ? %a : %a)" go_cond c (go 0) a (go 0) b)
        | `If ->
            Format.fprintf ppf "if (%a) %a else %a" go_cond c (go 2) a (go 2) b)
  and go_cond ppf = function
    | Cmp (op, a, b) ->
        Format.fprintf ppf "%a %s %a" (go 1) a (cmp_name op) (go 1) b
    | And (c1, c2) -> Format.fprintf ppf "(%a) && (%a)" go_cond c1 go_cond c2
    | Or (c1, c2) -> Format.fprintf ppf "(%a) || (%a)" go_cond c1 go_cond c2
    | Not c -> Format.fprintf ppf "!(%a)" go_cond c
  and wrap prec level ppf body =
    if prec > level then Format.fprintf ppf "(%t)" body else body ppf
  in
  go 0 ppf e

let pp ppf e = pp_gen ~name:var_name ~ln_name:"ln" ~cond_style:`If ppf e
let to_string e = Format.asprintf "%a" pp e

let pp_c ~name ppf e = pp_gen ~name ~ln_name:"log" ~cond_style:`Ternary ppf e
let to_c ~name e = Format.asprintf "%a" (pp_c ~name) e

let pp_tree ppf e =
  let rec go indent ppf e =
    let pad = String.make indent ' ' in
    match e with
    | Const c -> Format.fprintf ppf "%s%g@," pad c
    | Var x -> Format.fprintf ppf "%s%s@," pad (var_name x)
    | Neg a -> node "neg" [ a ] ppf indent pad
    | Add (a, b) -> node "+" [ a; b ] ppf indent pad
    | Sub (a, b) -> node "-" [ a; b ] ppf indent pad
    | Mul (a, b) -> node "*" [ a; b ] ppf indent pad
    | Div (a, b) -> node "/" [ a; b ] ppf indent pad
    | Ddt a -> node "ddt" [ a ] ppf indent pad
    | Idt a -> node "idt" [ a ] ppf indent pad
    | App (fn, a) -> node (fun_name fn) [ a ] ppf indent pad
    | Cond (_, a, b) -> node "cond" [ a; b ] ppf indent pad
  and node label children ppf indent pad =
    Format.fprintf ppf "%s%s@," pad label;
    List.iter (fun c -> go (indent + 2) ppf c) children
  in
  Format.fprintf ppf "@[<v>";
  go 0 ppf e;
  Format.fprintf ppf "@]"

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
