lib/expr/expr.ml: Array Format Int List Map Option Printf Set String
