lib/expr/eqn.ml: Expr Format List Map Option Printf
