lib/expr/eqn.mli: Expr Format
